package fastread

import (
	"context"
	"fmt"

	"fastread/internal/abd"
	"fastread/internal/core"
	"fastread/internal/maxmin"
	"fastread/internal/quorum"
	"fastread/internal/regular"
	"fastread/internal/sig"
	"fastread/internal/transport"
	"fastread/internal/types"
)

// Cluster is a complete in-memory deployment of one register: S server
// processes, the single writer and R readers, all attached to an in-memory
// asynchronous network. It is the main entry point of the library; the
// examples and benchmarks are built on it.
type Cluster struct {
	cfg    Config
	qcfg   quorum.Config
	net    *transport.InMemNetwork
	keys   sig.KeyPair
	stop   []func()
	writer *writerHandle
	reads  []*readerHandle

	mutations func() int64
}

// NewCluster builds and starts a register deployment according to cfg.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Protocol == 0 {
		cfg.Protocol = ProtocolFast
	}
	if !cfg.Protocol.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrUnknownProtocol, cfg.Protocol)
	}
	qcfg := quorum.Config{
		Servers:   cfg.Servers,
		Faulty:    cfg.Faulty,
		Malicious: cfg.Malicious,
		Readers:   cfg.Readers,
	}
	if err := qcfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Protocol {
	case ProtocolFast, ProtocolFastByzantine:
		if !qcfg.FastReadPossible() {
			return nil, fmt.Errorf("%w: %v (max fast readers = %d)",
				ErrTooManyReaders, qcfg, quorum.MaxFastReaders(cfg.Servers, cfg.Faulty, cfg.Malicious))
		}
		if cfg.Readers+1 > core.MaxPredicateUnion {
			return nil, fmt.Errorf("%w: predicate evaluator supports at most %d readers",
				ErrTooManyReaders, core.MaxPredicateUnion-1)
		}
	case ProtocolABD, ProtocolMaxMin, ProtocolRegular:
		if qcfg.Majority() > qcfg.AckQuorum() {
			return nil, fmt.Errorf("fastread: %s requires t < S/2, got %v", cfg.Protocol, qcfg)
		}
	}

	opts := []transport.InMemOption{transport.WithSeed(cfg.Seed)}
	if cfg.NetworkDelay > 0 {
		opts = append(opts, transport.WithDefaultDelay(cfg.NetworkDelay))
	}
	if cfg.Jitter > 0 {
		opts = append(opts, transport.WithJitter(cfg.Jitter))
	}

	c := &Cluster{
		cfg:  cfg,
		qcfg: qcfg,
		net:  transport.NewInMemNetwork(opts...),
		keys: sig.MustKeyPair(),
	}
	if err := c.startServers(); err != nil {
		_ = c.Close()
		return nil, err
	}
	if err := c.startClients(); err != nil {
		_ = c.Close()
		return nil, err
	}
	return c, nil
}

// startServers launches the protocol-appropriate server on every server
// identity.
func (c *Cluster) startServers() error {
	var stateFns []func() int64
	for i := 1; i <= c.cfg.Servers; i++ {
		id := types.Server(i)
		node, err := c.net.Join(id)
		if err != nil {
			return fmt.Errorf("join %v: %w", id, err)
		}
		switch c.cfg.Protocol {
		case ProtocolFast, ProtocolFastByzantine:
			srv, err := core.NewServer(core.ServerConfig{
				ID:        id,
				Readers:   c.cfg.Readers,
				Byzantine: c.cfg.Protocol == ProtocolFastByzantine,
				Verifier:  c.keys.Verifier,
			}, node)
			if err != nil {
				return err
			}
			srv.Start()
			c.stop = append(c.stop, srv.Stop)
			stateFns = append(stateFns, func() int64 { return srv.State().Mutations })
		case ProtocolABD:
			srv, err := abd.NewServer(abd.ServerConfig{ID: id}, node)
			if err != nil {
				return err
			}
			srv.Start()
			c.stop = append(c.stop, srv.Stop)
			stateFns = append(stateFns, func() int64 { _, m := srv.State(); return m })
		case ProtocolMaxMin:
			srv, err := maxmin.NewServer(maxmin.ServerConfig{ID: id, Quorum: c.qcfg}, node)
			if err != nil {
				return err
			}
			srv.Start()
			c.stop = append(c.stop, srv.Stop)
			stateFns = append(stateFns, func() int64 { return 0 })
		case ProtocolRegular:
			srv, err := regular.NewServer(id, node, nil)
			if err != nil {
				return err
			}
			srv.Start()
			c.stop = append(c.stop, srv.Stop)
			stateFns = append(stateFns, func() int64 { return 0 })
		}
	}
	c.mutations = func() int64 {
		var total int64
		for _, fn := range stateFns {
			total += fn()
		}
		return total
	}
	return nil
}

// startClients creates the writer and the readers.
func (c *Cluster) startClients() error {
	wNode, err := c.net.Join(types.Writer())
	if err != nil {
		return err
	}
	wh := &writerHandle{}
	switch c.cfg.Protocol {
	case ProtocolFast, ProtocolFastByzantine:
		w, err := core.NewWriter(core.WriterConfig{
			Quorum:    c.qcfg,
			Byzantine: c.cfg.Protocol == ProtocolFastByzantine,
			Signer:    c.keys.Signer,
		}, wNode)
		if err != nil {
			return err
		}
		wh.write = func(ctx context.Context, v []byte) error { return w.Write(ctx, v) }
		wh.stats = func() (int64, int64) { return w.Stats() }
	case ProtocolABD:
		w, err := abd.NewWriter(abd.ClientConfig{Quorum: c.qcfg}, wNode)
		if err != nil {
			return err
		}
		wh.write = func(ctx context.Context, v []byte) error { return w.Write(ctx, v) }
		wh.stats = func() (int64, int64) { return w.Stats() }
	case ProtocolMaxMin:
		w, err := maxmin.NewWriter(c.qcfg, wNode, nil)
		if err != nil {
			return err
		}
		wh.write = func(ctx context.Context, v []byte) error { return w.Write(ctx, v) }
		wh.stats = func() (int64, int64) { return w.Stats() }
	case ProtocolRegular:
		w, err := regular.NewWriter(c.qcfg, wNode, nil)
		if err != nil {
			return err
		}
		wh.write = func(ctx context.Context, v []byte) error { return w.Write(ctx, v) }
		wh.stats = func() (int64, int64) { return w.Stats() }
	}
	c.writer = wh

	for i := 1; i <= c.cfg.Readers; i++ {
		rNode, err := c.net.Join(types.Reader(i))
		if err != nil {
			return err
		}
		rh := &readerHandle{index: i}
		switch c.cfg.Protocol {
		case ProtocolFast, ProtocolFastByzantine:
			r, err := core.NewReader(core.ReaderConfig{
				Quorum:    c.qcfg,
				Byzantine: c.cfg.Protocol == ProtocolFastByzantine,
				Verifier:  c.keys.Verifier,
			}, rNode)
			if err != nil {
				return err
			}
			rh.read = func(ctx context.Context) (ReadResult, error) {
				res, err := r.Read(ctx)
				if err != nil {
					return ReadResult{}, err
				}
				return ReadResult{
					Value:        res.Value,
					Version:      int64(res.Timestamp),
					RoundTrips:   res.RoundTrips,
					UsedFallback: !res.PredicateHeld,
				}, nil
			}
			rh.stats = func() (int64, int64, int64) { return r.Stats() }
		case ProtocolABD:
			r, err := abd.NewReader(abd.ClientConfig{Quorum: c.qcfg}, rNode)
			if err != nil {
				return err
			}
			rh.read = func(ctx context.Context) (ReadResult, error) {
				res, err := r.Read(ctx)
				if err != nil {
					return ReadResult{}, err
				}
				return ReadResult{Value: res.Value, Version: int64(res.Timestamp), RoundTrips: res.RoundTrips}, nil
			}
			rh.stats = func() (int64, int64, int64) { reads, rounds := r.Stats(); return reads, rounds, 0 }
		case ProtocolMaxMin:
			r, err := maxmin.NewReader(c.qcfg, rNode, nil)
			if err != nil {
				return err
			}
			rh.read = func(ctx context.Context) (ReadResult, error) {
				res, err := r.Read(ctx)
				if err != nil {
					return ReadResult{}, err
				}
				return ReadResult{Value: res.Value, Version: int64(res.Timestamp), RoundTrips: res.RoundTrips}, nil
			}
			rh.stats = func() (int64, int64, int64) { reads, rounds := r.Stats(); return reads, rounds, 0 }
		case ProtocolRegular:
			r, err := regular.NewReader(c.qcfg, rNode, nil)
			if err != nil {
				return err
			}
			rh.read = func(ctx context.Context) (ReadResult, error) {
				res, err := r.Read(ctx)
				if err != nil {
					return ReadResult{}, err
				}
				return ReadResult{Value: res.Value, Version: int64(res.Timestamp), RoundTrips: res.RoundTrips}, nil
			}
			rh.stats = func() (int64, int64, int64) { reads, rounds := r.Stats(); return reads, rounds, 0 }
		}
		c.reads = append(c.reads, rh)
	}
	return nil
}

// Writer returns the cluster's single write handle.
func (c *Cluster) Writer() Writer { return c.writer }

// Reader returns the read handle of reader ri (1-based).
func (c *Cluster) Reader(i int) (Reader, error) {
	if i < 1 || i > len(c.reads) {
		return nil, fmt.Errorf("%w: %d (R=%d)", ErrUnknownReader, i, len(c.reads))
	}
	return c.reads[i-1], nil
}

// Readers returns all read handles in index order.
func (c *Cluster) Readers() []Reader {
	out := make([]Reader, len(c.reads))
	for i, r := range c.reads {
		out[i] = r
	}
	return out
}

// CrashServer crash-stops server si (1-based): it stops receiving and
// sending messages permanently. Crashing more than Faulty servers voids the
// deployment's guarantees, exactly as in the model.
func (c *Cluster) CrashServer(i int) error {
	if i < 1 || i > c.cfg.Servers {
		return fmt.Errorf("%w: %d (S=%d)", ErrUnknownServer, i, c.cfg.Servers)
	}
	c.net.Crash(types.Server(i))
	return nil
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Stats aggregates client-side counters and network delivery counts.
func (c *Cluster) Stats() Stats {
	var s Stats
	if c.writer != nil {
		s.Writes, s.WriteRoundTrips = c.writer.stats()
	}
	for _, r := range c.reads {
		reads, rounds, fallbacks := r.stats()
		s.Reads += reads
		s.ReadRoundTrips += rounds
		s.FallbackReads += fallbacks
	}
	ns := c.net.Stats()
	s.DeliveredMsgs = ns.Delivered
	s.DroppedMsgs = ns.Dropped
	if c.mutations != nil {
		s.ServerMutations = c.mutations()
	}
	if s.Reads > 0 {
		s.ReadRoundsPerOp = float64(s.ReadRoundTrips) / float64(s.Reads)
	}
	if s.Writes > 0 {
		s.WriteRoundsPerOp = float64(s.WriteRoundTrips) / float64(s.Writes)
	}
	return s
}

// Network exposes the underlying in-memory network for tests, fault
// injection and the adversarial schedules.
func (c *Cluster) Network() *transport.InMemNetwork { return c.net }

// Close shuts the cluster down: all servers stop and the network is closed.
func (c *Cluster) Close() error {
	for _, stop := range c.stop {
		stop()
	}
	return c.net.Close()
}

// writerHandle adapts a protocol-specific writer to the Writer interface.
type writerHandle struct {
	write func(context.Context, []byte) error
	stats func() (int64, int64)
}

var _ Writer = (*writerHandle)(nil)

// Write implements Writer.
func (w *writerHandle) Write(ctx context.Context, value []byte) error {
	return w.write(ctx, value)
}

// readerHandle adapts a protocol-specific reader to the Reader interface.
type readerHandle struct {
	index int
	read  func(context.Context) (ReadResult, error)
	stats func() (int64, int64, int64)
}

var _ Reader = (*readerHandle)(nil)

// Read implements Reader.
func (r *readerHandle) Read(ctx context.Context) (ReadResult, error) {
	return r.read(ctx)
}
