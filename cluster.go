package fastread

import (
	"fastread/internal/transport"
)

// Cluster is a complete in-memory deployment of ONE register: S server
// processes, the single writer and R readers, all attached to an in-memory
// asynchronous network. It is the single-register entry point of the
// library, implemented as a thin wrapper around a Store serving only the
// default register (the empty key); use NewStore directly to multiplex many
// named registers over the same server processes.
type Cluster struct {
	store *Store
	reg   *Register
}

// NewCluster builds and starts a single-register deployment according to
// cfg.
//
// Unless cfg.ServerWorkers is set explicitly, a cluster's servers run ONE
// key-shard worker: all of a cluster's traffic carries the default key and
// would land on a single worker regardless, so extra workers would add a
// dispatch hop without any parallelism. One worker makes the executor
// degenerate to the inline serve loop. Registers later multiplexed through
// Store() share that worker; set ServerWorkers (e.g. to a negative value
// for GOMAXPROCS) to trade the hop for cross-key parallelism.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.ServerWorkers == 0 {
		cfg.ServerWorkers = 1
	}
	store, err := NewStore(cfg)
	if err != nil {
		return nil, err
	}
	reg, err := store.Register("")
	if err != nil {
		_ = store.Close()
		return nil, err
	}
	return &Cluster{store: store, reg: reg}, nil
}

// Store returns the underlying multi-register store; registers created
// through it share the cluster's servers with the cluster's own register.
func (c *Cluster) Store() *Store { return c.store }

// Writer returns the cluster's single write handle.
func (c *Cluster) Writer() Writer { return c.reg.Writer() }

// Reader returns the read handle of reader ri (1-based).
func (c *Cluster) Reader(i int) (Reader, error) { return c.reg.Reader(i) }

// Readers returns all read handles in index order.
func (c *Cluster) Readers() []Reader { return c.reg.Readers() }

// CrashServer crash-stops server si (1-based): it stops receiving and
// sending messages permanently. Crashing more than Faulty servers voids the
// deployment's guarantees, exactly as in the model.
func (c *Cluster) CrashServer(i int) error { return c.store.CrashServer(i) }

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.store.Config() }

// Stats aggregates client-side counters and network delivery counts.
func (c *Cluster) Stats() Stats { return c.store.Stats() }

// Network exposes the underlying in-memory network for tests, fault
// injection and the adversarial schedules. On backends without an in-memory
// network (TCP) it reports ErrUnsupported.
func (c *Cluster) Network() (*transport.InMemNetwork, error) { return c.store.Network() }

// Close shuts the cluster down: all servers stop and the network is closed.
func (c *Cluster) Close() error { return c.store.Close() }
