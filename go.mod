module fastread

go 1.24
