// Command tcpcluster runs the paper's fast atomic register over real TCP
// sockets on the loopback interface: every server, the writer and the reader
// is its own TCP endpoint, exactly as a distributed deployment would be laid
// out, and the protocol code is byte-for-byte the same as in the in-memory
// examples (it only ever sees the transport.Node interface).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fastread/internal/core"
	"fastread/internal/quorum"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}

	// One TCP endpoint per process, all on 127.0.0.1 with ephemeral ports.
	ids := []types.ProcessID{types.Writer(), types.Reader(1)}
	for i := 1; i <= cfg.Servers; i++ {
		ids = append(ids, types.Server(i))
	}
	nodes, book, err := tcpnet.LocalCluster(ids)
	if err != nil {
		return err
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	fmt.Println("process endpoints:")
	for _, id := range ids {
		fmt.Printf("  %-3s listening on %s\n", id, book[id])
	}
	fmt.Println()

	// Servers.
	for i := 1; i <= cfg.Servers; i++ {
		srv, err := core.NewServer(core.ServerConfig{ID: types.Server(i), Readers: cfg.Readers}, nodes[types.Server(i)])
		if err != nil {
			return err
		}
		srv.Start()
		defer srv.Stop()
	}

	// Clients.
	writer, err := core.NewWriter(core.WriterConfig{Quorum: cfg}, nodes[types.Writer()])
	if err != nil {
		return err
	}
	reader, err := core.NewReader(core.ReaderConfig{Quorum: cfg}, nodes[types.Reader(1)])
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	for i := 1; i <= 5; i++ {
		value := types.Value(fmt.Sprintf("payload-%d", i))
		start := time.Now()
		if err := writer.Write(ctx, value); err != nil {
			return fmt.Errorf("write %d: %w", i, err)
		}
		writeLatency := time.Since(start)

		start = time.Now()
		res, err := reader.Read(ctx)
		if err != nil {
			return fmt.Errorf("read %d: %w", i, err)
		}
		fmt.Printf("write #%d took %-10v  read returned %-12s ts=%d in %v (%d round-trip)\n",
			i, writeLatency.Round(10*time.Microsecond), res.Value, res.Timestamp,
			time.Since(start).Round(10*time.Microsecond), res.RoundTrips)
	}

	fmt.Println("\nall operations completed over TCP in a single communication round-trip each")
	return nil
}
