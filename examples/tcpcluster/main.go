// Command tcpcluster runs the register protocols over real TCP sockets on
// the loopback interface through the PUBLIC Store API: the only difference
// from an in-memory deployment is Config.Transport. Every server, the writer
// and the reader is its own TCP endpoint with an ephemeral port, exactly as
// a distributed deployment would be laid out, and the protocol code is
// byte-for-byte the same as in the in-memory examples.
//
// It deploys each protocol in turn, so the one-API-many-backends seam and
// the protocol driver registry are both on display: the loop body never
// mentions a protocol or a socket.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fastread"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	protocols := []fastread.Protocol{
		fastread.ProtocolFast,
		fastread.ProtocolABD,
		fastread.ProtocolMaxMin,
		fastread.ProtocolRegular,
	}
	for _, proto := range protocols {
		store, err := fastread.NewStore(fastread.Config{
			Servers:  4,
			Faulty:   1,
			Readers:  1,
			Protocol: proto,
			// The whole deployment on real loopback sockets; pass a non-nil
			// address book to pin processes to fixed host:port endpoints.
			Transport: fastread.TCP(nil),
		})
		if err != nil {
			return fmt.Errorf("%s: %w", proto, err)
		}

		reg, err := store.Register("demo")
		if err != nil {
			_ = store.Close()
			return err
		}
		reader, err := reg.Reader(1)
		if err != nil {
			_ = store.Close()
			return err
		}

		fmt.Printf("%-8s", proto)
		for i := 1; i <= 3; i++ {
			value := fmt.Sprintf("payload-%d", i)
			start := time.Now()
			if err := reg.Writer().Write(ctx, []byte(value)); err != nil {
				_ = store.Close()
				return fmt.Errorf("%s write %d: %w", proto, i, err)
			}
			writeLatency := time.Since(start)

			start = time.Now()
			res, err := reader.Read(ctx)
			if err != nil {
				_ = store.Close()
				return fmt.Errorf("%s read %d: %w", proto, i, err)
			}
			fmt.Printf("  w=%v r=%v(%dRT)", writeLatency.Round(10*time.Microsecond),
				time.Since(start).Round(10*time.Microsecond), res.RoundTrips)
		}
		stats := store.Stats()
		fmt.Printf("  [%d msgs over TCP]\n", stats.DeliveredMsgs)
		if err := store.Close(); err != nil {
			return err
		}
	}

	fmt.Println("\nevery protocol served the same Store API over real sockets")
	return nil
}
