// Command quickstart is the smallest possible use of the fastread library:
// build an in-memory cluster of the paper's fast atomic register, write a
// value, read it back in a single round-trip.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fastread"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 4 servers, at most 1 crash, 1 reader: within the paper's R < S/t − 2
	// bound, so every read is guaranteed to finish in one round-trip.
	cluster, err := fastread.NewCluster(fastread.Config{
		Servers: 4,
		Faulty:  1,
		Readers: 1,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	writer := cluster.Writer()
	reader, err := cluster.Reader(1)
	if err != nil {
		return err
	}

	if err := writer.Write(ctx, []byte("hello, atomic world")); err != nil {
		return fmt.Errorf("write: %w", err)
	}

	res, err := reader.Read(ctx)
	if err != nil {
		return fmt.Errorf("read: %w", err)
	}
	fmt.Printf("read %q (version %d) in %d round-trip(s)\n", res.Value, res.Version, res.RoundTrips)

	// Crash a server — within the failure bound nothing changes for clients.
	if err := cluster.CrashServer(4); err != nil {
		return err
	}
	if err := writer.Write(ctx, []byte("still here after a crash")); err != nil {
		return fmt.Errorf("write after crash: %w", err)
	}
	res, err = reader.Read(ctx)
	if err != nil {
		return fmt.Errorf("read after crash: %w", err)
	}
	fmt.Printf("read %q (version %d) after crashing one server\n", res.Value, res.Version)

	// The paper's exact bound is available as a helper.
	fmt.Printf("with S=4, t=1 a fast register supports at most %d readers\n", fastread.MaxFastReaders(4, 1, 0))
	return nil
}
