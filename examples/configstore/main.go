// Command configstore models the workload that motivates fast reads in the
// paper's introduction: a single operator (the writer) publishes
// configuration revisions, and a handful of application instances (the
// readers) poll it continuously. Reads vastly outnumber writes, so the
// difference between a one-round-trip read (the paper's fast register) and a
// two-round-trip read (classic ABD) dominates end-to-end latency.
//
// The example runs the same workload against both protocols over an
// in-memory network with a 1ms one-way message delay and prints the latency
// distribution of each, plus the resilience maths for the chosen deployment.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"fastread"
)

// revision is the configuration document the operator publishes.
type revision struct {
	Version  int               `json:"version"`
	Flags    map[string]bool   `json:"flags"`
	Backends map[string]string `json:"backends"`
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		servers = 5
		faulty  = 1
		readers = 2
		delay   = time.Millisecond
	)
	fmt.Printf("deployment: S=%d servers, t=%d may crash, R=%d readers\n", servers, faulty, readers)
	fmt.Printf("fast atomic reads possible: %v (max readers at this resilience: %d)\n\n",
		fastread.FastReadPossible(servers, faulty, 0, readers),
		fastread.MaxFastReaders(servers, faulty, 0))

	for _, proto := range []fastread.Protocol{fastread.ProtocolFast, fastread.ProtocolABD} {
		lat, err := runConfigWorkload(proto, servers, faulty, readers, delay)
		if err != nil {
			return fmt.Errorf("%v: %w", proto, err)
		}
		fmt.Printf("%-8s reads: p50=%v p95=%v max=%v (over %d reads)\n",
			proto, lat.p50, lat.p95, lat.max, lat.count)
	}
	fmt.Println("\nthe fast register answers every poll in a single round-trip; ABD pays a write-back round on every read")
	return nil
}

// latencySummary is a tiny local summary to keep the example dependency-free.
type latencySummary struct {
	count         int
	p50, p95, max time.Duration
}

// runConfigWorkload publishes a few revisions while readers poll, and returns
// the read-latency summary.
func runConfigWorkload(proto fastread.Protocol, servers, faulty, readers int, delay time.Duration) (latencySummary, error) {
	cluster, err := fastread.NewCluster(fastread.Config{
		Servers:      servers,
		Faulty:       faulty,
		Readers:      readers,
		Protocol:     proto,
		NetworkDelay: delay,
	})
	if err != nil {
		return latencySummary{}, err
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	var wg sync.WaitGroup

	// The operator publishes 5 revisions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := 1; v <= 5; v++ {
			doc, err := json.Marshal(revision{
				Version:  v,
				Flags:    map[string]bool{"new-checkout": v%2 == 0},
				Backends: map[string]string{"payments": fmt.Sprintf("payments-v%d", v)},
			})
			if err != nil {
				log.Printf("marshal revision %d: %v", v, err)
				return
			}
			if err := cluster.Writer().Write(ctx, doc); err != nil {
				log.Printf("publish revision %d: %v", v, err)
				return
			}
		}
	}()

	// Application instances poll the configuration.
	for i := 1; i <= readers; i++ {
		reader, err := cluster.Reader(i)
		if err != nil {
			return latencySummary{}, err
		}
		wg.Add(1)
		go func(r fastread.Reader) {
			defer wg.Done()
			lastVersion := -1
			for poll := 0; poll < 10; poll++ {
				start := time.Now()
				res, err := r.Read(ctx)
				if err != nil {
					log.Printf("poll: %v", err)
					return
				}
				elapsed := time.Since(start)
				mu.Lock()
				latencies = append(latencies, elapsed)
				mu.Unlock()
				if res.Value != nil {
					var rev revision
					if err := json.Unmarshal(res.Value, &rev); err == nil && rev.Version < lastVersion {
						log.Printf("ANOMALY: observed version %d after %d", rev.Version, lastVersion)
					} else if err == nil {
						lastVersion = rev.Version
					}
				}
			}
		}(reader)
	}
	wg.Wait()

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) == 0 {
		return latencySummary{}, fmt.Errorf("no reads completed")
	}
	return latencySummary{
		count: len(latencies),
		p50:   latencies[len(latencies)/2].Round(100 * time.Microsecond),
		p95:   latencies[len(latencies)*95/100].Round(100 * time.Microsecond),
		max:   latencies[len(latencies)-1].Round(100 * time.Microsecond),
	}, nil
}
