// Command sensorfeed models a telemetry head-value register: one ingestion
// process (the writer) continuously stores the latest sensor sample, and a
// set of dashboards (the readers) refresh concurrently. The example compares
// the paper's fast register against the decentralised max-min variant and
// the regular register, and shows how the reader-count bound R < S/t − 2
// governs which protocol a deployment can use.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"fastread"
)

// sample is the sensor reading stored in the register.
type sample struct {
	Sequence uint64
	Celsius  float64
}

// encode packs a sample into the register value.
func (s sample) encode() []byte {
	buf := make([]byte, 16)
	binary.BigEndian.PutUint64(buf[:8], s.Sequence)
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(s.Celsius))
	return buf
}

// decodeSample unpacks a register value.
func decodeSample(b []byte) (sample, bool) {
	if len(b) != 16 {
		return sample{}, false
	}
	return sample{
		Sequence: binary.BigEndian.Uint64(b[:8]),
		Celsius:  math.Float64frombits(binary.BigEndian.Uint64(b[8:])),
	}, true
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		servers    = 9
		faulty     = 1
		dashboards = 4
		delay      = 500 * time.Microsecond
	)
	fmt.Printf("deployment: S=%d, t=%d, %d dashboards\n", servers, faulty, dashboards)
	fmt.Printf("fast atomic reads need R < S/t − 2: max supported dashboards = %d\n\n",
		fastread.MaxFastReaders(servers, faulty, 0))

	protocols := []fastread.Protocol{fastread.ProtocolFast, fastread.ProtocolMaxMin, fastread.ProtocolRegular}
	for _, proto := range protocols {
		if err := runFeed(proto, servers, faulty, dashboards, delay); err != nil {
			return fmt.Errorf("%v: %w", proto, err)
		}
	}
	fmt.Println("\nfast and regular reads are one round-trip; max-min hides an extra server-to-server hop inside its single client round-trip")
	fmt.Println("only the fast and max-min registers are atomic: with the regular register two dashboards may briefly disagree about the freshest sample")
	return nil
}

// runFeed drives one protocol and prints its refresh statistics.
func runFeed(proto fastread.Protocol, servers, faulty, dashboards int, delay time.Duration) error {
	cluster, err := fastread.NewCluster(fastread.Config{
		Servers:      servers,
		Faulty:       faulty,
		Readers:      dashboards,
		Protocol:     proto,
		NetworkDelay: delay,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var (
		wg            sync.WaitGroup
		staleRefresh  atomic.Int64
		totalRefresh  atomic.Int64
		refreshNanos  atomic.Int64
		ingestedCount = 20
	)

	// Ingestion: one sample every few milliseconds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= ingestedCount; i++ {
			s := sample{Sequence: uint64(i), Celsius: 20 + float64(i)*0.25}
			if err := cluster.Writer().Write(ctx, s.encode()); err != nil {
				log.Printf("ingest %d: %v", i, err)
				return
			}
		}
	}()

	// Dashboards refresh concurrently and track whether their view ever goes
	// backwards (it must not, for the atomic protocols).
	for d := 1; d <= dashboards; d++ {
		reader, err := cluster.Reader(d)
		if err != nil {
			return err
		}
		wg.Add(1)
		go func(r fastread.Reader) {
			defer wg.Done()
			var lastSeq uint64
			for refresh := 0; refresh < 15; refresh++ {
				start := time.Now()
				res, err := r.Read(ctx)
				if err != nil {
					log.Printf("refresh: %v", err)
					return
				}
				refreshNanos.Add(time.Since(start).Nanoseconds())
				totalRefresh.Add(1)
				if s, ok := decodeSample(res.Value); ok {
					if s.Sequence < lastSeq {
						staleRefresh.Add(1)
					} else {
						lastSeq = s.Sequence
					}
				}
			}
		}(reader)
	}
	wg.Wait()

	stats := cluster.Stats()
	meanRefresh := time.Duration(0)
	if totalRefresh.Load() > 0 {
		meanRefresh = time.Duration(refreshNanos.Load() / totalRefresh.Load()).Round(10 * time.Microsecond)
	}
	fmt.Printf("%-8s refreshes=%-3d mean refresh latency=%-10v rounds/read=%.0f stale refreshes=%d\n",
		proto, totalRefresh.Load(), meanRefresh, stats.ReadRoundsPerOp, staleRefresh.Load())
	return nil
}
