// Command byzantine demonstrates the arbitrary-failure variant of the fast
// register (paper Figure 5): the writer signs every value, so even servers
// that lie about the register content cannot make readers return a value
// that was never written. The deployment satisfies S > (R+2)t + (R+1)b, the
// exact condition under which the paper proves fast reads remain possible
// despite b malicious servers.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fastread"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		servers   = 8
		faulty    = 1
		malicious = 1
		readers   = 1
	)
	if !fastread.FastReadPossible(servers, faulty, malicious, readers) {
		return fmt.Errorf("deployment violates the Byzantine fast-read bound")
	}
	fmt.Printf("deployment: S=%d, t=%d, b=%d, R=%d — S > (R+2)t + (R+1)b holds (%d > %d)\n\n",
		servers, faulty, malicious, readers,
		servers, (readers+2)*faulty+(readers+1)*malicious)

	cluster, err := fastread.NewCluster(fastread.Config{
		Servers:   servers,
		Faulty:    faulty,
		Malicious: malicious,
		Readers:   readers,
		Protocol:  fastread.ProtocolFastByzantine,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reader, err := cluster.Reader(1)
	if err != nil {
		return err
	}

	// Ordinary operation: signed writes, one-round-trip reads.
	secrets := []string{"ledger-epoch-1", "ledger-epoch-2", "ledger-epoch-3"}
	for _, s := range secrets {
		if err := cluster.Writer().Write(ctx, []byte(s)); err != nil {
			return fmt.Errorf("write %q: %w", s, err)
		}
		res, err := reader.Read(ctx)
		if err != nil {
			return fmt.Errorf("read: %w", err)
		}
		fmt.Printf("wrote %-16q  read back %-16q  version=%d  round-trips=%d\n",
			s, res.Value, res.Version, res.RoundTrips)
	}

	// Now crash a server (a benign failure within the t budget) and keep
	// going: the quorum arithmetic already budgets for it.
	if err := cluster.CrashServer(servers); err != nil {
		return err
	}
	if err := cluster.Writer().Write(ctx, []byte("after-crash")); err != nil {
		return fmt.Errorf("write after crash: %w", err)
	}
	res, err := reader.Read(ctx)
	if err != nil {
		return fmt.Errorf("read after crash: %w", err)
	}
	fmt.Printf("\nafter crashing one server: read %q (version %d), still one round-trip\n", res.Value, res.Version)

	stats := cluster.Stats()
	fmt.Printf("\ntotals: %d writes, %d reads, %.0f round-trips per read, %d messages delivered\n",
		stats.Writes, stats.Reads, stats.ReadRoundsPerOp, stats.DeliveredMsgs)
	fmt.Println("every value carried an ed25519 signature from the writer; forged or replayed replies are discarded by readers")
	return nil
}
