// Command multikv demonstrates the multi-register Store: a small key-value
// configuration service in which ONE fast-register deployment (S servers,
// one writer identity, R readers) serves MANY named keys, each an
// independent atomic register.
//
// The example registers a keyspace of per-service configuration entries,
// writes and rewrites them concurrently, and asserts the per-key contract
// that makes a keyed store out of independent registers:
//
//   - read-your-write per key: after a key's writer completes a write, that
//     key's readers return the new value (or a newer one) — in exactly one
//     round-trip under the fast protocol;
//   - isolation across keys: traffic on one key never bleeds into another,
//     checked here by embedding the key in every written value.
//
// All keys share the same seven server processes; adding a key costs a map entry
// on each server, not a new deployment.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"fastread"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		servers  = 7
		faulty   = 1
		readers  = 2
		services = 40
		rounds   = 5
	)
	store, err := fastread.NewStore(fastread.Config{
		Servers:  servers,
		Faulty:   faulty,
		Readers:  readers,
		Protocol: fastread.ProtocolFast,
	})
	if err != nil {
		return err
	}
	defer store.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	fmt.Printf("one deployment: S=%d servers, t=%d may crash, R=%d readers\n", servers, faulty, readers)
	fmt.Printf("serving %d config keys, %d revisions each, all concurrently\n\n", services, rounds)

	// Each service owns a handful of config keys; every key is its own
	// atomic register served by the shared cluster.
	keysOf := func(svc int) []string {
		return []string{
			fmt.Sprintf("svc-%02d/flags", svc),
			fmt.Sprintf("svc-%02d/backends", svc),
			fmt.Sprintf("svc-%02d/limits", svc),
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, services)
	for svc := 0; svc < services; svc++ {
		wg.Add(1)
		go func(svc int) {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				for _, key := range keysOf(svc) {
					reg, err := store.Register(key)
					if err != nil {
						errs <- err
						return
					}
					// The value embeds its key and revision so any cross-key
					// leak or lost write is detectable on read.
					want := fmt.Sprintf("%s@rev%d", key, round)
					if err := reg.Writer().Write(ctx, []byte(want)); err != nil {
						errs <- fmt.Errorf("write %s: %w", key, err)
						return
					}
					// Per-key read-your-write: every reader of this key now
					// sees this revision (or a newer one — here the key's
					// writer is this goroutine, so exactly this one).
					for _, reader := range reg.Readers() {
						res, err := reader.Read(ctx)
						if err != nil {
							errs <- fmt.Errorf("read %s: %w", key, err)
							return
						}
						if string(res.Value) != want {
							errs <- fmt.Errorf("key %s: read %q, want %q", key, res.Value, want)
							return
						}
						if res.RoundTrips != 1 {
							errs <- fmt.Errorf("key %s: read used %d round-trips, want 1", key, res.RoundTrips)
							return
						}
					}
				}
			}
		}(svc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	elapsed := time.Since(start)

	stats := store.Stats()
	keyCount := len(store.Keys())
	totalOps := stats.Writes + stats.Reads
	fmt.Printf("✓ %d keys served, %d writes + %d reads, all reads fast (1 round-trip)\n",
		keyCount, stats.Writes, stats.Reads)
	fmt.Printf("✓ per-key read-your-write held for every key and revision\n")
	fmt.Printf("✓ cross-key isolation held (every value carried its own key)\n")
	fmt.Printf("throughput: %.0f ops/sec over the shared cluster (%v total)\n",
		float64(totalOps)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	fmt.Printf("messages delivered: %d, server state mutations: %d\n",
		stats.DeliveredMsgs, stats.ServerMutations)
	return nil
}
