package fastread

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fastread/internal/transport"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/transport/udpnet"
	"fastread/internal/types"
)

// ErrUnsupported indicates a capability the store's transport backend does
// not provide: fault injection (CrashServer, Network) exists only on the
// in-memory network, where the adversary controls every delivery. Match it
// with errors.Is.
var ErrUnsupported = errors.New("fastread: operation not supported by this transport backend")

// Transport selects the message-passing backend a Store (or Cluster) runs
// on. The protocols themselves are transport-agnostic — they only ever see
// the node interface — so the same deployment configuration runs unchanged
// over either backend:
//
//   - InMemory (the default): the paper's asynchronous network as a
//     simulator, with full fault-injection capabilities (crashes, per-link
//     blocking, delays, adversarial schedules).
//   - TCP: every process is a real socket endpoint; delivery is as reliable
//     as the connections, and fault injection degrades to ErrUnsupported
//     (crash a process by killing it, partition by firewalling — the real
//     world is the fault injector).
//   - UDP: the raw-speed tier; real datagram sockets with batched syscalls,
//     loss mapped directly onto the paper's asynchronous model, and receive
//     filters for packet-loss injection.
//
// A Transport value is a reusable factory: each NewStore call opens an
// independent deployment from it. Implementations are provided by this
// package only.
type Transport interface {
	// String names the backend ("inmem", "tcp", "udp").
	String() string

	// connect opens one deployment's network session. Sealed: transports are
	// constructed with InMemory or TCP.
	connect(cfg Config) (transportSession, error)
}

// transportSession is one store's private view of its backend: a way to
// attach processes, the capability hooks, and shutdown.
type transportSession interface {
	join(id types.ProcessID) (transport.Node, error)
	close() error
	// crash crash-stops a process, or reports ErrUnsupported.
	crash(id types.ProcessID) error
	// inMem exposes the underlying in-memory network, or nil when the
	// backend is not the in-memory one.
	inMem() *transport.InMemNetwork
	// stats reports the backend's delivery and drop counters so far.
	stats() sessionStats
}

// sessionStats is a backend-neutral counter snapshot summed over a session's
// nodes; Store.Stats surfaces it field by field.
type sessionStats struct {
	// delivered counts protocol messages handed to inboxes, and frames the
	// transport frames that carried them (== delivered on backends without
	// a frame concept).
	delivered, frames int
	// sendDrops counts outbound messages discarded before leaving (bounded
	// write/datagram queues, unreachable peers); inboundDrops messages
	// discarded at full inboxes; dedupDrops datagrams rejected by the UDP
	// at-most-once windows.
	sendDrops, inboundDrops, dedupDrops int
	// mailboxHighWater is the deepest any process's inbound queue has ever
	// been (in-memory backend only; socket backends report 0 — their
	// inbound queues are bounded and overflow shows up as inboundDrops
	// instead).
	mailboxHighWater int
	// shedDrops counts deliveries shed by opt-in bounded server mailboxes
	// (Config.QueueBound; in-memory backend — socket backends report their
	// bounded-queue losses through the drop counters above).
	shedDrops int64
}

// dropped sums every way the backend lost a message.
func (s sessionStats) dropped() int { return s.sendDrops + s.inboundDrops + s.dedupDrops }

// InMemoryOption tweaks the in-memory backend.
type InMemoryOption func(*inMemTransport)

// WithDelay adds a uniform one-way delivery delay to every message, which
// makes round-trip counts directly visible in operation latency. It is the
// transport-level equivalent of Config.NetworkDelay.
func WithDelay(d time.Duration) InMemoryOption {
	return func(t *inMemTransport) {
		t.opts = append(t.opts, transport.WithDefaultDelay(d))
	}
}

// WithJitter adds a random extra delay in [0, j) to each delivery. It is the
// transport-level equivalent of Config.Jitter.
func WithJitter(j time.Duration) InMemoryOption {
	return func(t *inMemTransport) {
		t.opts = append(t.opts, transport.WithJitter(j))
	}
}

// WithSeed seeds the network's randomness; runs with equal seeds and
// schedules see equal jitter. It is the transport-level equivalent of
// Config.Seed.
func WithSeed(seed int64) InMemoryOption {
	return func(t *inMemTransport) {
		t.opts = append(t.opts, transport.WithSeed(seed))
	}
}

// WithVirtualClock runs the deployment on a virtual clock: every delivery,
// delay and jitter draw becomes a scheduled logical-clock event, executed
// one at a time in a deterministic total order, so a multi-minute chaos
// scenario runs in milliseconds of wall time and identical seeds produce
// identical message schedules. The caller owns the event loop — the clock
// only advances through VirtualClock.Step — which is what internal/sim's
// scenario runner does. Implies DisableBatching (under one-event-at-a-time
// delivery there is never a backlog to coalesce).
func WithVirtualClock(c *transport.VirtualClock) InMemoryOption {
	return func(t *inMemTransport) {
		t.opts = append(t.opts, transport.WithClock(c))
	}
}

// InMemory returns the in-memory transport backend: the paper's asynchronous
// reliable network as a single-process simulator, with every fault-injection
// capability available. It is the default when Config.Transport is nil.
//
// Options given here take precedence over the equivalent Config fields
// (NetworkDelay, Jitter, Seed), which remain supported for the common case.
func InMemory(opts ...InMemoryOption) Transport {
	t := &inMemTransport{}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// inMemTransport builds one in-memory network per store.
type inMemTransport struct {
	opts []transport.InMemOption
}

func (t *inMemTransport) String() string { return "inmem" }

func (t *inMemTransport) connect(cfg Config) (transportSession, error) {
	// Config-level knobs first, transport-level options after so the
	// explicit transport construction wins.
	opts := []transport.InMemOption{transport.WithSeed(cfg.Seed)}
	if !cfg.DisableBatching {
		// Delivery batching: node pumps coalesce consecutive same-sender
		// backlog into one wire.Batch handoff. Every consumer a Store wires
		// up (executors, demuxes, the client pipelines) is batch-aware.
		opts = append(opts, transport.WithBatching())
	}
	if cfg.NetworkDelay > 0 {
		opts = append(opts, transport.WithDefaultDelay(cfg.NetworkDelay))
	}
	if cfg.Jitter > 0 {
		opts = append(opts, transport.WithJitter(cfg.Jitter))
	}
	if cfg.QueueBound > 0 {
		opts = append(opts, transport.WithMailboxBound(cfg.QueueBound))
	}
	opts = append(opts, t.opts...)
	return &inMemSession{net: transport.NewInMemNetwork(opts...)}, nil
}

// inMemSession is the in-memory backend's session: a thin veneer over
// InMemNetwork with every capability present.
type inMemSession struct {
	net *transport.InMemNetwork
}

func (s *inMemSession) join(id types.ProcessID) (transport.Node, error) { return s.net.Join(id) }
func (s *inMemSession) close() error                                    { return s.net.Close() }
func (s *inMemSession) inMem() *transport.InMemNetwork                  { return s.net }

func (s *inMemSession) crash(id types.ProcessID) error {
	s.net.Crash(id)
	return nil
}

func (s *inMemSession) stats() sessionStats {
	ns := s.net.Stats()
	// No frame concept in memory: a delivery is its own frame. Every
	// in-memory drop happens on the delivery side (full inbox, adversary).
	return sessionStats{
		delivered:        ns.Delivered,
		frames:           ns.Delivered,
		inboundDrops:     ns.Dropped,
		mailboxHighWater: s.net.MailboxHighWater(),
		shedDrops:        s.net.MailboxShed(),
	}
}

// TCPOption tweaks the TCP backend.
type TCPOption func(*tcpTransport)

// WithDialTimeout bounds connection establishment to a peer (default 2s).
func WithDialTimeout(d time.Duration) TCPOption {
	return func(t *tcpTransport) { t.dialTimeout = d }
}

// WithWriteTimeout bounds a single buffered-frame flush to a peer's socket
// (default 2s).
func WithWriteTimeout(d time.Duration) TCPOption {
	return func(t *tcpTransport) { t.writeTimeout = d }
}

// TCP returns a transport backend that attaches every process of the
// deployment to a real TCP socket. The deployment then behaves exactly as a
// distributed one — length-prefixed frames over per-peer connections, lazy
// dialling, per-peer write batching — while the Store API stays unchanged.
//
// NewStore starts the WHOLE deployment (servers, writer, readers) in the
// calling process, each identity on its own listening socket, so every book
// address must be bindable on the local machine. Deployments spanning
// processes or machines run the same protocols through cmd/regserver and
// cmd/regclient instead.
//
// book maps process identities to "host:port" listen addresses using the
// textual identity form: "w" for the writer, "r1".."rR" for the readers and
// "s1".."sS" for the servers (the identity encodes the role). Identities
// missing from the book listen on an ephemeral loopback port and publish the
// chosen address to the deployment's shared live address table; passing a
// nil or empty book therefore runs the entire deployment over real sockets
// on 127.0.0.1 with no port assignment at all — the loopback mode the
// integration tests and examples use.
//
// Fault-injection capabilities (CrashServer, Network) report ErrUnsupported
// on this backend.
func TCP(book map[string]string, opts ...TCPOption) Transport {
	t := &tcpTransport{book: make(map[string]string, len(book))}
	for id, addr := range book {
		t.book[id] = addr
	}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// tcpTransport holds the deployment-independent TCP parameters.
type tcpTransport struct {
	book         map[string]string
	dialTimeout  time.Duration
	writeTimeout time.Duration
}

func (t *tcpTransport) String() string { return "tcp" }

func (t *tcpTransport) connect(cfg Config) (transportSession, error) {
	static := make(tcpnet.AddressBook, len(t.book))
	for idStr, addr := range t.book {
		id, err := types.ParseProcessID(idStr)
		if err != nil {
			return nil, fmt.Errorf("fastread: TCP address book entry %q: %w", idStr, err)
		}
		if addr == "" {
			return nil, fmt.Errorf("fastread: TCP address book entry %q has an empty address", idStr)
		}
		static[id] = addr
	}
	return &tcpSession{
		transport: t,
		static:    static,
		live:      make(tcpnet.AddressBook),
	}, nil
}

// tcpSession is one store's TCP deployment: each joined process owns a
// listening socket, and processes the static book does not cover are
// resolved through the live table filled in at join time.
type tcpSession struct {
	transport *tcpTransport
	static    tcpnet.AddressBook

	mu    sync.Mutex
	live  tcpnet.AddressBook
	nodes []*tcpnet.Node
}

func (s *tcpSession) join(id types.ProcessID) (transport.Node, error) {
	listenAddr := s.static[id]
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	node, err := tcpnet.Listen(tcpnet.Config{
		Self:         id,
		ListenAddr:   listenAddr,
		Book:         s.static,
		Resolve:      s.resolve,
		DialTimeout:  s.transport.dialTimeout,
		WriteTimeout: s.transport.writeTimeout,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.live[id] = node.Addr()
	s.nodes = append(s.nodes, node)
	s.mu.Unlock()
	return node, nil
}

// resolve serves the live address table to every node of the session; it
// covers the ephemeral-port processes the static book cannot name up front.
func (s *tcpSession) resolve(id types.ProcessID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.live[id]
	return addr, ok
}

func (s *tcpSession) close() error {
	// Keep the node list so stats() stays meaningful after close; Node.Close
	// is idempotent.
	s.mu.Lock()
	nodes := append([]*tcpnet.Node(nil), s.nodes...)
	s.mu.Unlock()
	var first error
	for _, n := range nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *tcpSession) crash(id types.ProcessID) error {
	return fmt.Errorf("%w: crash injection requires the in-memory network (kill the process instead)", ErrUnsupported)
}

func (s *tcpSession) inMem() *transport.InMemNetwork { return nil }

func (s *tcpSession) stats() sessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out sessionStats
	for _, n := range s.nodes {
		ns := n.Stats()
		out.delivered += int(ns.Delivered)
		out.frames += int(ns.Frames)
		out.sendDrops += int(ns.DroppedSend)
		out.inboundDrops += int(ns.DroppedInbound)
	}
	return out
}

// UDPOption tweaks the UDP backend.
type UDPOption func(*udpTransport)

// WithReceiveFilter installs a receive-side datagram filter on every process
// of the deployment: keep is called with the textual identity of each
// datagram's claimed sender ("w", "r1", "s3", ...) and returning false drops
// the datagram exactly as if the network had lost it. It exists for
// packet-loss injection in tests — the protocols must complete through the
// surviving quorum — and must be safe for concurrent use.
func WithReceiveFilter(keep func(from string) bool) UDPOption {
	return func(t *udpTransport) { t.filter = keep }
}

// UDP returns the raw-speed transport backend: every process of the
// deployment is a UDP socket endpoint exchanging datagrams with batched
// syscalls (sendmmsg/recvmmsg on Linux, falling back to per-datagram I/O
// elsewhere). Where the TCP backend layers the protocols over reliable
// streams, UDP maps the paper's asynchronous lossy network directly onto the
// wire: a datagram either arrives whole or never, senders never block or
// retransmit, and the protocols tolerate loss by construction (they only
// ever wait for S−t of S replies). Per-sender sequence windows restore
// at-most-once delivery, which UDP alone does not guarantee and the quorum
// counters require.
//
// book follows the same conventions as TCP's: textual identities mapped to
// "host:port" addresses, with missing identities bound to ephemeral loopback
// ports published through the deployment's live address table; a nil book
// runs the whole deployment over real datagram sockets on 127.0.0.1.
//
// Fault-injection capabilities (CrashServer, Network) report ErrUnsupported
// on this backend; packet loss is injected with WithReceiveFilter instead.
func UDP(book map[string]string, opts ...UDPOption) Transport {
	t := &udpTransport{book: make(map[string]string, len(book))}
	for id, addr := range book {
		t.book[id] = addr
	}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// udpTransport holds the deployment-independent UDP parameters.
type udpTransport struct {
	book   map[string]string
	filter func(from string) bool
}

func (t *udpTransport) String() string { return "udp" }

func (t *udpTransport) connect(cfg Config) (transportSession, error) {
	static := make(udpnet.AddressBook, len(t.book))
	for idStr, addr := range t.book {
		id, err := types.ParseProcessID(idStr)
		if err != nil {
			return nil, fmt.Errorf("fastread: UDP address book entry %q: %w", idStr, err)
		}
		if addr == "" {
			return nil, fmt.Errorf("fastread: UDP address book entry %q has an empty address", idStr)
		}
		static[id] = addr
	}
	s := &udpSession{
		transport: t,
		static:    static,
		live:      make(udpnet.AddressBook),
	}
	if t.filter != nil {
		keep := t.filter
		s.filter = func(from types.ProcessID) bool { return keep(from.String()) }
	}
	return s, nil
}

// udpSession is one store's UDP deployment: each joined process owns a bound
// datagram socket, and processes the static book does not cover are resolved
// through the live table filled in at join time.
type udpSession struct {
	transport *udpTransport
	static    udpnet.AddressBook
	filter    func(types.ProcessID) bool

	mu    sync.Mutex
	live  udpnet.AddressBook
	nodes []*udpnet.Node
}

func (s *udpSession) join(id types.ProcessID) (transport.Node, error) {
	listenAddr := s.static[id]
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	node, err := udpnet.Listen(udpnet.Config{
		Self:          id,
		ListenAddr:    listenAddr,
		Book:          s.static,
		Resolve:       s.resolve,
		ReceiveFilter: s.filter,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.live[id] = node.Addr()
	s.nodes = append(s.nodes, node)
	s.mu.Unlock()
	return node, nil
}

// resolve serves the live address table to every node of the session.
func (s *udpSession) resolve(id types.ProcessID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.live[id]
	return addr, ok
}

func (s *udpSession) close() error {
	s.mu.Lock()
	nodes := append([]*udpnet.Node(nil), s.nodes...)
	s.mu.Unlock()
	var first error
	for _, n := range nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *udpSession) crash(id types.ProcessID) error {
	return fmt.Errorf("%w: crash injection requires the in-memory network (kill the process instead)", ErrUnsupported)
}

func (s *udpSession) inMem() *transport.InMemNetwork { return nil }

func (s *udpSession) stats() sessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out sessionStats
	for _, n := range s.nodes {
		ns := n.Stats()
		out.delivered += int(ns.Delivered)
		out.frames += int(ns.Frames)
		out.sendDrops += int(ns.DroppedSend)
		out.inboundDrops += int(ns.DroppedInbound)
		out.dedupDrops += int(ns.DedupDrops)
	}
	return out
}
