package fastread

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"fastread/internal/transport"
	"fastread/internal/transport/tcpnet"
	"fastread/internal/types"
)

// ErrUnsupported indicates a capability the store's transport backend does
// not provide: fault injection (CrashServer, Network) exists only on the
// in-memory network, where the adversary controls every delivery. Match it
// with errors.Is.
var ErrUnsupported = errors.New("fastread: operation not supported by this transport backend")

// Transport selects the message-passing backend a Store (or Cluster) runs
// on. The protocols themselves are transport-agnostic — they only ever see
// the node interface — so the same deployment configuration runs unchanged
// over either backend:
//
//   - InMemory (the default): the paper's asynchronous network as a
//     simulator, with full fault-injection capabilities (crashes, per-link
//     blocking, delays, adversarial schedules).
//   - TCP: every process is a real socket endpoint; delivery is as reliable
//     as the connections, and fault injection degrades to ErrUnsupported
//     (crash a process by killing it, partition by firewalling — the real
//     world is the fault injector).
//
// A Transport value is a reusable factory: each NewStore call opens an
// independent deployment from it. Implementations are provided by this
// package only.
type Transport interface {
	// String names the backend ("inmem", "tcp").
	String() string

	// connect opens one deployment's network session. Sealed: transports are
	// constructed with InMemory or TCP.
	connect(cfg Config) (transportSession, error)
}

// transportSession is one store's private view of its backend: a way to
// attach processes, the capability hooks, and shutdown.
type transportSession interface {
	join(id types.ProcessID) (transport.Node, error)
	close() error
	// crash crash-stops a process, or reports ErrUnsupported.
	crash(id types.ProcessID) error
	// inMem exposes the underlying in-memory network, or nil when the
	// backend is not the in-memory one.
	inMem() *transport.InMemNetwork
	// stats reports messages delivered to and dropped by the backend so
	// far, plus the frame count (== delivered on backends without frames).
	stats() (delivered, dropped, frames int)
}

// InMemoryOption tweaks the in-memory backend.
type InMemoryOption func(*inMemTransport)

// WithDelay adds a uniform one-way delivery delay to every message, which
// makes round-trip counts directly visible in operation latency. It is the
// transport-level equivalent of Config.NetworkDelay.
func WithDelay(d time.Duration) InMemoryOption {
	return func(t *inMemTransport) {
		t.opts = append(t.opts, transport.WithDefaultDelay(d))
	}
}

// WithJitter adds a random extra delay in [0, j) to each delivery. It is the
// transport-level equivalent of Config.Jitter.
func WithJitter(j time.Duration) InMemoryOption {
	return func(t *inMemTransport) {
		t.opts = append(t.opts, transport.WithJitter(j))
	}
}

// WithSeed seeds the network's randomness; runs with equal seeds and
// schedules see equal jitter. It is the transport-level equivalent of
// Config.Seed.
func WithSeed(seed int64) InMemoryOption {
	return func(t *inMemTransport) {
		t.opts = append(t.opts, transport.WithSeed(seed))
	}
}

// InMemory returns the in-memory transport backend: the paper's asynchronous
// reliable network as a single-process simulator, with every fault-injection
// capability available. It is the default when Config.Transport is nil.
//
// Options given here take precedence over the equivalent Config fields
// (NetworkDelay, Jitter, Seed), which remain supported for the common case.
func InMemory(opts ...InMemoryOption) Transport {
	t := &inMemTransport{}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// inMemTransport builds one in-memory network per store.
type inMemTransport struct {
	opts []transport.InMemOption
}

func (t *inMemTransport) String() string { return "inmem" }

func (t *inMemTransport) connect(cfg Config) (transportSession, error) {
	// Config-level knobs first, transport-level options after so the
	// explicit transport construction wins.
	opts := []transport.InMemOption{transport.WithSeed(cfg.Seed)}
	if !cfg.DisableBatching {
		// Delivery batching: node pumps coalesce consecutive same-sender
		// backlog into one wire.Batch handoff. Every consumer a Store wires
		// up (executors, demuxes, the client pipelines) is batch-aware.
		opts = append(opts, transport.WithBatching())
	}
	if cfg.NetworkDelay > 0 {
		opts = append(opts, transport.WithDefaultDelay(cfg.NetworkDelay))
	}
	if cfg.Jitter > 0 {
		opts = append(opts, transport.WithJitter(cfg.Jitter))
	}
	opts = append(opts, t.opts...)
	return &inMemSession{net: transport.NewInMemNetwork(opts...)}, nil
}

// inMemSession is the in-memory backend's session: a thin veneer over
// InMemNetwork with every capability present.
type inMemSession struct {
	net *transport.InMemNetwork
}

func (s *inMemSession) join(id types.ProcessID) (transport.Node, error) { return s.net.Join(id) }
func (s *inMemSession) close() error                                    { return s.net.Close() }
func (s *inMemSession) inMem() *transport.InMemNetwork                  { return s.net }

func (s *inMemSession) crash(id types.ProcessID) error {
	s.net.Crash(id)
	return nil
}

func (s *inMemSession) stats() (delivered, dropped, frames int) {
	ns := s.net.Stats()
	// No frame concept in memory: a delivery is its own frame.
	return ns.Delivered, ns.Dropped, ns.Delivered
}

// TCPOption tweaks the TCP backend.
type TCPOption func(*tcpTransport)

// WithDialTimeout bounds connection establishment to a peer (default 2s).
func WithDialTimeout(d time.Duration) TCPOption {
	return func(t *tcpTransport) { t.dialTimeout = d }
}

// WithWriteTimeout bounds a single buffered-frame flush to a peer's socket
// (default 2s).
func WithWriteTimeout(d time.Duration) TCPOption {
	return func(t *tcpTransport) { t.writeTimeout = d }
}

// TCP returns a transport backend that attaches every process of the
// deployment to a real TCP socket. The deployment then behaves exactly as a
// distributed one — length-prefixed frames over per-peer connections, lazy
// dialling, per-peer write batching — while the Store API stays unchanged.
//
// NewStore starts the WHOLE deployment (servers, writer, readers) in the
// calling process, each identity on its own listening socket, so every book
// address must be bindable on the local machine. Deployments spanning
// processes or machines run the same protocols through cmd/regserver and
// cmd/regclient instead.
//
// book maps process identities to "host:port" listen addresses using the
// textual identity form: "w" for the writer, "r1".."rR" for the readers and
// "s1".."sS" for the servers (the identity encodes the role). Identities
// missing from the book listen on an ephemeral loopback port and publish the
// chosen address to the deployment's shared live address table; passing a
// nil or empty book therefore runs the entire deployment over real sockets
// on 127.0.0.1 with no port assignment at all — the loopback mode the
// integration tests and examples use.
//
// Fault-injection capabilities (CrashServer, Network) report ErrUnsupported
// on this backend.
func TCP(book map[string]string, opts ...TCPOption) Transport {
	t := &tcpTransport{book: make(map[string]string, len(book))}
	for id, addr := range book {
		t.book[id] = addr
	}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// tcpTransport holds the deployment-independent TCP parameters.
type tcpTransport struct {
	book         map[string]string
	dialTimeout  time.Duration
	writeTimeout time.Duration
}

func (t *tcpTransport) String() string { return "tcp" }

func (t *tcpTransport) connect(cfg Config) (transportSession, error) {
	static := make(tcpnet.AddressBook, len(t.book))
	for idStr, addr := range t.book {
		id, err := types.ParseProcessID(idStr)
		if err != nil {
			return nil, fmt.Errorf("fastread: TCP address book entry %q: %w", idStr, err)
		}
		if addr == "" {
			return nil, fmt.Errorf("fastread: TCP address book entry %q has an empty address", idStr)
		}
		static[id] = addr
	}
	return &tcpSession{
		transport: t,
		static:    static,
		live:      make(tcpnet.AddressBook),
	}, nil
}

// tcpSession is one store's TCP deployment: each joined process owns a
// listening socket, and processes the static book does not cover are
// resolved through the live table filled in at join time.
type tcpSession struct {
	transport *tcpTransport
	static    tcpnet.AddressBook

	mu    sync.Mutex
	live  tcpnet.AddressBook
	nodes []*tcpnet.Node
}

func (s *tcpSession) join(id types.ProcessID) (transport.Node, error) {
	listenAddr := s.static[id]
	if listenAddr == "" {
		listenAddr = "127.0.0.1:0"
	}
	node, err := tcpnet.Listen(tcpnet.Config{
		Self:         id,
		ListenAddr:   listenAddr,
		Book:         s.static,
		Resolve:      s.resolve,
		DialTimeout:  s.transport.dialTimeout,
		WriteTimeout: s.transport.writeTimeout,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.live[id] = node.Addr()
	s.nodes = append(s.nodes, node)
	s.mu.Unlock()
	return node, nil
}

// resolve serves the live address table to every node of the session; it
// covers the ephemeral-port processes the static book cannot name up front.
func (s *tcpSession) resolve(id types.ProcessID) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	addr, ok := s.live[id]
	return addr, ok
}

func (s *tcpSession) close() error {
	// Keep the node list so stats() stays meaningful after close; Node.Close
	// is idempotent.
	s.mu.Lock()
	nodes := append([]*tcpnet.Node(nil), s.nodes...)
	s.mu.Unlock()
	var first error
	for _, n := range nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *tcpSession) crash(id types.ProcessID) error {
	return fmt.Errorf("%w: crash injection requires the in-memory network (kill the process instead)", ErrUnsupported)
}

func (s *tcpSession) inMem() *transport.InMemNetwork { return nil }

func (s *tcpSession) stats() (delivered, dropped, frames int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, n := range s.nodes {
		ns := n.Stats()
		delivered += int(ns.Delivered)
		dropped += int(ns.DroppedInbound + ns.DroppedSend)
		frames += int(ns.Frames)
	}
	return delivered, dropped, frames
}
