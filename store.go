package fastread

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fastread/internal/driver"
	"fastread/internal/durable"
	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/topology"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by the Store API.
var (
	// ErrStoreClosed indicates an operation on a closed store.
	ErrStoreClosed = errors.New("fastread: store is closed")
	// ErrKeyTooLong indicates a register key exceeding the wire format's
	// limit (wire.MaxKeySize bytes).
	ErrKeyTooLong = errors.New("fastread: register key too long")
)

// MaxKeyLen is the longest register key a Store accepts, in bytes.
const MaxKeyLen = wire.MaxKeySize

// defaultGroupName labels the implicit replica group of an unpartitioned
// deployment (Config.Groups empty) in GroupOf, Register.Group and the
// per-group Stats breakdown.
const defaultGroupName = "default"

// Store is a complete register deployment serving MANY named registers. In
// its simplest shape it is ONE replica group: S servers, the single writer
// identity and R reader identities, all attached to the same transport
// backend — the in-memory asynchronous network by default, or real sockets
// when Config.Transport is fastread.TCP or fastread.UDP (see Transport).
//
// With Config.Groups set, the store instead PARTITIONS the keyspace across
// several independent replica groups: a consistent-hash ring over the group
// names (internal/topology) assigns every key an owning group, and each
// group is its own complete deployment — its own transport session, servers,
// writer and reader identities, and its own quorum parameters. Register
// resolves the owning group BEFORE any protocol driver is involved, so a
// key's operations only ever touch its group's S servers: groups exchange no
// messages, which is exactly why per-key atomicity composes — each group is
// the single-group deployment the paper's proofs are about. Groups are
// instantiated lazily, on the first Register of a key they own.
//
// Each named register is an independent instance of the configured protocol:
// servers keep fully separate per-key state (timestamps, seen sets, client
// counters), so per-key atomicity is exactly the single-register guarantee
// of the paper, multiplied across the keyspace. A group's writer and reader
// processes join its network once; their traffic is demultiplexed by the
// register key carried in every protocol message, so adding a register costs
// a map entry per server and a handful of client-side state, not a new
// process set.
//
// The protocol implementation itself is resolved through the driver
// registry: every protocol registers uniform server/writer/reader factories,
// and the store composes them with the transport — no per-protocol code
// lives here.
//
// Register hands out the per-key write/read handles. A Cluster is a Store
// serving only the default register (the empty key).
type Store struct {
	cfg Config
	drv driver.Driver

	// ring maps keys onto spec indexes; nil for single-group deployments,
	// where every key trivially belongs to group 0.
	ring  *topology.Ring
	specs []groupSpec

	// groups is index-aligned with specs; entries stay nil until the group
	// is instantiated by the first Register of a key it owns. Guarded by mu.
	groups []*storeGroup

	// closed flips before shutdown begins so handle operations issued after
	// Close fail fast with ErrStoreClosed instead of waiting out their
	// contexts against a dead network. (The flag is checked at operation
	// entry: an operation already inside its quorum wait when Close runs
	// still observes its own context.)
	closed atomic.Bool

	mu   sync.Mutex
	regs map[string]*Register
}

// groupSpec is one replica group's resolved configuration: what it takes to
// instantiate the group, without instantiating it.
type groupSpec struct {
	name string
	qcfg quorum.Config
	tr   Transport // nil means the deployment default
}

// storeGroup is one instantiated replica group: a complete independent
// deployment (transport session, servers, client demultiplexers, signing
// keys). Groups share nothing — not even a signature keypair — so the
// failure and capacity envelope of one group never touches another.
type storeGroup struct {
	name    string
	qcfg    quorum.Config
	session transportSession
	keys    sig.KeyPair

	// srvMu guards servers: RestartServer swaps entries while Stats and
	// close iterate. The slice length is fixed at startGroup.
	srvMu   sync.Mutex
	servers []driver.Server

	// durCounters is index-aligned with servers; each entry is the sink one
	// server's durable log publishes its counters into. The SAME sink spans
	// restarts — a new incarnation keeps accumulating where the old one
	// stopped — so Stats never loses recovery history to a restart. Nil when
	// the deployment is not durable; read-only after startGroup.
	durCounters []*durable.Counters

	writerDemux   *transport.Demux
	readerDemuxes []*transport.Demux
}

// Register is the pair of per-key handles a Store serves for one named
// register: the register's single writer and its R readers. Handles share
// the owning replica group's transport processes with every other register
// of that group.
type Register struct {
	key    string
	gi     int
	g      *storeGroup
	writer *writerHandle
	reads  []*readerHandle
}

// NewStore builds and starts a multi-register deployment according to cfg.
// The deployment serves an open-ended keyspace: call Register to obtain the
// handles for any key.
func NewStore(cfg Config) (*Store, error) {
	name := cfg.ProtocolName
	if name == "" {
		if cfg.Protocol == 0 {
			cfg.Protocol = ProtocolFast
		}
		if !cfg.Protocol.Valid() {
			return nil, fmt.Errorf("%w: %d", ErrUnknownProtocol, cfg.Protocol)
		}
		name = cfg.Protocol.String()
	}
	drv, ok := driver.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: no driver registered for %q", ErrUnknownProtocol, name)
	}
	for _, b := range cfg.Byzantine {
		if b < ByzantineForgeTimestamp || b > ByzantineFlood {
			return nil, fmt.Errorf("fastread: unknown byzantine behaviour %d", b)
		}
	}
	specs, ring, err := resolveGroups(cfg, drv)
	if err != nil {
		return nil, err
	}

	s := &Store{
		cfg:    cfg,
		drv:    drv,
		ring:   ring,
		specs:  specs,
		groups: make([]*storeGroup, len(specs)),
		regs:   make(map[string]*Register),
	}
	if len(cfg.Groups) == 0 {
		// An unpartitioned deployment starts its single group eagerly: the
		// servers exist as soon as NewStore returns, exactly as they always
		// have. Partitioned deployments instantiate each group on the first
		// Register of a key it owns.
		s.mu.Lock()
		_, err := s.groupLocked(0)
		s.mu.Unlock()
		if err != nil {
			_ = s.Close()
			return nil, err
		}
	}
	return s, nil
}

// resolveGroups turns the deployment configuration into the ordered group
// spec list and, for partitioned deployments, the placement ring. Every
// group's quorum shape is validated here — including against the driver's
// protocol bound — so a partitioned deployment fails at NewStore, not at the
// first Register that happens to land on a misshapen group.
func resolveGroups(cfg Config, drv driver.Driver) ([]groupSpec, *topology.Ring, error) {
	validate := func(name string, q quorum.Config) error {
		if err := q.Validate(); err != nil {
			if name != "" {
				return fmt.Errorf("fastread: group %q: %w", name, err)
			}
			return err
		}
		if err := drv.Validate(q); err != nil {
			if name != "" {
				return fmt.Errorf("fastread: group %q: %w", name, err)
			}
			return err
		}
		for i := range cfg.Byzantine {
			if i < 1 || i > q.Servers {
				return fmt.Errorf("%w: Byzantine index %d (S=%d)", ErrUnknownServer, i, q.Servers)
			}
		}
		return nil
	}

	if len(cfg.Groups) == 0 {
		q := quorum.Config{
			Servers:   cfg.Servers,
			Faulty:    cfg.Faulty,
			Malicious: cfg.Malicious,
			Readers:   cfg.Readers,
		}
		if err := validate("", q); err != nil {
			return nil, nil, err
		}
		return []groupSpec{{name: defaultGroupName, qcfg: q, tr: cfg.Transport}}, nil, nil
	}

	specs := make([]groupSpec, len(cfg.Groups))
	names := make([]string, len(cfg.Groups))
	for i, g := range cfg.Groups {
		if g.Name == "" {
			return nil, nil, fmt.Errorf("fastread: group %d has an empty name (the ring places keys by name)", i)
		}
		q := quorum.Config{
			Servers:   g.Servers,
			Faulty:    g.Faulty,
			Malicious: g.Malicious,
			Readers:   cfg.Readers,
		}
		// Zero-valued per-group parameters inherit the deployment level, so
		// a homogeneous fleet is just a list of names.
		if q.Servers == 0 {
			q.Servers = cfg.Servers
		}
		if q.Faulty == 0 {
			q.Faulty = cfg.Faulty
		}
		if q.Malicious == 0 {
			q.Malicious = cfg.Malicious
		}
		if err := validate(g.Name, q); err != nil {
			return nil, nil, err
		}
		tr := g.Transport
		if tr == nil {
			tr = cfg.Transport
		}
		specs[i] = groupSpec{name: g.Name, qcfg: q, tr: tr}
		names[i] = g.Name
	}
	ring, err := topology.NewRing(names, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("fastread: %w", err)
	}
	return specs, ring, nil
}

// groupIndex resolves a key's owning group: one ring lookup — one hash plus
// one binary search, no allocation — or nothing at all for the single-group
// deployment every pre-partitioning caller still runs.
func (s *Store) groupIndex(key string) int {
	if s.ring == nil {
		return 0
	}
	return s.ring.Lookup(key)
}

// groupLocked returns the instantiated group gi, building it on first use.
// Callers must hold s.mu.
func (s *Store) groupLocked(gi int) (*storeGroup, error) {
	if g := s.groups[gi]; g != nil {
		return g, nil
	}
	spec := s.specs[gi]
	tr := spec.tr
	if tr == nil {
		tr = InMemory()
	}
	session, err := tr.connect(s.cfg)
	if err != nil {
		return nil, fmt.Errorf("fastread: group %q: %w", spec.name, err)
	}
	g := &storeGroup{
		name:    spec.name,
		qcfg:    spec.qcfg,
		session: session,
		keys:    sig.MustKeyPair(),
	}
	if err := s.startGroup(g); err != nil {
		_ = g.close()
		return nil, err
	}
	s.groups[gi] = g
	return g, nil
}

// startGroup launches the group's servers and attaches its writer and reader
// identities. Each server executes its messages on a key-sharded executor
// with cfg.ServerWorkers workers, so one server process serves every
// register the group owns, in parallel across keys.
func (s *Store) startGroup(g *storeGroup) error {
	if s.cfg.DataDir != "" {
		g.durCounters = make([]*durable.Counters, g.qcfg.Servers)
		for i := range g.durCounters {
			g.durCounters[i] = &durable.Counters{}
		}
	}
	for i := 1; i <= g.qcfg.Servers; i++ {
		id := types.Server(i)
		node, err := g.session.join(id)
		if err != nil {
			return fmt.Errorf("group %q: join %v: %w", g.name, id, err)
		}
		srv, err := s.newGroupServer(g, i, node)
		if err != nil {
			return err
		}
		srv.Start()
		g.srvMu.Lock()
		g.servers = append(g.servers, srv)
		g.srvMu.Unlock()
	}
	wNode, err := g.session.join(types.Writer())
	if err != nil {
		return err
	}
	g.writerDemux = transport.NewDemux(wNode, protoutil.WireKeyFunc, 0)
	g.writerDemux.SetRouteBound(s.cfg.RouteBound)
	for i := 1; i <= s.cfg.Readers; i++ {
		rNode, err := g.session.join(types.Reader(i))
		if err != nil {
			return err
		}
		rd := transport.NewDemux(rNode, protoutil.WireKeyFunc, 0)
		rd.SetRouteBound(s.cfg.RouteBound)
		g.readerDemuxes = append(g.readerDemuxes, rd)
	}
	return nil
}

// newGroupServer builds (but does not start) server i of the group: the
// configured Byzantine replacement if the index is listed, the protocol
// driver's server otherwise. Byzantine servers never persist — an arbitrary-
// faulty process gets no say in what recovery replays.
func (s *Store) newGroupServer(g *storeGroup, i int, node transport.Node) (driver.Server, error) {
	if b, ok := s.cfg.Byzantine[i]; ok {
		// Byzantine behaviours apply per group: each group's server i
		// misbehaves, and each group's b bound is validated against it.
		return newByzantineServer(s.cfg, b, types.Server(i), node)
	}
	return s.drv.NewServer(driver.ServerConfig{
		ID:         types.Server(i),
		Quorum:     g.qcfg,
		Verifier:   g.keys.Verifier,
		Workers:    s.cfg.ServerWorkers,
		QueueBound: s.cfg.QueueBound,
		Durable:    s.durableOptions(g, i),
	}, node)
}

// durableOptions resolves server i's write-ahead-log configuration, or nil
// for an in-memory-only deployment. Each server's log lives in its own
// directory, DataDir/<group>/s<i>, and publishes its counters into the
// group's per-index sink so restarts accumulate rather than reset.
func (s *Store) durableOptions(g *storeGroup, i int) *durable.Options {
	if s.cfg.DataDir == "" {
		return nil
	}
	d := s.cfg.Durability
	return &durable.Options{
		Dir:           filepath.Join(s.cfg.DataDir, g.name, fmt.Sprintf("s%d", i)),
		Fsync:         durable.Policy(d.Fsync),
		FsyncEvery:    d.FsyncInterval,
		SegmentBytes:  d.SegmentBytes,
		SnapshotEvery: d.SnapshotEvery,
		Epoch:         d.Epoch,
		SimulateCrash: d.SimulateCrash,
		Counters:      g.durCounters[i-1],
	}
}

// close shuts one group down: servers stop, the transport session closes,
// and the demux pumps are drained.
func (g *storeGroup) close() error {
	g.srvMu.Lock()
	servers := append([]driver.Server(nil), g.servers...)
	g.srvMu.Unlock()
	for _, srv := range servers {
		srv.Stop()
	}
	err := g.session.close()
	// Closing the transport closes the physical client nodes, which
	// terminates the demux pumps; waiting on them guarantees no goroutine
	// outlives Close.
	if g.writerDemux != nil {
		_ = g.writerDemux.Close()
	}
	for _, d := range g.readerDemuxes {
		_ = d.Close()
	}
	return err
}

// Register returns the handles for the named register, creating its per-key
// clients on first use. Calling Register again with the same key returns the
// SAME handles: each register has exactly one writer (the model's single
// writer) and R readers, and the handles carry protocol state (the writer's
// timestamp sequence, the readers' observed maxima) that must not be forked.
//
// In a partitioned deployment, Register is also where routing happens: the
// key's owning replica group is resolved on the ring — before any protocol
// driver sees the key — and the handles are built over that group's
// transport, instantiating the group if this is the first of its keys.
func (s *Store) Register(key string) (*Register, error) {
	if len(key) > MaxKeyLen {
		return nil, fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLong, len(key), MaxKeyLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrStoreClosed
	}
	if reg, ok := s.regs[key]; ok {
		return reg, nil
	}
	gi := s.groupIndex(key)
	g, err := s.groupLocked(gi)
	if err != nil {
		return nil, err
	}
	reg, err := s.newRegister(g, gi, key)
	if err != nil {
		return nil, err
	}
	s.regs[key] = reg
	return reg, nil
}

// newRegister builds the per-key writer and reader clients over the owning
// group's transport, through the protocol driver's uniform factories.
// Callers must hold s.mu.
func (s *Store) newRegister(g *storeGroup, gi int, key string) (*Register, error) {
	w, err := s.drv.NewWriter(s.clientConfig(g, key), g.writerDemux.Route(key))
	if err != nil {
		return nil, err
	}
	reg := &Register{key: key, gi: gi, g: g, writer: &writerHandle{store: s, w: w}}
	for i := 1; i <= s.cfg.Readers; i++ {
		r, err := s.drv.NewReader(s.clientConfig(g, key), g.readerDemuxes[i-1].Route(key))
		if err != nil {
			return nil, err
		}
		rh := &readerHandle{store: s, index: i}
		rh.setReader(r)
		reg.reads = append(reg.reads, rh)
	}
	return reg, nil
}

// clientConfig assembles one per-key client's driver configuration against
// its owning group's quorum shape and signing keys. Each call draws a fresh
// nonce from NonceSource (when configured) so every handle — including a
// restarted reader incarnation — gets its own.
func (s *Store) clientConfig(g *storeGroup, key string) driver.ClientConfig {
	cfg := driver.ClientConfig{
		Key:      key,
		Quorum:   g.qcfg,
		Signer:   g.keys.Signer,
		Verifier: g.keys.Verifier,
		Depth:    s.cfg.PipelineDepth,
	}
	if s.cfg.NonceSource != nil {
		cfg.Nonce = s.cfg.NonceSource()
	}
	return cfg
}

// Keys returns the keys of every register this store has handed out, in no
// particular order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.regs))
	for k := range s.regs {
		out = append(out, k)
	}
	return out
}

// Groups returns the ordered replica group names of the deployment. An
// unpartitioned store reports its single implicit group.
func (s *Store) Groups() []string {
	out := make([]string, len(s.specs))
	for i, spec := range s.specs {
		out[i] = spec.name
	}
	return out
}

// GroupOf reports which replica group owns key: a pure ring computation —
// no group is instantiated, no message sent — so any process sharing the
// deployment's configuration computes the same answer.
func (s *Store) GroupOf(key string) string {
	return s.specs[s.groupIndex(key)].name
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// CrashServer crash-stops server si (1-based): it stops receiving and
// sending messages permanently. In a partitioned deployment the crash
// applies to server si of EVERY instantiated replica group whose size covers
// the index — each group runs its own failure budget, so crashing more than
// a group's Faulty servers voids that group's guarantees, exactly as in the
// model. Groups instantiated after the call start with all servers healthy.
//
// Crash injection is a capability of the in-memory backend; on other
// transports CrashServer reports ErrUnsupported.
func (s *Store) CrashServer(i int) error {
	if i < 1 {
		return fmt.Errorf("%w: %d", ErrUnknownServer, i)
	}
	s.mu.Lock()
	groups := append([]*storeGroup(nil), s.groups...)
	s.mu.Unlock()
	inRange := false
	var first error
	for gi, spec := range s.specs {
		if i > spec.qcfg.Servers {
			continue
		}
		inRange = true
		if g := groups[gi]; g != nil {
			if err := g.session.crash(types.Server(i)); err != nil && first == nil {
				first = err
			}
		}
	}
	if !inRange {
		return fmt.Errorf("%w: %d (S=%d)", ErrUnknownServer, i, s.maxServers())
	}
	return first
}

// maxServers is the widest group's size, for error messages.
func (s *Store) maxServers() int {
	max := 0
	for _, spec := range s.specs {
		if spec.qcfg.Servers > max {
			max = spec.qcfg.Servers
		}
	}
	return max
}

// RestartServer stops server si (1-based) and starts a NEW incarnation of it
// on the same transport identity, recovering whatever the old incarnation
// persisted. In a durable deployment (Config.DataDir) the new incarnation
// replays its snapshot and log tail, bumps its persisted incarnation counter
// and rejoins with every acknowledged register value intact (minus whatever
// the fsync policy permitted to be lost); in an in-memory-only deployment it
// rejoins amnesiac, which is only safe while the deployment's total failure
// budget covers it. The restart models a process crash, not a graceful
// handover: the old incarnation is stopped without a final flush when
// Config.Durability.SimulateCrash is set (internal/sim's mode), and messages
// queued at the dead incarnation are lost with it.
//
// In a partitioned deployment the restart applies to server si of every
// INSTANTIATED replica group whose size covers the index, mirroring
// CrashServer. A server previously crashed with CrashServer is restartable:
// the new incarnation clears the crash mark when it rejoins — CrashServer
// alone remains "gone forever", RestartServer is what brings a fresh
// incarnation back. Requires a backend whose identities can rejoin; the
// in-memory transport supports it, socket backends report their own errors.
func (s *Store) RestartServer(i int) error {
	if i < 1 {
		return fmt.Errorf("%w: %d", ErrUnknownServer, i)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrStoreClosed
	}
	inRange := false
	for gi, spec := range s.specs {
		if i > spec.qcfg.Servers {
			continue
		}
		inRange = true
		g := s.groups[gi]
		if g == nil {
			// Uninstantiated groups have no incarnation to restart; they
			// start fresh servers when their first key arrives.
			continue
		}
		g.srvMu.Lock()
		old := g.servers[i-1]
		g.srvMu.Unlock()
		// Stop closes the old node (freeing the identity for rejoin) and the
		// old durable log (truncating to the synced offset under
		// SimulateCrash — the crash point is wherever the log stood).
		old.Stop()
		node, err := g.session.join(types.Server(i))
		if err != nil {
			return fmt.Errorf("fastread: restart server %d: group %q: %w", i, g.name, err)
		}
		srv, err := s.newGroupServer(g, i, node)
		if err != nil {
			return fmt.Errorf("fastread: restart server %d: group %q: %w", i, g.name, err)
		}
		srv.Start()
		g.srvMu.Lock()
		g.servers[i-1] = srv
		g.srvMu.Unlock()
	}
	if !inRange {
		return fmt.Errorf("%w: %d (S=%d)", ErrUnknownServer, i, s.maxServers())
	}
	return nil
}

// RestartReader tears down reader ri's client for the named register and
// builds a fresh one over a new demux route, modelling a reader process
// restart: in-flight reads of the old incarnation fail (their inbox is
// severed — the operation dies with the process), client-side protocol state
// is lost, and the new incarnation resumes with a fresh initial nonce. The
// register must already exist (see Register); the reader's other keys and
// all other handles are untouched.
//
// Servers remember the highest operation counter each reader identity used
// (the stale-request guard), so the restart exercises the nonce/incarnation
// machinery: a NonceSource that fails to move forward starves the new
// incarnation, which is exactly the PR 5 latent bug internal/sim pins as a
// fixture.
func (s *Store) RestartReader(key string, i int) error {
	if i < 1 || i > s.cfg.Readers {
		return fmt.Errorf("%w: %d (R=%d)", ErrUnknownReader, i, s.cfg.Readers)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrStoreClosed
	}
	reg, ok := s.regs[key]
	if !ok {
		return fmt.Errorf("fastread: no register %q (Register it before restarting its readers)", key)
	}
	d := reg.g.readerDemuxes[i-1]
	// Sever the old incarnation: closing the route fails its pending
	// operations with the pipeline's inbox-closed error. A later Route call
	// for the same key creates a fresh route.
	_ = d.Route(key).Close()
	r, err := s.drv.NewReader(s.clientConfig(reg.g, key), d.Route(key))
	if err != nil {
		return err
	}
	reg.reads[i-1].setReader(r)
	return nil
}

// Network exposes the underlying in-memory network for tests, fault
// injection and the adversarial schedules. On backends without an in-memory
// network (TCP, UDP) it reports ErrUnsupported, as it does on partitioned
// deployments — each replica group there runs its own independent network,
// so there is no single network to expose.
func (s *Store) Network() (*transport.InMemNetwork, error) {
	if len(s.specs) > 1 {
		return nil, fmt.Errorf("%w: a partitioned deployment has one network per replica group", ErrUnsupported)
	}
	s.mu.Lock()
	g, err := s.groupLocked(0)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if net := g.session.inMem(); net != nil {
		return net, nil
	}
	return nil, fmt.Errorf("%w: no in-memory network on the %s transport", ErrUnsupported, s.cfg.Transport)
}

// Stats aggregates client-side counters across every register, plus network
// delivery counts and server state mutations. The Groups breakdown
// attributes the same counters to each replica group — one entry per group
// in configuration order, zero-valued for groups not yet instantiated.
func (s *Store) Stats() Stats {
	// Snapshot registers and groups under the lock, but aggregate after
	// releasing it: a handle's stats share the mutex its operations hold
	// across a full network round-trip, and blocking Register (and Close) on
	// every other key for that long would couple independent registers
	// together.
	s.mu.Lock()
	regs := make([]*Register, 0, len(s.regs))
	for _, reg := range s.regs {
		regs = append(regs, reg)
	}
	groups := append([]*storeGroup(nil), s.groups...)
	s.mu.Unlock()

	var out Stats
	out.Groups = make([]GroupStats, len(s.specs))
	for i, spec := range s.specs {
		out.Groups[i].Group = spec.name
	}
	for _, reg := range regs {
		gs := &out.Groups[reg.gi]
		gs.Keys++
		w, wr := reg.writer.w.Stats()
		gs.Writes += w
		out.WriteRoundTrips += wr
		for _, r := range reg.reads {
			reads, rounds, fallbacks := r.reader().Stats()
			gs.Reads += reads
			out.ReadRoundTrips += rounds
			out.FallbackReads += fallbacks
		}
	}
	for gi, g := range groups {
		if g == nil {
			continue
		}
		gs := &out.Groups[gi]
		ts := g.session.stats()
		gs.SendDrops = ts.sendDrops
		gs.InboundDrops = ts.inboundDrops
		gs.DedupDrops = ts.dedupDrops
		gs.MailboxHighWater = ts.mailboxHighWater
		out.DeliveredMsgs += ts.delivered
		out.FramesDelivered += ts.frames
		out.DroppedMsgs += ts.dropped()
		out.SendDrops += ts.sendDrops
		out.InboundDrops += ts.inboundDrops
		out.DedupDrops += ts.dedupDrops
		if ts.mailboxHighWater > out.MailboxHighWater {
			// A high-water mark aggregates as a maximum: the deepest any
			// process of any group has ever queued.
			out.MailboxHighWater = ts.mailboxHighWater
		}
		// Shed accounting: bounded server mailboxes (transport session),
		// bounded client routes (demuxes), bounded executor queues
		// (servers, via the optional QueueSheds interface — drivers
		// without shedding simply don't implement it).
		gs.ShedDrops = ts.shedDrops
		if g.writerDemux != nil {
			gs.ShedDrops += g.writerDemux.Sheds()
		}
		for _, d := range g.readerDemuxes {
			gs.ShedDrops += d.Sheds()
		}
		g.srvMu.Lock()
		servers := append([]driver.Server(nil), g.servers...)
		g.srvMu.Unlock()
		for _, srv := range servers {
			out.ServerMutations += srv.TotalMutations()
			if qs, ok := srv.(interface{ QueueSheds() int64 }); ok {
				gs.ShedDrops += qs.QueueSheds()
			}
		}
		out.ShedDrops += gs.ShedDrops
		var dur durable.Stats
		for _, c := range g.durCounters {
			dur.Add(c.Snapshot())
		}
		gs.Durable = publicDurableStats(dur)
	}
	for i := range out.Groups {
		gs := &out.Groups[i]
		gs.Ops = gs.Writes + gs.Reads
		out.Writes += gs.Writes
		out.Reads += gs.Reads
		addDurableStats(&out.Durable, gs.Durable)
	}
	if out.Reads > 0 {
		out.ReadRoundsPerOp = float64(out.ReadRoundTrips) / float64(out.Reads)
	}
	if out.Writes > 0 {
		out.WriteRoundsPerOp = float64(out.WriteRoundTrips) / float64(out.Writes)
	}
	return out
}

// publicDurableStats converts a durable-log stats snapshot to the public
// shape.
func publicDurableStats(d durable.Stats) DurableStats {
	return DurableStats{
		Appends:          d.Appends,
		Fsyncs:           d.Fsyncs,
		Snapshots:        d.Snapshots,
		SnapshotRecords:  d.SnapshotRecords,
		SegmentsReplayed: d.SegmentsReplayed,
		RecordsRecovered: d.RecordsRecovered,
		TornTailTrims:    d.TornTailTrims,
		AppendErrors:     d.AppendErrors,
		Incarnation:      d.Incarnation,
	}
}

// addDurableStats accumulates o into agg (incarnation as a maximum — it is
// an identity, not a tally).
func addDurableStats(agg *DurableStats, o DurableStats) {
	agg.Appends += o.Appends
	agg.Fsyncs += o.Fsyncs
	agg.Snapshots += o.Snapshots
	agg.SnapshotRecords += o.SnapshotRecords
	agg.SegmentsReplayed += o.SegmentsReplayed
	agg.RecordsRecovered += o.RecordsRecovered
	agg.TornTailTrims += o.TornTailTrims
	agg.AppendErrors += o.AppendErrors
	if o.Incarnation > agg.Incarnation {
		agg.Incarnation = o.Incarnation
	}
}

// Close shuts the store down: every instantiated replica group's servers
// stop, its client demultiplexers detach and its transport session is
// closed. Handle operations issued after Close fail fast with
// ErrStoreClosed. Close is idempotent.
func (s *Store) Close() error {
	s.closed.Store(true)
	s.mu.Lock()
	groups := append([]*storeGroup(nil), s.groups...)
	s.mu.Unlock()
	var first error
	for _, g := range groups {
		if g == nil {
			continue
		}
		if err := g.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Key returns the register's name.
func (r *Register) Key() string { return r.key }

// Group returns the name of the replica group serving this register.
func (r *Register) Group() string { return r.g.name }

// Writer returns the register's single write handle.
func (r *Register) Writer() Writer { return r.writer }

// Reader returns the read handle of reader ri (1-based) for this register.
func (r *Register) Reader(i int) (Reader, error) {
	if i < 1 || i > len(r.reads) {
		return nil, fmt.Errorf("%w: %d (R=%d)", ErrUnknownReader, i, len(r.reads))
	}
	return r.reads[i-1], nil
}

// Readers returns all of the register's read handles in index order.
func (r *Register) Readers() []Reader {
	out := make([]Reader, len(r.reads))
	for i, rh := range r.reads {
		out[i] = rh
	}
	return out
}

// mapHandleErr translates a handle operation's failure into the public
// error vocabulary: once the store is closed, the transport-level failure
// modes (closed inboxes, severed routes) all mean the same thing to a
// caller — the store is gone — so they surface as ErrStoreClosed. Context
// errors stay themselves: the CALLER ended those operations.
func (s *Store) mapHandleErr(err error) error {
	if err == nil || !s.closed.Load() {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrStoreClosed, err)
}

// admit applies the store's admission budget (Config.AdmissionWait) to an
// operation's context. The pipeline reads the budget only when it is
// already at depth, so the common unsaturated path costs one nil-comparison
// here and nothing below.
func (s *Store) admit(ctx context.Context) context.Context {
	if s.cfg.AdmissionWait > 0 {
		return protoutil.WithAdmissionWait(ctx, s.cfg.AdmissionWait)
	}
	return ctx
}

// writerHandle adapts a protocol driver's writer to the public Writer
// interface, adding the store-closed fast path.
type writerHandle struct {
	store *Store
	w     driver.Writer
}

var _ Writer = (*writerHandle)(nil)

// Write implements Writer. A Write issued after Store.Close fails fast with
// ErrStoreClosed: the servers are gone, so without the check the operation
// would wait out its entire context against a network that can never answer.
func (w *writerHandle) Write(ctx context.Context, value []byte) error {
	if w.store.closed.Load() {
		return ErrStoreClosed
	}
	return w.store.mapHandleErr(w.w.Write(w.store.admit(ctx), value))
}

// WriteAsync implements Writer.
func (w *writerHandle) WriteAsync(ctx context.Context, value []byte) (*WriteFuture, error) {
	if w.store.closed.Load() {
		return nil, ErrStoreClosed
	}
	f, err := w.w.WriteAsync(w.store.admit(ctx), value)
	if err != nil {
		return nil, w.store.mapHandleErr(err)
	}
	return &WriteFuture{store: w.store, f: f}, nil
}

// readerHandle adapts a protocol driver's reader to the public Reader
// interface, adding the store-closed fast path. The underlying driver
// reader is swapped atomically by Store.RestartReader, so operations in
// flight on the old incarnation keep their reader while new operations go
// to the new one.
type readerHandle struct {
	store *Store
	index int
	cur   atomic.Pointer[driver.Reader]
}

var _ Reader = (*readerHandle)(nil)

// reader returns the current driver reader incarnation.
func (r *readerHandle) reader() driver.Reader { return *r.cur.Load() }

// setReader installs a new driver reader incarnation.
func (r *readerHandle) setReader(d driver.Reader) { r.cur.Store(&d) }

// Read implements Reader. After Store.Close it fails fast with
// ErrStoreClosed (see writerHandle.Write).
func (r *readerHandle) Read(ctx context.Context) (ReadResult, error) {
	if r.store.closed.Load() {
		return ReadResult{}, ErrStoreClosed
	}
	res, err := r.reader().Read(r.store.admit(ctx))
	if err != nil {
		return ReadResult{}, r.store.mapHandleErr(err)
	}
	return publicReadResult(res), nil
}

// ReadAsync implements Reader.
func (r *readerHandle) ReadAsync(ctx context.Context) (*ReadFuture, error) {
	if r.store.closed.Load() {
		return nil, ErrStoreClosed
	}
	f, err := r.reader().ReadAsync(r.store.admit(ctx))
	if err != nil {
		return nil, r.store.mapHandleErr(err)
	}
	return &ReadFuture{store: r.store, f: f}, nil
}
