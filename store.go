package fastread

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fastread/internal/abd"
	"fastread/internal/core"
	"fastread/internal/maxmin"
	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/regular"
	"fastread/internal/sig"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by the Store API.
var (
	// ErrStoreClosed indicates an operation on a closed store.
	ErrStoreClosed = errors.New("fastread: store is closed")
	// ErrKeyTooLong indicates a register key exceeding the wire format's
	// limit (wire.MaxKeySize bytes).
	ErrKeyTooLong = errors.New("fastread: register key too long")
)

// MaxKeyLen is the longest register key a Store accepts, in bytes.
const MaxKeyLen = wire.MaxKeySize

// Store is a complete in-memory deployment serving MANY named registers from
// ONE set of server processes: S servers, the single writer identity and R
// reader identities, all attached to an in-memory asynchronous network.
//
// Each named register is an independent instance of the configured protocol:
// servers keep fully separate per-key state (timestamps, seen sets, client
// counters), so per-key atomicity is exactly the single-register guarantee
// of the paper, multiplied across the keyspace. The writer and reader
// processes join the network once; their traffic is demultiplexed by the
// register key carried in every protocol message, so adding a register costs
// a map entry per server and a handful of client-side state, not a new
// process set.
//
// Register hands out the per-key write/read handles. A Cluster is a Store
// serving only the default register (the empty key).
type Store struct {
	cfg  Config
	qcfg quorum.Config
	net  *transport.InMemNetwork
	keys sig.KeyPair

	stopServers []func()
	mutations   func() int64

	writerDemux   *transport.Demux
	readerDemuxes []*transport.Demux

	mu     sync.Mutex
	regs   map[string]*Register
	closed bool
}

// Register is the pair of per-key handles a Store serves for one named
// register: the register's single writer and its R readers. Handles share
// the deployment's transport processes with every other register's handles.
type Register struct {
	key    string
	writer *writerHandle
	reads  []*readerHandle
}

// NewStore builds and starts a multi-register deployment according to cfg.
// The deployment serves an open-ended keyspace: call Register to obtain the
// handles for any key.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Protocol == 0 {
		cfg.Protocol = ProtocolFast
	}
	if !cfg.Protocol.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrUnknownProtocol, cfg.Protocol)
	}
	qcfg := quorum.Config{
		Servers:   cfg.Servers,
		Faulty:    cfg.Faulty,
		Malicious: cfg.Malicious,
		Readers:   cfg.Readers,
	}
	if err := qcfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Protocol {
	case ProtocolFast, ProtocolFastByzantine:
		if !qcfg.FastReadPossible() {
			return nil, fmt.Errorf("%w: %v (max fast readers = %d)",
				ErrTooManyReaders, qcfg, quorum.MaxFastReaders(cfg.Servers, cfg.Faulty, cfg.Malicious))
		}
		if cfg.Readers+1 > core.MaxPredicateUnion {
			return nil, fmt.Errorf("%w: predicate evaluator supports at most %d readers",
				ErrTooManyReaders, core.MaxPredicateUnion-1)
		}
	case ProtocolABD, ProtocolMaxMin, ProtocolRegular:
		if qcfg.Majority() > qcfg.AckQuorum() {
			return nil, fmt.Errorf("fastread: %s requires t < S/2, got %v", cfg.Protocol, qcfg)
		}
	}

	opts := []transport.InMemOption{transport.WithSeed(cfg.Seed)}
	if cfg.NetworkDelay > 0 {
		opts = append(opts, transport.WithDefaultDelay(cfg.NetworkDelay))
	}
	if cfg.Jitter > 0 {
		opts = append(opts, transport.WithJitter(cfg.Jitter))
	}

	s := &Store{
		cfg:  cfg,
		qcfg: qcfg,
		net:  transport.NewInMemNetwork(opts...),
		keys: sig.MustKeyPair(),
		regs: make(map[string]*Register),
	}
	if err := s.startServers(); err != nil {
		_ = s.Close()
		return nil, err
	}
	if err := s.joinClients(); err != nil {
		_ = s.Close()
		return nil, err
	}
	return s, nil
}

// startServers launches the protocol-appropriate keyed server on every
// server identity. Each server executes its messages on a key-sharded
// executor with cfg.ServerWorkers workers, so one server process serves
// every register, in parallel across keys.
func (s *Store) startServers() error {
	var stateFns []func() int64
	for i := 1; i <= s.cfg.Servers; i++ {
		id := types.Server(i)
		node, err := s.net.Join(id)
		if err != nil {
			return fmt.Errorf("join %v: %w", id, err)
		}
		switch s.cfg.Protocol {
		case ProtocolFast, ProtocolFastByzantine:
			srv, err := core.NewServer(core.ServerConfig{
				ID:        id,
				Readers:   s.cfg.Readers,
				Byzantine: s.cfg.Protocol == ProtocolFastByzantine,
				Verifier:  s.keys.Verifier,
				Workers:   s.cfg.ServerWorkers,
			}, node)
			if err != nil {
				return err
			}
			srv.Start()
			s.stopServers = append(s.stopServers, srv.Stop)
			stateFns = append(stateFns, srv.TotalMutations)
		case ProtocolABD:
			srv, err := abd.NewServer(abd.ServerConfig{ID: id, Workers: s.cfg.ServerWorkers}, node)
			if err != nil {
				return err
			}
			srv.Start()
			s.stopServers = append(s.stopServers, srv.Stop)
			stateFns = append(stateFns, srv.TotalMutations)
		case ProtocolMaxMin:
			srv, err := maxmin.NewServer(maxmin.ServerConfig{ID: id, Quorum: s.qcfg, Workers: s.cfg.ServerWorkers}, node)
			if err != nil {
				return err
			}
			srv.Start()
			s.stopServers = append(s.stopServers, srv.Stop)
			stateFns = append(stateFns, func() int64 { return 0 })
		case ProtocolRegular:
			srv, err := regular.NewServer(id, node, nil, s.cfg.ServerWorkers)
			if err != nil {
				return err
			}
			srv.Start()
			s.stopServers = append(s.stopServers, srv.Stop)
			stateFns = append(stateFns, func() int64 { return 0 })
		}
	}
	s.mutations = func() int64 {
		var total int64
		for _, fn := range stateFns {
			total += fn()
		}
		return total
	}
	return nil
}

// joinClients attaches the writer and reader identities to the network once
// and wraps each physical node in a register-key demultiplexer; per-key
// protocol clients are then created on demand by Register.
func (s *Store) joinClients() error {
	wNode, err := s.net.Join(types.Writer())
	if err != nil {
		return err
	}
	s.writerDemux = transport.NewDemux(wNode, protoutil.WireKeyFunc, 0)
	for i := 1; i <= s.cfg.Readers; i++ {
		rNode, err := s.net.Join(types.Reader(i))
		if err != nil {
			return err
		}
		s.readerDemuxes = append(s.readerDemuxes, transport.NewDemux(rNode, protoutil.WireKeyFunc, 0))
	}
	return nil
}

// Register returns the handles for the named register, creating its per-key
// clients on first use. Calling Register again with the same key returns the
// SAME handles: each register has exactly one writer (the model's single
// writer) and R readers, and the handles carry protocol state (the writer's
// timestamp sequence, the readers' observed maxima) that must not be forked.
func (s *Store) Register(key string) (*Register, error) {
	if len(key) > MaxKeyLen {
		return nil, fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLong, len(key), MaxKeyLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStoreClosed
	}
	if reg, ok := s.regs[key]; ok {
		return reg, nil
	}
	reg, err := s.newRegister(key)
	if err != nil {
		return nil, err
	}
	s.regs[key] = reg
	return reg, nil
}

// newRegister builds the per-key writer and reader clients over the shared
// transport. Callers must hold s.mu.
func (s *Store) newRegister(key string) (*Register, error) {
	wNode := s.writerDemux.Route(key)
	wh := &writerHandle{}
	switch s.cfg.Protocol {
	case ProtocolFast, ProtocolFastByzantine:
		w, err := core.NewWriter(core.WriterConfig{
			Quorum:    s.qcfg,
			Key:       key,
			Byzantine: s.cfg.Protocol == ProtocolFastByzantine,
			Signer:    s.keys.Signer,
		}, wNode)
		if err != nil {
			return nil, err
		}
		wh.write = func(ctx context.Context, v []byte) error { return w.Write(ctx, v) }
		wh.stats = func() (int64, int64) { return w.Stats() }
	case ProtocolABD:
		w, err := abd.NewWriter(abd.ClientConfig{Quorum: s.qcfg, Key: key}, wNode)
		if err != nil {
			return nil, err
		}
		wh.write = func(ctx context.Context, v []byte) error { return w.Write(ctx, v) }
		wh.stats = func() (int64, int64) { return w.Stats() }
	case ProtocolMaxMin:
		w, err := maxmin.NewKeyedWriter(key, s.qcfg, wNode, nil)
		if err != nil {
			return nil, err
		}
		wh.write = func(ctx context.Context, v []byte) error { return w.Write(ctx, v) }
		wh.stats = func() (int64, int64) { return w.Stats() }
	case ProtocolRegular:
		w, err := regular.NewKeyedWriter(key, s.qcfg, wNode, nil)
		if err != nil {
			return nil, err
		}
		wh.write = func(ctx context.Context, v []byte) error { return w.Write(ctx, v) }
		wh.stats = func() (int64, int64) { return w.Stats() }
	}

	reg := &Register{key: key, writer: wh}
	for i := 1; i <= s.cfg.Readers; i++ {
		rNode := s.readerDemuxes[i-1].Route(key)
		rh := &readerHandle{index: i}
		switch s.cfg.Protocol {
		case ProtocolFast, ProtocolFastByzantine:
			r, err := core.NewReader(core.ReaderConfig{
				Quorum:    s.qcfg,
				Key:       key,
				Byzantine: s.cfg.Protocol == ProtocolFastByzantine,
				Verifier:  s.keys.Verifier,
			}, rNode)
			if err != nil {
				return nil, err
			}
			rh.read = func(ctx context.Context) (ReadResult, error) {
				res, err := r.Read(ctx)
				if err != nil {
					return ReadResult{}, err
				}
				return ReadResult{
					Value:        res.Value,
					Version:      int64(res.Timestamp),
					RoundTrips:   res.RoundTrips,
					UsedFallback: !res.PredicateHeld,
				}, nil
			}
			rh.stats = func() (int64, int64, int64) { return r.Stats() }
		case ProtocolABD:
			r, err := abd.NewReader(abd.ClientConfig{Quorum: s.qcfg, Key: key}, rNode)
			if err != nil {
				return nil, err
			}
			rh.read = func(ctx context.Context) (ReadResult, error) {
				res, err := r.Read(ctx)
				if err != nil {
					return ReadResult{}, err
				}
				return ReadResult{Value: res.Value, Version: int64(res.Timestamp), RoundTrips: res.RoundTrips}, nil
			}
			rh.stats = func() (int64, int64, int64) { reads, rounds := r.Stats(); return reads, rounds, 0 }
		case ProtocolMaxMin:
			r, err := maxmin.NewKeyedReader(key, s.qcfg, rNode, nil)
			if err != nil {
				return nil, err
			}
			rh.read = func(ctx context.Context) (ReadResult, error) {
				res, err := r.Read(ctx)
				if err != nil {
					return ReadResult{}, err
				}
				return ReadResult{Value: res.Value, Version: int64(res.Timestamp), RoundTrips: res.RoundTrips}, nil
			}
			rh.stats = func() (int64, int64, int64) { reads, rounds := r.Stats(); return reads, rounds, 0 }
		case ProtocolRegular:
			r, err := regular.NewKeyedReader(key, s.qcfg, rNode, nil)
			if err != nil {
				return nil, err
			}
			rh.read = func(ctx context.Context) (ReadResult, error) {
				res, err := r.Read(ctx)
				if err != nil {
					return ReadResult{}, err
				}
				return ReadResult{Value: res.Value, Version: int64(res.Timestamp), RoundTrips: res.RoundTrips}, nil
			}
			rh.stats = func() (int64, int64, int64) { reads, rounds := r.Stats(); return reads, rounds, 0 }
		}
		reg.reads = append(reg.reads, rh)
	}
	return reg, nil
}

// Keys returns the keys of every register this store has handed out, in no
// particular order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.regs))
	for k := range s.regs {
		out = append(out, k)
	}
	return out
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// CrashServer crash-stops server si (1-based) for EVERY register: it stops
// receiving and sending messages permanently. Crashing more than Faulty
// servers voids the deployment's guarantees, exactly as in the model.
func (s *Store) CrashServer(i int) error {
	if i < 1 || i > s.cfg.Servers {
		return fmt.Errorf("%w: %d (S=%d)", ErrUnknownServer, i, s.cfg.Servers)
	}
	s.net.Crash(types.Server(i))
	return nil
}

// Network exposes the underlying in-memory network for tests, fault
// injection and the adversarial schedules.
func (s *Store) Network() *transport.InMemNetwork { return s.net }

// Stats aggregates client-side counters across every register, plus network
// delivery counts and server state mutations.
func (s *Store) Stats() Stats {
	// Snapshot the registers under the lock, but aggregate after releasing
	// it: a handle's stats share the mutex its operations hold across a full
	// network round-trip, and blocking Register (and Close) on every other
	// key for that long would couple independent registers together.
	s.mu.Lock()
	regs := make([]*Register, 0, len(s.regs))
	for _, reg := range s.regs {
		regs = append(regs, reg)
	}
	s.mu.Unlock()

	var out Stats
	for _, reg := range regs {
		w, wr := reg.writer.stats()
		out.Writes += w
		out.WriteRoundTrips += wr
		for _, r := range reg.reads {
			reads, rounds, fallbacks := r.stats()
			out.Reads += reads
			out.ReadRoundTrips += rounds
			out.FallbackReads += fallbacks
		}
	}
	ns := s.net.Stats()
	out.DeliveredMsgs = ns.Delivered
	out.DroppedMsgs = ns.Dropped
	if s.mutations != nil {
		out.ServerMutations = s.mutations()
	}
	if out.Reads > 0 {
		out.ReadRoundsPerOp = float64(out.ReadRoundTrips) / float64(out.Reads)
	}
	if out.Writes > 0 {
		out.WriteRoundsPerOp = float64(out.WriteRoundTrips) / float64(out.Writes)
	}
	return out
}

// Close shuts the store down: all servers stop, the client demultiplexers
// detach and the network is closed. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	for _, stop := range s.stopServers {
		stop()
	}
	err := s.net.Close()
	// Closing the network closes the physical client nodes, which terminates
	// the demux pumps; waiting on them guarantees no goroutine outlives Close.
	if s.writerDemux != nil {
		_ = s.writerDemux.Close()
	}
	for _, d := range s.readerDemuxes {
		_ = d.Close()
	}
	return err
}

// Key returns the register's name.
func (r *Register) Key() string { return r.key }

// Writer returns the register's single write handle.
func (r *Register) Writer() Writer { return r.writer }

// Reader returns the read handle of reader ri (1-based) for this register.
func (r *Register) Reader(i int) (Reader, error) {
	if i < 1 || i > len(r.reads) {
		return nil, fmt.Errorf("%w: %d (R=%d)", ErrUnknownReader, i, len(r.reads))
	}
	return r.reads[i-1], nil
}

// Readers returns all of the register's read handles in index order.
func (r *Register) Readers() []Reader {
	out := make([]Reader, len(r.reads))
	for i, rh := range r.reads {
		out[i] = rh
	}
	return out
}

// writerHandle adapts a protocol-specific writer to the Writer interface.
type writerHandle struct {
	write func(context.Context, []byte) error
	stats func() (int64, int64)
}

var _ Writer = (*writerHandle)(nil)

// Write implements Writer.
func (w *writerHandle) Write(ctx context.Context, value []byte) error {
	return w.write(ctx, value)
}

// readerHandle adapts a protocol-specific reader to the Reader interface.
type readerHandle struct {
	index int
	read  func(context.Context) (ReadResult, error)
	stats func() (int64, int64, int64)
}

var _ Reader = (*readerHandle)(nil)

// Read implements Reader.
func (r *readerHandle) Read(ctx context.Context) (ReadResult, error) {
	return r.read(ctx)
}
