package fastread

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fastread/internal/driver"
	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by the Store API.
var (
	// ErrStoreClosed indicates an operation on a closed store.
	ErrStoreClosed = errors.New("fastread: store is closed")
	// ErrKeyTooLong indicates a register key exceeding the wire format's
	// limit (wire.MaxKeySize bytes).
	ErrKeyTooLong = errors.New("fastread: register key too long")
)

// MaxKeyLen is the longest register key a Store accepts, in bytes.
const MaxKeyLen = wire.MaxKeySize

// Store is a complete register deployment serving MANY named registers from
// ONE set of server processes: S servers, the single writer identity and R
// reader identities, all attached to the same transport backend — the
// in-memory asynchronous network by default, or real TCP sockets when
// Config.Transport is fastread.TCP (see Transport).
//
// Each named register is an independent instance of the configured protocol:
// servers keep fully separate per-key state (timestamps, seen sets, client
// counters), so per-key atomicity is exactly the single-register guarantee
// of the paper, multiplied across the keyspace. The writer and reader
// processes join the network once; their traffic is demultiplexed by the
// register key carried in every protocol message, so adding a register costs
// a map entry per server and a handful of client-side state, not a new
// process set.
//
// The protocol implementation itself is resolved through the driver
// registry: every protocol registers uniform server/writer/reader factories,
// and the store composes them with the transport — no per-protocol code
// lives here.
//
// Register hands out the per-key write/read handles. A Cluster is a Store
// serving only the default register (the empty key).
type Store struct {
	cfg     Config
	qcfg    quorum.Config
	drv     driver.Driver
	session transportSession
	keys    sig.KeyPair

	servers []driver.Server

	writerDemux   *transport.Demux
	readerDemuxes []*transport.Demux

	// closed flips before shutdown begins so handle operations issued after
	// Close fail fast with ErrStoreClosed instead of waiting out their
	// contexts against a dead network. (The flag is checked at operation
	// entry: an operation already inside its quorum wait when Close runs
	// still observes its own context.)
	closed atomic.Bool

	mu   sync.Mutex
	regs map[string]*Register
}

// Register is the pair of per-key handles a Store serves for one named
// register: the register's single writer and its R readers. Handles share
// the deployment's transport processes with every other register's handles.
type Register struct {
	key    string
	writer *writerHandle
	reads  []*readerHandle
}

// NewStore builds and starts a multi-register deployment according to cfg.
// The deployment serves an open-ended keyspace: call Register to obtain the
// handles for any key.
func NewStore(cfg Config) (*Store, error) {
	name := cfg.ProtocolName
	if name == "" {
		if cfg.Protocol == 0 {
			cfg.Protocol = ProtocolFast
		}
		if !cfg.Protocol.Valid() {
			return nil, fmt.Errorf("%w: %d", ErrUnknownProtocol, cfg.Protocol)
		}
		name = cfg.Protocol.String()
	}
	drv, ok := driver.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: no driver registered for %q", ErrUnknownProtocol, name)
	}
	for i, b := range cfg.Byzantine {
		if i < 1 || i > cfg.Servers {
			return nil, fmt.Errorf("%w: Byzantine index %d (S=%d)", ErrUnknownServer, i, cfg.Servers)
		}
		if b < ByzantineForgeTimestamp || b > ByzantineFlood {
			return nil, fmt.Errorf("fastread: unknown byzantine behaviour %d for server %d", b, i)
		}
	}
	qcfg := quorum.Config{
		Servers:   cfg.Servers,
		Faulty:    cfg.Faulty,
		Malicious: cfg.Malicious,
		Readers:   cfg.Readers,
	}
	if err := qcfg.Validate(); err != nil {
		return nil, err
	}
	if err := drv.Validate(qcfg); err != nil {
		return nil, err
	}

	tr := cfg.Transport
	if tr == nil {
		tr = InMemory()
	}
	session, err := tr.connect(cfg)
	if err != nil {
		return nil, err
	}

	s := &Store{
		cfg:     cfg,
		qcfg:    qcfg,
		drv:     drv,
		session: session,
		keys:    sig.MustKeyPair(),
		regs:    make(map[string]*Register),
	}
	if err := s.startServers(); err != nil {
		_ = s.Close()
		return nil, err
	}
	if err := s.joinClients(); err != nil {
		_ = s.Close()
		return nil, err
	}
	return s, nil
}

// startServers launches the driver's keyed server on every server identity.
// Each server executes its messages on a key-sharded executor with
// cfg.ServerWorkers workers, so one server process serves every register, in
// parallel across keys.
func (s *Store) startServers() error {
	for i := 1; i <= s.cfg.Servers; i++ {
		id := types.Server(i)
		node, err := s.session.join(id)
		if err != nil {
			return fmt.Errorf("join %v: %w", id, err)
		}
		if b, ok := s.cfg.Byzantine[i]; ok {
			srv, err := newByzantineServer(s.cfg, b, id, node)
			if err != nil {
				return err
			}
			srv.Start()
			s.servers = append(s.servers, srv)
			continue
		}
		srv, err := s.drv.NewServer(driver.ServerConfig{
			ID:       id,
			Quorum:   s.qcfg,
			Verifier: s.keys.Verifier,
			Workers:  s.cfg.ServerWorkers,
		}, node)
		if err != nil {
			return err
		}
		srv.Start()
		s.servers = append(s.servers, srv)
	}
	return nil
}

// joinClients attaches the writer and reader identities to the network once
// and wraps each physical node in a register-key demultiplexer; per-key
// protocol clients are then created on demand by Register.
func (s *Store) joinClients() error {
	wNode, err := s.session.join(types.Writer())
	if err != nil {
		return err
	}
	s.writerDemux = transport.NewDemux(wNode, protoutil.WireKeyFunc, 0)
	for i := 1; i <= s.cfg.Readers; i++ {
		rNode, err := s.session.join(types.Reader(i))
		if err != nil {
			return err
		}
		s.readerDemuxes = append(s.readerDemuxes, transport.NewDemux(rNode, protoutil.WireKeyFunc, 0))
	}
	return nil
}

// Register returns the handles for the named register, creating its per-key
// clients on first use. Calling Register again with the same key returns the
// SAME handles: each register has exactly one writer (the model's single
// writer) and R readers, and the handles carry protocol state (the writer's
// timestamp sequence, the readers' observed maxima) that must not be forked.
func (s *Store) Register(key string) (*Register, error) {
	if len(key) > MaxKeyLen {
		return nil, fmt.Errorf("%w: %d bytes (max %d)", ErrKeyTooLong, len(key), MaxKeyLen)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrStoreClosed
	}
	if reg, ok := s.regs[key]; ok {
		return reg, nil
	}
	reg, err := s.newRegister(key)
	if err != nil {
		return nil, err
	}
	s.regs[key] = reg
	return reg, nil
}

// newRegister builds the per-key writer and reader clients over the shared
// transport, through the protocol driver's uniform factories. Callers must
// hold s.mu.
func (s *Store) newRegister(key string) (*Register, error) {
	w, err := s.drv.NewWriter(s.clientConfig(key), s.writerDemux.Route(key))
	if err != nil {
		return nil, err
	}
	reg := &Register{key: key, writer: &writerHandle{store: s, w: w}}
	for i := 1; i <= s.cfg.Readers; i++ {
		r, err := s.drv.NewReader(s.clientConfig(key), s.readerDemuxes[i-1].Route(key))
		if err != nil {
			return nil, err
		}
		rh := &readerHandle{store: s, index: i}
		rh.setReader(r)
		reg.reads = append(reg.reads, rh)
	}
	return reg, nil
}

// clientConfig assembles one per-key client's driver configuration. Each
// call draws a fresh nonce from NonceSource (when configured) so every
// handle — including a restarted reader incarnation — gets its own.
func (s *Store) clientConfig(key string) driver.ClientConfig {
	cfg := driver.ClientConfig{
		Key:      key,
		Quorum:   s.qcfg,
		Signer:   s.keys.Signer,
		Verifier: s.keys.Verifier,
		Depth:    s.cfg.PipelineDepth,
	}
	if s.cfg.NonceSource != nil {
		cfg.Nonce = s.cfg.NonceSource()
	}
	return cfg
}

// Keys returns the keys of every register this store has handed out, in no
// particular order.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.regs))
	for k := range s.regs {
		out = append(out, k)
	}
	return out
}

// Config returns the store's configuration.
func (s *Store) Config() Config { return s.cfg }

// CrashServer crash-stops server si (1-based) for EVERY register: it stops
// receiving and sending messages permanently. Crashing more than Faulty
// servers voids the deployment's guarantees, exactly as in the model.
//
// Crash injection is a capability of the in-memory backend; on other
// transports CrashServer reports ErrUnsupported.
func (s *Store) CrashServer(i int) error {
	if i < 1 || i > s.cfg.Servers {
		return fmt.Errorf("%w: %d (S=%d)", ErrUnknownServer, i, s.cfg.Servers)
	}
	return s.session.crash(types.Server(i))
}

// RestartReader tears down reader ri's client for the named register and
// builds a fresh one over a new demux route, modelling a reader process
// restart: in-flight reads of the old incarnation fail (their inbox is
// severed — the operation dies with the process), client-side protocol state
// is lost, and the new incarnation resumes with a fresh initial nonce. The
// register must already exist (see Register); the reader's other keys and
// all other handles are untouched.
//
// Servers remember the highest operation counter each reader identity used
// (the stale-request guard), so the restart exercises the nonce/incarnation
// machinery: a NonceSource that fails to move forward starves the new
// incarnation, which is exactly the PR 5 latent bug internal/sim pins as a
// fixture.
func (s *Store) RestartReader(key string, i int) error {
	if i < 1 || i > s.cfg.Readers {
		return fmt.Errorf("%w: %d (R=%d)", ErrUnknownReader, i, s.cfg.Readers)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return ErrStoreClosed
	}
	reg, ok := s.regs[key]
	if !ok {
		return fmt.Errorf("fastread: no register %q (Register it before restarting its readers)", key)
	}
	d := s.readerDemuxes[i-1]
	// Sever the old incarnation: closing the route fails its pending
	// operations with the pipeline's inbox-closed error. A later Route call
	// for the same key creates a fresh route.
	_ = d.Route(key).Close()
	r, err := s.drv.NewReader(s.clientConfig(key), d.Route(key))
	if err != nil {
		return err
	}
	reg.reads[i-1].setReader(r)
	return nil
}

// Network exposes the underlying in-memory network for tests, fault
// injection and the adversarial schedules. On backends without an in-memory
// network (TCP) it reports ErrUnsupported.
func (s *Store) Network() (*transport.InMemNetwork, error) {
	if net := s.session.inMem(); net != nil {
		return net, nil
	}
	return nil, fmt.Errorf("%w: no in-memory network on the %s transport", ErrUnsupported, s.cfg.Transport)
}

// Stats aggregates client-side counters across every register, plus network
// delivery counts and server state mutations.
func (s *Store) Stats() Stats {
	// Snapshot the registers under the lock, but aggregate after releasing
	// it: a handle's stats share the mutex its operations hold across a full
	// network round-trip, and blocking Register (and Close) on every other
	// key for that long would couple independent registers together.
	s.mu.Lock()
	regs := make([]*Register, 0, len(s.regs))
	for _, reg := range s.regs {
		regs = append(regs, reg)
	}
	s.mu.Unlock()

	var out Stats
	for _, reg := range regs {
		w, wr := reg.writer.w.Stats()
		out.Writes += w
		out.WriteRoundTrips += wr
		for _, r := range reg.reads {
			reads, rounds, fallbacks := r.reader().Stats()
			out.Reads += reads
			out.ReadRoundTrips += rounds
			out.FallbackReads += fallbacks
		}
	}
	ts := s.session.stats()
	out.DeliveredMsgs = ts.delivered
	out.FramesDelivered = ts.frames
	out.DroppedMsgs = ts.dropped()
	out.SendDrops = ts.sendDrops
	out.InboundDrops = ts.inboundDrops
	out.DedupDrops = ts.dedupDrops
	out.MailboxHighWater = ts.mailboxHighWater
	for _, srv := range s.servers {
		out.ServerMutations += srv.TotalMutations()
	}
	if out.Reads > 0 {
		out.ReadRoundsPerOp = float64(out.ReadRoundTrips) / float64(out.Reads)
	}
	if out.Writes > 0 {
		out.WriteRoundsPerOp = float64(out.WriteRoundTrips) / float64(out.Writes)
	}
	return out
}

// Close shuts the store down: all servers stop, the client demultiplexers
// detach and the transport is closed. Handle operations issued after Close
// fail fast with ErrStoreClosed. Close is idempotent.
func (s *Store) Close() error {
	s.closed.Store(true)
	for _, srv := range s.servers {
		srv.Stop()
	}
	err := s.session.close()
	// Closing the transport closes the physical client nodes, which
	// terminates the demux pumps; waiting on them guarantees no goroutine
	// outlives Close.
	if s.writerDemux != nil {
		_ = s.writerDemux.Close()
	}
	for _, d := range s.readerDemuxes {
		_ = d.Close()
	}
	return err
}

// Key returns the register's name.
func (r *Register) Key() string { return r.key }

// Writer returns the register's single write handle.
func (r *Register) Writer() Writer { return r.writer }

// Reader returns the read handle of reader ri (1-based) for this register.
func (r *Register) Reader(i int) (Reader, error) {
	if i < 1 || i > len(r.reads) {
		return nil, fmt.Errorf("%w: %d (R=%d)", ErrUnknownReader, i, len(r.reads))
	}
	return r.reads[i-1], nil
}

// Readers returns all of the register's read handles in index order.
func (r *Register) Readers() []Reader {
	out := make([]Reader, len(r.reads))
	for i, rh := range r.reads {
		out[i] = rh
	}
	return out
}

// mapHandleErr translates a handle operation's failure into the public
// error vocabulary: once the store is closed, the transport-level failure
// modes (closed inboxes, severed routes) all mean the same thing to a
// caller — the store is gone — so they surface as ErrStoreClosed. Context
// errors stay themselves: the CALLER ended those operations.
func (s *Store) mapHandleErr(err error) error {
	if err == nil || !s.closed.Load() {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrStoreClosed, err)
}

// writerHandle adapts a protocol driver's writer to the public Writer
// interface, adding the store-closed fast path.
type writerHandle struct {
	store *Store
	w     driver.Writer
}

var _ Writer = (*writerHandle)(nil)

// Write implements Writer. A Write issued after Store.Close fails fast with
// ErrStoreClosed: the servers are gone, so without the check the operation
// would wait out its entire context against a network that can never answer.
func (w *writerHandle) Write(ctx context.Context, value []byte) error {
	if w.store.closed.Load() {
		return ErrStoreClosed
	}
	return w.store.mapHandleErr(w.w.Write(ctx, value))
}

// WriteAsync implements Writer.
func (w *writerHandle) WriteAsync(ctx context.Context, value []byte) (*WriteFuture, error) {
	if w.store.closed.Load() {
		return nil, ErrStoreClosed
	}
	f, err := w.w.WriteAsync(ctx, value)
	if err != nil {
		return nil, w.store.mapHandleErr(err)
	}
	return &WriteFuture{store: w.store, f: f}, nil
}

// readerHandle adapts a protocol driver's reader to the public Reader
// interface, adding the store-closed fast path. The underlying driver
// reader is swapped atomically by Store.RestartReader, so operations in
// flight on the old incarnation keep their reader while new operations go
// to the new one.
type readerHandle struct {
	store *Store
	index int
	cur   atomic.Pointer[driver.Reader]
}

var _ Reader = (*readerHandle)(nil)

// reader returns the current driver reader incarnation.
func (r *readerHandle) reader() driver.Reader { return *r.cur.Load() }

// setReader installs a new driver reader incarnation.
func (r *readerHandle) setReader(d driver.Reader) { r.cur.Store(&d) }

// Read implements Reader. After Store.Close it fails fast with
// ErrStoreClosed (see writerHandle.Write).
func (r *readerHandle) Read(ctx context.Context) (ReadResult, error) {
	if r.store.closed.Load() {
		return ReadResult{}, ErrStoreClosed
	}
	res, err := r.reader().Read(ctx)
	if err != nil {
		return ReadResult{}, r.store.mapHandleErr(err)
	}
	return publicReadResult(res), nil
}

// ReadAsync implements Reader.
func (r *readerHandle) ReadAsync(ctx context.Context) (*ReadFuture, error) {
	if r.store.closed.Load() {
		return nil, ErrStoreClosed
	}
	f, err := r.reader().ReadAsync(ctx)
	if err != nil {
		return nil, r.store.mapHandleErr(err)
	}
	return &ReadFuture{store: r.store, f: f}, nil
}
