package fastread

import (
	"fmt"

	"fastread/internal/driver"
	"fastread/internal/fault"
	"fastread/internal/sig"
	"fastread/internal/transport"
	"fastread/internal/types"
)

// faultBehavior maps the public behaviour enum onto internal/fault's.
func faultBehavior(b ByzantineBehavior) (fault.Behavior, error) {
	switch b {
	case ByzantineForgeTimestamp:
		return fault.BehaviorForgeTimestamp, nil
	case ByzantineStaleReplay:
		return fault.BehaviorStaleReplay, nil
	case ByzantineMemoryLoss:
		return fault.BehaviorMemoryLoss, nil
	case ByzantineInflateSeen:
		return fault.BehaviorInflateSeen, nil
	case ByzantineMute:
		return fault.BehaviorMute, nil
	case ByzantineFlood:
		return fault.BehaviorFlood, nil
	default:
		return 0, fmt.Errorf("fastread: unknown byzantine behaviour %d", b)
	}
}

// newByzantineServer builds the malicious stand-in for one server identity
// listed in Config.Byzantine. It satisfies driver.Server, so the store's
// lifecycle code treats it exactly like an honest server.
func newByzantineServer(cfg Config, b ByzantineBehavior, id types.ProcessID, node transport.Node) (driver.Server, error) {
	behavior, err := faultBehavior(b)
	if err != nil {
		return nil, err
	}
	fcfg := fault.ByzantineConfig{
		ID:       id,
		Workers:  cfg.ServerWorkers,
		Behavior: behavior,
		Readers:  cfg.Readers,
	}
	if cfg.Readers >= 1 {
		// MemoryLoss needs a victim; reader 1 by convention.
		fcfg.Victim = types.Reader(1)
	}
	if behavior == fault.BehaviorForgeTimestamp {
		// Forgeries are signed with a key that is NOT the writer's — the
		// strongest forgery unforgeability still defeats.
		keys := sig.MustKeyPair()
		fcfg.ForgerKeys = &keys
	}
	return fault.NewByzantineServer(fcfg, node)
}
