// Package fastread is a Go implementation of the fast single-writer
// multi-reader (SWMR) atomic register of Dutta, Guerraoui, Levy and Vukolić,
// "How Fast can a Distributed Atomic Read be?" (PODC 2004), together with the
// baselines the paper compares against — grown into a multi-register store
// that serves many named registers from one shared deployment.
//
// A register is replicated over S server processes, of which up to t may
// fail (and, in the arbitrary-failure variant, up to b ≤ t may be
// malicious). A single writer and up to R readers access it. The paper's
// central result is that every read and every write can complete in a single
// communication round-trip — a fast implementation — if and only if
// R < S/t − 2 (crash failures) or S > (R+2)·t + (R+1)·b (arbitrary
// failures). This package implements those fast algorithms, the classic
// two-round ABD register, the decentralised max-min variant, a fast regular
// register, and the machinery to reproduce the paper's results (adversarial
// lower-bound schedules, atomicity checking, workloads and benchmarks).
//
// # Quick start: one register
//
//	cfg := fastread.Config{Servers: 4, Faulty: 1, Readers: 1}
//	cluster, err := fastread.NewCluster(cfg)
//	if err != nil { ... }
//	defer cluster.Close()
//
//	w := cluster.Writer()
//	r, _ := cluster.Reader(1)
//
//	_ = w.Write(ctx, []byte("hello"))
//	res, _ := r.Read(ctx)        // exactly one round-trip
//	fmt.Println(string(res.Value))
//
// # Quick start: many registers, one deployment
//
// A Store multiplexes an open-ended keyspace of named registers over ONE set
// of server processes. Each key is an independent register with the full
// per-register atomicity guarantee; servers keep separate per-key state,
// lazily instantiated, and the writer/reader processes join the network once
// and demultiplex their traffic by the register key carried in every
// protocol message.
//
//	store, err := fastread.NewStore(cfg)
//	if err != nil { ... }
//	defer store.Close()
//
//	reg, _ := store.Register("user/42/profile")
//	_ = reg.Writer().Write(ctx, []byte("v1"))
//	r, _ := reg.Reader(1)
//	res, _ := r.Read(ctx)        // still one round-trip, per key
//
// A Cluster is simply a Store serving only the default register (the empty
// key); Cluster.Store exposes the underlying store so single-register code
// can grow into the keyed API without redeploying.
//
// Use Config.Protocol to select among the fast crash-tolerant register
// (default), the Byzantine-tolerant fast register, the ABD baseline, the
// max-min variant and the regular register. The resilience helpers
// (FastReadPossible, MaxFastReaders, MinServersForFast) expose the paper's
// exact bounds; they are per-deployment properties and therefore hold for
// every key of a Store at once.
//
// # Transports
//
// Config.Transport selects the message-passing backend the deployment runs
// on; the protocols only ever see an abstract node, so every protocol runs
// unchanged over every backend.
//
//	// Default: the in-memory asynchronous network (full fault injection).
//	store, _ := fastread.NewStore(cfg)
//
//	// The same deployment over real TCP sockets on loopback.
//	cfg.Transport = fastread.TCP(nil)
//	store, _ = fastread.NewStore(cfg)
//
//	// The raw-speed tier: UDP datagrams with batched send/receive syscalls
//	// and per-sender at-most-once delivery windows.
//	cfg.Transport = fastread.UDP(nil)
//	store, _ = fastread.NewStore(cfg)
//
//	// Pinned local endpoints. NewStore starts the WHOLE deployment in this
//	// process, so every book address must be bindable on this machine.
//	cfg.Transport = fastread.TCP(map[string]string{
//		"s1": "127.0.0.1:7101", "s2": "127.0.0.1:7102", "s3": "127.0.0.1:7103",
//		"w": "127.0.0.1:7200", "r1": "127.0.0.1:7201",
//	})
//
// Capabilities differ only in fault injection: CrashServer and Network are
// in-memory capabilities and report ErrUnsupported on TCP and UDP, where the
// real network is the fault injector (kill a process to crash it; on UDP,
// WithReceiveFilter drops datagrams deterministically for loss testing —
// the protocols never retransmit, tolerating loss through quorum slack
// exactly as the paper's asynchronous lossy model intends). InMemory accepts
// WithDelay/WithJitter/WithSeed; TCP accepts WithDialTimeout/
// WithWriteTimeout. Deployments spanning processes or machines are driven by
// cmd/regserver and cmd/regclient (-transport tcp|udp), which serve the same
// protocols via the same driver registry.
//
// # Scaling out: partitioned deployments
//
// Config.Groups partitions the keyspace across independent replica groups,
// turning the Store into a router. Placement is a consistent-hash ring over
// the ordered group names (internal/topology — the topology seam shared by
// this package and the cmd binaries): Register resolves a key's owning group
// before any handle exists, so routing is one hash plus a binary search at
// Register time and the per-operation path is untouched — same round trips,
// same zero steady-state allocations.
//
//	store, _ := fastread.NewStore(fastread.Config{
//		Servers: 4, Faulty: 1, Readers: 1, // inherited by groups that omit them
//		Groups: []fastread.GroupSpec{
//			{Name: "g0"}, {Name: "g1"},
//			{Name: "wide", Servers: 7, Faulty: 3}, // groups may differ
//		},
//	})
//	reg, _ := store.Register("user/42")
//	reg.Group()                          // the owning group's name
//
// The correctness argument rests on one invariant: groups are fully
// DISJOINT deployments. Each group has its own transport session, server
// set, quorum configuration and writer key pair, and no message ever
// crosses groups — so each group is exactly the single-deployment model the
// paper's proofs are about, and per-register atomicity composes across the
// partition with nothing to prove. Anything that would couple groups
// (a cross-group read, a shared server identity, a transaction) is outside
// the model. The ring is a pure function of the ordered group names:
// renaming or reordering groups re-routes the keyspace, so both are part of
// a deployment's identity.
//
// Groups instantiate lazily on first Register, Stats reports a per-group
// breakdown (Stats.Groups), and multi-process deployments ship the same
// group list as a JSON topology file consumed by regserver/regclient
// (-groups), which build the identical ring. Fault-injection seams stay
// per-group: CrashServer(i) crashes server i of every instantiated group,
// and Network — a single-deployment control surface — reports
// ErrUnsupported on partitioned stores.
//
// # Pipelined operations
//
// Every handle also exposes an asynchronous API: Writer.WriteAsync and
// Reader.ReadAsync submit an operation and return a future without waiting
// for its quorum, keeping up to Config.PipelineDepth operations of that
// handle in flight (submissions beyond the depth block until one completes).
// The blocking Read/Write are exactly the depth-one case. Pipelining is a
// THROUGHPUT feature: a serial client pays a full round trip per operation,
// while a pipeline overlaps them — and underneath, the transports coalesce
// the overlapped traffic into batched wire frames (one frame per peer per
// flush on TCP) and servers answer each burst with one batched send per
// client, so the per-operation wire cost falls with depth too.
//
//	f1, _ := r.ReadAsync(ctx)
//	f2, _ := r.ReadAsync(ctx)        // in flight concurrently with f1
//	res1, _ := f1.Result(ctx)
//	res2, _ := f2.Result(ctx)
//
// Semantics under pipelining: writes are applied in submission order (each
// WriteAsync takes the next timestamp and broadcasts before returning, and
// transports deliver each link FIFO), so the single-writer regime of the
// model is preserved; each in-flight read is an independent operation
// matched to its acknowledgements by its own nonce, and cancelling one
// (through the ctx given to ReadAsync or Result) never disturbs siblings.
// Futures severed by Store.Close resolve with ErrStoreClosed.
//
// Depth guidance: the default (16) suits most workloads. Raise it when the
// network round trip dominates (high-latency links — throughput scales
// roughly with depth until it saturates) and keep it small when operation
// LATENCY matters more than throughput, since queued submissions wait behind
// their siblings. Depth bounds memory per handle: each in-flight operation
// holds its request and collected acknowledgements.
//
// # Protocol drivers
//
// The store resolves Config.Protocol through the internal/driver registry:
// each protocol package registers uniform server/writer/reader factories,
// and deployment code — the store, the cmd binaries — composes drivers with
// transports without naming any protocol. Adding a protocol is one
// registration file in its package plus a registry name; no switch
// statements exist on the deployment path.
//
// # Performance and buffer ownership
//
// The per-message hot path (decode request → mutate per-key state → encode
// ack) is allocation-free in steady state: the codec exposes append-style
// encoding and aliasing decodes backed by sync.Pool scratch, the in-memory
// transport routes without a network-wide lock, the TCP transport batches
// frames per peer connection, and Byzantine deployments memoise verified
// writer signatures. Each server process additionally executes its messages
// on a key-sharded parallel executor: messages are dispatched by register
// key across Config.ServerWorkers workers (GOMAXPROCS by default), so
// distinct registers are served concurrently across cores while every
// register keeps FIFO, single-goroutine handling.
//
// Anyone writing protocol code must follow the codec's buffer-ownership
// rules — encoded payloads are immutable, decoded views may alias them, and
// retained data is cloned exactly at its retention point — spelled out in
// internal/wire/pool.go. The sole-mutator discipline those rules lean on is
// per KEY-SHARD WORKER: all messages naming a register key are handled by
// the same worker goroutine, which is therefore that key's only mutator.
//
// Batch frames extend the same rules end to end: a wire.Batch envelope packs
// many messages into one transport payload, the per-message views produced
// when it is expanded ALIAS the one batch buffer, and a flushed batch buffer
// is never reused by its sender (receivers may retain views indefinitely).
// Retaining any view pins the whole buffer, which is the intended trade.
//
// On the socket receive paths the batch buffer itself is recyclable: each
// inbound frame is decoded into a REFERENCE-COUNTED arena (wire.Arena)
// rather than a garbage-collected allocation. The discipline is small and
// strict. Every delivered message carries exactly one reference to its
// frame's arena; a consumer that retains bytes beyond the handler's return —
// a server adopting a written value into register state, a pipelined client
// detaching an acknowledgement — takes its own reference with Ref at that
// retention point; every owner calls Release exactly once when done, and the
// last Release recycles the buffer for the next frame. The failure modes are
// deliberately asymmetric: a missing Release only leaks the buffer to the GC
// (views stay valid forever, the pre-arena behaviour), while a Release too
// many would hand live bytes to the next frame and therefore PANICS
// immediately. See internal/wire/arena.go for the full rules.
//
// # Virtual time and deterministic simulation
//
// The in-memory transport can be placed on a virtual clock
// (transport.NewVirtualClock, wired in with transport.WithVirtualClock):
// deliveries, timeouts and injected faults become events in a priority
// queue, and the clock advances to the next event only when the system is
// quiescent — every in-flight message accounted for, every handler
// returned. Under the virtual clock a deployment must not consult wall
// time: timers must be scheduled through the clock, and nonce sources must
// derive from clock.Now() rather than time.Now(), or runs stop being
// reproducible. The scenario DSL, the seed-sweeping explorer and the trace
// shrinker built on this live in internal/sim and cmd/simexplore.
//
// # Overload control and latency under load
//
// Closed-loop benchmarks (blocked workers) cannot observe queueing
// collapse: their offered load slows down exactly when the system does. The
// open-loop generator in internal/workload schedules arrivals on a clock at
// a target rate and charges each operation's latency from its INTENDED
// arrival time — the coordinated-omission-safe discipline — so stalls are
// charged to every operation scheduled during them. Overload behaviour is
// opt-in and two-sided: Config.AdmissionWait turns the pipeline's at-depth
// blocking into fast-fail admission (a submission that cannot get a slot
// within the budget returns ErrOverloaded instead of queueing), and
// Config.QueueBound caps each server's inbound queues, shedding excess
// messages into Stats.ShedDrops rather than growing mailboxes without
// bound. Client acknowledgement mailboxes are deliberately never bounded:
// dropping acks could starve quorums that were already completable. Both
// knobs default to off, preserving the original never-drop semantics.
//
// Benchmarks quantifying each layer live in bench_test.go; BENCH_2.json,
// BENCH_3.json, BENCH_5.json, BENCH_6.json, BENCH_8.json and BENCH_10.json
// (open-loop throughput-vs-p99 curves with knee points) record the measured
// trajectory.
package fastread
