// Package fastread is a Go implementation of the fast single-writer
// multi-reader (SWMR) atomic register of Dutta, Guerraoui, Levy and Vukolić,
// "How Fast can a Distributed Atomic Read be?" (PODC 2004), together with the
// baselines the paper compares against.
//
// A register is replicated over S server processes, of which up to t may
// fail (and, in the arbitrary-failure variant, up to b ≤ t may be
// malicious). A single writer and up to R readers access it. The paper's
// central result is that every read and every write can complete in a single
// communication round-trip — a fast implementation — if and only if
// R < S/t − 2 (crash failures) or S > (R+2)·t + (R+1)·b (arbitrary
// failures). This package implements those fast algorithms, the classic
// two-round ABD register, the decentralised max-min variant, a fast regular
// register, and the machinery to reproduce the paper's results (adversarial
// lower-bound schedules, atomicity checking, workloads and benchmarks).
//
// # Quick start
//
//	cfg := fastread.Config{Servers: 4, Faulty: 1, Readers: 1}
//	cluster, err := fastread.NewCluster(cfg)
//	if err != nil { ... }
//	defer cluster.Close()
//
//	w := cluster.Writer()
//	r, _ := cluster.Reader(1)
//
//	_ = w.Write(ctx, []byte("hello"))
//	res, _ := r.Read(ctx)        // exactly one round-trip
//	fmt.Println(string(res.Value))
//
// Use Config.Protocol to select among the fast crash-tolerant register
// (default), the Byzantine-tolerant fast register, the ABD baseline, the
// max-min variant and the regular register. The resilience helpers
// (FastReadPossible, MaxFastReaders, MinServersForFast) expose the paper's
// exact bounds.
package fastread
