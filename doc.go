// Package fastread is a Go implementation of the fast single-writer
// multi-reader (SWMR) atomic register of Dutta, Guerraoui, Levy and Vukolić,
// "How Fast can a Distributed Atomic Read be?" (PODC 2004), together with the
// baselines the paper compares against — grown into a multi-register store
// that serves many named registers from one shared deployment.
//
// A register is replicated over S server processes, of which up to t may
// fail (and, in the arbitrary-failure variant, up to b ≤ t may be
// malicious). A single writer and up to R readers access it. The paper's
// central result is that every read and every write can complete in a single
// communication round-trip — a fast implementation — if and only if
// R < S/t − 2 (crash failures) or S > (R+2)·t + (R+1)·b (arbitrary
// failures). This package implements those fast algorithms, the classic
// two-round ABD register, the decentralised max-min variant, a fast regular
// register, and the machinery to reproduce the paper's results (adversarial
// lower-bound schedules, atomicity checking, workloads and benchmarks).
//
// # Quick start: one register
//
//	cfg := fastread.Config{Servers: 4, Faulty: 1, Readers: 1}
//	cluster, err := fastread.NewCluster(cfg)
//	if err != nil { ... }
//	defer cluster.Close()
//
//	w := cluster.Writer()
//	r, _ := cluster.Reader(1)
//
//	_ = w.Write(ctx, []byte("hello"))
//	res, _ := r.Read(ctx)        // exactly one round-trip
//	fmt.Println(string(res.Value))
//
// # Quick start: many registers, one deployment
//
// A Store multiplexes an open-ended keyspace of named registers over ONE set
// of server processes. Each key is an independent register with the full
// per-register atomicity guarantee; servers keep separate per-key state,
// lazily instantiated, and the writer/reader processes join the network once
// and demultiplex their traffic by the register key carried in every
// protocol message.
//
//	store, err := fastread.NewStore(cfg)
//	if err != nil { ... }
//	defer store.Close()
//
//	reg, _ := store.Register("user/42/profile")
//	_ = reg.Writer().Write(ctx, []byte("v1"))
//	r, _ := reg.Reader(1)
//	res, _ := r.Read(ctx)        // still one round-trip, per key
//
// A Cluster is simply a Store serving only the default register (the empty
// key); Cluster.Store exposes the underlying store so single-register code
// can grow into the keyed API without redeploying.
//
// Use Config.Protocol to select among the fast crash-tolerant register
// (default), the Byzantine-tolerant fast register, the ABD baseline, the
// max-min variant and the regular register. The resilience helpers
// (FastReadPossible, MaxFastReaders, MinServersForFast) expose the paper's
// exact bounds; they are per-deployment properties and therefore hold for
// every key of a Store at once.
//
// # Transports
//
// Config.Transport selects the message-passing backend the deployment runs
// on; the protocols only ever see an abstract node, so every protocol runs
// unchanged over every backend.
//
//	// Default: the in-memory asynchronous network (full fault injection).
//	store, _ := fastread.NewStore(cfg)
//
//	// The same deployment over real TCP sockets on loopback.
//	cfg.Transport = fastread.TCP(nil)
//	store, _ = fastread.NewStore(cfg)
//
//	// Pinned local endpoints. NewStore starts the WHOLE deployment in this
//	// process, so every book address must be bindable on this machine.
//	cfg.Transport = fastread.TCP(map[string]string{
//		"s1": "127.0.0.1:7101", "s2": "127.0.0.1:7102", "s3": "127.0.0.1:7103",
//		"w": "127.0.0.1:7200", "r1": "127.0.0.1:7201",
//	})
//
// Capabilities differ only in fault injection: CrashServer and Network are
// in-memory capabilities and report ErrUnsupported on TCP, where the real
// network is the fault injector (kill a process to crash it). InMemory
// accepts WithDelay/WithJitter/WithSeed; TCP accepts
// WithDialTimeout/WithWriteTimeout. Deployments spanning processes or
// machines are driven by cmd/regserver and cmd/regclient, which serve the
// same protocols via the same driver registry.
//
// # Protocol drivers
//
// The store resolves Config.Protocol through the internal/driver registry:
// each protocol package registers uniform server/writer/reader factories,
// and deployment code — the store, the cmd binaries — composes drivers with
// transports without naming any protocol. Adding a protocol is one
// registration file in its package plus a registry name; no switch
// statements exist on the deployment path.
//
// # Performance and buffer ownership
//
// The per-message hot path (decode request → mutate per-key state → encode
// ack) is allocation-free in steady state: the codec exposes append-style
// encoding and aliasing decodes backed by sync.Pool scratch, the in-memory
// transport routes without a network-wide lock, the TCP transport batches
// frames per peer connection, and Byzantine deployments memoise verified
// writer signatures. Each server process additionally executes its messages
// on a key-sharded parallel executor: messages are dispatched by register
// key across Config.ServerWorkers workers (GOMAXPROCS by default), so
// distinct registers are served concurrently across cores while every
// register keeps FIFO, single-goroutine handling.
//
// Anyone writing protocol code must follow the codec's buffer-ownership
// rules — encoded payloads are immutable, decoded views may alias them, and
// retained data is cloned exactly at its retention point — spelled out in
// internal/wire/pool.go. The sole-mutator discipline those rules lean on is
// per KEY-SHARD WORKER: all messages naming a register key are handled by
// the same worker goroutine, which is therefore that key's only mutator.
// Benchmarks quantifying each layer live in bench_test.go; BENCH_2.json and
// BENCH_3.json record the measured trajectory.
package fastread
