package fastread

import "fastread/internal/quorum"

// FastReadPossible reports whether a fast SWMR atomic register implementation
// exists for S servers, at most t faulty servers of which at most b are
// malicious, and R readers: S > (R+2)·t + (R+1)·b. With b = 0 this is the
// paper's crash-model bound R < S/t − 2.
func FastReadPossible(servers, faulty, malicious, readers int) bool {
	cfg := quorum.Config{Servers: servers, Faulty: faulty, Malicious: malicious, Readers: readers}
	return cfg.FastReadPossible()
}

// MaxFastReaders returns the largest number of readers for which a fast
// implementation exists with the given servers and failure bounds, or -1 if
// no fast implementation exists even with zero readers.
func MaxFastReaders(servers, faulty, malicious int) int {
	return quorum.MaxFastReaders(servers, faulty, malicious)
}

// MinServersForFast returns the smallest number of servers for which a fast
// implementation exists with the given readers and failure bounds.
func MinServersForFast(readers, faulty, malicious int) int {
	return quorum.MinServersForFast(readers, faulty, malicious)
}

// RegularPossible reports whether a fast SWMR regular register exists for the
// given failure bounds (t < S/2 in the crash model, S > 2t + b in general),
// irrespective of the number of readers.
func RegularPossible(servers, faulty, malicious int) bool {
	cfg := quorum.Config{Servers: servers, Faulty: faulty, Malicious: malicious}
	return cfg.FastRegularPossible()
}
