package fastread

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/history"
)

// fourGroupSpecs is the canonical partitioned test deployment: four
// homogeneous groups inheriting the deployment-level quorum shape.
func fourGroupSpecs() []GroupSpec {
	return []GroupSpec{{Name: "g0"}, {Name: "g1"}, {Name: "g2"}, {Name: "g3"}}
}

// TestStoreGroupsCrossGroupAtomicity is the acceptance test of the
// partitioned store: 64 keys spread by the ring over 4 independent in-memory
// replica groups, driven concurrently, and every key's history independently
// satisfies the paper's single-writer atomicity conditions — checked in one
// sweep by atomicity.CheckKeyed. Values embed their key, so the checker
// (condition 1: a read returns ⊥ or a written value) also proves cross-GROUP
// isolation: a value leaking between groups would be flagged as
// never-written. The test also asserts the ring actually used every group —
// a routing bug that funnelled all keys into one group would pass the
// atomicity check while scaling nothing.
func TestStoreGroupsCrossGroupAtomicity(t *testing.T) {
	scenarios := []struct {
		name string
		cfg  Config
	}{
		// ServerWorkers: 4 forces each group's key-sharded executors onto
		// multiple workers regardless of GOMAXPROCS, so per-key atomicity is
		// checked under genuinely parallel server execution in every group.
		{"fast", Config{Servers: 7, Faulty: 1, Readers: 2, Protocol: ProtocolFast,
			ServerWorkers: 4, Groups: fourGroupSpecs()}},
		{"abd", Config{Servers: 5, Faulty: 2, Readers: 2, Protocol: ProtocolABD,
			ServerWorkers: 4, Groups: fourGroupSpecs()}},
	}
	const (
		keyCount       = 64
		writes         = 4
		readsPerReader = 5
	)
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			store, err := NewStore(sc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
			defer cancel()

			histories := make(map[string]history.History, keyCount)
			var histMu sync.Mutex
			groupKeys := make(map[string]int)
			var wg sync.WaitGroup
			for i := 0; i < keyCount; i++ {
				key := fmt.Sprintf("key-%03d", i)
				reg, err := store.Register(key)
				if err != nil {
					t.Fatal(err)
				}
				groupKeys[reg.Group()]++
				wg.Add(1)
				go func(key string, reg *Register) {
					defer wg.Done()
					h := driveRegister(ctx, t, reg, writes, readsPerReader)
					histMu.Lock()
					histories[key] = h
					histMu.Unlock()
				}(key, reg)
			}
			wg.Wait()
			if t.Failed() {
				return
			}

			if len(groupKeys) != len(sc.cfg.Groups) {
				t.Errorf("keys landed on %d of %d groups: %v", len(groupKeys), len(sc.cfg.Groups), groupKeys)
			}
			report, err := atomicity.CheckKeyed(histories, atomicity.CheckSWMR, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK {
				for _, k := range report.FailedKeys() {
					t.Errorf("key %q violates atomicity:\n%s", k, report.Reports[k])
				}
			}
			if got := len(report.Reports); got != keyCount {
				t.Errorf("checker saw %d keys, want %d", got, keyCount)
			}

			stats := store.Stats()
			if want := int64(keyCount * writes); stats.Writes != want {
				t.Errorf("Stats.Writes = %d, want %d", stats.Writes, want)
			}
			if want := int64(keyCount * sc.cfg.Readers * readsPerReader); stats.Reads != want {
				t.Errorf("Stats.Reads = %d, want %d", stats.Reads, want)
			}
			if len(stats.Groups) != len(sc.cfg.Groups) {
				t.Fatalf("Stats.Groups has %d entries, want %d", len(stats.Groups), len(sc.cfg.Groups))
			}
			var keysSeen int
			var opsSeen int64
			for _, gs := range stats.Groups {
				if gs.Keys != groupKeys[gs.Group] {
					t.Errorf("group %q: Stats reports %d keys, placement counted %d", gs.Group, gs.Keys, groupKeys[gs.Group])
				}
				if wantOps := int64(gs.Keys) * int64(writes+sc.cfg.Readers*readsPerReader); gs.Ops != wantOps {
					t.Errorf("group %q: Ops = %d, want %d", gs.Group, gs.Ops, wantOps)
				}
				keysSeen += gs.Keys
				opsSeen += gs.Ops
			}
			if keysSeen != keyCount {
				t.Errorf("per-group key counts sum to %d, want %d", keysSeen, keyCount)
			}
			if want := stats.Writes + stats.Reads; opsSeen != want {
				t.Errorf("per-group ops sum to %d, want %d", opsSeen, want)
			}
		})
	}
}

// TestStoreGroupsRoutingDeterministic pins the routing seam: GroupOf is a
// pure computation that agrees with where Register actually places keys,
// across two independently built stores of the same configuration (the
// in-process analogue of two processes sharing one topology).
func TestStoreGroupsRoutingDeterministic(t *testing.T) {
	cfg := Config{Servers: 3, Faulty: 1, Readers: 1, Protocol: ProtocolABD, Groups: fourGroupSpecs()}
	a, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("route-%d", i)
		if ga, gb := a.GroupOf(key), b.GroupOf(key); ga != gb {
			t.Fatalf("key %q: store A routes to %q, store B to %q", key, ga, gb)
		}
		reg, err := a.Register(key)
		if err != nil {
			t.Fatal(err)
		}
		if reg.Group() != a.GroupOf(key) {
			t.Fatalf("key %q: registered on %q but GroupOf says %q", key, reg.Group(), a.GroupOf(key))
		}
	}
	want := []string{"g0", "g1", "g2", "g3"}
	got := a.Groups()
	if len(got) != len(want) {
		t.Fatalf("Groups() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Groups() = %v, want %v", got, want)
		}
	}
}

// TestStoreGroupsLazyInstantiation checks that a group costs nothing until
// the ring routes a key to it: registering keys owned by a strict subset of
// the groups must leave the others unstarted (visible through their
// zero-valued Stats entries and absent delivery counts).
func TestStoreGroupsLazyInstantiation(t *testing.T) {
	store, err := NewStore(Config{Servers: 3, Faulty: 1, Readers: 1, Protocol: ProtocolABD, Groups: fourGroupSpecs()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctx := testCtx(t)

	// Find a key for group g0 by pure routing, then touch only that key.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("lazy-%d", i)
		if store.GroupOf(key) == "g0" {
			break
		}
	}
	reg, err := store.Register(key)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Writer().Write(ctx, []byte("v")); err != nil {
		t.Fatal(err)
	}
	stats := store.Stats()
	for _, gs := range stats.Groups {
		switch gs.Group {
		case "g0":
			if gs.Keys != 1 || gs.Writes != 1 {
				t.Errorf("g0: keys=%d writes=%d, want 1/1", gs.Keys, gs.Writes)
			}
		default:
			if gs.Keys != 0 || gs.Ops != 0 {
				t.Errorf("untouched group %q shows keys=%d ops=%d", gs.Group, gs.Keys, gs.Ops)
			}
		}
	}
	// Only g0's session exists, so the deployment-wide delivery count is
	// exactly g0's — three servers' worth of one write round, not four
	// groups' worth of anything.
	if stats.DeliveredMsgs == 0 {
		t.Error("no deliveries counted for the instantiated group")
	}
}

// TestStoreGroupsHeterogeneousQuorums checks per-group quorum overrides: a
// deployment can mix group shapes, each validated against the protocol's
// bound, and operations on each group use its own quorum math.
func TestStoreGroupsHeterogeneousQuorums(t *testing.T) {
	store, err := NewStore(Config{
		Servers: 4, Faulty: 1, Readers: 1, Protocol: ProtocolABD,
		Groups: []GroupSpec{
			{Name: "small"},
			{Name: "wide", Servers: 7, Faulty: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctx := testCtx(t)

	touched := map[string]bool{}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("hetero-%d", i)
		reg, err := store.Register(key)
		if err != nil {
			t.Fatal(err)
		}
		touched[reg.Group()] = true
		if err := reg.Writer().Write(ctx, []byte(key)); err != nil {
			t.Fatalf("key %q (group %q): %v", key, reg.Group(), err)
		}
		rd, err := reg.Reader(1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := rd.Read(ctx)
		if err != nil {
			t.Fatalf("key %q (group %q): %v", key, reg.Group(), err)
		}
		if string(res.Value) != key {
			t.Fatalf("key %q: read %q", key, res.Value)
		}
	}
	if !touched["small"] || !touched["wide"] {
		t.Errorf("16 keys touched only %v", touched)
	}
}

// TestStoreGroupsConfigRejected covers the configuration guards: unnamed and
// duplicate groups, and a group whose (possibly inherited) shape violates
// the protocol bound, all fail at NewStore — not at the first unlucky
// Register.
func TestStoreGroupsConfigRejected(t *testing.T) {
	base := Config{Servers: 7, Faulty: 1, Readers: 1, Protocol: ProtocolFast}

	noName := base
	noName.Groups = []GroupSpec{{Name: "g0"}, {}}
	if _, err := NewStore(noName); err == nil {
		t.Error("NewStore accepted an unnamed group")
	}

	dup := base
	dup.Groups = []GroupSpec{{Name: "g"}, {Name: "g"}}
	if _, err := NewStore(dup); err == nil {
		t.Error("NewStore accepted duplicate group names")
	}

	// The fast protocol needs R < S/t - 2: a 4-server group with t=1 cannot
	// serve R=1 (bound requires S/t > R+2 = 3... S=4 gives R < 2, fine) — use
	// a group small enough to violate it outright.
	bad := base
	bad.Groups = []GroupSpec{{Name: "ok"}, {Name: "tiny", Servers: 3}}
	if _, err := NewStore(bad); !errors.Is(err, ErrTooManyReaders) {
		t.Errorf("NewStore on a bound-violating group: got %v, want ErrTooManyReaders", err)
	}
}

// TestStoreGroupsCrashPerGroup checks fault injection composes with
// partitioning: crashing server 1 crashes it in every instantiated group,
// each group tolerates its own t failures independently, and the capability
// remains in-memory-only.
func TestStoreGroupsCrashPerGroup(t *testing.T) {
	store, err := NewStore(Config{Servers: 5, Faulty: 2, Readers: 1, Protocol: ProtocolABD,
		Groups: []GroupSpec{{Name: "g0"}, {Name: "g1"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctx := testCtx(t)

	// Touch keys on both groups so both are instantiated before the crash.
	keys := make([]*Register, 0, 8)
	seen := map[string]bool{}
	for i := 0; len(seen) < 2 || len(keys) < 4; i++ {
		reg, err := store.Register(fmt.Sprintf("crash-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, reg)
		seen[reg.Group()] = true
	}
	if err := store.CrashServer(1); err != nil {
		t.Fatal(err)
	}
	if err := store.CrashServer(6); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("CrashServer(6) on 5-server groups: got %v, want ErrUnknownServer", err)
	}
	for _, reg := range keys {
		if err := reg.Writer().Write(ctx, []byte("ok")); err != nil {
			t.Fatalf("key %q (group %q): write after crash: %v", reg.Key(), reg.Group(), err)
		}
		rd, _ := reg.Reader(1)
		if res, err := rd.Read(ctx); err != nil || string(res.Value) != "ok" {
			t.Fatalf("key %q (group %q): read after crash: %v %q", reg.Key(), reg.Group(), err, res.Value)
		}
	}

	// A partitioned deployment has one network per group, so the aggregate
	// Network capability is declined.
	if _, err := store.Network(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("Network() on a partitioned store: got %v, want ErrUnsupported", err)
	}
}

// TestStoreSingleGroupStatsBreakdown pins backward compatibility: an
// unpartitioned store reports exactly one "default" group whose breakdown
// matches the aggregate counters.
func TestStoreSingleGroupStatsBreakdown(t *testing.T) {
	store, err := NewStore(Config{Servers: 4, Faulty: 1, Readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctx := testCtx(t)

	reg, err := store.Register("k")
	if err != nil {
		t.Fatal(err)
	}
	if reg.Group() != "default" || store.GroupOf("k") != "default" {
		t.Errorf("single-group placement: Register.Group=%q GroupOf=%q", reg.Group(), store.GroupOf("k"))
	}
	if err := reg.Writer().Write(ctx, []byte("v")); err != nil {
		t.Fatal(err)
	}
	stats := store.Stats()
	if len(stats.Groups) != 1 {
		t.Fatalf("Stats.Groups has %d entries, want 1", len(stats.Groups))
	}
	gs := stats.Groups[0]
	if gs.Group != "default" || gs.Keys != 1 || gs.Writes != stats.Writes || gs.Ops != stats.Writes+stats.Reads {
		t.Errorf("default group breakdown %+v does not match aggregate writes=%d reads=%d",
			gs, stats.Writes, stats.Reads)
	}
}
