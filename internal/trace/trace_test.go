package trace

import (
	"strings"
	"sync"
	"testing"

	"fastread/internal/types"
)

func TestRecordAndEvents(t *testing.T) {
	tr := New()
	tr.Record(KindInvoke, types.Reader(1), types.ProcessID{}, "read()")
	tr.Record(KindSend, types.Reader(1), types.Server(1), "read ts=%d", 3)
	tr.Record(KindReturn, types.Reader(1), types.ProcessID{}, "-> v3")

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("len(Events) = %d, want 3", len(events))
	}
	if events[0].Seq != 1 || events[2].Seq != 3 {
		t.Errorf("sequence numbers not monotone: %v", events)
	}
	if events[1].Detail != "read ts=3" {
		t.Errorf("formatted detail = %q", events[1].Detail)
	}
	if events[1].Peer != types.Server(1) {
		t.Errorf("peer = %v", events[1].Peer)
	}
}

func TestCountKind(t *testing.T) {
	tr := New()
	tr.Record(KindSend, types.Reader(1), types.Server(1), "a")
	tr.Record(KindSend, types.Reader(2), types.Server(1), "b")
	tr.Record(KindReceive, types.Server(1), types.Reader(1), "c")

	if got := tr.CountKind(KindSend, types.Reader(1)); got != 1 {
		t.Errorf("CountKind(send, r1) = %d, want 1", got)
	}
	if got := tr.CountKind(KindSend, types.ProcessID{}); got != 2 {
		t.Errorf("CountKind(send, any) = %d, want 2", got)
	}
	if got := tr.CountKind(KindDrop, types.ProcessID{}); got != 0 {
		t.Errorf("CountKind(drop, any) = %d, want 0", got)
	}
}

func TestDisabledAndNilTraces(t *testing.T) {
	d := Disabled()
	d.Record(KindSend, types.Writer(), types.Server(1), "ignored")
	if d.Len() != 0 {
		t.Errorf("disabled trace recorded %d events", d.Len())
	}
	var nilTrace *Trace
	nilTrace.Record(KindSend, types.Writer(), types.Server(1), "ignored")
	nilTrace.Note(types.Writer(), "ignored")
	if nilTrace.Len() != 0 || nilTrace.Events() != nil {
		t.Error("nil trace should be inert")
	}
}

func TestStringRendering(t *testing.T) {
	tr := New()
	tr.Note(types.Writer(), "hello")
	tr.Record(KindSend, types.Writer(), types.Server(2), "write ts=1")
	s := tr.String()
	if !strings.Contains(s, "note") || !strings.Contains(s, "hello") {
		t.Errorf("trace string missing note: %q", s)
	}
	if !strings.Contains(s, "s2") {
		t.Errorf("trace string missing peer: %q", s)
	}
	var e Event
	if e.String() == "" {
		t.Error("zero event should still render")
	}
}

func TestReset(t *testing.T) {
	tr := New()
	tr.Note(types.Writer(), "x")
	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("Len after Reset = %d", tr.Len())
	}
	tr.Note(types.Writer(), "y")
	if got := tr.Events()[0].Seq; got != 1 {
		t.Errorf("sequence should restart at 1 after Reset, got %d", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	const goroutines = 10
	const perGoroutine = 100
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				tr.Record(KindNote, types.Reader(id+1), types.ProcessID{}, "n")
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() != goroutines*perGoroutine {
		t.Errorf("Len = %d, want %d", tr.Len(), goroutines*perGoroutine)
	}
	// Sequence numbers must be unique.
	seen := make(map[int64]bool)
	for _, e := range tr.Events() {
		if seen[e.Seq] {
			t.Fatalf("duplicate sequence number %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindSend, KindReceive, KindInvoke, KindReturn, KindStateChange, KindDrop, KindNote}
	for _, k := range kinds {
		if k.String() == "unknown" || k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("unexpected name for invalid kind")
	}
}
