// Package trace provides a lightweight structured event log shared by the
// protocol implementations, the adversarial schedules and the experiment
// harness.
//
// Traces serve two purposes: (1) tests and the lower-bound reproductions
// assert on the sequence of protocol-level events (e.g. "the read by r2 never
// received a reply from any server in block B2"), and (2) the experiment
// harness counts round-trips and server-state mutations per operation, which
// is the paper's notion of time complexity.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"fastread/internal/types"
)

// Kind classifies trace events.
type Kind int

const (
	// KindSend records a protocol message leaving a process.
	KindSend Kind = iota + 1
	// KindReceive records a protocol message being processed by a process.
	KindReceive
	// KindInvoke records a read or write invocation at a client.
	KindInvoke
	// KindReturn records a read or write response at a client.
	KindReturn
	// KindStateChange records a server mutating its durable protocol state
	// (timestamp, seen set or counters).
	KindStateChange
	// KindDrop records a message intentionally suppressed by the adversary.
	KindDrop
	// KindNote records free-form annotations from experiments.
	KindNote
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindReceive:
		return "recv"
	case KindInvoke:
		return "invoke"
	case KindReturn:
		return "return"
	case KindStateChange:
		return "state"
	case KindDrop:
		return "drop"
	case KindNote:
		return "note"
	default:
		return "unknown"
	}
}

// Event is a single entry in a trace.
type Event struct {
	Seq     int64
	At      time.Time
	Kind    Kind
	Process types.ProcessID
	Peer    types.ProcessID
	Detail  string
}

// String renders the event on one line.
func (e Event) String() string {
	if e.Peer.IsZero() {
		return fmt.Sprintf("#%04d %-6s %-4s %s", e.Seq, e.Kind, e.Process, e.Detail)
	}
	return fmt.Sprintf("#%04d %-6s %-4s ↔ %-4s %s", e.Seq, e.Kind, e.Process, e.Peer, e.Detail)
}

// Trace is an append-only, concurrency-safe event log. The zero value is
// ready to use but discards nothing; use Disabled() for a trace that records
// nothing at zero cost.
type Trace struct {
	mu       sync.Mutex
	events   []Event
	seq      int64
	disabled bool
}

// New returns an empty recording trace.
func New() *Trace { return &Trace{} }

// Disabled returns a trace that drops every event. Protocol code can always
// call Record without checking for nil.
func Disabled() *Trace { return &Trace{disabled: true} }

// Enabled reports whether Record would actually store an event. Hot paths
// should guard Record calls with it: even a discarded Record boxes its
// variadic arguments onto the heap, which dominates per-message allocation
// counts when tracing is off.
func (t *Trace) Enabled() bool { return t != nil && !t.disabled }

// Record appends an event. A nil or disabled trace ignores the call.
func (t *Trace) Record(kind Kind, process, peer types.ProcessID, format string, args ...any) {
	if t == nil || t.disabled {
		return
	}
	detail := format
	if len(args) > 0 {
		detail = fmt.Sprintf(format, args...)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.events = append(t.events, Event{
		Seq:     t.seq,
		At:      time.Now(),
		Kind:    kind,
		Process: process,
		Peer:    peer,
		Detail:  detail,
	})
}

// Note records a free-form annotation attributed to a process.
func (t *Trace) Note(process types.ProcessID, format string, args ...any) {
	t.Record(KindNote, process, types.ProcessID{}, format, args...)
}

// Events returns a copy of the recorded events in order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Count returns the number of events matching the filter.
func (t *Trace) Count(filter func(Event) bool) int {
	n := 0
	for _, e := range t.Events() {
		if filter(e) {
			n++
		}
	}
	return n
}

// CountKind returns the number of events of the given kind attributed to the
// given process (zero ProcessID matches any process).
func (t *Trace) CountKind(kind Kind, process types.ProcessID) int {
	return t.Count(func(e Event) bool {
		if e.Kind != kind {
			return false
		}
		return process.IsZero() || e.Process == process
	})
}

// String renders the whole trace, one event per line.
func (t *Trace) String() string {
	events := t.Events()
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Reset discards all recorded events.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
	t.seq = 0
}
