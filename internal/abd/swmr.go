package abd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by the ABD clients.
var (
	// ErrBottomWrite indicates an attempt to write the reserved value ⊥.
	ErrBottomWrite = errors.New("abd: cannot write the initial value ⊥")
	// ErrNotWriter indicates a writer constructed on a non-writer node.
	ErrNotWriter = errors.New("abd: writer must use the writer identity")
	// ErrNotReader indicates a reader constructed on a non-reader node.
	ErrNotReader = errors.New("abd: reader must use a reader identity")
)

// ClientConfig configures an ABD client (writer or reader).
type ClientConfig struct {
	// Quorum describes the deployment. ABD uses majority quorums, so it
	// requires t < S/2 but places no bound on the number of readers.
	Quorum quorum.Config
	// Key names the register this client operates on; the empty key is the
	// deployment's default register. Requests are stamped with the key and
	// only acknowledgements carrying it are accepted.
	Key string
	// Depth bounds the number of operations this client keeps in flight at
	// once (ReadAsync/WriteAsync); non-positive means
	// protoutil.DefaultPipelineDepth.
	Depth int
	// Nonce, when positive, overrides a reader's initial operation counter
	// (see protoutil.StartNonce; deterministic simulation). Writers ignore
	// it — the write timestamp sequence is quorum-recovered, not clocked.
	Nonce int64
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
}

// Writer is the single-writer ABD writer: one round-trip per write, exactly
// as in the paper's description of [Attiya et al. 1995]. WriteAsync keeps up
// to cfg.Depth writes in flight; timestamps are taken and broadcast in
// submission order, so servers apply pipelined writes in order.
type Writer struct {
	cfg     ClientConfig
	node    transport.Node
	servers []types.ProcessID
	pl      *protoutil.Pipeline

	// submitted is the highest timestamp this incarnation has broadcast;
	// the ack filter caps accepted timestamps at it so a restarted writer
	// times out visibly instead of "completing" against a previous
	// incarnation's newer server state (see core.Writer.WriteAsync).
	submitted atomic.Int64

	mu     sync.Mutex
	ts     types.Timestamp
	prev   types.Value
	rounds stats.Counter
	writes int64
}

// NewWriter creates the SWMR ABD writer.
func NewWriter(cfg ClientConfig, node transport.Node) (*Writer, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("abd: writer requires a transport node")
	}
	if node.ID() != types.Writer() {
		return nil, fmt.Errorf("%w: got %v", ErrNotWriter, node.ID())
	}
	return &Writer{
		cfg:     cfg,
		node:    node,
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
		pl:      protoutil.NewPipeline(node, cfg.Depth, cfg.Trace),
		ts:      1,
		prev:    types.Bottom(),
	}, nil
}

// Write stores v in the register using a single round-trip to a majority of
// servers. It is WriteAsync at depth one: submit, then wait.
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	f, err := w.WriteAsync(ctx, v)
	if err != nil {
		return err
	}
	_, rerr := f.Result(ctx)
	return rerr
}

// WriteAsync submits one write and returns its future without waiting for
// the majority. Timestamps are taken and requests broadcast under the
// writer's mutex, so pipelined writes reach every server in submission
// order; a write completes when a majority acknowledges a timestamp at
// least as new as its own.
func (w *Writer) WriteAsync(ctx context.Context, v types.Value) (*protoutil.Future[struct{}], error) {
	if v.IsBottom() {
		return nil, ErrBottomWrite
	}
	if err := w.pl.Acquire(ctx); err != nil {
		return nil, fmt.Errorf("abd: write: %w", err)
	}
	f := protoutil.NewFuture[struct{}]()

	w.mu.Lock()
	ts := w.ts
	// One owned copy: the request is transient (encoded during the
	// broadcast), and the same copy becomes the remembered prev for the next
	// submission.
	cur := v.Clone()
	req := &wire.Message{Op: wire.OpWrite, Key: w.cfg.Key, TS: ts, Cur: cur, Prev: w.prev}
	w.cfg.Trace.Record(trace.KindInvoke, types.Writer(), types.ProcessID{}, "abd write(key=%q ts=%d)", w.cfg.Key, ts)
	w.submitted.Store(int64(ts))
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteAck && m.Key == w.cfg.Key &&
			m.TS >= ts && int64(m.TS) <= w.submitted.Load()
	}
	op := w.pl.Register(w.cfg.Quorum.Majority(), filter, func(_ []protoutil.Ack, err error) {
		if err != nil {
			f.Resolve(struct{}{}, fmt.Errorf("abd: write ts=%d: %w", ts, err))
			return
		}
		w.mu.Lock()
		w.rounds.Add(1)
		w.writes++
		w.mu.Unlock()
		w.cfg.Trace.Record(trace.KindReturn, types.Writer(), types.ProcessID{}, "abd write(ts=%d) -> ok", ts)
		f.Resolve(struct{}{}, nil)
	})
	err := protoutil.Broadcast(w.node, w.servers, req, w.cfg.Trace)
	if err == nil {
		w.ts = ts.Next()
		w.prev = cur
	}
	w.mu.Unlock()
	if err != nil {
		op.Abort(err)
		return nil, fmt.Errorf("abd: write ts=%d: %w", ts, err)
	}
	f.Bind(ctx, op)
	return f, nil
}

// Stats reports completed writes and total round-trips (equal: SWMR ABD
// writes are fast).
func (w *Writer) Stats() (writes, roundTrips int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, w.rounds.Total()
}

// Close detaches the writer from the network.
func (w *Writer) Close() error { return w.node.Close() }

// ReadResult is what an ABD read returns, including the number of
// round-trips it used (always 2: query + write-back).
type ReadResult struct {
	Value      types.Value
	Timestamp  types.Timestamp
	RoundTrips int
}

// Reader is the SWMR ABD reader: query a majority, select the highest
// timestamp, write it back to a majority, then return. ReadAsync keeps up to
// cfg.Depth reads in flight; each read is a two-phase state machine whose
// phases are matched to their acknowledgements by rCounter nonces.
type Reader struct {
	cfg     ClientConfig
	node    transport.Node
	id      types.ProcessID
	servers []types.ProcessID
	pl      *protoutil.Pipeline

	mu       sync.Mutex
	rCounter int64
	rounds   stats.Counter
	reads    int64
}

// NewReader creates an SWMR ABD reader. Unlike the fast register, any number
// of readers is supported, so the reader index only needs to be ≥ 1.
func NewReader(cfg ClientConfig, node transport.Node) (*Reader, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("abd: reader requires a transport node")
	}
	id := node.ID()
	if id.Role != types.RoleReader || id.Index < 1 {
		return nil, fmt.Errorf("%w: got %v", ErrNotReader, id)
	}
	return &Reader{
		cfg:      cfg,
		node:     node,
		id:       id,
		servers:  protoutil.ServerIDs(cfg.Quorum.Servers),
		pl:       protoutil.NewPipeline(node, cfg.Depth, cfg.Trace),
		rCounter: protoutil.StartNonce(cfg.Nonce),
	}, nil
}

// ID returns the reader's process identity.
func (r *Reader) ID() types.ProcessID { return r.id }

// Read returns the current register value using two round-trips. It is
// ReadAsync at depth one: submit, then wait.
func (r *Reader) Read(ctx context.Context) (ReadResult, error) {
	f, err := r.ReadAsync(ctx)
	if err != nil {
		return ReadResult{}, err
	}
	return f.Result(ctx)
}

// ReadAsync submits one two-phase read and returns its future. One slot
// covers both phases, so cfg.Depth bounds whole reads in flight, not
// round-trips; the phase-2 write-back is launched from phase 1's completion
// callback and the future follows the operation across the phase boundary.
func (r *Reader) ReadAsync(ctx context.Context) (*protoutil.Future[ReadResult], error) {
	if err := r.pl.Acquire(ctx); err != nil {
		return nil, fmt.Errorf("abd: read: %w", err)
	}
	f := protoutil.NewFuture[ReadResult]()

	majority := r.cfg.Quorum.Majority()

	// Phase 1: query a majority for their current (ts, value).
	r.mu.Lock()
	r.rCounter++
	rc := r.rCounter
	r.cfg.Trace.Record(trace.KindInvoke, r.id, types.ProcessID{}, "abd read(key=%q) rc=%d", r.cfg.Key, rc)
	query := &wire.Message{Op: wire.OpRead, Key: r.cfg.Key, RCounter: rc}
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpReadAck && m.Key == r.cfg.Key && m.RCounter == rc
	}
	op := r.pl.RegisterPhase(majority, filter, func(acks []protoutil.Ack, err error) {
		if err != nil {
			f.Resolve(ReadResult{}, fmt.Errorf("abd: read phase 1: %w", err))
			// Phase 1 held the slot for the whole read; it dies here.
			r.pl.Release()
			return
		}
		r.writeBackPhase(f, rc, acks)
	})
	err := protoutil.Broadcast(r.node, r.servers, query, r.cfg.Trace)
	r.mu.Unlock()
	if err != nil {
		op.Abort(err)
		return nil, fmt.Errorf("abd: read phase 1: %w", err)
	}
	f.Bind(ctx, op)
	return f, nil
}

// writeBackPhase is phase 2 of one read, run from phase 1's completion:
// write the selected value back to a majority before resolving, so that no
// later read can return an older value.
func (r *Reader) writeBackPhase(f *protoutil.Future[ReadResult], rc int64, acks []protoutil.Ack) {
	maxTS, best, _ := protoutil.MaxTimestamp(acks)
	// The result value must survive past this operation: clone it now, while
	// the phase-1 payloads are certainly alive.
	value := best.Msg.Cur.Clone()

	r.mu.Lock()
	r.rounds.Add(1)
	r.rCounter++
	wbRC := r.rCounter
	// Transient write-back request: its fields alias the phase-1 ack (which
	// aliases the delivered payload) and are copied by the encoder.
	writeBack := &wire.Message{
		Op:       wire.OpWriteBack,
		Key:      r.cfg.Key,
		TS:       maxTS,
		Cur:      best.Msg.Cur,
		Prev:     best.Msg.Prev,
		RCounter: wbRC,
	}
	wbFilter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteBackAck && m.Key == r.cfg.Key && m.RCounter == wbRC
	}
	op := r.pl.Register(r.cfg.Quorum.Majority(), wbFilter, func(_ []protoutil.Ack, err error) {
		if err != nil {
			f.Resolve(ReadResult{}, fmt.Errorf("abd: read phase 2 (write-back): %w", err))
			return
		}
		r.mu.Lock()
		r.rounds.Add(1)
		r.reads++
		r.mu.Unlock()
		r.cfg.Trace.Record(trace.KindReturn, r.id, types.ProcessID{}, "abd read rc=%d -> ts=%d", rc, maxTS)
		f.Resolve(ReadResult{Value: value, Timestamp: maxTS, RoundTrips: 2}, nil)
	})
	err := protoutil.Broadcast(r.node, r.servers, writeBack, r.cfg.Trace)
	r.mu.Unlock()
	if err != nil {
		op.Abort(err)
		return
	}
	f.Rebind(op)
}

// Stats reports completed reads and total round-trips (2 per read).
func (r *Reader) Stats() (reads, roundTrips int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reads, r.rounds.Total()
}

// Close detaches the reader from the network.
func (r *Reader) Close() error { return r.node.Close() }
