package abd

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by the ABD clients.
var (
	// ErrBottomWrite indicates an attempt to write the reserved value ⊥.
	ErrBottomWrite = errors.New("abd: cannot write the initial value ⊥")
	// ErrNotWriter indicates a writer constructed on a non-writer node.
	ErrNotWriter = errors.New("abd: writer must use the writer identity")
	// ErrNotReader indicates a reader constructed on a non-reader node.
	ErrNotReader = errors.New("abd: reader must use a reader identity")
)

// ClientConfig configures an ABD client (writer or reader).
type ClientConfig struct {
	// Quorum describes the deployment. ABD uses majority quorums, so it
	// requires t < S/2 but places no bound on the number of readers.
	Quorum quorum.Config
	// Key names the register this client operates on; the empty key is the
	// deployment's default register. Requests are stamped with the key and
	// only acknowledgements carrying it are accepted.
	Key string
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
}

// Writer is the single-writer ABD writer: one round-trip per write, exactly
// as in the paper's description of [Attiya et al. 1995].
type Writer struct {
	cfg     ClientConfig
	node    transport.Node
	servers []types.ProcessID

	mu     sync.Mutex
	ts     types.Timestamp
	prev   types.Value
	rounds stats.Counter
	writes int64
}

// NewWriter creates the SWMR ABD writer.
func NewWriter(cfg ClientConfig, node transport.Node) (*Writer, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("abd: writer requires a transport node")
	}
	if node.ID() != types.Writer() {
		return nil, fmt.Errorf("%w: got %v", ErrNotWriter, node.ID())
	}
	return &Writer{
		cfg:     cfg,
		node:    node,
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
		ts:      1,
		prev:    types.Bottom(),
	}, nil
}

// Write stores v in the register using a single round-trip to a majority of
// servers.
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	if v.IsBottom() {
		return ErrBottomWrite
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	ts := w.ts
	// One owned copy: the request is transient (encoded during the
	// broadcast), and the same copy becomes the remembered prev afterwards.
	cur := v.Clone()
	req := &wire.Message{Op: wire.OpWrite, Key: w.cfg.Key, TS: ts, Cur: cur, Prev: w.prev}
	w.cfg.Trace.Record(trace.KindInvoke, types.Writer(), types.ProcessID{}, "abd write(key=%q ts=%d)", w.cfg.Key, ts)
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteAck && m.Key == w.cfg.Key && m.TS >= ts
	}
	if _, err := protoutil.RoundTrip(ctx, w.node, w.servers, req, w.cfg.Quorum.Majority(), filter, w.cfg.Trace); err != nil {
		return fmt.Errorf("abd: write ts=%d: %w", ts, err)
	}
	w.rounds.Add(1)
	w.writes++
	w.ts = ts.Next()
	w.prev = cur
	w.cfg.Trace.Record(trace.KindReturn, types.Writer(), types.ProcessID{}, "abd write(ts=%d) -> ok", ts)
	return nil
}

// Stats reports completed writes and total round-trips (equal: SWMR ABD
// writes are fast).
func (w *Writer) Stats() (writes, roundTrips int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, w.rounds.Total()
}

// Close detaches the writer from the network.
func (w *Writer) Close() error { return w.node.Close() }

// ReadResult is what an ABD read returns, including the number of
// round-trips it used (always 2: query + write-back).
type ReadResult struct {
	Value      types.Value
	Timestamp  types.Timestamp
	RoundTrips int
}

// Reader is the SWMR ABD reader: query a majority, select the highest
// timestamp, write it back to a majority, then return.
type Reader struct {
	cfg     ClientConfig
	node    transport.Node
	id      types.ProcessID
	servers []types.ProcessID

	mu       sync.Mutex
	rCounter int64
	rounds   stats.Counter
	reads    int64
}

// NewReader creates an SWMR ABD reader. Unlike the fast register, any number
// of readers is supported, so the reader index only needs to be ≥ 1.
func NewReader(cfg ClientConfig, node transport.Node) (*Reader, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("abd: reader requires a transport node")
	}
	id := node.ID()
	if id.Role != types.RoleReader || id.Index < 1 {
		return nil, fmt.Errorf("%w: got %v", ErrNotReader, id)
	}
	return &Reader{
		cfg:     cfg,
		node:    node,
		id:      id,
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
	}, nil
}

// ID returns the reader's process identity.
func (r *Reader) ID() types.ProcessID { return r.id }

// Read returns the current register value using two round-trips.
func (r *Reader) Read(ctx context.Context) (ReadResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	majority := r.cfg.Quorum.Majority()

	// Phase 1: query a majority for their current (ts, value).
	r.rCounter++
	rc := r.rCounter
	r.cfg.Trace.Record(trace.KindInvoke, r.id, types.ProcessID{}, "abd read(key=%q) rc=%d", r.cfg.Key, rc)
	query := &wire.Message{Op: wire.OpRead, Key: r.cfg.Key, RCounter: rc}
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpReadAck && m.Key == r.cfg.Key && m.RCounter == rc
	}
	acks, err := protoutil.RoundTrip(ctx, r.node, r.servers, query, majority, filter, r.cfg.Trace)
	if err != nil {
		return ReadResult{}, fmt.Errorf("abd: read phase 1: %w", err)
	}
	r.rounds.Add(1)
	maxTS, best, _ := protoutil.MaxTimestamp(acks)

	// Phase 2: write the selected value back to a majority before returning,
	// so that no later read can return an older value.
	r.rCounter++
	wbRC := r.rCounter
	// Transient write-back request: its fields alias the phase-1 ack (which
	// aliases the delivered payload) and are copied by the encoder.
	writeBack := &wire.Message{
		Op:       wire.OpWriteBack,
		Key:      r.cfg.Key,
		TS:       maxTS,
		Cur:      best.Msg.Cur,
		Prev:     best.Msg.Prev,
		RCounter: wbRC,
	}
	wbFilter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteBackAck && m.Key == r.cfg.Key && m.RCounter == wbRC
	}
	if _, err := protoutil.RoundTrip(ctx, r.node, r.servers, writeBack, majority, wbFilter, r.cfg.Trace); err != nil {
		return ReadResult{}, fmt.Errorf("abd: read phase 2 (write-back): %w", err)
	}
	r.rounds.Add(1)
	r.reads++

	r.cfg.Trace.Record(trace.KindReturn, r.id, types.ProcessID{}, "abd read rc=%d -> ts=%d", rc, maxTS)
	return ReadResult{
		Value:      best.Msg.Cur.Clone(),
		Timestamp:  maxTS,
		RoundTrips: 2,
	}, nil
}

// Stats reports completed reads and total round-trips (2 per read).
func (r *Reader) Stats() (reads, roundTrips int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reads, r.rounds.Total()
}

// Close detaches the reader from the network.
func (r *Reader) Close() error { return r.node.Close() }
