package abd

import (
	"context"

	"fastread/internal/driver"
	"fastread/internal/transport"
)

// init registers the classic two-round-read ABD register with the driver
// registry.
func init() {
	driver.Register(driver.Driver{
		Name:     "abd",
		Validate: driver.MajorityValidate("abd"),
		NewServer: func(cfg driver.ServerConfig, node transport.Node) (driver.Server, error) {
			s, err := NewServer(ServerConfig{ID: cfg.ID, Workers: cfg.Workers, QueueBound: cfg.QueueBound, Durable: cfg.Durable}, node)
			if err != nil {
				return nil, err
			}
			return s, nil
		},
		NewWriter: func(cfg driver.ClientConfig, node transport.Node) (driver.Writer, error) {
			w, err := NewWriter(ClientConfig{Quorum: cfg.Quorum, Key: cfg.Key, Depth: cfg.Depth}, node)
			if err != nil {
				return nil, err
			}
			return driver.AdaptWriter(w), nil
		},
		NewReader: func(cfg driver.ClientConfig, node transport.Node) (driver.Reader, error) {
			r, err := NewReader(ClientConfig{Quorum: cfg.Quorum, Key: cfg.Key, Depth: cfg.Depth, Nonce: cfg.Nonce}, node)
			if err != nil {
				return nil, err
			}
			return abdReaderHandle{r}, nil
		},
	})
}

// abdReaderHandle adapts the ABD reader to the uniform driver result.
type abdReaderHandle struct{ r *Reader }

func (h abdReaderHandle) Read(ctx context.Context) (driver.ReadResult, error) {
	res, err := h.r.Read(ctx)
	if err != nil {
		return driver.ReadResult{}, err
	}
	return abdResult(res), nil
}

func (h abdReaderHandle) ReadAsync(ctx context.Context) (driver.ReadFuture, error) {
	f, err := h.r.ReadAsync(ctx)
	if err != nil {
		return nil, err
	}
	return driver.ReadFutureOf(f, abdResult), nil
}

// abdResult adapts the ABD reader's result to the uniform driver result.
func abdResult(res ReadResult) driver.ReadResult {
	return driver.ReadResult{Value: res.Value, Timestamp: res.Timestamp, RoundTrips: res.RoundTrips}
}

func (h abdReaderHandle) Stats() (reads, roundTrips, fallbacks int64) {
	r, t := h.r.Stats()
	return r, t, 0
}
