package abd

import (
	"fmt"
	"sync"

	"fastread/internal/durable"
	"fastread/internal/protoutil"
	"fastread/internal/shard"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// VersionedValue is the timestamped value stored by an ABD server. For the
// single-writer register Rank is always 0; for the multi-writer register
// timestamps are ordered lexicographically by (TS, Rank).
type VersionedValue struct {
	TS   types.Timestamp
	Rank int32
	Cur  types.Value
	Prev types.Value
}

// Less reports whether v is strictly older than other in (TS, Rank) order.
func (v VersionedValue) Less(other VersionedValue) bool {
	if v.TS != other.TS {
		return v.TS < other.TS
	}
	return v.Rank < other.Rank
}

// ServerConfig configures an ABD server.
type ServerConfig struct {
	// ID is the server's process identity.
	ID types.ProcessID
	// Workers is the number of key-shard workers executing this server's
	// messages in parallel (a register key is always handled by the same
	// worker). Zero or negative means GOMAXPROCS.
	Workers int
	// QueueBound, when positive, caps each worker's overflow queue:
	// requests beyond it are shed and counted (QueueSheds) instead of
	// queued without bound. Zero keeps the default never-drop queues.
	QueueBound int
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
	// Durable, if non-nil, gives the server a write-ahead log: every adoption
	// is appended before the ack is sent, and NewServer recovers whatever a
	// previous incarnation persisted in the directory.
	Durable *durable.Options
}

// registerState is the per-register ABD server state: the highest versioned
// value adopted so far and a mutation counter.
type registerState struct {
	value     VersionedValue
	mutations int64
	// lsn is the log sequence number of the last durable record applied to
	// this register; deltas at or below it are already reflected and must not
	// replay. Zero when not durable.
	lsn int64
	// arena, when non-nil, is the frame buffer value currently aliases:
	// adoption from an arena-backed frame retains by reference (one Arena.Ref)
	// instead of cloning, released when the next value displaces it. At most
	// one arena is pinned per register.
	arena *wire.Arena
}

// Server is the quorum server used by both the SWMR and MWMR ABD registers.
// It answers queries and reads with its current versioned value and adopts
// any strictly newer value carried by write or write-back messages. One
// server multiplexes every register of the deployment: state is kept per
// register key in a striped shard map, lazily instantiated on the first
// message that names the key.
type Server struct {
	cfg    ServerConfig
	node   transport.Node
	exec   *transport.Executor
	states *shard.Map[*registerState]
	// dlog is the server's durable log; nil when persistence is off.
	dlog *durable.Log

	stopOnce sync.Once
	done     chan struct{}
}

// NewServer creates an ABD server bound to the given node. Call Start to
// begin processing messages.
func NewServer(cfg ServerConfig, node transport.Node) (*Server, error) {
	if cfg.ID.Role != types.RoleServer || !cfg.ID.Valid() {
		return nil, fmt.Errorf("abd: server id %v is not a valid server identity", cfg.ID)
	}
	if node == nil {
		return nil, fmt.Errorf("abd: server %v requires a transport node", cfg.ID)
	}
	s := &Server{
		cfg:    cfg,
		node:   node,
		states: shard.NewMap(0, func(string) *registerState { return &registerState{} }),
		done:   make(chan struct{}),
	}
	if cfg.Durable != nil {
		dl, err := durable.Open(*cfg.Durable, durable.Hooks{Apply: s.applyRecord, Dump: s.dumpRecords})
		if err != nil {
			return nil, fmt.Errorf("abd: server %v durable log: %w", cfg.ID, err)
		}
		s.dlog = dl
	}
	s.exec = transport.NewExecutor(node, protoutil.WireKeyFunc, cfg.Workers)
	s.exec.SetQueueBound(cfg.QueueBound)
	return s, nil
}

// applyRecord replays one recovered log record. Deltas re-run the adoption
// comparison the live path used ((TS, Rank) order), guarded by the per-key
// LSN so records a restored snapshot already covers are skipped. Record bytes
// alias the replay buffer and are cloned at the retention point.
func (s *Server) applyRecord(r *durable.Record) error {
	s.states.Do(r.Key, func(st *registerState) {
		switch r.Kind {
		case durable.KindState:
			st.value = VersionedValue{
				TS:   types.Timestamp(r.TS),
				Rank: r.Rank,
				Cur:  types.Value(r.Cur).Clone(),
				Prev: types.Value(r.Prev).Clone(),
			}
			st.lsn = r.LSN
		case durable.KindDelta:
			if r.LSN <= st.lsn {
				return
			}
			incoming := VersionedValue{TS: types.Timestamp(r.TS), Rank: r.Rank}
			if st.value.Less(incoming) {
				incoming.Cur = types.Value(r.Cur).Clone()
				incoming.Prev = types.Value(r.Prev).Clone()
				st.value = incoming
			}
			st.lsn = r.LSN
		}
	})
	return nil
}

// dumpRecords emits one KindState record per instantiated register for a
// snapshot, aliasing live state under the register's stripe lock (the
// durable layer encodes before emit returns).
func (s *Server) dumpRecords(emit func(*durable.Record) error) error {
	var err error
	s.states.Range(func(key string, st *registerState) {
		if err != nil {
			return
		}
		err = emit(&durable.Record{
			Kind: durable.KindState,
			LSN:  st.lsn,
			Key:  key,
			TS:   int64(st.value.TS),
			Rank: st.value.Rank,
			Cur:  st.value.Cur,
			Prev: st.value.Prev,
		})
	})
	return err
}

// Start launches the server's key-sharded executor: messages are dispatched
// by register key across the configured workers, so distinct registers are
// served in parallel while each register keeps FIFO, single-goroutine
// handling (see transport.Executor).
func (s *Server) Start() {
	go func() {
		defer close(s.done)
		s.exec.RunCoalescing(s.handle)
	}()
}

// Stop detaches the server from the network, waits for the executor to drain
// every worker, then closes the durable log. Stop is idempotent.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { _ = s.node.Close() })
	<-s.done
	if s.dlog != nil {
		_ = s.dlog.Close()
	}
}

// ID returns the server's process identity.
func (s *Server) ID() types.ProcessID { return s.cfg.ID }

// Workers reports the executor's key-shard worker count.
func (s *Server) Workers() int { return s.exec.Workers() }

// QueueSheds returns the number of requests shed by bounded worker queues
// (always 0 unless ServerConfig.QueueBound was set).
func (s *Server) QueueSheds() int64 { return s.exec.Sheds() }

// State returns a copy of the default register's current value and the
// number of state mutations performed on it; use StateOf for a named
// register.
func (s *Server) State() (VersionedValue, int64) { return s.StateOf("") }

// StateOf returns a copy of the named register's current value and its
// mutation count. An untouched register reports its initial state without
// being instantiated.
func (s *Server) StateOf(key string) (VersionedValue, int64) {
	var out VersionedValue
	var mutations int64
	s.states.Peek(key, func(st *registerState) {
		out = st.value
		out.Cur = st.value.Cur.Clone()
		out.Prev = st.value.Prev.Clone()
		mutations = st.mutations
	})
	return out, mutations
}

// Keys returns the keys of every register this server has instantiated.
func (s *Server) Keys() []string { return s.states.Keys() }

// TotalMutations sums the mutation counters across every register the server
// hosts.
func (s *Server) TotalMutations() int64 {
	var total int64
	s.states.Range(func(_ string, st *registerState) { total += st.mutations })
	return total
}

// handle processes one message on the per-message hot path: pooled zero-copy
// decode, one clone at the adoption retention point, ack fields aliasing the
// stored state (the key-shard worker handling this message is this key's
// sole mutator, and the ack is encoded before the worker handles its next
// message). Acknowledgements go through the executor's run-scoped coalescer,
// so a run of pipelined requests from one client is answered with ONE
// batched send.
func (s *Server) handle(m transport.Message, out transport.Sender) {
	tr := s.cfg.Trace
	req := wire.GetMessage()
	defer wire.PutMessage(req)
	if err := wire.DecodeInto(req, m.Payload); err != nil {
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "malformed: %v", err)
		}
		return
	}
	if m.From.Role == types.RoleServer {
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "server-to-server message in ABD")
		}
		return
	}
	if tr.Enabled() {
		tr.Record(trace.KindReceive, s.cfg.ID, m.From, "%s ts=%d.%d", req.Op, req.TS, req.WriterRank)
	}

	var ackOp wire.Op
	switch req.Op {
	case wire.OpQuery:
		ackOp = wire.OpQueryAck
	case wire.OpRead:
		ackOp = wire.OpReadAck
	case wire.OpWrite:
		ackOp = wire.OpWriteAck
	case wire.OpWriteBack:
		ackOp = wire.OpWriteBackAck
	default:
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "unexpected op %s", req.Op)
		}
		return
	}

	incoming := VersionedValue{TS: req.TS, Rank: req.WriterRank, Cur: req.Cur, Prev: req.Prev}

	ack := wire.GetMessage()
	defer wire.PutMessage(ack)
	s.states.Do(req.Key, func(st *registerState) {
		if (req.Op == wire.OpWrite || req.Op == wire.OpWriteBack) && st.value.Less(incoming) {
			// Retention point: the request aliases the payload. An arena-backed
			// frame is retained by reference (wire's rule 4); otherwise the
			// stored value must own its bytes.
			if m.Arena != nil {
				m.Arena.Ref()
				if st.arena != nil {
					st.arena.Release()
				}
				st.arena = m.Arena
				st.value = incoming
			} else {
				if st.arena != nil {
					st.arena.Release()
					st.arena = nil
				}
				st.value = VersionedValue{
					TS:   incoming.TS,
					Rank: incoming.Rank,
					Cur:  incoming.Cur.Clone(),
					Prev: incoming.Prev.Clone(),
				}
			}
			st.mutations++
			if s.dlog != nil {
				// Only adoptions change durable state; queries and reads are
				// not logged. Under fsync "always" the append blocks on
				// stable storage before the ack below is built.
				lsn, _ := s.dlog.Append(&durable.Record{
					Kind: durable.KindDelta,
					Key:  req.Key,
					TS:   int64(incoming.TS),
					Rank: incoming.Rank,
					Cur:  incoming.Cur,
					Prev: incoming.Prev,
					From: m.From,
				})
				st.lsn = lsn
			}
			if tr.Enabled() {
				tr.Record(trace.KindStateChange, s.cfg.ID, m.From, "adopt key=%q ts=%d.%d", req.Key, incoming.TS, incoming.Rank)
			}
		}
		ack.Fill(wire.Message{
			Op:         ackOp,
			Key:        req.Key,
			TS:         st.value.TS,
			WriterRank: st.value.Rank,
			Cur:        st.value.Cur,
			Prev:       st.value.Prev,
			RCounter:   req.RCounter,
		})
	})

	if tr.Enabled() {
		tr.Record(trace.KindSend, s.cfg.ID, m.From, "%s ts=%d.%d", ack.Op, ack.TS, ack.WriterRank)
	}
	if err := transport.SendEncoded(out, m.From, ack); err != nil {
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "send ack: %v", err)
		}
	}
}
