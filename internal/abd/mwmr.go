package abd

import (
	"context"
	"fmt"
	"sync"

	"fastread/internal/protoutil"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// MWWriter is a multi-writer ABD writer in the style of Lynch–Shvartsman:
// every write first queries a majority for the highest (ts, rank) pair, then
// writes (ts+1, ownRank). Two round-trips per write — Proposition 11 of the
// paper shows this second round cannot be avoided by any fast MWMR
// implementation.
type MWWriter struct {
	cfg     ClientConfig
	node    transport.Node
	id      types.ProcessID
	rank    int32
	servers []types.ProcessID

	mu       sync.Mutex
	rCounter int64
	rounds   stats.Counter
	writes   int64
}

// NewMWWriter creates a multi-writer client. Writers are identified by their
// reader-style index (w1, w2, ... are modelled as reader identities with a
// writer rank) or by the canonical writer identity for rank 1; any client
// identity is accepted because the MWMR model has no distinguished writer.
func NewMWWriter(cfg ClientConfig, node transport.Node, rank int32) (*MWWriter, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("abd: mw writer requires a transport node")
	}
	if rank < 1 {
		return nil, fmt.Errorf("abd: writer rank must be ≥ 1, got %d", rank)
	}
	if node.ID().Role == types.RoleServer {
		return nil, fmt.Errorf("abd: servers cannot act as writers")
	}
	return &MWWriter{
		cfg:     cfg,
		node:    node,
		id:      node.ID(),
		rank:    rank,
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
	}, nil
}

// Write stores v in the multi-writer register using two round-trips.
func (w *MWWriter) Write(ctx context.Context, v types.Value) error {
	if v.IsBottom() {
		return ErrBottomWrite
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	majority := w.cfg.Quorum.Majority()

	// Phase 1: discover the highest (ts, rank) currently in the system.
	w.rCounter++
	qrc := w.rCounter
	w.cfg.Trace.Record(trace.KindInvoke, w.id, types.ProcessID{}, "mwmr write query rc=%d", qrc)
	query := &wire.Message{Op: wire.OpQuery, Key: w.cfg.Key, RCounter: qrc}
	qFilter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpQueryAck && m.Key == w.cfg.Key && m.RCounter == qrc
	}
	acks, err := protoutil.RoundTrip(ctx, w.node, w.servers, query, majority, qFilter, w.cfg.Trace)
	if err != nil {
		return fmt.Errorf("abd: mwmr write query: %w", err)
	}
	w.rounds.Add(1)

	highest := VersionedValue{}
	for _, a := range acks {
		candidate := VersionedValue{TS: a.Msg.TS, Rank: a.Msg.WriterRank}
		if highest.Less(candidate) {
			highest = candidate
		}
	}

	// Phase 2: write (maxTS+1, ownRank).
	w.rCounter++
	wrc := w.rCounter
	// Transient request: encoded during the broadcast, never retained, so it
	// aliases the caller's value without cloning.
	req := &wire.Message{
		Op:         wire.OpWrite,
		Key:        w.cfg.Key,
		TS:         highest.TS.Next(),
		WriterRank: w.rank,
		Cur:        v,
		RCounter:   wrc,
	}
	wFilter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteAck && m.Key == w.cfg.Key && m.RCounter == wrc
	}
	if _, err := protoutil.RoundTrip(ctx, w.node, w.servers, req, majority, wFilter, w.cfg.Trace); err != nil {
		return fmt.Errorf("abd: mwmr write ts=%d.%d: %w", req.TS, w.rank, err)
	}
	w.rounds.Add(1)
	w.writes++
	w.cfg.Trace.Record(trace.KindReturn, w.id, types.ProcessID{}, "mwmr write -> ts=%d.%d", req.TS, w.rank)
	return nil
}

// Stats reports completed writes and total round-trips (2 per write).
func (w *MWWriter) Stats() (writes, roundTrips int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, w.rounds.Total()
}

// Close detaches the writer from the network.
func (w *MWWriter) Close() error { return w.node.Close() }

// MWReadResult is the result of a multi-writer read.
type MWReadResult struct {
	Value      types.Value
	Timestamp  types.Timestamp
	WriterRank int32
	RoundTrips int
}

// MWReader is the multi-writer ABD reader: query a majority, select the
// highest (ts, rank), write it back, return. Two round-trips.
type MWReader struct {
	cfg     ClientConfig
	node    transport.Node
	id      types.ProcessID
	servers []types.ProcessID

	mu       sync.Mutex
	rCounter int64
	rounds   stats.Counter
	reads    int64
}

// NewMWReader creates a multi-writer reader.
func NewMWReader(cfg ClientConfig, node transport.Node) (*MWReader, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("abd: mw reader requires a transport node")
	}
	if node.ID().Role == types.RoleServer {
		return nil, fmt.Errorf("abd: servers cannot act as readers")
	}
	return &MWReader{
		cfg:     cfg,
		node:    node,
		id:      node.ID(),
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
	}, nil
}

// Read returns the current value of the multi-writer register.
func (r *MWReader) Read(ctx context.Context) (MWReadResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	majority := r.cfg.Quorum.Majority()

	r.rCounter++
	qrc := r.rCounter
	r.cfg.Trace.Record(trace.KindInvoke, r.id, types.ProcessID{}, "mwmr read query rc=%d", qrc)
	query := &wire.Message{Op: wire.OpQuery, Key: r.cfg.Key, RCounter: qrc}
	qFilter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpQueryAck && m.Key == r.cfg.Key && m.RCounter == qrc
	}
	acks, err := protoutil.RoundTrip(ctx, r.node, r.servers, query, majority, qFilter, r.cfg.Trace)
	if err != nil {
		return MWReadResult{}, fmt.Errorf("abd: mwmr read query: %w", err)
	}
	r.rounds.Add(1)

	best := acks[0]
	bestVV := VersionedValue{TS: best.Msg.TS, Rank: best.Msg.WriterRank}
	for _, a := range acks[1:] {
		candidate := VersionedValue{TS: a.Msg.TS, Rank: a.Msg.WriterRank}
		if bestVV.Less(candidate) {
			best, bestVV = a, candidate
		}
	}

	// Write-back phase.
	r.rCounter++
	wrc := r.rCounter
	writeBack := &wire.Message{
		Op:         wire.OpWriteBack,
		Key:        r.cfg.Key,
		TS:         bestVV.TS,
		WriterRank: bestVV.Rank,
		Cur:        best.Msg.Cur,
		RCounter:   wrc,
	}
	wbFilter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteBackAck && m.Key == r.cfg.Key && m.RCounter == wrc
	}
	if _, err := protoutil.RoundTrip(ctx, r.node, r.servers, writeBack, majority, wbFilter, r.cfg.Trace); err != nil {
		return MWReadResult{}, fmt.Errorf("abd: mwmr read write-back: %w", err)
	}
	r.rounds.Add(1)
	r.reads++

	r.cfg.Trace.Record(trace.KindReturn, r.id, types.ProcessID{}, "mwmr read -> ts=%d.%d", bestVV.TS, bestVV.Rank)
	return MWReadResult{
		Value:      best.Msg.Cur.Clone(),
		Timestamp:  bestVV.TS,
		WriterRank: bestVV.Rank,
		RoundTrips: 2,
	}, nil
}

// Stats reports completed reads and total round-trips (2 per read).
func (r *MWReader) Stats() (reads, roundTrips int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reads, r.rounds.Total()
}

// Close detaches the reader from the network.
func (r *MWReader) Close() error { return r.node.Close() }
