package abd

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastread/internal/quorum"
	"fastread/internal/transport"
	"fastread/internal/types"
)

// testDeployment wires an ABD cluster: S servers plus whatever clients the
// test asks for.
type testDeployment struct {
	t   *testing.T
	cfg quorum.Config
	net *transport.InMemNetwork
}

func newDeployment(t *testing.T, cfg quorum.Config) *testDeployment {
	t.Helper()
	d := &testDeployment{t: t, cfg: cfg, net: transport.NewInMemNetwork()}
	t.Cleanup(func() { _ = d.net.Close() })
	for i := 1; i <= cfg.Servers; i++ {
		node, err := d.net.Join(types.Server(i))
		if err != nil {
			t.Fatalf("join server %d: %v", i, err)
		}
		srv, err := NewServer(ServerConfig{ID: types.Server(i)}, node)
		if err != nil {
			t.Fatalf("new server %d: %v", i, err)
		}
		srv.Start()
		t.Cleanup(srv.Stop)
	}
	return d
}

func (d *testDeployment) ctx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	d.t.Cleanup(cancel)
	return ctx
}

func (d *testDeployment) swmrWriter() *Writer {
	d.t.Helper()
	node, err := d.net.Join(types.Writer())
	if err != nil {
		d.t.Fatal(err)
	}
	w, err := NewWriter(ClientConfig{Quorum: d.cfg}, node)
	if err != nil {
		d.t.Fatal(err)
	}
	return w
}

func (d *testDeployment) swmrReader(i int) *Reader {
	d.t.Helper()
	node, err := d.net.Join(types.Reader(i))
	if err != nil {
		d.t.Fatal(err)
	}
	r, err := NewReader(ClientConfig{Quorum: d.cfg}, node)
	if err != nil {
		d.t.Fatal(err)
	}
	return r
}

func (d *testDeployment) mwWriter(readerSlot int, rank int32) *MWWriter {
	d.t.Helper()
	node, err := d.net.Join(types.Reader(readerSlot))
	if err != nil {
		d.t.Fatal(err)
	}
	w, err := NewMWWriter(ClientConfig{Quorum: d.cfg}, node, rank)
	if err != nil {
		d.t.Fatal(err)
	}
	return w
}

func (d *testDeployment) mwReader(readerSlot int) *MWReader {
	d.t.Helper()
	node, err := d.net.Join(types.Reader(readerSlot))
	if err != nil {
		d.t.Fatal(err)
	}
	r, err := NewMWReader(ClientConfig{Quorum: d.cfg}, node)
	if err != nil {
		d.t.Fatal(err)
	}
	return r
}

func TestSWMRWriteThenRead(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 2}
	d := newDeployment(t, cfg)
	w := d.swmrWriter()
	r := d.swmrReader(1)

	res, err := r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.IsBottom() || res.Timestamp != 0 {
		t.Errorf("initial read = %s ts=%d", res.Value, res.Timestamp)
	}

	if err := w.Write(d.ctx(), types.Value("hello")); err != nil {
		t.Fatal(err)
	}
	res, err = r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(types.Value("hello")) || res.Timestamp != 1 {
		t.Errorf("read = %s ts=%d, want hello ts=1", res.Value, res.Timestamp)
	}
	if res.RoundTrips != 2 {
		t.Errorf("ABD read used %d round-trips, want 2", res.RoundTrips)
	}
}

func TestSWMRReadUsesTwoRoundTripsAndWriteOne(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 1}
	d := newDeployment(t, cfg)
	w := d.swmrWriter()
	r := d.swmrReader(1)
	for i := 0; i < 4; i++ {
		if err := w.Write(d.ctx(), types.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(d.ctx()); err != nil {
			t.Fatal(err)
		}
	}
	writes, wRounds := w.Stats()
	if writes != 4 || wRounds != 4 {
		t.Errorf("writer stats = %d/%d, want 4/4", writes, wRounds)
	}
	reads, rRounds := r.Stats()
	if reads != 4 || rRounds != 8 {
		t.Errorf("reader stats = %d/%d, want 4/8 (two rounds per read)", reads, rRounds)
	}
}

func TestSWMRToleratesMinorityCrash(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 1}
	d := newDeployment(t, cfg)
	w := d.swmrWriter()
	r := d.swmrReader(1)

	if err := w.Write(d.ctx(), types.Value("v1")); err != nil {
		t.Fatal(err)
	}
	d.net.Crash(types.Server(1))
	d.net.Crash(types.Server(2))

	if err := w.Write(d.ctx(), types.Value("v2")); err != nil {
		t.Fatalf("write after minority crash: %v", err)
	}
	res, err := r.Read(d.ctx())
	if err != nil {
		t.Fatalf("read after minority crash: %v", err)
	}
	if !res.Value.Equal(types.Value("v2")) {
		t.Errorf("read = %s, want v2", res.Value)
	}
}

func TestSWMRWriteBackPropagatesToSlowServers(t *testing.T) {
	// The written value initially reaches only a majority; after a read
	// (whose write-back phase contacts all servers), previously missed
	// servers that are reachable catch up.
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 1}
	d := newDeployment(t, cfg)
	w := d.swmrWriter()
	r := d.swmrReader(1)

	// Block the writer (only) from servers 4 and 5.
	d.net.Block(types.Writer(), types.Server(4))
	d.net.Block(types.Writer(), types.Server(5))
	if err := w.Write(d.ctx(), types.Value("v1")); err != nil {
		t.Fatal(err)
	}

	if _, err := r.Read(d.ctx()); err != nil {
		t.Fatal(err)
	}
	// Give the write-back to the remaining servers a moment to land.
	deadline := time.Now().Add(time.Second)
	for {
		caughtUp := true
		for i := 4; i <= 5; i++ {
			node := types.Server(i)
			_ = node
		}
		// Check server 4's state via a fresh read quorum: all servers must
		// now hold ts=1 eventually; we verify by reading repeatedly.
		res, err := r.Read(d.ctx())
		if err != nil {
			t.Fatal(err)
		}
		if res.Timestamp != 1 {
			caughtUp = false
		}
		if caughtUp || time.Now().After(deadline) {
			if !caughtUp {
				t.Error("servers never caught up to ts=1")
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSWMRBottomWriteRejected(t *testing.T) {
	cfg := quorum.Config{Servers: 3, Faulty: 1, Readers: 1}
	d := newDeployment(t, cfg)
	w := d.swmrWriter()
	if err := w.Write(d.ctx(), types.Bottom()); !errors.Is(err, ErrBottomWrite) {
		t.Errorf("err = %v, want ErrBottomWrite", err)
	}
}

func TestSWMRManyReadersNoBound(t *testing.T) {
	// Unlike the fast register, ABD supports arbitrarily many readers for a
	// fixed S and t.
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 8}
	d := newDeployment(t, cfg)
	w := d.swmrWriter()
	readers := make([]*Reader, 8)
	for i := range readers {
		readers[i] = d.swmrReader(i + 1)
	}
	if err := w.Write(d.ctx(), types.Value("shared")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, r := range readers {
		wg.Add(1)
		go func(rd *Reader) {
			defer wg.Done()
			res, err := rd.Read(d.ctx())
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if !res.Value.Equal(types.Value("shared")) {
				t.Errorf("read = %s", res.Value)
			}
		}(r)
	}
	wg.Wait()
}

func TestMWMRTwoWritersInterleave(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 4}
	d := newDeployment(t, cfg)
	w1 := d.mwWriter(1, 1)
	w2 := d.mwWriter(2, 2)
	r := d.mwReader(3)

	if err := w1.Write(d.ctx(), types.Value("from-w1")); err != nil {
		t.Fatal(err)
	}
	res, err := r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(types.Value("from-w1")) {
		t.Errorf("read = %s, want from-w1", res.Value)
	}

	if err := w2.Write(d.ctx(), types.Value("from-w2")); err != nil {
		t.Fatal(err)
	}
	res, err = r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(types.Value("from-w2")) {
		t.Errorf("read = %s, want from-w2 (later write must win)", res.Value)
	}
	if res.RoundTrips != 2 {
		t.Errorf("MWMR read used %d rounds, want 2", res.RoundTrips)
	}

	// Writer ranks break timestamp ties deterministically.
	writes, rounds := w1.Stats()
	if writes != 1 || rounds != 2 {
		t.Errorf("w1 stats = %d/%d, want 1 write / 2 rounds", writes, rounds)
	}
}

func TestMWMRConcurrentWritersConverge(t *testing.T) {
	cfg := quorum.Config{Servers: 7, Faulty: 3, Readers: 6}
	d := newDeployment(t, cfg)
	const writers = 4
	var wg sync.WaitGroup
	for i := 1; i <= writers; i++ {
		w := d.mwWriter(i, int32(i))
		wg.Add(1)
		go func(w *MWWriter, idx int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if err := w.Write(d.ctx(), types.Value(fmt.Sprintf("w%d-%d", idx, j))); err != nil {
					t.Errorf("writer %d: %v", idx, err)
					return
				}
			}
		}(w, i)
	}
	wg.Wait()

	// After all writes complete, two sequential reads must agree (no
	// new/old inversion once writes are quiescent).
	r1 := d.mwReader(5)
	r2 := d.mwReader(6)
	res1, err := r1.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r2.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Timestamp < res1.Timestamp {
		t.Errorf("second read ts=%d.%d older than first ts=%d.%d",
			res2.Timestamp, res2.WriterRank, res1.Timestamp, res1.WriterRank)
	}
}

func TestMWMRTimestampOrdering(t *testing.T) {
	a := VersionedValue{TS: 1, Rank: 2}
	b := VersionedValue{TS: 2, Rank: 1}
	if !a.Less(b) || b.Less(a) {
		t.Error("timestamp must dominate rank")
	}
	c := VersionedValue{TS: 2, Rank: 2}
	if !b.Less(c) || c.Less(b) {
		t.Error("rank must break ties")
	}
	if c.Less(c) {
		t.Error("a value must not be less than itself")
	}
}

func TestClientConstructorValidation(t *testing.T) {
	cfg := quorum.Config{Servers: 3, Faulty: 1, Readers: 1}
	d := newDeployment(t, cfg)

	readerNode, err := d.net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	writerNode, err := d.net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	serverNode, err := d.net.Join(types.Server(99))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := NewWriter(ClientConfig{Quorum: cfg}, readerNode); !errors.Is(err, ErrNotWriter) {
		t.Errorf("SWMR writer on reader node: %v", err)
	}
	if _, err := NewReader(ClientConfig{Quorum: cfg}, writerNode); !errors.Is(err, ErrNotReader) {
		t.Errorf("SWMR reader on writer node: %v", err)
	}
	if _, err := NewWriter(ClientConfig{Quorum: quorum.Config{}}, writerNode); err == nil {
		t.Error("invalid quorum accepted")
	}
	if _, err := NewMWWriter(ClientConfig{Quorum: cfg}, readerNode, 0); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := NewMWWriter(ClientConfig{Quorum: cfg}, serverNode, 1); err == nil {
		t.Error("server node accepted as MW writer")
	}
	if _, err := NewMWReader(ClientConfig{Quorum: cfg}, serverNode); err == nil {
		t.Error("server node accepted as MW reader")
	}
	if _, err := NewServer(ServerConfig{ID: types.Reader(1)}, readerNode); err == nil {
		t.Error("reader identity accepted as server")
	}
	if _, err := NewServer(ServerConfig{ID: types.Server(1)}, nil); err == nil {
		t.Error("nil node accepted for server")
	}
}

func TestServerIgnoresServerMessagesAndGarbage(t *testing.T) {
	cfg := quorum.Config{Servers: 3, Faulty: 1, Readers: 1}
	d := newDeployment(t, cfg)
	rogue, err := d.net.Join(types.Server(50))
	if err != nil {
		t.Fatal(err)
	}
	// Garbage payload and a server-originated message must both be ignored.
	_ = rogue.Send(types.Server(1), "junk", []byte{9, 9, 9})
	time.Sleep(30 * time.Millisecond)

	w := d.swmrWriter()
	r := d.swmrReader(1)
	if err := w.Write(d.ctx(), types.Value("ok")); err != nil {
		t.Fatal(err)
	}
	res, err := r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(types.Value("ok")) {
		t.Errorf("read = %s", res.Value)
	}
}
