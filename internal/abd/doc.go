// Package abd implements the classic quorum-based atomic register
// constructions the paper uses as its baseline and as the contrast for the
// "atomic reads must write" discussion:
//
//   - The single-writer multi-reader (SWMR) register of Attiya, Bar-Noy and
//     Dolev [1995], adapted — as in the paper's introduction — to the
//     client/server setting: writes take one round-trip, reads take two (a
//     query phase followed by a write-back phase that propagates the value
//     the read is about to return to a quorum of servers).
//   - The multi-writer multi-reader (MWMR) generalisation in the style of
//     Lynch and Shvartsman [1997]: timestamps become (sequence, writer-rank)
//     pairs, writes need a query phase to discover the current maximum
//     timestamp (two round-trips), and reads query then write back (two
//     round-trips).
//
// Both use majority quorums and therefore tolerate t < S/2 crash failures
// for any number of readers — slower than the paper's fast algorithm but
// with no bound on R. Section 7 of the paper proves the two-round read (or
// write) is unavoidable for MWMR registers; experiment E5 exercises exactly
// that contrast.
package abd
