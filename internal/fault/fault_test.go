package fault

import (
	"testing"
	"time"

	"fastread/internal/sig"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// probe sends a request to the byzantine server and returns its reply (nil
// on timeout).
func probe(t *testing.T, net *transport.InMemNetwork, client transport.Node, server types.ProcessID, req *wire.Message) *wire.Message {
	t.Helper()
	if err := client.Send(server, req.Kind(), wire.MustEncode(req)); err != nil {
		t.Fatal(err)
	}
	select {
	case m, ok := <-client.Inbox():
		if !ok {
			return nil
		}
		decoded, err := wire.Decode(m.Payload)
		if err != nil {
			t.Fatalf("malicious server sent undecodable reply: %v", err)
		}
		return decoded
	case <-time.After(300 * time.Millisecond):
		return nil
	}
}

func setup(t *testing.T, behavior Behavior, victim types.ProcessID) (*transport.InMemNetwork, transport.Node, *ByzantineServer) {
	t.Helper()
	net := transport.NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	srvNode, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	keys := sig.MustKeyPair()
	srv, err := NewByzantineServer(ByzantineConfig{
		ID:         types.Server(1),
		Behavior:   behavior,
		Readers:    2,
		Victim:     victim,
		ForgerKeys: &keys,
	}, srvNode)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	return net, client, srv
}

func TestForgeTimestampBehavior(t *testing.T) {
	net, client, _ := setup(t, BehaviorForgeTimestamp, types.ProcessID{})
	_ = net
	reply := probe(t, nil, client, types.Server(1), &wire.Message{Op: wire.OpRead, RCounter: 1})
	if reply == nil {
		t.Fatal("no reply")
	}
	if reply.TS < 1<<30 {
		t.Errorf("forged timestamp too small: %d", reply.TS)
	}
	if len(reply.WriterSig) == 0 {
		t.Error("forger should attach a (bogus) signature")
	}
	// The forgery must NOT verify under a genuine writer key.
	genuine := sig.MustKeyPair()
	if err := genuine.Verifier.VerifyMessage(reply); err == nil {
		t.Error("forged signature verified under the real writer key")
	}
}

func TestStaleReplayBehavior(t *testing.T) {
	_, client, _ := setup(t, BehaviorStaleReplay, types.ProcessID{})
	// Even after being told about ts=5, the server keeps claiming ts=0.
	reply := probe(t, nil, client, types.Server(1), &wire.Message{Op: wire.OpRead, TS: 5, RCounter: 1})
	if reply == nil {
		t.Fatal("no reply")
	}
	if reply.TS != 0 {
		t.Errorf("stale server replied ts=%d, want 0", reply.TS)
	}
}

func TestMemoryLossBehaviorTargetsOnlyVictim(t *testing.T) {
	net, victim, _ := setup(t, BehaviorMemoryLoss, types.Reader(1))
	other, err := net.Join(types.Reader(2))
	if err != nil {
		t.Fatal(err)
	}

	// Teach the server ts=3 via the non-victim reader.
	reply := probe(t, nil, other, types.Server(1), &wire.Message{Op: wire.OpRead, TS: 3, Cur: types.Value("v3"), RCounter: 1})
	if reply == nil || reply.TS != 3 {
		t.Fatalf("honest-path reply = %+v, want ts=3", reply)
	}
	// The victim is told the server has seen nothing.
	reply = probe(t, nil, victim, types.Server(1), &wire.Message{Op: wire.OpRead, RCounter: 1})
	if reply == nil {
		t.Fatal("no reply to victim")
	}
	if reply.TS != 0 {
		t.Errorf("victim got ts=%d, want 0 (memory loss)", reply.TS)
	}
	// The non-victim still sees the true state.
	reply = probe(t, nil, other, types.Server(1), &wire.Message{Op: wire.OpRead, RCounter: 2})
	if reply == nil || reply.TS != 3 {
		t.Errorf("non-victim got %+v, want ts=3", reply)
	}
}

func TestInflateSeenBehavior(t *testing.T) {
	_, client, _ := setup(t, BehaviorInflateSeen, types.ProcessID{})
	reply := probe(t, nil, client, types.Server(1), &wire.Message{Op: wire.OpRead, RCounter: 1})
	if reply == nil {
		t.Fatal("no reply")
	}
	seen := types.NewProcessSet(reply.Seen...)
	if !seen.Has(types.Writer()) || !seen.Has(types.Reader(1)) || !seen.Has(types.Reader(2)) {
		t.Errorf("inflated seen set = %v, want all clients", seen)
	}
}

func TestMuteBehaviorNeverReplies(t *testing.T) {
	_, client, _ := setup(t, BehaviorMute, types.ProcessID{})
	if reply := probe(t, nil, client, types.Server(1), &wire.Message{Op: wire.OpRead, RCounter: 1}); reply != nil {
		t.Errorf("mute server replied: %+v", reply)
	}
}

func TestByzantineServerValidation(t *testing.T) {
	net := transport.NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	node, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewByzantineServer(ByzantineConfig{ID: types.Reader(1), Behavior: BehaviorMute}, node); err == nil {
		t.Error("reader identity accepted")
	}
	if _, err := NewByzantineServer(ByzantineConfig{ID: types.Server(1), Behavior: Behavior(99)}, node); err == nil {
		t.Error("unknown behaviour accepted")
	}
	if _, err := NewByzantineServer(ByzantineConfig{ID: types.Server(1), Behavior: BehaviorMute}, nil); err == nil {
		t.Error("nil node accepted")
	}
}

func TestBehaviorString(t *testing.T) {
	for b := BehaviorForgeTimestamp; b <= BehaviorMute; b++ {
		if b.String() == "unknown" {
			t.Errorf("behaviour %d has no name", b)
		}
	}
	if Behavior(0).String() != "unknown" {
		t.Error("invalid behaviour should be unknown")
	}
}

func TestCrashSchedule(t *testing.T) {
	cs := NewCrashSchedule(
		CrashEvent{Server: types.Server(1), AfterOps: 5},
		CrashEvent{Server: types.Server(2), AfterOps: 10},
	)
	if cs.Pending() != 2 {
		t.Errorf("Pending = %d", cs.Pending())
	}
	if due := cs.Fire(3); len(due) != 0 {
		t.Errorf("Fire(3) = %v", due)
	}
	if due := cs.Fire(5); len(due) != 1 || due[0] != types.Server(1) {
		t.Errorf("Fire(5) = %v", due)
	}
	if due := cs.Fire(50); len(due) != 1 || due[0] != types.Server(2) {
		t.Errorf("Fire(50) = %v", due)
	}
	if cs.Pending() != 0 {
		t.Errorf("Pending after all fired = %d", cs.Pending())
	}
	var nilSchedule *CrashSchedule
	if nilSchedule.Fire(1) != nil || nilSchedule.Pending() != 0 {
		t.Error("nil schedule should be inert")
	}
}
