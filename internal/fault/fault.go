// Package fault provides the failure machinery used by the experiments:
// crash schedules for the crash-stop model and a library of concrete
// Byzantine server behaviours for the arbitrary-failure model of Section 6.
//
// The paper quantifies over every possible malicious behaviour; an
// implementation can only exercise specific ones. The behaviours here cover
// the attack surface the algorithm's proof actually defends against:
// forging timestamps (defeated by signatures), replaying stale state
// (defeated by the ts' ≥ ts filter and the write-back), "losing memory"
// (the behaviour used in the Figure 6 lower-bound construction), lying about
// seen sets, and equivocating (answering different readers differently).
package fault

import (
	"fmt"
	"sync"

	"fastread/internal/protoutil"
	"fastread/internal/sig"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Behavior enumerates the malicious server behaviours available to the
// experiments.
type Behavior int

const (
	// BehaviorForgeTimestamp replies with an enormous timestamp and a value
	// the writer never wrote, signed with a key that is not the writer's.
	BehaviorForgeTimestamp Behavior = iota + 1
	// BehaviorStaleReplay always replies with the initial state (ts=0),
	// pretending no write ever happened.
	BehaviorStaleReplay
	// BehaviorMemoryLoss behaves honestly except towards one victim reader,
	// to which it replies as if it had never received any message — the
	// "loses its memory" behaviour of the Figure 6 construction.
	BehaviorMemoryLoss
	// BehaviorInflateSeen behaves honestly for timestamps but claims every
	// client is in its seen set, trying to trick the fast-read predicate
	// into holding.
	BehaviorInflateSeen
	// BehaviorMute receives messages but never replies (distinct from a
	// crash only in that the process is still "running").
	BehaviorMute
	// BehaviorFlood answers every request with a burst of fabricated stale
	// acknowledgements followed by one honest reply. The fabrications carry
	// the right rCounter, so they reach the client's ack filters (which
	// dedup per server — a safety test of the filters), and the burst
	// itself stresses the receive path: demux route backlogs, mailbox
	// growth, batch expansion under load.
	BehaviorFlood
)

// floodBurst is the number of fabricated acks BehaviorFlood sends per
// request, before the honest reply.
const floodBurst = 8

// String names the behaviour.
func (b Behavior) String() string {
	switch b {
	case BehaviorForgeTimestamp:
		return "forge-timestamp"
	case BehaviorStaleReplay:
		return "stale-replay"
	case BehaviorMemoryLoss:
		return "memory-loss"
	case BehaviorInflateSeen:
		return "inflate-seen"
	case BehaviorMute:
		return "mute"
	case BehaviorFlood:
		return "flood"
	default:
		return "unknown"
	}
}

// ByzantineConfig configures one malicious server.
type ByzantineConfig struct {
	// ID is the malicious server's identity.
	ID types.ProcessID
	// Workers is the number of key-shard workers executing the server's
	// messages (zero or negative means GOMAXPROCS). Malicious servers run on
	// the same executor as honest ones so experiments exercise the same
	// delivery machinery; the shared value/seen state is mutex-guarded, so
	// parallel workers stay race-free.
	Workers int
	// Behavior selects what the server does.
	Behavior Behavior
	// Readers is R (used to fabricate seen sets).
	Readers int
	// Victim is the reader targeted by BehaviorMemoryLoss.
	Victim types.ProcessID
	// ForgerKeys is the key pair malicious servers use to sign forgeries
	// (necessarily different from the writer's, by unforgeability). If nil,
	// forgeries carry no signature.
	ForgerKeys *sig.KeyPair
}

// ByzantineServer is a server-role process that deviates from the protocol
// according to its configured behaviour. It understands the message
// vocabulary of the fast register (internal/core) and replies accordingly.
type ByzantineServer struct {
	cfg  ByzantineConfig
	node transport.Node
	exec *transport.Executor

	mu    sync.Mutex
	value types.TaggedValue
	sig   []byte
	seen  types.ProcessSet

	stopOnce sync.Once
	done     chan struct{}
}

// NewByzantineServer creates a malicious server bound to the given node.
func NewByzantineServer(cfg ByzantineConfig, node transport.Node) (*ByzantineServer, error) {
	if cfg.ID.Role != types.RoleServer || !cfg.ID.Valid() {
		return nil, fmt.Errorf("fault: byzantine server id %v is not a server identity", cfg.ID)
	}
	if node == nil {
		return nil, fmt.Errorf("fault: byzantine server %v requires a transport node", cfg.ID)
	}
	if cfg.Behavior < BehaviorForgeTimestamp || cfg.Behavior > BehaviorFlood {
		return nil, fmt.Errorf("fault: unknown behaviour %d", cfg.Behavior)
	}
	return &ByzantineServer{
		cfg:   cfg,
		node:  node,
		exec:  transport.NewExecutor(node, protoutil.WireKeyFunc, cfg.Workers),
		value: types.InitialTaggedValue(),
		seen:  types.NewProcessSet(),
		done:  make(chan struct{}),
	}, nil
}

// Start launches the malicious server's key-sharded executor.
func (s *ByzantineServer) Start() {
	go func() {
		defer close(s.done)
		s.exec.Run(s.handle)
	}()
}

// Stop detaches the server from the network and waits for the handler to
// exit.
func (s *ByzantineServer) Stop() {
	s.stopOnce.Do(func() { _ = s.node.Close() })
	<-s.done
}

// ID returns the malicious server's identity.
func (s *ByzantineServer) ID() types.ProcessID { return s.cfg.ID }

// Workers reports the number of key-shard workers the server's executor
// runs. With Stop and TotalMutations it lets a ByzantineServer stand in for
// a protocol server behind the driver registry's Server interface, so a
// Store can swap a malicious implementation into a deployment.
func (s *ByzantineServer) Workers() int { return s.exec.Workers() }

// TotalMutations reports 0: the malicious server does not track mutations
// (its "state" is whatever its behaviour needs, not protocol state).
func (s *ByzantineServer) TotalMutations() int64 { return 0 }

func (s *ByzantineServer) handle(m transport.Message) {
	req, err := wire.Decode(m.Payload)
	if err != nil {
		return
	}
	if req.Op != wire.OpWrite && req.Op != wire.OpRead {
		return
	}
	ackOp := wire.OpWriteAck
	if req.Op == wire.OpRead {
		ackOp = wire.OpReadAck
	}

	switch s.cfg.Behavior {
	case BehaviorMute:
		return

	case BehaviorForgeTimestamp:
		forgedTS := types.Timestamp(1 << 40)
		cur := types.Value("forged-value")
		prev := types.Value("forged-prev")
		ack := &wire.Message{
			Op:       ackOp,
			Key:      req.Key,
			TS:       forgedTS,
			Cur:      cur,
			Prev:     prev,
			Seen:     allClients(s.cfg.Readers),
			RCounter: req.RCounter,
		}
		if s.cfg.ForgerKeys != nil {
			ack.WriterSig = s.cfg.ForgerKeys.Signer.MustSign(forgedTS, cur, prev)
		}
		s.reply(m.From, ack)

	case BehaviorStaleReplay:
		ack := &wire.Message{
			Op:       ackOp,
			Key:      req.Key,
			TS:       0,
			Seen:     []types.ProcessID{m.From},
			RCounter: req.RCounter,
		}
		s.reply(m.From, ack)

	case BehaviorMemoryLoss:
		if m.From == s.cfg.Victim {
			// Towards every other process the server behaves "as if it was
			// not faulty" (Figure 6), so it updates its state honestly even
			// on the victim's messages — but its reply to the victim claims
			// it has seen nothing.
			s.mu.Lock()
			s.adopt(req, m.From)
			s.mu.Unlock()
			ack := &wire.Message{
				Op:       ackOp,
				Key:      req.Key,
				TS:       0,
				Seen:     []types.ProcessID{m.From},
				RCounter: req.RCounter,
			}
			s.reply(m.From, ack)
			return
		}
		s.honestReply(m.From, req, ackOp)

	case BehaviorInflateSeen:
		s.mu.Lock()
		s.adopt(req, m.From)
		ack := &wire.Message{
			Op:        ackOp,
			Key:       req.Key,
			TS:        s.value.TS,
			Cur:       s.value.Cur.Clone(),
			Prev:      s.value.Prev.Clone(),
			Seen:      allClients(s.cfg.Readers),
			RCounter:  req.RCounter,
			WriterSig: append([]byte(nil), s.sig...),
		}
		s.mu.Unlock()
		s.reply(m.From, ack)

	case BehaviorFlood:
		for i := 0; i < floodBurst; i++ {
			ack := &wire.Message{
				Op:       ackOp,
				Key:      req.Key,
				TS:       0,
				Seen:     []types.ProcessID{m.From},
				RCounter: req.RCounter,
			}
			s.reply(m.From, ack)
		}
		s.honestReply(m.From, req, ackOp)
	}
}

// honestReply follows the honest fast-server protocol.
func (s *ByzantineServer) honestReply(from types.ProcessID, req *wire.Message, ackOp wire.Op) {
	s.mu.Lock()
	s.adopt(req, from)
	ack := &wire.Message{
		Op:        ackOp,
		Key:       req.Key,
		TS:        s.value.TS,
		Cur:       s.value.Cur.Clone(),
		Prev:      s.value.Prev.Clone(),
		Seen:      s.seen.Members(),
		RCounter:  req.RCounter,
		WriterSig: append([]byte(nil), s.sig...),
	}
	s.mu.Unlock()
	s.reply(from, ack)
}

// adopt updates the stored value exactly as an honest server would. Callers
// must hold s.mu.
func (s *ByzantineServer) adopt(req *wire.Message, from types.ProcessID) {
	if req.TS > s.value.TS {
		s.value = types.TaggedValue{TS: req.TS, Cur: req.Cur.Clone(), Prev: req.Prev.Clone()}
		s.sig = append([]byte(nil), req.WriterSig...)
		s.seen = types.NewProcessSet(from)
	} else {
		s.seen.Add(from)
	}
}

func (s *ByzantineServer) reply(to types.ProcessID, ack *wire.Message) {
	_ = s.node.Send(to, ack.Kind(), wire.MustEncode(ack))
}

// allClients fabricates a seen set containing the writer and every reader.
func allClients(readers int) []types.ProcessID {
	out := make([]types.ProcessID, 0, readers+1)
	out = append(out, types.Writer())
	for i := 1; i <= readers; i++ {
		out = append(out, types.Reader(i))
	}
	return out
}

// CrashEvent schedules the crash of one server after a given number of
// completed operations in a workload.
type CrashEvent struct {
	// Server is the process to crash.
	Server types.ProcessID
	// AfterOps is the number of completed operations (reads + writes across
	// all clients) after which the crash fires.
	AfterOps int
}

// CrashSchedule is an ordered list of crash events applied by the workload
// runner.
type CrashSchedule struct {
	mu     sync.Mutex
	events []CrashEvent
	next   int
}

// NewCrashSchedule builds a schedule from the given events (they are applied
// in the order given).
func NewCrashSchedule(events ...CrashEvent) *CrashSchedule {
	return &CrashSchedule{events: events}
}

// Pending returns the number of crash events that have not fired yet.
func (cs *CrashSchedule) Pending() int {
	if cs == nil {
		return 0
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.events) - cs.next
}

// Fire returns the servers whose crash events are due after completedOps
// operations, advancing the schedule.
func (cs *CrashSchedule) Fire(completedOps int) []types.ProcessID {
	if cs == nil {
		return nil
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	var due []types.ProcessID
	for cs.next < len(cs.events) && cs.events[cs.next].AfterOps <= completedOps {
		due = append(due, cs.events[cs.next].Server)
		cs.next++
	}
	return due
}
