package adversary

import (
	"context"
	"fmt"
	"sync"

	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// naiveReader is the strawman fast reader from the paper's introduction: it
// collects S−t acknowledgements and simply returns the value with the
// highest timestamp, with no seen-set predicate and no memory across reads.
// With a single reader this is correct; with two or more readers the
// lower-bound schedule makes it violate atomicity, which is exactly what
// experiment E2 demonstrates.
type naiveReader struct {
	cfg     quorum.Config
	node    transport.Node
	id      types.ProcessID
	servers []types.ProcessID

	mu       sync.Mutex
	rCounter int64
}

// newNaiveReader builds a naive fast reader on the given node.
func newNaiveReader(cfg quorum.Config, node transport.Node) (*naiveReader, error) {
	if node.ID().Role != types.RoleReader {
		return nil, fmt.Errorf("adversary: naive reader needs a reader identity, got %v", node.ID())
	}
	return &naiveReader{
		cfg:     cfg,
		node:    node,
		id:      node.ID(),
		servers: protoutil.ServerIDs(cfg.Servers),
	}, nil
}

// Read performs one naive fast read.
func (r *naiveReader) Read(ctx context.Context) (types.Value, types.Timestamp, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rCounter++
	rc := r.rCounter
	req := &wire.Message{Op: wire.OpRead, RCounter: rc}
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpReadAck && m.RCounter == rc
	}
	acks, err := protoutil.RoundTrip(ctx, r.node, r.servers, req, r.cfg.AckQuorum(), filter, nil)
	if err != nil {
		return nil, 0, err
	}
	_, best, _ := protoutil.MaxTimestamp(acks)
	return best.Msg.Cur.Clone(), best.Msg.TS, nil
}
