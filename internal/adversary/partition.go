package adversary

import (
	"fmt"

	"fastread/internal/quorum"
	"fastread/internal/types"
)

// Partition is the division of the servers into the blocks used by the
// lower-bound constructions: Primary[i] are the blocks B1..B_{R+2} (T1..T_{R+2}
// in the Byzantine construction), each of size at most t; Shadow[i] are the
// additional blocks B1..B_{R+1} of size at most b used only by the Byzantine
// construction (these are the servers the adversary corrupts); Extra holds
// any servers the adversary cannot fit into blocks — which happens exactly
// when the configuration satisfies the fast-read bound and is why the
// schedule then fails to produce a violation.
type Partition struct {
	Primary [][]types.ProcessID
	Shadow  [][]types.ProcessID
	Extra   []types.ProcessID
}

// BuildCrashPartition splits the S servers into R+2 primary blocks of size at
// most t (Section 5, footnote 5), with any servers that do not fit going to
// Extra. The critical block B_{R+1} — the only one that receives the write in
// the final partial run — is filled to capacity first, mirroring the proof's
// freedom to choose the partition.
func BuildCrashPartition(cfg quorum.Config) (Partition, error) {
	if err := cfg.Validate(); err != nil {
		return Partition{}, err
	}
	if cfg.Readers < 2 {
		return Partition{}, fmt.Errorf("adversary: the construction needs at least 2 readers, got %d", cfg.Readers)
	}
	if cfg.Faulty < 1 {
		return Partition{}, fmt.Errorf("adversary: the construction needs t ≥ 1")
	}
	numBlocks := cfg.Readers + 2
	if cfg.Servers < numBlocks {
		return Partition{}, fmt.Errorf("adversary: need at least R+2=%d servers, got %d", numBlocks, cfg.Servers)
	}

	pool := newServerPool(cfg.Servers)
	p := Partition{Primary: make([][]types.ProcessID, numBlocks)}

	// Every block gets one server so the construction is well formed.
	for i := 0; i < numBlocks; i++ {
		p.Primary[i] = append(p.Primary[i], pool.take())
	}
	// Fill the critical block B_{R+1} to capacity, then the others.
	critical := cfg.Readers // index of B_{R+1}
	for len(p.Primary[critical]) < cfg.Faulty && pool.remaining() > 0 {
		p.Primary[critical] = append(p.Primary[critical], pool.take())
	}
	for i := 0; i < numBlocks && pool.remaining() > 0; i++ {
		for len(p.Primary[i]) < cfg.Faulty && pool.remaining() > 0 {
			p.Primary[i] = append(p.Primary[i], pool.take())
		}
	}
	p.Extra = pool.rest()
	return p, nil
}

// BuildByzantinePartition splits the S servers into R+2 primary blocks
// T1..T_{R+2} of size at most t and R+1 shadow blocks B1..B_{R+1} of size at
// most b (Section 6.2), with the remainder in Extra. The shadow blocks are
// the servers the adversary makes malicious; the critical blocks T_{R+1} and
// B_{R+1} are filled to capacity first.
func BuildByzantinePartition(cfg quorum.Config) (Partition, error) {
	if err := cfg.Validate(); err != nil {
		return Partition{}, err
	}
	if cfg.Readers < 2 {
		return Partition{}, fmt.Errorf("adversary: the construction needs at least 2 readers, got %d", cfg.Readers)
	}
	if cfg.Faulty < 1 || cfg.Malicious < 1 {
		return Partition{}, fmt.Errorf("adversary: the Byzantine construction needs t ≥ 1 and b ≥ 1")
	}
	numPrimary := cfg.Readers + 2
	numShadow := cfg.Readers + 1
	if cfg.Servers < numPrimary+numShadow {
		return Partition{}, fmt.Errorf("adversary: need at least %d servers for the Byzantine construction, got %d",
			numPrimary+numShadow, cfg.Servers)
	}

	pool := newServerPool(cfg.Servers)
	p := Partition{
		Primary: make([][]types.ProcessID, numPrimary),
		Shadow:  make([][]types.ProcessID, numShadow),
	}
	for i := 0; i < numPrimary; i++ {
		p.Primary[i] = append(p.Primary[i], pool.take())
	}
	for i := 0; i < numShadow; i++ {
		p.Shadow[i] = append(p.Shadow[i], pool.take())
	}
	// Critical blocks first: T_{R+1} up to t, B_{R+1} up to b.
	criticalT := cfg.Readers
	criticalB := cfg.Readers
	for len(p.Primary[criticalT]) < cfg.Faulty && pool.remaining() > 0 {
		p.Primary[criticalT] = append(p.Primary[criticalT], pool.take())
	}
	for len(p.Shadow[criticalB]) < cfg.Malicious && pool.remaining() > 0 {
		p.Shadow[criticalB] = append(p.Shadow[criticalB], pool.take())
	}
	for i := 0; i < numPrimary && pool.remaining() > 0; i++ {
		for len(p.Primary[i]) < cfg.Faulty && pool.remaining() > 0 {
			p.Primary[i] = append(p.Primary[i], pool.take())
		}
	}
	for i := 0; i < numShadow && pool.remaining() > 0; i++ {
		for len(p.Shadow[i]) < cfg.Malicious && pool.remaining() > 0 {
			p.Shadow[i] = append(p.Shadow[i], pool.take())
		}
	}
	p.Extra = pool.rest()
	return p, nil
}

// MaliciousServers returns every server in a shadow block.
func (p Partition) MaliciousServers() []types.ProcessID {
	var out []types.ProcessID
	for _, block := range p.Shadow {
		out = append(out, block...)
	}
	return out
}

// primaryUnion returns the servers in the primary blocks with the given
// 1-based indices.
func (p Partition) primaryUnion(indices ...int) []types.ProcessID {
	var out []types.ProcessID
	for _, i := range indices {
		out = append(out, p.Primary[i-1]...)
	}
	return out
}

// shadowUnion returns the servers in the shadow blocks with the given
// 1-based indices.
func (p Partition) shadowUnion(indices ...int) []types.ProcessID {
	var out []types.ProcessID
	for _, i := range indices {
		out = append(out, p.Shadow[i-1]...)
	}
	return out
}

// serverPool hands out server identities s1..sS in order.
type serverPool struct {
	next int
	max  int
}

func newServerPool(servers int) *serverPool { return &serverPool{next: 1, max: servers} }

func (sp *serverPool) remaining() int { return sp.max - sp.next + 1 }

func (sp *serverPool) take() types.ProcessID {
	id := types.Server(sp.next)
	sp.next++
	return id
}

func (sp *serverPool) rest() []types.ProcessID {
	var out []types.ProcessID
	for sp.remaining() > 0 {
		out = append(out, sp.take())
	}
	return out
}
