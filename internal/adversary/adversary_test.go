package adversary

import (
	"testing"

	"fastread/internal/quorum"
	"fastread/internal/types"
)

func TestBuildCrashPartition(t *testing.T) {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 2}
	p, err := BuildCrashPartition(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Primary) != 4 {
		t.Fatalf("blocks = %d, want R+2 = 4", len(p.Primary))
	}
	total := len(p.Extra)
	seen := map[types.ProcessID]bool{}
	for i, block := range p.Primary {
		if len(block) == 0 {
			t.Errorf("block %d empty", i+1)
		}
		if len(block) > cfg.Faulty {
			t.Errorf("block %d has %d servers, more than t=%d", i+1, len(block), cfg.Faulty)
		}
		total += len(block)
		for _, s := range block {
			if seen[s] {
				t.Errorf("server %v in two blocks", s)
			}
			seen[s] = true
		}
	}
	if total != cfg.Servers {
		t.Errorf("partition covers %d servers, want %d", total, cfg.Servers)
	}
	if len(p.Extra) != 0 {
		t.Errorf("at the bound there must be no extra servers, got %v", p.Extra)
	}
}

func TestBuildCrashPartitionWithinBoundHasExtras(t *testing.T) {
	cfg := quorum.Config{Servers: 7, Faulty: 1, Readers: 2} // 7 > (2+2)*1, within bound
	p, err := BuildCrashPartition(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Extra) != 3 {
		t.Errorf("extra = %v, want 3 servers the adversary cannot block", p.Extra)
	}
	// The critical block B_{R+1} must be filled to capacity.
	if len(p.Primary[cfg.Readers]) != cfg.Faulty {
		t.Errorf("critical block size = %d, want t=%d", len(p.Primary[cfg.Readers]), cfg.Faulty)
	}
}

func TestBuildCrashPartitionErrors(t *testing.T) {
	if _, err := BuildCrashPartition(quorum.Config{Servers: 4, Faulty: 1, Readers: 1}); err == nil {
		t.Error("R=1 accepted")
	}
	if _, err := BuildCrashPartition(quorum.Config{Servers: 4, Faulty: 0, Readers: 2}); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := BuildCrashPartition(quorum.Config{Servers: 3, Faulty: 1, Readers: 2}); err == nil {
		t.Error("S < R+2 accepted")
	}
	if _, err := BuildCrashPartition(quorum.Config{Servers: 0}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestBuildByzantinePartition(t *testing.T) {
	cfg := quorum.Config{Servers: 7, Faulty: 1, Malicious: 1, Readers: 2}
	p, err := BuildByzantinePartition(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Primary) != 4 || len(p.Shadow) != 3 {
		t.Fatalf("primary/shadow = %d/%d, want 4/3", len(p.Primary), len(p.Shadow))
	}
	if len(p.MaliciousServers()) != 3 {
		t.Errorf("malicious = %v", p.MaliciousServers())
	}
	if len(p.Extra) != 0 {
		t.Errorf("extra = %v", p.Extra)
	}
	if _, err := BuildByzantinePartition(quorum.Config{Servers: 5, Faulty: 1, Malicious: 1, Readers: 2}); err == nil {
		t.Error("too few servers accepted")
	}
	if _, err := BuildByzantinePartition(quorum.Config{Servers: 9, Faulty: 1, Malicious: 0, Readers: 2}); err == nil {
		t.Error("b=0 accepted for the Byzantine construction")
	}
}

func TestCrashConstructionViolatesBeyondBound(t *testing.T) {
	// S=4, t=1, R=2: R ≥ S/t − 2, so the paper predicts a violation for ANY
	// fast implementation — including its own algorithm used out of range.
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 2}
	if cfg.FastReadPossible() {
		t.Fatal("test config must be at/beyond the bound")
	}
	for _, kind := range []ReaderKind{ReaderPaper, ReaderNaive} {
		res, err := RunCrashConstruction(cfg, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !res.Violation {
			t.Errorf("%v readers: expected an atomicity violation beyond the bound; narrative:\n%v", kind, res.Narrative)
		}
		if res.LastReaderTS != 1 {
			t.Errorf("%v readers: rR's read returned ts=%d, the construction forces 1", kind, res.LastReaderTS)
		}
		if res.FirstReaderTS != 0 {
			t.Errorf("%v readers: r1's final read returned ts=%d, the construction forces 0", kind, res.FirstReaderTS)
		}
	}
}

func TestCrashConstructionHarmlessWithinBound(t *testing.T) {
	// S=7, t=1, R=2: within the bound; the paper's algorithm must survive
	// the same adversarial schedule.
	cfg := quorum.Config{Servers: 7, Faulty: 1, Readers: 2}
	if !cfg.FastReadPossible() {
		t.Fatal("test config must satisfy the bound")
	}
	res, err := RunCrashConstruction(cfg, ReaderPaper)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("paper's algorithm violated atomicity within the bound:\n%s\nnarrative: %v",
			res.Report, res.Narrative)
	}
	if !res.BoundSatisfied {
		t.Error("BoundSatisfied should be true")
	}
}

func TestCrashConstructionThreeReaders(t *testing.T) {
	// A larger instance: S=5, t=1, R=3 (bound requires R < 3, so violated).
	cfg := quorum.Config{Servers: 5, Faulty: 1, Readers: 3}
	if cfg.FastReadPossible() {
		t.Fatal("config should be at/beyond the bound")
	}
	res, err := RunCrashConstruction(cfg, ReaderPaper)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Errorf("expected violation for R=3 beyond the bound; narrative:\n%v", res.Narrative)
	}
}

func TestByzantineConstructionViolatesBeyondBound(t *testing.T) {
	// S=7, t=1, b=1, R=2: (R+2)t + (R+1)b = 7 ≥ S, so no fast implementation
	// exists; the schedule must defeat the paper's Byzantine algorithm too.
	cfg := quorum.Config{Servers: 7, Faulty: 1, Malicious: 1, Readers: 2}
	if cfg.FastReadPossible() {
		t.Fatal("config should be at/beyond the Byzantine bound")
	}
	res, err := RunByzantineConstruction(cfg, ReaderPaper)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Violation {
		t.Errorf("expected violation beyond the Byzantine bound; narrative:\n%v", res.Narrative)
	}
	if res.LastReaderTS != 1 || res.FirstReaderTS != 0 {
		t.Errorf("rR returned ts=%d and r1 returned ts=%d; construction forces 1 then 0",
			res.LastReaderTS, res.FirstReaderTS)
	}
}

func TestByzantineConstructionHarmlessWithinBound(t *testing.T) {
	// S=9, t=1, b=1, R=2: 9 > (R+2)t + (R+1)b = 7, within the bound.
	cfg := quorum.Config{Servers: 9, Faulty: 1, Malicious: 1, Readers: 2}
	if !cfg.FastReadPossible() {
		t.Fatal("config should satisfy the Byzantine bound")
	}
	res, err := RunByzantineConstruction(cfg, ReaderPaper)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation {
		t.Errorf("Byzantine algorithm violated atomicity within the bound:\n%s\nnarrative: %v",
			res.Report, res.Narrative)
	}
}

func TestMWMRDemonstration(t *testing.T) {
	cfg := quorum.Config{Servers: 3, Faulty: 1, Readers: 3}
	res, err := RunMWMRDemonstration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.NaiveReport.OK {
		t.Error("the naive fast MWMR register should not be linearizable under the interchange schedule")
	}
	if !res.ABDReport.OK {
		t.Errorf("the ABD MWMR register should be linearizable: %s", res.ABDReport)
	}
	if len(res.Narrative) == 0 {
		t.Error("narrative should not be empty")
	}
	if _, err := RunMWMRDemonstration(quorum.Config{Servers: 0}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestReaderKindString(t *testing.T) {
	if ReaderPaper.String() != "paper" || ReaderNaive.String() != "naive" || ReaderKind(9).String() != "unknown" {
		t.Error("unexpected reader kind names")
	}
}
