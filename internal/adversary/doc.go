// Package adversary turns the paper's lower-bound proofs into executable
// schedules.
//
// The proofs of Proposition 5 (crash model), Proposition 10 (arbitrary
// failures) and Proposition 11 (multiple writers) construct explicit partial
// runs — sequences of message deliveries, delays and failures — that force
// any fast implementation into an atomicity violation when the resilience
// bound is not met. This package drives real protocol code through those
// schedules using the in-memory network's Hold/Release/Block controls and
// records the resulting operation history, which internal/atomicity then
// judges.
//
// Three register implementations can be placed under the adversary:
//
//   - the paper's own fast algorithm (internal/core), to show that the
//     schedule is harmless while R is below the bound and harmful at or
//     beyond it;
//   - a "naive" fast reader that skips the seen-set predicate and simply
//     returns the highest timestamp it sees (the strawman from the paper's
//     introduction), to show why the predicate is needed at all;
//   - for the multi-writer case, a naive fast MWMR register versus the
//     two-round ABD MWMR register.
package adversary
