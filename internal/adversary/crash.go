package adversary

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/core"
	"fastread/internal/history"
	"fastread/internal/quorum"
	"fastread/internal/transport"
	"fastread/internal/types"
)

// ReaderKind selects which read implementation is placed under the
// adversarial schedule.
type ReaderKind int

const (
	// ReaderPaper uses the paper's fast reader (with the seen-set
	// predicate).
	ReaderPaper ReaderKind = iota + 1
	// ReaderNaive uses the strawman reader that returns the highest
	// timestamp it sees, with no predicate.
	ReaderNaive
)

// String names the reader kind.
func (k ReaderKind) String() string {
	switch k {
	case ReaderPaper:
		return "paper"
	case ReaderNaive:
		return "naive"
	default:
		return "unknown"
	}
}

// ConstructionResult is the outcome of executing a lower-bound schedule.
type ConstructionResult struct {
	// Config is the deployment the schedule ran against.
	Config quorum.Config
	// Kind says which reader implementation was attacked.
	Kind ReaderKind
	// BoundSatisfied reports whether the configuration satisfies the
	// fast-read bound (in which case the paper predicts no violation for
	// its own algorithm).
	BoundSatisfied bool
	// History is the recorded operation history of the schedule.
	History history.History
	// Report is the atomicity verdict on that history.
	Report atomicity.Report
	// Violation is a convenience alias for !Report.OK.
	Violation bool
	// LastReaderTS is the timestamp returned by reader rR's read (the read
	// the proof forces to return the written value).
	LastReaderTS types.Timestamp
	// FirstReaderTS is the timestamp returned by r1's final read (the read
	// the proof forces to return an older value).
	FirstReaderTS types.Timestamp
	// Narrative describes the schedule step by step.
	Narrative []string
}

// schedulePollInterval is how often the scheduler polls server state while
// waiting for a protocol step to be processed.
const schedulePollInterval = 500 * time.Microsecond

// scheduleStepTimeout bounds each wait of the adversarial schedule.
const scheduleStepTimeout = 5 * time.Second

// errScheduleStuck indicates a schedule step did not complete in time.
var errScheduleStuck = errors.New("adversary: schedule step timed out")

// readClient abstracts over the paper reader and the naive reader.
type readClient interface {
	Read(ctx context.Context) (types.Value, types.Timestamp, error)
}

// paperReaderAdapter adapts core.Reader to readClient.
type paperReaderAdapter struct{ r *core.Reader }

func (a paperReaderAdapter) Read(ctx context.Context) (types.Value, types.Timestamp, error) {
	res, err := a.r.Read(ctx)
	if err != nil {
		return nil, 0, err
	}
	return res.Value, res.Timestamp, nil
}

// RunCrashConstruction executes the Proposition 5 schedule (Figures 3 and 4)
// against a deployment of the paper's servers and writer, with readers of the
// requested kind. It returns the recorded history and its atomicity verdict.
//
// The schedule is the final partial run prC of the proof:
//
//  1. write(1) is invoked but its messages reach only block B_{R+1}.
//  2. Readers r1..r_{R−1} invoke reads that remain incomplete; their
//     messages reach every block except B_h..B_R and their replies stay in
//     transit.
//  3. Reader rR performs a complete read that skips block B_R. If the
//     implementation is fast and correct it must return the written value.
//  4. (prA) r1's pending read completes using replies from every block
//     except B_{R+1}.
//  5. (prC) r1 performs a second complete read that skips B_{R+1}.
//
// When R ≥ S/t − 2 the adversary can populate every block and step 5 returns
// the old value even though step 3 returned the new one — an atomicity
// violation. When R < S/t − 2 the leftover servers (which the adversary
// cannot hide inside any block) break the construction and the paper's
// algorithm stays atomic.
func RunCrashConstruction(cfg quorum.Config, kind ReaderKind) (ConstructionResult, error) {
	part, err := BuildCrashPartition(cfg)
	if err != nil {
		return ConstructionResult{}, err
	}
	result := ConstructionResult{
		Config:         cfg,
		Kind:           kind,
		BoundSatisfied: cfg.FastReadPossible(),
	}
	narrate := func(format string, args ...any) {
		result.Narrative = append(result.Narrative, fmt.Sprintf(format, args...))
	}
	narrate("partition: %s extra=%v", describeBlocks("B", part.Primary), part.Extra)

	net := transport.NewInMemNetwork()
	defer net.Close()

	// Servers: the paper's fast servers in both cases (the naive strawman
	// only changes the reader side).
	servers := make(map[types.ProcessID]*core.Server, cfg.Servers)
	for i := 1; i <= cfg.Servers; i++ {
		id := types.Server(i)
		node, err := net.Join(id)
		if err != nil {
			return result, err
		}
		srv, err := core.NewServer(core.ServerConfig{ID: id, Readers: cfg.Readers}, node)
		if err != nil {
			return result, err
		}
		srv.Start()
		defer srv.Stop()
		servers[id] = srv
	}

	// Writer.
	wNode, err := net.Join(types.Writer())
	if err != nil {
		return result, err
	}
	writer, err := core.NewWriter(core.WriterConfig{Quorum: cfg}, wNode)
	if err != nil {
		return result, err
	}

	// Readers.
	readers := make([]readClient, cfg.Readers)
	for i := 1; i <= cfg.Readers; i++ {
		rNode, err := net.Join(types.Reader(i))
		if err != nil {
			return result, err
		}
		switch kind {
		case ReaderNaive:
			nr, err := newNaiveReader(cfg, rNode)
			if err != nil {
				return result, err
			}
			readers[i-1] = nr
		case ReaderPaper:
			pr, err := core.NewReader(core.ReaderConfig{Quorum: cfg}, rNode)
			if err != nil {
				return result, err
			}
			readers[i-1] = paperReaderAdapter{r: pr}
		default:
			return result, fmt.Errorf("adversary: unknown reader kind %d", kind)
		}
	}

	recorder := history.NewRecorder()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var background sync.WaitGroup
	defer background.Wait()

	R := cfg.Readers
	blockWriteTargets := func() []types.ProcessID {
		// Everything except B_{R+1} is withheld from the write.
		var out []types.ProcessID
		for i := 1; i <= R+2; i++ {
			if i == R+1 {
				continue
			}
			out = append(out, part.Primary[i-1]...)
		}
		out = append(out, part.Extra...)
		return out
	}()
	for _, s := range blockWriteTargets {
		net.Hold(types.Writer(), s)
	}

	// Step 1: the incomplete write(1).
	writeValue := types.Value("v1")
	writeOp := recorder.Invoke(types.Writer(), history.OpWrite, writeValue)
	background.Add(1)
	go func() {
		defer background.Done()
		if err := writer.Write(ctx, writeValue); err != nil {
			recorder.Fail(writeOp)
			return
		}
		recorder.Return(writeOp, nil, 1)
	}()
	narrate("write(1) invoked; its messages reach only block B%d = %v", R+1, part.Primary[R])

	if err := waitForServers(part.Primary[R], func(id types.ProcessID) bool {
		return servers[id].Timestamp() >= 1
	}); err != nil {
		return result, fmt.Errorf("waiting for write to reach B%d: %w", R+1, err)
	}

	// Step 2: incomplete reads by r1..r_{R−1}.
	pendingReadDone := make([]chan struct{}, R)
	pendingReadOp := make([]int64, R)
	for h := 1; h <= R-1; h++ {
		reader := types.Reader(h)
		// Read messages to blocks B_h..B_R stay in transit.
		for _, s := range part.primaryUnion(rangeInts(h, R)...) {
			net.Hold(reader, s)
		}
		// Replies stay in transit: for r1 only from the blocks that will be
		// withheld until prA (B_{R+1}, B_{R+2}, extra); for the other
		// intermediate readers from everyone (their reads never finish).
		if h == 1 {
			for _, s := range part.primaryUnion(R+1, R+2) {
				net.Hold(s, reader)
			}
			for _, s := range part.Extra {
				net.Hold(s, reader)
			}
		} else {
			for i := 1; i <= cfg.Servers; i++ {
				net.Hold(types.Server(i), reader)
			}
		}

		done := make(chan struct{})
		pendingReadDone[h-1] = done
		op := recorder.Invoke(reader, history.OpRead, nil)
		pendingReadOp[h-1] = op
		rc := readers[h-1]
		background.Add(1)
		go func(h int) {
			defer background.Done()
			defer close(done)
			value, ts, err := rc.Read(ctx)
			if err != nil {
				recorder.Fail(op)
				return
			}
			recorder.Return(op, value, ts)
		}(h)

		// Wait until every server that is supposed to receive this read has
		// processed it (so its seen set mentions r_h before rR reads).
		var mustProcess []types.ProcessID
		mustProcess = append(mustProcess, part.primaryUnion(rangeInts(1, h-1)...)...)
		mustProcess = append(mustProcess, part.primaryUnion(R+1, R+2)...)
		mustProcess = append(mustProcess, part.Extra...)
		if err := waitForServers(mustProcess, func(id types.ProcessID) bool {
			return servers[id].CounterOf("", h) >= 1
		}); err != nil {
			return result, fmt.Errorf("waiting for r%d's read to be processed: %w", h, err)
		}
		narrate("read by r%d invoked; it skips blocks B%d..B%d and all replies to it stay in transit", h, h, R)
	}

	// Step 3: the complete read by rR, skipping block B_R.
	for _, s := range part.Primary[R-1] {
		net.Hold(types.Reader(R), s)
	}
	lastOp := recorder.Invoke(types.Reader(R), history.OpRead, nil)
	lastValue, lastTS, err := readers[R-1].Read(withTimeout(ctx))
	if err != nil {
		recorder.Fail(lastOp)
		return result, fmt.Errorf("rR's read failed: %w", err)
	}
	recorder.Return(lastOp, lastValue, lastTS)
	result.LastReaderTS = lastTS
	narrate("complete read by r%d (skipping B%d) returned ts=%d value=%s", R, R, lastTS, lastValue)

	// Step 4 (prA): r1's pending read completes without ever hearing from
	// B_{R+1}.
	for _, s := range part.primaryUnion(rangeInts(1, R)...) {
		net.Release(types.Reader(1), s)
	}
	for _, s := range part.Primary[R+1] {
		net.Release(s, types.Reader(1))
	}
	for _, s := range part.Extra {
		net.Release(s, types.Reader(1))
	}
	select {
	case <-pendingReadDone[0]:
	case <-time.After(scheduleStepTimeout):
		return result, fmt.Errorf("%w: r1's first read did not complete in prA", errScheduleStuck)
	}
	narrate("r1's first read completed using replies from every block except B%d", R+1)

	// Step 5 (prC): r1's second read skips B_{R+1}.
	for _, s := range part.Primary[R] {
		net.Hold(types.Reader(1), s)
	}
	finalOp := recorder.Invoke(types.Reader(1), history.OpRead, nil)
	finalValue, finalTS, err := readers[0].Read(withTimeout(ctx))
	if err != nil {
		recorder.Fail(finalOp)
		return result, fmt.Errorf("r1's second read failed: %w", err)
	}
	recorder.Return(finalOp, finalValue, finalTS)
	result.FirstReaderTS = finalTS
	narrate("r1's second read (skipping B%d) returned ts=%d value=%s", R+1, finalTS, finalValue)

	// Tear down the still-blocked operations and judge the history.
	cancel()
	background.Wait()

	result.History = recorder.History()
	report, err := atomicity.CheckSWMR(result.History)
	if err != nil {
		return result, err
	}
	result.Report = report
	result.Violation = !report.OK
	if result.Violation {
		narrate("atomicity VIOLATED: %s", report.Violations[0].Message)
	} else {
		narrate("no atomicity violation")
	}
	return result, nil
}

// withTimeout derives a bounded context for a single schedule step.
func withTimeout(ctx context.Context) context.Context {
	stepCtx, cancel := context.WithTimeout(ctx, scheduleStepTimeout)
	// The schedule steps are short; letting the timer fire is fine. The
	// cancel func is retained by the returned context's lifetime.
	_ = cancel
	return stepCtx
}

// waitForServers polls the predicate for every listed server until it holds
// or the step timeout expires.
func waitForServers(ids []types.ProcessID, ready func(types.ProcessID) bool) error {
	deadline := time.Now().Add(scheduleStepTimeout)
	for {
		allReady := true
		for _, id := range ids {
			if !ready(id) {
				allReady = false
				break
			}
		}
		if allReady {
			return nil
		}
		if time.Now().After(deadline) {
			return errScheduleStuck
		}
		time.Sleep(schedulePollInterval)
	}
}

// rangeInts returns the integers lo..hi inclusive (empty if lo > hi).
func rangeInts(lo, hi int) []int {
	if lo > hi {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// describeBlocks renders a partition's blocks compactly.
func describeBlocks(prefix string, blocks [][]types.ProcessID) string {
	s := ""
	for i, b := range blocks {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s%d=%v", prefix, i+1, b)
	}
	return s
}
