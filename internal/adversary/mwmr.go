package adversary

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fastread/internal/abd"
	"fastread/internal/atomicity"
	"fastread/internal/history"
	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// MWMRResult reports the outcome of the multi-writer demonstration
// (Section 7, Proposition 11): a register whose writes are fast (one
// round-trip, no query phase) cannot be atomic with two writers, whereas the
// two-round ABD MWMR register stays linearizable under the same schedule.
type MWMRResult struct {
	// Config is the deployment used.
	Config quorum.Config
	// NaiveHistory and NaiveReport are the history of the naive fast MWMR
	// register and its linearizability verdict (expected: violation).
	NaiveHistory history.History
	NaiveReport  atomicity.Report
	// ABDHistory and ABDReport are the history of the ABD MWMR register
	// under the same schedule and its verdict (expected: linearizable).
	ABDHistory history.History
	ABDReport  atomicity.Report
	// Narrative describes the schedule.
	Narrative []string
}

// naiveMWWriter is a hypothetical "fast" multi-writer: it skips the query
// phase and stamps writes with a local sequence number and its rank, then
// waits for S−t acknowledgements — exactly one round-trip. Proposition 11
// says no such register can be atomic; the demonstration makes the failure
// concrete.
type naiveMWWriter struct {
	cfg     quorum.Config
	node    transport.Node
	rank    int32
	servers []types.ProcessID

	mu  sync.Mutex
	seq types.Timestamp
	rc  int64
}

func newNaiveMWWriter(cfg quorum.Config, node transport.Node, rank int32) *naiveMWWriter {
	return &naiveMWWriter{cfg: cfg, node: node, rank: rank, servers: protoutil.ServerIDs(cfg.Servers)}
}

// Write performs a one-round write with a locally generated timestamp.
func (w *naiveMWWriter) Write(ctx context.Context, v types.Value) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	w.rc++
	req := &wire.Message{Op: wire.OpWrite, TS: w.seq, WriterRank: w.rank, Cur: v.Clone(), RCounter: w.rc}
	rc := w.rc
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteAck && m.RCounter == rc
	}
	_, err := protoutil.RoundTrip(ctx, w.node, w.servers, req, w.cfg.AckQuorum(), filter, nil)
	return err
}

// naiveMWReader performs a one-round read returning the highest (ts, rank)
// value it sees.
type naiveMWReader struct {
	cfg     quorum.Config
	node    transport.Node
	servers []types.ProcessID

	mu sync.Mutex
	rc int64
}

func newNaiveMWReader(cfg quorum.Config, node transport.Node) *naiveMWReader {
	return &naiveMWReader{cfg: cfg, node: node, servers: protoutil.ServerIDs(cfg.Servers)}
}

// Read performs a one-round read.
func (r *naiveMWReader) Read(ctx context.Context) (types.Value, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rc++
	rc := r.rc
	req := &wire.Message{Op: wire.OpRead, RCounter: rc}
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpReadAck && m.RCounter == rc
	}
	acks, err := protoutil.RoundTrip(ctx, r.node, r.servers, req, r.cfg.AckQuorum(), filter, nil)
	if err != nil {
		return nil, err
	}
	best := acks[0].Msg
	for _, a := range acks[1:] {
		if best.TS < a.Msg.TS || (best.TS == a.Msg.TS && best.WriterRank < a.Msg.WriterRank) {
			best = a.Msg
		}
	}
	return best.Cur.Clone(), nil
}

// RunMWMRDemonstration runs the same sequential schedule — writer 2 writes,
// then writer 1 writes, then a reader reads — against (a) the naive fast
// MWMR register and (b) the ABD MWMR register, and checks both histories for
// linearizability. With local timestamps the naive register orders the two
// writes by rank rather than by real time, so the read returns the earlier
// write's value: exactly the anomaly Proposition 11 proves unavoidable for
// fast multi-writer registers.
func RunMWMRDemonstration(cfg quorum.Config) (MWMRResult, error) {
	if err := cfg.Validate(); err != nil {
		return MWMRResult{}, err
	}
	result := MWMRResult{Config: cfg}
	narrate := func(format string, args ...any) {
		result.Narrative = append(result.Narrative, fmt.Sprintf(format, args...))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// --- Naive fast MWMR register ---------------------------------------
	{
		net := transport.NewInMemNetwork()
		servers := make([]*abd.Server, 0, cfg.Servers)
		for i := 1; i <= cfg.Servers; i++ {
			node, err := net.Join(types.Server(i))
			if err != nil {
				return result, err
			}
			srv, err := abd.NewServer(abd.ServerConfig{ID: types.Server(i)}, node)
			if err != nil {
				return result, err
			}
			srv.Start()
			servers = append(servers, srv)
		}
		w1Node, err := net.Join(types.Reader(1))
		if err != nil {
			return result, err
		}
		w2Node, err := net.Join(types.Reader(2))
		if err != nil {
			return result, err
		}
		rNode, err := net.Join(types.Reader(3))
		if err != nil {
			return result, err
		}
		w1 := newNaiveMWWriter(cfg, w1Node, 1)
		w2 := newNaiveMWWriter(cfg, w2Node, 2)
		reader := newNaiveMWReader(cfg, rNode)

		recorder := history.NewRecorder()
		runOp := func(proc types.ProcessID, kind history.OpKind, arg types.Value, do func() (types.Value, error)) error {
			op := recorder.Invoke(proc, kind, arg)
			value, err := do()
			if err != nil {
				recorder.Fail(op)
				return err
			}
			recorder.Return(op, value, 0)
			return nil
		}

		if err := runOp(types.Reader(2), history.OpWrite, types.Value("second-writer"), func() (types.Value, error) {
			return nil, w2.Write(ctx, types.Value("second-writer"))
		}); err != nil {
			return result, fmt.Errorf("naive mwmr write by w2: %w", err)
		}
		if err := runOp(types.Reader(1), history.OpWrite, types.Value("first-writer"), func() (types.Value, error) {
			return nil, w1.Write(ctx, types.Value("first-writer"))
		}); err != nil {
			return result, fmt.Errorf("naive mwmr write by w1: %w", err)
		}
		if err := runOp(types.Reader(3), history.OpRead, nil, func() (types.Value, error) {
			return reader.Read(ctx)
		}); err != nil {
			return result, fmt.Errorf("naive mwmr read: %w", err)
		}

		for _, srv := range servers {
			srv.Stop()
		}
		_ = net.Close()

		result.NaiveHistory = recorder.History()
		report, err := atomicity.CheckLinearizable(result.NaiveHistory)
		if err != nil {
			return result, err
		}
		result.NaiveReport = report
		narrate("naive fast MWMR register: w2 writes, then w1 writes, then a read returns %s (linearizable=%v)",
			lastReadValue(result.NaiveHistory), report.OK)
	}

	// --- ABD MWMR register ----------------------------------------------
	{
		net := transport.NewInMemNetwork()
		servers := make([]*abd.Server, 0, cfg.Servers)
		for i := 1; i <= cfg.Servers; i++ {
			node, err := net.Join(types.Server(i))
			if err != nil {
				return result, err
			}
			srv, err := abd.NewServer(abd.ServerConfig{ID: types.Server(i)}, node)
			if err != nil {
				return result, err
			}
			srv.Start()
			servers = append(servers, srv)
		}
		w1Node, err := net.Join(types.Reader(1))
		if err != nil {
			return result, err
		}
		w2Node, err := net.Join(types.Reader(2))
		if err != nil {
			return result, err
		}
		rNode, err := net.Join(types.Reader(3))
		if err != nil {
			return result, err
		}
		clientCfg := abd.ClientConfig{Quorum: cfg}
		w1, err := abd.NewMWWriter(clientCfg, w1Node, 1)
		if err != nil {
			return result, err
		}
		w2, err := abd.NewMWWriter(clientCfg, w2Node, 2)
		if err != nil {
			return result, err
		}
		reader, err := abd.NewMWReader(clientCfg, rNode)
		if err != nil {
			return result, err
		}

		recorder := history.NewRecorder()
		writeOp := recorder.Invoke(types.Reader(2), history.OpWrite, types.Value("second-writer"))
		if err := w2.Write(ctx, types.Value("second-writer")); err != nil {
			return result, fmt.Errorf("abd mwmr write by w2: %w", err)
		}
		recorder.Return(writeOp, nil, 0)
		writeOp = recorder.Invoke(types.Reader(1), history.OpWrite, types.Value("first-writer"))
		if err := w1.Write(ctx, types.Value("first-writer")); err != nil {
			return result, fmt.Errorf("abd mwmr write by w1: %w", err)
		}
		recorder.Return(writeOp, nil, 0)
		readOp := recorder.Invoke(types.Reader(3), history.OpRead, nil)
		res, err := reader.Read(ctx)
		if err != nil {
			return result, fmt.Errorf("abd mwmr read: %w", err)
		}
		recorder.Return(readOp, res.Value, res.Timestamp)

		for _, srv := range servers {
			srv.Stop()
		}
		_ = net.Close()

		result.ABDHistory = recorder.History()
		report, err := atomicity.CheckLinearizable(result.ABDHistory)
		if err != nil {
			return result, err
		}
		result.ABDReport = report
		narrate("ABD MWMR register (two-round writes): the same schedule returns %s (linearizable=%v)",
			lastReadValue(result.ABDHistory), report.OK)
	}

	return result, nil
}

// lastReadValue returns the value returned by the last completed read in the
// history, for narration.
func lastReadValue(h history.History) types.Value {
	reads := h.Reads()
	if len(reads) == 0 {
		return nil
	}
	return reads[len(reads)-1].Result
}
