package adversary

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/core"
	"fastread/internal/fault"
	"fastread/internal/history"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/transport"
	"fastread/internal/types"
)

// maliciousSettleTime is how long the scheduler waits for malicious servers
// (whose internal state it cannot poll) to process delivered messages.
const maliciousSettleTime = 30 * time.Millisecond

// RunByzantineConstruction executes the Proposition 10 schedule (Figure 6)
// against the arbitrary-failure algorithm. The primary blocks T1..T_{R+2}
// hold honest servers; the shadow blocks B1..B_{R+1} hold malicious servers
// that "lose their memory" towards reader r1 (they answer r1 as if they had
// never received any message, and answer everyone else honestly).
//
// The schedule mirrors RunCrashConstruction:
//
//  1. The signed write(1) reaches only T_{R+1} and B_{R+1}.
//  2. Readers r1..r_{R−1} invoke reads that stay incomplete.
//  3. Reader rR performs a complete read that skips T_R; at or beyond the
//     bound S ≤ (R+2)t + (R+1)b it must return the written value.
//  4. (prA) r1's pending read completes without ever hearing from T_{R+1};
//     the malicious B_{R+1} denies having seen the write.
//  5. (prC) r1 performs a second complete read that skips T_{R+1} and, at or
//     beyond the bound, returns the old value — an atomicity violation.
func RunByzantineConstruction(cfg quorum.Config, kind ReaderKind) (ConstructionResult, error) {
	part, err := BuildByzantinePartition(cfg)
	if err != nil {
		return ConstructionResult{}, err
	}
	result := ConstructionResult{
		Config:         cfg,
		Kind:           kind,
		BoundSatisfied: cfg.FastReadPossible(),
	}
	narrate := func(format string, args ...any) {
		result.Narrative = append(result.Narrative, fmt.Sprintf(format, args...))
	}
	narrate("partition: %s | malicious %s | extra=%v",
		describeBlocks("T", part.Primary), describeBlocks("B", part.Shadow), part.Extra)

	net := transport.NewInMemNetwork()
	defer net.Close()
	keys := sig.MustKeyPair()

	malicious := make(map[types.ProcessID]bool)
	for _, s := range part.MaliciousServers() {
		malicious[s] = true
	}

	honest := make(map[types.ProcessID]*core.Server, cfg.Servers)
	for i := 1; i <= cfg.Servers; i++ {
		id := types.Server(i)
		node, err := net.Join(id)
		if err != nil {
			return result, err
		}
		if malicious[id] {
			srv, err := fault.NewByzantineServer(fault.ByzantineConfig{
				ID:       id,
				Behavior: fault.BehaviorMemoryLoss,
				Readers:  cfg.Readers,
				Victim:   types.Reader(1),
			}, node)
			if err != nil {
				return result, err
			}
			srv.Start()
			defer srv.Stop()
			continue
		}
		srv, err := core.NewServer(core.ServerConfig{
			ID:        id,
			Readers:   cfg.Readers,
			Byzantine: true,
			Verifier:  keys.Verifier,
		}, node)
		if err != nil {
			return result, err
		}
		srv.Start()
		defer srv.Stop()
		honest[id] = srv
	}

	wNode, err := net.Join(types.Writer())
	if err != nil {
		return result, err
	}
	writer, err := core.NewWriter(core.WriterConfig{Quorum: cfg, Byzantine: true, Signer: keys.Signer}, wNode)
	if err != nil {
		return result, err
	}

	readers := make([]readClient, cfg.Readers)
	for i := 1; i <= cfg.Readers; i++ {
		rNode, err := net.Join(types.Reader(i))
		if err != nil {
			return result, err
		}
		switch kind {
		case ReaderNaive:
			nr, err := newNaiveReader(cfg, rNode)
			if err != nil {
				return result, err
			}
			readers[i-1] = nr
		case ReaderPaper:
			pr, err := core.NewReader(core.ReaderConfig{Quorum: cfg, Byzantine: true, Verifier: keys.Verifier}, rNode)
			if err != nil {
				return result, err
			}
			readers[i-1] = paperReaderAdapter{r: pr}
		default:
			return result, fmt.Errorf("adversary: unknown reader kind %d", kind)
		}
	}

	recorder := history.NewRecorder()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var background sync.WaitGroup
	defer background.Wait()

	R := cfg.Readers

	// Step 1: the signed write(1) reaches only T_{R+1} ∪ B_{R+1}.
	receivesWrite := make(map[types.ProcessID]bool)
	for _, s := range part.Primary[R] {
		receivesWrite[s] = true
	}
	for _, s := range part.Shadow[R] {
		receivesWrite[s] = true
	}
	for i := 1; i <= cfg.Servers; i++ {
		if id := types.Server(i); !receivesWrite[id] {
			net.Hold(types.Writer(), id)
		}
	}
	writeValue := types.Value("v1")
	writeOp := recorder.Invoke(types.Writer(), history.OpWrite, writeValue)
	background.Add(1)
	go func() {
		defer background.Done()
		if err := writer.Write(ctx, writeValue); err != nil {
			recorder.Fail(writeOp)
			return
		}
		recorder.Return(writeOp, nil, 1)
	}()
	narrate("signed write(1) invoked; its messages reach only T%d=%v and the malicious B%d=%v",
		R+1, part.Primary[R], R+1, part.Shadow[R])

	if err := waitForServers(part.Primary[R], func(id types.ProcessID) bool {
		return honest[id].Timestamp() >= 1
	}); err != nil {
		return result, fmt.Errorf("waiting for write to reach T%d: %w", R+1, err)
	}
	time.Sleep(maliciousSettleTime)

	// Step 2: incomplete reads by r1..r_{R−1}.
	pendingReadDone := make([]chan struct{}, R)
	for h := 1; h <= R-1; h++ {
		reader := types.Reader(h)
		for _, s := range part.primaryUnion(rangeInts(h, R)...) {
			net.Hold(reader, s)
		}
		for _, s := range part.shadowUnion(rangeInts(h+1, R)...) {
			net.Hold(reader, s)
		}
		if h == 1 {
			var heldReplies []types.ProcessID
			heldReplies = append(heldReplies, part.primaryUnion(R+1, R+2)...)
			heldReplies = append(heldReplies, part.shadowUnion(1)...)
			heldReplies = append(heldReplies, part.shadowUnion(R+1)...)
			heldReplies = append(heldReplies, part.Extra...)
			for _, s := range heldReplies {
				net.Hold(s, reader)
			}
		} else {
			for i := 1; i <= cfg.Servers; i++ {
				net.Hold(types.Server(i), reader)
			}
		}

		done := make(chan struct{})
		pendingReadDone[h-1] = done
		op := recorder.Invoke(reader, history.OpRead, nil)
		rc := readers[h-1]
		background.Add(1)
		go func(h int, op int64) {
			defer background.Done()
			defer close(done)
			value, ts, err := rc.Read(ctx)
			if err != nil {
				recorder.Fail(op)
				return
			}
			recorder.Return(op, value, ts)
		}(h, op)

		var mustProcess []types.ProcessID
		mustProcess = append(mustProcess, part.primaryUnion(rangeInts(1, h-1)...)...)
		mustProcess = append(mustProcess, part.primaryUnion(R+1, R+2)...)
		mustProcess = append(mustProcess, part.Extra...)
		if err := waitForServers(mustProcess, func(id types.ProcessID) bool {
			return honest[id].CounterOf("", h) >= 1
		}); err != nil {
			return result, fmt.Errorf("waiting for r%d's read to be processed: %w", h, err)
		}
		time.Sleep(maliciousSettleTime)
		narrate("read by r%d invoked; it skips T%d..T%d and B%d..B%d and its replies stay in transit", h, h, R, h+1, R)
	}

	// Step 3: complete read by rR skipping T_R.
	for _, s := range part.Primary[R-1] {
		net.Hold(types.Reader(R), s)
	}
	lastOp := recorder.Invoke(types.Reader(R), history.OpRead, nil)
	lastValue, lastTS, err := readers[R-1].Read(withTimeout(ctx))
	if err != nil {
		recorder.Fail(lastOp)
		return result, fmt.Errorf("rR's read failed: %w", err)
	}
	recorder.Return(lastOp, lastValue, lastTS)
	result.LastReaderTS = lastTS
	narrate("complete read by r%d (skipping T%d) returned ts=%d value=%s", R, R, lastTS, lastValue)

	// Step 4 (prA): r1's pending read completes; it never hears from T_{R+1}
	// and the malicious B_{R+1} pretends it saw nothing.
	for _, s := range part.primaryUnion(rangeInts(1, R)...) {
		net.Release(types.Reader(1), s)
	}
	for _, s := range part.shadowUnion(rangeInts(2, R)...) {
		net.Release(types.Reader(1), s)
	}
	var releaseReplies []types.ProcessID
	releaseReplies = append(releaseReplies, part.primaryUnion(R+2)...)
	releaseReplies = append(releaseReplies, part.shadowUnion(1)...)
	releaseReplies = append(releaseReplies, part.shadowUnion(R+1)...)
	releaseReplies = append(releaseReplies, part.Extra...)
	for _, s := range releaseReplies {
		net.Release(s, types.Reader(1))
	}
	select {
	case <-pendingReadDone[0]:
	case <-time.After(scheduleStepTimeout):
		return result, fmt.Errorf("%w: r1's first read did not complete in prA", errScheduleStuck)
	}
	narrate("r1's first read completed; T%d stayed silent and the malicious B%d denied the write", R+1, R+1)

	// Step 5 (prC): r1's second read skips T_{R+1}.
	for _, s := range part.Primary[R] {
		net.Hold(types.Reader(1), s)
	}
	finalOp := recorder.Invoke(types.Reader(1), history.OpRead, nil)
	finalValue, finalTS, err := readers[0].Read(withTimeout(ctx))
	if err != nil {
		recorder.Fail(finalOp)
		return result, fmt.Errorf("r1's second read failed: %w", err)
	}
	recorder.Return(finalOp, finalValue, finalTS)
	result.FirstReaderTS = finalTS
	narrate("r1's second read (skipping T%d) returned ts=%d value=%s", R+1, finalTS, finalValue)

	cancel()
	background.Wait()

	result.History = recorder.History()
	report, err := atomicity.CheckSWMR(result.History)
	if err != nil {
		return result, err
	}
	result.Report = report
	result.Violation = !report.OK
	if result.Violation {
		narrate("atomicity VIOLATED: %s", report.Violations[0].Message)
	} else {
		narrate("no atomicity violation")
	}
	return result, nil
}
