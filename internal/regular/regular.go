// Package regular implements a fast single-writer multi-reader REGULAR
// register, the comparison point of Section 8 of the paper.
//
// A regular register is weaker than an atomic one: a read that is concurrent
// with a write may return either the value being written or the previous
// value, and two concurrent reads may disagree on which (the "new/old
// inversion" that atomicity forbids). In exchange, the implementation is
// trivially fast for ANY number of readers as long as a majority of servers
// is correct (t < S/2): writes go to a majority in one round, reads query a
// majority and return the highest-timestamped value, with no write-back and
// no seen-set bookkeeping.
//
// Experiment E7 uses this register to reproduce the paper's observation that
// "fast atomic registers have exactly the same time-complexity as regular
// registers" when R is small enough, and that beyond the R < S/t − 2 bound
// the designer must choose between speed (regular) and consistency (atomic).
package regular

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fastread/internal/durable"
	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/shard"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by the regular register.
var (
	// ErrBottomWrite indicates an attempt to write the reserved value ⊥.
	ErrBottomWrite = errors.New("regular: cannot write the initial value ⊥")
	// ErrNotWriter indicates a writer constructed on a non-writer node.
	ErrNotWriter = errors.New("regular: writer must use the writer identity")
	// ErrNotReader indicates a reader constructed on a non-reader node.
	ErrNotReader = errors.New("regular: reader must use a reader identity")
	// ErrNotRegularizable indicates a configuration with t ≥ S/2, for which
	// even a regular register cannot be implemented.
	ErrNotRegularizable = errors.New("regular: requires t < S/2")
)

// registerState is the per-register server state: the highest-timestamped
// value received for that register.
type registerState struct {
	value types.TaggedValue
	// lsn is the log sequence number of the last durable record applied to
	// this register; deltas at or below it are already reflected and must not
	// replay. Zero when not durable.
	lsn int64
}

// Server stores, per register key, the highest-timestamped value it has
// received and answers both writes and reads in a single step. State is kept
// in a striped shard map, lazily instantiated on the first message that
// names the key.
type Server struct {
	id   types.ProcessID
	tr   *trace.Trace
	node transport.Node
	exec *transport.Executor

	states *shard.Map[*registerState]
	// dlog is the server's durable log; nil when persistence is off.
	dlog *durable.Log

	stopOnce sync.Once
	done     chan struct{}
}

// NewServer creates a regular-register server bound to the given node.
// workers is the number of key-shard workers executing the server's messages
// in parallel (a register key is always handled by the same worker); zero or
// negative means GOMAXPROCS. A non-nil dopts gives the server a write-ahead
// log: adoptions are appended before the ack is sent, and NewServer recovers
// whatever a previous incarnation persisted in the directory.
func NewServer(id types.ProcessID, node transport.Node, tr *trace.Trace, workers int, dopts *durable.Options) (*Server, error) {
	if id.Role != types.RoleServer || !id.Valid() {
		return nil, fmt.Errorf("regular: server id %v is not a valid server identity", id)
	}
	if node == nil {
		return nil, fmt.Errorf("regular: server %v requires a transport node", id)
	}
	s := &Server{
		id:   id,
		tr:   tr,
		node: node,
		states: shard.NewMap(0, func(string) *registerState {
			return &registerState{value: types.InitialTaggedValue()}
		}),
		done: make(chan struct{}),
	}
	if dopts != nil {
		dl, err := durable.Open(*dopts, durable.Hooks{Apply: s.applyRecord, Dump: s.dumpRecords})
		if err != nil {
			return nil, fmt.Errorf("regular: server %v durable log: %w", id, err)
		}
		s.dlog = dl
	}
	s.exec = transport.NewExecutor(node, protoutil.WireKeyFunc, workers)
	return s, nil
}

// applyRecord replays one recovered log record, re-running the live adoption
// comparison under the per-key LSN guard; retained bytes are cloned because
// the record aliases the replay buffer.
func (s *Server) applyRecord(r *durable.Record) error {
	s.states.Do(r.Key, func(st *registerState) {
		switch r.Kind {
		case durable.KindState:
			st.value = types.TaggedValue{
				TS:   types.Timestamp(r.TS),
				Cur:  types.Value(r.Cur).Clone(),
				Prev: types.Value(r.Prev).Clone(),
			}
			st.lsn = r.LSN
		case durable.KindDelta:
			if r.LSN <= st.lsn {
				return
			}
			if types.Timestamp(r.TS) > st.value.TS {
				st.value = types.TaggedValue{
					TS:   types.Timestamp(r.TS),
					Cur:  types.Value(r.Cur).Clone(),
					Prev: types.Value(r.Prev).Clone(),
				}
			}
			st.lsn = r.LSN
		}
	})
	return nil
}

// dumpRecords emits one KindState record per instantiated register for a
// snapshot, aliasing live state under the register's stripe lock.
func (s *Server) dumpRecords(emit func(*durable.Record) error) error {
	var err error
	s.states.Range(func(key string, st *registerState) {
		if err != nil {
			return
		}
		err = emit(&durable.Record{
			Kind: durable.KindState,
			LSN:  st.lsn,
			Key:  key,
			TS:   int64(st.value.TS),
			Cur:  st.value.Cur,
			Prev: st.value.Prev,
		})
	})
	return err
}

// Start launches the server's key-sharded executor: messages are dispatched
// by register key across the configured workers, so distinct registers are
// served in parallel while each register keeps FIFO, single-goroutine
// handling (see transport.Executor).
func (s *Server) Start() {
	go func() {
		defer close(s.done)
		s.exec.RunCoalescing(s.handle)
	}()
}

// Stop detaches the server from the network, waits for the executor to drain
// every worker, then closes the durable log.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { _ = s.node.Close() })
	<-s.done
	if s.dlog != nil {
		_ = s.dlog.Close()
	}
}

// ID returns the server's identity.
func (s *Server) ID() types.ProcessID { return s.id }

// Workers reports the executor's key-shard worker count.
func (s *Server) Workers() int { return s.exec.Workers() }

// SetQueueBound caps each worker's overflow queue at n requests
// (shed-and-count; see transport.Executor.SetQueueBound). Must be called
// before Start; n <= 0 keeps the default never-drop queues.
func (s *Server) SetQueueBound(n int) { s.exec.SetQueueBound(n) }

// QueueSheds returns the number of requests shed by bounded worker queues
// (always 0 unless SetQueueBound was used).
func (s *Server) QueueSheds() int64 { return s.exec.Sheds() }

// State returns the default register's current value; use StateOf for a
// named register.
func (s *Server) State() types.TaggedValue { return s.StateOf("") }

// StateOf returns the named register's current value. An untouched register
// reports its initial state without being instantiated.
func (s *Server) StateOf(key string) types.TaggedValue {
	out := types.InitialTaggedValue()
	s.states.Peek(key, func(st *registerState) { out = st.value.Clone() })
	return out
}

// handle processes one message on the per-message hot path: pooled zero-copy
// decode, one clone at the adoption retention point, ack fields aliasing the
// stored state (the key-shard worker handling this message is this key's
// sole mutator, and the ack is encoded before the worker handles its next
// message).
func (s *Server) handle(m transport.Message, out transport.Sender) {
	req := wire.GetMessage()
	defer wire.PutMessage(req)
	if err := wire.DecodeInto(req, m.Payload); err != nil {
		if s.tr.Enabled() {
			s.tr.Record(trace.KindDrop, s.id, m.From, "malformed: %v", err)
		}
		return
	}
	var ackOp wire.Op
	switch req.Op {
	case wire.OpWrite:
		if m.From.Role != types.RoleWriter {
			return
		}
		ackOp = wire.OpWriteAck
	case wire.OpRead:
		if m.From.Role != types.RoleReader {
			return
		}
		ackOp = wire.OpReadAck
	default:
		return
	}

	ack := wire.GetMessage()
	defer wire.PutMessage(ack)
	s.states.Do(req.Key, func(st *registerState) {
		if req.Op == wire.OpWrite && req.TS > st.value.TS {
			// Retention point: the stored value must own its bytes.
			st.value = types.TaggedValue{TS: req.TS, Cur: req.Cur.Clone(), Prev: req.Prev.Clone()}
			if s.dlog != nil {
				lsn, _ := s.dlog.Append(&durable.Record{
					Kind: durable.KindDelta,
					Key:  req.Key,
					TS:   int64(req.TS),
					Cur:  req.Cur,
					Prev: req.Prev,
					From: m.From,
				})
				st.lsn = lsn
			}
		}
		ack.Fill(wire.Message{
			Op:       ackOp,
			Key:      req.Key,
			TS:       st.value.TS,
			Cur:      st.value.Cur,
			Prev:     st.value.Prev,
			RCounter: req.RCounter,
		})
	})

	if err := transport.SendEncoded(out, m.From, ack); err != nil {
		if s.tr.Enabled() {
			s.tr.Record(trace.KindDrop, s.id, m.From, "send ack: %v", err)
		}
	}
}

// Writer is the single writer of the regular register: one round-trip per
// write to a majority of servers. WriteAsync keeps up to depth writes in
// flight, applied in submission (timestamp) order.
type Writer struct {
	cfg     quorum.Config
	key     string
	tr      *trace.Trace
	node    transport.Node
	servers []types.ProcessID
	pl      *protoutil.Pipeline

	// submitted is the highest timestamp this incarnation has broadcast;
	// the ack filter caps accepted timestamps at it so a restarted writer
	// times out visibly instead of "completing" against a previous
	// incarnation's newer server state (see core.Writer.WriteAsync).
	submitted atomic.Int64

	mu     sync.Mutex
	ts     types.Timestamp
	prev   types.Value
	rounds stats.Counter
	writes int64
}

// NewWriter creates the regular-register writer for the default register.
func NewWriter(cfg quorum.Config, node transport.Node, tr *trace.Trace) (*Writer, error) {
	return NewKeyedWriter("", cfg, 0, node, tr)
}

// NewKeyedWriter creates the regular-register writer for the named register.
// depth bounds the writes kept in flight by WriteAsync (non-positive means
// protoutil.DefaultPipelineDepth).
func NewKeyedWriter(key string, cfg quorum.Config, depth int, node transport.Node, tr *trace.Trace) (*Writer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.FastRegularPossible() {
		return nil, fmt.Errorf("%w: %v", ErrNotRegularizable, cfg)
	}
	if node == nil {
		return nil, fmt.Errorf("regular: writer requires a transport node")
	}
	if node.ID() != types.Writer() {
		return nil, fmt.Errorf("%w: got %v", ErrNotWriter, node.ID())
	}
	return &Writer{
		cfg:     cfg,
		key:     key,
		tr:      tr,
		node:    node,
		servers: protoutil.ServerIDs(cfg.Servers),
		pl:      protoutil.NewPipeline(node, depth, tr),
		ts:      1,
		prev:    types.Bottom(),
	}, nil
}

// Write stores v in the register in one round-trip (WriteAsync at depth
// one).
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	f, err := w.WriteAsync(ctx, v)
	if err != nil {
		return err
	}
	_, rerr := f.Result(ctx)
	return rerr
}

// WriteAsync submits one write and returns its future without waiting for
// the majority; timestamps are taken and broadcast in submission order.
func (w *Writer) WriteAsync(ctx context.Context, v types.Value) (*protoutil.Future[struct{}], error) {
	if v.IsBottom() {
		return nil, ErrBottomWrite
	}
	if err := w.pl.Acquire(ctx); err != nil {
		return nil, fmt.Errorf("regular: write: %w", err)
	}
	f := protoutil.NewFuture[struct{}]()

	w.mu.Lock()
	ts := w.ts
	// One owned copy serves as the transient request's Cur and then as the
	// remembered prev for the next submission.
	cur := v.Clone()
	req := &wire.Message{Op: wire.OpWrite, Key: w.key, TS: ts, Cur: cur, Prev: w.prev}
	w.submitted.Store(int64(ts))
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteAck && m.Key == w.key &&
			m.TS >= ts && int64(m.TS) <= w.submitted.Load()
	}
	op := w.pl.Register(w.cfg.Majority(), filter, func(_ []protoutil.Ack, err error) {
		if err != nil {
			f.Resolve(struct{}{}, fmt.Errorf("regular: write ts=%d: %w", ts, err))
			return
		}
		w.mu.Lock()
		w.rounds.Add(1)
		w.writes++
		w.mu.Unlock()
		f.Resolve(struct{}{}, nil)
	})
	err := protoutil.Broadcast(w.node, w.servers, req, w.tr)
	if err == nil {
		w.ts = ts.Next()
		w.prev = cur
	}
	w.mu.Unlock()
	if err != nil {
		op.Abort(err)
		return nil, fmt.Errorf("regular: write ts=%d: %w", ts, err)
	}
	f.Bind(ctx, op)
	return f, nil
}

// Stats reports completed writes and total round-trips.
func (w *Writer) Stats() (writes, roundTrips int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, w.rounds.Total()
}

// Close detaches the writer from the network.
func (w *Writer) Close() error { return w.node.Close() }

// ReadResult is what a regular read returns.
type ReadResult struct {
	Value      types.Value
	Timestamp  types.Timestamp
	RoundTrips int
}

// Reader is a regular-register reader: query a majority, return the value
// with the highest timestamp. One round-trip, no write-back. ReadAsync keeps
// up to depth reads in flight, matched to their acknowledgements by rCounter
// nonces.
type Reader struct {
	cfg     quorum.Config
	key     string
	tr      *trace.Trace
	node    transport.Node
	id      types.ProcessID
	servers []types.ProcessID
	pl      *protoutil.Pipeline

	mu       sync.Mutex
	rCounter int64
	rounds   stats.Counter
	reads    int64
}

// NewReader creates a regular-register reader for the default register. Any
// number of readers is supported.
func NewReader(cfg quorum.Config, node transport.Node, tr *trace.Trace) (*Reader, error) {
	return NewKeyedReader("", cfg, 0, node, tr)
}

// NewKeyedReader creates a regular-register reader for the named register.
// depth bounds the reads kept in flight by ReadAsync (non-positive means
// protoutil.DefaultPipelineDepth).
func NewKeyedReader(key string, cfg quorum.Config, depth int, node transport.Node, tr *trace.Trace) (*Reader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.FastRegularPossible() {
		return nil, fmt.Errorf("%w: %v", ErrNotRegularizable, cfg)
	}
	if node == nil {
		return nil, fmt.Errorf("regular: reader requires a transport node")
	}
	id := node.ID()
	if id.Role != types.RoleReader || id.Index < 1 {
		return nil, fmt.Errorf("%w: got %v", ErrNotReader, id)
	}
	return &Reader{
		cfg:      cfg,
		key:      key,
		tr:       tr,
		node:     node,
		id:       id,
		servers:  protoutil.ServerIDs(cfg.Servers),
		pl:       protoutil.NewPipeline(node, depth, tr),
		rCounter: protoutil.InitialNonce(),
	}, nil
}

// SeedNonce overrides the reader's initial operation counter (see
// protoutil.StartNonce; deterministic simulation). It must be called before
// the first read; non-positive values are ignored.
func (r *Reader) SeedNonce(n int64) {
	if n > 0 {
		r.rCounter = n
	}
}

// Read returns a regular-register value in one round-trip (ReadAsync at
// depth one).
func (r *Reader) Read(ctx context.Context) (ReadResult, error) {
	f, err := r.ReadAsync(ctx)
	if err != nil {
		return ReadResult{}, err
	}
	return f.Result(ctx)
}

// ReadAsync submits one read and returns its future without waiting for the
// majority.
func (r *Reader) ReadAsync(ctx context.Context) (*protoutil.Future[ReadResult], error) {
	if err := r.pl.Acquire(ctx); err != nil {
		return nil, fmt.Errorf("regular: read: %w", err)
	}
	f := protoutil.NewFuture[ReadResult]()

	r.mu.Lock()
	r.rCounter++
	rc := r.rCounter
	req := &wire.Message{Op: wire.OpRead, Key: r.key, RCounter: rc}
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpReadAck && m.Key == r.key && m.RCounter == rc
	}
	op := r.pl.Register(r.cfg.Majority(), filter, func(acks []protoutil.Ack, err error) {
		if err != nil {
			f.Resolve(ReadResult{}, fmt.Errorf("regular: read rc=%d: %w", rc, err))
			return
		}
		r.mu.Lock()
		r.rounds.Add(1)
		r.reads++
		r.mu.Unlock()
		_, best, _ := protoutil.MaxTimestamp(acks)
		f.Resolve(ReadResult{
			Value:      best.Msg.Cur.Clone(),
			Timestamp:  best.Msg.TS,
			RoundTrips: 1,
		}, nil)
	})
	err := protoutil.Broadcast(r.node, r.servers, req, r.tr)
	r.mu.Unlock()
	if err != nil {
		op.Abort(err)
		return nil, fmt.Errorf("regular: read rc=%d: %w", rc, err)
	}
	f.Bind(ctx, op)
	return f, nil
}

// Stats reports completed reads and total round-trips (equal: regular reads
// are fast).
func (r *Reader) Stats() (reads, roundTrips int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reads, r.rounds.Total()
}

// Close detaches the reader from the network.
func (r *Reader) Close() error { return r.node.Close() }
