package regular

import (
	"context"

	"fastread/internal/driver"
	"fastread/internal/transport"
)

// init registers the fast SWMR regular register with the driver registry.
func init() {
	driver.Register(driver.Driver{
		Name:     "regular",
		Validate: driver.MajorityValidate("regular"),
		NewServer: func(cfg driver.ServerConfig, node transport.Node) (driver.Server, error) {
			s, err := NewServer(cfg.ID, node, nil, cfg.Workers, cfg.Durable)
			if err != nil {
				return nil, err
			}
			s.SetQueueBound(cfg.QueueBound)
			return regularServerHandle{s}, nil
		},
		NewWriter: func(cfg driver.ClientConfig, node transport.Node) (driver.Writer, error) {
			w, err := NewKeyedWriter(cfg.Key, cfg.Quorum, cfg.Depth, node, nil)
			if err != nil {
				return nil, err
			}
			return driver.AdaptWriter(w), nil
		},
		NewReader: func(cfg driver.ClientConfig, node transport.Node) (driver.Reader, error) {
			r, err := NewKeyedReader(cfg.Key, cfg.Quorum, cfg.Depth, node, nil)
			if err != nil {
				return nil, err
			}
			r.SeedNonce(cfg.Nonce)
			return regularReaderHandle{r}, nil
		},
	})
}

// regularServerHandle adds the mutation counter the regular server does not
// track.
type regularServerHandle struct{ *Server }

func (regularServerHandle) TotalMutations() int64 { return 0 }

// regularReaderHandle adapts the regular reader to the uniform driver result.
type regularReaderHandle struct{ r *Reader }

func (h regularReaderHandle) Read(ctx context.Context) (driver.ReadResult, error) {
	res, err := h.r.Read(ctx)
	if err != nil {
		return driver.ReadResult{}, err
	}
	return regularResult(res), nil
}

func (h regularReaderHandle) ReadAsync(ctx context.Context) (driver.ReadFuture, error) {
	f, err := h.r.ReadAsync(ctx)
	if err != nil {
		return nil, err
	}
	return driver.ReadFutureOf(f, regularResult), nil
}

// regularResult adapts the regular reader's result to the uniform driver
// result.
func regularResult(res ReadResult) driver.ReadResult {
	return driver.ReadResult{Value: res.Value, Timestamp: res.Timestamp, RoundTrips: res.RoundTrips}
}

func (h regularReaderHandle) Stats() (reads, roundTrips, fallbacks int64) {
	r, t := h.r.Stats()
	return r, t, 0
}
