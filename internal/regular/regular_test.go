package regular

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fastread/internal/quorum"
	"fastread/internal/transport"
	"fastread/internal/types"
)

type deployment struct {
	t   *testing.T
	cfg quorum.Config
	net *transport.InMemNetwork
}

func newDeployment(t *testing.T, cfg quorum.Config) *deployment {
	t.Helper()
	d := &deployment{t: t, cfg: cfg, net: transport.NewInMemNetwork()}
	t.Cleanup(func() { _ = d.net.Close() })
	for i := 1; i <= cfg.Servers; i++ {
		node, err := d.net.Join(types.Server(i))
		if err != nil {
			t.Fatalf("join server %d: %v", i, err)
		}
		srv, err := NewServer(types.Server(i), node, nil, 0, nil)
		if err != nil {
			t.Fatalf("new server %d: %v", i, err)
		}
		srv.Start()
		t.Cleanup(srv.Stop)
	}
	return d
}

func (d *deployment) ctx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	d.t.Cleanup(cancel)
	return ctx
}

func (d *deployment) writer() *Writer {
	d.t.Helper()
	node, err := d.net.Join(types.Writer())
	if err != nil {
		d.t.Fatal(err)
	}
	w, err := NewWriter(d.cfg, node, nil)
	if err != nil {
		d.t.Fatal(err)
	}
	return w
}

func (d *deployment) reader(i int) *Reader {
	d.t.Helper()
	node, err := d.net.Join(types.Reader(i))
	if err != nil {
		d.t.Fatal(err)
	}
	r, err := NewReader(d.cfg, node, nil)
	if err != nil {
		d.t.Fatal(err)
	}
	return r
}

func TestWriteThenRead(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 10}
	d := newDeployment(t, cfg)
	w := d.writer()
	r := d.reader(1)

	res, err := r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.IsBottom() {
		t.Errorf("initial read = %s, want ⊥", res.Value)
	}
	if err := w.Write(d.ctx(), types.Value("v1")); err != nil {
		t.Fatal(err)
	}
	res, err = r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(types.Value("v1")) || res.Timestamp != 1 {
		t.Errorf("read = %s ts=%d, want v1 ts=1", res.Value, res.Timestamp)
	}
	if res.RoundTrips != 1 {
		t.Errorf("round trips = %d, want 1", res.RoundTrips)
	}
}

func TestRegularityAfterCompletedWrites(t *testing.T) {
	// With no concurrent writes, every read must return the last written
	// value (regularity).
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 3}
	d := newDeployment(t, cfg)
	w := d.writer()
	readers := []*Reader{d.reader(1), d.reader(2), d.reader(3)}
	for i := 1; i <= 10; i++ {
		val := types.Value(fmt.Sprintf("v%d", i))
		if err := w.Write(d.ctx(), val); err != nil {
			t.Fatal(err)
		}
		for ri, r := range readers {
			res, err := r.Read(d.ctx())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Value.Equal(val) {
				t.Fatalf("reader %d read %s after write of %s", ri+1, res.Value, val)
			}
		}
	}
}

func TestSupportsManyReadersAndMinorityCrash(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 20}
	d := newDeployment(t, cfg)
	w := d.writer()
	if err := w.Write(d.ctx(), types.Value("v1")); err != nil {
		t.Fatal(err)
	}
	d.net.Crash(types.Server(1))
	d.net.Crash(types.Server(2))
	for i := 1; i <= 20; i++ {
		r := d.reader(i)
		res, err := r.Read(d.ctx())
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		if !res.Value.Equal(types.Value("v1")) {
			t.Fatalf("reader %d read %s", i, res.Value)
		}
	}
}

func TestReadsAreAlwaysSingleRound(t *testing.T) {
	cfg := quorum.Config{Servers: 3, Faulty: 1, Readers: 1}
	d := newDeployment(t, cfg)
	w := d.writer()
	r := d.reader(1)
	for i := 0; i < 5; i++ {
		if err := w.Write(d.ctx(), types.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(d.ctx()); err != nil {
			t.Fatal(err)
		}
	}
	reads, rounds := r.Stats()
	if reads != 5 || rounds != 5 {
		t.Errorf("stats = %d/%d, want 5/5", reads, rounds)
	}
	writes, wRounds := w.Stats()
	if writes != 5 || wRounds != 5 {
		t.Errorf("writer stats = %d/%d, want 5/5", writes, wRounds)
	}
}

func TestNewOldInversionIsPossible(t *testing.T) {
	// This is the behaviour that distinguishes regular from atomic: with an
	// incomplete write present at a minority of servers, one reader may see
	// the new value while a later read by another reader (whose quorum
	// misses the updated servers) returns the old one. We engineer exactly
	// that schedule to document the weakness the paper's fast ATOMIC
	// algorithm eliminates.
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 2}
	d := newDeployment(t, cfg)
	w := d.writer()
	r1 := d.reader(1)
	r2 := d.reader(2)

	if err := w.Write(d.ctx(), types.Value("old")); err != nil {
		t.Fatal(err)
	}

	// The second write reaches only servers 1 and 2 (a minority), then
	// stalls: block the writer from the rest.
	for i := 3; i <= 5; i++ {
		d.net.Block(types.Writer(), types.Server(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_ = w.Write(ctx, types.Value("new")) // incomplete, by construction

	// Reader 1's quorum is forced to include server 1 (sees "new"): block r1
	// from servers 4 and 5 so its majority must contain servers 1..3.
	d.net.Block(types.Reader(1), types.Server(4))
	d.net.Block(types.Reader(1), types.Server(5))
	res1, err := r1.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}

	// Reader 2's quorum is forced to miss servers 1 and 2 (sees only "old").
	d.net.Block(types.Reader(2), types.Server(1))
	d.net.Block(types.Reader(2), types.Server(2))
	res2, err := r2.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}

	if !res1.Value.Equal(types.Value("new")) {
		t.Skipf("schedule did not produce the inversion precondition (r1 read %s)", res1.Value)
	}
	if !res2.Value.Equal(types.Value("old")) {
		t.Fatalf("expected new/old inversion under this schedule, but r2 read %s", res2.Value)
	}
	// res1 (earlier) returned "new" while res2 (later) returned "old":
	// allowed for a regular register, forbidden for an atomic one.
}

func TestConfigurationRejectedWithoutMajority(t *testing.T) {
	net := transport.NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	node, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quorum.Config{Servers: 2, Faulty: 1, Readers: 1}
	if _, err := NewWriter(cfg, node, nil); !errors.Is(err, ErrNotRegularizable) {
		t.Errorf("err = %v, want ErrNotRegularizable", err)
	}
	rNode, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(cfg, rNode, nil); !errors.Is(err, ErrNotRegularizable) {
		t.Errorf("err = %v, want ErrNotRegularizable", err)
	}
}

func TestValidation(t *testing.T) {
	cfg := quorum.Config{Servers: 3, Faulty: 1, Readers: 1}
	d := newDeployment(t, cfg)
	rNode, err := d.net.Join(types.Reader(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWriter(cfg, rNode, nil); !errors.Is(err, ErrNotWriter) {
		t.Errorf("err = %v, want ErrNotWriter", err)
	}
	w := d.writer()
	if err := w.Write(d.ctx(), types.Bottom()); !errors.Is(err, ErrBottomWrite) {
		t.Errorf("err = %v, want ErrBottomWrite", err)
	}
	if _, err := NewServer(types.Reader(1), rNode, nil, 0, nil); err == nil {
		t.Error("reader identity accepted as server")
	}
	wNode2, err := d.net.Join(types.Reader(10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(quorum.Config{}, wNode2, nil); err == nil {
		t.Error("invalid quorum accepted")
	}
}
