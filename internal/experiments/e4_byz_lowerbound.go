package experiments

import (
	"fmt"

	"fastread/internal/adversary"
	"fastread/internal/quorum"
	"fastread/internal/stats"
)

// RunE4 reproduces the arbitrary-failure lower bound (Proposition 10,
// Figure 6): the memory-loss construction is executed against the paper's
// Byzantine-tolerant algorithm on both sides of the S > (R+2)t + (R+1)b
// bound. Expected shape: a violation exactly when the bound is not met.
func RunE4(opts Options) ([]*stats.Table, error) {
	type scenario struct {
		servers, faulty, malicious, readers int
	}
	scenarios := []scenario{
		{7, 1, 1, 2}, // exactly at the bound: 7 = (2+2)·1 + 3·1
		{9, 1, 1, 2}, // within the bound
		{9, 1, 1, 3}, // at the bound with three readers: 9 ≤ 5+4
	}
	if !opts.Quick {
		scenarios = append(scenarios,
			scenario{12, 1, 1, 3}, // within the bound (12 > 9)
			scenario{11, 2, 1, 2}, // at/below the bound: 11 ≤ 8+3
			scenario{13, 2, 1, 2}, // within the bound: 13 > 11
		)
	}

	table := stats.NewTable(
		"E4 — executing the Proposition 10 schedule (malicious blocks lose their memory towards r1)",
		"S", "t", "b", "R", "fast possible (S>(R+2)t+(R+1)b)", "rR read", "r1 final read", "atomicity violated", "matches paper",
	)
	table.AddNote("readers run the paper's Figure 5 algorithm with writer signatures; the adversary controls b·(R+1) malicious servers")

	for _, sc := range scenarios {
		cfg := quorum.Config{Servers: sc.servers, Faulty: sc.faulty, Malicious: sc.malicious, Readers: sc.readers}
		res, err := adversary.RunByzantineConstruction(cfg, adversary.ReaderPaper)
		if err != nil {
			return nil, fmt.Errorf("e4: %+v: %w", sc, err)
		}
		matches := res.Violation == !res.BoundSatisfied
		table.AddRow(
			sc.servers, sc.faulty, sc.malicious, sc.readers,
			yesNo(res.BoundSatisfied),
			fmt.Sprintf("ts=%d", res.LastReaderTS),
			fmt.Sprintf("ts=%d", res.FirstReaderTS),
			yesNo(res.Violation),
			checkMark(matches),
		)
	}
	return []*stats.Table{table}, nil
}
