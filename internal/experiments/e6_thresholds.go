package experiments

import (
	"fmt"

	"fastread/internal/adversary"
	"fastread/internal/quorum"
	"fastread/internal/stats"
)

// RunE6 reproduces the Section 9 summary: the exact resilience thresholds.
// For a sweep of (S, t, b) it tabulates the closed-form maximum number of
// readers that still admits a fast implementation, and — for a subset of
// rows — cross-validates the boundary empirically: the adversarial schedule
// is harmless at R = maxR and produces a violation at R = maxR + 1.
func RunE6(opts Options) ([]*stats.Table, error) {
	closedForm := stats.NewTable(
		"E6a — closed-form resilience bounds (Section 9)",
		"S", "t", "b", "max fast readers", "min servers for R=2", "regular register fast?",
	)
	type row struct {
		s, t, b int
	}
	var rows []row
	for _, s := range []int{4, 5, 7, 10, 13, 16, 25} {
		rows = append(rows, row{s, 1, 0})
		if s >= 7 {
			rows = append(rows, row{s, 2, 0})
		}
		if s >= 10 {
			rows = append(rows, row{s, 2, 1})
		}
		if s >= 13 {
			rows = append(rows, row{s, 3, 2})
		}
	}
	for _, r := range rows {
		cfg := quorum.Config{Servers: r.s, Faulty: r.t, Malicious: r.b, Readers: 2}
		maxR := quorum.MaxFastReaders(r.s, r.t, r.b)
		maxRStr := fmt.Sprint(maxR)
		if maxR < 0 {
			maxRStr = "none"
		}
		closedForm.AddRow(
			r.s, r.t, r.b, maxRStr,
			quorum.MinServersForFast(2, r.t, r.b),
			yesNo(cfg.FastRegularPossible()),
		)
	}
	closedForm.AddNote("max fast readers = largest R with S > (R+2)t + (R+1)b; with b=0 this is ⌈S/t⌉−3 rounded per the strict inequality R < S/t − 2")

	empirical := stats.NewTable(
		"E6b — empirical cross-validation of the boundary (adversarial schedule at R = maxR and R = maxR+1)",
		"S", "t", "b", "maxR", "violation at R=maxR", "violation at R=maxR+1", "matches paper",
	)
	type boundaryCase struct {
		s, t, b int
	}
	cases := []boundaryCase{{8, 1, 0}, {7, 1, 0}}
	if !opts.Quick {
		cases = append(cases, boundaryCase{10, 2, 0}, boundaryCase{13, 1, 1}, boundaryCase{13, 1, 0})
	}
	for _, c := range cases {
		maxR := quorum.MaxFastReaders(c.s, c.t, c.b)
		if maxR < 2 {
			// The executable construction needs at least two readers.
			continue
		}
		runOnce := func(readers int) (bool, error) {
			cfg := quorum.Config{Servers: c.s, Faulty: c.t, Malicious: c.b, Readers: readers}
			if c.b == 0 {
				res, err := adversary.RunCrashConstruction(cfg, adversary.ReaderPaper)
				if err != nil {
					return false, err
				}
				return res.Violation, nil
			}
			res, err := adversary.RunByzantineConstruction(cfg, adversary.ReaderPaper)
			if err != nil {
				return false, err
			}
			return res.Violation, nil
		}
		atBound, err := runOnce(maxR)
		if err != nil {
			return nil, fmt.Errorf("e6: S=%d t=%d b=%d R=%d: %w", c.s, c.t, c.b, maxR, err)
		}
		beyond, err := runOnce(maxR + 1)
		if err != nil {
			return nil, fmt.Errorf("e6: S=%d t=%d b=%d R=%d: %w", c.s, c.t, c.b, maxR+1, err)
		}
		empirical.AddRow(c.s, c.t, c.b, maxR, yesNo(atBound), yesNo(beyond), checkMark(!atBound && beyond))
	}
	empirical.AddNote("the paper predicts: no violation while R ≤ maxR, violation for R = maxR+1")

	return []*stats.Table{closedForm, empirical}, nil
}
