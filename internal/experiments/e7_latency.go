package experiments

import (
	"fmt"
	"time"

	"fastread"
	"fastread/internal/atomicity"
	"fastread/internal/stats"
	"fastread/internal/workload"
)

// RunE7 reproduces the time-complexity comparison the paper draws in its
// introduction and in Section 8: under a uniform per-message network delay,
// the fast atomic read and the regular read cost one round-trip (≈ 2·delay),
// the ABD atomic read costs two (≈ 4·delay), and the max-min read costs one
// client round-trip that hides an extra server-to-server hop (≈ 3·delay).
// Absolute numbers depend on the machine; the shape (ordering and ratios) is
// what the paper predicts.
func RunE7(opts Options) ([]*stats.Table, error) {
	delay := opts.delay()
	sizes := []int{4, 8}
	if !opts.Quick {
		sizes = append(sizes, 16, 32)
	}

	table := stats.NewTable(
		fmt.Sprintf("E7 — read latency with a uniform one-way message delay of %v", delay),
		"S", "t", "R", "protocol", "rounds/read", "read p50", "read p95", "vs fast", "atomic", "semantics",
	)
	table.AddNote("fast and regular are one round-trip; max-min adds a server-to-server hop; ABD needs a second client round-trip")

	reads := opts.scale(20, 6)
	writes := opts.scale(5, 2)

	for _, s := range sizes {
		faulty := 1
		readers := 1
		protocols := []struct {
			p         fastread.Protocol
			semantics string
		}{
			{fastread.ProtocolFast, "atomic"},
			{fastread.ProtocolABD, "atomic"},
			{fastread.ProtocolMaxMin, "atomic"},
			{fastread.ProtocolRegular, "regular"},
		}
		var fastMedian time.Duration
		for _, proto := range protocols {
			cluster, err := fastread.NewCluster(fastread.Config{
				Servers:      s,
				Faulty:       faulty,
				Readers:      readers,
				Protocol:     proto.p,
				NetworkDelay: delay,
				Seed:         opts.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("e7: S=%d %v: %w", s, proto.p, err)
			}
			ctx, cancel := runContext()
			result, err := workload.Run(ctx, workload.Config{
				Writes:         writes,
				ReadsPerReader: reads,
			}, clusterClients(cluster))
			cancel()
			if err != nil {
				_ = cluster.Close()
				return nil, fmt.Errorf("e7: workload S=%d %v: %w", s, proto.p, err)
			}
			cstats := cluster.Stats()
			_ = cluster.Close()

			report, err := atomicity.CheckSWMR(result.History)
			if err != nil {
				return nil, err
			}
			atomicOK := report.OK
			if proto.p == fastread.ProtocolRegular {
				// Regular registers only promise regularity; check that
				// instead, and report atomicity as not applicable.
				regReport, err := atomicity.CheckRegular(result.History)
				if err != nil {
					return nil, err
				}
				atomicOK = regReport.OK
			}

			if proto.p == fastread.ProtocolFast {
				fastMedian = result.ReadLatency.Median
			}
			table.AddRow(
				s, faulty, readers, proto.p.String(),
				cstats.ReadRoundsPerOp,
				result.ReadLatency.Median, result.ReadLatency.P95,
				formatRatio(result.ReadLatency.Median, fastMedian),
				yesNo(atomicOK),
				proto.semantics,
			)
		}
	}
	return []*stats.Table{table}, nil
}
