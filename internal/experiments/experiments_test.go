package experiments

import (
	"strings"
	"testing"
	"time"
)

func quickOpts() Options {
	return Options{Quick: true, Seed: 1, Delay: 200 * time.Microsecond}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("registry has %d experiments, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, ok := ByID(e.ID); !ok {
			t.Errorf("ByID(%s) not found", e.ID)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID accepted an unknown id")
	}
	if len(IDs()) != 8 {
		t.Error("IDs() length mismatch")
	}
}

func TestE1FastReadsUnderCrash(t *testing.T) {
	tables, err := RunE1(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tbl := tables[0]
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d, want ≥ 4", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		// rounds/read column must be exactly 1 and atomic must be yes.
		if row[6] != "1" {
			t.Errorf("rounds/read = %q, want 1 (row %v)", row[6], row)
		}
		if row[8] != "yes" {
			t.Errorf("atomic = %q, want yes (row %v)", row[8], row)
		}
	}
}

func TestE2CrashLowerBound(t *testing.T) {
	tables, err := RunE2(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "✓" {
			t.Errorf("row does not match the paper's prediction: %v", row)
		}
	}
}

func TestE3Byzantine(t *testing.T) {
	tables, err := RunE3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[8] != "no" {
			t.Errorf("a forged value was returned: %v", row)
		}
		if row[9] != "yes" {
			t.Errorf("history not atomic under attack: %v", row)
		}
	}
}

func TestE4ByzantineLowerBound(t *testing.T) {
	tables, err := RunE4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "✓" {
			t.Errorf("row does not match the paper's prediction: %v", row)
		}
	}
}

func TestE5MWMR(t *testing.T) {
	tables, err := RunE5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows)%2 != 0 || len(rows) == 0 {
		t.Fatalf("expected paired rows, got %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		naive, abd := rows[i], rows[i+1]
		if naive[5] != "no" {
			t.Errorf("naive fast MWMR unexpectedly linearizable: %v", naive)
		}
		if abd[5] != "yes" {
			t.Errorf("ABD MWMR unexpectedly non-linearizable: %v", abd)
		}
		if abd[4] != "first-writer" {
			t.Errorf("ABD read returned %q, want the later write", abd[4])
		}
	}
}

func TestE6Thresholds(t *testing.T) {
	tables, err := RunE6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d, want 2", len(tables))
	}
	if len(tables[0].Rows) == 0 || len(tables[1].Rows) == 0 {
		t.Fatal("empty tables")
	}
	for _, row := range tables[1].Rows {
		if row[len(row)-1] != "✓" {
			t.Errorf("boundary row does not match prediction: %v", row)
		}
	}
}

func TestE7Latency(t *testing.T) {
	tables, err := RunE7(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// Group rows by S and check the shape: ABD slower than fast.
	var fastP50, abdP50 time.Duration
	for _, row := range tbl.Rows {
		if row[0] != "4" {
			continue
		}
		p50, perr := time.ParseDuration(row[5])
		if perr != nil {
			t.Fatalf("cannot parse latency %q: %v", row[5], perr)
		}
		switch row[3] {
		case "fast":
			fastP50 = p50
		case "abd":
			abdP50 = p50
		}
		if row[8] != "yes" {
			t.Errorf("protocol %s history flagged: %v", row[3], row)
		}
	}
	if fastP50 == 0 || abdP50 == 0 {
		t.Fatal("missing fast/abd rows for S=4")
	}
	if abdP50 <= fastP50 {
		t.Errorf("ABD read p50 %v not above fast read p50 %v", abdP50, fastP50)
	}
}

func TestE8ReadsMustWrite(t *testing.T) {
	tables, err := RunE8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	byProto := map[string][]string{}
	for _, row := range tbl.Rows {
		byProto[row[0]] = row
	}
	if byProto["fast"][4] == "0" {
		t.Error("fast reads should mutate server state (seen sets / counters)")
	}
	if byProto["abd"][6] == "0" {
		t.Error("ABD reads should need extra round-trips")
	}
	if byProto["fast"][6] != "0" || byProto["regular"][6] != "0" {
		t.Error("fast and regular reads should need no extra round-trips")
	}
}

func TestTablesRenderMarkdown(t *testing.T) {
	tables, err := RunE5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	md := tables[0].Markdown()
	if !strings.Contains(md, "| S |") && !strings.Contains(md, "| S | t |") {
		t.Errorf("markdown missing header:\n%s", md)
	}
}

func TestOptionsHelpers(t *testing.T) {
	var o Options
	if o.delay() != time.Millisecond {
		t.Errorf("default delay = %v", o.delay())
	}
	o.Quick = true
	if o.delay() != 200*time.Microsecond {
		t.Errorf("quick delay = %v", o.delay())
	}
	o.Delay = 5 * time.Millisecond
	if o.delay() != 5*time.Millisecond {
		t.Errorf("explicit delay = %v", o.delay())
	}
	if o.scale(100, 10) != 10 {
		t.Error("quick scale wrong")
	}
	o.Quick = false
	if o.scale(100, 10) != 100 {
		t.Error("full scale wrong")
	}
	if yesNo(true) != "yes" || yesNo(false) != "no" {
		t.Error("yesNo wrong")
	}
	if checkMark(true) != "✓" || checkMark(false) != "✗" {
		t.Error("checkMark wrong")
	}
	if formatRatio(2, 0) != "n/a" {
		t.Error("formatRatio division by zero not guarded")
	}
}
