package experiments

import (
	"fmt"

	"fastread/internal/adversary"
	"fastread/internal/quorum"
	"fastread/internal/stats"
)

// RunE2 reproduces the crash-model lower bound (Proposition 5, Figures 3/4):
// the proof's partial-run schedule is executed against (a) the paper's own
// algorithm and (b) the naive predicate-less fast reader, across
// configurations on both sides of the R < S/t − 2 bound. The expected shape:
// the paper's algorithm violates atomicity exactly when the bound is not
// met; the naive reader violates it as soon as there are two readers.
func RunE2(opts Options) ([]*stats.Table, error) {
	type scenario struct {
		servers, faulty, readers int
	}
	scenarios := []scenario{
		{4, 1, 2},  // exactly at the bound: R = S/t − 2
		{5, 1, 3},  // at the bound with three readers
		{7, 1, 2},  // within the bound (R < 5)
		{10, 2, 3}, // at the bound: 10 ≤ (3+2)*2
	}
	if !opts.Quick {
		scenarios = append(scenarios,
			scenario{6, 2, 2},  // beyond the bound with t=2
			scenario{13, 2, 4}, // within the bound (4 < 4.5)
			scenario{9, 1, 4},  // within the bound (4 < 7)
			scenario{8, 2, 2},  // exactly at the bound
		)
	}

	table := stats.NewTable(
		"E2 — executing the Proposition 5 schedule (partial runs wr, pr_i, ◇pr_i, prA..prC)",
		"S", "t", "R", "fast possible (R<S/t−2)", "reader", "rR read", "r1 final read", "atomicity violated", "matches paper",
	)
	table.AddNote("the paper predicts a violation for its algorithm exactly when fast reads are impossible; the naive reader (no seen predicate) is expected to fail whenever R ≥ 2")

	for _, sc := range scenarios {
		cfg := quorum.Config{Servers: sc.servers, Faulty: sc.faulty, Readers: sc.readers}
		for _, kind := range []adversary.ReaderKind{adversary.ReaderPaper, adversary.ReaderNaive} {
			res, err := adversary.RunCrashConstruction(cfg, kind)
			if err != nil {
				return nil, fmt.Errorf("e2: %v %v: %w", sc, kind, err)
			}
			expectViolation := true
			if kind == adversary.ReaderPaper {
				expectViolation = !res.BoundSatisfied
			}
			matches := res.Violation == expectViolation
			table.AddRow(
				sc.servers, sc.faulty, sc.readers,
				yesNo(res.BoundSatisfied),
				kind.String(),
				fmt.Sprintf("ts=%d", res.LastReaderTS),
				fmt.Sprintf("ts=%d", res.FirstReaderTS),
				yesNo(res.Violation),
				checkMark(matches),
			)
		}
	}
	return []*stats.Table{table}, nil
}
