package experiments

import (
	"fmt"

	"fastread/internal/adversary"
	"fastread/internal/quorum"
	"fastread/internal/stats"
)

// RunE5 reproduces the multi-writer impossibility (Proposition 11,
// Figure 7): with two writers, a register whose writes skip the timestamp
// query phase (and are therefore fast) orders writes by writer rank instead
// of real time and fails linearizability, whereas the two-round ABD MWMR
// register passes under the same schedule. This is the executable
// counterpart of the proof's run-interchange argument.
func RunE5(opts Options) ([]*stats.Table, error) {
	sizes := []int{3, 5}
	if !opts.Quick {
		sizes = append(sizes, 7, 9)
	}

	table := stats.NewTable(
		"E5 — multi-writer registers: fast (one-round) writes vs ABD (two-round) writes",
		"S", "t", "register", "write rounds", "read returns", "linearizable",
	)
	table.AddNote("schedule: writer 2 writes, then writer 1 writes, then a reader reads; the later write must win")

	for _, s := range sizes {
		cfg := quorum.Config{Servers: s, Faulty: (s - 1) / 2, Readers: 3}
		res, err := adversary.RunMWMRDemonstration(cfg)
		if err != nil {
			return nil, fmt.Errorf("e5: S=%d: %w", s, err)
		}
		naiveValue := "⊥"
		if reads := res.NaiveHistory.Reads(); len(reads) > 0 && !reads[len(reads)-1].Result.IsBottom() {
			naiveValue = string(reads[len(reads)-1].Result)
		}
		abdValue := "⊥"
		if reads := res.ABDHistory.Reads(); len(reads) > 0 && !reads[len(reads)-1].Result.IsBottom() {
			abdValue = string(reads[len(reads)-1].Result)
		}
		table.AddRow(s, cfg.Faulty, "naive fast MWMR", 1, naiveValue, yesNo(res.NaiveReport.OK))
		table.AddRow(s, cfg.Faulty, "ABD MWMR", 2, abdValue, yesNo(res.ABDReport.OK))
	}
	return []*stats.Table{table}, nil
}
