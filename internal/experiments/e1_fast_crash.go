package experiments

import (
	"fmt"

	"fastread"
	"fastread/internal/atomicity"
	"fastread/internal/fault"
	"fastread/internal/quorum"
	"fastread/internal/stats"
	"fastread/internal/types"
	"fastread/internal/workload"
)

// RunE1 reproduces the claim of Section 4 (algorithm of Figure 2): for every
// configuration with R < S/t − 2, a concurrent workload with t servers
// crashing mid-run completes every read and every write in exactly one
// round-trip, and the recorded history satisfies the four atomicity
// conditions of Section 3.1.
func RunE1(opts Options) ([]*stats.Table, error) {
	type scenario struct {
		servers, faulty, readers int
	}
	scenarios := []scenario{
		{4, 1, 1},
		{7, 1, 2},
		{10, 2, 2},
		{13, 3, 2},
	}
	if !opts.Quick {
		scenarios = append(scenarios, scenario{16, 2, 5}, scenario{25, 3, 5})
	}

	table := stats.NewTable(
		"E1 — fast crash-tolerant register: every operation is one round-trip and the history is atomic",
		"S", "t", "R", "writes", "reads", "crashes", "rounds/read", "rounds/write", "atomic", "read p50", "read p99",
	)
	table.AddNote("workload: concurrent writer and R readers; t servers crash mid-run; values are unique per write")

	for _, sc := range scenarios {
		cfg := quorum.Config{Servers: sc.servers, Faulty: sc.faulty, Readers: sc.readers}
		if !cfg.FastReadPossible() {
			return nil, fmt.Errorf("e1: scenario %v violates the fast-read bound", sc)
		}
		cluster, err := fastread.NewCluster(fastread.Config{
			Servers:  sc.servers,
			Faulty:   sc.faulty,
			Readers:  sc.readers,
			Protocol: fastread.ProtocolFast,
			Seed:     opts.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("e1: cluster %v: %w", sc, err)
		}

		writes := opts.scale(60, 12)
		reads := opts.scale(80, 15)
		// Crash t servers spread over the run.
		var events []fault.CrashEvent
		for i := 0; i < sc.faulty; i++ {
			events = append(events, fault.CrashEvent{
				Server:   types.Server(sc.servers - i),
				AfterOps: (i + 1) * writes / (sc.faulty + 1),
			})
		}
		schedule := fault.NewCrashSchedule(events...)

		// The crash schedule needs the in-memory network; fail loudly rather
		// than silently running a fault-free experiment on a backend without
		// fault injection.
		net, err := cluster.Network()
		if err != nil {
			_ = cluster.Close()
			return nil, fmt.Errorf("e1: %w", err)
		}

		ctx, cancel := runContext()
		result, err := workload.Run(ctx, workload.Config{
			Writes:         writes,
			ReadsPerReader: reads,
			Crashes:        schedule,
			CrashFn:        func(p types.ProcessID) { net.Crash(p) },
		}, clusterClients(cluster))
		cancel()
		if err != nil {
			_ = cluster.Close()
			return nil, fmt.Errorf("e1: workload %v: %w", sc, err)
		}

		report, err := atomicity.CheckSWMR(result.History)
		if err != nil {
			_ = cluster.Close()
			return nil, fmt.Errorf("e1: check %v: %w", sc, err)
		}
		clusterStats := cluster.Stats()
		_ = cluster.Close()

		table.AddRow(
			sc.servers, sc.faulty, sc.readers,
			result.CompletedWrites, result.CompletedReads, len(events),
			clusterStats.ReadRoundsPerOp, clusterStats.WriteRoundsPerOp,
			yesNo(report.OK),
			result.ReadLatency.Median, result.ReadLatency.P99,
		)
		if !report.OK {
			table.AddNote("UNEXPECTED violation for %v: %s", sc, report)
		}
	}
	return []*stats.Table{table}, nil
}
