package experiments

import (
	"context"
	"fmt"

	"fastread/internal/atomicity"
	"fastread/internal/core"
	"fastread/internal/fault"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/stats"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/workload"
)

// byzDeployment is a register deployment in which the last b servers run a
// malicious behaviour instead of the honest protocol.
type byzDeployment struct {
	cfg     quorum.Config
	net     *transport.InMemNetwork
	honest  []*core.Server
	badness []*fault.ByzantineServer
	writer  *core.Writer
	readers []*core.Reader
}

// newByzDeployment builds the deployment. Behaviours are assigned round-robin
// to the malicious servers.
func newByzDeployment(cfg quorum.Config, behaviors []fault.Behavior, seed int64) (*byzDeployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &byzDeployment{cfg: cfg, net: transport.NewInMemNetwork(transport.WithSeed(seed))}
	keys := sig.MustKeyPair()
	forger := sig.MustKeyPair()

	for i := 1; i <= cfg.Servers; i++ {
		id := types.Server(i)
		node, err := d.net.Join(id)
		if err != nil {
			d.Close()
			return nil, err
		}
		if i > cfg.Servers-cfg.Malicious {
			behavior := behaviors[(i-1)%len(behaviors)]
			srv, err := fault.NewByzantineServer(fault.ByzantineConfig{
				ID:         id,
				Behavior:   behavior,
				Readers:    cfg.Readers,
				Victim:     types.Reader(1),
				ForgerKeys: &forger,
			}, node)
			if err != nil {
				d.Close()
				return nil, err
			}
			srv.Start()
			d.badness = append(d.badness, srv)
			continue
		}
		srv, err := core.NewServer(core.ServerConfig{
			ID:        id,
			Readers:   cfg.Readers,
			Byzantine: true,
			Verifier:  keys.Verifier,
		}, node)
		if err != nil {
			d.Close()
			return nil, err
		}
		srv.Start()
		d.honest = append(d.honest, srv)
	}

	wNode, err := d.net.Join(types.Writer())
	if err != nil {
		d.Close()
		return nil, err
	}
	d.writer, err = core.NewWriter(core.WriterConfig{Quorum: cfg, Byzantine: true, Signer: keys.Signer}, wNode)
	if err != nil {
		d.Close()
		return nil, err
	}
	for i := 1; i <= cfg.Readers; i++ {
		rNode, err := d.net.Join(types.Reader(i))
		if err != nil {
			d.Close()
			return nil, err
		}
		reader, err := core.NewReader(core.ReaderConfig{Quorum: cfg, Byzantine: true, Verifier: keys.Verifier}, rNode)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.readers = append(d.readers, reader)
	}
	return d, nil
}

// clients exposes the deployment to the workload driver.
func (d *byzDeployment) clients() workload.Clients {
	clients := workload.Clients{
		Writer: workload.WriterFunc(func(ctx context.Context, v types.Value) error {
			return d.writer.Write(ctx, v)
		}),
	}
	for _, r := range d.readers {
		reader := r
		clients.Readers = append(clients.Readers, workload.ReaderFunc(
			func(ctx context.Context) (types.Value, types.Timestamp, int, error) {
				res, err := reader.Read(ctx)
				if err != nil {
					return nil, 0, 0, err
				}
				return res.Value, res.Timestamp, res.RoundTrips, nil
			}))
	}
	return clients
}

// roundsPerRead averages the per-reader round-trip counters.
func (d *byzDeployment) roundsPerRead() float64 {
	var reads, rounds int64
	for _, r := range d.readers {
		rd, ro, _ := r.Stats()
		reads += rd
		rounds += ro
	}
	if reads == 0 {
		return 0
	}
	return float64(rounds) / float64(reads)
}

// Close tears the deployment down.
func (d *byzDeployment) Close() {
	for _, s := range d.honest {
		s.Stop()
	}
	for _, s := range d.badness {
		s.Stop()
	}
	_ = d.net.Close()
}

// RunE3 reproduces the Section 6.1 claim (algorithm of Figure 5): with
// S > (R+2)t + (R+1)b, a workload in which b servers actively misbehave
// (forged timestamps, stale replays, memory loss, inflated seen sets) still
// completes every read in one round-trip with an atomic history and never
// returns a value the writer did not write.
func RunE3(opts Options) ([]*stats.Table, error) {
	type scenario struct {
		servers, faulty, malicious, readers int
		behaviors                           []fault.Behavior
		label                               string
	}
	scenarios := []scenario{
		{8, 1, 1, 1, []fault.Behavior{fault.BehaviorForgeTimestamp}, "forged timestamps"},
		{8, 1, 1, 1, []fault.Behavior{fault.BehaviorStaleReplay}, "stale replay"},
		{11, 1, 1, 2, []fault.Behavior{fault.BehaviorMemoryLoss}, "memory loss vs r1"},
		{11, 1, 1, 2, []fault.Behavior{fault.BehaviorInflateSeen}, "inflated seen sets"},
	}
	if !opts.Quick {
		scenarios = append(scenarios,
			scenario{14, 2, 2, 1, []fault.Behavior{fault.BehaviorForgeTimestamp, fault.BehaviorMute}, "forgery + mute"},
			scenario{17, 2, 2, 2, []fault.Behavior{fault.BehaviorStaleReplay, fault.BehaviorInflateSeen}, "replay + inflated seen"},
		)
	}

	table := stats.NewTable(
		"E3 — fast Byzantine-tolerant register under active attack (S > (R+2)t + (R+1)b)",
		"S", "t", "b", "R", "attack", "writes", "reads", "rounds/read", "forged value returned", "atomic",
	)
	table.AddNote("the malicious servers use a signing key that is not the writer's; unforgeability makes their forgeries detectable")

	for _, sc := range scenarios {
		cfg := quorum.Config{Servers: sc.servers, Faulty: sc.faulty, Malicious: sc.malicious, Readers: sc.readers}
		if !cfg.FastReadPossible() {
			return nil, fmt.Errorf("e3: scenario %+v violates the Byzantine bound", sc)
		}
		d, err := newByzDeployment(cfg, sc.behaviors, opts.Seed)
		if err != nil {
			return nil, fmt.Errorf("e3: deployment %+v: %w", sc, err)
		}

		ctx, cancel := runContext()
		result, err := workload.Run(ctx, workload.Config{
			Writes:         opts.scale(40, 10),
			ReadsPerReader: opts.scale(60, 12),
		}, d.clients())
		cancel()
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("e3: workload %+v: %w", sc, err)
		}

		report, err := atomicity.CheckSWMR(result.History)
		if err != nil {
			d.Close()
			return nil, err
		}
		forgedReturned := false
		for _, op := range result.History.Reads() {
			if string(op.Result) == "forged-value" || string(op.Result) == "forged-prev" {
				forgedReturned = true
			}
		}
		rounds := d.roundsPerRead()
		d.Close()

		table.AddRow(
			sc.servers, sc.faulty, sc.malicious, sc.readers, sc.label,
			result.CompletedWrites, result.CompletedReads,
			rounds, yesNo(forgedReturned), yesNo(report.OK),
		)
		if !report.OK {
			table.AddNote("UNEXPECTED violation for %+v: %s", sc, report)
		}
	}
	return []*stats.Table{table}, nil
}
