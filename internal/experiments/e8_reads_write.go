package experiments

import (
	"context"
	"fmt"

	"fastread"
	"fastread/internal/stats"
)

// RunE8 quantifies the Section 8 discussion of the folklore theorem that
// "atomic reads must write". In a message-passing system a fast read does
// modify server state — every server that answers it updates its seen set
// and per-reader counter — but it does so within the single round-trip the
// read already needs, instead of the dedicated write-back round the ABD read
// performs. The experiment counts server-state mutations per read for the
// fast register, the ABD register and the regular register (whose reads
// leave no protocol state behind beyond the reply).
func RunE8(opts Options) ([]*stats.Table, error) {
	table := stats.NewTable(
		"E8 — server-state mutations caused by reads (the sense in which atomic reads \"write\")",
		"protocol", "S", "t", "reads", "server mutations attributable to reads", "mutations/read", "extra round-trips for reads",
	)
	table.AddNote("fast reads piggyback their state update (seen sets, counters) on the single round-trip; ABD reads pay a dedicated write-back round; regular reads leave no state behind")

	const servers, faulty, readers = 5, 1, 1
	readCount := opts.scale(50, 10)

	for _, proto := range []fastread.Protocol{fastread.ProtocolFast, fastread.ProtocolABD, fastread.ProtocolRegular} {
		cluster, err := fastread.NewCluster(fastread.Config{
			Servers:  servers,
			Faulty:   faulty,
			Readers:  readers,
			Protocol: proto,
			Seed:     opts.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("e8: %v: %w", proto, err)
		}
		ctx, cancel := runContext()
		// One write so reads have something to observe, then measure the
		// mutation counter across a block of reads.
		if err := cluster.Writer().Write(ctx, []byte("baseline")); err != nil {
			cancel()
			_ = cluster.Close()
			return nil, fmt.Errorf("e8: %v write: %w", proto, err)
		}
		before := cluster.Stats()
		reader, err := cluster.Reader(1)
		if err != nil {
			cancel()
			_ = cluster.Close()
			return nil, err
		}
		extraRounds := 0
		for i := 0; i < readCount; i++ {
			res, err := readOnce(ctx, reader)
			if err != nil {
				cancel()
				_ = cluster.Close()
				return nil, fmt.Errorf("e8: %v read %d: %w", proto, i, err)
			}
			extraRounds += res.RoundTrips - 1
		}
		after := cluster.Stats()
		cancel()
		_ = cluster.Close()

		mutations := after.ServerMutations - before.ServerMutations
		table.AddRow(
			proto.String(), servers, faulty, readCount,
			mutations,
			float64(mutations)/float64(readCount),
			extraRounds,
		)
	}
	return []*stats.Table{table}, nil
}

// readOnce performs a single read through the façade.
func readOnce(ctx context.Context, r fastread.Reader) (fastread.ReadResult, error) {
	return r.Read(ctx)
}
