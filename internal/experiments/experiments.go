// Package experiments contains one driver per reproduced paper artifact
// (DESIGN.md §4, EXPERIMENTS.md). Each driver returns text tables so that
// cmd/fastbench and the recorded results in EXPERIMENTS.md show identical
// rows.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fastread"
	"fastread/internal/stats"
	"fastread/internal/types"
	"fastread/internal/workload"
)

// Options tunes every experiment.
type Options struct {
	// Quick shrinks workloads and sweeps so the whole suite runs in seconds;
	// used by tests. The full-size runs are what EXPERIMENTS.md records.
	Quick bool
	// Seed seeds deterministic parts of the workloads.
	Seed int64
	// Delay is the per-message one-way delay used by the latency experiments
	// (E7); zero selects a default of 1ms (200µs in Quick mode).
	Delay time.Duration
}

// delay returns the effective per-message delay.
func (o Options) delay() time.Duration {
	if o.Delay > 0 {
		return o.Delay
	}
	if o.Quick {
		return 200 * time.Microsecond
	}
	return time.Millisecond
}

// scale multiplies a full-size count down in Quick mode.
func (o Options) scale(full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

// Experiment couples an identifier with its driver.
type Experiment struct {
	// ID is the experiment identifier used in DESIGN.md and EXPERIMENTS.md
	// (E1..E8).
	ID string
	// Title is a one-line description.
	Title string
	// Paper names the paper artifact the experiment reproduces.
	Paper string
	// Run executes the experiment.
	Run func(Options) ([]*stats.Table, error)
}

// All returns every experiment in order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "E1",
			Title: "Fast reads and writes under crash failures",
			Paper: "Figure 2, Section 4",
			Run:   RunE1,
		},
		{
			ID:    "E2",
			Title: "Crash-model lower bound construction",
			Paper: "Figures 1, 3, 4; Proposition 5",
			Run:   RunE2,
		},
		{
			ID:    "E3",
			Title: "Fast reads under arbitrary (Byzantine) failures",
			Paper: "Figure 5, Section 6.1",
			Run:   RunE3,
		},
		{
			ID:    "E4",
			Title: "Byzantine lower bound construction",
			Paper: "Figure 6, Proposition 10",
			Run:   RunE4,
		},
		{
			ID:    "E5",
			Title: "Multi-writer impossibility",
			Paper: "Figure 7, Proposition 11",
			Run:   RunE5,
		},
		{
			ID:    "E6",
			Title: "Exact resilience thresholds",
			Paper: "Section 9 summary",
			Run:   RunE6,
		},
		{
			ID:    "E7",
			Title: "Read latency: fast vs ABD vs max-min vs regular",
			Paper: "Sections 1 and 8 comparison",
			Run:   RunE7,
		},
		{
			ID:    "E8",
			Title: "\"Atomic reads must write\": server-state mutations per read",
			Paper: "Section 8 discussion",
			Run:   RunE8,
		},
	}
}

// ByID returns the experiment with the given identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}

// clusterWriter adapts a façade writer to the workload interface.
func clusterWriter(w fastread.Writer) workload.Writer {
	return workload.WriterFunc(func(ctx context.Context, v types.Value) error {
		return w.Write(ctx, v)
	})
}

// clusterReader adapts a façade reader to the workload interface.
func clusterReader(r fastread.Reader) workload.Reader {
	return workload.ReaderFunc(func(ctx context.Context) (types.Value, types.Timestamp, int, error) {
		res, err := r.Read(ctx)
		if err != nil {
			return nil, 0, 0, err
		}
		return types.Value(res.Value), types.Timestamp(res.Version), res.RoundTrips, nil
	})
}

// clusterClients builds workload clients for every reader of a cluster.
func clusterClients(c *fastread.Cluster) workload.Clients {
	clients := workload.Clients{Writer: clusterWriter(c.Writer())}
	for _, r := range c.Readers() {
		clients.Readers = append(clients.Readers, clusterReader(r))
	}
	return clients
}

// yesNo renders a boolean for table cells.
func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// checkMark renders expectation matches.
func checkMark(b bool) string {
	if b {
		return "✓"
	}
	return "✗"
}

// runContext returns the bounded context experiments run under.
func runContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Minute)
}

// formatRatio renders a ratio with two decimals, guarding against division by
// zero.
func formatRatio(num, den time.Duration) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", float64(num)/float64(den))
}
