// Package types defines the process identities, timestamps and register
// values shared by every protocol implementation in this repository.
//
// The model follows Section 2 of "How Fast can a Distributed Atomic Read
// be?" (Dutta, Guerraoui, Levy, Vukolić; PODC 2004): the system consists of
// three disjoint sets of processes — a single writer w, R readers r1..rR and
// S servers s1..sS — communicating over reliable asynchronous point-to-point
// channels.
package types

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Role identifies which of the three disjoint process sets a process belongs
// to.
type Role int

const (
	// RoleWriter is the single writer process w.
	RoleWriter Role = iota + 1
	// RoleReader is one of the reader processes r1..rR.
	RoleReader
	// RoleServer is one of the server processes s1..sS implementing the
	// register.
	RoleServer
)

// String returns the single-letter prefix used in process names.
func (r Role) String() string {
	switch r {
	case RoleWriter:
		return "w"
	case RoleReader:
		return "r"
	case RoleServer:
		return "s"
	default:
		return "?"
	}
}

// Valid reports whether the role is one of the three defined roles.
func (r Role) Valid() bool {
	return r == RoleWriter || r == RoleReader || r == RoleServer
}

// ProcessID names a process in the system. Readers and servers are numbered
// starting from 1, matching the paper (r1..rR, s1..sS). The writer has
// index 0.
type ProcessID struct {
	Role  Role
	Index int
}

// Writer returns the identity of the unique writer process w.
func Writer() ProcessID { return ProcessID{Role: RoleWriter, Index: 0} }

// Reader returns the identity of reader ri (1-based).
func Reader(i int) ProcessID { return ProcessID{Role: RoleReader, Index: i} }

// Server returns the identity of server si (1-based).
func Server(i int) ProcessID { return ProcessID{Role: RoleServer, Index: i} }

// String renders the canonical process name: "w", "r3", "s12".
func (p ProcessID) String() string {
	if p.Role == RoleWriter {
		return "w"
	}
	return p.Role.String() + strconv.Itoa(p.Index)
}

// IsZero reports whether the id is the zero value (no process).
func (p ProcessID) IsZero() bool { return p.Role == 0 && p.Index == 0 }

// Valid reports whether the process id is well formed.
func (p ProcessID) Valid() bool {
	switch p.Role {
	case RoleWriter:
		return p.Index == 0
	case RoleReader, RoleServer:
		return p.Index >= 1
	default:
		return false
	}
}

// ClientPID maps the writer to 0 and reader ri to i, exactly as the pid()
// function in Figure 2 of the paper. It is used to index the per-client
// counter array maintained by servers. Servers are not clients; calling
// ClientPID on a server id returns -1.
func (p ProcessID) ClientPID() int {
	switch p.Role {
	case RoleWriter:
		return 0
	case RoleReader:
		return p.Index
	default:
		return -1
	}
}

// ErrBadProcessID reports a malformed process name.
var ErrBadProcessID = errors.New("malformed process id")

// ParseProcessID parses the canonical string form produced by String.
func ParseProcessID(s string) (ProcessID, error) {
	if s == "w" {
		return Writer(), nil
	}
	if len(s) < 2 {
		return ProcessID{}, fmt.Errorf("%w: %q", ErrBadProcessID, s)
	}
	var role Role
	switch s[0] {
	case 'r':
		role = RoleReader
	case 's':
		role = RoleServer
	default:
		return ProcessID{}, fmt.Errorf("%w: %q", ErrBadProcessID, s)
	}
	idx, err := strconv.Atoi(s[1:])
	if err != nil || idx < 1 {
		return ProcessID{}, fmt.Errorf("%w: %q", ErrBadProcessID, s)
	}
	return ProcessID{Role: role, Index: idx}, nil
}

// Timestamp is the logical timestamp attached to written values. The single
// writer generates timestamps 1, 2, 3, ...; 0 denotes the initial value ⊥.
type Timestamp int64

// InitialTimestamp is the timestamp of the initial register value ⊥.
const InitialTimestamp Timestamp = 0

// Less reports whether ts is strictly older than other.
func (ts Timestamp) Less(other Timestamp) bool { return ts < other }

// Next returns the successor timestamp.
func (ts Timestamp) Next() Timestamp { return ts + 1 }

// Prev returns the predecessor timestamp, never going below the initial
// timestamp.
func (ts Timestamp) Prev() Timestamp {
	if ts <= InitialTimestamp {
		return InitialTimestamp
	}
	return ts - 1
}

// Value is the application value stored in the register. A nil Value
// represents the initial value ⊥ (which, per Section 3.1, is not a valid
// input for a write).
type Value []byte

// Bottom is the initial register value ⊥.
func Bottom() Value { return nil }

// IsBottom reports whether the value is ⊥.
func (v Value) IsBottom() bool { return v == nil }

// Clone returns an independent copy of the value.
func (v Value) Clone() Value {
	if v == nil {
		return nil
	}
	out := make(Value, len(v))
	copy(out, v)
	return out
}

// Equal reports whether two values are byte-wise identical (⊥ equals only ⊥).
func (v Value) Equal(other Value) bool {
	if v.IsBottom() || other.IsBottom() {
		return v.IsBottom() && other.IsBottom()
	}
	return string(v) == string(other)
}

// String renders the value for logs and test failures.
func (v Value) String() string {
	if v.IsBottom() {
		return "⊥"
	}
	return strconv.Quote(string(v))
}

// TaggedValue couples a timestamp with the value written at that timestamp
// and the value written immediately before it. Carrying the previous value is
// the "two tags" modification described at the end of Section 4: it lets a
// reader return the value associated with maxTS−1 without another round-trip.
type TaggedValue struct {
	TS   Timestamp
	Cur  Value
	Prev Value
}

// InitialTaggedValue is the register content before any write: timestamp 0
// and both tags ⊥.
func InitialTaggedValue() TaggedValue {
	return TaggedValue{TS: InitialTimestamp, Cur: Bottom(), Prev: Bottom()}
}

// Clone returns a deep copy of the tagged value.
func (tv TaggedValue) Clone() TaggedValue {
	return TaggedValue{TS: tv.TS, Cur: tv.Cur.Clone(), Prev: tv.Prev.Clone()}
}

// At returns the value the tagged value associates with timestamp ts: Cur for
// ts == TS, Prev for ts == TS-1, and ⊥ otherwise (in particular for ts == 0).
func (tv TaggedValue) At(ts Timestamp) Value {
	switch {
	case ts == InitialTimestamp:
		return Bottom()
	case ts == tv.TS:
		return tv.Cur
	case ts == tv.TS-1:
		return tv.Prev
	default:
		return Bottom()
	}
}

// String renders the tagged value.
func (tv TaggedValue) String() string {
	return fmt.Sprintf("{ts=%d cur=%s prev=%s}", tv.TS, tv.Cur, tv.Prev)
}

// ProcessSet is a set of process identities, used for the per-server seen
// sets of the fast algorithm.
type ProcessSet map[ProcessID]struct{}

// NewProcessSet builds a set from the given members.
func NewProcessSet(members ...ProcessID) ProcessSet {
	s := make(ProcessSet, len(members))
	for _, m := range members {
		s[m] = struct{}{}
	}
	return s
}

// Add inserts p into the set.
func (s ProcessSet) Add(p ProcessID) { s[p] = struct{}{} }

// Has reports whether p is a member.
func (s ProcessSet) Has(p ProcessID) bool {
	_, ok := s[p]
	return ok
}

// Len returns the number of members.
func (s ProcessSet) Len() int { return len(s) }

// Clone returns an independent copy of the set.
func (s ProcessSet) Clone() ProcessSet {
	out := make(ProcessSet, len(s))
	for p := range s {
		out[p] = struct{}{}
	}
	return out
}

// Members returns the members in a deterministic order (writer, readers by
// index, servers by index).
func (s ProcessSet) Members() []ProcessID {
	out := make([]ProcessID, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sortProcessIDs(out)
	return out
}

// Intersect returns the intersection of s and other.
func (s ProcessSet) Intersect(other ProcessSet) ProcessSet {
	small, big := s, other
	if len(big) < len(small) {
		small, big = big, small
	}
	out := make(ProcessSet)
	for p := range small {
		if big.Has(p) {
			out[p] = struct{}{}
		}
	}
	return out
}

// Union returns the union of s and other.
func (s ProcessSet) Union(other ProcessSet) ProcessSet {
	out := s.Clone()
	for p := range other {
		out[p] = struct{}{}
	}
	return out
}

// ContainsAll reports whether every member of other is also in s.
func (s ProcessSet) ContainsAll(other ProcessSet) bool {
	for p := range other {
		if !s.Has(p) {
			return false
		}
	}
	return true
}

// String renders the set as a sorted list, e.g. "{w,r1,s3}".
func (s ProcessSet) String() string {
	members := s.Members()
	names := make([]string, len(members))
	for i, m := range members {
		names[i] = m.String()
	}
	return "{" + strings.Join(names, ",") + "}"
}

// sortProcessIDs orders ids writer-first, then readers by index, then servers
// by index.
func sortProcessIDs(ids []ProcessID) {
	less := func(a, b ProcessID) bool {
		if a.Role != b.Role {
			return a.Role < b.Role
		}
		return a.Index < b.Index
	}
	// Insertion sort: id slices here are tiny (≤ R+1 entries).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// SortProcessIDs sorts ids in the canonical order (writer, readers, servers).
func SortProcessIDs(ids []ProcessID) { sortProcessIDs(ids) }
