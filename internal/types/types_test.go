package types

import (
	"testing"
	"testing/quick"
)

func TestProcessIDString(t *testing.T) {
	tests := []struct {
		name string
		id   ProcessID
		want string
	}{
		{name: "writer", id: Writer(), want: "w"},
		{name: "reader 1", id: Reader(1), want: "r1"},
		{name: "reader 12", id: Reader(12), want: "r12"},
		{name: "server 3", id: Server(3), want: "s3"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.id.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestParseProcessIDRoundTrip(t *testing.T) {
	ids := []ProcessID{Writer(), Reader(1), Reader(42), Server(1), Server(99)}
	for _, id := range ids {
		got, err := ParseProcessID(id.String())
		if err != nil {
			t.Fatalf("ParseProcessID(%q): %v", id.String(), err)
		}
		if got != id {
			t.Errorf("round trip %q -> %v, want %v", id.String(), got, id)
		}
	}
}

func TestParseProcessIDErrors(t *testing.T) {
	bad := []string{"", "x1", "r", "s", "r0", "s-1", "w2", "rx", "7"}
	for _, s := range bad {
		if _, err := ParseProcessID(s); err == nil {
			t.Errorf("ParseProcessID(%q) succeeded, want error", s)
		}
	}
}

func TestProcessIDValid(t *testing.T) {
	tests := []struct {
		id   ProcessID
		want bool
	}{
		{Writer(), true},
		{Reader(1), true},
		{Server(5), true},
		{ProcessID{Role: RoleWriter, Index: 1}, false},
		{ProcessID{Role: RoleReader, Index: 0}, false},
		{ProcessID{}, false},
	}
	for _, tt := range tests {
		if got := tt.id.Valid(); got != tt.want {
			t.Errorf("%v.Valid() = %v, want %v", tt.id, got, tt.want)
		}
	}
}

func TestClientPID(t *testing.T) {
	if got := Writer().ClientPID(); got != 0 {
		t.Errorf("writer ClientPID = %d, want 0", got)
	}
	if got := Reader(7).ClientPID(); got != 7 {
		t.Errorf("reader 7 ClientPID = %d, want 7", got)
	}
	if got := Server(3).ClientPID(); got != -1 {
		t.Errorf("server ClientPID = %d, want -1", got)
	}
}

func TestTimestampOrdering(t *testing.T) {
	if !InitialTimestamp.Less(Timestamp(1)) {
		t.Error("initial timestamp should be less than 1")
	}
	if Timestamp(5).Less(Timestamp(5)) {
		t.Error("a timestamp must not be less than itself")
	}
	if got := Timestamp(5).Next(); got != 6 {
		t.Errorf("Next = %d, want 6", got)
	}
	if got := Timestamp(5).Prev(); got != 4 {
		t.Errorf("Prev = %d, want 4", got)
	}
	if got := InitialTimestamp.Prev(); got != InitialTimestamp {
		t.Errorf("Prev of initial = %d, want %d", got, InitialTimestamp)
	}
}

func TestValueBottomAndEqual(t *testing.T) {
	if !Bottom().IsBottom() {
		t.Error("Bottom must be bottom")
	}
	if Value("x").IsBottom() {
		t.Error("non-nil value must not be bottom")
	}
	if !Bottom().Equal(Bottom()) {
		t.Error("⊥ should equal ⊥")
	}
	if Bottom().Equal(Value("x")) || Value("x").Equal(Bottom()) {
		t.Error("⊥ should not equal a real value")
	}
	if !Value("abc").Equal(Value("abc")) {
		t.Error("identical values must be equal")
	}
	if Value("abc").Equal(Value("abd")) {
		t.Error("different values must not be equal")
	}
	// An empty (non-nil) value is a real value, distinct from ⊥.
	if (Value{}).IsBottom() {
		t.Error("empty value must not be bottom")
	}
}

func TestValueClone(t *testing.T) {
	v := Value("hello")
	c := v.Clone()
	c[0] = 'H'
	if string(v) != "hello" {
		t.Errorf("clone aliases original: %q", v)
	}
	if Bottom().Clone() != nil {
		t.Error("clone of ⊥ should remain ⊥")
	}
}

func TestTaggedValueAt(t *testing.T) {
	tv := TaggedValue{TS: 7, Cur: Value("v7"), Prev: Value("v6")}
	if got := tv.At(7); !got.Equal(Value("v7")) {
		t.Errorf("At(7) = %s", got)
	}
	if got := tv.At(6); !got.Equal(Value("v6")) {
		t.Errorf("At(6) = %s", got)
	}
	if got := tv.At(5); !got.IsBottom() {
		t.Errorf("At(5) = %s, want ⊥", got)
	}
	if got := tv.At(0); !got.IsBottom() {
		t.Errorf("At(0) = %s, want ⊥", got)
	}
	init := InitialTaggedValue()
	if init.TS != InitialTimestamp || !init.Cur.IsBottom() || !init.Prev.IsBottom() {
		t.Errorf("unexpected initial tagged value %v", init)
	}
}

func TestProcessSetOperations(t *testing.T) {
	s := NewProcessSet(Writer(), Reader(1))
	if !s.Has(Writer()) || !s.Has(Reader(1)) || s.Has(Reader(2)) {
		t.Fatalf("unexpected membership in %v", s)
	}
	s.Add(Reader(2))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}

	other := NewProcessSet(Reader(1), Reader(2), Reader(3))
	inter := s.Intersect(other)
	if inter.Len() != 2 || !inter.Has(Reader(1)) || !inter.Has(Reader(2)) {
		t.Errorf("Intersect = %v", inter)
	}
	union := s.Union(other)
	if union.Len() != 4 {
		t.Errorf("Union = %v", union)
	}
	if !union.ContainsAll(s) || !union.ContainsAll(other) {
		t.Error("union must contain both operands")
	}
	if inter.ContainsAll(s) {
		t.Error("intersection must not contain writer")
	}

	clone := s.Clone()
	clone.Add(Server(9))
	if s.Has(Server(9)) {
		t.Error("clone aliases original")
	}
}

func TestProcessSetString(t *testing.T) {
	s := NewProcessSet(Server(2), Reader(1), Writer(), Server(1))
	if got := s.String(); got != "{w,r1,s1,s2}" {
		t.Errorf("String() = %q", got)
	}
}

func TestSortProcessIDs(t *testing.T) {
	ids := []ProcessID{Server(2), Reader(3), Writer(), Reader(1), Server(1)}
	SortProcessIDs(ids)
	want := []ProcessID{Writer(), Reader(1), Reader(3), Server(1), Server(2)}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("sorted[%d] = %v, want %v (full: %v)", i, ids[i], want[i], ids)
		}
	}
}

func TestProcessSetIntersectionCommutative(t *testing.T) {
	f := func(aIdx, bIdx []uint8) bool {
		a, b := NewProcessSet(), NewProcessSet()
		for _, i := range aIdx {
			a.Add(Reader(int(i%16) + 1))
		}
		for _, i := range bIdx {
			b.Add(Reader(int(i%16) + 1))
		}
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		return ab.ContainsAll(ba) && ba.ContainsAll(ab)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaggedValueCloneIndependent(t *testing.T) {
	tv := TaggedValue{TS: 3, Cur: Value("cur"), Prev: Value("prev")}
	c := tv.Clone()
	c.Cur[0] = 'X'
	c.Prev[0] = 'Y'
	if string(tv.Cur) != "cur" || string(tv.Prev) != "prev" {
		t.Errorf("clone aliases original: %v", tv)
	}
}
