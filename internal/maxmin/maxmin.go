// Package maxmin implements the decentralised read optimisation sketched in
// the paper's introduction as a middle ground between the two-round ABD read
// and the fast read:
//
//	"First, the reader sends messages to all servers. Every server, on
//	receiving such a message, broadcasts its timestamp to all servers. On
//	receiving timestamps from a majority of servers, every server selects
//	the maximum timestamp, adopts the timestamp and its associated value,
//	and sends the pair to the reader. On receiving such messages from a
//	majority of servers, the reader returns the value with the minimum
//	timestamp."
//
// From the client's point of view a read is a single request/response
// exchange, but it is *not* fast in the paper's sense (Section 3.2): servers
// wait for messages from other servers before replying, so the read latency
// includes an extra server-to-server hop. The write is the ABD single-round
// write. Experiment E7 compares its latency against both the fast algorithm
// and ABD.
package maxmin

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/shard"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by the max-min register.
var (
	// ErrBottomWrite indicates an attempt to write the reserved value ⊥.
	ErrBottomWrite = errors.New("maxmin: cannot write the initial value ⊥")
	// ErrNotWriter indicates a writer constructed on a non-writer node.
	ErrNotWriter = errors.New("maxmin: writer must use the writer identity")
	// ErrNotReader indicates a reader constructed on a non-reader node.
	ErrNotReader = errors.New("maxmin: reader must use a reader identity")
)

// readKey identifies one read operation within a register: which reader and
// which of its reads. (The register key itself selects the per-key state the
// readKey lives in.)
type readKey struct {
	Reader   int
	RCounter int64
}

// pendingRead tracks the gossip a server has collected for one read.
type pendingRead struct {
	gossips   map[types.ProcessID]types.TaggedValue
	requested bool
	replied   bool
}

// registerState is the per-register max-min server state: the current value,
// the gossip collected for that register's in-flight reads, and the highest
// rCounter already answered per reader. The latter lets the server drop late
// gossip for finished reads instead of re-creating (and leaking) their
// bookkeeping: readers issue strictly increasing rCounters, so anything at
// or below the replied watermark belongs to a read that already returned.
type registerState struct {
	value   types.TaggedValue
	pending map[readKey]*pendingRead
	replied map[int]int64 // reader index → highest rCounter replied to
}

// done reports whether the identified read has already been answered.
// Callers must hold the register's shard lock (i.e. run inside Map.Do).
func (st *registerState) done(key readKey) bool {
	return key.RCounter <= st.replied[key.Reader]
}

// pendingState returns (creating if necessary) the gossip state for a read.
// Callers must hold the register's shard lock.
func (st *registerState) pendingState(key readKey) *pendingRead {
	p, ok := st.pending[key]
	if !ok {
		p = &pendingRead{gossips: make(map[types.ProcessID]types.TaggedValue)}
		st.pending[key] = p
	}
	return p
}

// ServerConfig configures a max-min server.
type ServerConfig struct {
	// ID is the server's identity.
	ID types.ProcessID
	// Quorum describes the deployment; the server waits for gossip from a
	// majority of servers (including itself) before answering a read.
	Quorum quorum.Config
	// Workers is the number of key-shard workers executing this server's
	// messages in parallel (a register key is always handled by the same
	// worker, so a read's request and its gossip serialise per key). Zero or
	// negative means GOMAXPROCS.
	Workers int
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
}

// Server is the max-min server. Unlike the fast register's server it is NOT
// a fast responder: on a read request it first gossips with the other
// servers. One server multiplexes every register of the deployment: both the
// stored value and the per-read gossip bookkeeping are kept per register key
// in a striped shard map.
type Server struct {
	cfg     ServerConfig
	node    transport.Node
	exec    *transport.Executor
	servers []types.ProcessID

	states *shard.Map[*registerState]

	stopOnce sync.Once
	done     chan struct{}
}

// NewServer creates a max-min server bound to the given node.
func NewServer(cfg ServerConfig, node transport.Node) (*Server, error) {
	if cfg.ID.Role != types.RoleServer || !cfg.ID.Valid() {
		return nil, fmt.Errorf("maxmin: server id %v is not a valid server identity", cfg.ID)
	}
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("maxmin: server %v requires a transport node", cfg.ID)
	}
	return &Server{
		cfg:     cfg,
		node:    node,
		exec:    transport.NewExecutor(node, protoutil.WireKeyFunc, cfg.Workers),
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
		states: shard.NewMap(0, func(string) *registerState {
			return &registerState{
				value:   types.InitialTaggedValue(),
				pending: make(map[readKey]*pendingRead),
				replied: make(map[int]int64),
			}
		}),
		done: make(chan struct{}),
	}, nil
}

// Start launches the server's key-sharded executor: messages are dispatched
// by register key across the configured workers, so distinct registers are
// served in parallel while each register keeps FIFO, single-goroutine
// handling (see transport.Executor). A register's write, read and gossip
// messages all carry its key, so the whole gossip exchange of a read
// serialises on that key's worker.
func (s *Server) Start() {
	go func() {
		defer close(s.done)
		s.exec.Run(s.handle)
	}()
}

// Stop detaches the server from the network and waits for the executor to
// drain every worker.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { _ = s.node.Close() })
	<-s.done
}

// ID returns the server's identity.
func (s *Server) ID() types.ProcessID { return s.cfg.ID }

// Workers reports the executor's key-shard worker count.
func (s *Server) Workers() int { return s.exec.Workers() }

// State returns the default register's current value; use StateOf for a
// named register.
func (s *Server) State() types.TaggedValue { return s.StateOf("") }

// StateOf returns the named register's current value. An untouched register
// reports its initial state without being instantiated.
func (s *Server) StateOf(key string) types.TaggedValue {
	out := types.InitialTaggedValue()
	s.states.Peek(key, func(st *registerState) { out = st.value.Clone() })
	return out
}

func (s *Server) handle(m transport.Message) {
	req := wire.GetMessage()
	defer wire.PutMessage(req)
	if err := wire.DecodeInto(req, m.Payload); err != nil {
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "malformed: %v", err)
		}
		return
	}
	switch req.Op {
	case wire.OpWrite:
		s.handleWrite(m.From, req)
	case wire.OpRead:
		s.handleRead(m.From, req)
	case wire.OpGossip:
		s.handleGossip(m.From, req)
	default:
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "unexpected op %s", req.Op)
		}
	}
}

// handleWrite adopts a newer value and acknowledges the writer, exactly as in
// ABD.
func (s *Server) handleWrite(from types.ProcessID, req *wire.Message) {
	if from.Role != types.RoleWriter {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, from, "write from non-writer")
		return
	}
	var ack *wire.Message
	s.states.Do(req.Key, func(st *registerState) {
		if req.TS > st.value.TS {
			st.value = types.TaggedValue{TS: req.TS, Cur: req.Cur.Clone(), Prev: req.Prev.Clone()}
		}
		ack = &wire.Message{Op: wire.OpWriteAck, Key: req.Key, TS: st.value.TS, RCounter: req.RCounter}
	})
	_ = s.node.Send(from, ack.Kind(), wire.MustEncode(ack))
}

// handleRead starts the gossip round for this read: broadcast the server's
// current timestamp tagged with the read's identity (and register key) to
// every server (including itself, handled locally).
func (s *Server) handleRead(from types.ProcessID, req *wire.Message) {
	if from.Role != types.RoleReader {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, from, "read from non-reader")
		return
	}
	rkey := readKey{Reader: from.Index, RCounter: req.RCounter}

	var current types.TaggedValue
	stale := false
	s.states.Do(req.Key, func(st *registerState) {
		if st.done(rkey) {
			stale = true
			return
		}
		p := st.pendingState(rkey)
		p.requested = true
		current = st.value.Clone()
		p.gossips[s.cfg.ID] = current
	})
	if stale {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, from, "stale read rc=%d", req.RCounter)
		return
	}

	gossip := &wire.Message{
		Op:       wire.OpGossip,
		Key:      req.Key,
		TS:       current.TS,
		Cur:      current.Cur,
		Prev:     current.Prev,
		RCounter: req.RCounter,
		Phase:    int32(from.Index), // identifies which reader's read this gossip belongs to
	}
	payload := wire.MustEncode(gossip)
	for _, peer := range s.servers {
		if peer == s.cfg.ID {
			continue
		}
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.Record(trace.KindSend, s.cfg.ID, peer, "gossip key=%q ts=%d for r%d/%d", req.Key, current.TS, from.Index, req.RCounter)
		}
		_ = s.node.Send(peer, gossip.Kind(), payload)
	}

	s.maybeReply(req.Key, rkey)
}

// handleGossip records a peer server's timestamp for the identified read and
// adopts it if newer.
func (s *Server) handleGossip(from types.ProcessID, req *wire.Message) {
	if from.Role != types.RoleServer {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, from, "gossip from non-server")
		return
	}
	rkey := readKey{Reader: int(req.Phase), RCounter: req.RCounter}
	incoming := types.TaggedValue{TS: req.TS, Cur: req.Cur.Clone(), Prev: req.Prev.Clone()}

	s.states.Do(req.Key, func(st *registerState) {
		// Adopt the maximum timestamp seen while gossiping ("adopts the
		// timestamp and its associated value"). incoming is already an owned
		// clone, so adoption is a plain assignment.
		if incoming.TS > st.value.TS {
			st.value = incoming
		}
		// Gossip for a read this server already answered must not re-create
		// the read's bookkeeping: the entry would never be garbage-collected.
		if st.done(rkey) {
			return
		}
		p := st.pendingState(rkey)
		p.gossips[from] = incoming
	})

	s.maybeReply(req.Key, rkey)
}

// maybeReply answers the reader once the server has both received the read
// request and collected gossip from a majority of servers.
func (s *Server) maybeReply(key string, rkey readKey) {
	var ack *wire.Message
	s.states.Do(key, func(st *registerState) {
		if st.done(rkey) {
			return
		}
		p := st.pendingState(rkey)
		if p.replied || !p.requested || len(p.gossips) < s.cfg.Quorum.Majority() {
			return
		}
		// Select the maximum timestamp among the collected gossip and adopt
		// it. Both the stored value and the gossip entries are already owned
		// by this server (cloned when they were retained), so adoption is a
		// plain assignment — values are immutable once stored.
		best := st.value
		for _, tv := range p.gossips {
			if tv.TS > best.TS {
				best = tv
			}
		}
		st.value = best
		p.replied = true
		// The reply carries the adopted maximum.
		ack = &wire.Message{
			Op:       wire.OpReadAck,
			Key:      key,
			TS:       best.TS,
			Cur:      best.Cur,
			Prev:     best.Prev,
			RCounter: rkey.RCounter,
		}
		// Garbage-collect finished reads to keep the map bounded; the replied
		// watermark stops late gossip from re-creating the entry.
		delete(st.pending, rkey)
		if rkey.RCounter > st.replied[rkey.Reader] {
			st.replied[rkey.Reader] = rkey.RCounter
			// Sweep this reader's older entries too: the reader is serial, so
			// replying to rCounter k proves every read below k has already
			// returned at the reader. An entry stranded below the watermark
			// (e.g. this server replied to a later read before the older
			// read's gossip reached a majority here) can never be replied to
			// and would otherwise leak.
			for k := range st.pending {
				if k.Reader == rkey.Reader && k.RCounter < rkey.RCounter {
					delete(st.pending, k)
				}
			}
		}
	})
	if ack == nil {
		return
	}

	reader := types.Reader(rkey.Reader)
	if s.cfg.Trace.Enabled() {
		s.cfg.Trace.Record(trace.KindSend, s.cfg.ID, reader, "readack key=%q ts=%d rc=%d", key, ack.TS, ack.RCounter)
	}
	_ = s.node.Send(reader, ack.Kind(), wire.MustEncode(ack))
}

// Writer is the max-min writer: identical to the single-round ABD writer.
type Writer struct {
	cfg     quorum.Config
	key     string
	tr      *trace.Trace
	node    transport.Node
	servers []types.ProcessID

	mu     sync.Mutex
	ts     types.Timestamp
	prev   types.Value
	rounds stats.Counter
	writes int64
}

// NewWriter creates the max-min writer for the default register.
func NewWriter(cfg quorum.Config, node transport.Node, tr *trace.Trace) (*Writer, error) {
	return NewKeyedWriter("", cfg, node, tr)
}

// NewKeyedWriter creates the max-min writer for the named register.
func NewKeyedWriter(key string, cfg quorum.Config, node transport.Node, tr *trace.Trace) (*Writer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("maxmin: writer requires a transport node")
	}
	if node.ID() != types.Writer() {
		return nil, fmt.Errorf("%w: got %v", ErrNotWriter, node.ID())
	}
	return &Writer{
		cfg:     cfg,
		key:     key,
		tr:      tr,
		node:    node,
		servers: protoutil.ServerIDs(cfg.Servers),
		ts:      1,
		prev:    types.Bottom(),
	}, nil
}

// Write stores v using one round-trip to a majority of servers.
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	if v.IsBottom() {
		return ErrBottomWrite
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	ts := w.ts
	// One owned copy serves as the transient request's Cur and then as the
	// remembered prev.
	cur := v.Clone()
	req := &wire.Message{Op: wire.OpWrite, Key: w.key, TS: ts, Cur: cur, Prev: w.prev}
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteAck && m.Key == w.key && m.TS >= ts
	}
	if _, err := protoutil.RoundTrip(ctx, w.node, w.servers, req, w.cfg.Majority(), filter, w.tr); err != nil {
		return fmt.Errorf("maxmin: write ts=%d: %w", ts, err)
	}
	w.rounds.Add(1)
	w.writes++
	w.ts = ts.Next()
	w.prev = cur
	return nil
}

// Stats reports completed writes and total round-trips.
func (w *Writer) Stats() (writes, roundTrips int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, w.rounds.Total()
}

// Close detaches the writer from the network.
func (w *Writer) Close() error { return w.node.Close() }

// ReadResult is what a max-min read returns.
type ReadResult struct {
	Value      types.Value
	Timestamp  types.Timestamp
	RoundTrips int
}

// Reader is the max-min reader: a single request/response exchange with a
// majority of servers, returning the value with the MINIMUM timestamp among
// the replies (each of which is itself a majority-maximum).
type Reader struct {
	cfg     quorum.Config
	key     string
	tr      *trace.Trace
	node    transport.Node
	id      types.ProcessID
	servers []types.ProcessID

	mu       sync.Mutex
	rCounter int64
	rounds   stats.Counter
	reads    int64
}

// NewReader creates a max-min reader for the default register.
func NewReader(cfg quorum.Config, node transport.Node, tr *trace.Trace) (*Reader, error) {
	return NewKeyedReader("", cfg, node, tr)
}

// NewKeyedReader creates a max-min reader for the named register.
func NewKeyedReader(key string, cfg quorum.Config, node transport.Node, tr *trace.Trace) (*Reader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("maxmin: reader requires a transport node")
	}
	id := node.ID()
	if id.Role != types.RoleReader || id.Index < 1 {
		return nil, fmt.Errorf("%w: got %v", ErrNotReader, id)
	}
	return &Reader{
		cfg:     cfg,
		key:     key,
		tr:      tr,
		node:    node,
		id:      id,
		servers: protoutil.ServerIDs(cfg.Servers),
	}, nil
}

// Read returns the register value. One client round-trip, but servers gossip
// among themselves before replying.
func (r *Reader) Read(ctx context.Context) (ReadResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	r.rCounter++
	rc := r.rCounter
	req := &wire.Message{Op: wire.OpRead, Key: r.key, RCounter: rc}
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpReadAck && m.Key == r.key && m.RCounter == rc
	}
	acks, err := protoutil.RoundTrip(ctx, r.node, r.servers, req, r.cfg.Majority(), filter, r.tr)
	if err != nil {
		return ReadResult{}, fmt.Errorf("maxmin: read rc=%d: %w", rc, err)
	}
	r.rounds.Add(1)
	r.reads++

	// Return the value with the minimum timestamp among the replies.
	min := acks[0].Msg
	for _, a := range acks[1:] {
		if a.Msg.TS < min.TS {
			min = a.Msg
		}
	}
	return ReadResult{
		Value:      min.Cur.Clone(),
		Timestamp:  min.TS,
		RoundTrips: 1,
	}, nil
}

// Stats reports completed reads and total client round-trips.
func (r *Reader) Stats() (reads, roundTrips int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reads, r.rounds.Total()
}

// Close detaches the reader from the network.
func (r *Reader) Close() error { return r.node.Close() }
