// Package maxmin implements the decentralised read optimisation sketched in
// the paper's introduction as a middle ground between the two-round ABD read
// and the fast read:
//
//	"First, the reader sends messages to all servers. Every server, on
//	receiving such a message, broadcasts its timestamp to all servers. On
//	receiving timestamps from a majority of servers, every server selects
//	the maximum timestamp, adopts the timestamp and its associated value,
//	and sends the pair to the reader. On receiving such messages from a
//	majority of servers, the reader returns the value with the minimum
//	timestamp."
//
// From the client's point of view a read is a single request/response
// exchange, but it is *not* fast in the paper's sense (Section 3.2): servers
// wait for messages from other servers before replying, so the read latency
// includes an extra server-to-server hop. The write is the ABD single-round
// write. Experiment E7 compares its latency against both the fast algorithm
// and ABD.
package maxmin

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fastread/internal/durable"
	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/shard"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by the max-min register.
var (
	// ErrBottomWrite indicates an attempt to write the reserved value ⊥.
	ErrBottomWrite = errors.New("maxmin: cannot write the initial value ⊥")
	// ErrNotWriter indicates a writer constructed on a non-writer node.
	ErrNotWriter = errors.New("maxmin: writer must use the writer identity")
	// ErrNotReader indicates a reader constructed on a non-reader node.
	ErrNotReader = errors.New("maxmin: reader must use a reader identity")
)

// readKey identifies one read operation within a register: which reader and
// which of its reads. (The register key itself selects the per-key state the
// readKey lives in.)
type readKey struct {
	Reader   int
	RCounter int64
}

// pendingRead tracks the gossip a server has collected for one read.
type pendingRead struct {
	gossips   map[types.ProcessID]types.TaggedValue
	requested bool
	replied   bool
}

// readerProgress tracks which of one reader's reads this server has already
// answered. Pipelined readers keep several reads in flight, and their gossip
// rounds can complete out of submission order ACROSS servers, so a plain
// high-watermark would mark a still-live older read as done and starve it.
// Instead the server keeps an exact frontier: a watermark below which every
// read is answered, plus the set of answered rCounters above it. The set is
// bounded by the reader's pipeline depth in normal operation; maxReplyLag
// bounds it against abandoned reads (a cancelled read's rCounter never gets
// answered, which would otherwise pin the watermark forever).
type readerProgress struct {
	watermark int64 // every rCounter <= watermark has been answered
	above     map[int64]struct{}
}

// maxReplyLag bounds readerProgress.above: once a reader's unanswered gap is
// this far behind its newest answered read, the gap is presumed abandoned
// (the reader cancelled it) and the watermark is forced past it. The
// presumption is sound because client pipelines are capped well below this
// window (protoutil.MaxPipelineDepth = 512): a LIVE read can never trail
// the newest answered read by more than the pipeline depth.
const maxReplyLag = 1024

// registerState is the per-register max-min server state: the current value,
// the gossip collected for that register's in-flight reads, and the
// per-reader reply frontier. The frontier lets the server drop late gossip
// for finished reads instead of re-creating (and leaking) their bookkeeping,
// without ever classifying a live pipelined read as finished.
type registerState struct {
	value   types.TaggedValue
	pending map[readKey]*pendingRead
	replied map[int]*readerProgress // reader index → reply frontier
	// lsn is the log sequence number of the last durable record applied to
	// this register; deltas at or below it are already reflected and must not
	// replay. The gossip bookkeeping (pending/replied) is transient and never
	// persisted — an in-flight read at crash time simply times out at its
	// reader. Zero when not durable.
	lsn int64
}

// done reports whether the identified read has already been answered.
// Callers must hold the register's shard lock (i.e. run inside Map.Do).
func (st *registerState) done(key readKey) bool {
	p := st.replied[key.Reader]
	if p == nil {
		return false
	}
	if key.RCounter <= p.watermark {
		return true
	}
	_, ok := p.above[key.RCounter]
	return ok
}

// markReplied records that the identified read has been answered, advances
// the reader's frontier, and garbage-collects bookkeeping the frontier has
// passed. Callers must hold the register's shard lock.
func (st *registerState) markReplied(rkey readKey) {
	p := st.replied[rkey.Reader]
	if p == nil {
		// First contact with this reader: its counters start at a fresh
		// incarnation nonce (protoutil.InitialNonce), so seed the watermark
		// maxReplyLag below it — anything older belongs to a previous
		// incarnation and can never be answered — instead of accumulating
		// the gap down to zero in the answered-set.
		wm := rkey.RCounter - maxReplyLag
		if wm < 0 {
			wm = 0
		}
		p = &readerProgress{watermark: wm, above: make(map[int64]struct{})}
		st.replied[rkey.Reader] = p
	}
	p.above[rkey.RCounter] = struct{}{}
	p.advance()
	for len(p.above) > maxReplyLag {
		// The oldest unanswered gap is presumed abandoned: force the
		// watermark onto the lowest answered rCounter and re-advance.
		lowest := int64(-1)
		for rc := range p.above {
			if lowest < 0 || rc < lowest {
				lowest = rc
			}
		}
		p.watermark = lowest
		delete(p.above, lowest)
		p.advance()
	}
	// Sweep gossip bookkeeping the frontier has passed: those reads were
	// answered here (their entries were removed on reply) or presumed
	// abandoned — either way the entries can never be answered and would
	// leak.
	for k := range st.pending {
		if k.Reader == rkey.Reader && k.RCounter <= p.watermark {
			delete(st.pending, k)
		}
	}
}

// advance folds contiguously answered rCounters into the watermark.
func (p *readerProgress) advance() {
	for {
		if _, ok := p.above[p.watermark+1]; !ok {
			return
		}
		p.watermark++
		delete(p.above, p.watermark)
	}
}

// pendingState returns (creating if necessary) the gossip state for a read.
// Callers must hold the register's shard lock.
func (st *registerState) pendingState(key readKey) *pendingRead {
	p, ok := st.pending[key]
	if !ok {
		p = &pendingRead{gossips: make(map[types.ProcessID]types.TaggedValue)}
		st.pending[key] = p
	}
	return p
}

// ServerConfig configures a max-min server.
type ServerConfig struct {
	// ID is the server's identity.
	ID types.ProcessID
	// Quorum describes the deployment; the server waits for gossip from a
	// majority of servers (including itself) before answering a read.
	Quorum quorum.Config
	// Workers is the number of key-shard workers executing this server's
	// messages in parallel (a register key is always handled by the same
	// worker, so a read's request and its gossip serialise per key). Zero or
	// negative means GOMAXPROCS.
	Workers int
	// QueueBound, when positive, caps each worker's overflow queue:
	// requests beyond it are shed and counted (QueueSheds) instead of
	// queued without bound. Zero keeps the default never-drop queues.
	QueueBound int
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
	// Durable, if non-nil, gives the server a write-ahead log: every value
	// adoption (write, gossip or max-select) is appended before the reply,
	// and NewServer recovers whatever a previous incarnation persisted.
	Durable *durable.Options
}

// Server is the max-min server. Unlike the fast register's server it is NOT
// a fast responder: on a read request it first gossips with the other
// servers. One server multiplexes every register of the deployment: both the
// stored value and the per-read gossip bookkeeping are kept per register key
// in a striped shard map.
type Server struct {
	cfg     ServerConfig
	node    transport.Node
	exec    *transport.Executor
	servers []types.ProcessID

	states *shard.Map[*registerState]
	// dlog is the server's durable log; nil when persistence is off.
	dlog *durable.Log

	stopOnce sync.Once
	done     chan struct{}
}

// NewServer creates a max-min server bound to the given node.
func NewServer(cfg ServerConfig, node transport.Node) (*Server, error) {
	if cfg.ID.Role != types.RoleServer || !cfg.ID.Valid() {
		return nil, fmt.Errorf("maxmin: server id %v is not a valid server identity", cfg.ID)
	}
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("maxmin: server %v requires a transport node", cfg.ID)
	}
	s := &Server{
		cfg:     cfg,
		node:    node,
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
		states: shard.NewMap(0, func(string) *registerState {
			return &registerState{
				value:   types.InitialTaggedValue(),
				pending: make(map[readKey]*pendingRead),
				replied: make(map[int]*readerProgress),
			}
		}),
		done: make(chan struct{}),
	}
	if cfg.Durable != nil {
		dl, err := durable.Open(*cfg.Durable, durable.Hooks{Apply: s.applyRecord, Dump: s.dumpRecords})
		if err != nil {
			return nil, fmt.Errorf("maxmin: server %v durable log: %w", cfg.ID, err)
		}
		s.dlog = dl
	}
	s.exec = transport.NewExecutor(node, protoutil.WireKeyFunc, cfg.Workers)
	s.exec.SetQueueBound(cfg.QueueBound)
	return s, nil
}

// applyRecord replays one recovered log record, re-running the live adoption
// comparison under the per-key LSN guard. Only the register value is durable;
// the per-read gossip bookkeeping is rebuilt by live traffic.
func (s *Server) applyRecord(r *durable.Record) error {
	s.states.Do(r.Key, func(st *registerState) {
		switch r.Kind {
		case durable.KindState:
			st.value = types.TaggedValue{
				TS:   types.Timestamp(r.TS),
				Cur:  types.Value(r.Cur).Clone(),
				Prev: types.Value(r.Prev).Clone(),
			}
			st.lsn = r.LSN
		case durable.KindDelta:
			if r.LSN <= st.lsn {
				return
			}
			if types.Timestamp(r.TS) > st.value.TS {
				st.value = types.TaggedValue{
					TS:   types.Timestamp(r.TS),
					Cur:  types.Value(r.Cur).Clone(),
					Prev: types.Value(r.Prev).Clone(),
				}
			}
			st.lsn = r.LSN
		}
	})
	return nil
}

// dumpRecords emits one KindState record per instantiated register for a
// snapshot, aliasing live state under the register's stripe lock.
func (s *Server) dumpRecords(emit func(*durable.Record) error) error {
	var err error
	s.states.Range(func(key string, st *registerState) {
		if err != nil {
			return
		}
		err = emit(&durable.Record{
			Kind: durable.KindState,
			LSN:  st.lsn,
			Key:  key,
			TS:   int64(st.value.TS),
			Cur:  st.value.Cur,
			Prev: st.value.Prev,
		})
	})
	return err
}

// logAdoption appends the adoption of tv to the durable log. Callers hold the
// register's shard lock, so the append is ordered with the mutation.
func (s *Server) logAdoption(st *registerState, key string, tv types.TaggedValue, from types.ProcessID) {
	if s.dlog == nil {
		return
	}
	lsn, _ := s.dlog.Append(&durable.Record{
		Kind: durable.KindDelta,
		Key:  key,
		TS:   int64(tv.TS),
		Cur:  tv.Cur,
		Prev: tv.Prev,
		From: from,
	})
	st.lsn = lsn
}

// Start launches the server's key-sharded executor: messages are dispatched
// by register key across the configured workers, so distinct registers are
// served in parallel while each register keeps FIFO, single-goroutine
// handling (see transport.Executor). A register's write, read and gossip
// messages all carry its key, so the whole gossip exchange of a read
// serialises on that key's worker.
func (s *Server) Start() {
	go func() {
		defer close(s.done)
		s.exec.RunCoalescing(s.handle)
	}()
}

// Stop detaches the server from the network, waits for the executor to drain
// every worker, then closes the durable log.
func (s *Server) Stop() {
	s.stopOnce.Do(func() { _ = s.node.Close() })
	<-s.done
	if s.dlog != nil {
		_ = s.dlog.Close()
	}
}

// ID returns the server's identity.
func (s *Server) ID() types.ProcessID { return s.cfg.ID }

// Workers reports the executor's key-shard worker count.
func (s *Server) Workers() int { return s.exec.Workers() }

// QueueSheds returns the number of requests shed by bounded worker queues
// (always 0 unless ServerConfig.QueueBound was set).
func (s *Server) QueueSheds() int64 { return s.exec.Sheds() }

// State returns the default register's current value; use StateOf for a
// named register.
func (s *Server) State() types.TaggedValue { return s.StateOf("") }

// StateOf returns the named register's current value. An untouched register
// reports its initial state without being instantiated.
func (s *Server) StateOf(key string) types.TaggedValue {
	out := types.InitialTaggedValue()
	s.states.Peek(key, func(st *registerState) { out = st.value.Clone() })
	return out
}

func (s *Server) handle(m transport.Message, out transport.Sender) {
	req := wire.GetMessage()
	defer wire.PutMessage(req)
	if err := wire.DecodeInto(req, m.Payload); err != nil {
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "malformed: %v", err)
		}
		return
	}
	switch req.Op {
	case wire.OpWrite:
		s.handleWrite(m.From, req, out)
	case wire.OpRead:
		s.handleRead(m.From, req, out)
	case wire.OpGossip:
		s.handleGossip(m.From, req, out)
	default:
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "unexpected op %s", req.Op)
		}
	}
}

// handleWrite adopts a newer value and acknowledges the writer, exactly as in
// ABD.
func (s *Server) handleWrite(from types.ProcessID, req *wire.Message, out transport.Sender) {
	if from.Role != types.RoleWriter {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, from, "write from non-writer")
		return
	}
	var ack *wire.Message
	s.states.Do(req.Key, func(st *registerState) {
		if req.TS > st.value.TS {
			st.value = types.TaggedValue{TS: req.TS, Cur: req.Cur.Clone(), Prev: req.Prev.Clone()}
			s.logAdoption(st, req.Key, st.value, from)
		}
		ack = &wire.Message{Op: wire.OpWriteAck, Key: req.Key, TS: st.value.TS, RCounter: req.RCounter}
	})
	_ = transport.SendEncoded(out, from, ack)
}

// handleRead starts the gossip round for this read: broadcast the server's
// current timestamp tagged with the read's identity (and register key) to
// every server (including itself, handled locally).
func (s *Server) handleRead(from types.ProcessID, req *wire.Message, out transport.Sender) {
	if from.Role != types.RoleReader {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, from, "read from non-reader")
		return
	}
	rkey := readKey{Reader: from.Index, RCounter: req.RCounter}

	var current types.TaggedValue
	stale := false
	s.states.Do(req.Key, func(st *registerState) {
		if st.done(rkey) {
			stale = true
			return
		}
		p := st.pendingState(rkey)
		p.requested = true
		current = st.value.Clone()
		p.gossips[s.cfg.ID] = current
	})
	if stale {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, from, "stale read rc=%d", req.RCounter)
		return
	}

	gossip := &wire.Message{
		Op:       wire.OpGossip,
		Key:      req.Key,
		TS:       current.TS,
		Cur:      current.Cur,
		Prev:     current.Prev,
		RCounter: req.RCounter,
		Phase:    int32(from.Index), // identifies which reader's read this gossip belongs to
	}
	payload := wire.MustEncode(gossip)
	for _, peer := range s.servers {
		if peer == s.cfg.ID {
			continue
		}
		if s.cfg.Trace.Enabled() {
			s.cfg.Trace.Record(trace.KindSend, s.cfg.ID, peer, "gossip key=%q ts=%d for r%d/%d", req.Key, current.TS, from.Index, req.RCounter)
		}
		_ = out.Send(peer, gossip.Kind(), payload)
	}

	s.maybeReply(req.Key, rkey, out)
}

// handleGossip records a peer server's timestamp for the identified read and
// adopts it if newer.
func (s *Server) handleGossip(from types.ProcessID, req *wire.Message, out transport.Sender) {
	if from.Role != types.RoleServer {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, from, "gossip from non-server")
		return
	}
	rkey := readKey{Reader: int(req.Phase), RCounter: req.RCounter}
	incoming := types.TaggedValue{TS: req.TS, Cur: req.Cur.Clone(), Prev: req.Prev.Clone()}

	s.states.Do(req.Key, func(st *registerState) {
		// Adopt the maximum timestamp seen while gossiping ("adopts the
		// timestamp and its associated value"). incoming is already an owned
		// clone, so adoption is a plain assignment.
		if incoming.TS > st.value.TS {
			st.value = incoming
			s.logAdoption(st, req.Key, st.value, from)
		}
		// Gossip for a read this server already answered must not re-create
		// the read's bookkeeping: the entry would never be garbage-collected.
		if st.done(rkey) {
			return
		}
		p := st.pendingState(rkey)
		p.gossips[from] = incoming
	})

	s.maybeReply(req.Key, rkey, out)
}

// maybeReply answers the reader once the server has both received the read
// request and collected gossip from a majority of servers.
func (s *Server) maybeReply(key string, rkey readKey, out transport.Sender) {
	var ack *wire.Message
	s.states.Do(key, func(st *registerState) {
		if st.done(rkey) {
			return
		}
		p := st.pendingState(rkey)
		if p.replied || !p.requested || len(p.gossips) < s.cfg.Quorum.Majority() {
			return
		}
		// Select the maximum timestamp among the collected gossip and adopt
		// it. Both the stored value and the gossip entries are already owned
		// by this server (cloned when they were retained), so adoption is a
		// plain assignment — values are immutable once stored.
		best := st.value
		for _, tv := range p.gossips {
			if tv.TS > best.TS {
				best = tv
			}
		}
		if best.TS > st.value.TS {
			st.value = best
			s.logAdoption(st, key, best, s.cfg.ID)
		}
		p.replied = true
		// The reply carries the adopted maximum.
		ack = &wire.Message{
			Op:       wire.OpReadAck,
			Key:      key,
			TS:       best.TS,
			Cur:      best.Cur,
			Prev:     best.Prev,
			RCounter: rkey.RCounter,
		}
		// Garbage-collect the finished read and advance the reader's reply
		// frontier, which stops late gossip from re-creating the entry. An
		// older read still in flight (pipelined readers overlap their reads)
		// keeps its bookkeeping: only reads the contiguous frontier has
		// passed are swept.
		delete(st.pending, rkey)
		st.markReplied(rkey)
	})
	if ack == nil {
		return
	}

	reader := types.Reader(rkey.Reader)
	if s.cfg.Trace.Enabled() {
		s.cfg.Trace.Record(trace.KindSend, s.cfg.ID, reader, "readack key=%q ts=%d rc=%d", key, ack.TS, ack.RCounter)
	}
	_ = transport.SendEncoded(out, reader, ack)
}

// Writer is the max-min writer: identical to the single-round ABD writer.
// WriteAsync keeps up to depth writes in flight, applied in submission
// (timestamp) order.
type Writer struct {
	cfg     quorum.Config
	key     string
	tr      *trace.Trace
	node    transport.Node
	servers []types.ProcessID
	pl      *protoutil.Pipeline

	// submitted is the highest timestamp this incarnation has broadcast;
	// the ack filter caps accepted timestamps at it so a restarted writer
	// times out visibly instead of "completing" against a previous
	// incarnation's newer server state (see core.Writer.WriteAsync).
	submitted atomic.Int64

	mu     sync.Mutex
	ts     types.Timestamp
	prev   types.Value
	rounds stats.Counter
	writes int64
}

// NewWriter creates the max-min writer for the default register.
func NewWriter(cfg quorum.Config, node transport.Node, tr *trace.Trace) (*Writer, error) {
	return NewKeyedWriter("", cfg, 0, node, tr)
}

// NewKeyedWriter creates the max-min writer for the named register. depth
// bounds the writes kept in flight by WriteAsync (non-positive means
// protoutil.DefaultPipelineDepth).
func NewKeyedWriter(key string, cfg quorum.Config, depth int, node transport.Node, tr *trace.Trace) (*Writer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("maxmin: writer requires a transport node")
	}
	if node.ID() != types.Writer() {
		return nil, fmt.Errorf("%w: got %v", ErrNotWriter, node.ID())
	}
	return &Writer{
		cfg:     cfg,
		key:     key,
		tr:      tr,
		node:    node,
		servers: protoutil.ServerIDs(cfg.Servers),
		pl:      protoutil.NewPipeline(node, depth, tr),
		ts:      1,
		prev:    types.Bottom(),
	}, nil
}

// Write stores v using one round-trip to a majority of servers (WriteAsync
// at depth one).
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	f, err := w.WriteAsync(ctx, v)
	if err != nil {
		return err
	}
	_, rerr := f.Result(ctx)
	return rerr
}

// WriteAsync submits one write and returns its future without waiting for
// the majority; timestamps are taken and broadcast in submission order.
func (w *Writer) WriteAsync(ctx context.Context, v types.Value) (*protoutil.Future[struct{}], error) {
	if v.IsBottom() {
		return nil, ErrBottomWrite
	}
	if err := w.pl.Acquire(ctx); err != nil {
		return nil, fmt.Errorf("maxmin: write: %w", err)
	}
	f := protoutil.NewFuture[struct{}]()

	w.mu.Lock()
	ts := w.ts
	// One owned copy serves as the transient request's Cur and then as the
	// remembered prev for the next submission.
	cur := v.Clone()
	req := &wire.Message{Op: wire.OpWrite, Key: w.key, TS: ts, Cur: cur, Prev: w.prev}
	w.submitted.Store(int64(ts))
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteAck && m.Key == w.key &&
			m.TS >= ts && int64(m.TS) <= w.submitted.Load()
	}
	op := w.pl.Register(w.cfg.Majority(), filter, func(_ []protoutil.Ack, err error) {
		if err != nil {
			f.Resolve(struct{}{}, fmt.Errorf("maxmin: write ts=%d: %w", ts, err))
			return
		}
		w.mu.Lock()
		w.rounds.Add(1)
		w.writes++
		w.mu.Unlock()
		f.Resolve(struct{}{}, nil)
	})
	err := protoutil.Broadcast(w.node, w.servers, req, w.tr)
	if err == nil {
		w.ts = ts.Next()
		w.prev = cur
	}
	w.mu.Unlock()
	if err != nil {
		op.Abort(err)
		return nil, fmt.Errorf("maxmin: write ts=%d: %w", ts, err)
	}
	f.Bind(ctx, op)
	return f, nil
}

// Stats reports completed writes and total round-trips.
func (w *Writer) Stats() (writes, roundTrips int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, w.rounds.Total()
}

// Close detaches the writer from the network.
func (w *Writer) Close() error { return w.node.Close() }

// ReadResult is what a max-min read returns.
type ReadResult struct {
	Value      types.Value
	Timestamp  types.Timestamp
	RoundTrips int
}

// Reader is the max-min reader: a single request/response exchange with a
// majority of servers, returning the value with the MINIMUM timestamp among
// the replies (each of which is itself a majority-maximum). ReadAsync keeps
// up to depth reads in flight, matched to their gossip rounds and
// acknowledgements by rCounter nonces (the servers' per-reader reply
// bookkeeping tolerates out-of-order completion; see registerState).
type Reader struct {
	cfg     quorum.Config
	key     string
	tr      *trace.Trace
	node    transport.Node
	id      types.ProcessID
	servers []types.ProcessID
	pl      *protoutil.Pipeline

	mu       sync.Mutex
	rCounter int64
	rounds   stats.Counter
	reads    int64
}

// NewReader creates a max-min reader for the default register.
func NewReader(cfg quorum.Config, node transport.Node, tr *trace.Trace) (*Reader, error) {
	return NewKeyedReader("", cfg, 0, node, tr)
}

// NewKeyedReader creates a max-min reader for the named register. depth
// bounds the reads kept in flight by ReadAsync (non-positive means
// protoutil.DefaultPipelineDepth).
func NewKeyedReader(key string, cfg quorum.Config, depth int, node transport.Node, tr *trace.Trace) (*Reader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("maxmin: reader requires a transport node")
	}
	id := node.ID()
	if id.Role != types.RoleReader || id.Index < 1 {
		return nil, fmt.Errorf("%w: got %v", ErrNotReader, id)
	}
	return &Reader{
		cfg:      cfg,
		key:      key,
		tr:       tr,
		node:     node,
		id:       id,
		servers:  protoutil.ServerIDs(cfg.Servers),
		pl:       protoutil.NewPipeline(node, depth, tr),
		rCounter: protoutil.InitialNonce(),
	}, nil
}

// SeedNonce overrides the reader's initial operation counter (see
// protoutil.StartNonce; deterministic simulation). It must be called before
// the first read; non-positive values are ignored.
func (r *Reader) SeedNonce(n int64) {
	if n > 0 {
		r.rCounter = n
	}
}

// Read returns the register value. One client round-trip, but servers gossip
// among themselves before replying (ReadAsync at depth one).
func (r *Reader) Read(ctx context.Context) (ReadResult, error) {
	f, err := r.ReadAsync(ctx)
	if err != nil {
		return ReadResult{}, err
	}
	return f.Result(ctx)
}

// ReadAsync submits one read and returns its future without waiting for the
// majority of replies.
func (r *Reader) ReadAsync(ctx context.Context) (*protoutil.Future[ReadResult], error) {
	if err := r.pl.Acquire(ctx); err != nil {
		return nil, fmt.Errorf("maxmin: read: %w", err)
	}
	f := protoutil.NewFuture[ReadResult]()

	r.mu.Lock()
	r.rCounter++
	rc := r.rCounter
	req := &wire.Message{Op: wire.OpRead, Key: r.key, RCounter: rc}
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpReadAck && m.Key == r.key && m.RCounter == rc
	}
	op := r.pl.Register(r.cfg.Majority(), filter, func(acks []protoutil.Ack, err error) {
		if err != nil {
			f.Resolve(ReadResult{}, fmt.Errorf("maxmin: read rc=%d: %w", rc, err))
			return
		}
		r.mu.Lock()
		r.rounds.Add(1)
		r.reads++
		r.mu.Unlock()
		// Return the value with the minimum timestamp among the replies.
		min := acks[0].Msg
		for _, a := range acks[1:] {
			if a.Msg.TS < min.TS {
				min = a.Msg
			}
		}
		f.Resolve(ReadResult{
			Value:      min.Cur.Clone(),
			Timestamp:  min.TS,
			RoundTrips: 1,
		}, nil)
	})
	err := protoutil.Broadcast(r.node, r.servers, req, r.tr)
	r.mu.Unlock()
	if err != nil {
		op.Abort(err)
		return nil, fmt.Errorf("maxmin: read rc=%d: %w", rc, err)
	}
	f.Bind(ctx, op)
	return f, nil
}

// Stats reports completed reads and total client round-trips.
func (r *Reader) Stats() (reads, roundTrips int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reads, r.rounds.Total()
}

// Close detaches the reader from the network.
func (r *Reader) Close() error { return r.node.Close() }
