package maxmin

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastread/internal/quorum"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

type deployment struct {
	t       *testing.T
	cfg     quorum.Config
	net     *transport.InMemNetwork
	servers []*Server
}

func newDeployment(t *testing.T, cfg quorum.Config) *deployment {
	t.Helper()
	d := &deployment{t: t, cfg: cfg, net: transport.NewInMemNetwork()}
	t.Cleanup(func() { _ = d.net.Close() })
	for i := 1; i <= cfg.Servers; i++ {
		node, err := d.net.Join(types.Server(i))
		if err != nil {
			t.Fatalf("join server %d: %v", i, err)
		}
		srv, err := NewServer(ServerConfig{ID: types.Server(i), Quorum: cfg}, node)
		if err != nil {
			t.Fatalf("new server %d: %v", i, err)
		}
		srv.Start()
		d.servers = append(d.servers, srv)
		t.Cleanup(srv.Stop)
	}
	return d
}

func (d *deployment) ctx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	d.t.Cleanup(cancel)
	return ctx
}

func (d *deployment) writer() *Writer {
	d.t.Helper()
	node, err := d.net.Join(types.Writer())
	if err != nil {
		d.t.Fatal(err)
	}
	w, err := NewWriter(d.cfg, node, nil)
	if err != nil {
		d.t.Fatal(err)
	}
	return w
}

func (d *deployment) reader(i int) *Reader {
	d.t.Helper()
	node, err := d.net.Join(types.Reader(i))
	if err != nil {
		d.t.Fatal(err)
	}
	r, err := NewReader(d.cfg, node, nil)
	if err != nil {
		d.t.Fatal(err)
	}
	return r
}

func TestReadBeforeWriteReturnsBottom(t *testing.T) {
	d := newDeployment(t, quorum.Config{Servers: 4, Faulty: 1, Readers: 2})
	r := d.reader(1)
	res, err := r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.IsBottom() || res.Timestamp != 0 {
		t.Errorf("read = %s ts=%d, want ⊥ ts=0", res.Value, res.Timestamp)
	}
}

func TestWriteThenReadReturnsValue(t *testing.T) {
	d := newDeployment(t, quorum.Config{Servers: 4, Faulty: 1, Readers: 2})
	w := d.writer()
	r := d.reader(1)
	if err := w.Write(d.ctx(), types.Value("hello")); err != nil {
		t.Fatal(err)
	}
	res, err := r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(types.Value("hello")) || res.Timestamp != 1 {
		t.Errorf("read = %s ts=%d, want hello ts=1", res.Value, res.Timestamp)
	}
	if res.RoundTrips != 1 {
		t.Errorf("client round trips = %d, want 1", res.RoundTrips)
	}
}

func TestSequentialReadsMonotone(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 3}
	d := newDeployment(t, cfg)
	w := d.writer()
	readers := []*Reader{d.reader(1), d.reader(2), d.reader(3)}

	var last types.Timestamp
	for i := 1; i <= 8; i++ {
		if err := w.Write(d.ctx(), types.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		for ri, r := range readers {
			res, err := r.Read(d.ctx())
			if err != nil {
				t.Fatal(err)
			}
			if res.Timestamp < last {
				t.Fatalf("reader %d saw ts=%d after ts=%d", ri+1, res.Timestamp, last)
			}
			if res.Timestamp != types.Timestamp(i) {
				t.Fatalf("reader %d saw ts=%d after write %d completed", ri+1, res.Timestamp, i)
			}
			last = res.Timestamp
		}
	}
}

func TestGossipPropagatesIncompleteWrite(t *testing.T) {
	// The written value reaches only one server (the writer is blocked from
	// the rest and the write cannot complete). A read triggers gossip, which
	// spreads the highest timestamp to a majority; the read returns the
	// minimum over majority-maxima, so it may return either the old or the
	// new value — but after it returns the new value, a subsequent read must
	// not return the old one.
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 2}
	d := newDeployment(t, cfg)
	w := d.writer()
	r1 := d.reader(1)
	r2 := d.reader(2)

	if err := w.Write(d.ctx(), types.Value("v1")); err != nil {
		t.Fatal(err)
	}

	for i := 2; i <= cfg.Servers; i++ {
		d.net.Block(types.Writer(), types.Server(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := w.Write(ctx, types.Value("v2")); err == nil {
		t.Fatal("blocked write should not complete")
	}

	var last types.Timestamp
	for i := 0; i < 6; i++ {
		for _, r := range []*Reader{r1, r2} {
			res, err := r.Read(d.ctx())
			if err != nil {
				t.Fatal(err)
			}
			if res.Timestamp < last {
				t.Fatalf("new/old inversion: ts=%d after ts=%d", res.Timestamp, last)
			}
			last = res.Timestamp
		}
	}
}

func TestToleratesMinorityCrash(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 1}
	d := newDeployment(t, cfg)
	w := d.writer()
	r := d.reader(1)
	if err := w.Write(d.ctx(), types.Value("v1")); err != nil {
		t.Fatal(err)
	}
	d.net.Crash(types.Server(4))
	d.net.Crash(types.Server(5))
	if err := w.Write(d.ctx(), types.Value("v2")); err != nil {
		t.Fatal(err)
	}
	res, err := r.Read(d.ctx())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Value.Equal(types.Value("v2")) {
		t.Errorf("read = %s, want v2", res.Value)
	}
}

func TestConcurrentReadersDistinctGossipRounds(t *testing.T) {
	cfg := quorum.Config{Servers: 7, Faulty: 3, Readers: 4}
	d := newDeployment(t, cfg)
	w := d.writer()
	if err := w.Write(d.ctx(), types.Value("base")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 1; i <= 4; i++ {
		r := d.reader(i)
		wg.Add(1)
		go func(r *Reader, idx int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				res, err := r.Read(d.ctx())
				if err != nil {
					t.Errorf("reader %d read %d: %v", idx, j, err)
					return
				}
				if res.Value.IsBottom() {
					t.Errorf("reader %d read %d returned ⊥ after a completed write", idx, j)
					return
				}
			}
		}(r, i)
	}
	wg.Wait()
}

func TestWriterValidation(t *testing.T) {
	cfg := quorum.Config{Servers: 3, Faulty: 1, Readers: 1}
	d := newDeployment(t, cfg)
	node, err := d.net.Join(types.Reader(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWriter(cfg, node, nil); !errors.Is(err, ErrNotWriter) {
		t.Errorf("err = %v, want ErrNotWriter", err)
	}
	if _, err := NewReader(cfg, nil, nil); err == nil {
		t.Error("nil node accepted")
	}
	wNode, err := d.net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(cfg, wNode, nil); !errors.Is(err, ErrNotReader) {
		t.Errorf("err = %v, want ErrNotReader", err)
	}
	w, err := NewWriter(cfg, wNode, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(d.ctx(), types.Bottom()); !errors.Is(err, ErrBottomWrite) {
		t.Errorf("err = %v, want ErrBottomWrite", err)
	}
	if _, err := NewServer(ServerConfig{ID: types.Writer(), Quorum: cfg}, wNode); err == nil {
		t.Error("writer identity accepted as server")
	}
}

func TestServerStateAdoptsGossipMaximum(t *testing.T) {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	d := newDeployment(t, cfg)
	w := d.writer()
	r := d.reader(1)

	// Write reaches a majority; server 4 may or may not have it. After a
	// read (which gossips), eventually servers that participated hold ts=1.
	if err := w.Write(d.ctx(), types.Value("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(d.ctx()); err != nil {
		t.Fatal(err)
	}
	count := 0
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		count = 0
		for _, s := range d.servers {
			if s.State().TS >= 1 {
				count++
			}
		}
		if count >= cfg.Majority() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if count < cfg.Majority() {
		t.Errorf("only %d servers adopted ts=1 after gossip, want ≥ %d", count, cfg.Majority())
	}
}

// TestPendingReadsGarbageCollected verifies that the per-read gossip
// bookkeeping does not leak: once every gossip for a read has been
// delivered, no server retains a pending entry for it — including the
// servers whose reply raced ahead of the late gossip, which must not
// re-create the entry.
func TestPendingReadsGarbageCollected(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 1}
	d := newDeployment(t, cfg)
	ctx := d.ctx()
	w := d.writer()
	r := d.reader(1)

	if err := w.Write(ctx, types.Value("v1")); err != nil {
		t.Fatal(err)
	}
	const reads = 20
	for i := 0; i < reads; i++ {
		if _, err := r.Read(ctx); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}

	// All gossip is in flight or delivered; wait for the inboxes to drain,
	// then every server's pending map for the default register must be empty.
	deadline := time.Now().Add(5 * time.Second)
	for {
		leaked := 0
		for _, srv := range d.servers {
			srv.states.Peek("", func(st *registerState) { leaked += len(st.pending) })
		}
		if leaked == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d pending read entries leaked across servers after %d reads", leaked, reads)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOlderInFlightReadSurvivesNewerReply pins the pipelined-reader
// interleaving the old serial watermark got wrong: a server holds gossip
// bookkeeping for read rc=1 that has not reached a majority there yet, then
// replies to the reader's rc=2. With a pipelining reader both reads can be
// live at once, so rc=1's bookkeeping must SURVIVE the newer reply — its
// late gossip then completes it — while gossip arriving after its completion
// must not resurrect it.
func TestOlderInFlightReadSurvivesNewerReply(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 2, Readers: 1}
	net := transport.NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	node, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{ID: types.Server(1), Quorum: cfg}, node)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the handlers directly (no Start): sends to processes that never
	// joined are silently dropped, which is all this test needs.

	gossip := func(rc int64) *wire.Message {
		return &wire.Message{Op: wire.OpGossip, TS: 0, RCounter: rc, Phase: 1}
	}
	// Read rc=1: request arrives plus one peer gossip — 2 of the needed 3,
	// so the server cannot reply yet and the entry lingers.
	srv.handleRead(types.Reader(1), &wire.Message{Op: wire.OpRead, RCounter: 1}, srv.node)
	srv.handleGossip(types.Server(2), gossip(1), srv.node)
	// Read rc=2 completes here: request plus two peer gossips reach the
	// majority of 3 and the server replies. The reply frontier records rc=2
	// above the watermark; rc=1 is still open.
	srv.handleRead(types.Reader(1), &wire.Message{Op: wire.OpRead, RCounter: 2}, srv.node)
	srv.handleGossip(types.Server(2), gossip(2), srv.node)
	srv.handleGossip(types.Server(3), gossip(2), srv.node)

	pending := -1
	srv.states.Peek("", func(st *registerState) {
		pending = len(st.pending)
		if st.done(readKey{Reader: 1, RCounter: 1}) {
			t.Error("live rc=1 classified as done after rc=2 replied")
		}
	})
	if pending != 1 {
		t.Fatalf("in-flight rc=1 bookkeeping not retained: %d pending entries", pending)
	}
	// Its late gossip completes rc=1: majority reached, reply sent, entry
	// gone, frontier contiguous through rc=2.
	srv.handleGossip(types.Server(4), gossip(1), srv.node)
	srv.states.Peek("", func(st *registerState) {
		pending = len(st.pending)
		p := st.replied[1]
		if p == nil || p.watermark != 2 || len(p.above) != 0 {
			t.Errorf("frontier did not fold contiguously: %+v", p)
		}
	})
	if pending != 0 {
		t.Fatalf("completed rc=1 bookkeeping leaked: %d entries", pending)
	}
	// Gossip arriving after completion must not resurrect either read.
	srv.handleGossip(types.Server(5), gossip(1), srv.node)
	srv.handleGossip(types.Server(5), gossip(2), srv.node)
	srv.states.Peek("", func(st *registerState) { pending = len(st.pending) })
	if pending != 0 {
		t.Fatalf("late gossip resurrected a finished read: %d entries", pending)
	}
}

// TestAbandonedReadForcedPastByReplyLag pins the frontier's memory bound: a
// read whose rCounter is never answered (the reader cancelled it) must not
// pin the watermark — and with it the answered-set and its gossip
// bookkeeping — forever. Once the gap falls maxReplyLag behind, it is
// presumed abandoned, the watermark forced past it, and its bookkeeping
// swept.
func TestAbandonedReadForcedPastByReplyLag(t *testing.T) {
	st := &registerState{
		pending: make(map[readKey]*pendingRead),
		replied: make(map[int]*readerProgress),
	}
	// rc=1 is abandoned: gossip state exists, no reply ever happens.
	st.pending[readKey{Reader: 1, RCounter: 1}] = &pendingRead{gossips: map[types.ProcessID]types.TaggedValue{}}
	// rc=2..maxReplyLag+2 all reply; the watermark cannot pass the rc=1 gap
	// until the lag bound trips.
	for rc := int64(2); rc <= maxReplyLag+2; rc++ {
		st.markReplied(readKey{Reader: 1, RCounter: rc})
	}
	p := st.replied[1]
	if p.watermark < 2 {
		t.Fatalf("watermark %d never forced past the abandoned gap", p.watermark)
	}
	if len(p.above) > maxReplyLag {
		t.Fatalf("answered-set unbounded: %d entries", len(p.above))
	}
	if len(st.pending) != 0 {
		t.Fatalf("abandoned read's bookkeeping not swept: %d entries", len(st.pending))
	}
	// The abandoned read is now (and stays) done: late traffic is dropped.
	if !st.done(readKey{Reader: 1, RCounter: 1}) {
		t.Fatal("abandoned read below the forced watermark not classified done")
	}
}
