package maxmin

import (
	"context"

	"fastread/internal/driver"
	"fastread/internal/transport"
)

// init registers the decentralised max-min register with the driver registry.
func init() {
	driver.Register(driver.Driver{
		Name:     "maxmin",
		Validate: driver.MajorityValidate("maxmin"),
		NewServer: func(cfg driver.ServerConfig, node transport.Node) (driver.Server, error) {
			s, err := NewServer(ServerConfig{ID: cfg.ID, Quorum: cfg.Quorum, Workers: cfg.Workers, QueueBound: cfg.QueueBound, Durable: cfg.Durable}, node)
			if err != nil {
				return nil, err
			}
			return maxminServerHandle{s}, nil
		},
		NewWriter: func(cfg driver.ClientConfig, node transport.Node) (driver.Writer, error) {
			w, err := NewKeyedWriter(cfg.Key, cfg.Quorum, cfg.Depth, node, nil)
			if err != nil {
				return nil, err
			}
			return driver.AdaptWriter(w), nil
		},
		NewReader: func(cfg driver.ClientConfig, node transport.Node) (driver.Reader, error) {
			r, err := NewKeyedReader(cfg.Key, cfg.Quorum, cfg.Depth, node, nil)
			if err != nil {
				return nil, err
			}
			r.SeedNonce(cfg.Nonce)
			return maxminReaderHandle{r}, nil
		},
	})
}

// maxminServerHandle adds the mutation counter the max-min server does not
// track.
type maxminServerHandle struct{ *Server }

func (maxminServerHandle) TotalMutations() int64 { return 0 }

// maxminReaderHandle adapts the max-min reader to the uniform driver result.
type maxminReaderHandle struct{ r *Reader }

func (h maxminReaderHandle) Read(ctx context.Context) (driver.ReadResult, error) {
	res, err := h.r.Read(ctx)
	if err != nil {
		return driver.ReadResult{}, err
	}
	return maxminResult(res), nil
}

func (h maxminReaderHandle) ReadAsync(ctx context.Context) (driver.ReadFuture, error) {
	f, err := h.r.ReadAsync(ctx)
	if err != nil {
		return nil, err
	}
	return driver.ReadFutureOf(f, maxminResult), nil
}

// maxminResult adapts the max-min reader's result to the uniform driver
// result.
func maxminResult(res ReadResult) driver.ReadResult {
	return driver.ReadResult{Value: res.Value, Timestamp: res.Timestamp, RoundTrips: res.RoundTrips}
}

func (h maxminReaderHandle) Stats() (reads, roundTrips, fallbacks int64) {
	r, t := h.r.Stats()
	return r, t, 0
}
