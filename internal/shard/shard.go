// Package shard provides the striped, lazily-populated keyed state map that
// lets one server process host many independent registers.
//
// Every register protocol in this repository keeps a small amount of
// per-register state on each server (a tagged value, a seen set, per-client
// counters). Multiplexing many named registers over one server goroutine set
// means replacing that single state with a map from register key to state.
// Map is that map: keys are hashed onto a fixed set of stripes, each stripe
// guarded by its own mutex, so operations on different keys rarely contend
// while operations on the same key are serialised — exactly the per-register
// mutual exclusion the single-register servers enforced with one mutex.
//
// State is created lazily on first touch: a server needs no configuration to
// accept a new key, mirroring how a deployment serves an open-ended keyspace.
package shard

import (
	"sync"
)

// DefaultStripes is the stripe count used when NewMap is given a
// non-positive one. 64 stripes keep contention negligible for realistic
// goroutine counts while costing only 64 mutexes per server.
const DefaultStripes = 64

// Map is a striped map from register key to per-register state S. The zero
// value is not usable; construct with NewMap.
type Map[S any] struct {
	newState func(key string) S
	stripes  []stripe[S]
}

type stripe[S any] struct {
	mu sync.Mutex
	m  map[string]S
}

// NewMap builds a striped map with the given stripe count (DefaultStripes if
// n <= 0). newState is invoked, under the stripe lock, the first time a key
// is touched.
func NewMap[S any](n int, newState func(key string) S) *Map[S] {
	if n <= 0 {
		n = DefaultStripes
	}
	m := &Map[S]{
		newState: newState,
		stripes:  make([]stripe[S], n),
	}
	for i := range m.stripes {
		m.stripes[i].m = make(map[string]S)
	}
	return m
}

// Hash is the 64-bit FNV-1a hash of a register key, inlined to keep key
// lookup allocation-free (hash/fnv forces the key through an io.Writer).
// Exported so every key-sharded component (this map's stripes, the
// transport executor's workers) shards with the same function.
func Hash(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// HashBytes is Hash over a byte-slice key view (the executor dispatches on
// wire.PeekKeyView results without materialising strings).
func HashBytes(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func (m *Map[S]) stripeFor(key string) *stripe[S] {
	return &m.stripes[Hash(key)%uint64(len(m.stripes))]
}

// Do runs fn with the key's state while holding the key's stripe lock,
// creating the state first if the key has never been touched. Two Do calls
// for the same key never overlap; fn must not call back into the Map.
func (m *Map[S]) Do(key string, fn func(S)) {
	st := m.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[key]
	if !ok {
		s = m.newState(key)
		st.m[key] = s
	}
	fn(s)
}

// Peek runs fn with the key's state if (and only if) the key has been
// touched before, returning whether it had. It never instantiates state, so
// read-only inspection of a server does not grow its keyspace.
func (m *Map[S]) Peek(key string, fn func(S)) bool {
	st := m.stripeFor(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	s, ok := st.m[key]
	if !ok {
		return false
	}
	fn(s)
	return true
}

// Len returns the number of instantiated keys.
func (m *Map[S]) Len() int {
	total := 0
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		total += len(st.m)
		st.mu.Unlock()
	}
	return total
}

// Keys returns every instantiated key, in no particular order.
func (m *Map[S]) Keys() []string {
	out := make([]string, 0, m.Len())
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		for k := range st.m {
			out = append(out, k)
		}
		st.mu.Unlock()
	}
	return out
}

// Range runs fn for every instantiated key under that key's stripe lock.
// Keys added concurrently with the iteration may or may not be visited.
func (m *Map[S]) Range(fn func(key string, s S)) {
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		for k, s := range st.m {
			fn(k, s)
		}
		st.mu.Unlock()
	}
}
