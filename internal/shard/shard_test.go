package shard

import (
	"fmt"
	"sync"
	"testing"
)

type counter struct {
	key string
	n   int
}

func newCounterMap(stripes int) *Map[*counter] {
	return NewMap(stripes, func(key string) *counter { return &counter{key: key} })
}

func TestLazyInstantiation(t *testing.T) {
	m := newCounterMap(8)
	if m.Len() != 0 {
		t.Fatalf("fresh map has %d keys", m.Len())
	}
	if m.Peek("a", func(*counter) { t.Error("Peek instantiated state") }) {
		t.Error("Peek reported an untouched key as present")
	}
	m.Do("a", func(c *counter) {
		if c.key != "a" {
			t.Errorf("state created with key %q", c.key)
		}
		c.n++
	})
	if m.Len() != 1 {
		t.Fatalf("after one Do, Len = %d", m.Len())
	}
	found := m.Peek("a", func(c *counter) {
		if c.n != 1 {
			t.Errorf("state not shared between Do and Peek: n=%d", c.n)
		}
	})
	if !found {
		t.Error("Peek missed a touched key")
	}
}

func TestKeysAndRange(t *testing.T) {
	m := newCounterMap(4)
	want := map[string]bool{"": true, "alpha": true, "beta": true}
	for k := range want {
		m.Do(k, func(c *counter) { c.n = len(k) })
	}
	keys := m.Keys()
	if len(keys) != len(want) {
		t.Fatalf("Keys returned %d keys, want %d", len(keys), len(want))
	}
	for _, k := range keys {
		if !want[k] {
			t.Errorf("unexpected key %q", k)
		}
	}
	visited := 0
	m.Range(func(k string, c *counter) {
		visited++
		if c.n != len(k) {
			t.Errorf("key %q carries n=%d, want %d", k, c.n, len(k))
		}
	})
	if visited != len(want) {
		t.Errorf("Range visited %d keys, want %d", visited, len(want))
	}
}

// TestConcurrentDoSerialisesPerKey hammers a small keyspace from many
// goroutines; per-key mutual exclusion means every increment must survive.
func TestConcurrentDoSerialisesPerKey(t *testing.T) {
	m := newCounterMap(0) // default stripe count
	const (
		workers = 16
		keys    = 37 // more keys than stripes is the interesting regime
		incs    = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				key := fmt.Sprintf("k%d", i%keys)
				m.Do(key, func(c *counter) { c.n++ })
			}
		}()
	}
	wg.Wait()
	if m.Len() != keys {
		t.Fatalf("Len = %d, want %d", m.Len(), keys)
	}
	total := 0
	m.Range(func(_ string, c *counter) { total += c.n })
	if total != workers*incs {
		t.Errorf("lost updates: total = %d, want %d", total, workers*incs)
	}
}

func TestEmptyKeyIsOrdinary(t *testing.T) {
	m := newCounterMap(2)
	m.Do("", func(c *counter) { c.n = 7 })
	if !m.Peek("", func(c *counter) {
		if c.n != 7 {
			t.Errorf("empty-key state n=%d", c.n)
		}
	}) {
		t.Error("empty key not found after Do")
	}
}
