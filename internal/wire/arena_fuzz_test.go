package wire

import (
	"testing"
	"unsafe"
)

// viewWithin reports whether view lies entirely inside buf's backing array.
// Empty views carry no bytes and are trivially in bounds.
func viewWithin(buf, view []byte) bool {
	if len(view) == 0 {
		return true
	}
	if len(buf) == 0 {
		return false
	}
	base := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	p := uintptr(unsafe.Pointer(unsafe.SliceData(view)))
	return p >= base && p+uintptr(len(view)) <= base+uintptr(len(buf))
}

// FuzzArenaDecode drives arbitrary bytes through the exact arena lifecycle
// the socket transports use on receive — copy the frame into a pooled arena,
// expand batch envelopes with one extra reference per sub-message, decode
// each view in alias mode — and asserts the two properties the zero-copy
// path depends on: every view (sub-message or decoded field) stays inside
// the arena's buffer, and releasing beyond the granted references panics
// rather than corrupting the next frame.
func FuzzArenaDecode(f *testing.F) {
	whole := NewBatch(0)
	for _, s := range fuzzSeeds() {
		f.Add(s)
		one := NewBatch(0)
		one.Append(s)
		f.Add(one.Bytes())
		whole.Append(s)
	}
	f.Add(whole.Bytes())
	// Hostile envelopes: counts and entry lengths that lie about the bytes
	// present, the shapes most likely to push a view out of bounds.
	f.Add([]byte{batchMarker, 2, 0, 0, 0, 1, 0, 0, 0, 'x'})
	f.Add([]byte{batchMarker, 1, 0, 0, 0, 0xFF, 0, 0, 0})
	f.Add([]byte{batchMarker, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		arena := GetArena(len(data))
		ab := arena.Bytes()
		copy(ab, data)

		// Expand exactly as the transports do: one reference per delivered
		// sub-message, then the creator's reference dropped.
		refs := 1
		var views [][]byte
		if IsBatch(ab) {
			_ = ForEachInBatch(ab, func(sub []byte) error {
				arena.Ref()
				refs++
				views = append(views, sub)
				return nil
			})
			arena.Release()
			refs--
		} else {
			views = append(views, ab)
		}
		if refs > 0 {
			if got := arena.Refs(); int(got) != refs {
				t.Fatalf("after expansion Refs() = %d, want %d", got, refs)
			}
		}

		for i, v := range views {
			if !viewWithin(ab, v) {
				t.Fatalf("sub-message %d escapes the arena buffer", i)
			}
			var m Message
			if err := DecodeInto(&m, v); err == nil {
				for name, field := range map[string][]byte{"Cur": m.Cur, "Prev": m.Prev, "WriterSig": m.WriterSig} {
					if !viewWithin(ab, field) {
						t.Fatalf("decoded field %s of sub-message %d escapes the arena buffer", name, i)
					}
				}
			}
			arena.Release()
			refs--
		}
		if refs != 0 {
			t.Fatalf("reference bookkeeping ended at %d, want 0", refs)
		}

		// A release beyond the granted references must panic loudly — an
		// underflow means live views' bytes would be handed to the next
		// frame. Probed on a local zero-reference arena that never touches
		// the pool, so the recycled arena above cannot be disturbed.
		var drained Arena
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("releasing a zero-reference arena did not panic")
				}
			}()
			drained.Release()
		}()
	})
}
