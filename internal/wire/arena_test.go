package wire

import "testing"

func TestArenaStartsWithOneReference(t *testing.T) {
	a := GetArena(64)
	if got := a.Refs(); got != 1 {
		t.Fatalf("fresh arena refs = %d, want 1", got)
	}
	if len(a.Bytes()) != 64 {
		t.Fatalf("buffer length = %d, want 64", len(a.Bytes()))
	}
	a.Release()
}

func TestArenaRefRelease(t *testing.T) {
	a := GetArena(16)
	a.Ref()
	a.Ref()
	if got := a.Refs(); got != 3 {
		t.Fatalf("refs = %d, want 3", got)
	}
	a.Release()
	a.Release()
	if got := a.Refs(); got != 1 {
		t.Fatalf("refs = %d, want 1", got)
	}
	a.Release()
}

func TestArenaViewsStayValidWhileReferenced(t *testing.T) {
	a := GetArena(8)
	copy(a.Bytes(), "payload!")
	view := a.Bytes()[:7]
	a.Ref()
	a.Release() // the delivered message's reference drops...
	if string(view) != "payload" {
		t.Fatalf("view corrupted while referenced: %q", view)
	}
	a.Release() // ...and the retainer's reference recycles the buffer.
}

func TestArenaDoubleReleasePanics(t *testing.T) {
	// Release the arena's only reference twice. The underflow must panic in
	// every build: handing a live frame buffer to the next frame is memory
	// corruption, and the discipline is deliberately loud in that direction.
	a := GetArena(4)
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	a.Release()
}

func TestArenaReuseGrowsBuffer(t *testing.T) {
	a := GetArena(4)
	a.Release()
	b := GetArena(128)
	if len(b.Bytes()) != 128 {
		t.Fatalf("buffer length = %d, want 128", len(b.Bytes()))
	}
	b.Release()
}
