// Package wire defines the protocol message vocabulary shared by every
// register implementation in this repository and a deterministic binary
// codec for it.
//
// All protocols (the fast algorithms of the paper's Figures 2 and 5, the ABD
// baselines, the max-min variant and the regular register) exchange messages
// drawn from the same small vocabulary: read/write requests from clients to
// servers, acknowledgements back, and — only for the max-min variant —
// server-to-server gossip. A single message struct with optional fields keeps
// the codec in one place and lets the TCP transport and the signature
// substrate operate on any protocol uniformly.
//
// The encoding is a hand-rolled, versioned, length-prefixed binary format
// built on encoding/binary. It is deterministic (a requirement for signing:
// the writer signs the exact bytes of the (ts, cur, prev) triple) and has no
// dependency outside the standard library.
package wire

import (
	"errors"
	"fmt"

	"fastread/internal/types"
)

// Op enumerates the message kinds used by the register protocols.
type Op uint8

const (
	// OpWrite is a write request from the writer to a server
	// (write, ts, value, rCounter) — Figure 2 line 5.
	OpWrite Op = iota + 1
	// OpWriteAck is a server's acknowledgement of a write — Figure 2 line 35.
	OpWriteAck
	// OpRead is a read request from a reader to a server
	// (read, ts, rCounter) — Figure 2 line 14.
	OpRead
	// OpReadAck is a server's reply to a read
	// (readack, ts, seen, rCounter) — Figure 2 line 33.
	OpReadAck
	// OpGossip is a server-to-server timestamp broadcast, used only by the
	// decentralised max-min baseline sketched in the paper's introduction.
	OpGossip
	// OpGossipAck is a server's reply to gossip, also max-min only.
	OpGossipAck
	// OpWriteBack is the second-phase message of the ABD baselines: a client
	// (reader in SWMR ABD, reader or writer in MWMR ABD) propagates a
	// timestamp/value pair to the servers before returning.
	OpWriteBack
	// OpWriteBackAck acknowledges an OpWriteBack.
	OpWriteBackAck
	// OpQuery is the first-phase timestamp query of the MWMR ABD write (the
	// writer must discover the current maximum timestamp before writing).
	OpQuery
	// OpQueryAck answers an OpQuery.
	OpQueryAck
)

// opNames maps ops to the transport-level message kind strings.
var opNames = map[Op]string{
	OpWrite:        "write",
	OpWriteAck:     "writeack",
	OpRead:         "read",
	OpReadAck:      "readack",
	OpGossip:       "gossip",
	OpGossipAck:    "gossipack",
	OpWriteBack:    "writeback",
	OpWriteBackAck: "writebackack",
	OpQuery:        "query",
	OpQueryAck:     "queryack",
}

// String returns the canonical lower-case name of the op.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether the op is one of the defined message kinds.
func (o Op) Valid() bool {
	_, ok := opNames[o]
	return ok
}

// IsRequest reports whether the op is a client- (or gossip-) initiated
// request, as opposed to an acknowledgement.
func (o Op) IsRequest() bool {
	switch o {
	case OpWrite, OpRead, OpGossip, OpWriteBack, OpQuery:
		return true
	default:
		return false
	}
}

// AckFor returns the acknowledgement op matching a request op.
func AckFor(o Op) (Op, error) {
	switch o {
	case OpWrite:
		return OpWriteAck, nil
	case OpRead:
		return OpReadAck, nil
	case OpGossip:
		return OpGossipAck, nil
	case OpWriteBack:
		return OpWriteBackAck, nil
	case OpQuery:
		return OpQueryAck, nil
	default:
		return 0, fmt.Errorf("wire: no ack op for %v", o)
	}
}

// Message is the single protocol message structure shared by all register
// implementations. Fields that a given protocol does not use are left at
// their zero values and cost two bytes each on the wire.
type Message struct {
	// Op is the message kind.
	Op Op
	// Key names the register the message belongs to. One deployment
	// multiplexes many independent registers over the same server processes;
	// every protocol message carries the key of the register it operates on,
	// and servers keep fully separate state per key. The empty key is the
	// deployment's default register and is what single-register (Cluster)
	// deployments use, so legacy traffic is simply keyed traffic on "".
	Key string
	// TS is the logical timestamp carried by the message. For OpRead it is
	// the highest timestamp previously returned/observed by the reader
	// (Figure 2 line 13); for acks it is the server's current timestamp.
	TS types.Timestamp
	// Cur and Prev carry the value written at TS and at TS−1 respectively
	// (the "two tags" of Section 4).
	Cur types.Value
	// Prev is the value written immediately before Cur.
	Prev types.Value
	// Seen is the server's seen set: the processes the server replied to
	// since it last changed its timestamp (Figure 2 lines 28-30).
	Seen []types.ProcessID
	// RCounter is the per-reader operation counter used to match acks to the
	// read that solicited them (Figure 2 line 13); always 0 for the writer.
	RCounter int64
	// WriterSig is the writer's signature over (TS, Cur, Prev); only used by
	// the arbitrary-failure algorithm (Figure 5).
	WriterSig []byte
	// WriterRank identifies the writer in multi-writer protocols (the MWMR
	// ABD baseline); timestamps are ordered lexicographically by
	// (TS, WriterRank). Zero for single-writer protocols.
	WriterRank int32
	// Phase disambiguates protocol-internal phases when the same op is used
	// in different roles (unused by the paper's algorithms; reserved for the
	// baselines).
	Phase int32

	// keyMemo caches the most recent non-empty Key this message decoded
	// (alias mode only): almost all of a scratch message's traffic names the
	// same register back to back, so re-materialising the key string per
	// message would be the hot path's dominant allocation. Strings are
	// immutable, so sharing the memo through Detach/Clone copies is safe;
	// Reset and DecodeInto preserve it across reuse.
	keyMemo string
}

// Kind returns the transport-level message kind string for this message.
func (m *Message) Kind() string { return m.Op.String() }

// SeenSet returns the Seen slice as a ProcessSet.
func (m *Message) SeenSet() types.ProcessSet {
	return types.NewProcessSet(m.Seen...)
}

// Tagged returns the timestamp/value pair carried by the message.
func (m *Message) Tagged() types.TaggedValue {
	return types.TaggedValue{TS: m.TS, Cur: m.Cur, Prev: m.Prev}
}

// Validate performs structural sanity checks on a decoded message. It guards
// servers and clients against malformed (including maliciously crafted)
// payloads: the paper assumes a process "can detect that the message is
// incomplete, and ignores such a message".
func (m *Message) Validate() error {
	if !m.Op.Valid() {
		return fmt.Errorf("%w: bad op %d", ErrMalformed, m.Op)
	}
	if len(m.Key) > MaxKeySize {
		return fmt.Errorf("%w: key too long (%d bytes)", ErrMalformed, len(m.Key))
	}
	if m.TS < 0 {
		return fmt.Errorf("%w: negative timestamp %d", ErrMalformed, m.TS)
	}
	if m.RCounter < 0 {
		return fmt.Errorf("%w: negative rCounter %d", ErrMalformed, m.RCounter)
	}
	for _, p := range m.Seen {
		if !p.Valid() {
			return fmt.Errorf("%w: invalid process id %v in seen set", ErrMalformed, p)
		}
	}
	return nil
}

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	out := *m
	out.Cur = m.Cur.Clone()
	out.Prev = m.Prev.Clone()
	if m.Seen != nil {
		out.Seen = make([]types.ProcessID, len(m.Seen))
		copy(out.Seen, m.Seen)
	}
	if m.WriterSig != nil {
		out.WriterSig = make([]byte, len(m.WriterSig))
		copy(out.WriterSig, m.WriterSig)
	}
	return &out
}

// Errors returned by the codec.
var (
	// ErrMalformed indicates bytes that do not decode to a valid message.
	ErrMalformed = errors.New("wire: malformed message")
	// ErrVersion indicates an unsupported format version.
	ErrVersion = errors.New("wire: unsupported format version")
)
