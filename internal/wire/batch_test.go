package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"fastread/internal/types"
)

// collectBatch decodes every payload view of a batch into owned copies.
func collectBatch(t *testing.T, data []byte) [][]byte {
	t.Helper()
	var out [][]byte
	if err := ForEachInBatch(data, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatalf("ForEachInBatch: %v", err)
	}
	return out
}

func TestBatchRoundTrip(t *testing.T) {
	msgs := sampleMessages()
	b := NewBatch(0)
	var want [][]byte
	for i, m := range msgs {
		enc := MustEncode(m)
		want = append(want, enc)
		// Alternate the two append paths; they must be byte-identical.
		if i%2 == 0 {
			b.Append(enc)
		} else if err := b.AppendMessage(m); err != nil {
			t.Fatalf("AppendMessage: %v", err)
		}
	}
	if b.Count() != len(msgs) {
		t.Fatalf("Count = %d, want %d", b.Count(), len(msgs))
	}
	data := b.Bytes()
	if !IsBatch(data) {
		t.Fatal("encoded batch not recognised by IsBatch")
	}
	got := collectBatch(t, data)
	if len(got) != len(want) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("message %d differs after batch round trip", i)
		}
		if _, err := Decode(got[i]); err != nil {
			t.Fatalf("message %d undecodable after batch round trip: %v", i, err)
		}
	}
}

func TestBatchPrefix(t *testing.T) {
	const prefix = 20
	b := NewBatch(prefix)
	enc := MustEncode(&Message{Op: OpReadAck, TS: 7, RCounter: 3})
	b.Append(enc)

	full := b.PrefixedBytes()
	if len(full) != prefix+b.Size() {
		t.Fatalf("PrefixedBytes len %d, want prefix %d + size %d", len(full), prefix, b.Size())
	}
	if !IsBatch(full[prefix:]) {
		t.Fatal("envelope does not start after the reserved prefix")
	}
	if !bytes.Equal(b.Bytes(), full[prefix:]) {
		t.Fatal("Bytes and PrefixedBytes disagree on the envelope")
	}
}

func TestBatchSplice(t *testing.T) {
	inner := NewBatch(0)
	m1 := MustEncode(&Message{Op: OpReadAck, TS: 1})
	m2 := MustEncode(&Message{Op: OpWriteAck, TS: 2})
	inner.Append(m1)
	inner.Append(m2)

	outer := NewBatch(0)
	m0 := MustEncode(&Message{Op: OpRead, RCounter: 9})
	outer.Append(m0)
	if err := outer.Splice(inner.Bytes()); err != nil {
		t.Fatalf("Splice: %v", err)
	}
	got := collectBatch(t, outer.Bytes())
	if len(got) != 3 {
		t.Fatalf("spliced batch has %d messages, want 3", len(got))
	}
	for i, want := range [][]byte{m0, m1, m2} {
		if !bytes.Equal(got[i], want) {
			t.Fatalf("spliced message %d differs", i)
		}
	}
	if err := outer.Splice([]byte{1, 2, 3}); err == nil {
		t.Fatal("Splice accepted a non-batch payload")
	}
}

func TestBatchEmptyAndReset(t *testing.T) {
	b := NewBatch(0)
	if b.Bytes() != nil || b.PrefixedBytes() != nil {
		t.Fatal("empty batch produced bytes")
	}
	b.Append([]byte("x"))
	b.Reset()
	if b.Count() != 0 || b.Bytes() != nil {
		t.Fatal("Reset did not empty the batch")
	}
	b.Append([]byte("y"))
	if got := collectBatch(t, b.Bytes()); len(got) != 1 || string(got[0]) != "y" {
		t.Fatalf("reused batch decoded to %q", got)
	}
	b.Detach()
	if b.buf != nil {
		t.Fatal("Detach retained the buffer")
	}
}

func TestForEachInBatchMalformed(t *testing.T) {
	valid := NewBatch(0)
	valid.Append(MustEncode(&Message{Op: OpRead, RCounter: 1}))
	data := append([]byte(nil), valid.Bytes()...)

	cases := map[string][]byte{
		"empty":            nil,
		"short header":     {batchMarker, 1, 0},
		"not a batch":      {formatVersion, 1, 0, 0, 0},
		"huge count":       {batchMarker, 0xFF, 0xFF, 0xFF, 0xFF},
		"count overruns":   {batchMarker, 2, 0, 0, 0, 1, 0, 0, 0, 'x'},
		"entry overruns":   {batchMarker, 1, 0, 0, 0, 9, 0, 0, 0, 'x'},
		"trailing bytes":   append(append([]byte(nil), data...), 0xEE),
		"truncated entry":  data[:len(data)-1],
		"zero with excess": {batchMarker, 0, 0, 0, 0, 1},
	}
	for name, bad := range cases {
		if err := ForEachInBatch(bad, func([]byte) error { return nil }); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}

	// A zero-message batch with no trailing bytes is a valid no-op.
	calls := 0
	if err := ForEachInBatch([]byte{batchMarker, 0, 0, 0, 0}, func([]byte) error { calls++; return nil }); err != nil {
		t.Errorf("zero-message batch: %v", err)
	}
	if calls != 0 {
		t.Errorf("zero-message batch invoked fn %d times", calls)
	}

	// fn errors propagate and stop the iteration.
	sentinel := errors.New("stop")
	if err := ForEachInBatch(data, func([]byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("fn error not propagated: %v", err)
	}
}

func TestBatchCountMatchesIteration(t *testing.T) {
	b := NewBatch(0)
	for i := 0; i < 17; i++ {
		b.Append(MustEncode(&Message{Op: OpReadAck, TS: types.Timestamp(i + 1)}))
	}
	n, err := BatchCount(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if n != 17 {
		t.Fatalf("BatchCount = %d, want 17", n)
	}
}

// TestBatchSingleDecodersReject pins the marker/version separation both
// ways: a batch envelope must never decode as a single message (or leak a
// key to the demux), and a single message must never be taken for a batch.
func TestBatchSingleDecodersReject(t *testing.T) {
	b := NewBatch(0)
	b.Append(MustEncode(&Message{Op: OpRead, Key: "k", RCounter: 1}))
	env := b.Bytes()
	if _, err := Decode(env); err == nil {
		t.Fatal("Decode accepted a batch envelope")
	}
	if _, err := PeekKey(env); err == nil {
		t.Fatal("PeekKey accepted a batch envelope")
	}
	single := MustEncode(&Message{Op: OpRead, Key: "k", RCounter: 1})
	if IsBatch(single) {
		t.Fatal("IsBatch accepted a single message")
	}
	if _, err := BatchCount(single); err == nil {
		t.Fatal("BatchCount accepted a single message")
	}
}

func TestBatchAppendMessageRejectsInvalid(t *testing.T) {
	b := NewBatch(0)
	big := &Message{Op: OpWrite, Cur: make(types.Value, MaxValueSize+1)}
	if err := b.AppendMessage(big); err == nil {
		t.Fatal("AppendMessage accepted an oversized value")
	}
	if b.Count() != 0 || b.Size() != 0 {
		t.Fatalf("failed append left partial bytes: count=%d size=%d", b.Count(), b.Size())
	}
	// The buffer must still be usable after the rejected append.
	b.Append([]byte("ok"))
	if got := collectBatch(t, b.Bytes()); len(got) != 1 || string(got[0]) != "ok" {
		t.Fatalf("batch unusable after rejected append: %q", got)
	}
}

// verify header invariants the tcpnet flusher relies on.
func TestBatchHeaderLayout(t *testing.T) {
	b := NewBatch(0)
	b.Append([]byte{0xAA})
	data := b.Bytes()
	if data[0] != batchMarker {
		t.Fatalf("marker byte = %#x", data[0])
	}
	if binary.LittleEndian.Uint32(data[1:]) != 1 {
		t.Fatalf("count field = %d, want 1", binary.LittleEndian.Uint32(data[1:]))
	}
	if binary.LittleEndian.Uint32(data[5:]) != 1 {
		t.Fatalf("entry length = %d, want 1", binary.LittleEndian.Uint32(data[5:]))
	}
}
