package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"fastread/internal/types"
)

// formatVersion is bumped whenever the encoding changes incompatibly.
// Version 2 added the register key to every envelope.
const formatVersion = 2

// Field limits protect decoders from hostile inputs (a malicious server could
// otherwise make a reader allocate gigabytes).
const (
	// MaxValueSize is the largest register value accepted on the wire.
	MaxValueSize = 1 << 20 // 1 MiB
	// MaxKeySize is the longest register key accepted on the wire.
	MaxKeySize = 1 << 10 // 1 KiB
	// MaxSeenSize is the largest seen set accepted on the wire. The honest
	// bound is R+1 processes, far below this.
	MaxSeenSize = 1 << 16
	// MaxSigSize is the largest signature accepted on the wire.
	MaxSigSize = 1 << 12
)

// EncodedSize returns an upper bound on the number of bytes Encode /
// AppendEncode will produce for the message.
func EncodedSize(m *Message) int {
	return 1 + 1 + binary.MaxVarintLen64 + len(m.Key) + 8 + 8 + 4 + 4 +
		valueEncodedSize(m.Cur) + valueEncodedSize(m.Prev) +
		4 + len(m.Seen)*5 +
		binary.MaxVarintLen64 + len(m.WriterSig)
}

// Encode serialises the message into a fresh byte slice.
//
// Layout (all integers little-endian):
//
//	byte    version
//	byte    op
//	bytes   key   (uvarint length prefix; placed early so PeekKey is cheap)
//	uint64  ts
//	int64   rCounter (as uint64)
//	int32   writerRank
//	int32   phase
//	bytes   cur   (uvarint length prefix; length 0 + marker distinguishes ⊥)
//	bytes   prev  (same)
//	uint32  len(seen) then per entry: byte role, uint32 index
//	bytes   writerSig (uvarint length prefix)
func Encode(m *Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, EncodedSize(m)), m)
}

// AppendEncode appends the encoding of m to buf and returns the extended
// slice, growing it as needed. It is the append-style twin of Encode: callers
// that own a scratch buffer (see GetBuffer/PutBuffer) can encode without
// allocating.
func AppendEncode(buf []byte, m *Message) ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(m.Cur) > MaxValueSize || len(m.Prev) > MaxValueSize {
		return nil, fmt.Errorf("%w: value too large", ErrMalformed)
	}
	if len(m.Seen) > MaxSeenSize {
		return nil, fmt.Errorf("%w: seen set too large", ErrMalformed)
	}
	if len(m.WriterSig) > MaxSigSize {
		return nil, fmt.Errorf("%w: signature too large", ErrMalformed)
	}

	buf = append(buf, formatVersion, byte(m.Op))
	buf = binary.AppendUvarint(buf, uint64(len(m.Key)))
	buf = append(buf, m.Key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.TS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.RCounter))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.WriterRank))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Phase))
	buf = appendValue(buf, m.Cur)
	buf = appendValue(buf, m.Prev)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Seen)))
	for _, p := range m.Seen {
		buf = append(buf, byte(p.Role))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Index))
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.WriterSig)))
	buf = append(buf, m.WriterSig...)
	return buf, nil
}

// MustEncode is Encode for messages constructed by this codebase, where an
// encoding error indicates a programming bug rather than bad input.
func MustEncode(m *Message) []byte {
	b, err := Encode(m)
	if err != nil {
		panic(fmt.Sprintf("wire: encode: %v", err))
	}
	return b
}

// Decode parses a message previously produced by Encode. It never panics on
// arbitrary input and bounds all allocations. The returned message owns all
// of its fields (nothing aliases data); use DecodeInto on hot paths that can
// honour the aliasing ownership discipline.
func Decode(data []byte) (*Message, error) {
	m := &Message{}
	if err := decodeMessage(m, data, false); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses a message into m, overwriting every field. It is the
// reuse-oriented twin of Decode for hot paths:
//
//   - Cur, Prev and WriterSig ALIAS data — no bytes are copied. The caller
//     must treat data as immutable for as long as any decoded field is
//     referenced, and must Clone any field it retains beyond the scope of
//     handling this one message (a "retention point": storing a value into
//     server state, remembering a reader's last-observed tag, ...).
//   - Seen reuses m's existing capacity where possible.
//   - Key is a fresh string (Go strings cannot alias a []byte safely); the
//     empty key — the default register — does not allocate.
//
// Combined with GetMessage/PutMessage this makes steady-state decoding of
// default-register messages allocation-free.
func DecodeInto(m *Message, data []byte) error {
	return decodeMessage(m, data, true)
}

// decodeMessage is the shared decode core. When alias is true, byte fields
// alias data and m's Seen capacity is reused; when false, every field is a
// fresh copy and Seen is freshly allocated (or nil).
func decodeMessage(m *Message, data []byte, alias bool) error {
	d := decoder{buf: data, alias: alias}
	version, err := d.byte()
	if err != nil {
		return err
	}
	if version != formatVersion {
		return fmt.Errorf("%w: %d", ErrVersion, version)
	}
	opByte, err := d.byte()
	if err != nil {
		return err
	}
	seen := m.Seen[:0]
	keyMemo := m.keyMemo
	if !alias {
		seen = nil
		keyMemo = ""
	}
	*m = Message{Op: Op(opByte), keyMemo: keyMemo}

	keyLen, err := d.uvarint()
	if err != nil {
		return err
	}
	if keyLen > MaxKeySize {
		return fmt.Errorf("%w: key too long (%d)", ErrMalformed, keyLen)
	}
	if keyLen > 0 {
		keyBytes, err := d.bytes(int(keyLen))
		if err != nil {
			return err
		}
		// The comparison against the memo compiles without materialising a
		// string; only a key CHANGE allocates (see Message.keyMemo).
		if alias && string(keyBytes) == m.keyMemo {
			m.Key = m.keyMemo
		} else {
			m.Key = string(keyBytes)
			if alias {
				m.keyMemo = m.Key
			}
		}
	}

	ts, err := d.uint64()
	if err != nil {
		return err
	}
	if ts > math.MaxInt64 {
		return fmt.Errorf("%w: timestamp overflow", ErrMalformed)
	}
	m.TS = types.Timestamp(ts)

	rc, err := d.uint64()
	if err != nil {
		return err
	}
	if rc > math.MaxInt64 {
		return fmt.Errorf("%w: rCounter overflow", ErrMalformed)
	}
	m.RCounter = int64(rc)

	wr, err := d.uint32()
	if err != nil {
		return err
	}
	m.WriterRank = int32(wr)
	ph, err := d.uint32()
	if err != nil {
		return err
	}
	m.Phase = int32(ph)

	if m.Cur, err = d.value(); err != nil {
		return err
	}
	if m.Prev, err = d.value(); err != nil {
		return err
	}

	nSeen, err := d.uint32()
	if err != nil {
		return err
	}
	if nSeen > MaxSeenSize {
		return fmt.Errorf("%w: seen set too large (%d)", ErrMalformed, nSeen)
	}
	if nSeen > 0 {
		if cap(seen) < int(nSeen) {
			seen = make([]types.ProcessID, 0, nSeen)
		}
		for i := uint32(0); i < nSeen; i++ {
			role, err := d.byte()
			if err != nil {
				return err
			}
			idx, err := d.uint32()
			if err != nil {
				return err
			}
			if idx > math.MaxInt32 {
				return fmt.Errorf("%w: process index overflow", ErrMalformed)
			}
			seen = append(seen, types.ProcessID{Role: types.Role(role), Index: int(idx)})
		}
		m.Seen = seen
	} else if alias {
		// Keep the reused backing array so a scratch message alternating
		// between seen-carrying and seen-free messages does not reallocate.
		m.Seen = seen
	}

	sigLen, err := d.uvarint()
	if err != nil {
		return err
	}
	if sigLen > MaxSigSize {
		return fmt.Errorf("%w: signature too large (%d)", ErrMalformed, sigLen)
	}
	if sigLen > 0 {
		sig, err := d.bytes(int(sigLen))
		if err != nil {
			return err
		}
		m.WriterSig = sig
	}

	if !d.empty() {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, d.remaining())
	}
	return m.Validate()
}

// valueEncodedSize returns the number of bytes appendValue will use.
func valueEncodedSize(v types.Value) int {
	return 1 + binary.MaxVarintLen64 + len(v)
}

// appendValue encodes a Value, preserving the distinction between ⊥ (nil) and
// an empty value.
func appendValue(buf []byte, v types.Value) []byte {
	if v.IsBottom() {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = binary.AppendUvarint(buf, uint64(len(v)))
	return append(buf, v...)
}

// decoder is a bounds-checked cursor over an encoded message. When alias is
// set, bytes() returns sub-slices of buf instead of copies.
type decoder struct {
	buf   []byte
	off   int
	alias bool
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }
func (d *decoder) empty() bool    { return d.remaining() == 0 }

func (d *decoder) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("%w: truncated", ErrMalformed)
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uint32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated", ErrMalformed)
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) uint64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated", ErrMalformed)
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrMalformed)
	}
	d.off += n
	return v, nil
}

func (d *decoder) bytes(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, fmt.Errorf("%w: truncated", ErrMalformed)
	}
	if d.alias {
		out := d.buf[d.off : d.off+n : d.off+n]
		d.off += n
		return out, nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:d.off+n])
	d.off += n
	return out, nil
}

func (d *decoder) value() (types.Value, error) {
	marker, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch marker {
	case 0:
		return types.Bottom(), nil
	case 1:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > MaxValueSize {
			return nil, fmt.Errorf("%w: value too large (%d)", ErrMalformed, n)
		}
		b, err := d.bytes(int(n))
		if err != nil {
			return nil, err
		}
		return types.Value(b), nil
	default:
		return nil, fmt.Errorf("%w: bad value marker %d", ErrMalformed, marker)
	}
}

// PeekKey extracts the register key from an encoded message without decoding
// the rest of the envelope.
func PeekKey(data []byte) (string, error) {
	kb, err := PeekKeyView(data)
	if err != nil {
		return "", err
	}
	return string(kb), nil
}

// PeekKeyView is PeekKey without the string materialisation: the returned
// bytes ALIAS data, which rule 1 of the ownership discipline keeps immutable
// for as long as the view could be used. The transport demultiplexer and the
// executor's key-shard dispatcher call it once per delivered message — their
// map lookups and hashes consume the bytes directly, so routing a message
// allocates nothing. It reads exactly the version byte, the op byte and the
// key and touches nothing else. A nil view with a nil error is the empty
// (default-register) key.
func PeekKeyView(data []byte) ([]byte, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: truncated", ErrMalformed)
	}
	if data[0] != formatVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, data[0])
	}
	d := decoder{buf: data, off: 2, alias: true}
	keyLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if keyLen > MaxKeySize {
		return nil, fmt.Errorf("%w: key too long (%d)", ErrMalformed, keyLen)
	}
	if keyLen == 0 {
		return nil, nil
	}
	return d.bytes(int(keyLen))
}

// KeyedSignedBytes returns the canonical byte string the writer signs for the
// arbitrary-failure algorithm: the register key followed by the (ts, cur,
// prev) triple. Including the (length-prefixed) key domain-separates the
// signatures of different registers sharing one writer key pair, so a
// malicious server cannot replay a value signed for register "a" as the
// content of register "b". Both the writer (when signing) and
// readers/servers (when verifying) must use this exact encoding.
func KeyedSignedBytes(key string, ts types.Timestamp, cur, prev types.Value) []byte {
	buf := make([]byte, 0, binary.MaxVarintLen64+len(key)+8+valueEncodedSize(cur)+valueEncodedSize(prev))
	return AppendSignedBytes(buf, key, ts, cur, prev)
}

// AppendSignedBytes appends the canonical signed byte string to buf and
// returns the extended slice. It is the append-style twin of KeyedSignedBytes
// for callers that own a scratch buffer (the verified-signature cache hashes
// these bytes on every message and must not allocate per hit).
func AppendSignedBytes(buf []byte, key string, ts types.Timestamp, cur, prev types.Value) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(ts))
	buf = appendValue(buf, cur)
	buf = appendValue(buf, prev)
	return buf
}

// SignedBytes is KeyedSignedBytes for the default register (empty key),
// retained for the single-register call sites.
func SignedBytes(ts types.Timestamp, cur, prev types.Value) []byte {
	return KeyedSignedBytes("", ts, cur, prev)
}
