package wire

import (
	"sync"
	"sync/atomic"
)

// Arena-per-frame decoding
// ========================
//
// An inbound socket frame used to be copied into a freshly allocated payload
// so the codec's aliasing views (rule 2 of pool.go) could stay valid forever:
// the receiver abandoned the buffer to the garbage collector, and any message
// retaining a view simply pinned it. That is correct but costs one allocation
// per frame plus a GC obligation proportional to throughput.
//
// An Arena makes the frame buffer itself recyclable: the frame body is read
// into a pooled buffer, every message view decoded from the frame aliases it,
// and a REFERENCE COUNT tracks how many independent owners still need the
// bytes. Each delivered transport message holds one reference; a retention
// point (a pipelined client detaching an acknowledgement, a server adopting a
// written value into register state) takes another with Ref instead of cloning
// the bytes; Release drops one, and when the last reference drops the buffer
// returns to the pool for the next frame.
//
// The discipline is deliberately fail-safe in one direction and loud in the
// other:
//
//   - A MISSING Release only leaks the arena to the garbage collector — the
//     views stay valid, exactly like the old copy-per-frame behaviour, just
//     without the reuse. Consumers that predate arenas (tests ranging over an
//     inbox, the serial CollectAcks helper) therefore keep working unchanged.
//   - A Release too many — which would hand live bytes to the next frame and
//     corrupt every surviving view — PANICS immediately, in every build: a
//     refcount underflow is memory corruption in the making and must never be
//     ignored.
type Arena struct {
	buf  []byte
	refs atomic.Int32
}

// maxArenaRetain bounds the buffers the arena pool keeps. A frame larger than
// this (a burst batch close to the transports' frame caps) still gets an
// arena, but the oversized buffer is abandoned to the GC on final release
// instead of pinning pool memory forever.
const maxArenaRetain = 64 << 10

// arenaPool recycles Arena structs together with their buffers.
var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GetArena returns an arena whose buffer holds exactly n bytes, taking it
// from the pool (growing the buffer if needed). The arena starts with ONE
// reference, owned by the caller.
func GetArena(n int) *Arena {
	a := arenaPool.Get().(*Arena)
	if cap(a.buf) < n {
		a.buf = make([]byte, n)
	}
	a.buf = a.buf[:n]
	a.refs.Store(1)
	return a
}

// Bytes returns the arena's buffer. The caller may fill it (a socket read)
// before any views are decoded from it; once views exist the buffer is
// immutable (rule 1 of the codec's ownership discipline).
func (a *Arena) Bytes() []byte { return a.buf }

// Ref takes one additional reference. Call it at a retention point: when a
// message view decoded from this arena's frame (or the frame itself) gains an
// independent owner whose lifetime is not bounded by the current holder's.
func (a *Arena) Ref() { a.refs.Add(1) }

// Release drops one reference. The last release recycles the buffer into the
// pool. Releasing more often than Ref+GetArena granted references panics:
// an underflow means some view's bytes were handed to the next frame while
// still live, and silent corruption is strictly worse than a crash.
func (a *Arena) Release() {
	switch n := a.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("wire: arena released more often than referenced")
	}
	if cap(a.buf) > maxArenaRetain {
		a.buf = nil
	}
	arenaPool.Put(a)
}

// Refs reports the current reference count (for tests and diagnostics).
func (a *Arena) Refs() int32 { return a.refs.Load() }
