package wire

import "sync"

// Buffer-ownership rules for the pooled, zero-copy codec
// ======================================================
//
// The hot path of every protocol is: decode a request, mutate a little
// per-register state, encode an acknowledgement, send it. Servers execute
// that path on a key-sharded executor (internal/transport.Executor): every
// message naming a register key is handled by the same worker goroutine, so
// the KEY-SHARD WORKER is a register's sole mutator — which is what makes
// rule 2's aliasing safe when distinct keys execute in parallel. The codec
// supports doing all of this without per-message allocations, under three
// rules:
//
//  1. Encoded payloads are immutable. Once a []byte has been handed to
//     transport.Node.Send, OWNERSHIP PASSES TO THE TRANSPORT (the in-memory
//     network delivers the same slice to the receiver; the same payload may
//     be broadcast to many receivers). Nobody — sender or receiver — may
//     mutate an encoded payload, ever.
//
//  2. Decoded views may alias. DecodeInto makes Cur, Prev and WriterSig
//     alias the payload. That is safe precisely because of rule 1. A decoded
//     message (and anything aliasing it) is valid until the handler returns.
//
//  3. Clone OR REF at retention points. Any decoded field that outlives
//     handling of the one message that carried it — a value adopted into
//     server state, a reader's remembered last-observed tag, a pipelined
//     client's detached acknowledgement — must either be cloned at the point
//     of retention, or keep aliasing while holding a REFERENCE on the frame's
//     Arena (see rule 4). Transient uses (building an ack that is encoded
//     before the handler returns, evaluating a predicate) must NOT clone.
//
//  4. Arena frames are refcounted. A socket transport decodes each inbound
//     frame into a pooled, refcounted Arena (arena.go); every view decoded
//     from the frame aliases that buffer. The delivered transport message
//     carries one reference; whoever drains the inbox releases it after
//     handling, and anything that retains an aliasing view past that point
//     must take its own Arena.Ref first and Release when done. A missing
//     Release degrades to rule-1 behaviour (the buffer leaks to the GC, views
//     stay valid); a double Release panics, because recycling a live frame
//     buffer corrupts every surviving view. Messages without an arena (the
//     in-memory transport, hand-built tests) follow rule 3's clone branch
//     unchanged.
//
// GetMessage/PutMessage recycle Message structs for rule-2 scratch decoding;
// GetBuffer/PutBuffer recycle byte slices for encode/digest scratch that the
// caller fully consumes before returning (never for payloads passed to Send —
// rule 1 means those cannot be returned to a pool).

// messagePool recycles Message structs used as decode scratch.
var messagePool = sync.Pool{New: func() any { return new(Message) }}

// GetMessage returns a scratch message from the pool. The message is zeroed
// except for retained Seen capacity, which DecodeInto reuses.
func GetMessage() *Message {
	return messagePool.Get().(*Message)
}

// PutMessage resets the message and returns it to the pool. The caller must
// not reference the message — or any field of it — afterwards. Inversely, a
// message whose Seen was pointed at caller-owned LONG-LIVED memory (a
// server's cached seen-members slice) must shed that alias (Seen = nil)
// before Put: Reset keeps Seen capacity for reuse, and recycling live state
// as another goroutine's decode scratch is a data race.
func PutMessage(m *Message) {
	m.Reset()
	messagePool.Put(m)
}

// Reset zeroes every field of the message, keeping the Seen backing array
// (length 0) and the key memo so a recycled message does not reallocate
// them.
func (m *Message) Reset() {
	seen := m.Seen[:0]
	*m = Message{Seen: seen, keyMemo: m.keyMemo}
}

// Detach returns a heap copy of the scratch message that owns its Seen slice,
// for handing an accepted message to a caller while the scratch keeps being
// reused. Cur, Prev and WriterSig still alias the original payload (rule 2);
// the scratch relinquishes its Seen backing array to the copy and will
// reallocate one on its next decode. The serial collectors use it; the
// pipelined engine detaches into pooled messages with CopyAliasInto instead,
// which keeps BOTH sides' Seen capacity alive.
func (m *Message) Detach() *Message {
	out := new(Message)
	*out = *m
	m.Seen = nil
	return out
}

// Fill overwrites the pooled message with v while keeping the key memo. An
// ack-building scratch that did a plain `*ack = wire.Message{...}` wiped the
// memo, so the NEXT decode into that pooled struct re-allocated the key string
// (see decodeMessage's memo comparison) — under a steady single-key workload
// that was one hidden allocation per handled message.
func (m *Message) Fill(v Message) {
	memo := m.keyMemo
	*m = v
	m.keyMemo = memo
}

// CopyAliasInto copies the message into dst, reusing dst's Seen capacity
// instead of stealing m's (contrast Detach). Byte fields still ALIAS m's
// payload (rule 2), so dst lives exactly as long as the payload — under an
// arena regime the caller must pair the copy with an Arena.Ref (rule 4). The
// intended cycle is dst := GetMessage(); scratch.CopyAliasInto(dst); ...;
// PutMessage(dst) — steady state allocates nothing on either message.
func (m *Message) CopyAliasInto(dst *Message) {
	seen := append(dst.Seen[:0], m.Seen...)
	*dst = *m
	dst.Seen = seen
}

// bufferPool recycles encode/digest scratch buffers (rule 1 forbids pooling
// payloads handed to Send; this pool is for buffers the caller fully consumes
// before returning, such as signed-bytes digests).
var bufferPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 512)
	return &b
}}

// GetBuffer returns a length-0 scratch buffer from the pool. It traffics in
// *[]byte so the Get/Put cycle itself allocates nothing: write the grown
// slice back through the pointer before returning it with PutBuffer.
func GetBuffer() *[]byte {
	b := bufferPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuffer returns a scratch buffer to the pool. The caller must not
// reference the buffer (or the slice it points to) afterwards.
func PutBuffer(b *[]byte) {
	bufferPool.Put(b)
}
