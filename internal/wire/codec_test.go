package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fastread/internal/types"
)

func sampleMessages() []*Message {
	return []*Message{
		{Op: OpWrite, TS: 1, Cur: types.Value("v1"), RCounter: 0},
		{Op: OpWriteAck, TS: 1, Seen: []types.ProcessID{types.Writer()}},
		{Op: OpRead, TS: 0, RCounter: 3},
		{
			Op:       OpReadAck,
			TS:       7,
			Cur:      types.Value("current"),
			Prev:     types.Value("previous"),
			Seen:     []types.ProcessID{types.Writer(), types.Reader(1), types.Reader(3)},
			RCounter: 9,
		},
		{Op: OpGossip, TS: 12},
		{Op: OpGossipAck, TS: 12, Cur: types.Value("g")},
		{Op: OpWriteBack, TS: 4, Cur: types.Value("wb"), WriterRank: 2},
		{Op: OpWriteBackAck, TS: 4},
		{Op: OpQuery, RCounter: 1},
		{Op: OpQueryAck, TS: 99, Cur: types.Value("q"), WriterRank: 7, Phase: 1},
		{Op: OpReadAck, TS: 5, Cur: types.Value{}, Prev: types.Bottom()},
		{Op: OpWrite, TS: 2, Cur: types.Value("signed"), WriterSig: bytes.Repeat([]byte{0xAB}, 64)},
		{Op: OpWrite, Key: "user/42/profile", TS: 3, Cur: types.Value("keyed")},
		{Op: OpReadAck, Key: "κλειδί\x00with\xffbytes", TS: 1, Cur: types.Value("k"), RCounter: 2},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("sample %d: Encode: %v", i, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("sample %d: Decode: %v", i, err)
		}
		if !messagesEqual(m, got) {
			t.Errorf("sample %d: round trip mismatch\n in: %+v\nout: %+v", i, m, got)
		}
	}
}

// messagesEqual compares messages treating nil and empty slices of Seen and
// WriterSig as distinct only when one side is nil and the other is not; the
// codec preserves nil-ness for Value but normalises empty Seen to nil.
func messagesEqual(a, b *Message) bool {
	if a.Op != b.Op || a.Key != b.Key || a.TS != b.TS || a.RCounter != b.RCounter ||
		a.WriterRank != b.WriterRank || a.Phase != b.Phase {
		return false
	}
	if !a.Cur.Equal(b.Cur) || a.Cur.IsBottom() != b.Cur.IsBottom() {
		return false
	}
	if !a.Prev.Equal(b.Prev) || a.Prev.IsBottom() != b.Prev.IsBottom() {
		return false
	}
	if len(a.Seen) != len(b.Seen) {
		return false
	}
	for i := range a.Seen {
		if a.Seen[i] != b.Seen[i] {
			return false
		}
	}
	return bytes.Equal(a.WriterSig, b.WriterSig)
}

func TestDecodeRejectsTruncated(t *testing.T) {
	m := &Message{
		Op:   OpReadAck,
		TS:   7,
		Cur:  types.Value("current"),
		Prev: types.Value("previous"),
		Seen: []types.ProcessID{types.Writer(), types.Reader(1)},
	}
	data := MustEncode(m)
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Errorf("Decode of %d-byte prefix succeeded, want error", cut)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	data := MustEncode(&Message{Op: OpRead, RCounter: 1})
	if _, err := Decode(append(data, 0x00)); err == nil {
		t.Error("Decode with trailing byte succeeded, want error")
	}
}

func TestDecodeRejectsBadVersionAndOp(t *testing.T) {
	data := MustEncode(&Message{Op: OpRead, RCounter: 1})
	bad := append([]byte(nil), data...)
	bad[0] = 99
	if _, err := Decode(bad); err == nil {
		t.Error("Decode with bad version succeeded")
	}
	bad = append([]byte(nil), data...)
	bad[1] = 200
	if _, err := Decode(bad); err == nil {
		t.Error("Decode with bad op succeeded")
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	tests := []*Message{
		{Op: 0},
		{Op: OpRead, TS: -1},
		{Op: OpRead, RCounter: -2},
		{Op: OpReadAck, Seen: []types.ProcessID{{}}},
	}
	for i, m := range tests {
		if _, err := Encode(m); err == nil {
			t.Errorf("case %d: Encode succeeded for invalid message %+v", i, m)
		}
	}
}

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(200)
		buf := make([]byte, n)
		rng.Read(buf)
		// Must not panic; errors are fine.
		_, _ = Decode(buf)
	}
}

func TestBottomVersusEmptyValuePreserved(t *testing.T) {
	m := &Message{Op: OpReadAck, TS: 1, Cur: types.Value{}, Prev: types.Bottom()}
	got, err := Decode(MustEncode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cur.IsBottom() {
		t.Error("empty value decoded as ⊥")
	}
	if !got.Prev.IsBottom() {
		t.Error("⊥ decoded as non-⊥")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(op uint8, ts uint32, rc uint32, cur []byte, prev []byte, seenIdx []uint8, sig []byte, rank int32, phase int32) bool {
		m := &Message{
			Op:         Op(op%10) + 1,
			TS:         types.Timestamp(ts),
			RCounter:   int64(rc),
			Cur:        cur,
			Prev:       prev,
			WriterRank: rank,
			Phase:      phase,
		}
		if len(sig) > MaxSigSize {
			sig = sig[:MaxSigSize]
		}
		m.WriterSig = sig
		for _, i := range seenIdx {
			switch i % 3 {
			case 0:
				m.Seen = append(m.Seen, types.Writer())
			case 1:
				m.Seen = append(m.Seen, types.Reader(int(i)+1))
			default:
				m.Seen = append(m.Seen, types.Server(int(i)+1))
			}
		}
		data, err := Encode(m)
		if err != nil {
			return false
		}
		got, err := Decode(data)
		if err != nil {
			return false
		}
		return messagesEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEncodingIsDeterministic(t *testing.T) {
	m := &Message{
		Op:   OpReadAck,
		TS:   3,
		Cur:  types.Value("x"),
		Seen: []types.ProcessID{types.Reader(2), types.Writer()},
	}
	a := MustEncode(m)
	b := MustEncode(m)
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same message differ")
	}
}

func TestSignedBytesDeterministicAndDistinct(t *testing.T) {
	a := SignedBytes(1, types.Value("v"), types.Bottom())
	b := SignedBytes(1, types.Value("v"), types.Bottom())
	if !bytes.Equal(a, b) {
		t.Error("SignedBytes not deterministic")
	}
	c := SignedBytes(2, types.Value("v"), types.Bottom())
	if bytes.Equal(a, c) {
		t.Error("different timestamps produced identical signed bytes")
	}
	d := SignedBytes(1, types.Value("w"), types.Bottom())
	if bytes.Equal(a, d) {
		t.Error("different values produced identical signed bytes")
	}
	e := SignedBytes(1, types.Value("v"), types.Value(""))
	if bytes.Equal(a, e) {
		t.Error("⊥ and empty previous value produced identical signed bytes")
	}
}

// TestKeyedEnvelopeRoundTrip exercises the register-key field of the keyed
// envelope: the empty key (what legacy single-register deployments send),
// short keys, a key at exactly the size limit, and keys just over it.
func TestKeyedEnvelopeRoundTrip(t *testing.T) {
	longKey := string(bytes.Repeat([]byte("k"), MaxKeySize))
	keys := []string{"", "a", "user/42/profile", "\x00\xff", longKey}
	for _, key := range keys {
		m := &Message{Op: OpReadAck, Key: key, TS: 9, Cur: types.Value("v"), RCounter: 4}
		data, err := Encode(m)
		if err != nil {
			t.Fatalf("key %d bytes: Encode: %v", len(key), err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("key %d bytes: Decode: %v", len(key), err)
		}
		if got.Key != key {
			t.Errorf("key %d bytes: round-tripped to %d bytes", len(key), len(got.Key))
		}
		peeked, err := PeekKey(data)
		if err != nil {
			t.Fatalf("key %d bytes: PeekKey: %v", len(key), err)
		}
		if peeked != key {
			t.Errorf("key %d bytes: PeekKey returned %d bytes", len(key), len(peeked))
		}
	}
}

func TestKeyTooLongRejected(t *testing.T) {
	tooLong := string(bytes.Repeat([]byte("k"), MaxKeySize+1))
	if _, err := Encode(&Message{Op: OpRead, Key: tooLong, RCounter: 1}); err == nil {
		t.Error("Encode accepted an oversized key")
	}
	// A hostile encoding claiming an oversized key must be rejected by both
	// Decode and PeekKey without huge allocations.
	data := MustEncode(&Message{Op: OpRead, RCounter: 1})
	hostile := []byte{data[0], data[1], 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := Decode(hostile); err == nil {
		t.Error("Decode accepted a hostile key length")
	}
	if _, err := PeekKey(hostile); err == nil {
		t.Error("PeekKey accepted a hostile key length")
	}
}

func TestPeekKeyMatchesDecode(t *testing.T) {
	for i, m := range sampleMessages() {
		data := MustEncode(m)
		peeked, err := PeekKey(data)
		if err != nil {
			t.Fatalf("sample %d: PeekKey: %v", i, err)
		}
		if peeked != m.Key {
			t.Errorf("sample %d: PeekKey = %q, Key = %q", i, peeked, m.Key)
		}
	}
	if _, err := PeekKey(nil); err == nil {
		t.Error("PeekKey on empty input succeeded")
	}
	if _, err := PeekKey([]byte{99, 1, 0}); err == nil {
		t.Error("PeekKey accepted a bad version")
	}
}

// TestKeyedSignedBytesDomainSeparation checks that the signed byte strings of
// different registers can never collide, even when key bytes are crafted to
// resemble another register's timestamp prefix.
func TestKeyedSignedBytesDomainSeparation(t *testing.T) {
	a := KeyedSignedBytes("k1", 1, types.Value("v"), types.Bottom())
	if !bytes.Equal(a, KeyedSignedBytes("k1", 1, types.Value("v"), types.Bottom())) {
		t.Error("KeyedSignedBytes not deterministic")
	}
	b := KeyedSignedBytes("k2", 1, types.Value("v"), types.Bottom())
	if bytes.Equal(a, b) {
		t.Error("different keys produced identical signed bytes")
	}
	legacy := KeyedSignedBytes("", 1, types.Value("v"), types.Bottom())
	if bytes.Equal(a, legacy) {
		t.Error("keyed and default-register signed bytes collide")
	}
	if !bytes.Equal(legacy, SignedBytes(1, types.Value("v"), types.Bottom())) {
		t.Error("SignedBytes is not the empty-key KeyedSignedBytes")
	}
}

func TestOpHelpers(t *testing.T) {
	for op := OpWrite; op <= OpQueryAck; op++ {
		if !op.Valid() {
			t.Errorf("op %d should be valid", op)
		}
		if op.String() == "" {
			t.Errorf("op %d has empty name", op)
		}
	}
	if Op(0).Valid() || Op(200).Valid() {
		t.Error("invalid ops reported valid")
	}
	reqs := []Op{OpWrite, OpRead, OpGossip, OpWriteBack, OpQuery}
	for _, r := range reqs {
		if !r.IsRequest() {
			t.Errorf("%v should be a request", r)
		}
		ack, err := AckFor(r)
		if err != nil {
			t.Errorf("AckFor(%v): %v", r, err)
		}
		if ack.IsRequest() {
			t.Errorf("AckFor(%v) = %v is a request", r, ack)
		}
	}
	if _, err := AckFor(OpReadAck); err == nil {
		t.Error("AckFor on an ack should error")
	}
}

func TestMessageClone(t *testing.T) {
	m := &Message{
		Op:        OpReadAck,
		TS:        2,
		Cur:       types.Value("cur"),
		Prev:      types.Value("prev"),
		Seen:      []types.ProcessID{types.Writer()},
		WriterSig: []byte{1, 2, 3},
	}
	c := m.Clone()
	c.Cur[0] = 'X'
	c.Prev[0] = 'Y'
	c.Seen[0] = types.Reader(5)
	c.WriterSig[0] = 9
	if string(m.Cur) != "cur" || string(m.Prev) != "prev" || m.Seen[0] != types.Writer() || m.WriterSig[0] != 1 {
		t.Errorf("Clone aliases original: %+v", m)
	}
}

func TestKindMatchesOpName(t *testing.T) {
	m := &Message{Op: OpWriteAck}
	if m.Kind() != "writeack" {
		t.Errorf("Kind = %q", m.Kind())
	}
}

func TestSeenSet(t *testing.T) {
	m := &Message{Op: OpReadAck, Seen: []types.ProcessID{types.Writer(), types.Reader(2)}}
	s := m.SeenSet()
	if !s.Has(types.Writer()) || !s.Has(types.Reader(2)) || s.Len() != 2 {
		t.Errorf("SeenSet = %v", s)
	}
}

func TestTagged(t *testing.T) {
	m := &Message{Op: OpReadAck, TS: 5, Cur: types.Value("a"), Prev: types.Value("b")}
	tv := m.Tagged()
	want := types.TaggedValue{TS: 5, Cur: types.Value("a"), Prev: types.Value("b")}
	if !reflect.DeepEqual(tv, want) {
		t.Errorf("Tagged = %v, want %v", tv, want)
	}
}

// TestDecodeIntoAliasesPayload pins the ownership discipline: the aliasing
// decode must NOT copy value bytes (mutating the payload shows through), and
// the copying Decode must be unaffected by later payload mutation.
func TestDecodeIntoAliasesPayload(t *testing.T) {
	m := &Message{
		Op:        OpReadAck,
		TS:        3,
		Cur:       types.Value("cur-bytes"),
		Prev:      types.Value("prev-bytes"),
		WriterSig: []byte{9, 9, 9},
	}
	data := MustEncode(m)

	var aliased Message
	if err := DecodeInto(&aliased, data); err != nil {
		t.Fatal(err)
	}
	copied, err := Decode(append([]byte(nil), data...))
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the payload in place: the aliasing view must change, proving
	// it did not copy.
	for i := range data {
		data[i] = 0xFF
	}
	if string(aliased.Cur) == "cur-bytes" {
		t.Error("DecodeInto copied Cur; expected it to alias the payload")
	}
	if string(copied.Cur) != "cur-bytes" || string(copied.Prev) != "prev-bytes" {
		t.Error("Decode result aliases the payload; expected owned copies")
	}
}

// TestDecodeIntoReusesSeenCapacity checks the scratch-reuse contract: after
// a first decode, decoding a message with an equal-or-smaller seen set into
// the same scratch must not reallocate the backing array.
func TestDecodeIntoReusesSeenCapacity(t *testing.T) {
	big := MustEncode(&Message{Op: OpReadAck, TS: 1, Seen: []types.ProcessID{
		types.Writer(), types.Reader(1), types.Reader(2), types.Reader(3),
	}})
	small := MustEncode(&Message{Op: OpReadAck, TS: 2, Seen: []types.ProcessID{types.Writer()}})

	var scratch Message
	if err := DecodeInto(&scratch, big); err != nil {
		t.Fatal(err)
	}
	firstCap := cap(scratch.Seen)
	if err := DecodeInto(&scratch, small); err != nil {
		t.Fatal(err)
	}
	if cap(scratch.Seen) != firstCap {
		t.Errorf("scratch Seen reallocated: cap %d -> %d", firstCap, cap(scratch.Seen))
	}
	if len(scratch.Seen) != 1 || scratch.Seen[0] != types.Writer() {
		t.Errorf("reused decode produced wrong seen set %v", scratch.Seen)
	}
}

// TestDetachTransfersSeenOwnership checks that a detached message keeps its
// seen set even after the scratch decodes something else.
func TestDetachTransfersSeenOwnership(t *testing.T) {
	a := MustEncode(&Message{Op: OpReadAck, TS: 1, Seen: []types.ProcessID{types.Reader(1), types.Reader(2)}})
	b := MustEncode(&Message{Op: OpReadAck, TS: 2, Seen: []types.ProcessID{types.Server(9), types.Server(8)}})

	scratch := GetMessage()
	defer PutMessage(scratch)
	if err := DecodeInto(scratch, a); err != nil {
		t.Fatal(err)
	}
	detached := scratch.Detach()
	if err := DecodeInto(scratch, b); err != nil {
		t.Fatal(err)
	}
	if len(detached.Seen) != 2 || detached.Seen[0] != types.Reader(1) || detached.Seen[1] != types.Reader(2) {
		t.Errorf("detached seen set corrupted by scratch reuse: %v", detached.Seen)
	}
}

// TestAppendEncodeMatchesEncode checks byte-for-byte agreement of the two
// encoders, including appending after an existing prefix.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	for i, m := range sampleMessages() {
		want := MustEncode(m)
		got, err := AppendEncode(nil, m)
		if err != nil {
			t.Fatalf("sample %d: AppendEncode: %v", i, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("sample %d: AppendEncode differs from Encode", i)
		}
		prefixed, err := AppendEncode([]byte("abc"), m)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(prefixed, append([]byte("abc"), want...)) {
			t.Errorf("sample %d: AppendEncode with prefix mangled output", i)
		}
	}
	if _, err := AppendEncode(nil, &Message{Op: 0}); err == nil {
		t.Error("AppendEncode accepted an invalid message")
	}
}
