package wire

import (
	"encoding/binary"
	"fmt"
)

// Batch envelope
// ==============
//
// A batch packs several encoded protocol messages into ONE transport payload
// (or one TCP frame), amortising the per-message transport costs — a frame's
// length-prefix parse and dispatch on TCP, a mailbox handoff on the in-memory
// network — across every message it carries. Batches are produced wherever a
// queue already coalesces traffic to one destination: the tcpnet per-peer
// flusher, the in-memory node pump, and the servers' per-run acknowledgement
// coalescer (transport.Coalescer).
//
// Layout (integers little-endian):
//
//	byte    batchMarker (0xB7 — never a valid codec version, so a batch can
//	        never be mistaken for a single message and vice versa)
//	uint32  message count
//	per message: uint32 length, message bytes
//
// Ownership follows the codec's rules (see pool.go): an encoded batch is
// immutable once handed to a transport, and the per-message views returned by
// ForEachInBatch ALIAS the batch buffer — consumers decode them with the same
// alias-don't-copy discipline as any delivered payload, and anything retained
// beyond handling one message must be cloned. Retaining one view pins the
// whole batch buffer, which is acceptable: batch buffers are freshly
// allocated per flush precisely so views stay valid indefinitely.
const batchMarker byte = 0xB7

// batchHeaderSize is the envelope prefix: marker byte plus uint32 count.
const batchHeaderSize = 5

// MaxBatchMessages bounds the message count a decoder accepts, protecting
// against hostile counts (the per-message length prefixes bound the rest).
const MaxBatchMessages = 1 << 20

// BatchKind is the transport-level message kind used for batch payloads.
const BatchKind = "batch"

// IsBatch reports whether the payload is a batch envelope.
func IsBatch(data []byte) bool {
	return len(data) >= batchHeaderSize && data[0] == batchMarker
}

// Batch is an append-only batch builder. The zero value is ready to use; a
// Batch can be Reset and reused, but the buffer of a batch whose Bytes have
// been handed to a transport must be ABANDONED, not reused (rule 1 of the
// codec's ownership discipline: encoded payloads are immutable and the
// receiver may alias them indefinitely) — Detach does exactly that.
type Batch struct {
	// prefix reserves bytes at the start of the buffer ahead of the
	// envelope, so a caller that must prepend its own header (the tcpnet
	// frame header) can flush header+envelope as one contiguous slice.
	prefix int
	buf    []byte
	count  int
}

// NewBatch returns an empty batch reserving the given number of prefix bytes
// ahead of the envelope (0 for plain payload batches).
func NewBatch(prefix int) *Batch {
	return &Batch{prefix: prefix}
}

// Reset empties the batch, keeping the backing buffer for reuse.
func (b *Batch) Reset() {
	b.buf = b.buf[:0]
	b.count = 0
}

// Detach empties the batch AND abandons the backing buffer. Call it after
// handing Bytes (or PrefixedBytes) to a transport: the receiver now owns the
// memory.
func (b *Batch) Detach() {
	b.buf = nil
	b.count = 0
}

// Count returns the number of messages appended so far.
func (b *Batch) Count() int { return b.count }

// Size returns the encoded envelope size in bytes (excluding the prefix).
func (b *Batch) Size() int {
	if b.count == 0 {
		return 0
	}
	return len(b.buf) - b.prefix
}

// ensureHeader lazily writes the prefix placeholder and envelope header on
// the first append.
func (b *Batch) ensureHeader() {
	if len(b.buf) > 0 {
		return
	}
	for i := 0; i < b.prefix; i++ {
		b.buf = append(b.buf, 0)
	}
	b.buf = append(b.buf, batchMarker, 0, 0, 0, 0)
}

// Append adds one encoded message payload to the batch (copying it).
func (b *Batch) Append(payload []byte) {
	b.ensureHeader()
	b.buf = binary.LittleEndian.AppendUint32(b.buf, uint32(len(payload)))
	b.buf = append(b.buf, payload...)
	b.count++
}

// AppendMessage append-encodes a message directly into the batch buffer,
// avoiding the intermediate payload slice Append would copy.
func (b *Batch) AppendMessage(m *Message) error {
	b.ensureHeader()
	lenAt := len(b.buf)
	b.buf = append(b.buf, 0, 0, 0, 0) // length, patched below
	out, err := AppendEncode(b.buf, m)
	if err != nil {
		b.buf = b.buf[:lenAt]
		return err
	}
	b.buf = out
	binary.LittleEndian.PutUint32(b.buf[lenAt:], uint32(len(b.buf)-lenAt-4))
	b.count++
	return nil
}

// Splice appends every message of an encoded batch envelope to this batch,
// flattening instead of nesting (batches never nest on the wire). The entry
// bytes are copied verbatim; data must be a well-formed envelope.
func (b *Batch) Splice(data []byte) error {
	count, err := BatchCount(data)
	if err != nil {
		return err
	}
	if count == 0 {
		return nil
	}
	b.ensureHeader()
	b.buf = append(b.buf, data[batchHeaderSize:]...)
	b.count += count
	return nil
}

// Bytes finalises and returns the encoded envelope (without the prefix),
// or nil if the batch is empty. The count field is patched in place, so
// calling Bytes repeatedly is cheap.
func (b *Batch) Bytes() []byte {
	if b.count == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(b.buf[b.prefix+1:], uint32(b.count))
	return b.buf[b.prefix:]
}

// PrefixedBytes finalises and returns prefix+envelope as one slice; the
// caller patches its own header into the first prefix bytes.
func (b *Batch) PrefixedBytes() []byte {
	if b.count == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(b.buf[b.prefix+1:], uint32(b.count))
	return b.buf
}

// BatchCount returns the message count of an encoded envelope after
// validating its header.
func BatchCount(data []byte) (int, error) {
	if len(data) < batchHeaderSize {
		return 0, fmt.Errorf("%w: truncated batch header", ErrMalformed)
	}
	if data[0] != batchMarker {
		return 0, fmt.Errorf("%w: not a batch", ErrMalformed)
	}
	count := binary.LittleEndian.Uint32(data[1:])
	if count > MaxBatchMessages {
		return 0, fmt.Errorf("%w: batch count %d too large", ErrMalformed, count)
	}
	// Every entry costs at least its 4-byte length prefix.
	if int(count) > (len(data)-batchHeaderSize)/4 {
		return 0, fmt.Errorf("%w: batch count %d exceeds payload", ErrMalformed, count)
	}
	return int(count), nil
}

// ForEachInBatch iterates the messages of an encoded envelope, calling fn
// with each message's payload. The payloads ALIAS data (nothing is copied);
// see the ownership note at the top of this file. It never panics on
// arbitrary input: counts and lengths are validated against the buffer, and a
// zero-message batch (which no sender produces but a fuzzer will) is a valid
// no-op. An error from fn stops the iteration and is returned.
func ForEachInBatch(data []byte, fn func(payload []byte) error) error {
	count, err := BatchCount(data)
	if err != nil {
		return err
	}
	off := batchHeaderSize
	for i := 0; i < count; i++ {
		if len(data)-off < 4 {
			return fmt.Errorf("%w: truncated batch entry %d", ErrMalformed, i)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n < 0 || len(data)-off < n {
			return fmt.Errorf("%w: batch entry %d overruns buffer", ErrMalformed, i)
		}
		if err := fn(data[off : off+n : off+n]); err != nil {
			return err
		}
		off += n
	}
	if off != len(data) {
		return fmt.Errorf("%w: %d trailing bytes after batch", ErrMalformed, len(data)-off)
	}
	return nil
}
