package wire

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns the encodings of the codec test corpus, so the fuzzers
// start from every message shape the protocols actually produce.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	for _, m := range sampleMessages() {
		seeds = append(seeds, MustEncode(m))
	}
	// Hand-crafted hostile prefixes: bad version, bad op, truncated varint,
	// oversized key claim.
	seeds = append(seeds,
		nil,
		[]byte{0},
		[]byte{formatVersion},
		[]byte{formatVersion, 200, 0},
		[]byte{99, 1, 0},
		[]byte{formatVersion, 1, 0xFF, 0xFF, 0xFF, 0x7F},
	)
	return seeds
}

// FuzzDecode asserts that Decode never panics on arbitrary input, that
// DecodeInto agrees with Decode byte for byte, and that any successfully
// decoded message re-encodes and re-decodes to the same message (round-trip
// stability).
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)

		var scratch Message
		errInto := DecodeInto(&scratch, data)
		if (err == nil) != (errInto == nil) {
			t.Fatalf("Decode err=%v but DecodeInto err=%v", err, errInto)
		}
		if err != nil {
			return
		}
		if !messagesEqual(m, &scratch) {
			t.Fatalf("DecodeInto disagrees with Decode:\n copy: %+v\nalias: %+v", m, &scratch)
		}

		reencoded, encErr := Encode(m)
		if encErr != nil {
			t.Fatalf("decoded message failed to re-encode: %v (%+v)", encErr, m)
		}
		m2, err := Decode(reencoded)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if !messagesEqual(m, m2) {
			t.Fatalf("round trip unstable:\n in: %+v\nout: %+v", m, m2)
		}
	})
}

// FuzzDecodeBatch asserts that batch iteration never panics on arbitrary
// input, that every view it yields stays inside the input buffer, and that a
// round trip through the builder reproduces the views byte for byte. Seeds
// cover the codec corpus packed into batches plus hostile envelopes:
// truncated counts, overlapping/overrunning length prefixes and zero-message
// batches.
func FuzzDecodeBatch(f *testing.F) {
	// Well-formed batches built from the codec corpus: singletons and the
	// whole corpus in one envelope.
	whole := NewBatch(0)
	for _, s := range fuzzSeeds() {
		one := NewBatch(0)
		one.Append(s)
		f.Add(one.Bytes())
		whole.Append(s)
	}
	f.Add(whole.Bytes())
	// Hostile envelopes.
	f.Add([]byte{batchMarker})                              // truncated header
	f.Add([]byte{batchMarker, 0, 0, 0, 0})                  // zero messages
	f.Add([]byte{batchMarker, 0, 0, 0, 0, 1})               // zero messages + trailing
	f.Add([]byte{batchMarker, 2, 0, 0, 0, 1, 0, 0, 0, 'x'}) // count claims more than present
	f.Add([]byte{batchMarker, 1, 0, 0, 0, 0xFF, 0, 0, 0})   // entry length overruns
	f.Add([]byte{batchMarker, 0xFF, 0xFF, 0xFF, 0xFF})      // absurd count
	f.Fuzz(func(t *testing.T, data []byte) {
		var views [][]byte
		err := ForEachInBatch(data, func(p []byte) error {
			views = append(views, p)
			return nil
		})
		if err != nil {
			return
		}
		count, countErr := BatchCount(data)
		if countErr != nil || count != len(views) {
			t.Fatalf("BatchCount = %d (%v), iteration yielded %d", count, countErr, len(views))
		}
		// Rebuild and re-iterate: the envelope must round-trip.
		rebuilt := NewBatch(0)
		for _, v := range views {
			rebuilt.Append(v)
		}
		var again [][]byte
		if len(views) > 0 {
			if err := ForEachInBatch(rebuilt.Bytes(), func(p []byte) error {
				again = append(again, p)
				return nil
			}); err != nil {
				t.Fatalf("rebuilt batch failed to decode: %v", err)
			}
		}
		if len(again) != len(views) {
			t.Fatalf("round trip yielded %d messages, want %d", len(again), len(views))
		}
		for i := range views {
			if !bytes.Equal(again[i], views[i]) {
				t.Fatalf("message %d differs after batch round trip", i)
			}
		}
	})
}

// FuzzPeekKey asserts that PeekKey never panics and, whenever the full
// decode succeeds, extracts exactly the key Decode sees (the transport demux
// routes by PeekKey, so a disagreement would misroute messages).
func FuzzPeekKey(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		key, peekErr := PeekKey(data)
		m, decErr := Decode(data)
		if decErr != nil {
			return
		}
		if peekErr != nil {
			t.Fatalf("Decode succeeded but PeekKey failed: %v", peekErr)
		}
		if key != m.Key {
			t.Fatalf("PeekKey = %q, Decode key = %q", key, m.Key)
		}
	})
}

// FuzzAppendEncode asserts that AppendEncode into a dirty prefixed buffer
// produces exactly the bytes Encode produces.
func FuzzAppendEncode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		canonical := MustEncode(m)
		prefix := []byte("dirty-prefix")
		buf, err := AppendEncode(append([]byte(nil), prefix...), m)
		if err != nil {
			t.Fatalf("AppendEncode: %v", err)
		}
		if !bytes.HasPrefix(buf, prefix) {
			t.Fatal("AppendEncode clobbered the existing prefix")
		}
		if !bytes.Equal(buf[len(prefix):], canonical) {
			t.Fatal("AppendEncode bytes differ from Encode")
		}
	})
}
