package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastread/internal/quorum"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Aliases keeping the trace-based assertions readable.
type traceEvent = trace.Event

const traceSendKind = trace.KindSend

func TestReadBeforeAnyWriteReturnsBottom(t *testing.T) {
	c := newTestCluster(t, quorum.Config{Servers: 4, Faulty: 1, Readers: 1})
	res := c.read(1)
	if !res.Value.IsBottom() {
		t.Errorf("read before write returned %s, want ⊥", res.Value)
	}
	if res.Timestamp != 0 {
		t.Errorf("timestamp = %d, want 0", res.Timestamp)
	}
	if res.RoundTrips != 1 {
		t.Errorf("round trips = %d, want 1", res.RoundTrips)
	}
}

func TestWriteThenReadReturnsWrittenValue(t *testing.T) {
	c := newTestCluster(t, quorum.Config{Servers: 4, Faulty: 1, Readers: 1})
	c.write("v1")
	res := c.read(1)
	if !res.Value.Equal(types.Value("v1")) {
		t.Errorf("read returned %s, want v1", res.Value)
	}
	if res.Timestamp != 1 {
		t.Errorf("timestamp = %d, want 1", res.Timestamp)
	}
	if !res.PredicateHeld {
		t.Error("predicate should hold after a complete write")
	}
}

func TestSequentialWritesAndReadsAreMonotone(t *testing.T) {
	cfg := quorum.Config{Servers: 7, Faulty: 1, Readers: 2}
	c := newTestCluster(t, cfg)
	last := types.Timestamp(0)
	for i := 1; i <= 10; i++ {
		c.write(fmt.Sprintf("v%d", i))
		for r := 1; r <= cfg.Readers; r++ {
			res := c.read(r)
			if res.Timestamp < last {
				t.Fatalf("read by r%d went backwards: %d after %d", r, res.Timestamp, last)
			}
			if res.Timestamp != types.Timestamp(i) {
				t.Fatalf("read by r%d after write %d returned ts=%d", r, i, res.Timestamp)
			}
			if !res.Value.Equal(types.Value(fmt.Sprintf("v%d", i))) {
				t.Fatalf("read by r%d returned %s, want v%d", r, res.Value, i)
			}
			last = res.Timestamp
		}
	}
	writes, rounds := c.writer.Stats()
	if writes != 10 || rounds != 10 {
		t.Errorf("writer stats = %d writes / %d rounds, want 10/10", writes, rounds)
	}
	for r, rd := range c.readers {
		reads, rounds, _ := rd.Stats()
		if reads != rounds {
			t.Errorf("reader %d used %d rounds for %d reads; every read must be fast", r+1, rounds, reads)
		}
	}
}

func TestWriteBottomRejected(t *testing.T) {
	c := newTestCluster(t, quorum.Config{Servers: 4, Faulty: 1, Readers: 1})
	if err := c.writer.Write(c.ctx(), types.Bottom()); !errors.Is(err, ErrBottomWrite) {
		t.Errorf("writing ⊥: err = %v, want ErrBottomWrite", err)
	}
}

func TestToleratesCrashOfTServers(t *testing.T) {
	cfg := quorum.Config{Servers: 7, Faulty: 2, Readers: 1}
	c := newTestCluster(t, cfg)
	c.write("before-crash")

	// Crash t servers; both writes and reads must still terminate and stay
	// atomic.
	c.net.Crash(types.Server(1))
	c.net.Crash(types.Server(2))

	res := c.read(1)
	if !res.Value.Equal(types.Value("before-crash")) {
		t.Errorf("read after crashes returned %s", res.Value)
	}
	c.write("after-crash")
	res = c.read(1)
	if !res.Value.Equal(types.Value("after-crash")) {
		t.Errorf("read after post-crash write returned %s", res.Value)
	}
}

func TestIncompleteWriteReadsNeverGoBackwards(t *testing.T) {
	// A write that reaches only part of the system: the first reader may
	// return either the old or the new value, but once some reader returns
	// the new value no later read may return the old one (atomicity
	// condition 4). With the fast algorithm and R < S/t − 2 the predicate
	// arranges exactly that.
	cfg := quorum.Config{Servers: 7, Faulty: 1, Readers: 3}
	c := newTestCluster(t, cfg)
	c.write("v1")

	// Block the writer from reaching all but one server, then attempt a
	// write that cannot complete.
	for i := 2; i <= cfg.Servers; i++ {
		c.net.Block(types.Writer(), types.Server(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := c.writer.Write(ctx, types.Value("v2"))
	if err == nil {
		t.Fatal("write should not complete while blocked from S-1 servers")
	}

	// Readers now run; whatever they return must be monotone non-decreasing
	// and each value must be consistent with its timestamp.
	lowWater := types.Timestamp(0)
	for round := 0; round < 6; round++ {
		for r := 1; r <= cfg.Readers; r++ {
			res := c.read(r)
			if res.Timestamp < lowWater {
				t.Fatalf("atomicity violation: read ts=%d after a read returned ts=%d", res.Timestamp, lowWater)
			}
			lowWater = res.Timestamp
			switch res.Timestamp {
			case 1:
				if !res.Value.Equal(types.Value("v1")) {
					t.Fatalf("ts=1 must carry v1, got %s", res.Value)
				}
			case 2:
				if !res.Value.Equal(types.Value("v2")) {
					t.Fatalf("ts=2 must carry v2, got %s", res.Value)
				}
			default:
				t.Fatalf("unexpected timestamp %d", res.Timestamp)
			}
		}
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	cfg := quorum.Config{Servers: 9, Faulty: 1, Readers: 4}
	c := newTestCluster(t, cfg)

	const writes = 30
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= writes; i++ {
			if err := c.writer.Write(c.ctx(), types.Value(fmt.Sprintf("v%d", i))); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
	}()

	type obs struct {
		reader int
		ts     types.Timestamp
	}
	results := make(chan obs, 1024)
	for r := 1; r <= cfg.Readers; r++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			prev := types.Timestamp(0)
			for i := 0; i < 40; i++ {
				res, err := c.readers[idx-1].Read(c.ctx())
				if err != nil {
					t.Errorf("reader %d: %v", idx, err)
					return
				}
				if res.Timestamp < prev {
					t.Errorf("reader %d observed ts=%d after ts=%d", idx, res.Timestamp, prev)
					return
				}
				prev = res.Timestamp
				results <- obs{reader: idx, ts: res.Timestamp}
			}
		}(r)
	}
	wg.Wait()
	close(results)
	count := 0
	for range results {
		count++
	}
	if count != cfg.Readers*40 {
		t.Errorf("collected %d reads, want %d", count, cfg.Readers*40)
	}
}

func TestEveryReadIsSingleRoundTrip(t *testing.T) {
	cfg := quorum.Config{Servers: 5, Faulty: 1, Readers: 1}
	c := newTestCluster(t, cfg)
	for i := 0; i < 5; i++ {
		c.write(fmt.Sprintf("v%d", i))
		c.read(1)
	}
	reads, rounds, _ := c.readers[0].Stats()
	if reads != 5 || rounds != 5 {
		t.Errorf("reader stats = %d reads / %d rounds, want 5/5", reads, rounds)
	}
	// The trace must show exactly S read messages sent per read operation:
	// one broadcast, no second phase.
	sends := c.trace.Count(func(e traceEvent) bool {
		return e.Kind == traceSendKind && e.Process == types.Reader(1)
	})
	if sends != 5*cfg.Servers {
		t.Errorf("reader sent %d messages for 5 reads, want %d (S per read)", sends, 5*cfg.Servers)
	}
}

func TestServerStateAfterOperations(t *testing.T) {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	c := newTestCluster(t, cfg)
	c.write("v1")
	c.read(1)

	reachedTS1 := 0
	for _, srv := range c.servers {
		st := srv.State()
		if st.Value.TS == 1 {
			reachedTS1++
			if !st.Value.Cur.Equal(types.Value("v1")) {
				t.Errorf("server %v stores %s at ts=1", srv.ID(), st.Value.Cur)
			}
			if !st.Seen.Has(types.Writer()) && !st.Seen.Has(types.Reader(1)) {
				t.Errorf("server %v seen=%v should contain a client", srv.ID(), st.Seen)
			}
		}
		if st.Mutations == 0 {
			t.Errorf("server %v recorded no state mutations", srv.ID())
		}
	}
	if reachedTS1 < cfg.AckQuorum() {
		t.Errorf("only %d servers reached ts=1, want ≥ %d", reachedTS1, cfg.AckQuorum())
	}
}

func TestServerIgnoresMalformedAndForeignMessages(t *testing.T) {
	cfg := quorum.Config{Servers: 3, Faulty: 1, Readers: 1}
	c := newTestCluster(t, cfg)

	// A rogue node that is neither the writer nor a legitimate reader sends
	// protocol messages; servers must ignore them.
	rogue, err := c.net.Join(types.Reader(7))
	if err != nil {
		t.Fatal(err)
	}
	forged := &wire.Message{Op: wire.OpWrite, TS: 99, Cur: types.Value("evil"), RCounter: 0}
	for i := 1; i <= cfg.Servers; i++ {
		if err := rogue.Send(types.Server(i), forged.Kind(), wire.MustEncode(forged)); err != nil {
			t.Fatal(err)
		}
		if err := rogue.Send(types.Server(i), "junk", []byte{1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	// Give the servers a moment to (not) process the garbage.
	time.Sleep(50 * time.Millisecond)
	for _, srv := range c.servers {
		if ts := srv.State().Value.TS; ts != 0 {
			t.Errorf("server %v adopted forged timestamp %d", srv.ID(), ts)
		}
	}
	c.write("v1")
	res := c.read(1)
	if !res.Value.Equal(types.Value("v1")) {
		t.Errorf("read returned %s, want v1", res.Value)
	}
}

func TestServerIgnoresStaleReadMessages(t *testing.T) {
	// A server that already answered rCounter=2 for a reader must ignore a
	// late-arriving message from rCounter=1 (the counter check of Figure 2
	// line 26, which Lemma 4 case 〈5〉2 depends on).
	net := transport.NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	node, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{ID: types.Server(1), Readers: 2}, node)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	reader, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	sendAndWait := func(m *wire.Message) *wire.Message {
		t.Helper()
		if err := reader.Send(types.Server(1), m.Kind(), wire.MustEncode(m)); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-reader.Inbox():
			decoded, err := wire.Decode(got.Payload)
			if err != nil {
				t.Fatal(err)
			}
			return decoded
		case <-time.After(time.Second):
			return nil
		}
	}

	if ack := sendAndWait(&wire.Message{Op: wire.OpRead, RCounter: 2}); ack == nil {
		t.Fatal("no ack for rCounter=2")
	}
	if ack := sendAndWait(&wire.Message{Op: wire.OpRead, RCounter: 1}); ack != nil {
		t.Fatalf("server answered a stale rCounter=1 message: %+v", ack)
	}
	if ack := sendAndWait(&wire.Message{Op: wire.OpRead, RCounter: 3}); ack == nil {
		t.Fatal("no ack for rCounter=3")
	}
}

func TestNewServerValidation(t *testing.T) {
	net := transport.NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	node, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(ServerConfig{ID: types.Writer()}, node); err == nil {
		t.Error("server with writer identity accepted")
	}
	if _, err := NewServer(ServerConfig{ID: types.Server(1), Readers: -1}, node); err == nil {
		t.Error("negative reader count accepted")
	}
	if _, err := NewServer(ServerConfig{ID: types.Server(1)}, nil); err == nil {
		t.Error("nil node accepted")
	}
}

func TestNewClientValidation(t *testing.T) {
	net := transport.NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}

	wNode, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	rNode, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	r9Node, err := net.Join(types.Reader(9))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := NewWriter(WriterConfig{Quorum: cfg}, rNode); !errors.Is(err, ErrNotWriter) {
		t.Errorf("writer on reader node: err = %v", err)
	}
	if _, err := NewWriter(WriterConfig{Quorum: quorum.Config{}}, wNode); err == nil {
		t.Error("writer with invalid quorum accepted")
	}
	if _, err := NewWriter(WriterConfig{Quorum: cfg, Byzantine: true}, wNode); err == nil {
		t.Error("byzantine writer without signer accepted")
	}
	if _, err := NewWriter(WriterConfig{Quorum: cfg}, nil); err == nil {
		t.Error("nil node accepted for writer")
	}

	if _, err := NewReader(ReaderConfig{Quorum: cfg}, wNode); !errors.Is(err, ErrNotReader) {
		t.Errorf("reader on writer node: err = %v", err)
	}
	if _, err := NewReader(ReaderConfig{Quorum: cfg}, r9Node); !errors.Is(err, ErrNotReader) {
		t.Errorf("reader with out-of-range index: err = %v", err)
	}
	if _, err := NewReader(ReaderConfig{Quorum: cfg}, nil); err == nil {
		t.Error("nil node accepted for reader")
	}
}

func TestReadInterruptedByContext(t *testing.T) {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	c := newTestCluster(t, cfg)
	// Block every server from answering reader 1.
	for i := 1; i <= cfg.Servers; i++ {
		c.net.Block(types.Reader(1), types.Server(i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.readers[0].Read(ctx); err == nil {
		t.Error("read should fail when no server is reachable")
	}
}

// TestRestartedWriterFailsVisibly pins the writer's incarnation guard: the
// model's single writer does not restart, so a writer process that comes
// back with reset timestamps against servers holding a previous
// incarnation's newer value must TIME OUT (its values are discarded — the
// servers' acks carry timestamps this incarnation never issued) rather than
// report success for writes that never took effect.
func TestRestartedWriterFailsVisibly(t *testing.T) {
	cfg := quorum.Config{Servers: 1, Faulty: 0, Readers: 1}
	net := transport.NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	sNode, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{ID: types.Server(1), Readers: 1}, sNode)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	wNode, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	// Previous incarnation: drive the server to ts=5 with a raw request on
	// the writer identity, consuming the ack so the restarted writer's
	// engine never sees it.
	raw := wire.MustEncode(&wire.Message{Op: wire.OpWrite, TS: 5, Cur: types.Value("old-incarnation")})
	if err := wNode.Send(types.Server(1), "write", raw); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wNode.Inbox():
	case <-time.After(5 * time.Second):
		t.Fatal("no ack for the previous incarnation's write")
	}

	// "Restarted" writer: fresh client state (ts resets to 1) on the same
	// identity. Its write must fail by timeout — the server acks with ts=5,
	// which this incarnation never submitted — not silently succeed.
	w, err := NewWriter(WriterConfig{Quorum: cfg}, wNode)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err = w.Write(ctx, types.Value("new-incarnation"))
	if err == nil {
		t.Fatal("restarted writer's write reported success against newer server state")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("restarted writer's write = %v, want deadline exceeded", err)
	}
	if got := srv.State().Value.Cur; !got.Equal(types.Value("old-incarnation")) {
		t.Fatalf("server adopted the stale incarnation's value: %s", got)
	}
}
