package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by clients of the fast register.
var (
	// ErrBottomWrite indicates an attempt to write the reserved initial
	// value ⊥ (a nil Value), which Section 3.1 forbids.
	ErrBottomWrite = errors.New("core: cannot write the initial value ⊥")
	// ErrNotWriter indicates a writer client constructed with a non-writer
	// identity.
	ErrNotWriter = errors.New("core: writer must use the writer identity")
	// ErrNotReader indicates a reader client constructed with a non-reader
	// identity.
	ErrNotReader = errors.New("core: reader must use a reader identity")
)

// WriterConfig configures the single writer process w.
type WriterConfig struct {
	// Quorum describes the deployment (S, t, b, R).
	Quorum quorum.Config
	// Key names the register this writer operates on. The empty key is the
	// deployment's default register. Every request is stamped with the key
	// and only acknowledgements carrying it are accepted, so many per-key
	// writers can share one transport identity.
	Key string
	// Signer holds the writer's private key; required when Byzantine is
	// true.
	Signer *sig.Signer
	// Byzantine enables the arbitrary-failure variant (Figure 5): each
	// written timestamp/value pair is signed.
	Byzantine bool
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
}

// Writer is the writer-side of the fast algorithms (Figure 2 / Figure 5
// lines 1-8). A Writer performs one write at a time; Write is not safe for
// concurrent use, matching the model's assumption that a process invokes at
// most one operation at a time.
type Writer struct {
	cfg     WriterConfig
	node    transport.Node
	servers []types.ProcessID

	mu     sync.Mutex
	ts     types.Timestamp
	prev   types.Value
	rounds stats.Counter
	writes int64
}

// NewWriter creates the writer client bound to the given transport node.
func NewWriter(cfg WriterConfig, node transport.Node) (*Writer, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("core: writer requires a transport node")
	}
	if node.ID() != types.Writer() {
		return nil, fmt.Errorf("%w: got %v", ErrNotWriter, node.ID())
	}
	if cfg.Byzantine && cfg.Signer == nil {
		return nil, fmt.Errorf("core: the arbitrary-failure writer requires a signer")
	}
	return &Writer{
		cfg:     cfg,
		node:    node,
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
		ts:      1, // Figure 2 line 3: ts ← 1.
		prev:    types.Bottom(),
	}, nil
}

// Write stores v in the register. It completes after a single round-trip:
// broadcast (write, ts, v, prev) and wait for S−t acknowledgements.
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	if v.IsBottom() {
		return ErrBottomWrite
	}
	w.mu.Lock()
	defer w.mu.Unlock()

	ts := w.ts
	// One owned copy of the caller's value: it serves as the request's Cur
	// (the request is transient — encoded during the broadcast, never
	// retained) and, after the round-trip, becomes the writer's remembered
	// prev. Cloning again for the request would be redundant.
	cur := v.Clone()
	req := &wire.Message{
		Op:       wire.OpWrite,
		Key:      w.cfg.Key,
		TS:       ts,
		Cur:      cur,
		Prev:     w.prev,
		RCounter: 0, // the writer's counter is always 0 (Section 4).
	}
	if w.cfg.Byzantine {
		signature, err := w.cfg.Signer.SignKeyed(w.cfg.Key, ts, req.Cur, req.Prev)
		if err != nil {
			return fmt.Errorf("core: sign write ts=%d: %w", ts, err)
		}
		req.WriterSig = signature
	}

	if w.cfg.Trace.Enabled() {
		w.cfg.Trace.Record(trace.KindInvoke, types.Writer(), types.ProcessID{}, "write(key=%q, ts=%d, %s)", w.cfg.Key, ts, v)
	}
	need := w.cfg.Quorum.AckQuorum()
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteAck && m.Key == w.cfg.Key && m.TS == ts && m.RCounter == 0
	}
	if _, err := protoutil.RoundTrip(ctx, w.node, w.servers, req, need, filter, w.cfg.Trace); err != nil {
		return fmt.Errorf("core: write ts=%d: %w", ts, err)
	}
	w.rounds.Add(1)
	w.writes++
	w.ts = ts.Next() // Figure 2 line 7.
	w.prev = cur
	if w.cfg.Trace.Enabled() {
		w.cfg.Trace.Record(trace.KindReturn, types.Writer(), types.ProcessID{}, "write(ts=%d) -> ok", ts)
	}
	return nil
}

// NextTimestamp returns the timestamp the next write will use.
func (w *Writer) NextTimestamp() types.Timestamp {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ts
}

// Stats reports the number of completed writes and the total round-trips they
// used (always equal for this fast implementation).
func (w *Writer) Stats() (writes int64, roundTrips int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, w.rounds.Total()
}

// Close detaches the writer from the network.
func (w *Writer) Close() error { return w.node.Close() }
