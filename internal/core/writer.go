package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Errors returned by clients of the fast register.
var (
	// ErrBottomWrite indicates an attempt to write the reserved initial
	// value ⊥ (a nil Value), which Section 3.1 forbids.
	ErrBottomWrite = errors.New("core: cannot write the initial value ⊥")
	// ErrNotWriter indicates a writer client constructed with a non-writer
	// identity.
	ErrNotWriter = errors.New("core: writer must use the writer identity")
	// ErrNotReader indicates a reader client constructed with a non-reader
	// identity.
	ErrNotReader = errors.New("core: reader must use a reader identity")
)

// WriterConfig configures the single writer process w.
type WriterConfig struct {
	// Quorum describes the deployment (S, t, b, R).
	Quorum quorum.Config
	// Key names the register this writer operates on. The empty key is the
	// deployment's default register. Every request is stamped with the key
	// and only acknowledgements carrying it are accepted, so many per-key
	// writers can share one transport identity.
	Key string
	// Signer holds the writer's private key; required when Byzantine is
	// true.
	Signer *sig.Signer
	// Byzantine enables the arbitrary-failure variant (Figure 5): each
	// written timestamp/value pair is signed.
	Byzantine bool
	// Depth bounds the number of writes this writer keeps in flight at once
	// (WriteAsync); non-positive means protoutil.DefaultPipelineDepth. A
	// serial Write is a pipelined write at depth one.
	Depth int
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
}

// Writer is the writer-side of the fast algorithms (Figure 2 / Figure 5
// lines 1-8). A Writer keeps up to cfg.Depth writes in flight: WriteAsync
// submits a write and returns a future, and the blocking Write is exactly
// WriteAsync at depth one. Writes are APPLIED in submission order no matter
// how deep the pipeline: each submission takes the next timestamp and
// broadcasts under the writer's mutex, and the transports preserve per-link
// FIFO, so servers adopt the values in timestamp order — the single-writer
// regime of the model is preserved.
type Writer struct {
	cfg     WriterConfig
	node    transport.Node
	servers []types.ProcessID
	pl      *protoutil.Pipeline

	// submitted is the highest timestamp THIS writer incarnation has
	// broadcast; ack filters read it without the mutex. See WriteAsync.
	submitted atomic.Int64

	mu     sync.Mutex
	ts     types.Timestamp
	prev   types.Value
	rounds stats.Counter
	writes int64
}

// NewWriter creates the writer client bound to the given transport node.
func NewWriter(cfg WriterConfig, node transport.Node) (*Writer, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("core: writer requires a transport node")
	}
	if node.ID() != types.Writer() {
		return nil, fmt.Errorf("%w: got %v", ErrNotWriter, node.ID())
	}
	if cfg.Byzantine && cfg.Signer == nil {
		return nil, fmt.Errorf("core: the arbitrary-failure writer requires a signer")
	}
	return &Writer{
		cfg:     cfg,
		node:    node,
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
		pl:      protoutil.NewPipeline(node, cfg.Depth, cfg.Trace),
		ts:      1, // Figure 2 line 3: ts ← 1.
		prev:    types.Bottom(),
	}, nil
}

// Write stores v in the register. It completes after a single round-trip:
// broadcast (write, ts, v, prev) and wait for S−t acknowledgements. It is
// the depth-one degenerate case of WriteAsync: submit, then wait.
func (w *Writer) Write(ctx context.Context, v types.Value) error {
	f, err := w.WriteAsync(ctx, v)
	if err != nil {
		return err
	}
	_, rerr := f.Result(ctx)
	return rerr
}

// WriteAsync submits one write and returns its future without waiting for
// the quorum, keeping up to cfg.Depth writes in flight. The timestamp is
// taken and the request broadcast before WriteAsync returns, so writes hit
// the wire — and are applied by servers — in submission order regardless of
// completion order; a write's future resolves once S−t servers acknowledged
// its timestamp. Cancelling one write's ctx abandons only that write's wait
// (the value may still take effect, exactly as any interrupted write).
func (w *Writer) WriteAsync(ctx context.Context, v types.Value) (*protoutil.Future[struct{}], error) {
	if v.IsBottom() {
		return nil, ErrBottomWrite
	}
	if err := w.pl.Acquire(ctx); err != nil {
		return nil, fmt.Errorf("core: write: %w", err)
	}
	f := protoutil.NewFuture[struct{}]()

	w.mu.Lock()
	ts := w.ts
	// One owned copy of the caller's value: it serves as the request's Cur
	// (the request is transient — encoded during the broadcast, never
	// retained) and becomes the writer's remembered prev for the NEXT
	// submission. Cloning again for the request would be redundant.
	cur := v.Clone()
	req := &wire.Message{
		Op:       wire.OpWrite,
		Key:      w.cfg.Key,
		TS:       ts,
		Cur:      cur,
		Prev:     w.prev,
		RCounter: 0, // the writer's counter is always 0 (Section 4).
	}
	if w.cfg.Byzantine {
		signature, err := w.cfg.Signer.SignKeyed(w.cfg.Key, ts, req.Cur, req.Prev)
		if err != nil {
			w.mu.Unlock()
			w.pl.Release()
			return nil, fmt.Errorf("core: sign write ts=%d: %w", ts, err)
		}
		req.WriterSig = signature
	}

	if w.cfg.Trace.Enabled() {
		w.cfg.Trace.Record(trace.KindInvoke, types.Writer(), types.ProcessID{}, "write(key=%q, ts=%d, %s)", w.cfg.Key, ts, v)
	}
	w.submitted.Store(int64(ts))
	need := w.cfg.Quorum.AckQuorum()
	// Accept ts' in [ts, submitted] rather than the serial writer's exact
	// match. ts' ≥ ts: a reader's write-back of a LATER pipelined write can
	// reach a server before this request does, and the server then
	// acknowledges with the newer adopted timestamp — which still proves
	// this write's value is superseded-or-stored there (the superseding
	// value is this writer's own later submission). ts' ≤ submitted: a
	// timestamp this incarnation never issued means the servers hold a
	// PREVIOUS incarnation's newer value — the model's single writer does
	// not restart, and a restarted writer process (timestamps reset to 1)
	// must time out visibly instead of reporting success for values the
	// servers discarded. (An EQUAL-timestamp collision — both incarnations
	// at the same write count — is indistinguishable in the wire vocabulary
	// and remains a silent no-op, as it always was: recovering the writer's
	// timestamp state is the operator's job in the SWMR model.)
	filter := func(_ types.ProcessID, m *wire.Message) bool {
		return m.Op == wire.OpWriteAck && m.Key == w.cfg.Key &&
			m.TS >= ts && int64(m.TS) <= w.submitted.Load() && m.RCounter == 0
	}
	op := w.pl.Register(need, filter, func(_ []protoutil.Ack, err error) {
		if err != nil {
			f.Resolve(struct{}{}, fmt.Errorf("core: write ts=%d: %w", ts, err))
			return
		}
		w.mu.Lock()
		w.rounds.Add(1)
		w.writes++
		w.mu.Unlock()
		if w.cfg.Trace.Enabled() {
			w.cfg.Trace.Record(trace.KindReturn, types.Writer(), types.ProcessID{}, "write(ts=%d) -> ok", ts)
		}
		f.Resolve(struct{}{}, nil)
	})
	err := protoutil.Broadcast(w.node, w.servers, req, w.cfg.Trace)
	if err == nil {
		// Figure 2 line 7, moved to submission time: the next write takes the
		// next timestamp whether or not this one has completed, preserving
		// the single-writer timestamp order under pipelining. (A failed write
		// leaves a timestamp gap, which servers tolerate: they adopt any
		// strictly newer timestamp.)
		w.ts = ts.Next()
		w.prev = cur
	}
	w.mu.Unlock()
	if err != nil {
		op.Abort(err)
		return nil, fmt.Errorf("core: write ts=%d: %w", ts, err)
	}
	f.Bind(ctx, op)
	return f, nil
}

// NextTimestamp returns the timestamp the next write will use.
func (w *Writer) NextTimestamp() types.Timestamp {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ts
}

// Stats reports the number of completed writes and the total round-trips they
// used (always equal for this fast implementation).
func (w *Writer) Stats() (writes int64, roundTrips int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes, w.rounds.Total()
}

// Close detaches the writer from the network.
func (w *Writer) Close() error { return w.node.Close() }
