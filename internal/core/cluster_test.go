package core

import (
	"context"
	"testing"
	"time"

	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
)

// testCluster wires up a full in-memory deployment of the fast register:
// S servers, the writer and R readers.
type testCluster struct {
	t       *testing.T
	cfg     quorum.Config
	net     *transport.InMemNetwork
	servers []*Server
	writer  *Writer
	readers []*Reader
	keys    sig.KeyPair
	trace   *trace.Trace
	byz     bool
}

type clusterOption func(*testCluster)

func withByzantine() clusterOption {
	return func(c *testCluster) { c.byz = true }
}

func withNetwork(net *transport.InMemNetwork) clusterOption {
	return func(c *testCluster) { c.net = net }
}

// newTestCluster builds and starts a cluster. Servers, writer and readers are
// all attached to the same in-memory network.
func newTestCluster(t *testing.T, cfg quorum.Config, opts ...clusterOption) *testCluster {
	t.Helper()
	c := &testCluster{t: t, cfg: cfg, trace: trace.New(), keys: sig.MustKeyPair()}
	for _, o := range opts {
		o(c)
	}
	if c.net == nil {
		c.net = transport.NewInMemNetwork()
	}
	t.Cleanup(func() { _ = c.net.Close() })

	for i := 1; i <= cfg.Servers; i++ {
		node, err := c.net.Join(types.Server(i))
		if err != nil {
			t.Fatalf("join server %d: %v", i, err)
		}
		srv, err := NewServer(ServerConfig{
			ID:        types.Server(i),
			Readers:   cfg.Readers,
			Byzantine: c.byz,
			Verifier:  c.keys.Verifier,
			// Force multiple key-shard workers regardless of GOMAXPROCS so
			// the whole suite — including the chaos/atomicity schedules —
			// exercises the sharded executor, not its single-worker
			// degenerate form.
			Workers: 4,
			Trace:   c.trace,
		}, node)
		if err != nil {
			t.Fatalf("new server %d: %v", i, err)
		}
		srv.Start()
		c.servers = append(c.servers, srv)
		t.Cleanup(srv.Stop)
	}

	wNode, err := c.net.Join(types.Writer())
	if err != nil {
		t.Fatalf("join writer: %v", err)
	}
	c.writer, err = NewWriter(WriterConfig{
		Quorum:    cfg,
		Byzantine: c.byz,
		Signer:    c.keys.Signer,
		Trace:     c.trace,
	}, wNode)
	if err != nil {
		t.Fatalf("new writer: %v", err)
	}

	for i := 1; i <= cfg.Readers; i++ {
		rNode, err := c.net.Join(types.Reader(i))
		if err != nil {
			t.Fatalf("join reader %d: %v", i, err)
		}
		rd, err := NewReader(ReaderConfig{
			Quorum:    cfg,
			Byzantine: c.byz,
			Verifier:  c.keys.Verifier,
			Trace:     c.trace,
		}, rNode)
		if err != nil {
			t.Fatalf("new reader %d: %v", i, err)
		}
		c.readers = append(c.readers, rd)
	}
	return c
}

func (c *testCluster) ctx() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	c.t.Cleanup(cancel)
	return ctx
}

func (c *testCluster) write(v string) {
	c.t.Helper()
	if err := c.writer.Write(c.ctx(), types.Value(v)); err != nil {
		c.t.Fatalf("write %q: %v", v, err)
	}
}

func (c *testCluster) read(reader int) ReadResult {
	c.t.Helper()
	res, err := c.readers[reader-1].Read(c.ctx())
	if err != nil {
		c.t.Fatalf("read by r%d: %v", reader, err)
	}
	return res
}
