package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"fastread/internal/quorum"
	"fastread/internal/types"
)

func seenAck(server int, members ...types.ProcessID) SeenAck {
	return SeenAck{Server: types.Server(server), Seen: types.NewProcessSet(members...)}
}

func TestPredicateCompleteWriteScenario(t *testing.T) {
	// S=4, t=1, R=1: after a complete write followed by a read, every server
	// in S1∩S2 (size ≥ S−2t = 2) has both w and the reader in seen. The
	// predicate must hold with a=2 (Lemma 3 case z=k).
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	acks := []SeenAck{
		seenAck(1, types.Writer(), types.Reader(1)),
		seenAck(2, types.Writer(), types.Reader(1)),
		seenAck(3, types.Writer(), types.Reader(1)),
	}
	res, err := EvaluatePredicate(cfg, acks)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("predicate should hold after a complete write: %+v", res)
	}
	if res.Level > 2 {
		t.Errorf("expected witness level ≤ 2, got %d", res.Level)
	}
}

func TestPredicateIncompleteWriteOnlyWriterSeen(t *testing.T) {
	// S=4, t=1, R=1. An incomplete write reached only one server; the reader
	// got maxTS from that single server. |MS| = 1 < S−t = 3 for a=1 and
	// 1 < S−2t = 2 for a=2, so the predicate must NOT hold.
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	acks := []SeenAck{
		seenAck(1, types.Writer(), types.Reader(1)),
	}
	res, err := EvaluatePredicate(cfg, acks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatalf("predicate should not hold for a single maxTS message: %+v", res)
	}
}

func TestPredicateAllAcksAtWrittenBackTimestamp(t *testing.T) {
	// Lemma 2 situation: the reader wrote back ts=x and every one of the S−t
	// acks carries ts=x with the reader in seen, so a=1 must succeed.
	cfg := quorum.Config{Servers: 5, Faulty: 1, Readers: 2}
	acks := []SeenAck{
		seenAck(1, types.Reader(2)),
		seenAck(2, types.Reader(2)),
		seenAck(3, types.Reader(2), types.Writer()),
		seenAck(4, types.Reader(2), types.Reader(1)),
	}
	res, err := EvaluatePredicate(cfg, acks)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds || res.Level != 1 {
		t.Fatalf("predicate should hold with a=1: %+v", res)
	}
	if !res.Witness.Has(types.Reader(2)) {
		t.Errorf("witness %v should contain r2", res.Witness)
	}
}

func TestPredicateRequiresEnoughSupportAtEachLevel(t *testing.T) {
	// S=10, t=2, R=2 (max level 3). Thresholds: a=1→8, a=2→6, a=3→4.
	cfg := quorum.Config{Servers: 10, Faulty: 2, Readers: 2}

	// 5 messages all containing {w, r1}: a=2 needs 6, a=1 needs 8 → fails.
	var five []SeenAck
	for i := 1; i <= 5; i++ {
		five = append(five, seenAck(i, types.Writer(), types.Reader(1)))
	}
	res, err := EvaluatePredicate(cfg, five)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatalf("5 messages with a 2-client intersection should fail (needs 6): %+v", res)
	}

	// 6 messages with {w, r1} → a=2 holds.
	six := append(five, seenAck(6, types.Writer(), types.Reader(1)))
	res, err = EvaluatePredicate(cfg, six)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds || res.Level != 2 {
		t.Fatalf("6 messages with a 2-client intersection should hold at a=2: %+v", res)
	}

	// 4 messages with {w, r1, r2} → a=3 holds even though a=1,2 fail.
	var four []SeenAck
	for i := 1; i <= 4; i++ {
		four = append(four, seenAck(i, types.Writer(), types.Reader(1), types.Reader(2)))
	}
	res, err = EvaluatePredicate(cfg, four)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds || res.Level != 3 {
		t.Fatalf("4 messages with a 3-client intersection should hold at a=3: %+v", res)
	}
}

func TestPredicateByzantineThresholds(t *testing.T) {
	// S=8, t=1, b=1, R=1: thresholds a=1→7 (S−t), a=2→5 (S−2t−b).
	cfg := quorum.Config{Servers: 8, Faulty: 1, Malicious: 1, Readers: 1}
	var acks []SeenAck
	for i := 1; i <= 5; i++ {
		acks = append(acks, seenAck(i, types.Writer(), types.Reader(1)))
	}
	res, err := EvaluatePredicate(cfg, acks)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds || res.Level != 2 {
		t.Fatalf("5 messages should satisfy the Byzantine a=2 threshold of 5: %+v", res)
	}
	// With only 4 it must fail (4 < 5 and 4 < 7).
	res, err = EvaluatePredicate(cfg, acks[:4])
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatalf("4 messages should not satisfy any Byzantine threshold: %+v", res)
	}
}

func TestPredicateIgnoresIllegitimateClients(t *testing.T) {
	// Malicious servers stuff their seen sets with servers and out-of-range
	// readers; those must not help the predicate.
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	acks := []SeenAck{
		seenAck(1, types.Server(2), types.Reader(9)),
		seenAck(2, types.Server(2), types.Reader(9)),
		seenAck(3, types.Server(2), types.Reader(9)),
	}
	res, err := EvaluatePredicate(cfg, acks)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Fatalf("fictitious clients must not satisfy the predicate: %+v", res)
	}
}

func TestPredicateEmptyInputs(t *testing.T) {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	res, err := EvaluatePredicate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("empty ack list should not satisfy the predicate")
	}
	res, err = EvaluatePredicate(cfg, []SeenAck{seenAck(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Holds {
		t.Error("acks with empty seen sets should not satisfy the predicate")
	}
}

func TestPredicateInvalidConfig(t *testing.T) {
	_, err := EvaluatePredicate(quorum.Config{Servers: 0}, []SeenAck{seenAck(1, types.Writer())})
	if err == nil {
		t.Error("invalid config should error")
	}
}

func TestPredicateUnionTooLarge(t *testing.T) {
	cfg := quorum.Config{Servers: 200, Faulty: 1, Readers: 60}
	members := make([]types.ProcessID, 0, MaxPredicateUnion+2)
	for i := 1; i <= MaxPredicateUnion+2; i++ {
		members = append(members, types.Reader(i))
	}
	acks := []SeenAck{{Server: types.Server(1), Seen: types.NewProcessSet(members...)}}
	_, err := EvaluatePredicate(cfg, acks)
	if !errors.Is(err, ErrPredicateTooLarge) {
		t.Errorf("err = %v, want ErrPredicateTooLarge", err)
	}
}

func TestPredicateMonotoneInSupport(t *testing.T) {
	// Adding another message carrying the same seen set can never turn a
	// holding predicate into a failing one.
	cfg := quorum.Config{Servers: 7, Faulty: 1, Readers: 3}
	base := []SeenAck{
		seenAck(1, types.Writer(), types.Reader(1)),
		seenAck(2, types.Writer(), types.Reader(1)),
		seenAck(3, types.Writer(), types.Reader(2)),
		seenAck(4, types.Writer()),
		seenAck(5, types.Writer(), types.Reader(1)),
		seenAck(6, types.Writer(), types.Reader(3)),
	}
	resBase, err := EvaluatePredicate(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	if !resBase.Holds {
		t.Fatalf("base predicate should hold (a=1 with w in all 6 ≥ S−t=6): %+v", resBase)
	}
	extended := append(append([]SeenAck(nil), base...), seenAck(7, types.Writer(), types.Reader(1), types.Reader(2)))
	resExt, err := EvaluatePredicate(cfg, extended)
	if err != nil {
		t.Fatal(err)
	}
	if !resExt.Holds {
		t.Errorf("adding a message broke a holding predicate: %+v", resExt)
	}
}

// TestPredicateMatchesBruteForce cross-checks the subset-sum evaluator
// against the literal definition on random small instances.
func TestPredicateMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clients := []types.ProcessID{types.Writer(), types.Reader(1), types.Reader(2), types.Reader(3)}
	for trial := 0; trial < 500; trial++ {
		cfg := quorum.Config{
			Servers:   4 + rng.Intn(8),
			Faulty:    1 + rng.Intn(2),
			Malicious: 0,
			Readers:   3,
		}
		if cfg.Faulty > cfg.Servers {
			cfg.Faulty = cfg.Servers
		}
		if rng.Intn(2) == 0 {
			cfg.Malicious = rng.Intn(cfg.Faulty + 1)
		}
		n := rng.Intn(7)
		acks := make([]SeenAck, 0, n)
		for i := 0; i < n; i++ {
			seen := types.NewProcessSet()
			for _, c := range clients {
				if rng.Intn(2) == 0 {
					seen.Add(c)
				}
			}
			acks = append(acks, SeenAck{Server: types.Server(i + 1), Seen: seen})
		}
		got, err := EvaluatePredicate(cfg, acks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := evaluatePredicateBruteForce(cfg, acks)
		if got.Holds != want {
			t.Fatalf("trial %d: cfg=%v acks=%v: fast=%v brute=%v", trial, cfg, acks, got.Holds, want)
		}
	}
}

// Property: if the predicate holds, the reported witness really is contained
// in at least Support messages and Support meets the threshold for Level.
func TestPredicateWitnessIsSound(t *testing.T) {
	cfg := quorum.Config{Servers: 9, Faulty: 2, Readers: 2}
	f := func(masks []uint8) bool {
		clients := []types.ProcessID{types.Writer(), types.Reader(1), types.Reader(2)}
		if len(masks) > 7 {
			masks = masks[:7]
		}
		acks := make([]SeenAck, 0, len(masks))
		for i, m := range masks {
			seen := types.NewProcessSet()
			for bit, c := range clients {
				if m&(1<<bit) != 0 {
					seen.Add(c)
				}
			}
			acks = append(acks, SeenAck{Server: types.Server(i + 1), Seen: seen})
		}
		res, err := EvaluatePredicate(cfg, acks)
		if err != nil {
			return false
		}
		if !res.Holds {
			return true
		}
		if res.Witness.Len() < res.Level || res.Level < 1 || res.Level > cfg.MaxPredicateLevel() {
			return false
		}
		support := 0
		for _, a := range acks {
			if a.Seen.ContainsAll(res.Witness) {
				support++
			}
		}
		threshold := cfg.PredicateThreshold(res.Level)
		return support == res.Support && support >= threshold
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPredicateScratchMatchesEvaluate pins the equivalence of the reader's
// reusable-buffer evaluator (predicateScratch.evaluate, the per-read hot
// path) against the reference EvaluatePredicate on randomized instances:
// same Holds decision and same witnessing level, including inputs with
// duplicate seen entries and illegitimate clients, and across scratch reuse.
func TestPredicateScratchMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var scratch predicateScratch // reused across all cases, like a reader's
	for trial := 0; trial < 2000; trial++ {
		cfg := quorum.Config{
			Servers: 4 + rng.Intn(10),
			Faulty:  1 + rng.Intn(2),
			Readers: 1 + rng.Intn(4),
		}
		if rng.Intn(3) == 0 {
			cfg.Malicious = rng.Intn(cfg.Faulty + 1)
		}
		if cfg.Validate() != nil {
			continue
		}
		nAcks := 1 + rng.Intn(cfg.Servers)
		acks := make([]SeenAck, nAcks)
		seens := make([][]types.ProcessID, nAcks)
		for i := range acks {
			var seen []types.ProcessID
			if rng.Intn(2) == 0 {
				seen = append(seen, types.Writer())
			}
			for r := 1; r <= cfg.Readers+1; r++ { // +1: sometimes illegitimate
				if rng.Intn(2) == 0 {
					seen = append(seen, types.Reader(r))
				}
			}
			if len(seen) > 0 && rng.Intn(3) == 0 {
				seen = append(seen, seen[0]) // duplicate entry
			}
			if rng.Intn(5) == 0 {
				seen = append(seen, types.Server(1)) // never legitimate
			}
			acks[i] = SeenAck{Server: types.Server(i + 1), Seen: types.NewProcessSet(seen...)}
			// The scratch path consumes raw (possibly duplicated) slices.
			seens[i] = seen
		}

		want, err := EvaluatePredicate(cfg, acks)
		if err != nil {
			t.Fatalf("EvaluatePredicate: %v", err)
		}
		holds, level, err := scratch.evaluate(cfg, seens)
		if err != nil {
			t.Fatalf("scratch.evaluate: %v", err)
		}
		if holds != want.Holds || level != want.Level {
			t.Fatalf("trial %d (%+v): scratch = (%v, %d), reference = (%v, %d)\nacks: %v",
				trial, cfg, holds, level, want.Holds, want.Level, acks)
		}
	}
}
