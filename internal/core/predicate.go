package core

import (
	"errors"
	"fmt"
	"math/bits"

	"fastread/internal/quorum"
	"fastread/internal/types"
)

// MaxPredicateUnion bounds the number of distinct client processes that may
// appear in the seen sets handed to the predicate evaluator. The exact
// evaluation enumerates subsets of that union (with a subset-sum dynamic
// program), so the bound keeps both time and memory small. Honest runs only
// ever produce unions of size ≤ R+1, and the façade rejects configurations
// with more readers than this.
const MaxPredicateUnion = 22

// ErrPredicateTooLarge indicates the seen sets mention more distinct clients
// than the exact evaluator supports.
var ErrPredicateTooLarge = errors.New("core: seen-set union exceeds supported size")

// SeenAck is the per-message input to the predicate: which server sent the
// maxTS message and which clients were in its seen set.
type SeenAck struct {
	Server types.ProcessID
	Seen   types.ProcessSet
}

// PredicateResult reports the outcome of evaluating the fast-read predicate.
type PredicateResult struct {
	// Holds is true when the reader may safely return maxTS.
	Holds bool
	// Level is the witness value of a ∈ [1, R+1] for which the predicate
	// held (0 when it did not hold).
	Level int
	// Witness is the set of clients common to the witnessing messages
	// (empty when the predicate did not hold).
	Witness types.ProcessSet
	// Support is the number of messages containing the witness set.
	Support int
}

// EvaluatePredicate decides whether a reader that received the given maxTS
// messages may return maxTS (paper Figure 2 line 19, Figure 5 line 19):
//
//	∃ a ∈ [1, R+1], ∃ MS ⊆ maxTSmsg:
//	    |MS| ≥ S − a·t − (a−1)·b   and   |∩_{m ∈ MS} m.seen| ≥ a
//
// In the crash model b = 0 and the threshold reduces to S − a·t.
//
// The evaluation is exact. For a candidate set P of clients, the best
// possible MS is the set of all messages whose seen set contains P, so the
// predicate is equivalent to the existence of a non-empty client set P with
// |{m : P ⊆ m.seen}| ≥ S − |P|·t − (|P|−1)·b and |P| ≤ R+1. We enumerate all
// subsets of the union of the (client-restricted) seen sets using a
// superset-sum dynamic program, which costs O(2^u · u) for a union of u
// clients; u is at most R+1 in honest runs.
//
// Only legitimate clients (the writer and readers r1..rR from cfg) are
// considered: malicious servers may stuff arbitrary identifiers into their
// seen sets, but fictitious processes never help an honest run and must not
// influence the decision.
func EvaluatePredicate(cfg quorum.Config, acks []SeenAck) (PredicateResult, error) {
	if err := cfg.Validate(); err != nil {
		return PredicateResult{}, err
	}
	if len(acks) == 0 {
		return PredicateResult{}, nil
	}

	// Collect the union of legitimate clients mentioned in the seen sets.
	union := make([]types.ProcessID, 0, cfg.Readers+1)
	index := make(map[types.ProcessID]int, cfg.Readers+1)
	for _, a := range acks {
		for p := range a.Seen {
			if !isLegitimateClient(p, cfg.Readers) {
				continue
			}
			if _, ok := index[p]; !ok {
				index[p] = len(union)
				union = append(union, p)
			}
		}
	}
	if len(union) == 0 {
		return PredicateResult{}, nil
	}
	if len(union) > MaxPredicateUnion {
		return PredicateResult{}, fmt.Errorf("%w: %d clients", ErrPredicateTooLarge, len(union))
	}

	u := len(union)
	size := 1 << u
	// count[mask] starts as the number of messages whose (client-restricted)
	// seen set is exactly mask, and after the superset-sum transform holds
	// the number of messages whose seen set is a superset of mask.
	count := make([]int, size)
	for _, a := range acks {
		mask := 0
		for p := range a.Seen {
			if i, ok := index[p]; ok {
				mask |= 1 << i
			}
		}
		count[mask]++
	}
	for bit := 0; bit < u; bit++ {
		for mask := 0; mask < size; mask++ {
			if mask&(1<<bit) == 0 {
				count[mask] += count[mask|1<<bit]
			}
		}
	}

	maxLevel := cfg.MaxPredicateLevel()
	best := PredicateResult{}
	for mask := 1; mask < size; mask++ {
		a := bits.OnesCount(uint(mask))
		if a > maxLevel {
			continue
		}
		threshold := cfg.PredicateThreshold(a)
		if threshold < 1 {
			threshold = 1
		}
		if count[mask] < threshold {
			continue
		}
		if !best.Holds || a < best.Level || (a == best.Level && count[mask] > best.Support) {
			witness := types.NewProcessSet()
			for i := 0; i < u; i++ {
				if mask&(1<<i) != 0 {
					witness.Add(union[i])
				}
			}
			best = PredicateResult{Holds: true, Level: a, Witness: witness, Support: count[mask]}
		}
	}
	return best, nil
}

// predicateScratch is the reusable-buffer twin of EvaluatePredicate for the
// reader's per-read hot path: seen sets are consumed straight off the
// decoded acknowledgements (no ProcessSet maps are built), the union index
// is a linear scan over a recycled slice (u ≤ R+1, tiny), the subset-count
// table is recycled, and the witness set — which the reader never uses — is
// not materialised. The algorithm is otherwise EXACTLY EvaluatePredicate's
// (the equivalence is pinned by TestPredicateScratchMatchesEvaluate); the
// deployment shape is validated once at reader construction, not per read.
// A scratch is owned by one reader and guarded by its mutex.
type predicateScratch struct {
	union []types.ProcessID
	count []int
}

// evaluate runs the fast-read predicate over the maxTS acknowledgements'
// seen slices, returning whether it holds and the witnessing level a.
func (s *predicateScratch) evaluate(cfg quorum.Config, seens [][]types.ProcessID) (holds bool, level int, err error) {
	if len(seens) == 0 {
		return false, 0, nil
	}
	union := s.union[:0]
	for _, seen := range seens {
		for _, p := range seen {
			if !isLegitimateClient(p, cfg.Readers) {
				continue
			}
			known := false
			for _, q := range union {
				if q == p {
					known = true
					break
				}
			}
			if !known {
				union = append(union, p)
			}
		}
	}
	s.union = union
	if len(union) == 0 {
		return false, 0, nil
	}
	if len(union) > MaxPredicateUnion {
		return false, 0, fmt.Errorf("%w: %d clients", ErrPredicateTooLarge, len(union))
	}

	u := len(union)
	size := 1 << u
	if cap(s.count) < size {
		s.count = make([]int, size)
	}
	count := s.count[:size]
	for i := range count {
		count[i] = 0
	}
	for _, seen := range seens {
		mask := 0
		for _, p := range seen {
			for i, q := range union {
				if q == p {
					mask |= 1 << i
					break
				}
			}
		}
		count[mask]++
	}
	for bit := 0; bit < u; bit++ {
		for mask := 0; mask < size; mask++ {
			if mask&(1<<bit) == 0 {
				count[mask] += count[mask|1<<bit]
			}
		}
	}

	maxLevel := cfg.MaxPredicateLevel()
	bestLevel := 0
	for mask := 1; mask < size; mask++ {
		a := bits.OnesCount(uint(mask))
		if a > maxLevel {
			continue
		}
		if bestLevel != 0 && a >= bestLevel {
			continue
		}
		threshold := cfg.PredicateThreshold(a)
		if threshold < 1 {
			threshold = 1
		}
		if count[mask] >= threshold {
			bestLevel = a
		}
	}
	return bestLevel != 0, bestLevel, nil
}

// isLegitimateClient reports whether p is the writer or one of the readers
// r1..rR.
func isLegitimateClient(p types.ProcessID, readers int) bool {
	switch p.Role {
	case types.RoleWriter:
		return p.Index == 0
	case types.RoleReader:
		return p.Index >= 1 && p.Index <= readers
	default:
		return false
	}
}

// evaluatePredicateBruteForce is the reference implementation used by tests:
// it literally enumerates every subset MS of the messages and checks the
// paper's condition. Exponential in the number of messages; test-only sizes.
func evaluatePredicateBruteForce(cfg quorum.Config, acks []SeenAck) bool {
	n := len(acks)
	maxLevel := cfg.MaxPredicateLevel()
	for subset := 1; subset < 1<<n; subset++ {
		var inter types.ProcessSet
		count := 0
		for i := 0; i < n; i++ {
			if subset&(1<<i) == 0 {
				continue
			}
			legit := types.NewProcessSet()
			for p := range acks[i].Seen {
				if isLegitimateClient(p, cfg.Readers) {
					legit.Add(p)
				}
			}
			if count == 0 {
				inter = legit
			} else {
				inter = inter.Intersect(legit)
			}
			count++
		}
		for a := 1; a <= maxLevel; a++ {
			threshold := cfg.PredicateThreshold(a)
			if threshold < 1 {
				threshold = 1
			}
			if count >= threshold && inter.Len() >= a {
				return true
			}
		}
	}
	return false
}
