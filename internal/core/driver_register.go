package core

import (
	"context"
	"fmt"

	"fastread/internal/driver"
	"fastread/internal/quorum"
	"fastread/internal/transport"
)

// init registers the paper's two fast protocols with the driver registry:
// the crash-tolerant register of Figure 2 ("fast") and the arbitrary-failure
// variant of Figure 5 ("fast-byz"). They share every factory except the
// Byzantine flag, which turns on writer signatures end to end.
func init() {
	driver.Register(fastDriver("fast", false))
	driver.Register(fastDriver("fast-byz", true))
}

// fastDriver builds the driver for one of the two fast variants.
func fastDriver(name string, byzantine bool) driver.Driver {
	return driver.Driver{
		Name:            name,
		NeedsSignatures: byzantine,
		Validate: func(q quorum.Config) error {
			if !q.FastReadPossible() {
				return fmt.Errorf("%w: %v (max fast readers = %d)",
					driver.ErrTooManyReaders, q, quorum.MaxFastReaders(q.Servers, q.Faulty, q.Malicious))
			}
			if q.Readers+1 > MaxPredicateUnion {
				return fmt.Errorf("%w: predicate evaluator supports at most %d readers",
					driver.ErrTooManyReaders, MaxPredicateUnion-1)
			}
			return nil
		},
		NewServer: func(cfg driver.ServerConfig, node transport.Node) (driver.Server, error) {
			s, err := NewServer(ServerConfig{
				ID:         cfg.ID,
				Readers:    cfg.Quorum.Readers,
				Byzantine:  byzantine,
				Verifier:   cfg.Verifier,
				Workers:    cfg.Workers,
				QueueBound: cfg.QueueBound,
				Durable:    cfg.Durable,
			}, node)
			if err != nil {
				return nil, err
			}
			return s, nil
		},
		NewWriter: func(cfg driver.ClientConfig, node transport.Node) (driver.Writer, error) {
			w, err := NewWriter(WriterConfig{
				Quorum:    cfg.Quorum,
				Key:       cfg.Key,
				Byzantine: byzantine,
				Signer:    cfg.Signer,
				Depth:     cfg.Depth,
			}, node)
			if err != nil {
				return nil, err
			}
			return driver.AdaptWriter(w), nil
		},
		NewReader: func(cfg driver.ClientConfig, node transport.Node) (driver.Reader, error) {
			r, err := NewReader(ReaderConfig{
				Quorum:    cfg.Quorum,
				Key:       cfg.Key,
				Byzantine: byzantine,
				Verifier:  cfg.Verifier,
				Depth:     cfg.Depth,
				Nonce:     cfg.Nonce,
			}, node)
			if err != nil {
				return nil, err
			}
			return fastReaderHandle{r}, nil
		},
	}
}

// fastReaderHandle adapts the fast reader's rich result (predicate level,
// max timestamp) to the uniform driver result.
type fastReaderHandle struct{ r *Reader }

func (h fastReaderHandle) Read(ctx context.Context) (driver.ReadResult, error) {
	res, err := h.r.Read(ctx)
	if err != nil {
		return driver.ReadResult{}, err
	}
	return fastResult(res), nil
}

func (h fastReaderHandle) ReadAsync(ctx context.Context) (driver.ReadFuture, error) {
	f, err := h.r.ReadAsync(ctx)
	if err != nil {
		return nil, err
	}
	return driver.ReadFutureOf(f, fastResult), nil
}

// fastResult adapts the fast reader's rich result to the uniform driver
// result.
func fastResult(res ReadResult) driver.ReadResult {
	return driver.ReadResult{
		Value:        res.Value,
		Timestamp:    res.Timestamp,
		RoundTrips:   res.RoundTrips,
		UsedFallback: !res.PredicateHeld,
	}
}

func (h fastReaderHandle) Stats() (reads, roundTrips, fallbacks int64) { return h.r.Stats() }
