package core

import (
	"fmt"
	"sync"

	"fastread/internal/durable"
	"fastread/internal/protoutil"
	"fastread/internal/shard"
	"fastread/internal/sig"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// ServerConfig configures a fast-register server process.
type ServerConfig struct {
	// ID is the server's process identity (must have RoleServer).
	ID types.ProcessID
	// Readers is R, the number of reader processes in the system. Messages
	// from readers with a higher index are ignored.
	Readers int
	// Byzantine enables the arbitrary-failure variant (Figure 5): the server
	// verifies the writer's signature on every timestamp it adopts and
	// attaches the stored signature to its replies.
	Byzantine bool
	// Verifier is the writer's public key; required when Byzantine is true.
	Verifier sig.Verifier
	// Workers is the number of key-shard workers executing this server's
	// messages in parallel (one goroutine per worker; a register key is
	// always handled by the same worker). Zero or negative means GOMAXPROCS.
	Workers int
	// QueueBound, when positive, caps each worker's overflow queue:
	// requests beyond it are shed and counted (QueueSheds) instead of
	// queued without bound. Zero keeps the default never-drop queues.
	QueueBound int
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
	// Durable, if non-nil, gives the server a write-ahead log in the given
	// directory: every state mutation is appended before the ack is sent, and
	// NewServer recovers whatever a previous incarnation persisted there.
	Durable *durable.Options
}

// ServerState is a snapshot of one register's protocol state on a server,
// exposed for tests, the experiment harness (which counts state mutations per
// read for the "atomic reads must write" discussion of Section 8) and fault
// injectors.
type ServerState struct {
	Value     types.TaggedValue
	ValueSig  []byte
	Seen      types.ProcessSet
	Counters  map[int]int64
	Mutations int64
}

// registerState is the per-register server state of Figure 2 / Figure 5: the
// stored tagged value (with its writer signature in the Byzantine variant),
// the seen set and the per-client operation counters. One server hosts many
// registers, each with fully independent state.
type registerState struct {
	value    types.TaggedValue
	valueSig []byte
	seen     types.ProcessSet
	// seenMembers mirrors seen as a slice, maintained on every mutation, so
	// acknowledgements can carry the seen set without materialising it per
	// message (acks alias it under the usual sole-mutator discipline: the
	// ack is encoded before this key's worker handles its next message).
	seenMembers []types.ProcessID
	counters    map[int]int64
	mutations   int64
	// lsn is the log sequence number of the last durable record applied to
	// this register (live append or recovery replay); deltas at or below it
	// are already reflected and must not replay. Zero when not durable.
	lsn int64
	// arena, when non-nil, is the frame buffer value and valueSig currently
	// alias: adopting a value delivered in an arena-backed frame retains it BY
	// REFERENCE (one Arena.Ref) instead of cloning the bytes, and adopting the
	// next value releases it. At most one arena is pinned per register — the
	// one carrying the newest adopted value.
	arena *wire.Arena
}

// Server is the server-side state machine of the fast algorithms
// (Figure 2 lines 23-35, Figure 5 lines 23-35). It never waits for messages
// from other processes before replying, which is what makes the
// implementation fast. A single server multiplexes every register of the
// deployment: protocol state is kept per register key in a striped shard
// map, lazily instantiated on the first message that names the key.
type Server struct {
	cfg    ServerConfig
	node   transport.Node
	exec   *transport.Executor
	states *shard.Map[*registerState]
	// dlog is the server's durable log; nil when persistence is off.
	dlog *durable.Log

	// verify memoises successful writer-signature verifications in the
	// Byzantine variant: steady-state reads re-present the same signed
	// (key, ts, cur, prev) tuple on every round-trip, so after the first
	// verification the server skips asymmetric crypto entirely. Nil when
	// the server runs the crash model.
	verify *sig.Cache

	stopOnce sync.Once
	done     chan struct{}
}

// NewServer creates a server bound to the given transport node. Call Start to
// begin processing messages.
func NewServer(cfg ServerConfig, node transport.Node) (*Server, error) {
	if cfg.ID.Role != types.RoleServer || !cfg.ID.Valid() {
		return nil, fmt.Errorf("core: server id %v is not a valid server identity", cfg.ID)
	}
	if cfg.Readers < 0 {
		return nil, fmt.Errorf("core: negative reader count %d", cfg.Readers)
	}
	if node == nil {
		return nil, fmt.Errorf("core: server %v requires a transport node", cfg.ID)
	}
	readers := cfg.Readers
	s := &Server{
		cfg:  cfg,
		node: node,
		states: shard.NewMap(0, func(string) *registerState {
			return &registerState{
				value:    types.InitialTaggedValue(),
				seen:     types.NewProcessSet(),
				counters: make(map[int]int64, readers+1),
			}
		}),
		done: make(chan struct{}),
	}
	if cfg.Durable != nil {
		dl, err := durable.Open(*cfg.Durable, durable.Hooks{Apply: s.applyRecord, Dump: s.dumpRecords})
		if err != nil {
			return nil, fmt.Errorf("core: server %v durable log: %w", cfg.ID, err)
		}
		s.dlog = dl
	}
	s.exec = transport.NewExecutor(node, protoutil.WireKeyFunc, cfg.Workers)
	s.exec.SetQueueBound(cfg.QueueBound)
	if cfg.Byzantine {
		s.verify = sig.NewCache(cfg.Verifier, 0)
	}
	return s, nil
}

// applyRecord replays one recovered log record into register state. A
// KindState record restores a register wholesale; a KindDelta re-runs the
// exact mutation branch the live path took (the LSN guard skips deltas a
// restored snapshot already reflects — see the durable package's replay
// discipline). Record bytes alias the replay buffer, so everything retained
// is cloned, mirroring the live path's retention point.
func (s *Server) applyRecord(r *durable.Record) error {
	s.states.Do(r.Key, func(st *registerState) {
		switch r.Kind {
		case durable.KindState:
			st.value = types.TaggedValue{
				TS:   types.Timestamp(r.TS),
				Cur:  types.Value(r.Cur).Clone(),
				Prev: types.Value(r.Prev).Clone(),
			}
			st.valueSig = append(st.valueSig[:0], r.Sig...)
			st.seen = types.NewProcessSet(r.Seen...)
			st.seenMembers = append(st.seenMembers[:0], r.Seen...)
			for _, c := range r.Counters {
				st.counters[int(c.PID)] = c.N
			}
			st.lsn = r.LSN
		case durable.KindDelta:
			if r.LSN <= st.lsn {
				return
			}
			if types.Timestamp(r.TS) > st.value.TS {
				st.value = types.TaggedValue{
					TS:   types.Timestamp(r.TS),
					Cur:  types.Value(r.Cur).Clone(),
					Prev: types.Value(r.Prev).Clone(),
				}
				st.valueSig = append(st.valueSig[:0], r.Sig...)
				st.seen = types.NewProcessSet(r.From)
				st.seenMembers = append(st.seenMembers[:0], r.From)
			} else if !st.seen.Has(r.From) {
				st.seen.Add(r.From)
				st.seenMembers = append(st.seenMembers, r.From)
			}
			st.counters[r.From.ClientPID()] = r.RCounter
			st.lsn = r.LSN
		}
	})
	return nil
}

// dumpRecords emits one KindState record per instantiated register for a
// snapshot. Each record aliases live state under the register's stripe lock;
// the durable layer encodes it before emit returns.
func (s *Server) dumpRecords(emit func(*durable.Record) error) error {
	var err error
	s.states.Range(func(key string, st *registerState) {
		if err != nil {
			return
		}
		rec := durable.Record{
			Kind: durable.KindState,
			LSN:  st.lsn,
			Key:  key,
			TS:   int64(st.value.TS),
			Cur:  st.value.Cur,
			Prev: st.value.Prev,
			Sig:  st.valueSig,
			Seen: st.seenMembers,
		}
		for pid, n := range st.counters {
			rec.Counters = append(rec.Counters, durable.CounterEntry{PID: int32(pid), N: n})
		}
		err = emit(&rec)
	})
	return err
}

// Start launches the server's key-sharded executor: messages are dispatched
// by register key across the configured workers, so distinct registers are
// served in parallel while each register keeps FIFO, single-goroutine
// handling (see transport.Executor).
func (s *Server) Start() {
	go func() {
		defer close(s.done)
		s.exec.RunCoalescing(s.handle)
	}()
}

// Stop detaches the server from the network, waits for the executor to
// drain every worker, then closes the durable log (a graceful close flushes
// and snapshots; under Options.SimulateCrash it models a machine crash
// instead). Stop is idempotent.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		_ = s.node.Close()
	})
	<-s.done
	if s.dlog != nil {
		_ = s.dlog.Close()
	}
}

// ID returns the server's process identity.
func (s *Server) ID() types.ProcessID { return s.cfg.ID }

// Workers returns the number of key-shard workers executing this server's
// messages.
func (s *Server) Workers() int { return s.exec.Workers() }

// QueueSheds returns the number of requests shed by bounded worker queues
// (always 0 unless ServerConfig.QueueBound was set).
func (s *Server) QueueSheds() int64 { return s.exec.Sheds() }

// snapshot deep-copies a register's state under the shard lock.
func snapshot(st *registerState) ServerState {
	counters := make(map[int]int64, len(st.counters))
	for k, v := range st.counters {
		counters[k] = v
	}
	return ServerState{
		Value:     st.value.Clone(),
		ValueSig:  append([]byte(nil), st.valueSig...),
		Seen:      st.seen.Clone(),
		Counters:  counters,
		Mutations: st.mutations,
	}
}

// State returns a deep copy of the default register's current protocol
// state. Single-register deployments (and their tests and fault injectors)
// read the server through this method; use StateOf for a named register.
func (s *Server) State() ServerState { return s.StateOf("") }

// StateOf returns a deep copy of the named register's current protocol
// state. A register that has never been touched reports its initial state
// (timestamp 0, both tags ⊥) without being instantiated.
func (s *Server) StateOf(key string) ServerState {
	var out ServerState
	if !s.states.Peek(key, func(st *registerState) { out = snapshot(st) }) {
		out = ServerState{
			Value:    types.InitialTaggedValue(),
			Seen:     types.NewProcessSet(),
			Counters: map[int]int64{},
		}
	}
	return out
}

// Timestamp returns the default register's current timestamp without the
// deep copy State performs. Wait loops (adversaries, fault injectors) poll
// servers at high frequency; copying the whole snapshot — counters map,
// value bytes, seen set — per poll showed up in write benchmarks.
func (s *Server) Timestamp() types.Timestamp { return s.TimestampOf("") }

// TimestampOf is Timestamp for a named register.
func (s *Server) TimestampOf(key string) types.Timestamp {
	var ts types.Timestamp
	s.states.Peek(key, func(st *registerState) { ts = st.value.TS })
	return ts
}

// CounterOf returns the named register's operation counter for one client
// (see types.ProcessID.ClientPID) without copying the snapshot.
func (s *Server) CounterOf(key string, clientPID int) int64 {
	var c int64
	s.states.Peek(key, func(st *registerState) { c = st.counters[clientPID] })
	return c
}

// Keys returns the keys of every register this server has instantiated.
func (s *Server) Keys() []string { return s.states.Keys() }

// TotalMutations sums the state-mutation counters across every register the
// server hosts; the store-level stats aggregate it.
func (s *Server) TotalMutations() int64 {
	var total int64
	s.states.Range(func(_ string, st *registerState) { total += st.mutations })
	return total
}

// handle processes one incoming message: Figure 2 / Figure 5 lines 26-35,
// applied to the register named by the message's key. Acknowledgements go
// through the executor's run-scoped coalescer, so a run of pipelined
// requests from one client is answered with ONE batched send.
//
// This is the per-message hot path. It decodes into a pooled scratch message
// whose byte fields alias the payload (zero-copy), clones only at the one
// retention point (adopting a newer value into register state), and builds
// the acknowledgement aliasing the stored state — safe because the key-shard
// worker handling this message is the only mutator of this key's state (the
// executor routes every message naming a key to the same worker) and the ack
// is encoded before the worker handles its next message.
func (s *Server) handle(m transport.Message, out transport.Sender) {
	tr := s.cfg.Trace
	req := wire.GetMessage()
	defer wire.PutMessage(req)
	if err := wire.DecodeInto(req, m.Payload); err != nil {
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "malformed: %v", err)
		}
		return
	}
	if req.Op != wire.OpWrite && req.Op != wire.OpRead {
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "unexpected op %s", req.Op)
		}
		return
	}
	if !isLegitimateClient(m.From, s.cfg.Readers) {
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "not a client")
		}
		return
	}
	// Writes must come from the writer, reads from readers; a process sending
	// the wrong kind is misbehaving and is ignored.
	if req.Op == wire.OpWrite && m.From.Role != types.RoleWriter {
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "write from non-writer")
		}
		return
	}
	if req.Op == wire.OpRead && m.From.Role != types.RoleReader {
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "read from non-reader")
		}
		return
	}
	if tr.Enabled() {
		tr.Record(trace.KindReceive, s.cfg.ID, m.From, "%s key=%q ts=%d rc=%d", req.Op, req.Key, req.TS, req.RCounter)
	}

	// In the arbitrary-failure variant, any timestamp the server might adopt
	// must carry a valid writer signature (Figure 5's receivevalid). Read
	// requests write back a previously signed timestamp; timestamp 0 needs no
	// signature. The signature covers the register key, so a value signed for
	// one register cannot be replayed into another. Verification goes through
	// the bounded verified-signature cache, so only the first sighting of a
	// signed tuple pays for asymmetric crypto.
	if s.verify != nil {
		if err := s.verify.VerifyKeyed(req.Key, req.TS, req.Cur, req.Prev, req.WriterSig); err != nil {
			if tr.Enabled() {
				tr.Record(trace.KindDrop, s.cfg.ID, m.From, "invalid writer signature on ts=%d: %v", req.TS, err)
			}
			return
		}
	}

	pid := m.From.ClientPID()

	ack := wire.GetMessage()
	defer wire.PutMessage(ack)
	ok := false
	s.states.Do(req.Key, func(st *registerState) {
		// Figure 2 line 26: only requests with rCounter ≥ cnt[q] are
		// processed (Lemma 4 depends on it). Pipelined clients stay
		// compatible because every provided transport delivers each link
		// FIFO — a client's requests arrive in rCounter order — and clients
		// submit in nonce order under their own mutex. (Adversarial delivery
		// jitter can reorder a link and starve a pipelined operation; such
		// operations end through their contexts, like any stalled op.)
		if req.RCounter < st.counters[pid] {
			if tr.Enabled() {
				tr.Record(trace.KindDrop, s.cfg.ID, m.From, "stale rCounter %d < %d", req.RCounter, st.counters[pid])
			}
			return
		}
		if req.TS > st.value.TS {
			// Retention point: the request's fields alias the payload. With an
			// arena-backed frame the state retains the aliases and pins the
			// frame with its own reference (wire's rule 4 — the REF branch of
			// rule 3); otherwise the stored value must own its bytes.
			if m.Arena != nil {
				m.Arena.Ref()
				if st.arena != nil {
					st.arena.Release()
				}
				st.arena = m.Arena
				st.value = types.TaggedValue{TS: req.TS, Cur: req.Cur, Prev: req.Prev}
				st.valueSig = req.WriterSig
			} else {
				if st.arena != nil {
					// The outgoing value's bytes live in an arena this state is
					// about to unpin: shed the aliases BEFORE releasing, and
					// never append into them (the recycled buffer would be
					// corrupted under the next frame's views).
					st.valueSig = nil
					st.arena.Release()
					st.arena = nil
				}
				st.value = types.TaggedValue{TS: req.TS, Cur: req.Cur.Clone(), Prev: req.Prev.Clone()}
				st.valueSig = append(st.valueSig[:0], req.WriterSig...)
			}
			st.seen = types.NewProcessSet(m.From)
			st.seenMembers = append(st.seenMembers[:0], m.From)
		} else if !st.seen.Has(m.From) {
			st.seen.Add(m.From)
			st.seenMembers = append(st.seenMembers, m.From)
		}
		st.counters[pid] = req.RCounter
		st.mutations++
		if s.dlog != nil {
			// Log the mutation before the ack is even built ("atomic reads
			// must write" extends to "must log" — read requests mutate the
			// seen set and counters, so they are logged too). Under fsync
			// "always" the append blocks on stable storage here, which is
			// what makes the ack durable-before-sent. Append errors are
			// sticky in the log (surfaced via its counters and Close); the
			// hot path cannot propagate them.
			lsn, _ := s.dlog.Append(&durable.Record{
				Kind:     durable.KindDelta,
				Key:      req.Key,
				TS:       int64(req.TS),
				Cur:      req.Cur,
				Prev:     req.Prev,
				Sig:      req.WriterSig,
				From:     m.From,
				RCounter: req.RCounter,
			})
			st.lsn = lsn
		}

		ackOp := wire.OpWriteAck
		if req.Op == wire.OpRead {
			ackOp = wire.OpReadAck
		}
		ack.Fill(wire.Message{
			Op:        ackOp,
			Key:       req.Key,
			TS:        st.value.TS,
			Cur:       st.value.Cur,
			Prev:      st.value.Prev,
			Seen:      st.seenMembers,
			RCounter:  req.RCounter,
			WriterSig: st.valueSig,
		})
		ok = true
	})
	if !ok {
		return
	}

	if tr.Enabled() {
		tr.Record(trace.KindStateChange, s.cfg.ID, m.From, "key=%q ts=%d seen=%s", ack.Key, ack.TS, types.NewProcessSet(ack.Seen...))
		tr.Record(trace.KindSend, s.cfg.ID, m.From, "%s ts=%d rc=%d", ack.Op, ack.TS, ack.RCounter)
	}
	if err := transport.SendEncoded(out, m.From, ack); err != nil {
		if tr.Enabled() {
			tr.Record(trace.KindDrop, s.cfg.ID, m.From, "send ack: %v", err)
		}
	}
	// The ack's Seen aliases the register's long-lived seenMembers slice;
	// shed it before the deferred PutMessage, or the pool would recycle the
	// server's live state as another goroutine's decode scratch.
	ack.Seen = nil
}
