package core

import (
	"fmt"
	"sync"

	"fastread/internal/sig"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// ServerConfig configures a fast-register server process.
type ServerConfig struct {
	// ID is the server's process identity (must have RoleServer).
	ID types.ProcessID
	// Readers is R, the number of reader processes in the system. Messages
	// from readers with a higher index are ignored.
	Readers int
	// Byzantine enables the arbitrary-failure variant (Figure 5): the server
	// verifies the writer's signature on every timestamp it adopts and
	// attaches the stored signature to its replies.
	Byzantine bool
	// Verifier is the writer's public key; required when Byzantine is true.
	Verifier sig.Verifier
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
}

// ServerState is a snapshot of a server's protocol state, exposed for tests,
// the experiment harness (which counts state mutations per read for the
// "atomic reads must write" discussion of Section 8) and fault injectors.
type ServerState struct {
	Value     types.TaggedValue
	ValueSig  []byte
	Seen      types.ProcessSet
	Counters  map[int]int64
	Mutations int64
}

// Server is the server-side state machine of the fast algorithms
// (Figure 2 lines 23-35, Figure 5 lines 23-35). It never waits for messages
// from other processes before replying, which is what makes the
// implementation fast.
type Server struct {
	cfg  ServerConfig
	node transport.Node

	mu        sync.Mutex
	value     types.TaggedValue
	valueSig  []byte
	seen      types.ProcessSet
	counters  map[int]int64
	mutations int64

	stopOnce sync.Once
	done     chan struct{}
}

// NewServer creates a server bound to the given transport node. Call Start to
// begin processing messages.
func NewServer(cfg ServerConfig, node transport.Node) (*Server, error) {
	if cfg.ID.Role != types.RoleServer || !cfg.ID.Valid() {
		return nil, fmt.Errorf("core: server id %v is not a valid server identity", cfg.ID)
	}
	if cfg.Readers < 0 {
		return nil, fmt.Errorf("core: negative reader count %d", cfg.Readers)
	}
	if node == nil {
		return nil, fmt.Errorf("core: server %v requires a transport node", cfg.ID)
	}
	return &Server{
		cfg:      cfg,
		node:     node,
		value:    types.InitialTaggedValue(),
		seen:     types.NewProcessSet(),
		counters: make(map[int]int64, cfg.Readers+1),
		done:     make(chan struct{}),
	}, nil
}

// Start launches the message-handling goroutine.
func (s *Server) Start() {
	go func() {
		defer close(s.done)
		transport.Serve(s.node, s.handle)
	}()
}

// Stop detaches the server from the network and waits for its handler
// goroutine to exit. Stop is idempotent.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		_ = s.node.Close()
	})
	<-s.done
}

// ID returns the server's process identity.
func (s *Server) ID() types.ProcessID { return s.cfg.ID }

// State returns a deep copy of the server's current protocol state.
func (s *Server) State() ServerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	counters := make(map[int]int64, len(s.counters))
	for k, v := range s.counters {
		counters[k] = v
	}
	sigCopy := append([]byte(nil), s.valueSig...)
	return ServerState{
		Value:     s.value.Clone(),
		ValueSig:  sigCopy,
		Seen:      s.seen.Clone(),
		Counters:  counters,
		Mutations: s.mutations,
	}
}

// handle processes one incoming message: Figure 2 / Figure 5 lines 26-35.
func (s *Server) handle(m transport.Message) {
	req, err := wire.Decode(m.Payload)
	if err != nil {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "malformed: %v", err)
		return
	}
	if req.Op != wire.OpWrite && req.Op != wire.OpRead {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "unexpected op %s", req.Op)
		return
	}
	if !isLegitimateClient(m.From, s.cfg.Readers) {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "not a client")
		return
	}
	// Writes must come from the writer, reads from readers; a process sending
	// the wrong kind is misbehaving and is ignored.
	if req.Op == wire.OpWrite && m.From.Role != types.RoleWriter {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "write from non-writer")
		return
	}
	if req.Op == wire.OpRead && m.From.Role != types.RoleReader {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "read from non-reader")
		return
	}
	s.cfg.Trace.Record(trace.KindReceive, s.cfg.ID, m.From, "%s ts=%d rc=%d", req.Op, req.TS, req.RCounter)

	// In the arbitrary-failure variant, any timestamp the server might adopt
	// must carry a valid writer signature (Figure 5's receivevalid). Read
	// requests write back a previously signed timestamp; timestamp 0 needs no
	// signature.
	if s.cfg.Byzantine {
		if err := s.cfg.Verifier.Verify(req.TS, req.Cur, req.Prev, req.WriterSig); err != nil {
			s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "invalid writer signature on ts=%d: %v", req.TS, err)
			return
		}
	}

	pid := m.From.ClientPID()

	s.mu.Lock()
	if req.RCounter < s.counters[pid] {
		s.mu.Unlock()
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "stale rCounter %d < %d", req.RCounter, s.counters[pid])
		return
	}
	if req.TS > s.value.TS {
		s.value = types.TaggedValue{TS: req.TS, Cur: req.Cur.Clone(), Prev: req.Prev.Clone()}
		s.valueSig = append([]byte(nil), req.WriterSig...)
		s.seen = types.NewProcessSet(m.From)
	} else {
		s.seen.Add(m.From)
	}
	s.counters[pid] = req.RCounter
	s.mutations++

	ackOp := wire.OpWriteAck
	if req.Op == wire.OpRead {
		ackOp = wire.OpReadAck
	}
	ack := &wire.Message{
		Op:        ackOp,
		TS:        s.value.TS,
		Cur:       s.value.Cur.Clone(),
		Prev:      s.value.Prev.Clone(),
		Seen:      s.seen.Members(),
		RCounter:  req.RCounter,
		WriterSig: append([]byte(nil), s.valueSig...),
	}
	s.mu.Unlock()

	s.cfg.Trace.Record(trace.KindStateChange, s.cfg.ID, m.From, "ts=%d seen=%s", ack.TS, types.NewProcessSet(ack.Seen...))
	s.cfg.Trace.Record(trace.KindSend, s.cfg.ID, m.From, "%s ts=%d rc=%d", ack.Op, ack.TS, ack.RCounter)
	if err := s.node.Send(m.From, ack.Kind(), wire.MustEncode(ack)); err != nil {
		s.cfg.Trace.Record(trace.KindDrop, s.cfg.ID, m.From, "send ack: %v", err)
	}
}
