package core

import (
	"fmt"
	"testing"
	"time"

	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// maliciousForger is a server-role node that replies to every read with a
// fabricated huge timestamp. Without signatures this would poison readers; in
// the arbitrary-failure algorithm readers must discard the forgery.
type maliciousForger struct {
	node transport.Node
	sign func(ts types.Timestamp, cur, prev types.Value) []byte
}

func startMaliciousForger(t *testing.T, net *transport.InMemNetwork, id types.ProcessID, sign func(types.Timestamp, types.Value, types.Value) []byte) {
	t.Helper()
	node, err := net.Join(id)
	if err != nil {
		t.Fatal(err)
	}
	go transport.Serve(node, func(m transport.Message) {
		req, err := wire.Decode(m.Payload)
		if err != nil {
			return
		}
		ackOp := wire.OpWriteAck
		if req.Op == wire.OpRead {
			ackOp = wire.OpReadAck
		}
		forgedTS := types.Timestamp(1_000_000)
		forgedCur := types.Value("forged")
		forgedPrev := types.Value("forged-prev")
		ack := &wire.Message{
			Op:       ackOp,
			TS:       forgedTS,
			Cur:      forgedCur,
			Prev:     forgedPrev,
			Seen:     []types.ProcessID{m.From, types.Writer()},
			RCounter: req.RCounter,
		}
		if sign != nil {
			ack.WriterSig = sign(forgedTS, forgedCur, forgedPrev)
		}
		_ = node.Send(m.From, ack.Kind(), wire.MustEncode(ack))
	})
	t.Cleanup(func() { _ = node.Close() })
}

// newByzTestCluster builds a Byzantine-mode cluster where the servers with
// index > honest are replaced by malicious forgers.
func newByzTestCluster(t *testing.T, cfg quorum.Config, maliciousCount int) *testCluster {
	t.Helper()
	net := transport.NewInMemNetwork()
	c := &testCluster{t: t, cfg: cfg, byz: true}
	c.net = net
	c.keys = sig.MustKeyPair()
	c.trace = nil
	t.Cleanup(func() { _ = net.Close() })

	wrongKeys := sig.MustKeyPair()
	for i := 1; i <= cfg.Servers; i++ {
		id := types.Server(i)
		if i > cfg.Servers-maliciousCount {
			// Malicious servers sign forgeries with a key that is NOT the
			// writer's: unforgeability means they cannot do better.
			startMaliciousForger(t, net, id, func(ts types.Timestamp, cur, prev types.Value) []byte {
				return wrongKeys.Signer.MustSign(ts, cur, prev)
			})
			continue
		}
		node, err := net.Join(id)
		if err != nil {
			t.Fatalf("join server %d: %v", i, err)
		}
		srv, err := NewServer(ServerConfig{
			ID:        id,
			Readers:   cfg.Readers,
			Byzantine: true,
			Verifier:  c.keys.Verifier,
		}, node)
		if err != nil {
			t.Fatalf("new server %d: %v", i, err)
		}
		srv.Start()
		c.servers = append(c.servers, srv)
		t.Cleanup(srv.Stop)
	}

	wNode, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	c.writer, err = NewWriter(WriterConfig{Quorum: cfg, Byzantine: true, Signer: c.keys.Signer}, wNode)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= cfg.Readers; i++ {
		rNode, err := net.Join(types.Reader(i))
		if err != nil {
			t.Fatal(err)
		}
		rd, err := NewReader(ReaderConfig{Quorum: cfg, Byzantine: true, Verifier: c.keys.Verifier}, rNode)
		if err != nil {
			t.Fatal(err)
		}
		c.readers = append(c.readers, rd)
	}
	return c
}

func TestByzantineHappyPath(t *testing.T) {
	cfg := quorum.Config{Servers: 8, Faulty: 1, Malicious: 1, Readers: 1}
	if !cfg.FastReadPossible() {
		t.Fatal("test configuration must admit fast reads")
	}
	c := newTestCluster(t, cfg, withByzantine())
	c.write("v1")
	res := c.read(1)
	if !res.Value.Equal(types.Value("v1")) || res.Timestamp != 1 {
		t.Errorf("read = %s ts=%d, want v1 ts=1", res.Value, res.Timestamp)
	}
}

func TestByzantineForgedTimestampsRejected(t *testing.T) {
	cfg := quorum.Config{Servers: 8, Faulty: 1, Malicious: 1, Readers: 1}
	c := newByzTestCluster(t, cfg, cfg.Malicious)

	c.write("genuine-1")
	res := c.read(1)
	if !res.Value.Equal(types.Value("genuine-1")) {
		t.Fatalf("read returned %s, want genuine-1 (forged replies must be discarded)", res.Value)
	}
	if res.MaxTimestamp >= 1_000_000 {
		t.Fatalf("reader adopted a forged timestamp %d", res.MaxTimestamp)
	}

	// Multiple rounds: monotone, never the forged value.
	prev := res.Timestamp
	for i := 2; i <= 5; i++ {
		c.write(fmt.Sprintf("genuine-%d", i))
		r := c.read(1)
		if r.Timestamp < prev {
			t.Fatalf("timestamps went backwards: %d after %d", r.Timestamp, prev)
		}
		if r.Value.Equal(types.Value("forged")) {
			t.Fatal("reader returned the forged value")
		}
		prev = r.Timestamp
	}
}

func TestByzantineServersDoNotAdoptForgeries(t *testing.T) {
	// A malicious *client* (compromised reader identity) tries to push an
	// unsigned high timestamp into honest servers; they must refuse it.
	cfg := quorum.Config{Servers: 6, Faulty: 1, Malicious: 1, Readers: 1}
	c := newTestCluster(t, cfg, withByzantine())
	c.write("v1")

	rogue, err := c.net.Join(types.Reader(9))
	if err != nil {
		t.Fatal(err)
	}
	// Note: reader 9 is outside R so servers drop it for that reason too;
	// also try impersonating reader 1's identity is impossible on this
	// transport, so the interesting case is a legitimate reader index with a
	// bogus signature, covered next.
	forged := &wire.Message{Op: wire.OpRead, TS: 500, Cur: types.Value("evil"), RCounter: 1}
	for i := 1; i <= cfg.Servers; i++ {
		_ = rogue.Send(types.Server(i), forged.Kind(), wire.MustEncode(forged))
	}
	time.Sleep(50 * time.Millisecond)
	for _, srv := range c.servers {
		if srv.State().Value.TS >= 500 {
			t.Fatalf("server %v adopted an unsigned forged timestamp", srv.ID())
		}
	}

	// A legitimate reader identity with an invalid signature must also be
	// rejected. Use the real reader's node after its own read so counters
	// stay consistent.
	res := c.read(1)
	if res.Timestamp != 1 {
		t.Fatalf("setup read returned ts=%d", res.Timestamp)
	}
	wrongKeys := sig.MustKeyPair()
	badSig := wrongKeys.Signer.MustSign(700, types.Value("evil"), types.Bottom())
	bad := &wire.Message{Op: wire.OpRead, TS: 700, Cur: types.Value("evil"), RCounter: 99, WriterSig: badSig}
	rogueReaderNode, err := c.net.Join(types.Reader(1 + cfg.Readers)) // a spare identity
	if err != nil {
		t.Fatal(err)
	}
	_ = rogueReaderNode
	// Send from the rogue node pretending a valid op; servers check the
	// signature before the identity-derived counter, so TS must not change.
	for i := 1; i <= cfg.Servers; i++ {
		_ = rogue.Send(types.Server(i), bad.Kind(), wire.MustEncode(bad))
	}
	time.Sleep(50 * time.Millisecond)
	for _, srv := range c.servers {
		if srv.State().Value.TS >= 500 {
			t.Fatalf("server %v adopted a badly signed timestamp", srv.ID())
		}
	}
}

func TestByzantineReadBeforeWrite(t *testing.T) {
	cfg := quorum.Config{Servers: 8, Faulty: 1, Malicious: 1, Readers: 1}
	c := newByzTestCluster(t, cfg, cfg.Malicious)
	res := c.read(1)
	if !res.Value.IsBottom() || res.Timestamp != 0 {
		t.Errorf("read before write = %s ts=%d, want ⊥ ts=0", res.Value, res.Timestamp)
	}
}

func TestByzantineMaliciousCannotViolateMonotonicityAcrossReaders(t *testing.T) {
	cfg := quorum.Config{Servers: 11, Faulty: 1, Malicious: 1, Readers: 2}
	if !cfg.FastReadPossible() {
		t.Fatalf("configuration %v must admit fast reads", cfg)
	}
	c := newByzTestCluster(t, cfg, cfg.Malicious)

	var lastTS types.Timestamp
	for i := 1; i <= 6; i++ {
		c.write(fmt.Sprintf("v%d", i))
		for r := 1; r <= cfg.Readers; r++ {
			res := c.read(r)
			if res.Timestamp < lastTS {
				t.Fatalf("reader r%d returned ts=%d after ts=%d had been returned", r, res.Timestamp, lastTS)
			}
			lastTS = res.Timestamp
		}
	}
}
