package core

import (
	"context"
	"fmt"
	"sync"

	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// ReaderConfig configures a reader process ri.
type ReaderConfig struct {
	// Quorum describes the deployment (S, t, b, R).
	Quorum quorum.Config
	// Key names the register this reader operates on. The empty key is the
	// deployment's default register. Every request is stamped with the key
	// and only acknowledgements carrying it are accepted, so many per-key
	// readers can share one transport identity.
	Key string
	// Byzantine enables the arbitrary-failure variant (Figure 5): readers
	// verify the writer's signature on every acknowledgement and discard
	// replies from servers that pretend not to have seen the written-back
	// timestamp.
	Byzantine bool
	// Verifier is the writer's public key; required when Byzantine is true.
	Verifier sig.Verifier
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
}

// ReadResult reports what a read returned and how it decided.
type ReadResult struct {
	// Value is the value returned by the read (possibly ⊥).
	Value types.Value
	// Timestamp is the logical timestamp of the returned value.
	Timestamp types.Timestamp
	// MaxTimestamp is the highest timestamp observed during the read.
	MaxTimestamp types.Timestamp
	// PredicateHeld reports whether the seen-set predicate allowed returning
	// MaxTimestamp (when false the read returned MaxTimestamp−1).
	PredicateHeld bool
	// PredicateLevel is the witness a for which the predicate held.
	PredicateLevel int
	// RoundTrips is the number of communication round-trips used (always 1).
	RoundTrips int
}

// Reader is the reader-side of the fast algorithms (Figure 2 / Figure 5
// lines 9-22). A Reader performs one read at a time; Read is not safe for
// concurrent use by multiple goroutines.
type Reader struct {
	cfg     ReaderConfig
	node    transport.Node
	id      types.ProcessID
	servers []types.ProcessID

	// verify memoises writer-signature verifications in the Byzantine
	// variant: every ack of a steady-state read carries the same signed
	// tuple, so only its first sighting pays for asymmetric crypto. Nil in
	// the crash model.
	verify *sig.Cache

	mu       sync.Mutex
	rCounter int64
	last     types.TaggedValue // highest observed timestamp and its tags
	lastSig  []byte
	rounds   stats.Counter
	reads    int64
	fallback int64 // reads that returned maxTS−1
}

// NewReader creates reader client ri bound to the given transport node.
func NewReader(cfg ReaderConfig, node transport.Node) (*Reader, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("core: reader requires a transport node")
	}
	id := node.ID()
	if id.Role != types.RoleReader || id.Index < 1 || id.Index > cfg.Quorum.Readers {
		return nil, fmt.Errorf("%w: got %v with R=%d", ErrNotReader, id, cfg.Quorum.Readers)
	}
	r := &Reader{
		cfg:     cfg,
		node:    node,
		id:      id,
		servers: protoutil.ServerIDs(cfg.Quorum.Servers),
		last:    types.InitialTaggedValue(),
	}
	if cfg.Byzantine {
		r.verify = sig.NewCache(cfg.Verifier, 0)
	}
	return r, nil
}

// ID returns the reader's process identity.
func (r *Reader) ID() types.ProcessID { return r.id }

// Read returns the current register value in a single round-trip.
func (r *Reader) Read(ctx context.Context) (ReadResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	// Figure 2 line 13: rCounter ← rCounter+1; ts ← maxTS. The read request
	// writes back the highest timestamp the reader has observed, together
	// with its value tags (and the writer's signature in the
	// arbitrary-failure variant) so servers can adopt it. The request is
	// transient — encoded during the broadcast, never retained — so its
	// fields alias the reader's own state without cloning.
	r.rCounter++
	rc := r.rCounter
	writeBack := r.last
	req := &wire.Message{
		Op:        wire.OpRead,
		Key:       r.cfg.Key,
		TS:        writeBack.TS,
		Cur:       writeBack.Cur,
		Prev:      writeBack.Prev,
		RCounter:  rc,
		WriterSig: r.lastSig,
	}

	if r.cfg.Trace.Enabled() {
		r.cfg.Trace.Record(trace.KindInvoke, r.id, types.ProcessID{}, "read(key=%q) rc=%d writeback ts=%d", r.cfg.Key, rc, writeBack.TS)
	}

	need := r.cfg.Quorum.AckQuorum()
	filter := r.ackFilter(rc, writeBack.TS)
	acks, err := protoutil.RoundTrip(ctx, r.node, r.servers, req, need, filter, r.cfg.Trace)
	if err != nil {
		return ReadResult{}, fmt.Errorf("core: read rc=%d: %w", rc, err)
	}
	r.rounds.Add(1)
	r.reads++

	// Figure 2 lines 16-18: find maxTS and the messages carrying it.
	maxTS, _, _ := protoutil.MaxTimestamp(acks)
	maxAcks := protoutil.FilterByTimestamp(acks, maxTS)

	seenAcks := make([]SeenAck, len(maxAcks))
	for i, a := range maxAcks {
		seenAcks[i] = SeenAck{Server: a.From, Seen: a.Msg.SeenSet()}
	}
	pred, err := EvaluatePredicate(r.cfg.Quorum, seenAcks)
	if err != nil {
		return ReadResult{}, fmt.Errorf("core: read rc=%d: evaluate predicate: %w", rc, err)
	}

	// Remember the highest observed timestamp (and its tags) for the next
	// read's write-back, regardless of what this read returns. This is a
	// retention point: the ack's fields alias the delivered payload, so the
	// reader clones what it keeps (reusing its signature buffer).
	tagged := maxAcks[0].Msg.Tagged()
	r.last = tagged.Clone()
	r.lastSig = append(r.lastSig[:0], maxAcks[0].Msg.WriterSig...)

	result := ReadResult{
		MaxTimestamp:   maxTS,
		PredicateHeld:  pred.Holds,
		PredicateLevel: pred.Level,
		RoundTrips:     1,
	}
	if pred.Holds {
		result.Timestamp = maxTS
		result.Value = tagged.Cur.Clone()
	} else {
		result.Timestamp = maxTS.Prev()
		result.Value = tagged.Prev.Clone()
		r.fallback++
	}
	if r.cfg.Trace.Enabled() {
		r.cfg.Trace.Record(trace.KindReturn, r.id, types.ProcessID{},
			"read rc=%d -> ts=%d (maxTS=%d predicate=%v a=%d)", rc, result.Timestamp, maxTS, pred.Holds, pred.Level)
	}
	return result, nil
}

// ackFilter builds the acceptance predicate for readack messages of the
// current operation.
func (r *Reader) ackFilter(rc int64, writeBackTS types.Timestamp) protoutil.AckFilter {
	return func(from types.ProcessID, m *wire.Message) bool {
		if m.Op != wire.OpReadAck || m.Key != r.cfg.Key || m.RCounter != rc {
			return false
		}
		if !r.cfg.Byzantine {
			return true
		}
		// Figure 5 line 15: accept only valid acknowledgements with
		// ts' ≥ ts and ri ∈ seen'. Anything else is necessarily from a
		// malicious server.
		if m.TS < writeBackTS {
			return false
		}
		if !seenHas(m.Seen, r.id) {
			return false
		}
		if err := r.verify.VerifyKeyed(r.cfg.Key, m.TS, m.Cur, m.Prev, m.WriterSig); err != nil {
			return false
		}
		return true
	}
}

// seenHas reports whether the seen slice contains the process, without
// building the intermediate set SeenSet allocates; ack filters run on every
// delivered message.
func seenHas(seen []types.ProcessID, id types.ProcessID) bool {
	for _, p := range seen {
		if p == id {
			return true
		}
	}
	return false
}

// Stats reports the number of completed reads, the total round-trips they
// used (always equal for this fast implementation) and how many reads
// returned maxTS−1 because the predicate did not hold.
func (r *Reader) Stats() (reads, roundTrips, fallbacks int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reads, r.rounds.Total(), r.fallback
}

// LastObserved returns the highest timestamp the reader has observed so far.
func (r *Reader) LastObserved() types.Timestamp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last.TS
}

// Close detaches the reader from the network.
func (r *Reader) Close() error { return r.node.Close() }
