package core

import (
	"context"
	"fmt"
	"sync"

	"fastread/internal/protoutil"
	"fastread/internal/quorum"
	"fastread/internal/sig"
	"fastread/internal/stats"
	"fastread/internal/trace"
	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// ReaderConfig configures a reader process ri.
type ReaderConfig struct {
	// Quorum describes the deployment (S, t, b, R).
	Quorum quorum.Config
	// Key names the register this reader operates on. The empty key is the
	// deployment's default register. Every request is stamped with the key
	// and only acknowledgements carrying it are accepted, so many per-key
	// readers can share one transport identity.
	Key string
	// Byzantine enables the arbitrary-failure variant (Figure 5): readers
	// verify the writer's signature on every acknowledgement and discard
	// replies from servers that pretend not to have seen the written-back
	// timestamp.
	Byzantine bool
	// Verifier is the writer's public key; required when Byzantine is true.
	Verifier sig.Verifier
	// Depth bounds the number of reads this reader keeps in flight at once
	// (ReadAsync); non-positive means protoutil.DefaultPipelineDepth. A
	// serial Read is a pipelined read at depth one.
	Depth int
	// Nonce, when positive, overrides the reader's initial operation
	// counter (see protoutil.StartNonce; deterministic simulation).
	Nonce int64
	// Trace, if non-nil, records protocol events.
	Trace *trace.Trace
}

// ReadResult reports what a read returned and how it decided.
type ReadResult struct {
	// Value is the value returned by the read (possibly ⊥).
	Value types.Value
	// Timestamp is the logical timestamp of the returned value.
	Timestamp types.Timestamp
	// MaxTimestamp is the highest timestamp observed during the read.
	MaxTimestamp types.Timestamp
	// PredicateHeld reports whether the seen-set predicate allowed returning
	// MaxTimestamp (when false the read returned MaxTimestamp−1).
	PredicateHeld bool
	// PredicateLevel is the witness a for which the predicate held.
	PredicateLevel int
	// RoundTrips is the number of communication round-trips used (always 1).
	RoundTrips int
}

// Reader is the reader-side of the fast algorithms (Figure 2 / Figure 5
// lines 9-22). A Reader keeps up to cfg.Depth reads in flight at once:
// ReadAsync submits a read and returns a future, and the blocking Read is
// exactly ReadAsync at depth one. Both are safe for concurrent use — every
// in-flight read is matched to its acknowledgements by its rCounter nonce.
type Reader struct {
	cfg     ReaderConfig
	node    transport.Node
	id      types.ProcessID
	servers []types.ProcessID
	pl      *protoutil.Pipeline

	// verify memoises writer-signature verifications in the Byzantine
	// variant: every ack of a steady-state read carries the same signed
	// tuple, so only its first sighting pays for asymmetric crypto. Nil in
	// the crash model.
	verify *sig.Cache

	mu       sync.Mutex
	rCounter int64
	last     types.TaggedValue // highest observed timestamp and its tags
	lastSig  []byte
	rounds   stats.Counter
	reads    int64
	fallback int64 // reads that returned maxTS−1

	// Per-read scratch, guarded by mu: completion runs one at a time per
	// reader, so the predicate evaluator's buffers and the maxTS/seen
	// staging slices recycle across reads instead of allocating per read.
	pred       predicateScratch
	maxScratch []protoutil.Ack
	seenStage  [][]types.ProcessID
}

// NewReader creates reader client ri bound to the given transport node.
func NewReader(cfg ReaderConfig, node transport.Node) (*Reader, error) {
	if err := cfg.Quorum.Validate(); err != nil {
		return nil, err
	}
	if node == nil {
		return nil, fmt.Errorf("core: reader requires a transport node")
	}
	id := node.ID()
	if id.Role != types.RoleReader || id.Index < 1 || id.Index > cfg.Quorum.Readers {
		return nil, fmt.Errorf("%w: got %v with R=%d", ErrNotReader, id, cfg.Quorum.Readers)
	}
	r := &Reader{
		cfg:      cfg,
		node:     node,
		id:       id,
		servers:  protoutil.ServerIDs(cfg.Quorum.Servers),
		pl:       protoutil.NewPipeline(node, cfg.Depth, cfg.Trace),
		last:     types.InitialTaggedValue(),
		rCounter: protoutil.StartNonce(cfg.Nonce),
	}
	if cfg.Byzantine {
		r.verify = sig.NewCache(cfg.Verifier, 0)
	}
	return r, nil
}

// ID returns the reader's process identity.
func (r *Reader) ID() types.ProcessID { return r.id }

// Read returns the current register value in a single round-trip. It is the
// depth-one degenerate case of ReadAsync: submit, then wait.
func (r *Reader) Read(ctx context.Context) (ReadResult, error) {
	f, err := r.ReadAsync(ctx)
	if err != nil {
		return ReadResult{}, err
	}
	return f.Result(ctx)
}

// readOp is the pooled per-operation state of one in-flight read: the
// acceptance predicate's inputs, the future to resolve, and the request
// message itself. It implements protoutil.OpHandler, so registering a read
// costs one pool fetch instead of two closure allocations plus a heap
// request; Complete returns it to the pool after resolving the future.
type readOp struct {
	r           *Reader
	rc          int64
	writeBackTS types.Timestamp
	f           *protoutil.Future[ReadResult]
	req         wire.Message
}

var readOpPool = sync.Pool{New: func() any { return new(readOp) }}

// Accept implements the Figure 2 / Figure 5 line 15 acknowledgement check
// (see the ackFilter doc); it runs under the pipeline mutex.
func (ro *readOp) Accept(from types.ProcessID, m *wire.Message) bool {
	r := ro.r
	if m.Op != wire.OpReadAck || m.Key != r.cfg.Key || m.RCounter != ro.rc {
		return false
	}
	if !r.cfg.Byzantine {
		return true
	}
	// Figure 5 line 15: accept only valid acknowledgements with ts' ≥ ts and
	// ri ∈ seen'. Anything else is necessarily from a malicious server.
	if m.TS < ro.writeBackTS {
		return false
	}
	if !seenHas(m.Seen, r.id) {
		return false
	}
	return r.verify.VerifyKeyed(r.cfg.Key, m.TS, m.Cur, m.Prev, m.WriterSig) == nil
}

// Complete resolves the read's future and recycles the operation state. The
// acks are released by the engine when this returns; finishRead clones
// everything it retains.
func (ro *readOp) Complete(acks []protoutil.Ack, err error) {
	r, rc, f := ro.r, ro.rc, ro.f
	var res ReadResult
	if err != nil {
		err = fmt.Errorf("core: read rc=%d: %w", rc, err)
	} else {
		res, err = r.finishRead(rc, acks)
	}
	// Recycle ONLY after taking r.mu: the submitting goroutine encodes
	// ro.req during its broadcast while holding r.mu, and a (Byzantine)
	// server that guessed the operation's nonce could otherwise complete the
	// operation while that encode is still reading the request. Taking the
	// mutex orders the recycle after the broadcast.
	r.mu.Lock()
	*ro = readOp{}
	readOpPool.Put(ro)
	r.mu.Unlock()
	f.Resolve(res, err)
}

// ReadAsync submits one read operation and returns its future without
// waiting for the quorum, keeping up to cfg.Depth reads of this handle in
// flight. Each in-flight read is an independent state machine keyed by its
// rCounter nonce; cancelling ctx (or the ctx passed to Result) aborts only
// this read. At depth the call blocks until an in-flight read completes.
func (r *Reader) ReadAsync(ctx context.Context) (*protoutil.Future[ReadResult], error) {
	if err := r.pl.Acquire(ctx); err != nil {
		return nil, fmt.Errorf("core: read: %w", err)
	}
	f := protoutil.NewFuture[ReadResult]()

	r.mu.Lock()
	// Figure 2 line 13: rCounter ← rCounter+1; ts ← maxTS. The read request
	// writes back the highest timestamp the reader has observed, together
	// with its value tags (and the writer's signature in the
	// arbitrary-failure variant) so servers can adopt it. The request is
	// transient — encoded during the broadcast, still under r.mu, never
	// retained — so its fields alias the reader's own state without cloning.
	r.rCounter++
	rc := r.rCounter
	writeBack := r.last
	ro := readOpPool.Get().(*readOp)
	ro.r, ro.rc, ro.writeBackTS, ro.f = r, rc, writeBack.TS, f
	ro.req = wire.Message{
		Op:        wire.OpRead,
		Key:       r.cfg.Key,
		TS:        writeBack.TS,
		Cur:       writeBack.Cur,
		Prev:      writeBack.Prev,
		RCounter:  rc,
		WriterSig: r.lastSig,
	}

	if r.cfg.Trace.Enabled() {
		r.cfg.Trace.Record(trace.KindInvoke, r.id, types.ProcessID{}, "read(key=%q) rc=%d writeback ts=%d", r.cfg.Key, rc, writeBack.TS)
	}

	need := r.cfg.Quorum.AckQuorum()
	op := r.pl.RegisterHandler(need, ro)
	err := protoutil.Broadcast(r.node, r.servers, &ro.req, r.cfg.Trace)
	r.mu.Unlock()
	if err != nil {
		op.Abort(err)
		return nil, fmt.Errorf("core: read rc=%d: %w", rc, err)
	}
	f.Bind(ctx, op)
	return f, nil
}

// finishRead turns a completed quorum into the read's result: Figure 2
// lines 16-22, run from the engine's completion callback.
func (r *Reader) finishRead(rc int64, acks []protoutil.Ack) (ReadResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds.Add(1)
	r.reads++

	// Figure 2 lines 16-18: find maxTS and the messages carrying it. Both
	// staging slices alias the delivered acks and are cleared before return
	// so the recycled scratch never pins payloads.
	maxTS, _, _ := protoutil.MaxTimestamp(acks)
	maxAcks := r.maxScratch[:0]
	seens := r.seenStage[:0]
	for _, a := range acks {
		if a.Msg.TS == maxTS {
			maxAcks = append(maxAcks, a)
			seens = append(seens, a.Msg.Seen)
		}
	}
	holds, level, err := r.pred.evaluate(r.cfg.Quorum, seens)
	releaseScratch := func() {
		for i := range maxAcks {
			maxAcks[i] = protoutil.Ack{}
		}
		for i := range seens {
			seens[i] = nil
		}
		r.maxScratch = maxAcks[:0]
		r.seenStage = seens[:0]
	}
	if err != nil {
		releaseScratch()
		return ReadResult{}, fmt.Errorf("core: read rc=%d: evaluate predicate: %w", rc, err)
	}
	pred := PredicateResult{Holds: holds, Level: level}

	// Remember the highest observed timestamp (and its tags) for later
	// reads' write-backs, regardless of what this read returns. Pipelined
	// reads complete in any order, so only a strictly newer observation is
	// adopted — a slow sibling must not roll the write-back window back.
	// This is a retention point: the ack's fields alias the delivered
	// payload, so the reader clones what it keeps (reusing its signature
	// buffer).
	tagged := maxAcks[0].Msg.Tagged()
	if tagged.TS > r.last.TS {
		r.last = tagged.Clone()
		r.lastSig = append(r.lastSig[:0], maxAcks[0].Msg.WriterSig...)
	}

	result := ReadResult{
		MaxTimestamp:   maxTS,
		PredicateHeld:  pred.Holds,
		PredicateLevel: pred.Level,
		RoundTrips:     1,
	}
	if pred.Holds {
		result.Timestamp = maxTS
		result.Value = tagged.Cur.Clone()
	} else {
		result.Timestamp = maxTS.Prev()
		result.Value = tagged.Prev.Clone()
		r.fallback++
	}
	if r.cfg.Trace.Enabled() {
		r.cfg.Trace.Record(trace.KindReturn, r.id, types.ProcessID{},
			"read rc=%d -> ts=%d (maxTS=%d predicate=%v a=%d)", rc, result.Timestamp, maxTS, pred.Holds, pred.Level)
	}
	releaseScratch()
	return result, nil
}

// seenHas reports whether the seen slice contains the process, without
// building the intermediate set SeenSet allocates; ack filters run on every
// delivered message.
func seenHas(seen []types.ProcessID, id types.ProcessID) bool {
	for _, p := range seen {
		if p == id {
			return true
		}
	}
	return false
}

// Stats reports the number of completed reads, the total round-trips they
// used (always equal for this fast implementation) and how many reads
// returned maxTS−1 because the predicate did not hold.
func (r *Reader) Stats() (reads, roundTrips, fallbacks int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reads, r.rounds.Total(), r.fallback
}

// LastObserved returns the highest timestamp the reader has observed so far.
func (r *Reader) LastObserved() types.Timestamp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.last.TS
}

// Close detaches the reader from the network.
func (r *Reader) Close() error { return r.node.Close() }
