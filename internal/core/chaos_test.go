package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"fastread/internal/atomicity"
	"fastread/internal/history"
	"fastread/internal/quorum"
	"fastread/internal/types"
)

// TestChaosRandomSchedulesStayAtomic drives the fast register through many
// randomised adversarial schedules — random link blocking/unblocking, random
// crashes of up to t servers, random interleavings of reads and writes — and
// checks every resulting history against the atomicity conditions. This is
// the property-based counterpart of the hand-crafted lower-bound schedule:
// within the R < S/t − 2 bound no schedule the adversary picks may produce a
// violation.
func TestChaosRandomSchedulesStayAtomic(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is comparatively slow")
	}
	configs := []quorum.Config{
		{Servers: 4, Faulty: 1, Readers: 1},
		{Servers: 7, Faulty: 1, Readers: 2},
		{Servers: 10, Faulty: 2, Readers: 2},
	}
	const seedsPerConfig = 4

	for _, cfg := range configs {
		for seed := int64(1); seed <= seedsPerConfig; seed++ {
			name := fmt.Sprintf("S=%d_t=%d_R=%d_seed=%d", cfg.Servers, cfg.Faulty, cfg.Readers, seed)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				runChaosSchedule(t, cfg, seed)
			})
		}
	}
}

// runChaosSchedule executes one randomised schedule and checks atomicity.
func runChaosSchedule(t *testing.T, cfg quorum.Config, seed int64) {
	t.Helper()
	c := newTestCluster(t, cfg)
	rng := rand.New(rand.NewSource(seed))
	recorder := history.NewRecorder()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Adversary goroutine: blocks and unblocks random client→server and
	// server→client links, and crashes up to t servers, while the workload
	// runs. Blocked links are always unblocked again shortly after so that
	// operations keep terminating (the adversary may delay, not destroy,
	// more than t servers).
	stopAdversary := make(chan struct{})
	var adversaryDone sync.WaitGroup
	adversaryDone.Add(1)
	go func() {
		defer adversaryDone.Done()
		clients := []types.ProcessID{types.Writer()}
		for i := 1; i <= cfg.Readers; i++ {
			clients = append(clients, types.Reader(i))
		}
		crashesLeft := cfg.Faulty
		for {
			select {
			case <-stopAdversary:
				return
			default:
			}
			client := clients[rng.Intn(len(clients))]
			server := types.Server(rng.Intn(cfg.Servers) + 1)
			switch rng.Intn(6) {
			case 0:
				c.net.Block(client, server)
			case 1:
				c.net.Block(server, client)
			case 2, 3:
				c.net.UnblockAll()
			case 4:
				if crashesLeft > 0 && rng.Intn(4) == 0 {
					c.net.Crash(types.Server(cfg.Servers - crashesLeft + 1))
					crashesLeft--
				}
			case 5:
				// Let the system breathe.
			}
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}
	}()

	const writes = 25
	readsPerReader := 35

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= writes; i++ {
			value := types.Value(fmt.Sprintf("chaos-%d", i))
			op := recorder.Invoke(types.Writer(), history.OpWrite, value)
			opCtx, opCancel := context.WithTimeout(ctx, 5*time.Second)
			err := c.writer.Write(opCtx, value)
			opCancel()
			if err != nil {
				// In the model a writer with an incomplete write has crashed:
				// it must not start another write, since reusing the timestamp
				// for a different value would put two values at one timestamp
				// and make the history unsound for the checker.
				recorder.Fail(op)
				return
			}
			recorder.Return(op, nil, types.Timestamp(i))
		}
	}()
	for r := 1; r <= cfg.Readers; r++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for i := 0; i < readsPerReader; i++ {
				op := recorder.Invoke(types.Reader(idx), history.OpRead, nil)
				opCtx, opCancel := context.WithTimeout(ctx, 5*time.Second)
				res, err := c.readers[idx-1].Read(opCtx)
				opCancel()
				if err != nil {
					recorder.Fail(op)
					continue
				}
				recorder.Return(op, res.Value, res.Timestamp)
			}
		}(r)
	}
	wg.Wait()
	close(stopAdversary)
	adversaryDone.Wait()

	// The adversary may have blocked links at the moment operations timed
	// out; that only makes some operations incomplete, which the checker
	// treats correctly.
	h := recorder.History()
	report, err := atomicity.CheckSWMR(h)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !report.OK {
		t.Fatalf("atomicity violated under chaos schedule (seed %d):\n%s", seed, report)
	}
	if len(h.Reads()) == 0 {
		t.Fatalf("chaos schedule starved every read (seed %d)", seed)
	}
}

// TestStaleAckFromPreviousReadIsIgnored delays a server's acknowledgement so
// that it arrives during the reader's NEXT operation; the rCounter filter
// must discard it rather than let an old timestamp influence a new read.
func TestStaleAckFromPreviousReadIsIgnored(t *testing.T) {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	c := newTestCluster(t, cfg)

	c.write("v1")

	// Hold server 1's replies to the reader: the first read completes using
	// the other three servers.
	c.net.Hold(types.Server(1), types.Reader(1))
	first := c.read(1)
	if first.Timestamp != 1 {
		t.Fatalf("first read returned ts=%d, want 1", first.Timestamp)
	}

	// A new value is written, then the held (stale, rCounter=1) ack is
	// released while the second read (rCounter=2) is collecting replies.
	c.write("v2")
	c.net.Release(types.Server(1), types.Reader(1))
	second := c.read(1)
	if second.Timestamp != 2 || !second.Value.Equal(types.Value("v2")) {
		t.Fatalf("second read returned ts=%d value=%s, want ts=2 v2", second.Timestamp, second.Value)
	}
}

// TestReaderWriteBackPropagatesAcrossReads exercises the mechanism behind
// Lemma 2/case 〈5〉2: a reader that observed a high timestamp writes it back
// in its next read, so even servers that missed the original write answer
// with the newer timestamp from then on.
func TestReaderWriteBackPropagatesAcrossReads(t *testing.T) {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	c := newTestCluster(t, cfg)

	// The write reaches only servers s1..s3 (s4 is held), so s4 still has
	// ts=0 afterwards.
	c.net.Hold(types.Writer(), types.Server(4))
	c.write("v1")
	if ts := c.servers[3].State().Value.TS; ts != 0 {
		t.Fatalf("setup: s4 already has ts=%d", ts)
	}

	// First read: the reader learns ts=1 (from s1..s3).
	res := c.read(1)
	if res.Timestamp != 1 {
		t.Fatalf("first read ts=%d, want 1", res.Timestamp)
	}
	// Second read: its request writes ts=1 back to every server, including
	// s4, which must adopt it (Figure 2 line 27 treats read messages the
	// same as writes).
	c.read(1)
	deadline := time.Now().Add(time.Second)
	for {
		if c.servers[3].State().Value.TS >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("s4 never adopted the written-back timestamp")
		}
		time.Sleep(time.Millisecond)
	}
	if !c.servers[3].State().Value.Cur.Equal(types.Value("v1")) {
		t.Fatalf("s4 adopted ts=1 but stores %s", c.servers[3].State().Value.Cur)
	}
}
