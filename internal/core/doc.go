// Package core implements the paper's primary contribution: fast
// single-writer multi-reader (SWMR) atomic register implementations in which
// every read and every write completes in a single communication round-trip.
//
// Two variants are provided, exactly following the paper:
//
//   - The crash-failure algorithm of Figure 2, correct whenever the number of
//     readers satisfies R < S/t − 2 (equivalently S > (R+2)·t).
//   - The arbitrary-failure algorithm of Figure 5, in which the writer signs
//     each timestamp/value pair; it is correct whenever
//     S > (R+2)·t + (R+1)·b, where b ≤ t of the faulty servers may behave
//     maliciously.
//
// The three process roles are:
//
//   - Server (server.go): stores the latest timestamp, its value tags and the
//     seen set (the clients it has replied to since last adopting a
//     timestamp), plus a per-client counter used to ignore stale messages.
//   - Writer (writer.go): increments its local timestamp, broadcasts the
//     signed (in the arbitrary-failure variant) value and waits for S−t
//     acknowledgements.
//   - Reader (reader.go): broadcasts a read request carrying the highest
//     timestamp it has previously observed (a lightweight "write back" that
//     costs no extra round), collects S−t acknowledgements, and decides —
//     using the seen-set predicate in predicate.go — whether returning the
//     highest observed timestamp is safe or whether it must return the
//     previous one.
//
// The value returned for timestamp maxTS−1 is available without a second
// round because every write carries both the new value and the immediately
// preceding one ("two tags", end of Section 4 of the paper).
package core
