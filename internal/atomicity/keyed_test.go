package atomicity

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"fastread/internal/history"
	"fastread/internal/types"
)

// checkSWQuadratic is the naive reference implementation of the
// single-writer checks: a full write scan per read for condition (2) and an
// unconditional pairwise pass for condition (4). The optimized checkSW must
// produce byte-identical reports.
func checkSWQuadratic(h history.History, requireMonotoneReads bool) (Report, error) {
	writes := h.Writes()
	reads := h.Reads()
	valueToIndex, err := writeIndex(writes)
	if err != nil {
		return Report{}, err
	}

	report := Report{OK: true, Reads: len(reads), Writes: len(writes)}
	addViolation := func(c Condition, format string, args ...any) {
		report.OK = false
		report.Violations = append(report.Violations, Violation{Condition: c, Message: fmt.Sprintf(format, args...)})
	}

	readIndex := make([]int, len(reads))
	for i, rd := range reads {
		if rd.Result.IsBottom() {
			readIndex[i] = 0
			continue
		}
		idx, ok := valueToIndex[string(rd.Result)]
		if !ok {
			readIndex[i] = -1
			addViolation(CondValidValue, "read %s returned a value that was never written", rd)
			continue
		}
		readIndex[i] = idx
	}

	for i, rd := range reads {
		if readIndex[i] < 0 {
			continue
		}
		lastCompleted := 0
		for k, wr := range writes {
			if wr.Completed && !wr.Failed && wr.Precedes(rd) {
				lastCompleted = k + 1
			}
		}
		if readIndex[i] < lastCompleted {
			addViolation(CondReadAfterWrite,
				"read %s returned val_%d although write %d (%s) completed before it was invoked",
				rd, readIndex[i], lastCompleted, writes[lastCompleted-1].Argument)
		}
	}

	for i, rd := range reads {
		k := readIndex[i]
		if k <= 0 {
			continue
		}
		wr := writes[k-1]
		if rd.Precedes(wr) {
			addViolation(CondNoFutureRead,
				"read %s returned val_%d but preceded its write %s", rd, k, wr)
		}
	}

	if requireMonotoneReads {
		for i, rd1 := range reads {
			if readIndex[i] < 0 {
				continue
			}
			for j, rd2 := range reads {
				if i == j || readIndex[j] < 0 {
					continue
				}
				if rd1.Precedes(rd2) && readIndex[j] < readIndex[i] {
					addViolation(CondReadMonotone,
						"read %s returned val_%d after read %s had returned val_%d",
						rd2, readIndex[j], rd1, readIndex[i])
				}
			}
		}
	}
	return report, nil
}

// randomHistory generates a seeded single-writer history with writes issued
// sequentially and reads scattered across the timeline. chaos∈[0,1] controls
// how often a read deliberately misbehaves (stale value, future value, never
// written, ⊥ late), which exercises every violation path of the checker.
func randomHistory(seed int64, writesN, readsN int, chaos float64) history.History {
	rng := rand.New(rand.NewSource(seed))
	origin := time.Unix(0, 0)
	at := func(tick int) time.Time { return origin.Add(time.Duration(tick) * time.Millisecond) }

	var h history.History
	var id int64
	writeStart := make([]int, writesN)
	writeEnd := make([]int, writesN)
	tick := 0
	for k := 0; k < writesN; k++ {
		dur := 1 + rng.Intn(5)
		writeStart[k] = tick
		writeEnd[k] = tick + dur
		completed := rng.Float64() > 0.05
		id++
		h = append(h, history.Operation{
			ID:        id,
			Process:   types.Writer(),
			Kind:      history.OpWrite,
			Argument:  types.Value(fmt.Sprintf("v%d", k+1)),
			Invoked:   at(writeStart[k]),
			Returned:  at(writeEnd[k]),
			Completed: completed,
		})
		tick += dur + rng.Intn(3)
	}
	span := tick + 10

	for r := 0; r < readsN; r++ {
		invoke := rng.Intn(span)
		ret := invoke + 1 + rng.Intn(6)
		// Pick the latest write completed before the read as the honest
		// answer, then maybe distort it.
		honest := 0
		for k := 0; k < writesN; k++ {
			if h[k].Completed && writeEnd[k] < invoke {
				honest = k + 1
			}
		}
		var result types.Value
		switch {
		case rng.Float64() < chaos:
			switch rng.Intn(4) {
			case 0: // stale
				if honest > 1 {
					result = types.Value(fmt.Sprintf("v%d", 1+rng.Intn(honest-1)))
				}
			case 1: // from the future
				result = types.Value(fmt.Sprintf("v%d", 1+rng.Intn(writesN)))
			case 2: // never written
				result = types.Value(fmt.Sprintf("ghost%d", rng.Intn(8)))
			case 3: // ⊥ regardless of completed writes
			}
		case honest > 0:
			result = types.Value(fmt.Sprintf("v%d", honest))
		}
		id++
		h = append(h, history.Operation{
			ID:        id,
			Process:   types.Reader(1 + rng.Intn(4)),
			Kind:      history.OpRead,
			Result:    result,
			Invoked:   at(invoke),
			Returned:  at(ret),
			Completed: true,
		})
	}
	return h
}

func TestCheckSWMatchesQuadraticReference(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		chaos := 0.0
		if seed%2 == 0 {
			chaos = 0.15
		}
		h := randomHistory(seed, 20, 120, chaos)
		for _, monotone := range []bool{true, false} {
			fast, errFast := checkSW(h, monotone)
			ref, errRef := checkSWQuadratic(h, monotone)
			if (errFast == nil) != (errRef == nil) {
				t.Fatalf("seed %d: err fast=%v ref=%v", seed, errFast, errRef)
			}
			if !reflect.DeepEqual(fast, ref) {
				t.Fatalf("seed %d monotone=%v: reports diverge\nfast: %s\nref:  %s", seed, monotone, fast, ref)
			}
		}
	}
}

func multiKeyHistories(seed int64, keys, writesN, readsN int, chaos float64) map[string]history.History {
	out := make(map[string]history.History, keys)
	for k := 0; k < keys; k++ {
		out[fmt.Sprintf("key-%02d", k)] = randomHistory(seed+int64(k)*1000, writesN, readsN, chaos)
	}
	return out
}

func TestCheckKeyedMatchesSerialLoop(t *testing.T) {
	hs := multiKeyHistories(7, 9, 15, 80, 0.1)

	got, err := CheckKeyed(hs, CheckSWMR, 4)
	if err != nil {
		t.Fatal(err)
	}

	want := KeyedReport{OK: true, Reports: make(map[string]Report, len(hs))}
	for k, h := range hs {
		r, err := CheckSWMR(h)
		if err != nil {
			t.Fatal(err)
		}
		want.Reports[k] = r
		want.Reads += r.Reads
		want.Writes += r.Writes
		if !r.OK {
			want.OK = false
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CheckKeyed diverges from serial loop:\ngot:  %+v\nwant: %+v", got, want)
	}
	if got.OK {
		t.Fatal("chaotic multi-key histories should contain at least one violation")
	}
	if len(got.FailedKeys()) == 0 {
		t.Fatal("FailedKeys empty despite !OK")
	}
}

func TestCheckKeyedEmptyAndErrors(t *testing.T) {
	kr, err := CheckKeyed(nil, CheckSWMR, 0)
	if err != nil || !kr.OK || len(kr.Reports) != 0 {
		t.Fatalf("empty input: %+v, %v", kr, err)
	}

	dup := history.History{
		{ID: 1, Process: types.Writer(), Kind: history.OpWrite, Argument: types.Value("same"), Completed: true},
		{ID: 2, Process: types.Writer(), Kind: history.OpWrite, Argument: types.Value("same"), Completed: true},
	}
	hs := map[string]history.History{
		"a": randomHistory(1, 3, 5, 0),
		"b": dup,
	}
	if _, err := CheckKeyed(hs, CheckSWMR, 2); !errors.Is(err, ErrDuplicateWrites) {
		t.Fatalf("err = %v, want ErrDuplicateWrites", err)
	}
}

func BenchmarkCheckSWMRLongHistory(b *testing.B) {
	h := randomHistory(42, 500, 4000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checkSW(h, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckSWMRQuadraticReference(b *testing.B) {
	h := randomHistory(42, 500, 4000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := checkSWQuadratic(h, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckKeyed(b *testing.B) {
	hs := multiKeyHistories(42, 8, 200, 1600, 0)
	for _, par := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel-%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CheckKeyed(hs, CheckSWMR, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
