// Package atomicity checks recorded histories against the register
// correctness conditions used in the paper:
//
//   - CheckSWMR verifies the four single-writer atomicity conditions of
//     Section 3.1 (the ones the paper's algorithms are proven to satisfy and
//     the ones the lower-bound constructions violate).
//   - CheckRegular verifies only regularity (conditions 1-3): a read may not
//     return a value older than the last write that completed before it
//     started, but concurrent reads may disagree.
//   - CheckLinearizable is a general multi-writer register linearizability
//     checker (Wing–Gong style search), used for the MWMR experiments of
//     Section 7.
//
// All checkers require distinct written values, which the workload generator
// guarantees; this is what lets a returned value be mapped back to the write
// that produced it.
package atomicity

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"fastread/internal/history"
)

// valueKey encodes a register value for use as a comparison key inside the
// linearizability search. The initial value ⊥ is the empty key; written
// values get a prefix so that a written empty value cannot collide with ⊥.
func valueKey(v []byte, isBottom bool) string {
	if isBottom {
		return ""
	}
	return "v:" + string(v)
}

// Condition identifies which atomicity condition a violation refers to,
// numbered as in Section 3.1 of the paper.
type Condition int

const (
	// CondValidValue is condition (1): a read returns ⊥ or a written value.
	CondValidValue Condition = 1
	// CondReadAfterWrite is condition (2): a read that succeeds write_k
	// returns val_l with l ≥ k.
	CondReadAfterWrite Condition = 2
	// CondNoFutureRead is condition (3): a read returning val_k does not
	// precede write_k.
	CondNoFutureRead Condition = 3
	// CondReadMonotone is condition (4): reads that follow one another never
	// go back in time.
	CondReadMonotone Condition = 4
)

// Violation describes one way a history failed the check.
type Violation struct {
	Condition Condition
	Message   string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("condition %d violated: %s", v.Condition, v.Message)
}

// Report is the outcome of a check.
type Report struct {
	// OK is true when no violation was found.
	OK bool
	// Violations lists every detected violation.
	Violations []Violation
	// Reads and Writes count the completed operations examined.
	Reads  int
	Writes int
}

// String summarises the report.
func (r Report) String() string {
	if r.OK {
		return fmt.Sprintf("atomic: %d writes, %d reads, no violations", r.Writes, r.Reads)
	}
	s := fmt.Sprintf("NOT atomic: %d violations\n", len(r.Violations))
	for _, v := range r.Violations {
		s += "  " + v.String() + "\n"
	}
	return s
}

// ErrDuplicateWrites indicates the history wrote the same value twice, which
// the checkers cannot disambiguate.
var ErrDuplicateWrites = errors.New("atomicity: written values must be distinct")

// writeIndex maps every written value to its write index (1-based, in
// invocation order — the single writer invokes writes sequentially). The
// initial value ⊥ has index 0.
func writeIndex(writes []history.Operation) (map[string]int, error) {
	idx := make(map[string]int, len(writes))
	for i, w := range writes {
		key := string(w.Argument)
		if _, dup := idx[key]; dup {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateWrites, key)
		}
		idx[key] = i + 1
	}
	return idx, nil
}

// CheckSWMR verifies the four atomicity conditions of Section 3.1 for a
// single-writer history.
func CheckSWMR(h history.History) (Report, error) {
	return checkSW(h, true)
}

// CheckRegular verifies only regularity (conditions 1-3), the guarantee
// provided by the package internal/regular.
func CheckRegular(h history.History) (Report, error) {
	return checkSW(h, false)
}

func checkSW(h history.History, requireMonotoneReads bool) (Report, error) {
	writes := h.Writes()
	reads := h.Reads()
	valueToIndex, err := writeIndex(writes)
	if err != nil {
		return Report{}, err
	}

	report := Report{OK: true, Reads: len(reads), Writes: len(writes)}
	addViolation := func(c Condition, format string, args ...any) {
		report.OK = false
		report.Violations = append(report.Violations, Violation{Condition: c, Message: fmt.Sprintf(format, args...)})
	}

	// Index of the value each read returned; -1 marks unknown values.
	readIndex := make([]int, len(reads))
	for i, rd := range reads {
		if rd.Result.IsBottom() {
			readIndex[i] = 0
			continue
		}
		idx, ok := valueToIndex[string(rd.Result)]
		if !ok {
			readIndex[i] = -1
			addViolation(CondValidValue, "read %s returned a value that was never written", rd)
			continue
		}
		readIndex[i] = idx
	}

	// Condition (2): a read that succeeds write_k returns val_l, l ≥ k.
	//
	// The naive check scans every write per read (O(R·W)). Instead, sort the
	// completed writes by return time and take a running maximum of their
	// 1-based indices; "latest write completed before rd was invoked" is then
	// one binary search per read. The running maximum makes the result
	// identical to the scan even if completion order ever diverged from
	// invocation order.
	type doneWrite struct {
		ret time.Time
		idx int // 1-based write index
	}
	done := make([]doneWrite, 0, len(writes))
	for k, wr := range writes {
		if wr.Completed && !wr.Failed {
			done = append(done, doneWrite{ret: wr.Returned, idx: k + 1})
		}
	}
	sort.Slice(done, func(a, b int) bool { return done[a].ret.Before(done[b].ret) })
	prefixMax := make([]int, len(done))
	for i, dw := range done {
		prefixMax[i] = dw.idx
		if i > 0 && prefixMax[i-1] > dw.idx {
			prefixMax[i] = prefixMax[i-1]
		}
	}
	for i, rd := range reads {
		if readIndex[i] < 0 {
			continue
		}
		// First completed write NOT strictly before rd.Invoked; everything
		// left of it precedes the read.
		pos := sort.Search(len(done), func(p int) bool { return !done[p].ret.Before(rd.Invoked) })
		lastCompleted := 0
		if pos > 0 {
			lastCompleted = prefixMax[pos-1]
		}
		if readIndex[i] < lastCompleted {
			addViolation(CondReadAfterWrite,
				"read %s returned val_%d although write %d (%s) completed before it was invoked",
				rd, readIndex[i], lastCompleted, writes[lastCompleted-1].Argument)
		}
	}

	// Condition (3): a read returning val_k (k ≥ 1) must not precede
	// write_k.
	for i, rd := range reads {
		k := readIndex[i]
		if k <= 0 {
			continue
		}
		wr := writes[k-1]
		if rd.Precedes(wr) {
			addViolation(CondNoFutureRead,
				"read %s returned val_%d but preceded its write %s", rd, k, wr)
		}
	}

	// Condition (4): reads never go back in time. An O(R log R) sweep first
	// decides whether ANY violating pair exists: a pair (rd1 → rd2) violates
	// iff some read returning a higher index returned strictly before rd2 was
	// invoked, so it suffices to compare each read against the running-max
	// index of reads sorted by return time. Only when the sweep finds a
	// violation does the quadratic pass run, so that the reported pairs (and
	// their order) are identical to the naive pairwise check.
	if requireMonotoneReads && readsGoBackInTime(reads, readIndex) {
		for i, rd1 := range reads {
			if readIndex[i] < 0 {
				continue
			}
			for j, rd2 := range reads {
				if i == j || readIndex[j] < 0 {
					continue
				}
				if rd1.Precedes(rd2) && readIndex[j] < readIndex[i] {
					addViolation(CondReadMonotone,
						"read %s returned val_%d after read %s had returned val_%d",
						rd2, readIndex[j], rd1, readIndex[i])
				}
			}
		}
	}
	return report, nil
}

// readsGoBackInTime reports whether some pair of reads violates condition
// (4): rd1 precedes rd2 yet rd2 returned an older value. It is the existence
// pre-check for checkSW's monotone-reads pass.
func readsGoBackInTime(reads []history.Operation, readIndex []int) bool {
	type retRead struct {
		ret time.Time
		idx int
	}
	byReturn := make([]retRead, 0, len(reads))
	for i, rd := range reads {
		if readIndex[i] >= 0 {
			byReturn = append(byReturn, retRead{ret: rd.Returned, idx: readIndex[i]})
		}
	}
	sort.Slice(byReturn, func(a, b int) bool { return byReturn[a].ret.Before(byReturn[b].ret) })
	prefixMax := make([]int, len(byReturn))
	for i, rr := range byReturn {
		prefixMax[i] = rr.idx
		if i > 0 && prefixMax[i-1] > rr.idx {
			prefixMax[i] = prefixMax[i-1]
		}
	}
	for j, rd := range reads {
		if readIndex[j] < 0 {
			continue
		}
		pos := sort.Search(len(byReturn), func(p int) bool { return !byReturn[p].ret.Before(rd.Invoked) })
		if pos > 0 && prefixMax[pos-1] > readIndex[j] {
			return true
		}
	}
	return false
}

// CheckLinearizable searches for a legal linearization of a (possibly
// multi-writer) register history: a total order of the operations that
// respects real-time precedence and in which every read returns the value of
// the latest preceding write (or ⊥ if there is none). Incomplete or failed
// writes are optional: they may be linearized at any point after their
// invocation or omitted entirely. Incomplete reads are ignored.
//
// The search is exponential in the worst case; histories checked this way in
// the experiments are small (tens of operations).
func CheckLinearizable(h history.History) (Report, error) {
	type op struct {
		history.Operation
		optional bool
	}

	var ops []op
	for _, o := range h {
		switch {
		case o.Kind == history.OpWrite && o.Completed && !o.Failed:
			ops = append(ops, op{Operation: o})
		case o.Kind == history.OpWrite:
			ops = append(ops, op{Operation: o, optional: true})
		case o.Kind == history.OpRead && o.Completed && !o.Failed:
			ops = append(ops, op{Operation: o})
		}
	}
	if len(ops) > 63 {
		return Report{}, fmt.Errorf("atomicity: linearizability check limited to 63 operations, got %d", len(ops))
	}

	// Distinct write values are required to identify reads with writes.
	seen := map[string]bool{}
	writesTotal, readsTotal := 0, 0
	for _, o := range ops {
		if o.Kind == history.OpWrite {
			writesTotal++
			if seen[string(o.Argument)] {
				return Report{}, fmt.Errorf("%w: %q", ErrDuplicateWrites, o.Argument)
			}
			seen[string(o.Argument)] = true
		} else {
			readsTotal++
		}
	}

	// precedes[i] is the set of operations that must be linearized before
	// operation i may be linearized (returned before i was invoked).
	n := len(ops)
	precedes := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && ops[j].Precedes(ops[i].Operation) {
				precedes[i] |= 1 << uint(j)
			}
		}
	}

	// requiredMask has a bit for every mandatory operation.
	var requiredMask uint64
	for i, o := range ops {
		if !o.optional {
			requiredMask |= 1 << uint(i)
		}
	}

	type state struct {
		done  uint64
		value string
	}
	visited := make(map[state]bool)

	var dfs func(done uint64, current string) bool
	dfs = func(done uint64, current string) bool {
		if done&requiredMask == requiredMask {
			return true
		}
		st := state{done: done, value: current}
		if visited[st] {
			return false
		}
		visited[st] = true

		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if done&bit != 0 {
				continue
			}
			if precedes[i]&^done != 0 {
				continue // some predecessor not linearized yet
			}
			o := ops[i]
			if o.Kind == history.OpRead {
				want := valueKey(o.Result, o.Result.IsBottom())
				if want != current {
					continue
				}
				if dfs(done|bit, current) {
					return true
				}
				continue
			}
			// Write: the register takes its value.
			if dfs(done|bit, valueKey(o.Argument, false)) {
				return true
			}
		}
		return false
	}

	report := Report{Reads: readsTotal, Writes: writesTotal}
	if dfs(0, "") {
		report.OK = true
		return report, nil
	}
	report.Violations = []Violation{{
		Condition: CondReadMonotone,
		Message:   "no linearization of the history exists",
	}}
	return report, nil
}

// MustBeAtomic is a test helper: it returns an error when the history is not
// atomic, formatting the violations.
func MustBeAtomic(h history.History) error {
	report, err := CheckSWMR(h)
	if err != nil {
		return err
	}
	if !report.OK {
		return fmt.Errorf("history is not atomic:\n%s\nhistory:\n%s", report, h)
	}
	return nil
}
