package atomicity

import (
	"errors"
	"strings"
	"testing"
	"time"

	"fastread/internal/history"
	"fastread/internal/types"
)

// historyBuilder constructs synthetic histories with explicit timing so that
// precedence is unambiguous.
type historyBuilder struct {
	ops  history.History
	now  time.Time
	next int64
}

func newBuilder() *historyBuilder {
	return &historyBuilder{now: time.Unix(0, 0)}
}

// at returns a time `ticks` milliseconds after the origin.
func (b *historyBuilder) at(ticks int) time.Time {
	return b.now.Add(time.Duration(ticks) * time.Millisecond)
}

func (b *historyBuilder) write(proc types.ProcessID, v string, invoke, ret int, completed bool) {
	b.next++
	op := history.Operation{
		ID:        b.next,
		Process:   proc,
		Kind:      history.OpWrite,
		Argument:  types.Value(v),
		Invoked:   b.at(invoke),
		Returned:  b.at(ret),
		Completed: completed,
	}
	b.ops = append(b.ops, op)
}

func (b *historyBuilder) read(proc types.ProcessID, result string, bottom bool, invoke, ret int) {
	b.next++
	op := history.Operation{
		ID:        b.next,
		Process:   proc,
		Kind:      history.OpRead,
		Invoked:   b.at(invoke),
		Returned:  b.at(ret),
		Completed: true,
	}
	if !bottom {
		op.Result = types.Value(result)
	}
	b.ops = append(b.ops, op)
}

func TestSequentialHistoryIsAtomic(t *testing.T) {
	b := newBuilder()
	b.write(types.Writer(), "v1", 0, 10, true)
	b.read(types.Reader(1), "v1", false, 20, 30)
	b.write(types.Writer(), "v2", 40, 50, true)
	b.read(types.Reader(2), "v2", false, 60, 70)

	report, err := CheckSWMR(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Errorf("sequential history flagged: %s", report)
	}
	if report.Reads != 2 || report.Writes != 2 {
		t.Errorf("counts = %d reads / %d writes", report.Reads, report.Writes)
	}
	if err := MustBeAtomic(b.ops); err != nil {
		t.Errorf("MustBeAtomic: %v", err)
	}
}

func TestInitialReadOfBottomIsAtomic(t *testing.T) {
	b := newBuilder()
	b.read(types.Reader(1), "", true, 0, 5)
	b.write(types.Writer(), "v1", 10, 20, true)
	report, err := CheckSWMR(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Errorf("⊥ before first write flagged: %s", report)
	}
}

func TestStaleReadViolatesCondition2(t *testing.T) {
	b := newBuilder()
	b.write(types.Writer(), "v1", 0, 10, true)
	b.write(types.Writer(), "v2", 20, 30, true)
	// Read invoked after write v2 completed, but returns v1.
	b.read(types.Reader(1), "v1", false, 40, 50)

	report, err := CheckSWMR(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK {
		t.Fatal("stale read not detected")
	}
	if report.Violations[0].Condition != CondReadAfterWrite {
		t.Errorf("condition = %d, want 2", report.Violations[0].Condition)
	}
	if MustBeAtomic(b.ops) == nil {
		t.Error("MustBeAtomic should fail")
	}
}

func TestUnknownValueViolatesCondition1(t *testing.T) {
	b := newBuilder()
	b.write(types.Writer(), "v1", 0, 10, true)
	b.read(types.Reader(1), "never-written", false, 20, 30)
	report, err := CheckSWMR(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK || report.Violations[0].Condition != CondValidValue {
		t.Errorf("report = %s", report)
	}
}

func TestFutureReadViolatesCondition3(t *testing.T) {
	b := newBuilder()
	// Read completes before the write of the value it returns is invoked.
	b.read(types.Reader(1), "v1", false, 0, 5)
	b.write(types.Writer(), "v1", 10, 20, true)
	report, err := CheckSWMR(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK {
		t.Fatal("future read not detected")
	}
	found := false
	for _, v := range report.Violations {
		if v.Condition == CondNoFutureRead {
			found = true
		}
	}
	if !found {
		t.Errorf("no condition-3 violation in %s", report)
	}
}

func TestNewOldInversionViolatesCondition4(t *testing.T) {
	// This is exactly the violation the lower-bound construction produces:
	// rd1 returns the new value, a later rd2 returns the old one.
	b := newBuilder()
	b.write(types.Writer(), "old", 0, 10, true)
	b.write(types.Writer(), "new", 20, 200, false) // incomplete write
	b.read(types.Reader(1), "new", false, 30, 40)
	b.read(types.Reader(2), "old", false, 50, 60)

	report, err := CheckSWMR(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK {
		t.Fatal("new/old inversion not detected")
	}
	if report.Violations[0].Condition != CondReadMonotone {
		t.Errorf("condition = %d, want 4", report.Violations[0].Condition)
	}

	// The same history is acceptable for a REGULAR register.
	regReport, err := CheckRegular(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if !regReport.OK {
		t.Errorf("regular check should accept a new/old inversion: %s", regReport)
	}
}

func TestConcurrentReadDuringWriteMayReturnEitherValue(t *testing.T) {
	for _, result := range []string{"v1", "v2"} {
		b := newBuilder()
		b.write(types.Writer(), "v1", 0, 10, true)
		b.write(types.Writer(), "v2", 20, 60, true)
		b.read(types.Reader(1), result, false, 30, 40) // concurrent with write v2
		report, err := CheckSWMR(b.ops)
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK {
			t.Errorf("concurrent read returning %s flagged: %s", result, report)
		}
	}
}

func TestDuplicateWritesRejected(t *testing.T) {
	b := newBuilder()
	b.write(types.Writer(), "same", 0, 10, true)
	b.write(types.Writer(), "same", 20, 30, true)
	if _, err := CheckSWMR(b.ops); !errors.Is(err, ErrDuplicateWrites) {
		t.Errorf("err = %v, want ErrDuplicateWrites", err)
	}
	if _, err := CheckLinearizable(b.ops); !errors.Is(err, ErrDuplicateWrites) {
		t.Errorf("linearizable err = %v, want ErrDuplicateWrites", err)
	}
}

func TestViolationAndReportStrings(t *testing.T) {
	v := Violation{Condition: CondReadMonotone, Message: "boom"}
	if !strings.Contains(v.String(), "condition 4") {
		t.Errorf("violation string = %q", v.String())
	}
	ok := Report{OK: true, Reads: 1, Writes: 1}
	if !strings.Contains(ok.String(), "atomic") {
		t.Errorf("ok report string = %q", ok.String())
	}
	bad := Report{Violations: []Violation{v}}
	if !strings.Contains(bad.String(), "NOT atomic") {
		t.Errorf("bad report string = %q", bad.String())
	}
}

func TestLinearizableSequentialMultiWriter(t *testing.T) {
	b := newBuilder()
	b.write(types.Reader(1), "w1-a", 0, 10, true) // writer modelled as client 1
	b.write(types.Reader(2), "w2-a", 20, 30, true)
	b.read(types.Reader(3), "w2-a", false, 40, 50)
	report, err := CheckLinearizable(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Errorf("sequential MW history flagged: %s", report)
	}
}

func TestLinearizableDetectsP2Violation(t *testing.T) {
	// Two reads after all writes completed return different values — the
	// property P2 violation from Proposition 11.
	b := newBuilder()
	b.write(types.Reader(1), "one", 0, 10, true)
	b.write(types.Reader(2), "two", 20, 30, true)
	b.read(types.Reader(3), "one", false, 40, 50)
	b.read(types.Reader(4), "two", false, 60, 70)

	report, err := CheckLinearizable(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK {
		t.Error("P2 violation not detected")
	}
}

func TestLinearizableConcurrentWritesEitherOrderOK(t *testing.T) {
	b := newBuilder()
	b.write(types.Reader(1), "a", 0, 100, true)
	b.write(types.Reader(2), "b", 10, 90, true)
	b.read(types.Reader(3), "a", false, 110, 120)
	report, err := CheckLinearizable(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Errorf("concurrent writes then read of either value should linearize: %s", report)
	}
}

func TestLinearizableIncompleteWriteOptional(t *testing.T) {
	// An incomplete write may be linearized (read sees it) or omitted
	// (read sees the previous value); both histories must pass.
	for _, result := range []string{"old", "maybe"} {
		b := newBuilder()
		b.write(types.Reader(1), "old", 0, 10, true)
		b.write(types.Reader(2), "maybe", 20, 500, false)
		b.read(types.Reader(3), result, false, 30, 40)
		report, err := CheckLinearizable(b.ops)
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK {
			t.Errorf("history with incomplete write returning %q flagged: %s", result, report)
		}
	}
}

func TestLinearizableReadOfBottom(t *testing.T) {
	b := newBuilder()
	b.read(types.Reader(1), "", true, 0, 10)
	b.write(types.Reader(2), "x", 20, 30, true)
	report, err := CheckLinearizable(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK {
		t.Errorf("⊥ read before any write flagged: %s", report)
	}

	// A ⊥ read AFTER a completed write is not linearizable.
	b2 := newBuilder()
	b2.write(types.Reader(2), "x", 0, 10, true)
	b2.read(types.Reader(1), "", true, 20, 30)
	report, err = CheckLinearizable(b2.ops)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK {
		t.Error("⊥ read after a completed write should not linearize")
	}
}

func TestLinearizableEmptyValueDistinctFromBottom(t *testing.T) {
	b := newBuilder()
	b.write(types.Reader(1), "", 0, 10, true) // writes the empty (non-⊥) value
	b.read(types.Reader(2), "", true, 20, 30) // returns ⊥
	report, err := CheckLinearizable(b.ops)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK {
		t.Error("⊥ after a completed write of the empty value should not linearize")
	}
}

func TestLinearizableTooManyOps(t *testing.T) {
	b := newBuilder()
	for i := 0; i < 70; i++ {
		b.read(types.Reader(1), "", true, i*10, i*10+5)
	}
	if _, err := CheckLinearizable(b.ops); err == nil {
		t.Error("oversized history should be rejected")
	}
}
