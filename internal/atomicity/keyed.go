package atomicity

import (
	"runtime"
	"sort"
	"sync"

	"fastread/internal/history"
)

// CheckFunc is the signature shared by the single-history checkers
// (CheckSWMR, CheckRegular, CheckLinearizable), so callers of CheckKeyed can
// select the condition set matching the protocol under test.
type CheckFunc func(history.History) (Report, error)

// KeyedReport aggregates per-key check results. Keys are independent
// registers, so a multi-key history is atomic iff every per-key projection
// is.
type KeyedReport struct {
	// OK is true when every key's history passed.
	OK bool
	// Reports holds the per-key outcome.
	Reports map[string]Report
	// Reads and Writes total the operations examined across all keys.
	Reads  int
	Writes int
}

// FailedKeys returns the keys whose histories violated the checked
// conditions, sorted for deterministic output.
func (kr KeyedReport) FailedKeys() []string {
	var out []string
	for k, r := range kr.Reports {
		if !r.OK {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// CheckKeyed checks one history per key with the given checker, fanning keys
// across parallelism goroutines (zero or negative means GOMAXPROCS). Keys
// name independent registers, so their checks share nothing and shard
// trivially; this is the path the simulation explorer uses to keep history
// checking off the critical path of a seed sweep. The result is identical to
// looping over the keys serially; if any key's checker returns an error
// (e.g. ErrDuplicateWrites), CheckKeyed reports the error for the smallest
// such key.
func CheckKeyed(histories map[string]history.History, check CheckFunc, parallelism int) (KeyedReport, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	keys := make([]string, 0, len(histories))
	for k := range histories {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if parallelism > len(keys) {
		parallelism = len(keys)
	}

	out := KeyedReport{OK: true, Reports: make(map[string]Report, len(keys))}
	if len(keys) == 0 {
		return out, nil
	}

	reports := make([]Report, len(keys))
	errs := make([]error, len(keys))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(keys) {
					return
				}
				reports[i], errs[i] = check(histories[keys[i]])
			}
		}()
	}
	wg.Wait()

	for i, k := range keys {
		if errs[i] != nil {
			return KeyedReport{}, errs[i]
		}
		r := reports[i]
		out.Reports[k] = r
		out.Reads += r.Reads
		out.Writes += r.Writes
		if !r.OK {
			out.OK = false
		}
	}
	return out, nil
}
