package quorum

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"ok crash", Config{Servers: 4, Faulty: 1, Readers: 1}, false},
		{"ok byz", Config{Servers: 10, Faulty: 2, Malicious: 1, Readers: 1}, false},
		{"no servers", Config{Servers: 0, Faulty: 0}, true},
		{"negative t", Config{Servers: 3, Faulty: -1}, true},
		{"t > S", Config{Servers: 3, Faulty: 4}, true},
		{"negative b", Config{Servers: 3, Faulty: 1, Malicious: -1}, true},
		{"b > t", Config{Servers: 9, Faulty: 1, Malicious: 2}, true},
		{"negative R", Config{Servers: 3, Faulty: 1, Readers: -1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate(%v) error = %v, wantErr %v", tt.cfg, err, tt.wantErr)
			}
		})
	}
}

func TestAckQuorumAndMajority(t *testing.T) {
	c := Config{Servers: 7, Faulty: 2, Readers: 1}
	if got := c.AckQuorum(); got != 5 {
		t.Errorf("AckQuorum = %d, want 5", got)
	}
	if got := c.Majority(); got != 4 {
		t.Errorf("Majority = %d, want 4", got)
	}
	even := Config{Servers: 8, Faulty: 3}
	if got := even.Majority(); got != 5 {
		t.Errorf("Majority(8) = %d, want 5", got)
	}
}

func TestFastReadPossibleCrashExamples(t *testing.T) {
	tests := []struct {
		s, t, r int
		want    bool
	}{
		// The paper's running intuition: with t < S/2 and two readers fast
		// reads already fail for small S.
		{4, 1, 1, true},   // S > (R+2)t ⇔ 4 > 3
		{4, 1, 2, false},  // 4 > 4 is false
		{7, 2, 1, true},   // 7 > 6
		{7, 2, 2, false},  // 7 > 8 false
		{10, 3, 1, true},  // 10 > 9
		{10, 3, 2, false}, // 10 > 12 false
		{31, 1, 28, true}, // 31 > 30
		{31, 1, 29, false},
		{3, 1, 0, true},  // writer-only deployments: 3 > 2
		{2, 1, 0, false}, // 2 > 2 false
	}
	for _, tt := range tests {
		c := Config{Servers: tt.s, Faulty: tt.t, Readers: tt.r}
		if got := c.FastReadPossible(); got != tt.want {
			t.Errorf("FastReadPossible(%v) = %v, want %v", c, got, tt.want)
		}
	}
}

func TestFastReadPossibleByzantineExamples(t *testing.T) {
	tests := []struct {
		s, t, b, r int
		want       bool
	}{
		{8, 1, 1, 1, true},  // S > (R+2)t+(R+1)b = 3+2 = 5
		{8, 1, 1, 2, false}, // 4+3 = 7 < 8 -> true? 8 > 7 is true
		{7, 1, 1, 1, true},  // 7 > 5
		{5, 1, 1, 1, false}, // 5 > 5 false
		{6, 1, 1, 1, true},  // 6 > 5
		{13, 2, 2, 1, true}, // 13 > 6+4=10
		{10, 2, 2, 1, false},
	}
	// Fix the expectation for the second row computed inline above.
	tests[1].want = true
	for _, tt := range tests {
		c := Config{Servers: tt.s, Faulty: tt.t, Malicious: tt.b, Readers: tt.r}
		if got := c.FastReadPossible(); got != tt.want {
			t.Errorf("FastReadPossible(%v) = %v, want %v", c, got, tt.want)
		}
	}
}

func TestFastReadPossibleNoFailures(t *testing.T) {
	c := Config{Servers: 3, Faulty: 0, Readers: 100}
	if !c.FastReadPossible() {
		t.Error("with t=0 fast reads should always be possible")
	}
}

func TestMaxFastReadersMatchesDefinition(t *testing.T) {
	// Brute-force cross-check: MaxFastReaders must be the largest R with
	// FastReadPossible true, and R+1 must not be fast.
	for s := 1; s <= 40; s++ {
		for tt := 1; tt <= s; tt++ {
			for b := 0; b <= tt; b++ {
				maxR := MaxFastReaders(s, tt, b)
				if maxR == -1 {
					c := Config{Servers: s, Faulty: tt, Malicious: b, Readers: 0}
					if c.FastReadPossible() {
						t.Fatalf("S=%d t=%d b=%d: MaxFastReaders=-1 but R=0 is fast", s, tt, b)
					}
					continue
				}
				cOK := Config{Servers: s, Faulty: tt, Malicious: b, Readers: maxR}
				if !cOK.FastReadPossible() {
					t.Fatalf("S=%d t=%d b=%d: R=%d reported max but not fast", s, tt, b, maxR)
				}
				cBad := cOK
				cBad.Readers = maxR + 1
				if cBad.FastReadPossible() {
					t.Fatalf("S=%d t=%d b=%d: R=%d fast although max is %d", s, tt, b, maxR+1, maxR)
				}
			}
		}
	}
}

func TestMaxFastReadersSpecialCases(t *testing.T) {
	if got := MaxFastReaders(5, 0, 0); got <= 1<<30 {
		t.Errorf("t=b=0 should allow unbounded readers, got %d", got)
	}
	if got := MaxFastReaders(0, 0, 0); got != -1 {
		t.Errorf("invalid config should return -1, got %d", got)
	}
	if got := MaxFastReaders(2, 1, 0); got != -1 {
		t.Errorf("S=2,t=1 cannot even support R=0 fast, got %d", got)
	}
	// Paper example shape: S=4, t=1 supports exactly one fast reader.
	if got := MaxFastReaders(4, 1, 0); got != 1 {
		t.Errorf("MaxFastReaders(4,1,0) = %d, want 1", got)
	}
}

func TestMinServersForFastInvertsMaxReaders(t *testing.T) {
	for r := 0; r <= 10; r++ {
		for tt := 1; tt <= 4; tt++ {
			for b := 0; b <= tt; b++ {
				s := MinServersForFast(r, tt, b)
				c := Config{Servers: s, Faulty: tt, Malicious: b, Readers: r}
				if !c.FastReadPossible() {
					t.Errorf("MinServersForFast(%d,%d,%d)=%d is not sufficient", r, tt, b, s)
				}
				cLess := c
				cLess.Servers--
				if cLess.Validate() == nil && cLess.FastReadPossible() {
					t.Errorf("S=%d already fast for R=%d t=%d b=%d; MinServers not minimal", s-1, r, tt, b)
				}
			}
		}
	}
}

func TestFastRegularPossible(t *testing.T) {
	tests := []struct {
		s, t, b int
		want    bool
	}{
		{3, 1, 0, true},
		{2, 1, 0, false},
		{5, 2, 0, true},
		{4, 2, 0, false},
		{4, 1, 1, true},
		{3, 1, 1, false},
	}
	for _, tt := range tests {
		c := Config{Servers: tt.s, Faulty: tt.t, Malicious: tt.b, Readers: 100}
		if got := c.FastRegularPossible(); got != tt.want {
			t.Errorf("FastRegularPossible(%v) = %v, want %v", c, got, tt.want)
		}
	}
}

func TestPredicateThreshold(t *testing.T) {
	crash := Config{Servers: 10, Faulty: 2, Readers: 2}
	if got := crash.PredicateThreshold(1); got != 8 {
		t.Errorf("crash a=1 threshold = %d, want 8", got)
	}
	if got := crash.PredicateThreshold(3); got != 4 {
		t.Errorf("crash a=3 threshold = %d, want 4", got)
	}
	byz := Config{Servers: 13, Faulty: 2, Malicious: 1, Readers: 1}
	if got := byz.PredicateThreshold(1); got != 11 {
		t.Errorf("byz a=1 threshold = %d, want 11 (S - t)", got)
	}
	if got := byz.PredicateThreshold(2); got != 8 {
		t.Errorf("byz a=2 threshold = %d, want 8 (S - 2t - b)", got)
	}
	if got := crash.MaxPredicateLevel(); got != 3 {
		t.Errorf("MaxPredicateLevel = %d, want R+1 = 3", got)
	}
}

func TestReadersWithinBound(t *testing.T) {
	c := Config{Servers: 10, Faulty: 2, Readers: 5}
	clamped, wasClamped := c.ReadersWithinBound()
	if !wasClamped {
		t.Error("expected clamping for R=5, S=10, t=2")
	}
	if clamped.Readers != MaxFastReaders(10, 2, 0) {
		t.Errorf("clamped to %d, want %d", clamped.Readers, MaxFastReaders(10, 2, 0))
	}
	ok := Config{Servers: 10, Faulty: 2, Readers: 1}
	if _, was := ok.ReadersWithinBound(); was {
		t.Error("unexpected clamping for a valid configuration")
	}
}

// Property: the crash-model condition S > (R+2)t is exactly equivalent to the
// paper's R < S/t − 2 formulation (over the rationals).
func TestCrashBoundEquivalentFormulations(t *testing.T) {
	f := func(s8, t8, r8 uint8) bool {
		s := int(s8%60) + 1
		tt := int(t8%uint8(s)) + 1
		if tt > s {
			tt = s
		}
		r := int(r8 % 40)
		c := Config{Servers: s, Faulty: tt, Readers: r}
		lhs := c.FastReadPossible()
		rhs := float64(r) < float64(s)/float64(tt)-2
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: the Byzantine condition S > (R+2)t+(R+1)b is equivalent to the
// paper's R < (S+b)/(t+b) − 2 formulation.
func TestByzantineBoundEquivalentFormulations(t *testing.T) {
	f := func(s8, t8, b8, r8 uint8) bool {
		s := int(s8%80) + 1
		tt := int(t8%uint8(s)) + 1
		if tt > s {
			tt = s
		}
		b := int(b8) % (tt + 1)
		r := int(r8 % 40)
		c := Config{Servers: s, Faulty: tt, Malicious: b, Readers: r}
		lhs := c.FastReadPossible()
		rhs := float64(r) < float64(s+b)/float64(tt+b)-2
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
