// Package quorum collects the closed-form resilience arithmetic of the paper:
// when fast reads are possible, how many readers a deployment can support,
// the sizes of the quorums each protocol waits for, and the thresholds used
// by the fast-read predicate.
//
// Crash model (Sections 4-5): a fast SWMR atomic register exists iff
// R < S/t − 2, equivalently S > (R+2)·t.
//
// Arbitrary failure model (Section 6): with b ≤ t malicious servers, a fast
// implementation exists iff R < (S+b)/(t+b) − 2, equivalently
// S > (R+2)·t + (R+1)·b.
//
// Regular registers (Section 8): a fast SWMR regular register exists iff
// t < S/2, for any finite number of readers.
package quorum

import (
	"errors"
	"fmt"
)

// Config describes a deployment: S servers, up to t crash failures of which
// up to b may be malicious, and R readers.
type Config struct {
	Servers   int // S
	Faulty    int // t
	Malicious int // b (0 in the crash model)
	Readers   int // R
}

// Errors returned by Validate.
var (
	// ErrInvalidConfig indicates a structurally impossible configuration.
	ErrInvalidConfig = errors.New("quorum: invalid configuration")
)

// Validate checks the structural constraints of the model: at least one
// server, 0 ≤ b ≤ t ≤ S, at least one reader.
func (c Config) Validate() error {
	switch {
	case c.Servers < 1:
		return fmt.Errorf("%w: need at least one server, got %d", ErrInvalidConfig, c.Servers)
	case c.Faulty < 0:
		return fmt.Errorf("%w: negative t=%d", ErrInvalidConfig, c.Faulty)
	case c.Faulty > c.Servers:
		return fmt.Errorf("%w: t=%d exceeds S=%d", ErrInvalidConfig, c.Faulty, c.Servers)
	case c.Malicious < 0:
		return fmt.Errorf("%w: negative b=%d", ErrInvalidConfig, c.Malicious)
	case c.Malicious > c.Faulty:
		return fmt.Errorf("%w: b=%d exceeds t=%d", ErrInvalidConfig, c.Malicious, c.Faulty)
	case c.Readers < 0:
		return fmt.Errorf("%w: negative R=%d", ErrInvalidConfig, c.Readers)
	}
	return nil
}

// String renders the configuration compactly.
func (c Config) String() string {
	return fmt.Sprintf("S=%d t=%d b=%d R=%d", c.Servers, c.Faulty, c.Malicious, c.Readers)
}

// AckQuorum is the number of server replies a client waits for before
// completing an operation: S − t. Waiting for more could block forever when t
// servers have crashed (termination, Section 3.2).
func (c Config) AckQuorum() int { return c.Servers - c.Faulty }

// Majority is the size of a strict majority of servers, ⌊S/2⌋ + 1, the quorum
// used by the ABD baseline and the regular-register implementation.
func (c Config) Majority() int { return c.Servers/2 + 1 }

// FastReadPossible reports whether a fast implementation of a SWMR atomic
// register exists for this configuration: S > (R+2)·t + (R+1)·b. With b = 0
// this is exactly the crash-model condition R < S/t − 2 (for t ≥ 1).
func (c Config) FastReadPossible() bool {
	if c.Validate() != nil {
		return false
	}
	if c.Faulty == 0 && c.Malicious == 0 {
		// With no failures every algorithm can be made fast; the paper's
		// bound assumes t ≥ 1.
		return true
	}
	return c.Servers > (c.Readers+2)*c.Faulty+(c.Readers+1)*c.Malicious
}

// MaxFastReaders returns the largest number of readers R for which a fast
// implementation exists with S servers, t crash failures and b malicious
// failures; it returns -1 when the configuration is invalid and a very large
// number when t = b = 0 (any number of readers).
func MaxFastReaders(servers, faulty, malicious int) int {
	c := Config{Servers: servers, Faulty: faulty, Malicious: malicious}
	if c.Validate() != nil {
		return -1
	}
	if faulty == 0 && malicious == 0 {
		return int(^uint(0) >> 1) // unbounded
	}
	// Largest R with S > (R+2)t + (R+1)b  ⇔  R < (S - 2t - b) / (t + b).
	num := servers - 2*faulty - malicious
	den := faulty + malicious
	if num <= 0 {
		return -1 // not even one reader can be fast... R must be ≥ 0; see below
	}
	r := (num - 1) / den // strict inequality
	if (r+2)*faulty+(r+1)*malicious >= servers {
		r--
	}
	if r < 0 {
		return -1
	}
	return r
}

// MinServersForFast returns the smallest S for which a fast implementation
// exists with R readers, t crash failures and b malicious failures.
func MinServersForFast(readers, faulty, malicious int) int {
	return (readers+2)*faulty + (readers+1)*malicious + 1
}

// FastRegularPossible reports whether a fast SWMR *regular* register exists:
// t < S/2 in the crash model (Section 8), and — using the standard Byzantine
// quorum condition — S > 2t + b when b of the faulty servers may be
// malicious.
func (c Config) FastRegularPossible() bool {
	if c.Validate() != nil {
		return false
	}
	return c.Servers > 2*c.Faulty+c.Malicious
}

// PredicateThreshold returns the minimum number of maxTS messages required by
// the fast-read predicate for a given "a": S − a·t in the crash model and
// S − a·t − (a−1)·b in the arbitrary failure model (Figure 5 line 19).
func (c Config) PredicateThreshold(a int) int {
	return c.Servers - a*c.Faulty - (a-1)*c.Malicious
}

// MaxPredicateLevel is the largest meaningful "a" in the fast-read predicate:
// R + 1 (the writer plus all readers).
func (c Config) MaxPredicateLevel() int { return c.Readers + 1 }

// ReadersWithinBound clamps the configuration's reader count to the maximum
// supported by fast reads, returning the clamped configuration and whether
// clamping occurred. Used by the façade to fail fast on misconfiguration.
func (c Config) ReadersWithinBound() (Config, bool) {
	maxR := MaxFastReaders(c.Servers, c.Faulty, c.Malicious)
	if maxR < 0 {
		out := c
		out.Readers = 0
		return out, c.Readers > 0
	}
	if c.Readers <= maxR {
		return c, false
	}
	out := c
	out.Readers = maxR
	return out, true
}
