package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Job is one (scenario, seed) cell of a sweep.
type Job struct {
	// Template is the generating template's name ("" for ad-hoc scenarios).
	Template string
	// Scenario is the concrete scenario (already generated for Seed).
	Scenario Scenario
	// Seed seeds the run.
	Seed int64
}

// Jobs expands templates × seeds into the sweep's job list: seeds
// seedBase, seedBase+1, … for every template, each generating its own
// fault schedule from its seed.
func Jobs(templates []Template, seeds int, seedBase int64) []Job {
	out := make([]Job, 0, len(templates)*seeds)
	for _, t := range templates {
		for s := 0; s < seeds; s++ {
			seed := seedBase + int64(s)
			out = append(out, Job{Template: t.Name, Scenario: t.Gen(seed), Seed: seed})
		}
	}
	return out
}

// SweepOptions tunes a sweep.
type SweepOptions struct {
	// Parallel is the number of worker goroutines; ≤0 means GOMAXPROCS.
	// Runs themselves are single-threaded event loops, so workers scale
	// near-linearly with cores.
	Parallel int
	// MaxFailures stops claiming new jobs once this many failures were
	// found; 0 means run everything regardless.
	MaxFailures int
	// Progress, when non-nil, is called after every finished run with the
	// counts so far. It may be called concurrently.
	Progress func(done, total, failures int)
}

// SweepResult aggregates a sweep.
type SweepResult struct {
	// Jobs is how many cells ran (may be fewer than requested when
	// MaxFailures stopped the sweep early).
	Jobs int
	// Ops and CheckedKeys total the work verified across all runs.
	Ops, CheckedKeys int
	// Failures holds every failed run, in job order.
	Failures []*Result
	// Wall is the sweep's real duration.
	Wall time.Duration
}

// Sweep runs every job across a worker pool and checks every history. The
// result list is aggregated in deterministic job order regardless of which
// worker ran what.
func Sweep(jobs []Job, opts SweepOptions) SweepResult {
	start := time.Now()
	workers := opts.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	results := make([]*Result, len(jobs))
	var next, done, failures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if opts.MaxFailures > 0 && failures.Load() >= int64(opts.MaxFailures) {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				res := Run(jobs[i].Scenario, jobs[i].Seed)
				results[i] = res
				if res.Failed() {
					failures.Add(1)
				}
				d := int(done.Add(1))
				if opts.Progress != nil {
					opts.Progress(d, len(jobs), int(failures.Load()))
				}
			}
		}()
	}
	wg.Wait()

	out := SweepResult{Wall: time.Since(start)}
	for _, res := range results {
		if res == nil {
			continue // unclaimed after an early stop
		}
		out.Jobs++
		out.Ops += res.Ops
		out.CheckedKeys += len(res.Check.Reports)
		if res.Failed() {
			out.Failures = append(out.Failures, res)
		}
	}
	return out
}
