package sim

import (
	"fmt"
	"reflect"
	"time"
)

// ShrinkResult is a minimized failing run.
type ShrinkResult struct {
	// Original and Minimal are the scenario before and after shrinking; the
	// seed is unchanged (it is part of the reproducer, not a variable).
	Original, Minimal Scenario
	Seed              int64
	// Runs is how many simulation runs the shrinker spent.
	Runs int
	// Final is the minimal scenario's (still failing) result.
	Final *Result
}

// ReplayCommand renders the one-line command that reproduces the minimal
// failure.
func (s ShrinkResult) ReplayCommand() string { return ReplayCommand(s.Minimal, s.Seed) }

// ReplayCommand renders the simexplore invocation that reruns exactly this
// (scenario, seed) pair: by template name when the scenario is an
// unmodified template expansion, as inline JSON otherwise (shrunken
// scenarios always are).
func ReplayCommand(sc Scenario, seed int64) string {
	if t, ok := TemplateByName(sc.Name); ok && reflect.DeepEqual(t.Gen(seed).WithDefaults(), sc.WithDefaults()) {
		return fmt.Sprintf("go run ./cmd/simexplore -scenario %s -seed %d", sc.Name, seed)
	}
	return fmt.Sprintf("go run ./cmd/simexplore -seed %d -scenario-json '%s'", seed, sc.MarshalJSONCompact())
}

// Shrink reduces a failing (scenario, seed) pair to a smaller scenario that
// still fails, spending at most budget simulation runs (≤0 means 64). The
// reduction is greedy and deterministic: ddmin over the fault script first
// (usually the bulk of a scenario's accidental complexity), then duration
// halving, then key, reader and depth reduction. Every candidate is
// re-verified by an actual run — the shrinker never assumes, it replays.
func Shrink(sc Scenario, seed int64, budget int) ShrinkResult {
	sc = sc.WithDefaults()
	if budget <= 0 {
		budget = 64
	}
	out := ShrinkResult{Original: sc, Minimal: sc, Seed: seed}

	fails := func(cand Scenario) bool {
		if out.Runs >= budget {
			return false // out of budget: treat as "didn't reproduce"
		}
		out.Runs++
		res := Run(cand, seed)
		if res.Failed() {
			out.Final = res
			return true
		}
		return false
	}

	// Confirm the starting point actually fails (and capture its result).
	if !fails(sc) {
		out.Final = nil
		return out
	}
	cur := sc

	// Quick win: does the failure need the fault script at all? (A broken
	// protocol — the canary — fails on a quiet network too.)
	if len(cur.Faults) > 0 {
		cand := cur
		cand.Faults = nil
		if fails(cand) {
			cur = cand
		} else {
			cur.Faults = ddminFaults(cur, fails)
		}
	}

	// Duration halving: shorter runs shrink the history a human must read.
	// Never cut below the last remaining fault (plus slack for its effect).
	floor := 100 * time.Millisecond
	for _, f := range cur.Faults {
		if f.At+200*time.Millisecond > floor {
			floor = f.At + 200*time.Millisecond
		}
	}
	for cur.Duration/2 >= floor {
		cand := cur
		cand.Duration = cur.Duration / 2
		if !fails(cand) {
			break
		}
		cur = cand
	}

	// Structural reduction: fewer keys, fewer readers, shallower pipelines.
	if cur.Keys > 1 {
		cand := cur
		cand.Keys = 1
		if !faultsNeedKeys(cand) && fails(cand) {
			cur = cand
		}
	}
	for cur.Readers > 1 {
		cand := cur
		cand.Readers = cur.Readers - 1
		if faultsNeedReader(cand, cur.Readers) || !fails(cand) {
			break
		}
		cur = cand
	}
	if cur.Depth > 1 {
		cand := cur
		cand.Depth = 1
		if fails(cand) {
			cur = cand
		}
	}

	out.Minimal = cur
	return out
}

// ddminFaults is Zeller's ddmin over the fault script: try dropping chunks
// (complements) of the event list, refining the granularity until no single
// event can be removed.
func ddminFaults(sc Scenario, fails func(Scenario) bool) []FaultEvent {
	faults := sc.Faults
	n := 2
	for len(faults) >= 2 && n <= len(faults) {
		chunk := (len(faults) + n - 1) / n
		reduced := false
		for i := 0; i < n && i*chunk < len(faults); i++ {
			complement := make([]FaultEvent, 0, len(faults)-chunk)
			complement = append(complement, faults[:i*chunk]...)
			if end := (i + 1) * chunk; end < len(faults) {
				complement = append(complement, faults[end:]...)
			}
			cand := sc
			cand.Faults = complement
			if fails(cand) {
				faults = complement
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(faults) {
				break
			}
			n = min(2*n, len(faults))
		}
	}
	return faults
}

// faultsNeedKeys reports whether the script names a key a reduced keyspace
// no longer has.
func faultsNeedKeys(sc Scenario) bool {
	for _, f := range sc.Faults {
		if f.Key != "" && f.Key != KeyName(0) {
			return true
		}
	}
	return false
}

// faultsNeedReader reports whether the script targets reader index ri.
func faultsNeedReader(sc Scenario, ri int) bool {
	for _, f := range sc.Faults {
		if f.Reader == ri {
			return true
		}
	}
	return false
}
