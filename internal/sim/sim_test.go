package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestScenarioJSONRoundTrip verifies every template's expansion survives the
// replay serialization unchanged — the shrinker's replay commands depend on
// ParseScenario(MarshalJSONCompact(sc)) == sc.
func TestScenarioJSONRoundTrip(t *testing.T) {
	names := append(TemplateNames(),
		"restart-storm-long", "buggy-canary",
		"fixture-demux-burst-backlog", "fixture-delayed-reordering", "fixture-restarted-incarnation")
	for _, name := range names {
		tpl, ok := TemplateByName(name)
		if !ok {
			t.Fatalf("TemplateByName(%q) not found", name)
		}
		sc := tpl.Gen(3)
		parsed, err := ParseScenario([]byte(sc.MarshalJSONCompact()))
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if !reflect.DeepEqual(parsed, sc) {
			t.Errorf("%s: JSON round-trip changed the scenario:\n got %+v\nwant %+v", name, parsed, sc)
		}
	}
}

func TestTemplateByNameUnknown(t *testing.T) {
	if _, ok := TemplateByName("no-such-template"); ok {
		t.Fatal("TemplateByName accepted an unknown name")
	}
}

// TestRunDeterministic is the core reproducibility claim: same scenario and
// seed → byte-identical history fingerprint; a different seed explores a
// genuinely different schedule.
func TestRunDeterministic(t *testing.T) {
	tpl, _ := TemplateByName("restart-storm")
	a := Run(tpl.Gen(5), 5)
	b := Run(tpl.Gen(5), 5)
	if a.Failed() {
		t.Fatalf("restart-storm seed 5 failed: %s", a.FailureSummary())
	}
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("same seed, different fingerprints:\n %s\n %s", fa, fb)
	}
	c := Run(tpl.Gen(6), 6)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds produced identical histories — the seed is not reaching the schedule")
	}
}

// TestRestartStormLongAcceptance runs the 60-second restart storm: it must
// pass, simulate the full minute, run far faster than real time, and
// reproduce exactly.
func TestRestartStormLongAcceptance(t *testing.T) {
	tpl, ok := TemplateByName("restart-storm-long")
	if !ok {
		t.Fatal("restart-storm-long template missing")
	}
	a := Run(tpl.Gen(42), 42)
	if a.Failed() {
		t.Fatalf("restart-storm-long seed 42 failed: %s", a.FailureSummary())
	}
	if a.SimTime < 60*time.Second {
		t.Fatalf("simulated only %v, want ≥ 60s", a.SimTime)
	}
	if a.Wall*10 > a.SimTime {
		t.Fatalf("wall %v for sim %v — virtual time is not outrunning real time", a.Wall, a.SimTime)
	}
	if a.RestartAborts == 0 {
		t.Fatal("a 60s restart storm aborted no in-flight operations — the faults are not firing")
	}
	b := Run(tpl.Gen(42), 42)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("restart-storm-long is not reproducible at seed 42")
	}
}

// TestFixturesPass pins the three regression scenarios at their pinned seed.
func TestFixturesPass(t *testing.T) {
	for _, sc := range Fixtures() {
		res := Run(sc, FixtureSeed)
		if res.Failed() {
			t.Errorf("%s failed at the pinned seed: %s", sc.Name, res.FailureSummary())
		}
	}
}

// TestFrozenNonceFixtureFails proves the restarted-incarnation fixture still
// has teeth: reintroducing the frozen nonce source must starve restarted
// readers into timeouts.
func TestFrozenNonceFixtureFails(t *testing.T) {
	res := Run(RestartedIncarnationFrozen(), FixtureSeed)
	if !res.Failed() {
		t.Fatal("frozen-nonce variant passed — the stale-request guard or the fixture has gone soft")
	}
	if res.TimedOut == 0 {
		t.Fatalf("expected starvation timeouts, got: %s", res.FailureSummary())
	}
}

// TestCanaryCaughtAndShrunk drives the whole detection pipeline against the
// deliberately-buggy protocol: the violation must be found, the scenario
// must shrink, and the shrunken reproducer must still fail after a JSON
// round trip (exactly what the replay command does).
func TestCanaryCaughtAndShrunk(t *testing.T) {
	sc := CanaryScenario()
	res := Run(sc, 1)
	if !res.Failed() {
		t.Fatal("canary not caught: the buggy protocol produced no violation")
	}
	if res.Check.OK {
		t.Fatalf("canary failed for the wrong reason: %s", res.FailureSummary())
	}

	sr := Shrink(sc, 1, 64)
	if sr.Final == nil {
		t.Fatalf("shrinking lost the failure after %d runs", sr.Runs)
	}
	if len(sr.Minimal.Faults) >= len(sr.Original.Faults) {
		t.Errorf("shrinker kept all %d benign faults", len(sr.Original.Faults))
	}
	if cmd := sr.ReplayCommand(); !strings.Contains(cmd, "simexplore") {
		t.Errorf("replay command looks wrong: %q", cmd)
	}

	replayed, err := ParseScenario([]byte(sr.Minimal.MarshalJSONCompact()))
	if err != nil {
		t.Fatalf("minimal scenario does not serialize: %v", err)
	}
	if rr := Run(replayed, sr.Seed); !rr.Failed() {
		t.Fatal("minimal scenario no longer fails after a JSON round trip")
	}
}

// TestSweepSmoke sweeps every default template across a few seeds: all
// clean, totals populated, results in deterministic job order.
func TestSweepSmoke(t *testing.T) {
	jobs := Jobs(Templates(), 2, 1)
	res := Sweep(jobs, SweepOptions{})
	if res.Jobs != len(jobs) {
		t.Fatalf("ran %d of %d jobs", res.Jobs, len(jobs))
	}
	for _, f := range res.Failures {
		t.Errorf("%s seed=%d: %s", f.Scenario.Name, f.Seed, f.FailureSummary())
	}
	if res.Ops == 0 || res.CheckedKeys == 0 {
		t.Fatalf("sweep totals empty: %d ops, %d checked keys", res.Ops, res.CheckedKeys)
	}
}

// TestReplayCommandForms checks both renderings: template form for pristine
// expansions, inline JSON for anything modified.
func TestReplayCommandForms(t *testing.T) {
	tpl, _ := TemplateByName("restart-storm")
	if cmd := ReplayCommand(tpl.Gen(9), 9); !strings.Contains(cmd, "-scenario restart-storm -seed 9") {
		t.Errorf("pristine template should replay by name, got %q", cmd)
	}
	mod := tpl.Gen(9)
	mod.Depth = 1
	if cmd := ReplayCommand(mod, 9); !strings.Contains(cmd, "-scenario-json") {
		t.Errorf("modified scenario should replay as JSON, got %q", cmd)
	}
}
