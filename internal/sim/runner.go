package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"fastread"
	"fastread/internal/atomicity"
	"fastread/internal/history"
	"fastread/internal/transport"
	"fastread/internal/types"
)

// stepStallWait is the WALL-clock watchdog handed to VirtualClock.Step: how
// long real activity (goroutines processing the current event) may take
// before the run is declared stalled. It is generous because sweep workers
// share the machine; it never extends virtual time.
var stepStallWait = 30 * time.Second

// Result is one simulation run's complete outcome.
type Result struct {
	// Scenario and Seed identify the run; together they determine it.
	Scenario Scenario
	Seed     int64
	// SimTime is how much virtual time elapsed; Wall how much real time.
	SimTime time.Duration
	Wall    time.Duration
	// Ops counts submitted operations; Completed the ones that resolved with
	// a result, FailedOps the ones that resolved with an error, TimedOut the
	// ones aborted by their virtual-time deadline, RestartAborts the ones
	// deliberately killed with a restarting reader incarnation, EndAborts
	// the ones still unresolved when the event queue drained (should be 0 —
	// every operation has a timeout event), SubmitSkips the submissions
	// skipped because their handle was at pipeline depth.
	Ops, Completed, FailedOps, TimedOut, RestartAborts, EndAborts, SubmitSkips int
	// MailboxHighWater is the network's deepest inbound queue over the run.
	MailboxHighWater int
	// Histories holds the per-key recorded histories.
	Histories map[string]history.History
	// Check is the per-key correctness verdict over Histories.
	Check atomicity.KeyedReport
	// RunErr is a harness-level failure (deployment error, clock stall,
	// checker error) as opposed to a history violation.
	RunErr error
}

// Failed reports whether the run found anything wrong: a harness error, a
// history violation, or — for scenarios that promise liveness — operations
// that could not complete.
func (r *Result) Failed() bool {
	if r.RunErr != nil || !r.Check.OK {
		return true
	}
	if r.Scenario.ExpectAllComplete && (r.TimedOut > 0 || r.EndAborts > 0 || r.FailedOps > 0) {
		return true
	}
	return false
}

// FailureSummary renders a one-line explanation of a failed run.
func (r *Result) FailureSummary() string {
	switch {
	case r.RunErr != nil:
		return fmt.Sprintf("harness error: %v", r.RunErr)
	case !r.Check.OK:
		var parts []string
		for _, key := range r.Check.FailedKeys() {
			rep := r.Check.Reports[key]
			v := rep.Violations[0]
			parts = append(parts, fmt.Sprintf("%s: %s (%d violations)", key, v.Message, len(rep.Violations)))
		}
		return "history violation: " + strings.Join(parts, "; ")
	case r.TimedOut > 0 || r.EndAborts > 0 || r.FailedOps > 0:
		return fmt.Sprintf("liveness: %d timed out, %d failed, %d unresolved (of %d ops)",
			r.TimedOut, r.FailedOps, r.EndAborts, r.Ops)
	default:
		return "ok"
	}
}

// Fingerprint hashes the run's complete recorded behaviour — every
// operation of every key with its virtual-time bounds — so determinism is
// checkable by equality: same scenario + same seed must reproduce the same
// fingerprint, byte for byte.
func (r *Result) Fingerprint() string {
	h := sha256.New()
	keys := make([]string, 0, len(r.Histories))
	for k := range r.Histories {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, op := range r.Histories[k] {
			fmt.Fprintf(h, "%s|%d|%s|%s|%q|%q|%d|%d|%d|%t|%t\n",
				k, op.ID, op.Process, op.Kind, op.Argument, op.Result, op.ResultTS,
				op.Invoked.Sub(transport.VirtualEpoch), op.Returned.Sub(transport.VirtualEpoch),
				op.Completed, op.Failed)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// byzantineNames maps the scenario DSL's behaviour names to the public
// enum.
var byzantineNames = map[string]fastread.ByzantineBehavior{
	"forge-timestamp": fastread.ByzantineForgeTimestamp,
	"stale-replay":    fastread.ByzantineStaleReplay,
	"memory-loss":     fastread.ByzantineMemoryLoss,
	"inflate-seen":    fastread.ByzantineInflateSeen,
	"mute":            fastread.ByzantineMute,
	"flood":           fastread.ByzantineFlood,
}

// byzantineConfig resolves a scenario's behaviour names.
func byzantineConfig(m map[int]string) (map[int]fastread.ByzantineBehavior, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(map[int]fastread.ByzantineBehavior, len(m))
	for i, name := range m {
		b, ok := byzantineNames[name]
		if !ok {
			return nil, fmt.Errorf("sim: unknown byzantine behaviour %q for server %d", name, i)
		}
		out[i] = b
	}
	return out, nil
}

// simOp is one in-flight operation's runner-side bookkeeping.
type simOp struct {
	id      int64
	key     string
	reader  int // 0 for the writer's operations
	wf      *fastread.WriteFuture
	rf      *fastread.ReadFuture
	settled bool
}

func (o *simOp) doneCh() <-chan struct{} {
	if o.wf != nil {
		return o.wf.Done()
	}
	return o.rf.Done()
}

// handleID identifies one pipeline (a key's writer, or a key×reader pair)
// for depth accounting.
type handleID struct {
	key    string
	reader int
}

// runner executes one scenario on the virtual clock. Everything it does —
// submissions, fault injections, timeouts, result draining — happens on the
// single goroutine driving VirtualClock.Step, so its state needs no locks
// and its decisions are deterministic.
type runner struct {
	sc    Scenario
	clock *transport.VirtualClock
	store *fastread.Store
	net   *transport.InMemNetwork
	regs  map[string]*fastread.Register
	recs  map[string]*history.Recorder

	// abortCtx is pre-cancelled: Future.Result(abortCtx) on an unresolved
	// future aborts it fully synchronously on this goroutine (verified
	// property of the pipeline engine), which is how virtual-time deadlines
	// stay deterministic.
	abortCtx context.Context

	pending  []*simOp
	inflight map[handleID]int
	seq      map[string]int

	res *Result
}

// Run executes the scenario at the given seed and returns its complete
// outcome. It is safe to call concurrently (sweep workers do): each run
// owns a private deployment, clock and recorders.
func Run(sc Scenario, seed int64) *Result {
	sc = sc.WithDefaults()
	if sc.Protocol == BuggyProtocolName {
		RegisterBuggyDriver()
	}
	res := &Result{Scenario: sc, Seed: seed, Histories: map[string]history.History{}}
	wallStart := time.Now()
	defer func() { res.Wall = time.Since(wallStart) }()

	byz, err := byzantineConfig(sc.Byzantine)
	if err != nil {
		res.RunErr = err
		return res
	}

	clock := transport.NewVirtualClock()
	// The nonce source reads the virtual clock, so a restarted reader
	// incarnation (created later in virtual time) draws a strictly larger
	// initial counter — unless the scenario deliberately freezes it to
	// demonstrate the starvation that causes.
	nonce := func() int64 { return clock.Now().UnixMicro() }
	if sc.FrozenNonce {
		nonce = func() int64 { return 1 }
	}

	cfg := fastread.Config{
		Servers:   sc.Servers,
		Faulty:    sc.Faulty,
		Malicious: sc.Malicious,
		Readers:   sc.Readers,
		// ServerWorkers is 1 so each server handles its messages on exactly
		// one goroutine: combined with the clock's one-event-at-a-time
		// delivery, there is no scheduling freedom anywhere in a run.
		ServerWorkers:   1,
		PipelineDepth:   sc.Depth,
		DisableBatching: true,
		ProtocolName:    sc.Protocol,
		NonceSource:     nonce,
		Byzantine:       byz,
		Transport: fastread.InMemory(
			fastread.WithDelay(sc.Delay),
			fastread.WithJitter(sc.Jitter),
			fastread.WithSeed(seed),
			fastread.WithVirtualClock(clock),
		),
	}
	if sc.Durable != nil {
		fsync := fastread.FsyncPolicy(sc.Durable.Fsync)
		if fsync == "" {
			fsync = fastread.FsyncAlways
		}
		if fsync != fastread.FsyncAlways && fsync != fastread.FsyncNever {
			// The interval policy flushes on a wall-clock ticker, which a
			// deterministic run cannot contain.
			res.RunErr = fmt.Errorf("sim: durable fsync policy %q is wall-clock-driven; use always or never", sc.Durable.Fsync)
			return res
		}
		dir, err := os.MkdirTemp("", "sim-durable-")
		if err != nil {
			res.RunErr = fmt.Errorf("sim: durable dir: %w", err)
			return res
		}
		defer os.RemoveAll(dir)
		cfg.DataDir = dir
		cfg.Durability = fastread.DurabilityOptions{
			Fsync:        fsync,
			SegmentBytes: sc.Durable.SegmentBytes,
			// Background snapshots run on their own wall-clock goroutine;
			// restarts model machine crashes, not graceful handovers.
			SnapshotEvery: -1,
			SimulateCrash: true,
		}
	}
	store, err := fastread.NewStore(cfg)
	if err != nil {
		res.RunErr = fmt.Errorf("sim: deploy %q: %w", sc.Name, err)
		return res
	}
	defer store.Close()
	net, err := store.Network()
	if err != nil {
		res.RunErr = err
		return res
	}

	aborted, cancel := context.WithCancel(context.Background())
	cancel()
	r := &runner{
		sc: sc, clock: clock, store: store, net: net,
		regs:     make(map[string]*fastread.Register, sc.Keys),
		recs:     make(map[string]*history.Recorder, sc.Keys),
		abortCtx: aborted,
		inflight: make(map[handleID]int),
		seq:      make(map[string]int),
		res:      res,
	}
	for k := 0; k < sc.Keys; k++ {
		key := KeyName(k)
		reg, err := store.Register(key)
		if err != nil {
			res.RunErr = err
			return res
		}
		r.regs[key] = reg
		r.recs[key] = history.NewRecorderWithClock(clock.Now)
	}

	r.scheduleWorkload()
	r.scheduleFaults()
	r.loop()

	res.SimTime = clock.Now().Sub(transport.VirtualEpoch)
	res.MailboxHighWater = net.MailboxHighWater()
	for key, rec := range r.recs {
		res.Histories[key] = rec.History()
	}
	if res.RunErr == nil {
		check, err := atomicity.CheckKeyed(res.Histories, sc.checkFunc(), 1)
		if err != nil {
			res.RunErr = fmt.Errorf("sim: check %q: %w", sc.Name, err)
		} else {
			res.Check = check
		}
	}
	return res
}

// scheduleWorkload pre-schedules every submission of the run as absolute
// virtual-time events (the clock is still at the epoch, so relative delays
// ARE absolute offsets). Per-key and per-reader staggers keep distinct
// streams off the same instant, which keeps same-instant event ordering a
// non-issue for the workload shape.
func (r *runner) scheduleWorkload() {
	for k := 0; k < r.sc.Keys; k++ {
		key := KeyName(k)
		stagger := time.Duration(k+1) * time.Millisecond
		for at := stagger; at < r.sc.Duration; at += r.sc.WriteGap {
			r.clock.Schedule(at, func() { r.submitWrite(key) })
		}
		for ri := 1; ri <= r.sc.Readers; ri++ {
			ri := ri
			start := stagger + time.Duration(ri)*700*time.Microsecond
			for at := start; at < r.sc.Duration; at += r.sc.ReadGap {
				r.clock.Schedule(at, func() { r.submitRead(key, ri) })
			}
		}
	}
}

// scheduleFaults schedules the fault script.
func (r *runner) scheduleFaults() {
	for _, f := range r.sc.Faults {
		f := f
		r.clock.Schedule(f.At, func() { r.applyFault(f) })
	}
}

// loop drives the clock until the event queue drains: deliveries,
// submissions, faults and timeouts all run inside Step, and every Step
// return means the system is quiescent again — any future whose completing
// acknowledgement was just delivered is already resolved, so draining here
// observes completions at their exact virtual time.
func (r *runner) loop() {
	for {
		ran, err := r.clock.Step(stepStallWait)
		if err != nil {
			r.res.RunErr = fmt.Errorf("sim: %q seed %d: %w", r.sc.Name, r.res.Seed, err)
			break
		}
		if !ran {
			break
		}
		r.drain()
	}
	r.drain()
	// Nothing should be left: every operation had a timeout event. Anything
	// still pending means the accounting broke; abort it and say so.
	for _, op := range r.pending {
		if !op.settled {
			r.failOp(op)
			r.res.EndAborts++
		}
	}
	r.pending = nil
}

// drain resolves every in-flight operation whose future settled, in
// submission order, and compacts the pending list.
func (r *runner) drain() {
	kept := r.pending[:0]
	for _, op := range r.pending {
		if op.settled {
			continue
		}
		select {
		case <-op.doneCh():
			r.resolveOp(op)
		default:
			kept = append(kept, op)
		}
	}
	r.pending = kept
}

// submitWrite submits the key's next pipelined write, skipping (never
// blocking — blocking would deadlock the event loop) when the handle is at
// depth.
func (r *runner) submitWrite(key string) {
	h := handleID{key: key}
	if r.inflight[h] >= r.sc.Depth {
		r.res.SubmitSkips++
		return
	}
	r.seq[key]++
	value := fmt.Sprintf("%s#%06d", key, r.seq[key])
	rec := r.recs[key]
	id := rec.Invoke(types.Writer(), history.OpWrite, types.Value(value))
	fut, err := r.regs[key].Writer().WriteAsync(context.Background(), []byte(value))
	if err != nil {
		rec.Fail(id)
		r.res.FailedOps++
		return
	}
	r.res.Ops++
	r.track(&simOp{id: id, key: key, wf: fut}, h)
}

// submitRead submits reader ri's next pipelined read of the key.
func (r *runner) submitRead(key string, ri int) {
	h := handleID{key: key, reader: ri}
	if r.inflight[h] >= r.sc.Depth {
		r.res.SubmitSkips++
		return
	}
	reader, err := r.regs[key].Reader(ri)
	if err != nil {
		r.res.RunErr = err
		return
	}
	rec := r.recs[key]
	id := rec.Invoke(types.Reader(ri), history.OpRead, nil)
	fut, err := reader.ReadAsync(context.Background())
	if err != nil {
		rec.Fail(id)
		r.res.FailedOps++
		return
	}
	r.res.Ops++
	r.track(&simOp{id: id, key: key, reader: ri, rf: fut}, h)
}

// track registers a submitted operation and arms its virtual-time deadline.
func (r *runner) track(op *simOp, h handleID) {
	r.inflight[h]++
	r.pending = append(r.pending, op)
	r.clock.Schedule(r.sc.OpTimeout, func() { r.timeoutOp(op) })
}

// timeoutOp fires an operation's virtual deadline. The non-blocking Done
// check comes first: if the future resolved in the same Step burst, Result
// would face a two-ready select (a nondeterministic coin flip), so the
// completed case must be taken explicitly before the abort path.
func (r *runner) timeoutOp(op *simOp) {
	if op.settled {
		return
	}
	select {
	case <-op.doneCh():
		r.resolveOp(op)
		return
	default:
	}
	r.failOp(op)
	r.res.TimedOut++
}

// resolveOp records a settled future's outcome. The futures are resolved,
// so the Result calls return immediately.
func (r *runner) resolveOp(op *simOp) {
	r.settle(op)
	rec := r.recs[op.key]
	if op.wf != nil {
		if err := op.wf.Result(context.Background()); err != nil {
			rec.Fail(op.id)
			r.res.FailedOps++
			return
		}
		rec.Return(op.id, nil, 0)
	} else {
		res, err := op.rf.Result(context.Background())
		if err != nil {
			rec.Fail(op.id)
			r.res.FailedOps++
			return
		}
		rec.Return(op.id, types.Value(res.Value), types.Timestamp(res.Version))
	}
	r.res.Completed++
}

// failOp aborts an unresolved operation synchronously (via the
// pre-cancelled context) and records it as failed.
func (r *runner) failOp(op *simOp) {
	r.settle(op)
	if op.wf != nil {
		_ = op.wf.Result(r.abortCtx)
	} else {
		_, _ = op.rf.Result(r.abortCtx)
	}
	r.recs[op.key].Fail(op.id)
}

func (r *runner) settle(op *simOp) {
	op.settled = true
	r.inflight[handleID{key: op.key, reader: op.reader}]--
}

// clients lists the deployment's client identities (the writer and every
// reader), the endpoints the hold faults apply to.
func (r *runner) clients() []types.ProcessID {
	out := []types.ProcessID{types.Writer()}
	for i := 1; i <= r.sc.Readers; i++ {
		out = append(out, types.Reader(i))
	}
	return out
}

// applyFault executes one fault-script event.
func (r *runner) applyFault(f FaultEvent) {
	srv := types.Server(f.Server)
	switch f.Kind {
	case FaultIsolate:
		r.net.Isolate(srv)
	case FaultReconnect:
		r.net.Reconnect(srv)
	case FaultCrash:
		if err := r.store.CrashServer(f.Server); err != nil {
			r.res.RunErr = err
		}
	case FaultRestartServer:
		// The swap is atomic in virtual time: the old incarnation's queued
		// messages die with its node, the new one recovers from disk (when
		// the scenario is durable) and rejoins before the next event fires.
		if err := r.store.RestartServer(f.Server); err != nil {
			r.res.RunErr = err
		}
	case FaultHold:
		for _, c := range r.clients() {
			r.net.HoldPair(c, srv)
		}
	case FaultRelease:
		for _, c := range r.clients() {
			r.net.Release(c, srv)
			r.net.Release(srv, c)
		}
	case FaultDropHeld:
		for _, c := range r.clients() {
			r.net.DropHeld(c, srv)
			r.net.DropHeld(srv, c)
		}
	case FaultRestartReader:
		r.restartReader(f.Reader, f.Key)
	default:
		r.res.RunErr = fmt.Errorf("sim: unknown fault kind %q", f.Kind)
	}
}

// restartReader models a reader process restart for one key (or all). The
// old incarnation's in-flight operations are settled HERE, synchronously,
// before the store swaps the client: severing the route first would let the
// pipeline's dispatch goroutine fail them asynchronously, racing the event
// loop. An operation whose quorum already assembled resolves normally; the
// rest die with the process.
func (r *runner) restartReader(ri int, key string) {
	keys := []string{key}
	if key == "" {
		keys = keys[:0]
		for k := 0; k < r.sc.Keys; k++ {
			keys = append(keys, KeyName(k))
		}
	}
	for _, k := range keys {
		for _, op := range r.pending {
			if op.settled || op.key != k || op.reader != ri {
				continue
			}
			select {
			case <-op.doneCh():
				r.resolveOp(op)
				continue
			default:
			}
			r.failOp(op)
			r.res.RestartAborts++
		}
		if err := r.store.RestartReader(k, ri); err != nil {
			r.res.RunErr = err
		}
	}
}
