package sim

import (
	"context"
	"sync"
	"time"

	"fastread/internal/driver"
	"fastread/internal/transport"
)

// BuggyProtocolName is the registry name of the deliberately-broken driver
// the explorer's canary sweeps: it wraps the fast protocol but makes every
// third read of a handle replay the FIRST result that handle ever observed
// (or ⊥ before any completes) — a textbook stale-read atomicity violation.
// The canary exists to prove the whole detection chain end to end: the
// sweep must catch the violation, the checker must name it, and the
// shrinker must reduce the failing scenario to a minimal reproducer. A
// sweep harness that cannot catch THIS driver is not testing anything.
const BuggyProtocolName = "sim-buggy"

var buggyOnce sync.Once

// RegisterBuggyDriver registers the canary driver (idempotently — the
// driver registry panics on duplicates). Run calls it automatically for
// scenarios whose Protocol is BuggyProtocolName.
func RegisterBuggyDriver() {
	buggyOnce.Do(func() {
		base, ok := driver.Lookup("fast")
		if !ok {
			panic("sim: fast driver not registered (import fastread)")
		}
		d := base
		d.Name = BuggyProtocolName
		d.NewReader = func(cfg driver.ClientConfig, node transport.Node) (driver.Reader, error) {
			inner, err := base.NewReader(cfg, node)
			if err != nil {
				return nil, err
			}
			return &buggyReader{inner: inner}, nil
		}
		driver.Register(d)
	})
}

// CanaryScenario is the sweep the canary runs: a healthy fast-register
// deployment with a handful of benign partition faults (deliberately
// irrelevant to the bug, so the shrinker has something to strip) on top of
// the broken reader.
func CanaryScenario() Scenario {
	sc := Scenario{
		Name: "buggy-canary", Protocol: BuggyProtocolName,
		Servers: 5, Faulty: 1, Readers: 1, Keys: 1, Depth: 4,
		Delay: 200 * time.Microsecond, Jitter: 300 * time.Microsecond,
		Duration: 1500 * time.Millisecond, WriteGap: 40 * time.Millisecond, ReadGap: 25 * time.Millisecond,
		OpTimeout:         2 * time.Second,
		ExpectAllComplete: true,
	}
	for i := 0; i < 3; i++ {
		at := 250*time.Millisecond + time.Duration(i)*300*time.Millisecond
		s := 1 + i%sc.Servers
		sc.Faults = append(sc.Faults,
			FaultEvent{At: at, Kind: FaultIsolate, Server: s},
			FaultEvent{At: at + 120*time.Millisecond, Kind: FaultReconnect, Server: s},
		)
	}
	return sc
}

// buggyReader wraps a correct fast reader and corrupts every third
// submission. All decisions happen on the goroutines the runner controls,
// so the corruption schedule is as deterministic as the run itself.
type buggyReader struct {
	inner driver.Reader

	mu    sync.Mutex
	subs  int64
	first *driver.ReadResult // first completed result, replayed forever
}

var _ driver.Reader = (*buggyReader)(nil)

func (b *buggyReader) Read(ctx context.Context) (driver.ReadResult, error) {
	f, err := b.ReadAsync(ctx)
	if err != nil {
		return driver.ReadResult{}, err
	}
	return f.Result(ctx)
}

func (b *buggyReader) ReadAsync(ctx context.Context) (driver.ReadFuture, error) {
	b.mu.Lock()
	b.subs++
	replay := b.subs%3 == 0
	var cached driver.ReadResult
	if b.first != nil {
		cached = cloneReadResult(*b.first)
	}
	b.mu.Unlock()
	if replay {
		// The bug: answer instantly from the stale cache (⊥ before anything
		// completed), never consulting a quorum.
		return &staleFuture{res: cached}, nil
	}
	f, err := b.inner.ReadAsync(ctx)
	if err != nil {
		return nil, err
	}
	return &cachingFuture{inner: f, owner: b}, nil
}

func (b *buggyReader) Stats() (reads, roundTrips, fallbacks int64) { return b.inner.Stats() }

// cacheFirst records the first genuinely-completed result as the replay
// source.
func (b *buggyReader) cacheFirst(res driver.ReadResult) {
	b.mu.Lock()
	if b.first == nil {
		c := cloneReadResult(res)
		b.first = &c
	}
	b.mu.Unlock()
}

func cloneReadResult(res driver.ReadResult) driver.ReadResult {
	res.Value = res.Value.Clone()
	return res
}

// cachingFuture passes an honest read through while capturing its result
// for the stale replays.
type cachingFuture struct {
	inner driver.ReadFuture
	owner *buggyReader
}

func (f *cachingFuture) Done() <-chan struct{} { return f.inner.Done() }

func (f *cachingFuture) Result(ctx context.Context) (driver.ReadResult, error) {
	res, err := f.inner.Result(ctx)
	if err == nil {
		f.owner.cacheFirst(res)
	}
	return res, err
}

// staleFuture is pre-resolved with the cached result.
type staleFuture struct{ res driver.ReadResult }

var closedCh = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

func (f *staleFuture) Done() <-chan struct{} { return closedCh }

func (f *staleFuture) Result(context.Context) (driver.ReadResult, error) { return f.res, nil }
