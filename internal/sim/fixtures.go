package sim

import "time"

// FixtureSeed is the pinned seed the regression fixtures run at. The
// fixtures re-encode, as declarative scenarios, the three latent bugs the
// pipelined-operations work surfaced and fixed; the exact seed is part of
// the regression — it pins the adversarial schedule that used to trigger
// each bug.
const FixtureSeed int64 = 0x5EED

// Fixtures returns the pinned regression scenarios. All three must pass at
// FixtureSeed on a correct build:
//
//   - fixture-demux-burst-backlog: deep pipelines into hold/release bursts,
//     the schedule that used to overflow a demux route's backlog when a
//     released burst replayed a whole window of acknowledgements at once.
//   - fixture-delayed-reordering: jitter far above the base delay with deep
//     pipelines, the schedule that used to let a delayed delivery complete
//     quorums out of submission order.
//   - fixture-restarted-incarnation: restart storms, the schedule that used
//     to starve a restarted reader whose fresh incarnation reused a nonce
//     the servers' stale-request guard had already seen. Its FrozenNonce
//     variant (see RestartedIncarnationFrozen) reintroduces exactly that
//     mistake and must FAIL — proving the fixture still has teeth.
func Fixtures() []Scenario {
	demux := genHoldReleaseBurst(7)
	demux.Name = "fixture-demux-burst-backlog"
	demux.Depth = 8

	reorder := genJitterChaos(11)
	reorder.Name = "fixture-delayed-reordering"
	reorder.Jitter = 5 * time.Millisecond

	restart := restartStorm(13, 3*time.Second)
	restart.Name = "fixture-restarted-incarnation"

	return []Scenario{demux, reorder, restart}
}

// RestartedIncarnationFrozen is the deliberately-wrong twin of
// fixture-restarted-incarnation: the nonce source is frozen, so every
// restarted reader incarnation reuses its predecessor's initial counter and
// the servers' stale-request guard starves it. Running it must produce
// operation timeouts (and therefore a failed Result) — if it ever passes,
// either the guard or the fixture has gone soft.
func RestartedIncarnationFrozen() Scenario {
	sc := restartStorm(13, 3*time.Second)
	sc.Name = "fixture-restarted-incarnation-frozen"
	sc.FrozenNonce = true
	return sc
}
