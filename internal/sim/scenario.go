// Package sim is the deterministic simulation harness: a declarative
// scenario DSL (workload shape plus a timed fault script), a virtual-time
// runner that executes a scenario against any registered protocol driver
// with every operation recorded, a seed-sweeping explorer that checks the
// resulting histories against the paper's correctness conditions, and a
// shrinker that reduces a failing run to a minimal reproducer.
//
// Everything is driven by fastread's virtual clock
// (transport.VirtualClock): network deliveries, workload submissions, fault
// injections and per-operation timeouts are all logical-clock events
// executed one at a time on a single driver goroutine, so a "60-second"
// chaos scenario runs in well under a second of wall time and the same
// (scenario, seed) pair reproduces a byte-identical history every run. No
// code on a simulation's path may consult the wall clock or sleep — the
// clock's quiescence accounting turns such a mistake into a Step error
// instead of nondeterminism.
package sim

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"fastread/internal/atomicity"
)

// FaultKind names one kind of timed fault injection.
type FaultKind string

const (
	// FaultIsolate partitions a server away from every other process:
	// messages to and from it are dropped (not queued) until FaultReconnect.
	// Paired with a reconnect it models a crash-restart of a server whose
	// state lives only in memory.
	FaultIsolate FaultKind = "isolate"
	// FaultReconnect undoes FaultIsolate for the server.
	FaultReconnect FaultKind = "reconnect"
	// FaultCrash crash-stops a server permanently (the crash model's
	// failure). At most Faulty servers should ever be crashed.
	FaultCrash FaultKind = "crash"
	// FaultHold suspends delivery on every link between the server and the
	// deployment's clients: messages sent while held are queued in transit.
	FaultHold FaultKind = "hold"
	// FaultRelease delivers (in order) everything held for the server and
	// resumes normal delivery — the burst is the interesting part.
	FaultRelease FaultKind = "release"
	// FaultDropHeld discards everything held for the server and resumes
	// delivery; the dropped messages stay "in transit forever".
	FaultDropHeld FaultKind = "drop-held"
	// FaultRestartReader replaces a reader's protocol client with a fresh
	// incarnation (new nonce, empty observed state) for the event's Key (or
	// every key when Key is empty). In-flight operations of the old
	// incarnation are aborted deterministically before the swap.
	FaultRestartReader FaultKind = "restart-reader"
	// FaultRestartServer crash-stops a server and immediately starts a new
	// incarnation of it (Store.RestartServer). With Scenario.Durable set the
	// new incarnation recovers the old one's write-ahead log — crashed at
	// whatever offset the fsync policy had made durable — so the fault
	// explores recovery correctness, not just outage tolerance. Without
	// Durable the incarnation rejoins amnesiac, which is only sound inside
	// quorum-overlap bounds the scenario must respect.
	FaultRestartServer FaultKind = "restart-server"
)

// FaultEvent is one timed entry of a scenario's fault script.
type FaultEvent struct {
	// At is the virtual time the fault fires, measured from the run's start.
	At time.Duration `json:"at"`
	// Kind selects the fault.
	Kind FaultKind `json:"kind"`
	// Server is the 1-based server index targeted by the server faults.
	Server int `json:"server,omitempty"`
	// Reader is the 1-based reader index targeted by restart-reader.
	Reader int `json:"reader,omitempty"`
	// Key restricts restart-reader to one register; empty means every key.
	Key string `json:"key,omitempty"`
}

// Scenario is a declarative simulation: a deployment shape, a steady
// workload, and a fault script. It is JSON-serializable so a failing run can
// be replayed from the command line verbatim.
type Scenario struct {
	// Name identifies the scenario in reports and replay commands.
	Name string `json:"name"`
	// Protocol is the driver registry name ("fast", "fast-byz", "abd",
	// "maxmin", "regular", or test drivers like "sim-buggy").
	Protocol string `json:"protocol"`
	// Servers, Faulty, Malicious and Readers shape the deployment (S, t, b,
	// R).
	Servers   int `json:"servers"`
	Faulty    int `json:"faulty"`
	Malicious int `json:"malicious,omitempty"`
	Readers   int `json:"readers"`
	// Keys is the number of independent registers driven concurrently.
	Keys int `json:"keys"`
	// Depth is the per-handle pipeline depth; submissions beyond it are
	// skipped (never blocked — blocking would deadlock the event loop).
	Depth int `json:"depth"`
	// Delay and Jitter shape the network: every delivery takes Delay plus a
	// seeded-random extra in [0, Jitter).
	Delay  time.Duration `json:"delay"`
	Jitter time.Duration `json:"jitter"`
	// Duration is how long (in virtual time) the workload keeps submitting.
	Duration time.Duration `json:"duration"`
	// WriteGap and ReadGap are the virtual periods between successive write
	// (per key) and read (per key per reader) submissions.
	WriteGap time.Duration `json:"writeGap"`
	ReadGap  time.Duration `json:"readGap"`
	// OpTimeout bounds every operation in virtual time; an operation still
	// pending when it fires is aborted and recorded as failed.
	OpTimeout time.Duration `json:"opTimeout"`
	// Byzantine maps 1-based server indices to behaviour names
	// ("forge-timestamp", "stale-replay", "memory-loss", "inflate-seen",
	// "mute", "flood"); the listed servers run malicious implementations.
	Byzantine map[int]string `json:"byzantine,omitempty"`
	// Faults is the timed fault script.
	Faults []FaultEvent `json:"faults,omitempty"`
	// ExpectAllComplete, when true, makes operation timeouts count as a
	// failure: the scenario promises every submitted operation can finish
	// (faults never starve a quorum for longer than OpTimeout).
	ExpectAllComplete bool `json:"expectAllComplete"`
	// FrozenNonce replaces the virtual-clock nonce source with a constant —
	// the deliberately-wrong configuration that reintroduces the
	// restarted-reader starvation bug, kept as a knob so the fixture that
	// guards against it can demonstrate it still bites.
	FrozenNonce bool `json:"frozenNonce,omitempty"`
	// Durable, when non-nil, runs every server with a write-ahead log in a
	// per-run temporary directory, so restart-server faults recover real
	// persisted state. The runner forces SimulateCrash (restarts model
	// machine crashes: the active segment truncates to its last-fsynced
	// offset) and disables background snapshots (their trigger goroutine is
	// wall-clock-driven, which a deterministic run cannot contain).
	Durable *DurableSpec `json:"durable,omitempty"`
}

// DurableSpec opts a scenario's servers into durability (see
// Scenario.Durable).
type DurableSpec struct {
	// Fsync is the flush policy: "always" (nothing acknowledged is lost —
	// every restart recovers full state) or "never" (the active segment is
	// lost on crash — restarts are amnesiac about their unsealed tail).
	// Empty means "always". "interval" is rejected by the runner: its flush
	// ticker is wall-clock-driven, so it cannot appear in a deterministic
	// run.
	Fsync string `json:"fsync,omitempty"`
	// SegmentBytes rotates log segments early (sealed segments survive a
	// simulated crash even under "never", so small segments make recovery
	// replay multi-segment logs mid-scenario); 0 keeps the 4MiB default,
	// which a short scenario never fills.
	SegmentBytes int64 `json:"segmentBytes,omitempty"`
}

// WithDefaults fills unset workload fields with usable values.
func (sc Scenario) WithDefaults() Scenario {
	if sc.Protocol == "" {
		sc.Protocol = "fast"
	}
	if sc.Keys <= 0 {
		sc.Keys = 1
	}
	if sc.Depth <= 0 {
		sc.Depth = 4
	}
	if sc.Duration <= 0 {
		sc.Duration = 2 * time.Second
	}
	if sc.WriteGap <= 0 {
		sc.WriteGap = 40 * time.Millisecond
	}
	if sc.ReadGap <= 0 {
		sc.ReadGap = 25 * time.Millisecond
	}
	if sc.OpTimeout <= 0 {
		sc.OpTimeout = 2 * time.Second
	}
	return sc
}

// KeyName returns the i-th register name of a scenario (0-based).
func KeyName(i int) string { return fmt.Sprintf("k%02d", i) }

// checkFunc selects the per-key history checker matching the protocol's
// guarantee: regularity for the regular register, the four single-writer
// atomicity conditions for everything else.
func (sc Scenario) checkFunc() atomicity.CheckFunc {
	if sc.Protocol == "regular" {
		return atomicity.CheckRegular
	}
	return atomicity.CheckSWMR
}

// MarshalJSONCompact renders the scenario as one-line JSON for replay
// commands.
func (sc Scenario) MarshalJSONCompact() string {
	data, err := json.Marshal(sc)
	if err != nil {
		return fmt.Sprintf("{%q: %q}", "error", err.Error())
	}
	return string(data)
}

// ParseScenario decodes a scenario from its JSON form.
func ParseScenario(data []byte) (Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(data, &sc); err != nil {
		return Scenario{}, fmt.Errorf("sim: parse scenario: %w", err)
	}
	return sc, nil
}

// Template is a named, seed-parameterized scenario generator: the seed
// shapes the fault schedule (which servers, when, for how long) as well as
// the network jitter, so a seed sweep explores genuinely different
// adversarial schedules of the same scenario family.
type Template struct {
	// Name is the template's stable identifier (also the generated
	// scenario's Name).
	Name string
	// Gen builds the concrete scenario for one seed.
	Gen func(seed int64) Scenario
}

// Templates returns the built-in scenario families swept by default. Every
// generated scenario keeps the deployment inside the protocol's fault
// bounds, so any history violation found by a sweep is a genuine bug, not a
// misconfigured deployment.
func Templates() []Template {
	return []Template{
		{Name: "partition-pipelined-writes", Gen: genPartitionPipelinedWrites},
		{Name: "restart-storm", Gen: genRestartStorm},
		{Name: "byz-flood", Gen: genByzFlood},
		{Name: "hold-release-burst", Gen: genHoldReleaseBurst},
		{Name: "crash-quorum-edge", Gen: genCrashQuorumEdge},
		{Name: "restart-recover", Gen: genRestartRecover},
		{Name: "jitter-chaos", Gen: genJitterChaos},
		{Name: "maxmin-gossip-jitter", Gen: genMaxminGossipJitter},
	}
}

// TemplateByName finds a built-in template (including the long acceptance
// variant and the pinned fixtures, which are not part of the default sweep).
func TemplateByName(name string) (Template, bool) {
	for _, t := range Templates() {
		if t.Name == name {
			return t, true
		}
	}
	for _, t := range extraTemplates() {
		if t.Name == name {
			return t, true
		}
	}
	return Template{}, false
}

// TemplateNames lists the default sweep's template names.
func TemplateNames() []string {
	ts := Templates()
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}

// extraTemplates are addressable by name but excluded from the default
// sweep: the 60-second acceptance scenario, the deliberately-buggy canary,
// and the pinned regression fixtures.
func extraTemplates() []Template {
	extras := []Template{
		{Name: "restart-storm-long", Gen: genRestartStormLong},
		{Name: "buggy-canary", Gen: func(int64) Scenario { return CanaryScenario() }},
	}
	for _, fx := range Fixtures() {
		fx := fx
		extras = append(extras, Template{Name: fx.Name, Gen: func(int64) Scenario { return fx }})
	}
	return extras
}

// genPartitionPipelinedWrites partitions one server at a time (never more
// than t=1 concurrently) while deep write pipelines are in flight. The
// quorum S−t stays reachable throughout, so every operation must complete
// AND every history must stay atomic.
func genPartitionPipelinedWrites(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name: "partition-pipelined-writes", Protocol: "fast",
		Servers: 5, Faulty: 1, Readers: 2, Keys: 2, Depth: 4,
		Delay: 200 * time.Microsecond, Jitter: 300 * time.Microsecond,
		Duration: 3 * time.Second, WriteGap: 40 * time.Millisecond, ReadGap: 25 * time.Millisecond,
		OpTimeout:         2 * time.Second,
		ExpectAllComplete: true,
	}
	at := 200*time.Millisecond + time.Duration(rng.Intn(100))*time.Millisecond
	for at < sc.Duration-300*time.Millisecond {
		s := 1 + rng.Intn(sc.Servers)
		window := time.Duration(100+rng.Intn(200)) * time.Millisecond
		sc.Faults = append(sc.Faults,
			FaultEvent{At: at, Kind: FaultIsolate, Server: s},
			FaultEvent{At: at + window, Kind: FaultReconnect, Server: s},
		)
		at += window + time.Duration(50+rng.Intn(150))*time.Millisecond
	}
	return sc
}

// restartStorm builds the rolling isolate/restart-reader/reconnect schedule
// shared by the default and the long acceptance variant.
func restartStorm(seed int64, duration time.Duration) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name: "restart-storm", Protocol: "fast",
		Servers: 5, Faulty: 1, Readers: 2, Keys: 2, Depth: 4,
		Delay: 200 * time.Microsecond, Jitter: 300 * time.Microsecond,
		Duration: duration, WriteGap: 100 * time.Millisecond, ReadGap: 60 * time.Millisecond,
		OpTimeout:         2 * time.Second,
		ExpectAllComplete: true,
	}
	at := 300 * time.Millisecond
	for at < sc.Duration-500*time.Millisecond {
		s := 1 + rng.Intn(sc.Servers)
		window := time.Duration(150+rng.Intn(250)) * time.Millisecond
		sc.Faults = append(sc.Faults,
			FaultEvent{At: at, Kind: FaultIsolate, Server: s},
			FaultEvent{At: at + window/2, Kind: FaultRestartReader, Reader: 1 + rng.Intn(sc.Readers)},
			FaultEvent{At: at + window, Kind: FaultReconnect, Server: s},
		)
		at += window + time.Duration(200+rng.Intn(300))*time.Millisecond
	}
	return sc
}

func genRestartStorm(seed int64) Scenario { return restartStorm(seed, 4*time.Second) }

// genRestartStormLong is the acceptance scenario: a full simulated minute of
// restart storms and partitions that must finish in under a second of wall
// time with byte-identical same-seed histories.
func genRestartStormLong(seed int64) Scenario {
	sc := restartStorm(seed, 60*time.Second)
	sc.Name = "restart-storm-long"
	return sc
}

// genByzFlood runs the arbitrary-failure register with one flooding
// malicious server inside its proven bound S > (R+2)t + (R+1)b, so safety
// and liveness must both survive the fabricated-ack bursts.
func genByzFlood(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name: "byz-flood", Protocol: "fast-byz",
		Servers: 6, Faulty: 1, Malicious: 1, Readers: 1, Keys: 1, Depth: 4,
		Delay: 200 * time.Microsecond, Jitter: 400 * time.Microsecond,
		Duration: 2500 * time.Millisecond, WriteGap: 50 * time.Millisecond, ReadGap: 30 * time.Millisecond,
		OpTimeout:         2 * time.Second,
		Byzantine:         map[int]string{1 + rng.Intn(6): "flood"},
		ExpectAllComplete: true,
	}
	return sc
}

// genHoldReleaseBurst holds all client links of one server and later
// releases (or occasionally drops) the queued traffic in one burst —
// maximal reordering and backlog pressure on the demux routes.
func genHoldReleaseBurst(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name: "hold-release-burst", Protocol: "fast",
		Servers: 5, Faulty: 1, Readers: 2, Keys: 2, Depth: 6,
		Delay: 100 * time.Microsecond, Jitter: 200 * time.Microsecond,
		Duration: 3 * time.Second, WriteGap: 35 * time.Millisecond, ReadGap: 20 * time.Millisecond,
		OpTimeout:         2 * time.Second,
		ExpectAllComplete: true,
	}
	at := 250 * time.Millisecond
	for at < sc.Duration-400*time.Millisecond {
		s := 1 + rng.Intn(sc.Servers)
		window := time.Duration(80+rng.Intn(200)) * time.Millisecond
		end := FaultRelease
		if rng.Intn(4) == 0 {
			end = FaultDropHeld // messages in transit forever; quorum S−t survives
		}
		sc.Faults = append(sc.Faults,
			FaultEvent{At: at, Kind: FaultHold, Server: s},
			FaultEvent{At: at + window, Kind: end, Server: s},
		)
		at += window + time.Duration(100+rng.Intn(200))*time.Millisecond
	}
	return sc
}

// genCrashQuorumEdge crash-stops exactly t servers at staggered times,
// leaving the deployment on its quorum edge: the surviving S−t servers are
// exactly an ack quorum, so every later operation needs all of them.
func genCrashQuorumEdge(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name: "crash-quorum-edge", Protocol: "abd",
		Servers: 5, Faulty: 2, Readers: 2, Keys: 1, Depth: 4,
		Delay: 200 * time.Microsecond, Jitter: 300 * time.Microsecond,
		Duration: 2500 * time.Millisecond, WriteGap: 45 * time.Millisecond, ReadGap: 30 * time.Millisecond,
		OpTimeout:         2 * time.Second,
		ExpectAllComplete: true,
	}
	// Two distinct victims, crashed in order at seeded times.
	first := 1 + rng.Intn(sc.Servers)
	second := 1 + rng.Intn(sc.Servers-1)
	if second >= first {
		second++
	}
	sc.Faults = append(sc.Faults,
		FaultEvent{At: time.Duration(400+rng.Intn(400)) * time.Millisecond, Kind: FaultCrash, Server: first},
		FaultEvent{At: time.Duration(1200+rng.Intn(600)) * time.Millisecond, Kind: FaultCrash, Server: second},
	)
	return sc
}

// genRestartRecover crashes and restarts DURABLE servers mid-workload, so
// write-ahead-log recovery (snapshot + tail replay + incarnation bump) runs
// inside a checked run rather than only in unit tests. Seed parity selects
// which durability regime the sweep explores:
//
//   - Even seeds run fsync=always with a rolling storm of restarts: every
//     acknowledged write is on disk before its ack, so ANY number of
//     crash-restarts must preserve both atomicity and liveness.
//
//   - Odd seeds run fsync=never, where a crash loses the active (unsealed,
//     never-synced) segment — the "crash between append and fsync" window at
//     its widest. Amnesia is only sound inside quorum overlap: the scenario
//     runs ABD on S=6 (majority quorums of 4 intersect in ≥2 servers) and
//     restarts a SINGLE seeded victim, twice, so every acknowledged write
//     survives in at least one non-wiped server of every quorum
//     intersection. Small segments force rotation, so recovery still
//     replays the sealed multi-segment prefix the crash could not take.
func genRestartRecover(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	sc := Scenario{
		Name: "restart-recover", Protocol: "abd",
		Servers: 5, Faulty: 1, Readers: 2, Keys: 2, Depth: 4,
		Delay: 200 * time.Microsecond, Jitter: 300 * time.Microsecond,
		Duration: 3 * time.Second, WriteGap: 40 * time.Millisecond, ReadGap: 25 * time.Millisecond,
		OpTimeout:         2 * time.Second,
		ExpectAllComplete: true,
		Durable:           &DurableSpec{Fsync: "always", SegmentBytes: 8 << 10},
	}
	if seed%2 != 0 {
		sc.Servers, sc.Faulty = 6, 2
		sc.Durable = &DurableSpec{Fsync: "never", SegmentBytes: 4 << 10}
		victim := 1 + rng.Intn(sc.Servers)
		sc.Faults = append(sc.Faults,
			FaultEvent{At: time.Duration(600+rng.Intn(400)) * time.Millisecond, Kind: FaultRestartServer, Server: victim},
			FaultEvent{At: time.Duration(1700+rng.Intn(500)) * time.Millisecond, Kind: FaultRestartServer, Server: victim},
		)
		return sc
	}
	at := 300*time.Millisecond + time.Duration(rng.Intn(200))*time.Millisecond
	for at < sc.Duration-400*time.Millisecond {
		sc.Faults = append(sc.Faults,
			FaultEvent{At: at, Kind: FaultRestartServer, Server: 1 + rng.Intn(sc.Servers)},
		)
		at += time.Duration(250+rng.Intn(250)) * time.Millisecond
	}
	return sc
}

// genJitterChaos runs the regular register under jitter much larger than
// the base delay with deep pipelines — pure reordering chaos, no faults.
// Checked against regularity (new/old inversions are legal here).
func genJitterChaos(seed int64) Scenario {
	return Scenario{
		Name: "jitter-chaos", Protocol: "regular",
		Servers: 4, Faulty: 1, Readers: 3, Keys: 2, Depth: 8,
		Delay: 100 * time.Microsecond, Jitter: 3 * time.Millisecond,
		Duration: 2500 * time.Millisecond, WriteGap: 25 * time.Millisecond, ReadGap: 15 * time.Millisecond,
		OpTimeout:         2 * time.Second,
		ExpectAllComplete: true,
	}
}

// genMaxminGossipJitter runs the decentralised max-min register (servers
// gossip with each other before replying) under heavy jitter, so the
// inter-server gossip rounds interleave arbitrarily with client traffic.
// No faults: the scenario exists to stress the protocol with the most
// reorderings, not to starve it.
func genMaxminGossipJitter(seed int64) Scenario {
	return Scenario{
		Name: "maxmin-gossip-jitter", Protocol: "maxmin",
		Servers: 5, Faulty: 2, Readers: 2, Keys: 1, Depth: 4,
		Delay: 200 * time.Microsecond, Jitter: 2 * time.Millisecond,
		Duration: 2 * time.Second, WriteGap: 60 * time.Millisecond, ReadGap: 40 * time.Millisecond,
		OpTimeout:         2 * time.Second,
		ExpectAllComplete: true,
	}
}
