package transport

import "sync/atomic"

// SPSC handoff tier
// =================
//
// The two hottest single-producer/single-consumer handoffs in a deployment —
// the demux pump pushing into a route's queue, and the executor's dispatcher
// pushing into a key-shard worker's queue — used to pay one mutex+condvar
// synchronisation per run of messages (mailbox.popAll amortised the condvar,
// but every push still took the lock). Both handoffs have exactly ONE
// producer goroutine and ONE consumer goroutine by construction, which admits
// a classic lock-free bounded ring: a power-of-two slot array with padded
// atomic head/tail indices, wait-free on both sides while the ring has room.
//
// Unbounded queueing is a CORRECTNESS requirement on these paths (see the
// Demux doc: a behind-quorum server's burst-flushed ack backlog must never
// force a drop), so the ring cannot simply reject on full. Instead each
// handoff keeps the old unbounded mailbox as a SPILL path: when the ring is
// full the producer diverts to the mailbox, and stays diverted until the
// consumer has drained the spill — that ordering discipline (ring drained
// before spill, producer pinned to the spill while it is non-empty) preserves
// exact FIFO across the boundary. Steady state never touches the mailbox;
// bursts degrade to exactly the PR 3/PR 5 mailbox behaviour instead of losing
// messages.

// ringCapacity is the slot count of a handoff's ring. Must be a power of two.
// 256 covers several operations' worth of acknowledgements for any realistic
// server count (matching DefaultRouteBuffer); bursts beyond it spill to the
// unbounded mailbox.
const ringCapacity = 256

// cacheLinePad separates the producer-side and consumer-side indices so the
// two cores do not false-share a cache line.
type cacheLinePad [64]byte

// spscRing is a bounded single-producer/single-consumer ring. push may be
// called by ONE goroutine at a time, pop by ONE goroutine at a time; the
// atomic head/tail stores publish the slot contents across the pair (Go's
// sync/atomic gives the needed happens-before edges).
type spscRing struct {
	slots []Message
	mask  uint64
	_     cacheLinePad
	// head is the consumer cursor: next slot to pop. Written only by the
	// consumer.
	head atomic.Uint64
	_    cacheLinePad
	// tail is the producer cursor: next slot to fill. Written only by the
	// producer.
	tail atomic.Uint64
	_    cacheLinePad
}

// newSPSCRing builds a ring with the given power-of-two capacity.
func newSPSCRing(capacity int) *spscRing {
	if capacity&(capacity-1) != 0 || capacity <= 0 {
		panic("transport: ring capacity must be a power of two")
	}
	return &spscRing{slots: make([]Message, capacity), mask: uint64(capacity - 1)}
}

// push appends one message; it reports false when the ring is full. Producer
// side only.
func (r *spscRing) push(m Message) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.slots)) {
		return false
	}
	r.slots[t&r.mask] = m
	r.tail.Store(t + 1)
	return true
}

// pop removes the oldest message; ok is false when the ring is empty. The
// popped slot is zeroed so the ring never pins a payload. Consumer side only.
func (r *spscRing) pop() (Message, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return Message{}, false
	}
	m := r.slots[h&r.mask]
	r.slots[h&r.mask] = Message{}
	r.head.Store(h + 1)
	return m, true
}

// empty reports whether the ring currently holds no messages. Either side.
func (r *spscRing) empty() bool {
	return r.head.Load() == r.tail.Load()
}

// handoff is the SPSC queue used between a demux pump and its routes, and
// between an executor dispatcher and its key-shard workers: a lock-free ring
// for the steady state with the unbounded mailbox as burst spill (see the
// package comment above). The producer and the consumer must each be a single
// goroutine; close may be called from anywhere.
type handoff struct {
	ring *spscRing
	// spill is the unbounded overflow queue. Its mutex also arbitrates the
	// producer's divert decision against the consumer's drain-and-reset, and
	// its closed flag is the handoff's closed flag for racing producers.
	spill *mailbox
	// spilling is true while the spill path is active: set by the producer
	// (under the spill lock) when the ring overflows, cleared by the consumer
	// (under the same lock) once the spill is drained. While set, the
	// producer keeps diverting so FIFO order holds across the boundary.
	spilling atomic.Bool
	// spills counts messages that took the spill path, for tests and
	// saturation diagnostics.
	spills atomic.Int64
	// notify wakes the consumer; capacity 1 so a pending wakeup is never
	// lost and repeated kicks coalesce.
	notify chan struct{}
	closed atomic.Bool
}

// newHandoff builds an open handoff with the default ring capacity.
func newHandoff() *handoff {
	return &handoff{
		ring:   newSPSCRing(ringCapacity),
		spill:  newMailbox(),
		notify: make(chan struct{}, 1),
	}
}

// newBoundedHandoff is newHandoff with a capped overflow queue: once the
// ring is full AND the spill holds bound messages, further pushes are shed
// and counted into sink (total queued capacity is therefore ringCapacity +
// bound). A non-positive bound is unbounded.
func newBoundedHandoff(bound int, sink *atomic.Int64) *handoff {
	h := newHandoff()
	h.spill.bound = bound
	h.spill.shed = sink
	return h
}

// wake kicks the consumer if it is (or is about to start) blocking.
func (h *handoff) wake() {
	select {
	case h.notify <- struct{}{}:
	default:
	}
}

// push appends one message. It reports false if the handoff is closed. A push
// racing close may be accepted and yet never delivered (exactly as if it had
// returned false); both callers of push treat an undeliverable message as
// dropped-in-transit, so the race is benign.
func (h *handoff) push(m Message) bool {
	if h.closed.Load() {
		return false
	}
	if !h.spilling.Load() && h.ring.push(m) {
		h.wake()
		return true
	}
	// Ring full, or a spill is still draining: go through the unbounded
	// mailbox. Setting spilling under the spill lock pins this and every
	// subsequent push to the spill until the consumer drains it, so messages
	// cannot overtake the spilled backlog through the ring.
	h.spill.mu.Lock()
	if h.spill.closed {
		h.spill.mu.Unlock()
		return false
	}
	if h.spill.bound > 0 && len(h.spill.items) >= h.spill.bound {
		// Bounded handoff at capacity: shed-and-count, without activating
		// the spill path (the queue's content is unchanged). The caller
		// treats the rejection exactly like a closed-handoff drop and
		// releases whatever the message pinned.
		h.spill.mu.Unlock()
		if h.spill.shed != nil {
			h.spill.shed.Add(1)
		}
		return false
	}
	h.spilling.Store(true)
	h.spill.items = append(h.spill.items, m)
	h.spill.mu.Unlock()
	h.spills.Add(1)
	h.wake()
	return true
}

// drainSpill takes the whole spill queue in one slice swap and delivers it;
// when the spill turns out empty the spill path is deactivated (under the
// lock, so a producer mid-divert re-activates it consistently). Returns the
// number of messages delivered.
func (h *handoff) drainSpill(deliver func(Message)) int {
	h.spill.mu.Lock()
	batch := h.spill.items
	h.spill.items = nil
	if len(batch) == 0 {
		h.spilling.Store(false)
	}
	h.spill.mu.Unlock()
	for i := range batch {
		deliver(batch[i])
		batch[i] = Message{}
	}
	return len(batch)
}

// drainRuns delivers messages in FIFO order until the handoff is closed and
// drained. After every RUN of messages (one pass that emptied the ring and,
// if active, the spill) runEnd is invoked once before the consumer blocks —
// the same run boundary mailbox.drainRuns exposes, used by executor workers
// to flush their run-scoped ack coalescer.
func (h *handoff) drainRuns(deliver func(Message), runEnd func()) {
	for {
		n := 0
		for {
			m, ok := h.ring.pop()
			if !ok {
				break
			}
			deliver(m)
			n++
		}
		// The ring is drained; if a burst overflowed it, drain the spill too.
		// Ring-before-spill plus the producer's stay-diverted rule is what
		// keeps FIFO exact across the overflow boundary.
		if h.spilling.Load() {
			n += h.drainSpill(deliver)
			if n > 0 {
				runEnd()
			}
			// Re-check the ring immediately: the producer may have switched
			// back to it the moment the spill emptied.
			continue
		}
		if n > 0 {
			runEnd()
			continue
		}
		if h.closed.Load() {
			// Observing closed happens-after every push that preceded close,
			// but this iteration's emptiness checks may predate those pushes:
			// re-drain until ring and spill are empty AFTER the closed
			// observation, so a message queued before close is never lost.
			// (Pushes racing close itself are dropped-in-transit; see push.)
			if !h.ring.empty() || h.spilling.Load() {
				continue
			}
			return
		}
		<-h.notify
	}
}

// drain is drainRuns without a run callback.
func (h *handoff) drain(deliver func(Message)) {
	h.drainRuns(deliver, func() {})
}

// close marks the handoff closed and wakes the consumer so it can finish
// draining and exit. Idempotent; callable from any goroutine.
func (h *handoff) close() {
	h.closed.Store(true)
	h.spill.close()
	h.wake()
}
