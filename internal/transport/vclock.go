package transport

import (
	"fmt"
	"sync"
	"time"
)

// VirtualEpoch is the instant a VirtualClock starts at. It is a fixed,
// arbitrary date so that two simulations of the same scenario produce
// byte-identical timestamps (histories are compared and fingerprinted on
// them) regardless of when or where they run.
var VirtualEpoch = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)

// VirtualClock is a deterministic logical clock for simulation. Instead of
// sleeping, components schedule callbacks at virtual instants; a single
// driver goroutine repeatedly calls Step, which waits for the system to
// quiesce (no in-flight work) and then executes the earliest scheduled event,
// advancing virtual time instantly to its due instant. A "60-second" scenario
// therefore runs in milliseconds of wall time, and because exactly one event
// fires at a time — in a total (due time, schedule sequence) order — the
// delivery schedule is identical on every run with the same seed.
//
// Quiescence is tracked by an activity counter: every undelivered or
// unprocessed message holds one activity token from the moment the network
// hands it to a mailbox until its consumer calls Message.ReleaseArena (the
// token rides the existing arena retain/release discipline, which already
// marks exactly the hand-off points where a message changes hands). The
// clock never advances while a token is outstanding, so an event's entire
// causal cascade — handler runs, replies scheduled — finishes before the
// next event fires.
//
// Wall-clock prohibitions: code running under a VirtualClock must never
// consult time.Now for protocol-visible decisions, sleep, or arm wall
// timers (time.After, context.WithTimeout, context.AfterFunc). Timeouts are
// expressed as scheduled events that abort an operation via an
// already-cancelled context, which the pipeline engine honours
// synchronously.
type VirtualClock struct {
	mu       sync.Mutex
	cond     *sync.Cond // signalled when activity reaches zero
	now      time.Time
	seq      uint64
	events   vcHeap
	activity int
}

// vcEvent is one scheduled callback.
type vcEvent struct {
	at  time.Time
	seq uint64
	fn  func()
}

// vcHeap orders events by (due time, schedule sequence) — the same total
// order the wall-clock delay dispatcher uses, so virtual and wall modes
// deliver equal-delay messages identically.
type vcHeap []vcEvent

func (h vcHeap) before(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h *vcHeap) push(e vcEvent) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).before(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *vcHeap) pop() vcEvent {
	out := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	(*h)[last] = vcEvent{}
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(*h) && (*h).before(l, smallest) {
			smallest = l
		}
		if r < len(*h) && (*h).before(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return out
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

// NewVirtualClock returns a clock positioned at VirtualEpoch with no events.
func NewVirtualClock() *VirtualClock {
	c := &VirtualClock{now: VirtualEpoch}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Now returns the current virtual time. Safe for concurrent use.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Schedule queues fn to run d after the current virtual instant (a
// non-positive d schedules it "now", still behind already-queued events for
// the same instant). fn runs on the driver goroutine inside Step; it must
// not block on work that itself needs the clock to advance.
func (c *VirtualClock) Schedule(d time.Duration, fn func()) {
	c.mu.Lock()
	at := c.now
	if d > 0 {
		at = at.Add(d)
	}
	c.seq++
	c.events.push(vcEvent{at: at, seq: c.seq, fn: fn})
	c.mu.Unlock()
}

// PendingEvents returns the number of scheduled events not yet executed.
func (c *VirtualClock) PendingEvents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

// begin takes one activity token; the clock will not fire further events
// until it is returned with end.
func (c *VirtualClock) begin() {
	c.mu.Lock()
	c.activity++
	c.mu.Unlock()
}

// end returns an activity token taken with begin.
func (c *VirtualClock) end() {
	c.mu.Lock()
	c.activity--
	if c.activity == 0 {
		c.cond.Broadcast()
	}
	if c.activity < 0 {
		c.mu.Unlock()
		panic("transport: virtual clock activity underflow")
	}
	c.mu.Unlock()
}

// Step waits (up to maxIdleWait of wall time) for activity to quiesce, then
// executes the earliest scheduled event, advancing virtual time to its due
// instant. It returns false when no events remain. A non-nil error means the
// system failed to quiesce — some component is stuck holding an activity
// token, which under a virtual clock indicates a genuine deadlock or a
// wall-clock sleep that must not exist in simulation.
//
// Step must only ever be called from one goroutine (the simulation driver).
func (c *VirtualClock) Step(maxIdleWait time.Duration) (bool, error) {
	timedOut := false
	var watchdog *time.Timer
	if maxIdleWait > 0 {
		watchdog = time.AfterFunc(maxIdleWait, func() {
			c.mu.Lock()
			timedOut = true
			c.mu.Unlock()
			c.cond.Broadcast()
		})
		defer watchdog.Stop()
	}
	c.mu.Lock()
	for c.activity > 0 && !timedOut {
		c.cond.Wait()
	}
	if c.activity > 0 {
		n := c.activity
		c.mu.Unlock()
		return false, fmt.Errorf("transport: virtual clock stalled: %d activity tokens outstanding after %v", n, maxIdleWait)
	}
	if len(c.events) == 0 {
		c.mu.Unlock()
		return false, nil
	}
	ev := c.events.pop()
	if ev.at.After(c.now) {
		c.now = ev.at
	}
	c.mu.Unlock()
	ev.fn()
	return true, nil
}

// RunNext is Step without a watchdog: it blocks until quiescent, then fires
// the next event. Intended for tests; simulations should use Step with a
// wall-clock bound so a stall surfaces as an error instead of a hang.
func (c *VirtualClock) RunNext() bool {
	ran, _ := c.Step(0)
	return ran
}
