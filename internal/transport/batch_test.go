package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fastread/internal/types"
	"fastread/internal/wire"
)

// encodedMsg builds a distinct encoded protocol message for batching tests.
func encodedMsg(op wire.Op, key string, rc int64) []byte {
	return wire.MustEncode(&wire.Message{Op: op, Key: key, RCounter: rc})
}

func TestExpandSingleAndBatch(t *testing.T) {
	single := Message{From: types.Server(1), To: types.Reader(1), Kind: "readack", Payload: encodedMsg(wire.OpReadAck, "", 1)}
	var got []Message
	Expand(single, func(m Message) { got = append(got, m) })
	if len(got) != 1 || &got[0].Payload[0] != &single.Payload[0] {
		t.Fatalf("single message not passed through untouched: %v", got)
	}

	b := wire.NewBatch(0)
	p1 := encodedMsg(wire.OpReadAck, "a", 1)
	p2 := encodedMsg(wire.OpReadAck, "b", 2)
	b.Append(p1)
	b.Append(p2)
	batched := Message{From: types.Server(2), To: types.Reader(1), Kind: wire.BatchKind, Payload: b.Bytes()}
	got = nil
	Expand(batched, func(m Message) { got = append(got, m) })
	if len(got) != 2 {
		t.Fatalf("batch expanded to %d messages, want 2", len(got))
	}
	for i, m := range got {
		if m.From != batched.From || m.To != batched.To {
			t.Errorf("sub-message %d lost its addressing: %v", i, m)
		}
	}
	k1, _ := wire.PeekKey(got[0].Payload)
	k2, _ := wire.PeekKey(got[1].Payload)
	if k1 != "a" || k2 != "b" {
		t.Errorf("sub-message order/content wrong: keys %q %q", k1, k2)
	}

	// A malformed envelope expands to nothing (dropped, like any
	// undecodable payload).
	bad := Message{Payload: []byte{0xB7, 9, 0, 0, 0}}
	got = nil
	Expand(bad, func(m Message) { got = append(got, m) })
	if len(got) != 0 {
		t.Errorf("malformed envelope yielded %d messages", len(got))
	}
}

// recordingNode captures Sends for coalescer tests.
type recordingNode struct {
	mu    sync.Mutex
	sends []Message
}

func (r *recordingNode) ID() types.ProcessID { return types.Server(1) }
func (r *recordingNode) Send(to types.ProcessID, kind string, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sends = append(r.sends, Message{To: to, Kind: kind, Payload: payload})
	return nil
}
func (r *recordingNode) Inbox() <-chan Message { return nil }
func (r *recordingNode) Close() error          { return nil }

func TestCoalescerSingleMessagePassesThrough(t *testing.T) {
	node := &recordingNode{}
	co := NewCoalescer(node)
	payload := encodedMsg(wire.OpReadAck, "", 7)
	if err := co.Send(types.Reader(1), "readack", payload); err != nil {
		t.Fatal(err)
	}
	co.Flush()
	if len(node.sends) != 1 {
		t.Fatalf("%d sends, want 1", len(node.sends))
	}
	s := node.sends[0]
	// The lone message of a run must leave EXACTLY as a direct send would:
	// same kind, same payload slice, no envelope.
	if s.Kind != "readack" || wire.IsBatch(s.Payload) || &s.Payload[0] != &payload[0] {
		t.Fatalf("single message was wrapped or copied: kind=%q batch=%v", s.Kind, wire.IsBatch(s.Payload))
	}
	if co.Pending() != 0 {
		t.Fatalf("coalescer not reset after flush: %d pending", co.Pending())
	}
}

func TestCoalescerBatchesPerDestination(t *testing.T) {
	node := &recordingNode{}
	co := NewCoalescer(node)
	// Three messages to reader 1, one to reader 2, interleaved.
	_ = co.Send(types.Reader(1), "readack", encodedMsg(wire.OpReadAck, "", 1))
	_ = co.Send(types.Reader(2), "readack", encodedMsg(wire.OpReadAck, "", 9))
	_ = co.Send(types.Reader(1), "readack", encodedMsg(wire.OpReadAck, "", 2))
	_ = co.Send(types.Reader(1), "readack", encodedMsg(wire.OpReadAck, "", 3))
	co.Flush()

	if len(node.sends) != 2 {
		t.Fatalf("%d sends, want 2 (one per destination)", len(node.sends))
	}
	// First-touch order: reader 1 first.
	first, second := node.sends[0], node.sends[1]
	if first.To != types.Reader(1) || second.To != types.Reader(2) {
		t.Fatalf("destinations out of first-touch order: %v then %v", first.To, second.To)
	}
	if !wire.IsBatch(first.Payload) || first.Kind != wire.BatchKind {
		t.Fatal("multi-message destination not batched")
	}
	var rcs []int64
	_ = wire.ForEachInBatch(first.Payload, func(p []byte) error {
		m, err := wire.Decode(p)
		if err != nil {
			return err
		}
		rcs = append(rcs, m.RCounter)
		return nil
	})
	if len(rcs) != 3 || rcs[0] != 1 || rcs[1] != 2 || rcs[2] != 3 {
		t.Fatalf("batched order wrong: %v", rcs)
	}
	if wire.IsBatch(second.Payload) {
		t.Fatal("lone message to reader 2 was wrapped")
	}

	// A payload that is itself a batch splices flat.
	inner := wire.NewBatch(0)
	inner.Append(encodedMsg(wire.OpReadAck, "", 4))
	inner.Append(encodedMsg(wire.OpReadAck, "", 5))
	_ = co.Send(types.Reader(1), "readack", encodedMsg(wire.OpReadAck, "", 6))
	_ = co.Send(types.Reader(1), wire.BatchKind, inner.Bytes())
	co.Flush()
	last := node.sends[len(node.sends)-1]
	n, err := wire.BatchCount(last.Payload)
	if err != nil || n != 3 {
		t.Fatalf("splice produced count %d (%v), want 3 flat messages", n, err)
	}
}

func TestExecutorRunCoalescingFlushesPerRun(t *testing.T) {
	net := NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	srvNode, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}

	keyOf := func(m Message) ([]byte, bool) {
		k, err := wire.PeekKeyView(m.Payload)
		return k, err == nil
	}
	// Echo server: acks every request through the run-scoped sender.
	exec := NewExecutor(srvNode, keyOf, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		exec.RunCoalescing(func(m Message, out Sender) {
			req, err := wire.Decode(m.Payload)
			if err != nil {
				return
			}
			ack := &wire.Message{Op: wire.OpReadAck, Key: req.Key, RCounter: req.RCounter}
			_ = out.Send(m.From, ack.Kind(), wire.MustEncode(ack))
		})
	}()

	const msgs = 200
	for i := 0; i < msgs; i++ {
		// One key so every message lands on one worker and acks coalesce.
		if err := client.Send(types.Server(1), "read", encodedMsg(wire.OpRead, "k", int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	// Collect all acks (client side expands batches like every consumer).
	got := make(map[int64]bool)
	timeout := time.After(10 * time.Second)
	for len(got) < msgs {
		select {
		case m, ok := <-client.Inbox():
			if !ok {
				t.Fatal("client inbox closed early")
			}
			Expand(m, func(sub Message) {
				ack, err := wire.Decode(sub.Payload)
				if err != nil {
					t.Errorf("undecodable ack: %v", err)
					return
				}
				if got[ack.RCounter] {
					t.Errorf("duplicate ack rc=%d", ack.RCounter)
				}
				got[ack.RCounter] = true
			})
		case <-timeout:
			t.Fatalf("received %d of %d acks", len(got), msgs)
		}
	}
	_ = srvNode.Close()
	<-done
}

// TestInMemBatchingPumpCoalesces checks the WithBatching pump: a backlog of
// same-sender messages drains as one batch delivery, per-link order intact,
// while interleaved senders split groups.
func TestInMemBatchingPumpCoalesces(t *testing.T) {
	net := NewInMemNetwork(WithBatching())
	t.Cleanup(func() { _ = net.Close() })
	dst, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}

	// Stuff a backlog while the consumer is not reading: the pump's first
	// handoff blocks on the unread channel, so everything behind it piles up
	// in the mailbox and the NEXT handoff must be a coalesced run.
	const burst = 50
	for i := 1; i <= burst; i++ {
		if err := s1.Send(types.Reader(1), "m", encodedMsg(wire.OpReadAck, "", int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	var rcs []int64
	deliveries := 0
	deadline := time.After(10 * time.Second)
	for len(rcs) < burst {
		select {
		case m, ok := <-dst.Inbox():
			if !ok {
				t.Fatal("inbox closed early")
			}
			deliveries++
			Expand(m, func(sub Message) {
				msg, err := wire.Decode(sub.Payload)
				if err != nil {
					t.Fatalf("undecodable delivery: %v", err)
				}
				rcs = append(rcs, msg.RCounter)
			})
		case <-deadline:
			t.Fatalf("got %d of %d messages", len(rcs), burst)
		}
	}
	for i, rc := range rcs {
		if rc != int64(i+1) {
			t.Fatalf("order broken at %d: got rc=%d", i, rc)
		}
	}
	if deliveries >= burst {
		t.Errorf("pump made %d deliveries for %d messages; backlog did not coalesce", deliveries, burst)
	}
}

// TestInMemBatchingPreservesCrossSenderOrder: grouping is only ever of
// CONSECUTIVE same-sender messages, so deliveries from different senders
// keep their arrival interleaving.
func TestInMemBatchingPreservesCrossSenderOrder(t *testing.T) {
	net := NewInMemNetwork(WithBatching())
	t.Cleanup(func() { _ = net.Close() })
	dst, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	senders := make([]Node, 3)
	for i := range senders {
		n, err := net.Join(types.Server(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		senders[i] = n
	}
	// Strict alternation: s1,s2,s3,s1,s2,s3,... sent from one goroutine so
	// arrival order is the send order.
	const rounds = 30
	for r := 0; r < rounds; r++ {
		for i, s := range senders {
			rc := int64(r*len(senders) + i + 1)
			if err := s.Send(types.Reader(1), "m", encodedMsg(wire.OpReadAck, fmt.Sprintf("s%d", i+1), rc)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var rcs []int64
	deadline := time.After(10 * time.Second)
	for len(rcs) < rounds*len(senders) {
		select {
		case m, ok := <-dst.Inbox():
			if !ok {
				t.Fatal("inbox closed early")
			}
			Expand(m, func(sub Message) {
				msg, err := wire.Decode(sub.Payload)
				if err != nil {
					t.Fatalf("undecodable delivery: %v", err)
				}
				rcs = append(rcs, msg.RCounter)
			})
		case <-deadline:
			t.Fatalf("got %d of %d", len(rcs), rounds*len(senders))
		}
	}
	for i, rc := range rcs {
		if rc != int64(i+1) {
			t.Fatalf("global arrival order broken at %d: got rc=%d", i, rc)
		}
	}
}

// TestDemuxRoutesBatchedAcksPerKey: a batch whose messages name DIFFERENT
// registers must be split and routed each to its own key's route.
func TestDemuxRoutesBatchedAcksPerKey(t *testing.T) {
	net := NewInMemNetwork()
	t.Cleanup(func() { _ = net.Close() })
	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}

	keyOf := func(m Message) ([]byte, bool) {
		k, err := wire.PeekKeyView(m.Payload)
		return k, err == nil
	}
	d := NewDemux(client, keyOf, 0)
	t.Cleanup(func() { _ = d.Close() })
	routeA := d.Route("a")
	routeB := d.Route("b")

	b := wire.NewBatch(0)
	b.Append(encodedMsg(wire.OpReadAck, "a", 1))
	b.Append(encodedMsg(wire.OpReadAck, "b", 2))
	b.Append(encodedMsg(wire.OpReadAck, "a", 3))
	if err := srv.Send(types.Reader(1), wire.BatchKind, b.Bytes()); err != nil {
		t.Fatal(err)
	}

	expect := func(route Node, wantRCs ...int64) {
		t.Helper()
		for _, want := range wantRCs {
			select {
			case m := <-route.Inbox():
				msg, err := wire.Decode(m.Payload)
				if err != nil {
					t.Fatalf("undecodable routed message: %v", err)
				}
				if msg.RCounter != want {
					t.Fatalf("route got rc=%d, want %d", msg.RCounter, want)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("route starved waiting for rc=%d", want)
			}
		}
	}
	expect(routeA, 1, 3)
	expect(routeB, 2)
}
