package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"fastread/internal/types"
)

// demuxKeyFunc routes by the payload's leading byte count prefix: payloads
// are "key|rest" and the key is everything before the '|'.
func demuxKeyFunc(m Message) ([]byte, bool) {
	for i, b := range m.Payload {
		if b == '|' {
			return m.Payload[:i], true
		}
	}
	return nil, false
}

func recvTimeout(t *testing.T, ch <-chan Message) Message {
	t.Helper()
	select {
	case m, ok := <-ch:
		if !ok {
			t.Fatal("inbox closed unexpectedly")
		}
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a routed message")
		return Message{}
	}
}

func TestDemuxRoutesByKey(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	server, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	client, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux(client, demuxKeyFunc, 0)

	routeA := d.Route("a")
	routeB := d.Route("b")
	if d.Route("a") != routeA {
		t.Error("Route is not idempotent per key")
	}
	if routeA.ID() != client.ID() {
		t.Errorf("virtual node id %v, want %v", routeA.ID(), client.ID())
	}

	for i := 0; i < 3; i++ {
		if err := server.Send(types.Writer(), "m", []byte(fmt.Sprintf("a|%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := server.Send(types.Writer(), "m", []byte(fmt.Sprintf("b|%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Unroutable payloads and payloads for unregistered keys are dropped.
	if err := server.Send(types.Writer(), "m", []byte("no separator")); err != nil {
		t.Fatal(err)
	}
	if err := server.Send(types.Writer(), "m", []byte("c|orphan")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		if got := string(recvTimeout(t, routeA.Inbox()).Payload); got != fmt.Sprintf("a|%d", i) {
			t.Errorf("route a received %q", got)
		}
		if got := string(recvTimeout(t, routeB.Inbox()).Payload); got != fmt.Sprintf("b|%d", i) {
			t.Errorf("route b received %q", got)
		}
	}
}

func TestDemuxSendPassesThrough(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	server, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	client, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux(client, demuxKeyFunc, 0)
	route := d.Route("k")
	if err := route.Send(types.Server(1), "req", []byte("k|ping")); err != nil {
		t.Fatal(err)
	}
	got := recvTimeout(t, server.Inbox())
	if string(got.Payload) != "k|ping" || got.From != types.Writer() {
		t.Errorf("server received %v payload %q", got.From, got.Payload)
	}
}

func TestDemuxRouteCloseIsIndependent(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	server, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	client, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux(client, demuxKeyFunc, 0)
	routeA := d.Route("a")
	routeB := d.Route("b")

	if err := routeA.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-routeA.Inbox(); ok {
		t.Error("closed route still delivers")
	}
	// Route b (and the physical node) keep working.
	if err := server.Send(types.Writer(), "m", []byte("b|still alive")); err != nil {
		t.Fatal(err)
	}
	if got := string(recvTimeout(t, routeB.Inbox()).Payload); got != "b|still alive" {
		t.Errorf("route b received %q", got)
	}
	// Closing a route and re-routing the key yields a fresh route.
	fresh := d.Route("a")
	if fresh == routeA {
		t.Error("Route returned the closed route")
	}
	if err := server.Send(types.Writer(), "m", []byte("a|rejoined")); err != nil {
		t.Fatal(err)
	}
	if got := string(recvTimeout(t, fresh.Inbox()).Payload); got != "a|rejoined" {
		t.Errorf("fresh route received %q", got)
	}
}

func TestDemuxCloseClosesRoutes(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	client, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux(client, demuxKeyFunc, 0)
	route := d.Route("a")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-route.Inbox():
		if ok {
			t.Error("route delivered a message after demux close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("route inbox not closed by demux close")
	}
	// Routes requested after close are born closed.
	if _, ok := <-d.Route("late").Inbox(); ok {
		t.Error("post-close route delivers")
	}
}

// TestDemuxConcurrentCloseAndDeliver races route closes against the pump to
// catch send-on-closed-channel panics.
func TestDemuxConcurrentCloseAndDeliver(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	server, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatal(err)
	}
	client, err := net.Join(types.Writer())
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux(client, demuxKeyFunc, 4)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = server.Send(types.Writer(), "m", []byte(fmt.Sprintf("k%d|x", i%8)))
		}
	}()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i%8)
		rt := d.Route(key)
		_ = rt.Close()
	}
	close(stop)
	wg.Wait()
}

// TestDemuxRouteSurvivesBurstBacklog regression-tests the unbounded route
// queue: a server that lags behind the quorum can flush thousands of
// acknowledgements at a client in one burst while the client is not draining.
// With the old bounded route buffer the flood forced drops — including,
// fatally, the in-flight operation's fresh acks — and permanently starved
// the client. Every burst message must now survive until the consumer gets
// around to draining, in order.
func TestDemuxRouteSurvivesBurstBacklog(t *testing.T) {
	const burst = 5000 // far beyond DefaultRouteBuffer

	net := NewInMemNetwork()
	defer net.Close()
	client, err := net.Join(types.Reader(1))
	if err != nil {
		t.Fatalf("join client: %v", err)
	}
	server, err := net.Join(types.Server(1))
	if err != nil {
		t.Fatalf("join server: %v", err)
	}

	d := NewDemux(client, demuxKeyFunc, 0)
	defer d.Close()
	route := d.Route("k")

	// Flood without draining: everything must queue in the route's mailbox.
	for i := 0; i < burst; i++ {
		if err := server.Send(types.Reader(1), "ack", []byte(fmt.Sprintf("k|%d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}

	for i := 0; i < burst; i++ {
		m := recvTimeout(t, route.Inbox())
		if want := fmt.Sprintf("k|%d", i); string(m.Payload) != want {
			t.Fatalf("message %d: got %q, want %q — burst reordered or dropped", i, m.Payload, want)
		}
	}
}
