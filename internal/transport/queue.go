package transport

import "sync"

// mailbox is an unbounded FIFO queue of messages with a channel-based
// delivery side.
//
// The asynchronous model requires that a sender never blocks on a slow
// receiver (a correct process keeps taking steps regardless of what other
// processes do). A fixed-capacity channel cannot provide that, so each node
// owns a mailbox: producers append under a mutex, and a single pump goroutine
// forwards messages to the node's delivery channel in order.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	closed bool
}

// newMailbox returns an empty, open mailbox.
func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push appends a message. It reports false if the mailbox is already closed.
func (m *mailbox) push(msg Message) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.items = append(m.items, msg)
	m.cond.Signal()
	return true
}

// pop blocks until a message is available or the mailbox is closed. The
// second return value is false once the mailbox is closed and drained.
func (m *mailbox) pop() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return Message{}, false
	}
	msg := m.items[0]
	// Avoid retaining the payload of the popped slot.
	m.items[0] = Message{}
	m.items = m.items[1:]
	if len(m.items) == 0 {
		// Reset the backing array so the slice does not grow without bound
		// across bursts.
		m.items = nil
	}
	return msg, true
}

// close marks the mailbox closed. Messages already queued are still
// delivered; subsequent pushes are dropped.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.cond.Broadcast()
}

// len returns the number of queued messages.
func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}
