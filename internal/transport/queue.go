package transport

import (
	"sync"
	"sync/atomic"
)

// maxRetainedBatch bounds the capacity of the batch buffer a drain loop
// recycles between popAll calls. A burst can grow a batch arbitrarily; once
// processed, a buffer larger than this is dropped so the burst's memory is
// returned to the allocator instead of being pinned for the consumer's
// lifetime.
const maxRetainedBatch = 1024

// mailbox is an unbounded FIFO queue of messages with a channel-based
// delivery side.
//
// The asynchronous model requires that a sender never blocks on a slow
// receiver (a correct process keeps taking steps regardless of what other
// processes do). A fixed-capacity channel cannot provide that, so each node
// owns a mailbox: producers append under a mutex, and a single pump goroutine
// forwards messages to the node's delivery channel in order.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	closed bool

	// hw is the high-water mark of queued-but-undrained messages. Overload
	// on an unbounded mailbox is otherwise silent: the queue grows, nothing
	// drops, latency just disappears into it. The mark is the cheapest
	// honest signal (one comparison per push) and is surfaced through
	// Store.Stats as MailboxHighWater.
	hw int

	// bound, when positive, caps the queue depth: a push that would exceed
	// it is rejected and counted into shed instead of growing the queue.
	// The asynchronous model's "senders never block" rule is preserved —
	// an over-bound push returns immediately; the message is simply lost,
	// exactly as a lossy network would lose it, and the protocols already
	// tolerate loss via quorum slack. A bounded mailbox therefore also
	// bounds its own high-water mark. Zero means unbounded (the default
	// everywhere; overload control is strictly opt-in because a bound on a
	// CLIENT-side queue can drop quorum-completing acks — see the demux
	// route-starvation history in PR 3/PR 5).
	bound int
	shed  *atomic.Int64
}

// newMailbox returns an empty, open, unbounded mailbox.
func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// newBoundedMailbox returns a mailbox that sheds pushes beyond bound queued
// messages, counting each shed into sink. A non-positive bound is unbounded.
func newBoundedMailbox(bound int, sink *atomic.Int64) *mailbox {
	m := newMailbox()
	m.bound = bound
	m.shed = sink
	return m
}

// push appends a message. It reports false if the mailbox is already closed,
// or if the mailbox is bounded and full (the shed is counted; the caller
// releases any resources it pinned for the message, mirroring a closed-box
// rejection).
func (m *mailbox) push(msg Message) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	if m.bound > 0 && len(m.items) >= m.bound {
		if m.shed != nil {
			m.shed.Add(1)
		}
		return false
	}
	m.items = append(m.items, msg)
	if len(m.items) > m.hw {
		m.hw = len(m.items)
	}
	m.cond.Signal()
	return true
}

// highWater returns the deepest the queue has ever been.
func (m *mailbox) highWater() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hw
}

// pop blocks until a message is available or the mailbox is closed. The
// second return value is false once the mailbox is closed and drained.
func (m *mailbox) pop() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return Message{}, false
	}
	msg := m.items[0]
	// Avoid retaining the payload of the popped slot.
	m.items[0] = Message{}
	m.items = m.items[1:]
	if len(m.items) == 0 {
		// Reset the backing array so the slice does not grow without bound
		// across bursts.
		m.items = nil
	}
	return msg, true
}

// popAll blocks until at least one message is available (or the mailbox is
// closed and drained), then takes the ENTIRE queue in one O(1) slice swap:
// the caller receives the queued batch and the mailbox adopts buf (length 0)
// as its new backing array. Callers hand back the previous batch — cleared —
// as buf, so steady-state batching ping-pongs between two arrays and
// allocates nothing. The second return value is false once the mailbox is
// closed and drained.
//
// Compared with calling pop in a loop, one lock/condvar synchronisation is
// paid per RUN of messages instead of per message. The caller owns the
// returned batch outright; it must not retain it past the next popAll call
// with the same buffer.
func (m *mailbox) popAll(buf []Message) ([]Message, bool) {
	m.mu.Lock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		m.mu.Unlock()
		return nil, false
	}
	batch := m.items
	m.items = buf[:0]
	m.mu.Unlock()
	return batch, true
}

// drain delivers the mailbox's messages in FIFO order, in batches, until the
// mailbox is closed and empty. It owns the batch-buffer recycling
// discipline shared by every consumer loop (node pumps, demux route
// forwarders, executor workers): one popAll per run of messages, entries
// zeroed after delivery so the recycled buffer does not pin payloads, and
// oversized burst buffers dropped (maxRetainedBatch) so a burst's memory is
// returned to the allocator.
func (m *mailbox) drain(deliver func(Message)) {
	var buf []Message
	for {
		batch, ok := m.popAll(buf)
		if !ok {
			return
		}
		for i := range batch {
			deliver(batch[i])
			batch[i] = Message{}
		}
		buf = batch
		if cap(buf) > maxRetainedBatch {
			buf = nil
		}
	}
}

// drainRuns is drain with a run boundary: after every batched pop's messages
// have been delivered, runEnd is invoked once before the next blocking pop.
// Executor workers use it to flush their run-scoped ack coalescer.
func (m *mailbox) drainRuns(deliver func(Message), runEnd func()) {
	var buf []Message
	for {
		batch, ok := m.popAll(buf)
		if !ok {
			return
		}
		for i := range batch {
			deliver(batch[i])
			batch[i] = Message{}
		}
		runEnd()
		buf = batch
		if cap(buf) > maxRetainedBatch {
			buf = nil
		}
	}
}

// close marks the mailbox closed. Messages already queued are still
// delivered; subsequent pushes are dropped.
func (m *mailbox) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.cond.Broadcast()
}

// len returns the number of queued messages.
func (m *mailbox) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}
