package transport

import (
	"sync"
	"sync/atomic"

	"fastread/internal/types"
)

// KeyFunc extracts the multiplexing key from a delivered message. The
// returned bytes may ALIAS the message payload (consumers only ever hash
// them or use them for map lookups, so routing stays allocation-free); a nil
// key with ok=true is the empty key. Returning ok=false drops the message
// (e.g. an undecodable payload); the demultiplexer itself never inspects
// payloads.
type KeyFunc func(Message) (key []byte, ok bool)

// DefaultRouteBuffer is the capacity of the per-route delivery channel used
// when NewDemux is given a non-positive one. The channel is only the handoff
// between a route's forwarder and its consumer — the route's queue proper is
// an unbounded mailbox — so the capacity merely smooths bursts; 256 covers
// several operations' worth of acknowledgements for any realistic server
// count.
const DefaultRouteBuffer = 256

// routeMap is the copy-on-write key→route table. Route open/close copies it
// under the demux mutex; the pump reads it through an atomic pointer without
// locking (mirroring the in-memory network's node table).
type routeMap map[string]*demuxRoute

// Demux multiplexes one physical transport node into many virtual nodes, one
// per register key. It is the client-side half of the multi-register store:
// a single writer (or reader) process joins the network once, and its
// per-register protocol clients each operate on a virtual node that sees
// only the messages carrying their register's key.
//
// Outbound messages pass straight through to the physical node (the payload
// already carries the key, stamped by the protocol client). Inbound messages
// are routed by a single pump goroutine: it reads the physical inbox,
// extracts the key with the KeyFunc, and pushes to the matching route's
// unbounded mailbox. Messages for keys with no active route are dropped,
// which the asynchronous model permits (they are indistinguishable from
// messages delayed forever).
//
// Each route queues through an SPSC handoff (ring.go): a lock-free bounded
// ring for the steady state, spilling to an UNBOUNDED mailbox on overflow.
// Unbounded queueing remains a correctness requirement, not a convenience: a
// server lagging behind the quorum can accumulate a long request backlog and
// then flush its acknowledgements in one burst, and with a purely bounded
// route buffer that flood forced a drop policy — either end of the queue —
// that could discard the in-flight operation's quorum-completing acks and
// starve the client forever. With the ring+spill handoff, the pump never
// blocks and never drops; a backlog costs memory briefly and is reclaimed as
// the consumer drains.
//
// The per-message path takes no demux-wide lock: the route table is
// copy-on-write (the Demux mutex is only taken when a route is opened or
// closed), and the mailbox push is the same short per-route lock a node's
// own inbox takes.
type Demux struct {
	node  Node
	keyOf KeyFunc
	buf   int

	routes atomic.Pointer[routeMap]

	// mu guards route open/close (table copy + swap) and the closed flag.
	// The pump never takes it.
	mu     sync.Mutex
	closed bool

	// routeBound, when positive, caps each route's overflow queue
	// (shed-and-count; see SetRouteBound). sheds is shared by every route
	// so counts survive route close and node rejoin.
	routeBound int
	sheds      atomic.Int64

	done chan struct{}
}

// NewDemux wraps a physical node and starts the routing pump. buf is the
// per-route delivery channel capacity (DefaultRouteBuffer if <= 0).
func NewDemux(node Node, keyOf KeyFunc, buf int) *Demux {
	if buf <= 0 {
		buf = DefaultRouteBuffer
	}
	d := &Demux{
		node:  node,
		keyOf: keyOf,
		buf:   buf,
		done:  make(chan struct{}),
	}
	empty := make(routeMap)
	d.routes.Store(&empty)
	go d.pump()
	return d
}

// pump routes every delivered message to its key's route until the physical
// node closes, then closes every route. Batch envelopes are expanded first
// (a server's coalesced acknowledgement burst may span registers, so each
// carried message is routed by ITS key). The table lookup is lock-free; see
// Demux.
func (d *Demux) pump() {
	defer close(d.done)
	route := func(m Message) {
		key, ok := d.keyOf(m)
		if !ok {
			return
		}
		// map[string]-lookup on a byte key compiles to a zero-allocation
		// access; the string is never materialised.
		if rt := (*d.routes.Load())[string(key)]; rt != nil {
			// The queued copy carries its own arena reference (several routes
			// may hold views of one envelope's frame); the route's consumer
			// releases it. A rejected push (route already closed) gives the
			// reference straight back.
			m.RetainArena()
			if !rt.box.push(m) {
				m.ReleaseArena()
			}
		}
	}
	for msg := range d.node.Inbox() {
		Expand(msg, route)
		msg.ReleaseArena()
	}
	d.mu.Lock()
	d.closed = true
	routes := *d.routes.Load()
	empty := make(routeMap)
	d.routes.Store(&empty)
	d.mu.Unlock()
	for _, rt := range routes {
		rt.shutdown()
	}
	for _, rt := range routes {
		<-rt.done
	}
}

// Node returns the underlying physical node.
func (d *Demux) Node() Node { return d.node }

// SetRouteBound caps the overflow queue of every route opened AFTER the
// call at n messages (on top of each route's fixed ring capacity); pushes
// beyond the cap are shed and counted (Sheds). n <= 0 restores unbounded.
// Existing routes keep their previous policy.
//
// A bounded route DROPS messages, including acknowledgements that would
// have completed a quorum — the exact failure PR 3's starvation fix removed
// — so it is safe only where the protocol already tolerates message loss
// (the client retries or the operation's context expires) and is strictly
// opt-in, for deployments that prefer bounded memory plus shed counters
// over unbounded queueing under overload.
func (d *Demux) SetRouteBound(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 {
		n = 0
	}
	d.routeBound = n
}

// Sheds returns the number of messages shed by bounded routes over the
// demux's lifetime (0 unless SetRouteBound was used).
func (d *Demux) Sheds() int64 { return d.sheds.Load() }

// Route returns the virtual node for the given register key, creating it on
// first use. Calling Route again with the same key returns the same virtual
// node until that node is closed. After the demux (or physical node) closes,
// Route returns a virtual node whose inbox is already closed (or about to
// close: its forwarder exits as soon as it observes the closed mailbox).
func (d *Demux) Route(key string) Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	old := *d.routes.Load()
	if rt, ok := old[key]; ok {
		return rt
	}
	rt := newDemuxRoute(d, key)
	if d.closed {
		rt.shutdown()
		return rt
	}
	next := make(routeMap, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = rt
	d.routes.Store(&next)
	return rt
}

// Close closes the physical node; the pump then drains and closes every
// route. It is idempotent.
func (d *Demux) Close() error {
	err := d.node.Close()
	<-d.done
	return err
}

// demuxRoute is the virtual per-key node handed to protocol clients: a
// lock-free SPSC handoff (the pump is its single producer, the forwarder its
// single consumer; bursts spill to an unbounded mailbox so nothing is ever
// dropped — see ring.go) drained by the route's forwarder goroutine into the
// delivery channel.
type demuxRoute struct {
	demux *Demux
	key   string
	box   *handoff
	inbox chan Message

	closeOnce sync.Once
	done      chan struct{}
}

var _ Node = (*demuxRoute)(nil)

// newDemuxRoute builds a route and starts its forwarder.
func newDemuxRoute(d *Demux, key string) *demuxRoute {
	box := newHandoff()
	if d.routeBound > 0 {
		box = newBoundedHandoff(d.routeBound, &d.sheds)
	}
	rt := &demuxRoute{
		demux: d,
		key:   key,
		box:   box,
		inbox: make(chan Message, d.buf),
		done:  make(chan struct{}),
	}
	go rt.forward()
	return rt
}

// forward moves messages from the route's mailbox to its delivery channel in
// batches, exactly like a node's pump; it exits — closing the channel — once
// the mailbox is closed and drained.
func (rt *demuxRoute) forward() {
	defer close(rt.done)
	defer close(rt.inbox)
	rt.box.drain(func(m Message) { rt.inbox <- m })
}

// shutdown closes the route's mailbox and unblocks its forwarder even if the
// consumer stopped reading the delivery channel. Idempotent.
func (rt *demuxRoute) shutdown() {
	rt.closeOnce.Do(func() {
		rt.box.close()
		// Drain the delivery channel so the forwarder can exit even if the
		// owner stopped reading (mirrors inMemNode.Close); undelivered
		// messages give back their arena references here.
		go func() {
			for m := range rt.inbox {
				m.ReleaseArena()
			}
		}()
	})
}

// ID returns the identity of the underlying physical node: a virtual node is
// the same process, talking about a different register.
func (rt *demuxRoute) ID() types.ProcessID { return rt.demux.node.ID() }

// Send transmits through the physical node.
func (rt *demuxRoute) Send(to types.ProcessID, kind string, payload []byte) error {
	return rt.demux.node.Send(to, kind, payload)
}

// Inbox returns this key's message stream.
func (rt *demuxRoute) Inbox() <-chan Message { return rt.inbox }

// Close detaches this key's route from the demux. The physical node and the
// other keys' routes are unaffected.
func (rt *demuxRoute) Close() error {
	d := rt.demux
	d.mu.Lock()
	old := *d.routes.Load()
	if old[rt.key] == rt {
		next := make(routeMap, len(old))
		for k, v := range old {
			if k != rt.key {
				next[k] = v
			}
		}
		d.routes.Store(&next)
	}
	d.mu.Unlock()
	rt.shutdown()
	<-rt.done
	return nil
}
