package transport

import (
	"sync"

	"fastread/internal/types"
)

// KeyFunc extracts the multiplexing key from a delivered message. Returning
// ok=false drops the message (e.g. an undecodable payload); the demultiplexer
// itself never inspects payloads.
type KeyFunc func(Message) (key string, ok bool)

// DefaultRouteBuffer is the per-route inbox capacity used when NewDemux is
// given a non-positive one. A client has at most one operation in flight per
// route (handles serialise their operations), and one operation solicits at
// most S acknowledgements, so a route never holds more than a couple of
// operations' worth of messages; 256 leaves a wide margin for any realistic
// server count.
const DefaultRouteBuffer = 256

// Demux multiplexes one physical transport node into many virtual nodes, one
// per register key. It is the client-side half of the multi-register store:
// a single writer (or reader) process joins the network once, and its
// per-register protocol clients each operate on a virtual node that sees
// only the messages carrying their register's key.
//
// Outbound messages pass straight through to the physical node (the payload
// already carries the key, stamped by the protocol client). Inbound messages
// are routed by a single pump goroutine: it reads the physical inbox,
// extracts the key with the KeyFunc, and delivers to the matching route's
// buffered channel. Messages for keys with no active route are dropped,
// which the asynchronous model permits (they are indistinguishable from
// messages delayed forever).
type Demux struct {
	node  Node
	keyOf KeyFunc
	buf   int

	mu     sync.Mutex
	routes map[string]*demuxRoute
	closed bool

	done chan struct{}
}

// NewDemux wraps a physical node and starts the routing pump. buf is the
// per-route inbox capacity (DefaultRouteBuffer if <= 0).
func NewDemux(node Node, keyOf KeyFunc, buf int) *Demux {
	if buf <= 0 {
		buf = DefaultRouteBuffer
	}
	d := &Demux{
		node:   node,
		keyOf:  keyOf,
		buf:    buf,
		routes: make(map[string]*demuxRoute),
		done:   make(chan struct{}),
	}
	go d.pump()
	return d
}

// pump routes every delivered message to its key's route until the physical
// node closes, then closes every route inbox.
func (d *Demux) pump() {
	defer close(d.done)
	for msg := range d.node.Inbox() {
		key, ok := d.keyOf(msg)
		if !ok {
			continue
		}
		// Delivery happens under the demux lock so a concurrent Route.Close
		// cannot close the channel mid-send. The send itself is non-blocking:
		// a full route (a client that stopped draining its inbox) must not
		// stall every other register sharing the physical node, and dropping
		// is safe in the asynchronous model.
		d.mu.Lock()
		if rt := d.routes[key]; rt != nil {
			select {
			case rt.inbox <- msg:
			default:
			}
		}
		d.mu.Unlock()
	}
	d.mu.Lock()
	d.closed = true
	routes := d.routes
	d.routes = make(map[string]*demuxRoute)
	d.mu.Unlock()
	for _, rt := range routes {
		rt.closeInbox()
	}
}

// Node returns the underlying physical node.
func (d *Demux) Node() Node { return d.node }

// Route returns the virtual node for the given register key, creating it on
// first use. Calling Route again with the same key returns the same virtual
// node until that node is closed. After the demux (or physical node) closes,
// Route returns a virtual node whose inbox is already closed.
func (d *Demux) Route(key string) Node {
	d.mu.Lock()
	defer d.mu.Unlock()
	if rt, ok := d.routes[key]; ok {
		return rt
	}
	rt := &demuxRoute{demux: d, key: key, inbox: make(chan Message, d.buf)}
	if d.closed {
		rt.closeInbox()
		return rt
	}
	d.routes[key] = rt
	return rt
}

// Close closes the physical node; the pump then drains and closes every
// route. It is idempotent.
func (d *Demux) Close() error {
	err := d.node.Close()
	<-d.done
	return err
}

// demuxRoute is the virtual per-key node handed to protocol clients.
type demuxRoute struct {
	demux *Demux
	key   string
	inbox chan Message
	once  sync.Once
}

var _ Node = (*demuxRoute)(nil)

// ID returns the identity of the underlying physical node: a virtual node is
// the same process, talking about a different register.
func (rt *demuxRoute) ID() types.ProcessID { return rt.demux.node.ID() }

// Send transmits through the physical node.
func (rt *demuxRoute) Send(to types.ProcessID, kind string, payload []byte) error {
	return rt.demux.node.Send(to, kind, payload)
}

// Inbox returns this key's message stream.
func (rt *demuxRoute) Inbox() <-chan Message { return rt.inbox }

// Close detaches this key's route from the demux. The physical node and the
// other keys' routes are unaffected. Closing the inbox happens under the
// demux lock, which excludes the pump's in-flight delivery to this route.
func (rt *demuxRoute) Close() error {
	rt.demux.mu.Lock()
	if rt.demux.routes[rt.key] == rt {
		delete(rt.demux.routes, rt.key)
	}
	rt.closeInbox()
	rt.demux.mu.Unlock()
	return nil
}

// closeInbox closes the route's channel exactly once.
func (rt *demuxRoute) closeInbox() {
	rt.once.Do(func() { close(rt.inbox) })
}
