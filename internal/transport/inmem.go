package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"fastread/internal/types"
)

// link identifies a directed sender→receiver channel.
type link struct {
	from types.ProcessID
	to   types.ProcessID
}

// LinkStats aggregates what happened on the network so far. It is primarily
// used by tests and experiments to assert that an adversarial schedule did
// what it was supposed to (e.g. "the read by r2 skipped block B2").
type LinkStats struct {
	Delivered int
	Dropped   int
	InTransit int
}

// InMemOption configures an in-memory network.
type InMemOption func(*InMemNetwork)

// WithDefaultDelay makes every message delivery wait the given duration,
// modelling a uniform one-way network latency. A zero delay (the default)
// delivers messages as fast as the Go scheduler allows.
func WithDefaultDelay(d time.Duration) InMemOption {
	return func(n *InMemNetwork) { n.defaultDelay = d }
}

// WithJitter adds a uniformly distributed random extra delay in [0, j) to
// every delivery. The jitter source is seeded deterministically per network
// via WithSeed.
func WithJitter(j time.Duration) InMemOption {
	return func(n *InMemNetwork) { n.jitter = j }
}

// WithSeed seeds the network's internal randomness (jitter). Networks with
// the same seed and the same schedule of sends produce the same delays.
func WithSeed(seed int64) InMemOption {
	return func(n *InMemNetwork) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithMailboxObserver installs a callback invoked (synchronously with
// delivery) for every message handed to a destination mailbox. Used by the
// trace package.
func WithMailboxObserver(fn func(Message)) InMemOption {
	return func(n *InMemNetwork) { n.observer = fn }
}

// InMemNetwork is the goroutine/channel implementation of Network.
type InMemNetwork struct {
	mu           sync.Mutex
	nodes        map[types.ProcessID]*inMemNode
	blocked      map[link]bool
	crashed      map[types.ProcessID]bool
	held         map[link][]Message
	linkDelay    map[link]time.Duration
	stats        LinkStats
	perLink      map[link]*LinkStats
	defaultDelay time.Duration
	jitter       time.Duration
	rng          *rand.Rand
	observer     func(Message)
	closed       bool
	wg           sync.WaitGroup
}

var _ Network = (*InMemNetwork)(nil)

// NewInMemNetwork builds an in-memory network. It is safe for concurrent use
// by any number of nodes.
func NewInMemNetwork(opts ...InMemOption) *InMemNetwork {
	n := &InMemNetwork{
		nodes:     make(map[types.ProcessID]*inMemNode),
		blocked:   make(map[link]bool),
		crashed:   make(map[types.ProcessID]bool),
		linkDelay: make(map[link]time.Duration),
		perLink:   make(map[link]*LinkStats),
		rng:       rand.New(rand.NewSource(1)),
	}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Join implements Network.
func (n *InMemNetwork) Join(id types.ProcessID) (Node, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("transport: invalid process id %v", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAlreadyJoined, id)
	}
	node := &inMemNode{
		id:    id,
		net:   n,
		box:   newMailbox(),
		inbox: make(chan Message),
	}
	node.startPump()
	n.nodes[id] = node
	return node, nil
}

// Close implements Network.
func (n *InMemNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	nodes := make([]*inMemNode, 0, len(n.nodes))
	for _, node := range n.nodes {
		nodes = append(nodes, node)
	}
	n.mu.Unlock()

	for _, node := range nodes {
		_ = node.Close()
	}
	n.wg.Wait()
	return nil
}

// Block prevents delivery of any message sent from `from` to `to` until
// Unblock is called. Messages sent while the link is blocked are counted as
// dropped; in the abstract model they are simply "in transit" forever, which
// is indistinguishable to the protocols because no protocol waits for more
// than S−t servers.
func (n *InMemNetwork) Block(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[link{from, to}] = true
}

// Unblock re-enables delivery on the link.
func (n *InMemNetwork) Unblock(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, link{from, to})
}

// BlockPair blocks both directions between the two processes.
func (n *InMemNetwork) BlockPair(a, b types.ProcessID) {
	n.Block(a, b)
	n.Block(b, a)
}

// UnblockPair unblocks both directions between the two processes.
func (n *InMemNetwork) UnblockPair(a, b types.ProcessID) {
	n.Unblock(a, b)
	n.Unblock(b, a)
}

// UnblockAll clears every blocked link.
func (n *InMemNetwork) UnblockAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[link]bool)
}

// Crash marks a process as crashed: no message is delivered to it or from it
// anymore. Crashing is permanent for the lifetime of the network, matching
// the crash-stop model.
func (n *InMemNetwork) Crash(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Crashed reports whether the process has been crashed via Crash.
func (n *InMemNetwork) Crashed(id types.ProcessID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// SetLinkDelay sets a one-way delivery delay for the given link, overriding
// the network default.
func (n *InMemNetwork) SetLinkDelay(from, to types.ProcessID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkDelay[link{from, to}] = d
}

// Stats returns a snapshot of the aggregate delivery counters.
func (n *InMemNetwork) Stats() LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// StatsFor returns the delivery counters of a single directed link.
func (n *InMemNetwork) StatsFor(from, to types.ProcessID) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s := n.perLink[link{from, to}]; s != nil {
		return *s
	}
	return LinkStats{}
}

// route decides the fate of a message: returns the destination node and delay
// if it should be delivered, or nil if it must be dropped.
func (n *InMemNetwork) route(msg Message) (*inMemNode, time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ls := n.perLink[link{msg.From, msg.To}]
	if ls == nil {
		ls = &LinkStats{}
		n.perLink[link{msg.From, msg.To}] = ls
	}
	if n.closed || n.crashed[msg.From] || n.crashed[msg.To] || n.blocked[link{msg.From, msg.To}] {
		n.stats.Dropped++
		ls.Dropped++
		return nil, 0, false
	}
	dst, ok := n.nodes[msg.To]
	if !ok {
		n.stats.Dropped++
		ls.Dropped++
		return nil, 0, false
	}
	delay := n.defaultDelay
	if d, ok := n.linkDelay[link{msg.From, msg.To}]; ok {
		delay = d
	}
	if n.jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	n.stats.Delivered++
	n.stats.InTransit++
	ls.Delivered++
	return dst, delay, true
}

// deliver hands the message to the destination mailbox, possibly after a
// delay, without ever blocking the sender.
func (n *InMemNetwork) deliver(dst *inMemNode, msg Message, delay time.Duration) {
	done := func() {
		if n.observer != nil {
			n.observer(msg)
		}
		dst.box.push(msg)
		n.mu.Lock()
		n.stats.InTransit--
		n.mu.Unlock()
		n.wg.Done()
	}
	n.wg.Add(1)
	if delay <= 0 {
		done()
		return
	}
	time.AfterFunc(delay, done)
}

// inMemNode is a single process attachment.
type inMemNode struct {
	id    types.ProcessID
	net   *InMemNetwork
	box   *mailbox
	inbox chan Message

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

var _ Node = (*inMemNode)(nil)

// startPump launches the goroutine that moves messages from the unbounded
// mailbox to the delivery channel.
func (nd *inMemNode) startPump() {
	nd.done = make(chan struct{})
	go func() {
		defer close(nd.done)
		defer close(nd.inbox)
		for {
			msg, ok := nd.box.pop()
			if !ok {
				return
			}
			nd.inbox <- msg
		}
	}()
}

// ID implements Node.
func (nd *inMemNode) ID() types.ProcessID { return nd.id }

// Send implements Node.
func (nd *inMemNode) Send(to types.ProcessID, kind string, payload []byte) error {
	nd.mu.Lock()
	closed := nd.closed
	nd.mu.Unlock()
	if closed {
		return ErrClosed
	}
	msg := Message{From: nd.id, To: to, Kind: kind, Payload: payload}
	if nd.net.holdIfNeeded(msg) {
		return nil
	}
	dst, delay, ok := nd.net.route(msg)
	if !ok {
		return nil
	}
	nd.net.deliver(dst, msg, delay)
	return nil
}

// Inbox implements Node.
func (nd *inMemNode) Inbox() <-chan Message { return nd.inbox }

// Close implements Node.
func (nd *inMemNode) Close() error {
	nd.mu.Lock()
	if nd.closed {
		nd.mu.Unlock()
		return nil
	}
	nd.closed = true
	nd.mu.Unlock()

	nd.box.close()
	// Drain the delivery channel so the pump goroutine can exit even if the
	// owner stopped reading.
	go func() {
		for range nd.inbox {
		}
	}()
	<-nd.done
	return nil
}

// Pending returns the number of messages queued but not yet consumed by the
// node's owner. Used in tests.
func (nd *inMemNode) Pending() int { return nd.box.len() }
