package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fastread/internal/types"
	"fastread/internal/wire"
)

// link identifies a directed sender→receiver channel.
type link struct {
	from types.ProcessID
	to   types.ProcessID
}

// LinkStats aggregates what happened on the network so far. It is primarily
// used by tests and experiments to assert that an adversarial schedule did
// what it was supposed to (e.g. "the read by r2 skipped block B2").
type LinkStats struct {
	Delivered int
	Dropped   int
	InTransit int
}

// InMemOption configures an in-memory network.
type InMemOption func(*InMemNetwork)

// WithDefaultDelay makes every message delivery wait the given duration,
// modelling a uniform one-way network latency. A zero delay (the default)
// delivers messages as fast as the Go scheduler allows.
func WithDefaultDelay(d time.Duration) InMemOption {
	return func(n *InMemNetwork) { n.defaultDelay = d }
}

// WithJitter adds a uniformly distributed random extra delay in [0, j) to
// every delivery. The jitter source is seeded deterministically per network
// via WithSeed.
func WithJitter(j time.Duration) InMemOption {
	return func(n *InMemNetwork) { n.jitter = j }
}

// WithSeed seeds the network's internal randomness (jitter). Networks with
// the same seed and the same schedule of sends produce the same delays.
func WithSeed(seed int64) InMemOption {
	return func(n *InMemNetwork) { n.rng = rand.New(rand.NewSource(seed)) }
}

// WithMailboxObserver installs a callback invoked (synchronously with
// delivery) for every message handed to a destination mailbox. Used by the
// trace package.
func WithMailboxObserver(fn func(Message)) InMemOption {
	return func(n *InMemNetwork) { n.observer = fn }
}

// WithMailboxBound caps every SERVER node's mailbox at n queued messages:
// a delivery finding the mailbox full is shed (dropped-in-transit, counted
// in MailboxShed and the network's drop counter) instead of growing the
// queue, so a server's memory and queueing delay — and therefore
// MailboxHighWater — stay bounded under overload. Client (writer/reader)
// mailboxes stay unbounded: dropping acknowledgements there can starve an
// otherwise-completable quorum. Shedding a REQUEST is safe for the same
// reason a lossy network is: the protocols tolerate loss via quorum slack
// and the client's retry/timeout. n <= 0 (the default) keeps every mailbox
// unbounded.
func WithMailboxBound(n int) InMemOption {
	return func(nw *InMemNetwork) { nw.mailboxBound = n }
}

// WithClock runs the network on a virtual clock (simulation mode). Every
// delivery — including zero-delay ones — becomes a scheduled clock event, so
// messages are processed strictly one at a time in (due time, send sequence)
// order and the whole network is deterministic for a given seed: the clock
// only fires the next event once the previous one's entire causal cascade
// has quiesced. Delays and jitter advance virtual time instead of sleeping.
//
// A virtual-clock network disables pump batching (WithBatching): under
// one-event-at-a-time delivery every drain run has length one, so batching
// could never coalesce anything — it would only complicate activity
// accounting.
func WithClock(c *VirtualClock) InMemOption {
	return func(n *InMemNetwork) { n.clock = c }
}

// WithBatching makes every node's pump coalesce its queued backlog: when a
// drain run contains CONSECUTIVE messages from the same sender, they are
// delivered as one wire.Batch envelope — one channel handoff per run per
// sender instead of one per message, the in-memory analogue of the TCP
// transport's one-frame-per-peer-per-flush batching. An uncontended node
// (runs of one) delivers exactly as without the option, so batching never
// adds latency.
//
// Consumers of a batching network's inboxes must be batch-aware (Executor,
// Demux, Serve and the protoutil collectors all are); raw inbox loops that
// decode payloads directly would drop the envelopes as malformed. Observers
// and link counters see the individual messages — coalescing happens after
// delivery accounting, on the receiving node's own queue.
func WithBatching() InMemOption {
	return func(n *InMemNetwork) { n.batching = true }
}

// linkStripes is the number of stripes sharding the per-link counters. Links
// are keyed by (from, to); 64 stripes keep cross-link contention negligible
// for realistic process counts.
const linkStripes = 64

// linkCounters is one directed link's delivery counters, updated atomically.
type linkCounters struct {
	delivered atomic.Int64
	dropped   atomic.Int64
}

// linkStripe is one shard of the per-link counter table. The stripe lock
// only guards the map itself; the counters are atomic, so the lock is held
// for a map lookup at most.
type linkStripe struct {
	mu sync.Mutex
	m  map[link]*linkCounters
}

// nodeMap is the copy-on-write process→node table. Joins copy it; routing
// reads it through an atomic pointer without locking.
type nodeMap map[types.ProcessID]*inMemNode

// InMemNetwork is the goroutine/channel implementation of Network.
//
// The per-message route/deliver path is designed for heavy multi-register
// traffic: aggregate counters are atomics, per-link counters live in a
// striped table (one short stripe-lock acquisition per message), and the
// node table is copy-on-write — so concurrent senders never serialise on a
// network-wide lock. Adversarial controls (blocks, crashes, holds, delays,
// jitter, observers) flip the network onto a mutex-guarded slow path; a
// network that never uses them (the common benchmark and production shape)
// stays lock-free end to end.
type InMemNetwork struct {
	// mu guards the adversarial configuration, the hold queues and
	// membership changes. The per-message fast path never takes it.
	mu        sync.Mutex
	nodes     atomic.Pointer[nodeMap]
	blocked   map[link]bool
	crashed   map[types.ProcessID]bool
	downed    map[types.ProcessID]bool
	held      map[link][]Message
	linkDelay map[link]time.Duration

	// clock, when non-nil, puts the network in virtual-time simulation mode
	// (see WithClock).
	clock *VirtualClock

	// slow is true whenever any adversarial feature (or closure) is active;
	// route() and holdIfNeeded() consult it before touching mu.
	slow   atomic.Bool
	closed bool

	delivered atomic.Int64
	dropped   atomic.Int64
	inTransit atomic.Int64
	perLink   [linkStripes]linkStripe

	defaultDelay time.Duration
	jitter       time.Duration
	rng          *rand.Rand
	observer     func(Message)
	batching     bool
	mailboxBound int
	mailboxShed  atomic.Int64
	wg           sync.WaitGroup

	// Delayed deliveries are sequenced through one min-heap ordered by
	// (due time, send sequence) and drained by a single dispatcher
	// goroutine, so equal-delay messages — in particular all messages of one
	// link — deliver in SEND order. The old one-timer-per-message scheme let
	// the runtime fire near-simultaneous timers in either order, silently
	// reordering a link under load; serial clients never noticed, pipelined
	// clients starved on it. (Jitter deliberately varies due times, so it
	// still reorders — that is its job.)
	delayMu     sync.Mutex
	delayHeap   delayHeap
	delaySeq    uint64
	delayClosed bool
	delayKick   chan struct{}
	delayStart  sync.Once
}

// delayedMsg is one in-flight delayed delivery.
type delayedMsg struct {
	dst *inMemNode
	msg Message
	at  time.Time
	seq uint64
}

// delayHeap orders delayed deliveries by (due time, send sequence).
type delayHeap []delayedMsg

func (h delayHeap) before(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h *delayHeap) push(m delayedMsg) {
	*h = append(*h, m)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).before(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *delayHeap) pop() delayedMsg {
	out := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	(*h)[last] = delayedMsg{}
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(*h) && (*h).before(l, smallest) {
			smallest = l
		}
		if r < len(*h) && (*h).before(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return out
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}

var _ Network = (*InMemNetwork)(nil)

// NewInMemNetwork builds an in-memory network. It is safe for concurrent use
// by any number of nodes.
func NewInMemNetwork(opts ...InMemOption) *InMemNetwork {
	n := &InMemNetwork{
		blocked:   make(map[link]bool),
		crashed:   make(map[types.ProcessID]bool),
		downed:    make(map[types.ProcessID]bool),
		linkDelay: make(map[link]time.Duration),
		rng:       rand.New(rand.NewSource(1)),
		delayKick: make(chan struct{}, 1),
	}
	empty := make(nodeMap)
	n.nodes.Store(&empty)
	for i := range n.perLink {
		n.perLink[i].m = make(map[link]*linkCounters)
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.clock != nil {
		n.batching = false
	}
	n.updateSlowLocked()
	return n
}

// Clock returns the network's virtual clock, or nil when the network runs on
// wall time.
func (n *InMemNetwork) Clock() *VirtualClock { return n.clock }

// updateSlowLocked recomputes the slow-path flag. Callers must hold n.mu
// (or, during construction, have exclusive access).
func (n *InMemNetwork) updateSlowLocked() {
	n.slow.Store(n.closed ||
		len(n.blocked) > 0 ||
		len(n.crashed) > 0 ||
		len(n.downed) > 0 ||
		len(n.held) > 0 ||
		len(n.linkDelay) > 0 ||
		n.defaultDelay > 0 ||
		n.jitter > 0 ||
		n.observer != nil ||
		n.clock != nil)
}

// countersFor returns the (lazily created) atomic counters of a link. Only
// the owning stripe is locked, and only for the map access.
func (n *InMemNetwork) countersFor(l link) *linkCounters {
	h := uint64(l.from.Role)*0x9E3779B97F4A7C15 ^ uint64(uint32(l.from.Index))*0x85EBCA77C2B2AE63 ^
		uint64(l.to.Role)*0xC2B2AE3D27D4EB4F ^ uint64(uint32(l.to.Index))*0x27D4EB2F165667C5
	st := &n.perLink[h%linkStripes]
	st.mu.Lock()
	c, ok := st.m[l]
	if !ok {
		c = &linkCounters{}
		st.m[l] = c
	}
	st.mu.Unlock()
	return c
}

// Join implements Network.
func (n *InMemNetwork) Join(id types.ProcessID) (Node, error) {
	if !id.Valid() {
		return nil, fmt.Errorf("transport: invalid process id %v", id)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	old := *n.nodes.Load()
	if prev, ok := old[id]; ok {
		if !prev.closed.Load() {
			return nil, fmt.Errorf("%w: %s", ErrAlreadyJoined, id)
		}
		// A closed node's identity may be re-taken: a restarted process
		// rejoins under its old name (Store.RestartServer). The new
		// incarnation starts reachable — any crash or isolation mark against
		// the dead one is cleared; messages still queued on the old node are
		// lost with it, exactly as a real restart loses its socket buffers.
		delete(n.crashed, id)
		delete(n.downed, id)
		n.updateSlowLocked()
	}
	box := newMailbox()
	if n.mailboxBound > 0 && id.Role == types.RoleServer {
		box = newBoundedMailbox(n.mailboxBound, &n.mailboxShed)
	}
	node := &inMemNode{
		id:    id,
		net:   n,
		box:   box,
		inbox: make(chan Message),
	}
	node.startPump()
	next := make(nodeMap, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = node
	n.nodes.Store(&next)
	return node, nil
}

// Close implements Network.
func (n *InMemNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.updateSlowLocked()
	nodes := *n.nodes.Load()
	n.mu.Unlock()

	// Wake the delay dispatcher (if any) so it observes the closure and
	// drains instead of sleeping out its earliest due time.
	select {
	case n.delayKick <- struct{}{}:
	default:
	}
	for _, node := range nodes {
		_ = node.Close()
	}
	n.wg.Wait()
	return nil
}

// Block prevents delivery of any message sent from `from` to `to` until
// Unblock is called. Messages sent while the link is blocked are counted as
// dropped; in the abstract model they are simply "in transit" forever, which
// is indistinguishable to the protocols because no protocol waits for more
// than S−t servers.
func (n *InMemNetwork) Block(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[link{from, to}] = true
	n.updateSlowLocked()
}

// Unblock re-enables delivery on the link.
func (n *InMemNetwork) Unblock(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, link{from, to})
	n.updateSlowLocked()
}

// BlockPair blocks both directions between the two processes.
func (n *InMemNetwork) BlockPair(a, b types.ProcessID) {
	n.Block(a, b)
	n.Block(b, a)
}

// UnblockPair unblocks both directions between the two processes.
func (n *InMemNetwork) UnblockPair(a, b types.ProcessID) {
	n.Unblock(a, b)
	n.Unblock(b, a)
}

// UnblockAll clears every blocked link.
func (n *InMemNetwork) UnblockAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[link]bool)
	n.updateSlowLocked()
}

// Crash marks a process as crashed: no message is delivered to it or from it
// anymore. Crashing is permanent for the lifetime of the process incarnation,
// matching the crash-stop model; only a NEW incarnation that closes the dead
// node and rejoins under the same identity (see Join) clears the mark, which
// is the crash-recovery model the durable servers implement.
func (n *InMemNetwork) Crash(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
	n.updateSlowLocked()
}

// Isolate cuts a process off the network: every message to or from it is
// dropped until Reconnect. Unlike Crash it is reversible — the process keeps
// running and keeps its state, so an Isolate/Reconnect window models a
// restart (the servers in this repository have no persistence, so a restart
// is exactly an outage with state retained). Like Block, isolation applies
// at SEND time: messages already routed when the window opens still deliver.
func (n *InMemNetwork) Isolate(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.downed[id] = true
	n.updateSlowLocked()
}

// Reconnect ends an isolation window started by Isolate.
func (n *InMemNetwork) Reconnect(id types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.downed, id)
	n.updateSlowLocked()
}

// Isolated reports whether the process is currently isolated.
func (n *InMemNetwork) Isolated(id types.ProcessID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.downed[id]
}

// Crashed reports whether the process has been crashed via Crash.
func (n *InMemNetwork) Crashed(id types.ProcessID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// SetLinkDelay sets a one-way delivery delay for the given link, overriding
// the network default.
func (n *InMemNetwork) SetLinkDelay(from, to types.ProcessID, d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.linkDelay[link{from, to}] = d
	n.updateSlowLocked()
}

// Stats returns a snapshot of the aggregate delivery counters.
func (n *InMemNetwork) Stats() LinkStats {
	return LinkStats{
		Delivered: int(n.delivered.Load()),
		Dropped:   int(n.dropped.Load()),
		InTransit: int(n.inTransit.Load()),
	}
}

// StatsFor returns the delivery counters of a single directed link.
func (n *InMemNetwork) StatsFor(from, to types.ProcessID) LinkStats {
	c := n.countersFor(link{from, to})
	return LinkStats{
		Delivered: int(c.delivered.Load()),
		Dropped:   int(c.dropped.Load()),
	}
}

// dropOn records a dropped message on the link.
func (n *InMemNetwork) dropOn(l link) {
	n.dropped.Add(1)
	n.countersFor(l).dropped.Add(1)
}

// route decides the fate of a message: returns the destination node and delay
// if it should be delivered, or nil if it must be dropped.
//
// The fast path — no blocks, crashes, holds, delays, jitter or observer
// configured — reads the copy-on-write node table and bumps atomic counters
// without taking any network-wide lock.
func (n *InMemNetwork) route(msg Message) (*inMemNode, time.Duration, bool) {
	l := link{msg.From, msg.To}
	if n.slow.Load() {
		return n.routeSlow(msg, l)
	}
	dst, ok := (*n.nodes.Load())[msg.To]
	if !ok {
		n.dropOn(l)
		return nil, 0, false
	}
	n.delivered.Add(1)
	n.inTransit.Add(1)
	n.countersFor(l).delivered.Add(1)
	return dst, 0, true
}

// routeSlow is the mutex-guarded routing path used while any adversarial
// control is active (or the network is closed).
func (n *InMemNetwork) routeSlow(msg Message, l link) (*inMemNode, time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.crashed[msg.From] || n.crashed[msg.To] ||
		n.downed[msg.From] || n.downed[msg.To] || n.blocked[l] {
		n.dropOn(l)
		return nil, 0, false
	}
	dst, ok := (*n.nodes.Load())[msg.To]
	if !ok {
		n.dropOn(l)
		return nil, 0, false
	}
	delay := n.defaultDelay
	if d, ok := n.linkDelay[l]; ok {
		delay = d
	}
	if n.jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	n.delivered.Add(1)
	n.inTransit.Add(1)
	n.countersFor(l).delivered.Add(1)
	return dst, delay, true
}

// deliver hands the message to the destination mailbox, possibly after a
// delay, without ever blocking the sender. Immediate deliveries complete
// inline — no goroutine, no closure; delayed deliveries are sequenced
// through the network's delay dispatcher (see delayHeap) so equal delays
// keep send order, and tracked by the wait group so Close can drain them.
func (n *InMemNetwork) deliver(dst *inMemNode, msg Message, delay time.Duration) {
	if n.clock != nil {
		n.deliverVirtual(dst, msg, delay)
		return
	}
	if delay <= 0 {
		if n.observer != nil {
			n.observer(msg)
		}
		dst.box.push(msg)
		n.inTransit.Add(-1)
		return
	}
	n.wg.Add(1)
	n.delayStart.Do(func() {
		n.wg.Add(1)
		go n.dispatchDelayed()
	})
	n.delayMu.Lock()
	if n.delayClosed {
		// The dispatcher already drained and exited (a send racing Close):
		// the message is dropped as in-transit-forever, accounted here.
		n.delayMu.Unlock()
		n.inTransit.Add(-1)
		n.wg.Done()
		return
	}
	n.delaySeq++
	n.delayHeap.push(delayedMsg{dst: dst, msg: msg, at: time.Now().Add(delay), seq: n.delaySeq})
	n.delayMu.Unlock()
	select {
	case n.delayKick <- struct{}{}:
	default:
	}
}

// deliverVirtual schedules the delivery as a virtual-clock event — even at
// zero delay, so that under simulation every message passes through the
// clock's single total order and at most one delivery cascade runs at a
// time. The event attaches the clock's activity token to the message before
// it reaches the mailbox: from that push until the consumer's ReleaseArena
// (tokens splitting and rejoining with RetainArena/ReleaseArena at every
// hand-off) the clock cannot fire the next event.
//
// Events left unexecuted when the simulation stops simply never run; their
// messages stay counted as in-transit, the virtual analogue of "delayed
// forever".
func (n *InMemNetwork) deliverVirtual(dst *inMemNode, msg Message, delay time.Duration) {
	c := n.clock
	c.Schedule(delay, func() {
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			n.inTransit.Add(-1)
			return
		}
		if n.observer != nil {
			n.observer(msg)
		}
		msg.vt = c
		c.begin()
		if !dst.box.push(msg) {
			c.end()
		}
		n.inTransit.Add(-1)
	})
}

// dispatchDelayed is the delay dispatcher: it sleeps until the earliest due
// delivery, then hands everything due over in (due, send-sequence) order. It
// runs only on networks that actually delay, and exits when the network
// closes (Close counts undelivered messages off the wait group).
func (n *InMemNetwork) dispatchDelayed() {
	defer n.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.delayMu.Lock()
		now := time.Now()
		for len(n.delayHeap) > 0 && !n.delayHeap[0].at.After(now) {
			d := n.delayHeap.pop()
			n.delayMu.Unlock()
			if n.observer != nil {
				n.observer(d.msg)
			}
			d.dst.box.push(d.msg)
			n.inTransit.Add(-1)
			n.wg.Done()
			n.delayMu.Lock()
		}
		var wait time.Duration = time.Hour
		if len(n.delayHeap) > 0 {
			wait = time.Until(n.delayHeap[0].at)
		}
		n.delayMu.Unlock()

		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			// Drop whatever is still pending: the network is gone, the
			// messages are "in transit forever". delayClosed hands any
			// send still racing this shutdown its own cleanup.
			n.delayMu.Lock()
			pending := len(n.delayHeap)
			n.delayHeap = nil
			n.delayClosed = true
			n.delayMu.Unlock()
			for i := 0; i < pending; i++ {
				n.inTransit.Add(-1)
				n.wg.Done()
			}
			return
		}

		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-n.delayKick:
		}
	}
}

// inMemNode is a single process attachment.
type inMemNode struct {
	id    types.ProcessID
	net   *InMemNetwork
	box   *mailbox
	inbox chan Message

	// run is the pump goroutine's private coalescing stage (batching
	// networks only); see stage/flushRun.
	run []Message

	closed atomic.Bool
	done   chan struct{}
}

var _ Node = (*inMemNode)(nil)

// startPump launches the goroutine that moves messages from the unbounded
// mailbox to the delivery channel. It drains the mailbox in batches (one
// lock/condvar synchronisation per run of messages, not per message) and
// forwards each message in order (see mailbox.drain). On a batching network
// (WithBatching) consecutive same-sender messages of a run are coalesced
// into one wire.Batch delivery.
func (nd *inMemNode) startPump() {
	nd.done = make(chan struct{})
	go func() {
		defer close(nd.done)
		defer close(nd.inbox)
		if nd.net.batching {
			nd.box.drainRuns(func(m Message) { nd.stage(m) }, nd.flushRun)
			return
		}
		nd.box.drain(func(m Message) { nd.inbox <- m })
	}()
}

// stage buffers one drained message for the pump's run coalescer: messages
// are flushed the moment the sender changes, so per-link FIFO and cross-link
// arrival order are both preserved exactly.
func (nd *inMemNode) stage(m Message) {
	if len(nd.run) > 0 && nd.run[0].From != m.From {
		nd.flushRun()
	}
	nd.run = append(nd.run, m)
}

// flushRun delivers the staged group: a single message passes through
// untouched (and unallocated); two or more coalesce into one batch envelope.
// Payloads that already are envelopes (a peer server's coalesced acks) are
// spliced flat rather than nested.
func (nd *inMemNode) flushRun() {
	switch len(nd.run) {
	case 0:
		return
	case 1:
		nd.inbox <- nd.run[0]
	default:
		b := wire.NewBatch(0)
		for _, m := range nd.run {
			if wire.IsBatch(m.Payload) {
				_ = b.Splice(m.Payload)
			} else {
				b.Append(m.Payload)
			}
		}
		nd.inbox <- Message{From: nd.run[0].From, To: nd.id, Kind: wire.BatchKind, Payload: b.Bytes()}
	}
	for i := range nd.run {
		nd.run[i] = Message{}
	}
	if cap(nd.run) > maxRetainedBatch {
		nd.run = nil
		return
	}
	nd.run = nd.run[:0]
}

// ID implements Node.
func (nd *inMemNode) ID() types.ProcessID { return nd.id }

// Send implements Node.
func (nd *inMemNode) Send(to types.ProcessID, kind string, payload []byte) error {
	if nd.closed.Load() {
		return ErrClosed
	}
	msg := Message{From: nd.id, To: to, Kind: kind, Payload: payload}
	if nd.net.holdIfNeeded(msg) {
		return nil
	}
	dst, delay, ok := nd.net.route(msg)
	if !ok {
		return nil
	}
	nd.net.deliver(dst, msg, delay)
	return nil
}

// Inbox implements Node.
func (nd *inMemNode) Inbox() <-chan Message { return nd.inbox }

// Close implements Node.
func (nd *inMemNode) Close() error {
	if nd.closed.Swap(true) {
		return nil
	}
	nd.box.close()
	// Drain the delivery channel so the pump goroutine can exit even if the
	// owner stopped reading, releasing each undelivered message's reference
	// (arena and, under a virtual clock, activity token).
	go func() {
		for m := range nd.inbox {
			m.ReleaseArena()
		}
	}()
	<-nd.done
	return nil
}

// Pending returns the number of messages queued but not yet consumed by the
// node's owner. Used in tests.
func (nd *inMemNode) Pending() int { return nd.box.len() }

// virtualClock implements the virtualClocked probe used by Coalescer so
// buffered-but-unflushed acknowledgements count as simulation activity.
func (nd *inMemNode) virtualClock() *VirtualClock { return nd.net.clock }

// MailboxHighWater returns the deepest any node's mailbox has ever been —
// the network-wide overload high-water mark. Mailboxes are unbounded by
// default (the asynchronous model forbids blocking a sender on a slow
// receiver), so without WithMailboxBound depth, not drops, is where
// overload shows up; with a bound, the mark stays at or under the bound and
// the overflow appears in MailboxShed instead.
func (n *InMemNetwork) MailboxHighWater() int {
	hw := 0
	for _, nd := range *n.nodes.Load() {
		if h := nd.box.highWater(); h > hw {
			hw = h
		}
	}
	return hw
}

// MailboxShed returns how many deliveries bounded server mailboxes have
// shed (always 0 without WithMailboxBound).
func (n *InMemNetwork) MailboxShed() int64 { return n.mailboxShed.Load() }
