package transport

import (
	"sync"
	"testing"
	"time"

	"fastread/internal/types"
)

func mustJoin(t *testing.T, net Network, id types.ProcessID) Node {
	t.Helper()
	node, err := net.Join(id)
	if err != nil {
		t.Fatalf("Join(%v): %v", id, err)
	}
	return node
}

func recvWithTimeout(t *testing.T, node Node, timeout time.Duration) (Message, bool) {
	t.Helper()
	select {
	case msg, ok := <-node.Inbox():
		return msg, ok
	case <-time.After(timeout):
		return Message{}, false
	}
}

func TestInMemDeliverBasic(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()

	a := mustJoin(t, net, types.Writer())
	b := mustJoin(t, net, types.Server(1))

	if err := a.Send(b.ID(), "ping", []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg, ok := recvWithTimeout(t, b, time.Second)
	if !ok {
		t.Fatal("message not delivered")
	}
	if msg.From != types.Writer() || msg.To != types.Server(1) || msg.Kind != "ping" || string(msg.Payload) != "hello" {
		t.Errorf("unexpected message %v", msg)
	}
}

func TestInMemOrderingPerLink(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()

	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))

	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send(b.ID(), "seq", []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		msg, ok := recvWithTimeout(t, b, time.Second)
		if !ok {
			t.Fatalf("message %d not delivered", i)
		}
		if msg.Payload[0] != byte(i) {
			t.Fatalf("out of order: got %d at position %d", msg.Payload[0], i)
		}
	}
}

func TestInMemJoinTwiceFails(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	mustJoin(t, net, types.Server(1))
	if _, err := net.Join(types.Server(1)); err == nil {
		t.Fatal("second Join succeeded, want error")
	}
}

func TestInMemJoinInvalidID(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	if _, err := net.Join(types.ProcessID{}); err == nil {
		t.Fatal("Join with zero id succeeded, want error")
	}
}

func TestInMemBlockDropsMessages(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()

	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))

	net.Block(a.ID(), b.ID())
	if err := a.Send(b.ID(), "blocked", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, ok := recvWithTimeout(t, b, 50*time.Millisecond); ok {
		t.Fatal("blocked message was delivered")
	}

	net.Unblock(a.ID(), b.ID())
	if err := a.Send(b.ID(), "open", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	msg, ok := recvWithTimeout(t, b, time.Second)
	if !ok || msg.Kind != "open" {
		t.Fatalf("expected the unblocked message, got %v ok=%v", msg, ok)
	}

	stats := net.StatsFor(a.ID(), b.ID())
	if stats.Dropped != 1 || stats.Delivered != 1 {
		t.Errorf("link stats = %+v, want 1 dropped / 1 delivered", stats)
	}
}

func TestInMemBlockIsDirectional(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))

	net.Block(a.ID(), b.ID())
	if err := b.Send(a.ID(), "reverse", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, ok := recvWithTimeout(t, a, time.Second); !ok {
		t.Fatal("reverse direction should not be blocked")
	}
}

func TestInMemCrashStopsDelivery(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))
	c := mustJoin(t, net, types.Server(2))

	net.Crash(types.Server(1))
	if !net.Crashed(types.Server(1)) {
		t.Fatal("Crashed() should report true")
	}
	if err := a.Send(b.ID(), "to-crashed", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, ok := recvWithTimeout(t, b, 50*time.Millisecond); ok {
		t.Fatal("crashed process received a message")
	}
	// Messages from a crashed process are dropped as well.
	if err := b.Send(c.ID(), "from-crashed", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, ok := recvWithTimeout(t, c, 50*time.Millisecond); ok {
		t.Fatal("message from crashed process was delivered")
	}
}

func TestInMemDelayIsApplied(t *testing.T) {
	net := NewInMemNetwork(WithDefaultDelay(30 * time.Millisecond))
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))

	start := time.Now()
	if err := a.Send(b.ID(), "delayed", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, ok := recvWithTimeout(t, b, time.Second); !ok {
		t.Fatal("delayed message never arrived")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("message arrived after %v, want >= ~30ms", elapsed)
	}
}

func TestInMemPerLinkDelayOverridesDefault(t *testing.T) {
	net := NewInMemNetwork(WithDefaultDelay(200 * time.Millisecond))
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))
	net.SetLinkDelay(a.ID(), b.ID(), 0)

	start := time.Now()
	if err := a.Send(b.ID(), "fast-link", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, ok := recvWithTimeout(t, b, time.Second); !ok {
		t.Fatal("message never arrived")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("per-link delay not applied, took %v", elapsed)
	}
}

func TestInMemSendToUnknownProcessIsDropped(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	if err := a.Send(types.Server(9), "nowhere", nil); err != nil {
		t.Fatalf("Send to unknown process should not error, got %v", err)
	}
	if s := net.Stats(); s.Dropped != 1 {
		t.Errorf("Stats.Dropped = %d, want 1", s.Dropped)
	}
}

func TestInMemNodeCloseUnblocksSenders(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))

	// Fill b's mailbox without reading, then close it. Sends must not block
	// and Close must return.
	for i := 0; i < 100; i++ {
		if err := a.Send(b.ID(), "noise", nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = b.Close()
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("node Close did not return")
	}
	if err := a.Send(b.ID(), "after-close", nil); err != nil {
		t.Fatalf("Send after peer close: %v", err)
	}
}

func TestInMemSendAfterOwnCloseFails(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	mustJoin(t, net, types.Server(1))
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Send(types.Server(1), "x", nil); err == nil {
		t.Fatal("Send after Close succeeded, want error")
	}
}

func TestInMemNetworkCloseIdempotent(t *testing.T) {
	net := NewInMemNetwork()
	mustJoin(t, net, types.Reader(1))
	if err := net.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := net.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := net.Join(types.Reader(2)); err == nil {
		t.Fatal("Join after Close succeeded, want error")
	}
}

func TestInMemConcurrentSendersAllDelivered(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()

	const senders = 8
	const perSender = 50
	dst := mustJoin(t, net, types.Server(1))

	var wg sync.WaitGroup
	for i := 1; i <= senders; i++ {
		node := mustJoin(t, net, types.Reader(i))
		wg.Add(1)
		go func(n Node) {
			defer wg.Done()
			for j := 0; j < perSender; j++ {
				if err := n.Send(dst.ID(), "load", []byte{byte(j)}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(node)
	}

	received := 0
	deadline := time.After(5 * time.Second)
	for received < senders*perSender {
		select {
		case _, ok := <-dst.Inbox():
			if !ok {
				t.Fatal("inbox closed early")
			}
			received++
		case <-deadline:
			t.Fatalf("received %d of %d messages", received, senders*perSender)
		}
	}
	wg.Wait()
}

func TestServeInvokesHandlerUntilClose(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))

	var mu sync.Mutex
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		Serve(b, func(m Message) {
			mu.Lock()
			got = append(got, m.Kind)
			mu.Unlock()
		})
	}()

	for _, k := range []string{"a", "b", "c"} {
		if err := a.Send(b.ID(), k, nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	// Wait until handled, then close and ensure Serve returns.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handler saw %d messages, want 3", n)
		}
		time.Sleep(time.Millisecond)
	}
	_ = b.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func TestInMemObserverSeesDeliveries(t *testing.T) {
	var mu sync.Mutex
	count := 0
	net := NewInMemNetwork(WithMailboxObserver(func(Message) {
		mu.Lock()
		count++
		mu.Unlock()
	}))
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))
	if err := a.Send(b.ID(), "observed", nil); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, ok := recvWithTimeout(t, b, time.Second); !ok {
		t.Fatal("not delivered")
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Errorf("observer saw %d deliveries, want 1", count)
	}
}

func TestMailboxFIFOAndClose(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 10; i++ {
		if !m.push(Message{Kind: string(rune('a' + i))}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if m.len() != 10 {
		t.Fatalf("len = %d, want 10", m.len())
	}
	m.close()
	if m.push(Message{Kind: "late"}) {
		t.Error("push after close should report false")
	}
	for i := 0; i < 10; i++ {
		msg, ok := m.pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if msg.Kind != string(rune('a'+i)) {
			t.Fatalf("pop %d = %q, out of order", i, msg.Kind)
		}
	}
	if _, ok := m.pop(); ok {
		t.Error("pop on drained closed mailbox should report !ok")
	}
}

func TestMailboxPopBlocksUntilPush(t *testing.T) {
	m := newMailbox()
	got := make(chan Message, 1)
	go func() {
		msg, ok := m.pop()
		if ok {
			got <- msg
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	m.push(Message{Kind: "late-arrival"})
	select {
	case msg := <-got:
		if msg.Kind != "late-arrival" {
			t.Errorf("got %q", msg.Kind)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never returned")
	}
}
