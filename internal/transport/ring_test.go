package transport

import (
	"fmt"
	"sync"
	"testing"

	"fastread/internal/types"
)

// seqMsg builds a message whose Kind encodes a sequence number, so order
// checks need no payload decoding.
func seqMsg(i int) Message {
	return Message{From: types.Writer(), To: types.Server(1), Kind: fmt.Sprintf("m%d", i)}
}

// TestSPSCRingFullEmptyWraparound drives the bare ring through its boundary
// conditions: empty pop, fill to capacity, push-on-full, and repeated
// wraparound of the power-of-two index space.
func TestSPSCRingFullEmptyWraparound(t *testing.T) {
	const cap = 8
	r := newSPSCRing(cap)
	if _, ok := r.pop(); ok {
		t.Fatal("pop on empty ring reported ok")
	}
	if !r.empty() {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < cap; i++ {
		if !r.push(seqMsg(i)) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.push(seqMsg(cap)) {
		t.Fatal("push accepted on a full ring")
	}
	// Drain half, refill, and repeat enough times to wrap the indices
	// several times over; order must stay exact throughout.
	next := 0
	pushed := cap
	for round := 0; round < 10; round++ {
		for i := 0; i < cap/2; i++ {
			m, ok := r.pop()
			if !ok {
				t.Fatalf("round %d: pop %d failed on non-empty ring", round, next)
			}
			if want := fmt.Sprintf("m%d", next); m.Kind != want {
				t.Fatalf("round %d: popped %q, want %q", round, m.Kind, want)
			}
			next++
		}
		for i := 0; i < cap/2; i++ {
			if !r.push(seqMsg(pushed)) {
				t.Fatalf("round %d: refill push %d rejected", round, pushed)
			}
			pushed++
		}
	}
	for next < pushed {
		m, ok := r.pop()
		if !ok {
			t.Fatalf("final drain: pop %d failed", next)
		}
		if want := fmt.Sprintf("m%d", next); m.Kind != want {
			t.Fatalf("final drain: popped %q, want %q", m.Kind, want)
		}
		next++
	}
	if _, ok := r.pop(); ok {
		t.Fatal("drained ring still popped a message")
	}
}

// TestSPSCRingPopReleasesSlot verifies a popped slot is zeroed so the ring
// does not pin message payloads until the slot is overwritten.
func TestSPSCRingPopReleasesSlot(t *testing.T) {
	r := newSPSCRing(4)
	m := seqMsg(0)
	m.Payload = []byte("retained")
	r.push(m)
	if _, ok := r.pop(); !ok {
		t.Fatal("pop failed")
	}
	if r.slots[0].Payload != nil {
		t.Fatal("popped slot still references the payload")
	}
}

// TestHandoffFIFOSingleProducer streams far more messages than the ring
// capacity through a handoff with one producer and one consumer, asserting
// exact FIFO order end to end. Run under -race this also exercises the
// atomic publication of ring slots between the two goroutines.
func TestHandoffFIFOSingleProducer(t *testing.T) {
	const total = 50000
	h := newHandoff()
	var got []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.drain(func(m Message) { got = append(got, m.Kind) })
	}()
	for i := 0; i < total; i++ {
		if !h.push(seqMsg(i)) {
			t.Errorf("push %d rejected on open handoff", i)
			break
		}
	}
	h.close()
	wg.Wait()
	if len(got) != total {
		t.Fatalf("delivered %d messages, want %d", len(got), total)
	}
	for i, kind := range got {
		if want := fmt.Sprintf("m%d", i); kind != want {
			t.Fatalf("message %d out of order: got %q, want %q", i, kind, want)
		}
	}
}

// TestHandoffSpillPath blocks the consumer until the producer has pushed far
// past the ring capacity, forcing the overflow onto the mailbox spill path,
// then verifies nothing was lost or reordered across the ring/spill boundary
// — including messages pushed while the spill is draining (which must keep
// spilling, not overtake through the ring).
func TestHandoffSpillPath(t *testing.T) {
	const total = ringCapacity * 5
	h := newHandoff()
	for i := 0; i < total; i++ {
		if !h.push(seqMsg(i)) {
			t.Fatalf("push %d rejected", i)
		}
	}
	if h.spills.Load() == 0 {
		t.Fatalf("pushing %d messages into a %d-slot ring never spilled", total, ringCapacity)
	}
	if want := int64(total - ringCapacity); h.spills.Load() != want {
		t.Fatalf("spilled %d messages, want %d", h.spills.Load(), want)
	}
	// While the spill is non-empty the producer must stay diverted even
	// though the consumer has not started (ring has free slots only after
	// draining; here the ring is still full, but the flag alone must pin).
	if !h.spilling.Load() {
		t.Fatal("handoff not in spilling state with a non-empty spill")
	}
	var got []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.drain(func(m Message) { got = append(got, m.Kind) })
	}()
	h.close()
	<-done
	if len(got) != total {
		t.Fatalf("delivered %d messages, want %d (burst backlog lost)", len(got), total)
	}
	for i, kind := range got {
		if want := fmt.Sprintf("m%d", i); kind != want {
			t.Fatalf("message %d out of order across spill boundary: got %q, want %q", i, kind, want)
		}
	}
}

// TestHandoffSpillInterleaved alternates overflow and drain concurrently: the
// consumer runs throughout while the producer pushes bursts large enough to
// spill repeatedly. FIFO must hold across every ring→spill→ring transition.
func TestHandoffSpillInterleaved(t *testing.T) {
	const bursts, perBurst = 40, ringCapacity * 2
	h := newHandoff()
	var got []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		h.drainRuns(func(m Message) { got = append(got, m.Kind) }, func() {})
	}()
	n := 0
	for b := 0; b < bursts; b++ {
		for i := 0; i < perBurst; i++ {
			if !h.push(seqMsg(n)) {
				t.Errorf("push %d rejected", n)
			}
			n++
		}
	}
	h.close()
	wg.Wait()
	if len(got) != n {
		t.Fatalf("delivered %d messages, want %d", len(got), n)
	}
	for i, kind := range got {
		if want := fmt.Sprintf("m%d", i); kind != want {
			t.Fatalf("message %d out of order: got %q, want %q", i, kind, want)
		}
	}
}

// TestHandoffCloseDeliversQueued verifies the mailbox contract carries over:
// messages pushed before close are still delivered, pushes after close are
// rejected.
func TestHandoffCloseDeliversQueued(t *testing.T) {
	h := newHandoff()
	for i := 0; i < 10; i++ {
		h.push(seqMsg(i))
	}
	h.close()
	if h.push(seqMsg(99)) {
		t.Fatal("push accepted after close")
	}
	var got []string
	h.drain(func(m Message) { got = append(got, m.Kind) })
	if len(got) != 10 {
		t.Fatalf("delivered %d queued messages after close, want 10", len(got))
	}
}

// TestHandoffRunBoundaries checks drainRuns invokes runEnd after every run of
// messages and not while blocking idle: one lone message is one run (the
// coalescer flush that keeps an idle server's reply latency unchanged).
func TestHandoffRunBoundaries(t *testing.T) {
	h := newHandoff()
	delivered := make(chan string, 16)
	runs := make(chan struct{}, 16)
	go h.drainRuns(
		func(m Message) { delivered <- m.Kind },
		func() { runs <- struct{}{} },
	)
	h.push(seqMsg(0))
	if got := <-delivered; got != "m0" {
		t.Fatalf("got %q", got)
	}
	<-runs
	h.push(seqMsg(1))
	if got := <-delivered; got != "m1" {
		t.Fatalf("got %q", got)
	}
	<-runs
	h.close()
}
