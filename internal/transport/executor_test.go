package transport

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fastread/internal/shard"
	"fastread/internal/types"
)

// execKeyFunc routes by the payload prefix before '|' (payloads look like
// "key|seq"), mirroring how the real servers route by the wire key.
func execKeyFunc(m Message) ([]byte, bool) {
	i := bytes.IndexByte(m.Payload, '|')
	if i < 0 {
		return nil, false
	}
	return m.Payload[:i], true
}

// execSeq extracts the per-key sequence number from a "key|seq" payload,
// returning -1 on a malformed payload. It runs on executor goroutines where
// t.Fatalf is invalid; the tests' ordering assertions flag the -1 sentinel
// on the test goroutine instead.
func execSeq(m Message) int {
	s := string(m.Payload)
	i := strings.IndexByte(s, '|')
	if i < 0 {
		return -1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return -1
	}
	return n
}

// waitUntil polls cond until it holds or the deadline passes. Closing a node
// discards messages still in flight (exactly as under Serve), so tests wait
// for full delivery before shutting the executor down.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// distinctShards returns keys from the candidates that land on pairwise
// distinct workers, to guarantee the FIFO test actually crosses workers.
func distinctShards(candidates []string, workers, want int) []string {
	used := make(map[uint64]bool)
	var out []string
	for _, k := range candidates {
		s := shard.Hash(k) % uint64(workers)
		if used[s] {
			continue
		}
		used[s] = true
		out = append(out, k)
		if len(out) == want {
			break
		}
	}
	return out
}

// TestExecutorPerKeyFIFO interleaves sends on several keys that hash to
// different workers and asserts every key's messages are handled in send
// order, while messages overall execute on multiple workers. Run under -race
// this also checks the dispatch/worker handoff for data races.
func TestExecutorPerKeyFIFO(t *testing.T) {
	const workers = 4
	const perKey = 500

	candidates := make([]string, 64)
	for i := range candidates {
		candidates[i] = fmt.Sprintf("key-%d", i)
	}
	keys := distinctShards(candidates, workers, 3)
	if len(keys) < 2 {
		t.Fatalf("could not find keys on distinct workers (got %d)", len(keys))
	}

	net := NewInMemNetwork()
	defer func() { _ = net.Close() }()
	server := mustJoin(t, net, types.Server(1))
	client := mustJoin(t, net, types.Writer())

	var mu sync.Mutex
	seqs := make(map[string][]int)
	exec := NewExecutor(server, execKeyFunc, workers)
	var execDone sync.WaitGroup
	execDone.Add(1)
	go func() {
		defer execDone.Done()
		exec.Run(func(m Message) {
			key, _ := execKeyFunc(m)
			mu.Lock()
			seqs[string(key)] = append(seqs[string(key)], execSeq(m))
			mu.Unlock()
		})
	}()

	// One sender interleaves the keys round-robin, so consecutive messages
	// for one key always have other keys' messages between them.
	for seq := 0; seq < perKey; seq++ {
		for _, key := range keys {
			payload := []byte(fmt.Sprintf("%s|%d", key, seq))
			if err := client.Send(types.Server(1), "op", payload); err != nil {
				t.Fatalf("send %s/%d: %v", key, seq, err)
			}
		}
	}

	// The in-memory network delivers reliably, so every message is handled
	// eventually; wait for that, then stop the executor.
	waitUntil(t, "all messages handled", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, key := range keys {
			if len(seqs[key]) != perKey {
				return false
			}
		}
		return true
	})
	if err := server.Close(); err != nil {
		t.Fatalf("close server node: %v", err)
	}
	execDone.Wait()

	for _, key := range keys {
		got := seqs[key]
		if len(got) != perKey {
			t.Fatalf("key %s: handled %d messages, want %d", key, len(got), perKey)
		}
		for i, seq := range got {
			if seq != i {
				t.Fatalf("key %s: position %d got seq %d — per-key FIFO violated", key, i, seq)
			}
		}
	}
}

// TestExecutorDrainsOnStop floods the executor across many keys and checks
// that every message is handled exactly once and that Run returns after the
// node closes with all workers drained.
func TestExecutorDrainsOnStop(t *testing.T) {
	const total = 2000
	net := NewInMemNetwork()
	defer func() { _ = net.Close() }()
	server := mustJoin(t, net, types.Server(1))
	client := mustJoin(t, net, types.Writer())

	var handled atomic.Int64
	exec := NewExecutor(server, execKeyFunc, 4)
	var execDone sync.WaitGroup
	execDone.Add(1)
	go func() {
		defer execDone.Done()
		exec.Run(func(Message) { handled.Add(1) })
	}()

	for i := 0; i < total; i++ {
		payload := []byte(fmt.Sprintf("key-%d|%d", i%17, i))
		if err := client.Send(types.Server(1), "op", payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitUntil(t, "all messages handled", func() bool { return handled.Load() == total })
	if err := server.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	execDone.Wait()
	if n := handled.Load(); n != total {
		t.Fatalf("handled %d messages, want %d", n, total)
	}
}

// TestExecutorRoutesUnkeyedMessages checks that a message whose key cannot be
// extracted still reaches the handler (on worker 0) instead of vanishing —
// the handler owns the decision to drop, exactly as under Serve.
func TestExecutorRoutesUnkeyedMessages(t *testing.T) {
	net := NewInMemNetwork()
	defer func() { _ = net.Close() }()
	server := mustJoin(t, net, types.Server(1))
	client := mustJoin(t, net, types.Writer())

	var handled atomic.Int64
	exec := NewExecutor(server, execKeyFunc, 4)
	var execDone sync.WaitGroup
	execDone.Add(1)
	go func() {
		defer execDone.Done()
		exec.Run(func(Message) { handled.Add(1) })
	}()

	if err := client.Send(types.Server(1), "op", []byte("malformed-no-separator")); err != nil {
		t.Fatalf("send: %v", err)
	}
	waitUntil(t, "unkeyed message handled", func() bool { return handled.Load() == 1 })
	if err := server.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	execDone.Wait()
}

// TestExecutorSingleWorkerInline checks the one-worker degenerate case (the
// GOMAXPROCS=1 shape): handling still works and Run still drains on close.
func TestExecutorSingleWorkerInline(t *testing.T) {
	net := NewInMemNetwork()
	defer func() { _ = net.Close() }()
	server := mustJoin(t, net, types.Server(1))
	client := mustJoin(t, net, types.Writer())

	exec := NewExecutor(server, execKeyFunc, 1)
	if exec.Workers() != 1 {
		t.Fatalf("workers = %d, want 1", exec.Workers())
	}
	var mu sync.Mutex
	var got []int
	var execDone sync.WaitGroup
	execDone.Add(1)
	go func() {
		defer execDone.Done()
		exec.Run(func(m Message) {
			mu.Lock()
			got = append(got, execSeq(m))
			mu.Unlock()
		})
	}()
	for i := 0; i < 100; i++ {
		if err := client.Send(types.Server(1), "op", []byte(fmt.Sprintf("k|%d", i))); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	waitUntil(t, "all messages handled", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 100
	})
	if err := server.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	execDone.Wait()
	for i, seq := range got {
		if seq != i {
			t.Fatalf("position %d got seq %d — FIFO violated", i, seq)
		}
	}
}

// TestMailboxPopAll exercises the batched pop: it takes the whole queue in
// one call, recycles the handed-back buffer, and reports closure only after
// the queue is drained.
func TestMailboxPopAll(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 5; i++ {
		if !m.push(Message{Kind: fmt.Sprintf("m%d", i)}) {
			t.Fatalf("push %d rejected", i)
		}
	}
	batch, ok := m.popAll(nil)
	if !ok || len(batch) != 5 {
		t.Fatalf("popAll = %d msgs, ok=%v; want 5, true", len(batch), ok)
	}
	for i := range batch {
		if want := fmt.Sprintf("m%d", i); batch[i].Kind != want {
			t.Fatalf("batch[%d] = %q, want %q", i, batch[i].Kind, want)
		}
		batch[i] = Message{}
	}

	// The cleared batch becomes the mailbox's next backing array: pushing
	// fewer messages than its capacity must not allocate a fresh one.
	if !m.push(Message{Kind: "again"}) {
		t.Fatal("push after popAll rejected")
	}
	second, ok := m.popAll(batch)
	if !ok || len(second) != 1 || second[0].Kind != "again" {
		t.Fatalf("second popAll = %v, ok=%v", second, ok)
	}

	// Close with messages queued: they must still drain before ok=false.
	m.push(Message{Kind: "last"})
	m.close()
	third, ok := m.popAll(nil)
	if !ok || len(third) != 1 || third[0].Kind != "last" {
		t.Fatalf("popAll after close = %v, ok=%v; want the queued message", third, ok)
	}
	if batch, ok := m.popAll(nil); ok {
		t.Fatalf("popAll on closed drained mailbox returned %v, want ok=false", batch)
	}
}
