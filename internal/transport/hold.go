package transport

import "fastread/internal/types"

// Hold/Release support.
//
// The lower-bound constructions of Sections 5 and 6 build partial runs in
// which specific messages are "in transit": sent, not yet received, and
// delivered only later (or never). Block/Unblock cannot express that — a
// blocked message is dropped — so the network also supports holding a link:
// messages sent while a link is held are queued, and Release delivers them
// in order at a later point of the schedule. HoldForever marks the held
// messages as permanently in transit (they are never delivered), which is
// how an invocation "skips" a block of servers while remaining a legal
// prefix of some run.

// Hold queues (instead of delivering) every message subsequently sent from
// `from` to `to`, until Release or DropHeld is called for the link.
func (n *InMemNetwork) Hold(from, to types.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.held == nil {
		n.held = make(map[link][]Message)
	}
	if _, ok := n.held[link{from, to}]; !ok {
		n.held[link{from, to}] = []Message{}
	}
	n.updateSlowLocked()
}

// HoldPair holds both directions between two processes.
func (n *InMemNetwork) HoldPair(a, b types.ProcessID) {
	n.Hold(a, b)
	n.Hold(b, a)
}

// Release delivers (in order) all messages held on the link and stops
// holding it.
func (n *InMemNetwork) Release(from, to types.ProcessID) {
	n.mu.Lock()
	l := link{from, to}
	msgs := n.held[l]
	delete(n.held, l)
	var dst *inMemNode
	if len(msgs) > 0 {
		dst = (*n.nodes.Load())[to]
	}
	n.updateSlowLocked()
	n.mu.Unlock()

	if dst == nil {
		return
	}
	c := n.countersFor(l)
	for _, msg := range msgs {
		n.delivered.Add(1)
		n.inTransit.Add(1)
		c.delivered.Add(1)
		n.deliver(dst, msg, 0)
	}
}

// DropHeld discards all messages held on the link and stops holding it. The
// dropped messages correspond to messages that remain in transit forever.
func (n *InMemNetwork) DropHeld(from, to types.ProcessID) {
	n.mu.Lock()
	l := link{from, to}
	dropped := len(n.held[l])
	delete(n.held, l)
	n.updateSlowLocked()
	n.mu.Unlock()
	if dropped > 0 {
		n.dropped.Add(int64(dropped))
		n.countersFor(l).dropped.Add(int64(dropped))
	}
}

// HeldCount returns the number of messages currently held on the link.
func (n *InMemNetwork) HeldCount(from, to types.ProcessID) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.held[link{from, to}])
}

// holdIfNeeded queues the message if its link is currently held. It reports
// whether the message was captured. Callers must not hold n.mu. The
// slow-path flag check keeps this off the lock-free fast path: a network
// with no holds configured never takes the lock here.
func (n *InMemNetwork) holdIfNeeded(msg Message) bool {
	if !n.slow.Load() {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	l := link{msg.From, msg.To}
	if n.held == nil {
		return false
	}
	if _, ok := n.held[l]; !ok {
		return false
	}
	n.held[l] = append(n.held[l], msg)
	return true
}
