package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"fastread/internal/types"
)

// The overload tests pin the EXACT shed accounting the acceptance criteria
// demand: with a bound of B and K pushes into a held consumer, exactly
// max(0, K-capacity) messages are shed and counted — never one more (lost
// silently) or one fewer (queued past the bound).

func TestBoundedMailboxExactShed(t *testing.T) {
	const (
		bound = 8
		K     = 100
	)
	var shed atomic.Int64
	m := newBoundedMailbox(bound, &shed)
	accepted := 0
	for i := 0; i < K; i++ {
		if m.push(Message{}) {
			accepted++
		}
	}
	if accepted != bound {
		t.Fatalf("accepted %d, want exactly bound %d", accepted, bound)
	}
	if got := shed.Load(); got != K-bound {
		t.Fatalf("shed %d, want exactly %d", got, K-bound)
	}
	if hw := m.highWater(); hw > bound {
		t.Fatalf("high-water %d exceeds bound %d", hw, bound)
	}
	if m.len() != bound {
		t.Fatalf("queued %d, want %d", m.len(), bound)
	}
	// Draining frees capacity: the next push is admitted again.
	if _, ok := m.pop(); !ok {
		t.Fatal("pop failed")
	}
	if !m.push(Message{}) {
		t.Fatal("push after drain should be admitted")
	}
	if got := shed.Load(); got != K-bound {
		t.Fatalf("admitted push bumped shed to %d", got)
	}
}

func TestBoundedMailboxConcurrentExactShed(t *testing.T) {
	const (
		bound     = 32
		producers = 8
		perProd   = 500
	)
	var shed atomic.Int64
	m := newBoundedMailbox(bound, &shed)
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				if m.push(Message{}) {
					accepted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	total := int64(producers * perProd)
	if accepted.Load()+shed.Load() != total {
		t.Fatalf("accounting leak: accepted %d + shed %d != %d", accepted.Load(), shed.Load(), total)
	}
	if accepted.Load() != bound {
		t.Fatalf("accepted %d with a held consumer, want exactly bound %d", accepted.Load(), bound)
	}
	if hw := m.highWater(); hw > bound {
		t.Fatalf("high-water %d exceeds bound %d", hw, bound)
	}
}

func TestUnboundedMailboxNeverSheds(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 10*ringCapacity; i++ {
		if !m.push(Message{}) {
			t.Fatal("unbounded mailbox rejected a push")
		}
	}
	if m.len() != 10*ringCapacity {
		t.Fatalf("queued %d, want %d", m.len(), 10*ringCapacity)
	}
}

func TestBoundedHandoffExactShed(t *testing.T) {
	const (
		bound = 16
		K     = 2000 // >> ringCapacity + bound
	)
	var shed atomic.Int64
	h := newBoundedHandoff(bound, &shed)
	accepted := 0
	for i := 0; i < K; i++ {
		if h.push(Message{}) {
			accepted++
		}
	}
	// Total queued capacity is the ring plus the bounded spill.
	wantAccepted := ringCapacity + bound
	if accepted != wantAccepted {
		t.Fatalf("accepted %d, want exactly ring(%d)+bound(%d)=%d", accepted, ringCapacity, bound, wantAccepted)
	}
	if got := shed.Load(); got != int64(K-wantAccepted) {
		t.Fatalf("shed %d, want exactly %d", got, K-wantAccepted)
	}
	// Every accepted message is delivered in order once a consumer drains;
	// FIFO across the ring/spill boundary is unchanged by the bound.
	delivered := 0
	done := make(chan struct{})
	go func() {
		h.drain(func(Message) { delivered++ })
		close(done)
	}()
	h.close()
	<-done
	if delivered != wantAccepted {
		t.Fatalf("delivered %d, want %d", delivered, wantAccepted)
	}
}

func TestDemuxRouteBoundExactShed(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	id := types.ProcessID{Role: types.RoleReader, Index: 1}
	node, err := net.Join(id)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDemux(node, func(m Message) ([]byte, bool) { return m.Payload, true }, 4)
	const bound = 8
	d.SetRouteBound(bound)
	rt := d.Route("k")
	// Fill the route without any consumer on its inbox: ring + spill bound +
	// the forwarder's channel buffer + one in the forwarder's hand absorb
	// messages; everything beyond is shed and counted.
	const K = 4096
	for i := 0; i < K; i++ {
		if !rt.(*demuxRoute).box.push(Message{Payload: []byte("k")}) {
			break
		}
	}
	pushMore := 0
	for i := 0; i < 100; i++ {
		if !rt.(*demuxRoute).box.push(Message{Payload: []byte("k")}) {
			pushMore++
		}
	}
	if pushMore != 100 {
		t.Fatalf("full bounded route accepted pushes: rejected only %d of 100", pushMore)
	}
	if d.Sheds() == 0 {
		t.Fatal("route sheds not counted")
	}
	// An unbounded demux never sheds.
	d2 := NewDemux(nodeMust(t, net, types.ProcessID{Role: types.RoleReader, Index: 2}), func(m Message) ([]byte, bool) { return m.Payload, true }, 4)
	rt2 := d2.Route("k")
	for i := 0; i < K; i++ {
		if !rt2.(*demuxRoute).box.push(Message{Payload: []byte("k")}) {
			t.Fatal("unbounded route rejected a push")
		}
	}
	if d2.Sheds() != 0 {
		t.Fatalf("unbounded demux counted %d sheds", d2.Sheds())
	}
}

func nodeMust(t *testing.T, net *InMemNetwork, id types.ProcessID) Node {
	t.Helper()
	n, err := net.Join(id)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestInMemMailboxBoundKeepsHighWaterUnderBound(t *testing.T) {
	const bound = 64
	net := NewInMemNetwork(WithMailboxBound(bound))
	defer net.Close()
	srv := nodeMust(t, net, types.ProcessID{Role: types.RoleServer, Index: 1})
	wrt := nodeMust(t, net, types.ProcessID{Role: types.RoleWriter, Index: 0})
	// Do NOT read srv's inbox: the server pump moves at most a handful of
	// messages out of the mailbox into the channel hand-off; the rest queue
	// until the bound, then shed.
	const K = 5000
	for i := 0; i < K; i++ {
		if err := wrt.Send(srv.ID(), "msg", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if hw := net.MailboxHighWater(); hw > bound {
		t.Fatalf("mailbox high-water %d exceeds bound %d", hw, bound)
	}
	if net.MailboxShed() == 0 {
		t.Fatal("expected sheds on a bounded mailbox with a held consumer")
	}
	// Client mailboxes stay unbounded: a reply storm at the writer must not
	// shed acks. Sending server->writer cannot shed regardless of volume.
	before := net.MailboxShed()
	for i := 0; i < K; i++ {
		if err := srv.Send(wrt.ID(), "ack", []byte("ack")); err != nil {
			t.Fatal(err)
		}
	}
	if net.MailboxShed() != before {
		t.Fatal("client-side mailbox shed messages; bound must only apply to servers")
	}
}

func TestExecutorQueueBoundExactShed(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	srv := nodeMust(t, net, types.ProcessID{Role: types.RoleServer, Index: 1})
	e := NewExecutor(srv, func(m Message) ([]byte, bool) { return m.Payload, true }, 2)
	const bound = 4
	e.SetQueueBound(bound)
	// Push straight at one worker's handoff (all to the same key = same
	// worker); the worker is not running, so capacity is ring + bound.
	h := e.workers[0]
	accepted := 0
	const K = 1000
	for i := 0; i < K; i++ {
		if h.push(Message{}) {
			accepted++
		}
	}
	want := ringCapacity + bound
	if accepted != want {
		t.Fatalf("accepted %d, want %d", accepted, want)
	}
	if e.Sheds() != int64(K-want) {
		t.Fatalf("executor sheds %d, want %d", e.Sheds(), K-want)
	}
}
