package transport

import (
	"testing"
	"time"

	"fastread/internal/types"
)

func TestHoldAndReleaseDeliversInOrder(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))

	net.Hold(a.ID(), b.ID())
	for i := 0; i < 5; i++ {
		if err := a.Send(b.ID(), "held", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := recvWithTimeout(t, b, 50*time.Millisecond); ok {
		t.Fatal("held message delivered before Release")
	}
	if got := net.HeldCount(a.ID(), b.ID()); got != 5 {
		t.Fatalf("HeldCount = %d, want 5", got)
	}

	net.Release(a.ID(), b.ID())
	for i := 0; i < 5; i++ {
		msg, ok := recvWithTimeout(t, b, time.Second)
		if !ok {
			t.Fatalf("message %d not delivered after Release", i)
		}
		if msg.Payload[0] != byte(i) {
			t.Fatalf("out of order after Release: got %d at %d", msg.Payload[0], i)
		}
	}
	// After Release the link behaves normally again.
	if err := a.Send(b.ID(), "normal", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithTimeout(t, b, time.Second); !ok {
		t.Fatal("post-release message not delivered")
	}
}

func TestDropHeldDiscardsMessages(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))

	net.Hold(a.ID(), b.ID())
	if err := a.Send(b.ID(), "lost", nil); err != nil {
		t.Fatal(err)
	}
	net.DropHeld(a.ID(), b.ID())
	if _, ok := recvWithTimeout(t, b, 50*time.Millisecond); ok {
		t.Fatal("dropped held message was delivered")
	}
	if s := net.StatsFor(a.ID(), b.ID()); s.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", s.Dropped)
	}
	// Link no longer held.
	if err := a.Send(b.ID(), "ok", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithTimeout(t, b, time.Second); !ok {
		t.Fatal("post-drop message not delivered")
	}
}

func TestHoldPairHoldsBothDirections(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))
	net.HoldPair(a.ID(), b.ID())
	_ = a.Send(b.ID(), "x", nil)
	_ = b.Send(a.ID(), "y", nil)
	if _, ok := recvWithTimeout(t, b, 30*time.Millisecond); ok {
		t.Error("a→b not held")
	}
	if _, ok := recvWithTimeout(t, a, 30*time.Millisecond); ok {
		t.Error("b→a not held")
	}
	if net.HeldCount(a.ID(), b.ID()) != 1 || net.HeldCount(b.ID(), a.ID()) != 1 {
		t.Error("held counts wrong")
	}
}

func TestReleaseEmptyOrUnknownLinkIsNoop(t *testing.T) {
	net := NewInMemNetwork()
	defer net.Close()
	a := mustJoin(t, net, types.Reader(1))
	b := mustJoin(t, net, types.Server(1))
	net.Release(a.ID(), b.ID()) // never held
	net.Hold(a.ID(), b.ID())
	net.Release(a.ID(), b.ID()) // held but empty
	if err := a.Send(b.ID(), "after", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := recvWithTimeout(t, b, time.Second); !ok {
		t.Fatal("message not delivered after empty release")
	}
}
