//go:build linux && (amd64 || arm64)

// Batched datagram syscalls: sendmmsg(2) on the outbound path and
// recvmmsg(2) on the inbound path, one syscall per up-to-32 datagrams. The
// stdlib syscall package provides the Msghdr/Iovec layouts for linux/amd64
// and linux/arm64 (both with 64-bit Iovlen), so no external x/net or x/sys
// dependency is needed; the mmsg syscall numbers postdate the stdlib's frozen
// sysnum tables and are declared per-arch in mmsg_linux_*.go, and mmsghdr is
// declared here to match the kernel's struct (msghdr plus the per-message
// received length, padded to 8-byte alignment).
//
// Both loops run through the RawConn Read/Write callbacks, so blocking is
// handled by the runtime netpoller exactly as for ordinary reads: the
// syscalls are issued non-blocking and the goroutine parks until the socket
// is ready. A kernel that rejects the syscalls (ENOSYS under some seccomp
// profiles or emulators) flips the node to the portable one-datagram loops
// permanently.

package udpnet

import (
	"net"
	"runtime"
	"sync/atomic"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// batchState carries the raw connection handle and the sender goroutine's
// scratch arrays (headers, iovecs, sockaddr storage — rebuilt per sendmmsg
// call, never escaping it).
type batchState struct {
	rc       syscall.RawConn
	fallback atomic.Bool

	hdrs [sendBatchSize]mmsghdr
	iovs [sendBatchSize]syscall.Iovec
	sa4s [sendBatchSize]syscall.RawSockaddrInet4
	sa6s [sendBatchSize]syscall.RawSockaddrInet6
}

// newBatchState prepares the batch-syscall state for a bound socket, or
// returns nil to select the portable paths.
func newBatchState(conn *net.UDPConn) *batchState {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	return &batchState{rc: rc}
}

// rawSockaddr fills the scratch sockaddr for one destination and returns its
// pointer and size for the msghdr name fields.
func rawSockaddr(addr *net.UDPAddr, sa4 *syscall.RawSockaddrInet4, sa6 *syscall.RawSockaddrInet6) (unsafe.Pointer, uint32) {
	port := [2]byte{byte(addr.Port >> 8), byte(addr.Port)}
	if ip4 := addr.IP.To4(); ip4 != nil {
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET}
		*(*[2]byte)(unsafe.Pointer(&sa4.Port)) = port
		copy(sa4.Addr[:], ip4)
		return unsafe.Pointer(sa4), syscall.SizeofSockaddrInet4
	}
	*sa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6}
	*(*[2]byte)(unsafe.Pointer(&sa6.Port)) = port
	copy(sa6.Addr[:], addr.IP.To16())
	if zone := addr.Zone; zone != "" {
		if ifi, err := net.InterfaceByName(zone); err == nil {
			sa6.Scope_id = uint32(ifi.Index)
		}
	}
	return unsafe.Pointer(sa6), syscall.SizeofSockaddrInet6
}

// writeBatch ships the packets with as few sendmmsg calls as possible. A
// per-call failure drops the first unsent datagram (counted) and carries on,
// so one bad destination cannot wedge the queue; ENOSYS falls back to the
// portable loop for these packets and all future ones.
func (n *Node) writeBatch(pkts []*packet) {
	bs := n.bs
	if bs == nil || bs.fallback.Load() {
		n.writeBatchPortable(pkts)
		return
	}
	i := 0
	for i < len(pkts) {
		cnt := 0
		for j := i; j < len(pkts) && cnt < sendBatchSize; j++ {
			p := pkts[j]
			ptr, size := rawSockaddr(p.addr, &bs.sa4s[cnt], &bs.sa6s[cnt])
			bs.iovs[cnt].Base = &p.buf[0]
			bs.iovs[cnt].SetLen(len(p.buf))
			h := &bs.hdrs[cnt]
			h.hdr = syscall.Msghdr{Name: (*byte)(ptr), Namelen: size, Iov: &bs.iovs[cnt], Iovlen: 1}
			h.len = 0
			cnt++
		}
		var sent int
		var serr syscall.Errno
		err := bs.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg,
				fd, uintptr(unsafe.Pointer(&bs.hdrs[0])), uintptr(cnt), 0, 0, 0)
			if e == syscall.EAGAIN {
				return false // park until writable
			}
			serr, sent = e, int(r1)
			return true
		})
		runtime.KeepAlive(pkts)
		if err == nil && serr == 0 && sent > 0 {
			i += sent
			continue
		}
		if serr == syscall.ENOSYS {
			bs.fallback.Store(true)
			n.writeBatchPortable(pkts[i:])
			return
		}
		// The head datagram could not leave (bad address, transient socket
		// error, closed connection): count it lost and try the rest.
		n.droppedSend.Add(int64(pkts[i].msgs))
		i++
		if err != nil {
			// The connection itself is gone; everything left is lost too.
			for _, p := range pkts[i:] {
				n.droppedSend.Add(int64(p.msgs))
			}
			return
		}
	}
}

// readLoop drains the socket with recvmmsg into a fixed ring of read buffers,
// handing each datagram to handleDatagram (which copies the frame into a
// right-sized arena, so the ring buffers never escape this goroutine).
func (n *Node) readLoop() {
	defer n.wg.Done()
	bs := n.bs
	if bs == nil {
		n.readLoopPortable()
		return
	}
	bufs := make([][]byte, recvBatchSize)
	iovs := make([]syscall.Iovec, recvBatchSize)
	hdrs := make([]mmsghdr, recvBatchSize)
	for i := range bufs {
		bufs[i] = make([]byte, maxDatagramSize)
		iovs[i].Base = &bufs[i][0]
		iovs[i].SetLen(maxDatagramSize)
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
	}
	for {
		var got int
		var serr syscall.Errno
		err := bs.rc.Read(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysRecvmmsg,
				fd, uintptr(unsafe.Pointer(&hdrs[0])), recvBatchSize, syscall.MSG_DONTWAIT, 0, 0)
			if e == syscall.EAGAIN {
				return false // park until readable
			}
			serr, got = e, int(r1)
			return true
		})
		runtime.KeepAlive(bufs)
		if err != nil {
			return // socket closed
		}
		if serr != 0 {
			if serr == syscall.ENOSYS {
				bs.fallback.Store(true)
				n.readLoopPortable()
				return
			}
			// Transient per-datagram errors (e.g. a queued ICMP error on
			// some configurations) do not invalidate the socket.
			continue
		}
		for i := 0; i < got; i++ {
			n.handleDatagram(bufs[i][:hdrs[i].len])
		}
	}
}
