// Package udpnet implements the transport.Node interface over UDP datagrams
// — the raw-speed tier of the socket transports. Where tcpnet spends syscalls
// on connection management and in-order byte streams the protocols never
// asked for, udpnet maps the paper's asynchronous lossy network directly onto
// datagrams: a message either arrives whole or it does not, and the register
// protocols already tolerate loss by construction (they only ever wait for
// S−t of S replies and never retransmit).
//
// What UDP does NOT give us — and the transport must add — is at-most-once
// delivery: datagrams can be duplicated in flight, and a duplicated WRITE ack
// is indistinguishable from a fresh one to the quorum counters. Every
// datagram therefore carries a 64-bit sequence number and receivers keep a
// per-sender dedup window (highest sequence seen plus a 64-bit bitmap of the
// recent past); duplicates and stale replays are dropped and counted. The
// sequence counter is seeded from the wall clock at start-up so a restarted
// process never replays sequence numbers its peers have already seen.
//
// Syscall batching replaces tcpnet's stream coalescing: outbound datagrams
// from all senders funnel through one bounded queue drained by a single
// sender goroutine that ships up to sendBatchSize datagrams per sendmmsg(2)
// call; the receive side reads up to recvBatchSize datagrams per recvmmsg(2)
// call. On platforms without the mmsg syscalls (or when the kernel rejects
// them) both paths degrade to one-datagram-per-syscall loops with identical
// semantics. Senders never block: a full outbound queue drops the datagram
// whole (counted), exactly like a lossy link.
//
// The frame layout inside a datagram is tcpnet's, minus the length prefix
// (datagram boundaries are self-delimiting) and plus the sequence number, so
// the batch-envelope framing the executor coalescers emit travels unchanged:
// a datagram whose kind is wire.BatchKind expands into per-message views
// aliasing one shared refcounted arena, exactly as on TCP.
package udpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// AddressBook maps process identities to their "host:port" UDP addresses.
type AddressBook map[types.ProcessID]string

// Clone returns a copy of the address book.
func (b AddressBook) Clone() AddressBook {
	out := make(AddressBook, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Config configures one UDP-attached process.
type Config struct {
	// Self is the identity of this process.
	Self types.ProcessID
	// ListenAddr is the address to bind; when empty, the address book entry
	// for Self is used.
	ListenAddr string
	// Book maps every peer (and usually Self) to its address.
	Book AddressBook
	// Resolve, when non-nil, is consulted for destinations the Book does not
	// cover, serving the same live-address-table role as tcpnet's Resolve
	// (deployments on ephemeral ports). Must be safe for concurrent use.
	Resolve func(types.ProcessID) (string, bool)
	// ReceiveFilter, when non-nil, is consulted for every inbound datagram
	// with the claimed sender identity; returning false drops the datagram
	// before dedup and delivery, exactly as if the network had lost it. It
	// exists for packet-loss injection in tests (the protocols must complete
	// through the surviving quorum) and must be safe for concurrent use.
	ReceiveFilter func(from types.ProcessID) bool
}

// Errors returned by the UDP transport.
var (
	// ErrNoAddress indicates a destination without an address book entry.
	ErrNoAddress = errors.New("udpnet: no address for destination")
	// ErrClosed indicates the node has been closed.
	ErrClosed = errors.New("udpnet: node closed")
)

// maxDatagramSize bounds one datagram, comfortably under UDP's 65,507-byte
// payload ceiling. Inbound reads use buffers of exactly this size; anything
// longer is truncated by the kernel and then rejected by the parser.
const maxDatagramSize = 60 << 10

// packetOverhead is the per-datagram header: uint64 seq + byte role + uint32
// index + uint16 kindLen + kind + uint32 payloadLen.
const packetOverhead = 8 + 1 + 4 + 2 + 4

// maxPayloadSize bounds a single outbound payload so the full datagram
// (header + longest kind string) stays inside maxDatagramSize.
const maxPayloadSize = maxDatagramSize - packetOverhead - 64

// sendBatchSize is the number of datagrams shipped per sendmmsg call, and
// recvBatchSize the number read per recvmmsg call.
const (
	sendBatchSize = 32
	recvBatchSize = 32
)

// outboundQueueLen bounds datagrams awaiting the sender goroutine. Senders
// never block on the socket; overflow is dropped whole and counted.
const outboundQueueLen = 1024

// NodeStats counts what happened on one UDP node so far. It extends tcpnet's
// counter set with DedupDrops, the datagrams discarded by the at-most-once
// window.
type NodeStats struct {
	// Delivered counts protocol messages decoded and handed to the inbox. A
	// batch datagram contributes one count per message it carries.
	Delivered int64
	// Frames counts datagrams read off the socket (the UDP analogue of
	// tcpnet's wire frames; the batching-efficiency denominator).
	Frames int64
	// DroppedInbound counts messages discarded because the inbox was full.
	DroppedInbound int64
	// DroppedSend counts outbound messages discarded because the destination
	// was unresolvable, the outbound queue was full, the datagram was
	// oversized, or the send syscall failed.
	DroppedSend int64
	// DedupDrops counts inbound datagrams discarded by the per-sender
	// at-most-once window: duplicates, replays and datagrams older than the
	// 64-entry window.
	DedupDrops int64
}

// packet is one encoded outbound datagram queued for the sender goroutine.
type packet struct {
	buf  []byte // complete datagram (seq + frame), pooled
	addr *net.UDPAddr
	msgs int // protocol messages inside, for drop accounting
}

var packetPool = sync.Pool{New: func() any { return &packet{buf: make([]byte, 0, 2048)} }}

func putPacket(p *packet) {
	p.buf = p.buf[:0]
	p.addr = nil
	p.msgs = 0
	packetPool.Put(p)
}

// Node is one process attached to the UDP network.
type Node struct {
	cfg  Config
	conn *net.UDPConn
	box  chan transport.Message
	out  chan *packet
	done chan struct{}

	mu     sync.Mutex
	peers  map[types.ProcessID]*net.UDPAddr
	closed bool

	// seq is the node-wide outbound sequence counter, seeded from the wall
	// clock so a restart never reuses sequence numbers already seen by
	// peers' dedup windows. One counter covers all destinations: receivers
	// key their windows by sender, and gaps (sequences spent on other
	// destinations) are indistinguishable from loss, which the window
	// tolerates by design.
	seq atomic.Uint64

	// dedup is owned by the read loop goroutine; no lock needed.
	dedup map[types.ProcessID]*dedupWindow

	delivered      atomic.Int64
	frames         atomic.Int64
	droppedInbound atomic.Int64
	droppedSend    atomic.Int64
	dedupDrops     atomic.Int64

	// bs holds the platform batch-syscall state (nil when unavailable).
	bs *batchState

	wg sync.WaitGroup
}

var _ transport.Node = (*Node)(nil)

// Listen binds a UDP node for the given process.
func Listen(cfg Config) (*Node, error) {
	if !cfg.Self.Valid() {
		return nil, fmt.Errorf("udpnet: invalid self identity %v", cfg.Self)
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = cfg.Book[cfg.Self]
	}
	if addr == "" {
		return nil, fmt.Errorf("%w: %v (set ListenAddr or add a book entry)", ErrNoAddress, cfg.Self)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %s: %w", addr, err)
	}
	return newNode(cfg, conn), nil
}

// newNode wraps a bound socket in a running Node.
func newNode(cfg Config, conn *net.UDPConn) *Node {
	cfg.Book = cfg.Book.Clone()
	// Generous kernel buffers absorb bursts the batched syscalls have not
	// drained yet; loss past that point is the lossy-link model at work.
	_ = conn.SetReadBuffer(4 << 20)
	_ = conn.SetWriteBuffer(4 << 20)
	n := &Node{
		cfg:   cfg,
		conn:  conn,
		box:   make(chan transport.Message, 1024),
		out:   make(chan *packet, outboundQueueLen),
		done:  make(chan struct{}),
		peers: make(map[types.ProcessID]*net.UDPAddr),
		dedup: make(map[types.ProcessID]*dedupWindow),
		bs:    newBatchState(conn),
	}
	n.seq.Store(uint64(time.Now().UnixMicro()))
	n.wg.Add(2)
	go n.readLoop()
	go n.sendLoop()
	return n
}

// Addr returns the address the node is bound to (useful with ":0").
func (n *Node) Addr() string { return n.conn.LocalAddr().String() }

// ID implements transport.Node.
func (n *Node) ID() types.ProcessID { return n.cfg.Self }

// Inbox implements transport.Node.
func (n *Node) Inbox() <-chan transport.Message { return n.box }

// Stats returns a snapshot of the node's delivery and drop counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Delivered:      n.delivered.Load(),
		Frames:         n.frames.Load(),
		DroppedInbound: n.droppedInbound.Load(),
		DroppedSend:    n.droppedSend.Load(),
		DedupDrops:     n.dedupDrops.Load(),
	}
}

// Send implements transport.Node. The payload is fully copied into a pooled
// datagram buffer before Send returns; ownership is NOT retained. Messages to
// unknown destinations, oversized single messages and messages arriving at a
// full outbound queue are dropped (and counted) — never blocking the sender,
// which is the datagram analogue of tcpnet's bounded write queue. A batch
// envelope too large for one datagram is split into several full datagrams
// rather than dropped.
func (n *Node) Send(to types.ProcessID, kind string, payload []byte) error {
	n.mu.Lock()
	closed := n.closed
	n.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if len(payload) > maxPayloadSize {
		if kind == wire.BatchKind && wire.IsBatch(payload) {
			return n.sendChunked(to, payload)
		}
		n.droppedSend.Add(1)
		return fmt.Errorf("udpnet: payload too large (%d bytes)", len(payload))
	}
	return n.sendOne(to, kind, payload)
}

// sendOne encodes one datagram and hands it to the sender goroutine.
func (n *Node) sendOne(to types.ProcessID, kind string, payload []byte) error {
	msgs := 1
	if kind == wire.BatchKind && wire.IsBatch(payload) {
		if c, err := wire.BatchCount(payload); err == nil {
			msgs = c
		}
	}
	addr, err := n.addrOf(to)
	if err != nil {
		// Unresolvable peer: the message is lost in transit. Not an error
		// for the sender in the asynchronous model.
		n.droppedSend.Add(int64(msgs))
		return nil
	}
	p := packetPool.Get().(*packet)
	p.buf = appendPacket(p.buf[:0], n.seq.Add(1), n.cfg.Self, kind, payload)
	p.addr = addr
	p.msgs = msgs
	select {
	case n.out <- p:
	default:
		n.droppedSend.Add(int64(msgs))
		putPacket(p)
	}
	return nil
}

// sendChunked splits a batch envelope that cannot fit one datagram into
// several smaller envelopes, each sent as its own datagram. Coalescers bound
// their runs well below a datagram in practice; this path keeps correctness
// when they do not. Entries too large even alone are dropped and counted.
func (n *Node) sendChunked(to types.ProcessID, envelope []byte) error {
	chunk := wire.NewBatch(0)
	flush := func() error {
		if chunk.Count() == 0 {
			return nil
		}
		err := n.sendOne(to, wire.BatchKind, chunk.Bytes())
		// sendOne copied the bytes into a pooled datagram buffer, so the
		// chunk buffer is safely reusable (no receiver ever aliases it).
		chunk.Reset()
		return err
	}
	_ = wire.ForEachInBatch(envelope, func(sub []byte) error {
		if len(sub)+8 > maxPayloadSize {
			n.droppedSend.Add(1)
			return nil
		}
		if chunk.Count() > 0 && chunk.Size()+4+len(sub) > maxPayloadSize {
			_ = flush()
		}
		chunk.Append(sub)
		return nil
	})
	return flush()
}

// addrOf resolves and caches a destination's UDP address.
func (n *Node) addrOf(to types.ProcessID) (*net.UDPAddr, error) {
	n.mu.Lock()
	if a, ok := n.peers[to]; ok {
		n.mu.Unlock()
		return a, nil
	}
	addr, ok := n.cfg.Book[to]
	n.mu.Unlock()
	if !ok && n.cfg.Resolve != nil {
		addr, ok = n.cfg.Resolve(to)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoAddress, to)
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	n.peers[to] = ua
	n.mu.Unlock()
	return ua, nil
}

// Close implements transport.Node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)      // stops the sender goroutine
	_ = n.conn.Close() // unblocks the read loop
	n.wg.Wait()
	// Count datagrams the sender never got to as send drops; they were
	// accepted into the queue but can no longer leave.
	for {
		select {
		case p := <-n.out:
			n.droppedSend.Add(int64(p.msgs))
			putPacket(p)
		default:
			close(n.box)
			return nil
		}
	}
}

// sendLoop drains the outbound queue, shipping up to sendBatchSize datagrams
// per writeBatch call (one sendmmsg syscall on Linux). The queue decouples
// senders from syscalls the way tcpnet's per-peer flusher does, except
// batching is across destinations: sendmmsg carries a per-datagram
// destination address, so one syscall fans a quorum broadcast out to every
// server.
func (n *Node) sendLoop() {
	defer n.wg.Done()
	batch := make([]*packet, 0, sendBatchSize)
	for {
		select {
		case <-n.done:
			return
		case p := <-n.out:
			batch = append(batch[:0], p)
		fill:
			for len(batch) < sendBatchSize {
				select {
				case q := <-n.out:
					batch = append(batch, q)
				default:
					break fill
				}
			}
			n.writeBatch(batch)
			for _, q := range batch {
				putPacket(q)
			}
		}
	}
}

// writeBatchPortable ships each datagram with its own write syscall: the
// semantics-preserving fallback for platforms (or kernels) without sendmmsg.
func (n *Node) writeBatchPortable(pkts []*packet) {
	for _, p := range pkts {
		if _, err := n.conn.WriteToUDP(p.buf, p.addr); err != nil {
			n.droppedSend.Add(int64(p.msgs))
		}
	}
}

// readLoopPortable reads one datagram per syscall: the fallback receive path.
func (n *Node) readLoopPortable() {
	buf := make([]byte, maxDatagramSize)
	for {
		m, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		n.handleDatagram(buf[:m])
	}
}

// handleDatagram validates, dedups and delivers one inbound datagram. The
// frame body is copied once into a right-sized pooled refcounted arena so
// every delivered view — including each message of a batch envelope — aliases
// recycled memory rather than a fresh per-datagram allocation (wire's
// ownership rule 4), while the fixed-size read buffer returns to the
// recvmmsg ring immediately. Right-sizing matters here: server retention
// points pin a delivered message's arena for as long as the adopted value
// lives, and pinning a 60 KiB read buffer per register would defeat the pool.
func (n *Node) handleDatagram(pkt []byte) {
	n.frames.Add(1)
	seq, from, kind, payload, err := parsePacket(pkt)
	if err != nil {
		// Malformed datagrams (hostile or truncated) vanish silently, like
		// any other undecodable traffic in the asynchronous model.
		return
	}
	if f := n.cfg.ReceiveFilter; f != nil && !f(from) {
		return
	}
	w := n.dedup[from]
	if w == nil {
		w = &dedupWindow{}
		n.dedup[from] = w
	}
	if w.observe(seq) {
		n.dedupDrops.Add(1)
		return
	}

	body := pkt[8:]
	arena := wire.GetArena(len(body))
	abody := arena.Bytes()
	copy(abody, body)
	apayload := abody[len(body)-len(payload):]

	// Batch expansion mirrors tcpnet's readLoop: one arena reference per
	// delivered message, the creator's reference dropped after expansion.
	if kind == wire.BatchKind && wire.IsBatch(apayload) {
		_ = wire.ForEachInBatch(apayload, func(sub []byte) error {
			arena.Ref()
			n.deliverInbound(transport.Message{From: from, To: n.cfg.Self, Kind: kind, Payload: sub, Arena: arena})
			return nil
		})
		arena.Release()
		return
	}
	n.deliverInbound(transport.Message{From: from, To: n.cfg.Self, Kind: kind, Payload: apayload, Arena: arena})
}

// deliverInbound hands one decoded message to the inbox, counting it either
// way. A dropped message gives its arena reference back immediately.
func (n *Node) deliverInbound(msg transport.Message) {
	select {
	case n.box <- msg:
		n.delivered.Add(1)
	default:
		msg.ReleaseArena()
		n.droppedInbound.Add(1)
	}
}

// dedupWindow is one sender's at-most-once state: the highest sequence seen
// and a bitmap of the 64 sequences just below it (bit i marks hi-1-i). A
// datagram above the window advances it; one inside the window is accepted
// exactly once; one below the window is treated as a replay and dropped —
// with sequences seeded from the wall clock, anything 64 sequences stale is
// either a duplicate or a previous incarnation's traffic.
type dedupWindow struct {
	seen bool
	hi   uint64
	bits uint64
}

// observe records a sequence number, reporting true when the datagram must be
// dropped as a duplicate or stale replay.
func (w *dedupWindow) observe(s uint64) bool {
	if !w.seen {
		w.seen, w.hi = true, s
		return false
	}
	switch {
	case s > w.hi:
		d := s - w.hi
		if d >= 64 {
			w.bits = 0
		} else {
			// The old highest moves to distance d inside the window.
			w.bits = w.bits<<d | 1<<(d-1)
		}
		w.hi = s
		return false
	case s == w.hi:
		return true
	default:
		d := w.hi - s
		if d > 64 {
			return true
		}
		mask := uint64(1) << (d - 1)
		if w.bits&mask != 0 {
			return true
		}
		w.bits |= mask
		return false
	}
}

// appendPacket encodes one datagram: the sequence number followed by the
// tcpnet frame body (sender identity, kind, payload) — no length prefix, the
// datagram boundary is the frame boundary.
func appendPacket(buf []byte, seq uint64, from types.ProcessID, kind string, payload []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = append(buf, byte(from.Role))
	buf = binary.BigEndian.AppendUint32(buf, uint32(from.Index))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(kind)))
	buf = append(buf, kind...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	return buf
}

// parsePacket decodes one datagram. The returned kind and payload ALIAS pkt;
// every view is bounds-checked against the datagram length (the fuzz target
// FuzzParsePacket holds parsePacket to "never panic, views in bounds" on
// arbitrary input).
func parsePacket(pkt []byte) (seq uint64, from types.ProcessID, kind string, payload []byte, err error) {
	if len(pkt) < packetOverhead {
		err = errors.New("udpnet: truncated datagram")
		return
	}
	seq = binary.BigEndian.Uint64(pkt)
	body := pkt[8:]
	from = types.ProcessID{Role: types.Role(body[0]), Index: int(binary.BigEndian.Uint32(body[1:5]))}
	if !from.Valid() {
		err = fmt.Errorf("udpnet: invalid sender %v", from)
		return
	}
	off := 5
	kindLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if off+kindLen+4 > len(body) {
		err = errors.New("udpnet: truncated kind")
		return
	}
	// Nearly every datagram under load is a coalesced batch; comparing
	// against the constant avoids materialising a kind string per datagram.
	if kindBytes := body[off : off+kindLen]; string(kindBytes) == wire.BatchKind {
		kind = wire.BatchKind
	} else {
		kind = string(kindBytes)
	}
	off += kindLen
	payloadLen := int(binary.BigEndian.Uint32(body[off : off+4]))
	off += 4
	if payloadLen < 0 || off+payloadLen != len(body) {
		err = errors.New("udpnet: inconsistent payload length")
		kind = ""
		return
	}
	payload = body[off:]
	return
}

// LocalCluster binds one UDP node per identity, all on loopback with
// ephemeral ports, and returns them along with the shared address book.
func LocalCluster(ids []types.ProcessID) (map[types.ProcessID]*Node, AddressBook, error) {
	conns := make(map[types.ProcessID]*net.UDPConn, len(ids))
	book := make(AddressBook, len(ids))
	for _, id := range ids {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			for _, prev := range conns {
				_ = prev.Close()
			}
			return nil, nil, err
		}
		conns[id] = conn
		book[id] = conn.LocalAddr().String()
	}
	nodes := make(map[types.ProcessID]*Node, len(ids))
	for _, id := range ids {
		nodes[id] = newNode(Config{Self: id, Book: book}, conns[id])
	}
	return nodes, book, nil
}
