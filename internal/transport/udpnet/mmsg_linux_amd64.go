//go:build linux && amd64

package udpnet

// The mmsg syscall numbers for linux/amd64; sendmmsg postdates the stdlib
// syscall package's frozen sysnum table.
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
