//go:build linux && arm64

package udpnet

// The mmsg syscall numbers for linux/arm64.
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
