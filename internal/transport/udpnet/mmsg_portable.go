//go:build !linux || !(amd64 || arm64)

// Portable datagram paths for platforms without the batched mmsg syscalls:
// identical semantics, one syscall per datagram.

package udpnet

import "net"

// batchState is empty without the batch syscalls.
type batchState struct{}

// newBatchState reports no batch-syscall support.
func newBatchState(conn *net.UDPConn) *batchState { return nil }

// writeBatch ships each datagram with its own write syscall.
func (n *Node) writeBatch(pkts []*packet) { n.writeBatchPortable(pkts) }

// readLoop reads one datagram per syscall.
func (n *Node) readLoop() {
	defer n.wg.Done()
	n.readLoopPortable()
}
