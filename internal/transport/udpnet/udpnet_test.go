package udpnet

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

func testIDs() (types.ProcessID, types.ProcessID) {
	return types.ProcessID{Role: types.RoleServer, Index: 1}, types.ProcessID{Role: types.RoleServer, Index: 2}
}

// recvOne waits for one inbox message with a deadline.
func recvOne(t *testing.T, n *Node) transport.Message {
	t.Helper()
	select {
	case m := <-n.Inbox():
		return m
	case <-time.After(5 * time.Second):
		t.Fatalf("no message delivered to %v", n.ID())
		return transport.Message{}
	}
}

func TestUDPSendReceive(t *testing.T) {
	a, b := testIDs()
	nodes, _, err := LocalCluster([]types.ProcessID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	if err := nodes[a].Send(b, "kind", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, nodes[b])
	if m.From != a || m.Kind != "kind" || string(m.Payload) != "payload" {
		t.Fatalf("got %v %q %q", m.From, m.Kind, m.Payload)
	}
	if m.Arena == nil {
		t.Fatal("delivered message carries no arena")
	}
	m.ReleaseArena()

	st := nodes[b].Stats()
	if st.Delivered != 1 || st.Frames != 1 {
		t.Fatalf("stats = %+v, want 1 delivered / 1 frame", st)
	}
}

// TestUDPBatchExpansion checks a batch envelope leaves as one datagram and
// arrives as its individual messages, every view carrying a reference to one
// shared arena.
func TestUDPBatchExpansion(t *testing.T) {
	a, b := testIDs()
	nodes, _, err := LocalCluster([]types.ProcessID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	batch := wire.NewBatch(0)
	const msgs = 5
	for i := 0; i < msgs; i++ {
		batch.Append([]byte(fmt.Sprintf("entry-%d", i)))
	}
	if err := nodes[a].Send(b, wire.BatchKind, batch.Bytes()); err != nil {
		t.Fatal(err)
	}

	var arena *wire.Arena
	for i := 0; i < msgs; i++ {
		m := recvOne(t, nodes[b])
		if want := fmt.Sprintf("entry-%d", i); string(m.Payload) != want {
			t.Fatalf("entry %d = %q, want %q", i, m.Payload, want)
		}
		if m.Arena == nil {
			t.Fatalf("entry %d carries no arena", i)
		}
		if arena == nil {
			arena = m.Arena
		} else if m.Arena != arena {
			t.Fatalf("entry %d on a different arena", i)
		}
		m.ReleaseArena()
	}
	st := nodes[b].Stats()
	if st.Delivered != msgs || st.Frames != 1 {
		t.Fatalf("stats = %+v, want %d delivered / 1 frame", st, msgs)
	}
}

// TestUDPChunkedOversizedBatch sends a batch envelope too large for one
// datagram and expects every message to arrive, split across datagrams.
func TestUDPChunkedOversizedBatch(t *testing.T) {
	a, b := testIDs()
	nodes, _, err := LocalCluster([]types.ProcessID{a, b})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	entry := bytes.Repeat([]byte("x"), 1000)
	batch := wire.NewBatch(0)
	const msgs = 70 // ~70 KB envelope > maxPayloadSize
	for i := 0; i < msgs; i++ {
		batch.Append(entry)
	}
	if len(batch.Bytes()) <= maxPayloadSize {
		t.Fatalf("test envelope not oversized (%d bytes)", len(batch.Bytes()))
	}
	if err := nodes[a].Send(b, wire.BatchKind, batch.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < msgs; i++ {
		m := recvOne(t, nodes[b])
		if !bytes.Equal(m.Payload, entry) {
			t.Fatalf("entry %d corrupted (%d bytes)", i, len(m.Payload))
		}
		m.ReleaseArena()
	}
	if st := nodes[b].Stats(); st.Frames < 2 {
		t.Fatalf("oversized envelope arrived in %d frame(s), want several", st.Frames)
	}
}

// TestUDPDedupWindow drives the at-most-once window through advances,
// in-window acceptance, duplicates and stale replays.
func TestUDPDedupWindow(t *testing.T) {
	var w dedupWindow
	steps := []struct {
		seq  uint64
		drop bool
	}{
		{100, false}, // first
		{100, true},  // exact duplicate
		{101, false}, // advance
		{99, false},  // in-window, first time
		{99, true},   // in-window duplicate
		{98, false},
		{300, false}, // jump past the window
		{101, true},  // now stale
	}
	for i, s := range steps {
		if got := w.observe(s.seq); got != s.drop {
			t.Fatalf("step %d: observe(%d) = %v, want %v", i, s.seq, got, s.drop)
		}
	}
	// Distance 64 is the window edge: seq hi-64 is representable (bit 63).
	if w.observe(300 - 64) {
		t.Fatal("seq at window edge wrongly dropped")
	}
	if !w.observe(300 - 65) {
		t.Fatal("seq beyond window wrongly accepted")
	}
}

// TestUDPDedupEndToEnd replays an identical datagram on the wire and expects
// exactly one delivery plus one counted dedup drop.
func TestUDPDedupEndToEnd(t *testing.T) {
	a, b := testIDs()
	nodes, book, err := LocalCluster([]types.ProcessID{b})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	raddr, err := net.ResolveUDPAddr("udp", book[b])
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	pkt := appendPacket(nil, 42, a, "kind", []byte("once"))
	for i := 0; i < 3; i++ {
		if _, err := conn.Write(pkt); err != nil {
			t.Fatal(err)
		}
	}
	m := recvOne(t, nodes[b])
	if string(m.Payload) != "once" {
		t.Fatalf("payload = %q", m.Payload)
	}
	m.ReleaseArena()

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := nodes[b].Stats()
		if st.DedupDrops >= 2 {
			if st.Delivered != 1 {
				t.Fatalf("delivered %d copies, want 1", st.Delivered)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dedup drops never counted: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestUDPReceiveFilter verifies the packet-loss injection hook: filtered
// datagrams vanish before dedup and delivery.
func TestUDPReceiveFilter(t *testing.T) {
	a, b := testIDs()
	blocked := types.ProcessID{Role: types.RoleServer, Index: 3}
	nodes, book, err := LocalCluster([]types.ProcessID{a, blocked})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	sink, err := Listen(Config{
		Self:          b,
		ListenAddr:    "127.0.0.1:0",
		Book:          book,
		ReceiveFilter: func(from types.ProcessID) bool { return from != blocked },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	book[b] = sink.Addr()
	// The LocalCluster nodes cloned the book before b joined; point them at
	// the sink explicitly.
	nodes[a].cfg.Book[b] = sink.Addr()
	nodes[blocked].cfg.Book[b] = sink.Addr()

	if err := nodes[blocked].Send(b, "k", []byte("dropped")); err != nil {
		t.Fatal(err)
	}
	if err := nodes[a].Send(b, "k", []byte("passed")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, sink)
	if m.From != a || string(m.Payload) != "passed" {
		t.Fatalf("delivered %v %q, want the unfiltered sender", m.From, m.Payload)
	}
	m.ReleaseArena()
	select {
	case m := <-sink.Inbox():
		t.Fatalf("filtered datagram delivered: %v %q", m.From, m.Payload)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestUDPSendDropsCounted verifies unreachable destinations and oversized
// payloads surface as send drops rather than errors or blocking.
func TestUDPSendDropsCounted(t *testing.T) {
	a, b := testIDs()
	nodes, _, err := LocalCluster([]types.ProcessID{a})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	if err := nodes[a].Send(b, "k", []byte("nowhere")); err != nil {
		t.Fatalf("send to unknown peer = %v, want silent drop", err)
	}
	if err := nodes[a].Send(a, "k", make([]byte, maxPayloadSize+1)); err == nil {
		t.Fatal("oversized non-batch payload accepted")
	}
	if st := nodes[a].Stats(); st.DroppedSend != 2 {
		t.Fatalf("DroppedSend = %d, want 2", st.DroppedSend)
	}
}

func TestUDPClosedNode(t *testing.T) {
	a, _ := testIDs()
	nodes, _, err := LocalCluster([]types.ProcessID{a})
	if err != nil {
		t.Fatal(err)
	}
	n := nodes[a]
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if err := n.Send(a, "k", []byte("x")); err != ErrClosed {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	if _, ok := <-n.Inbox(); ok {
		t.Fatal("inbox not closed")
	}
}

// FuzzParsePacket holds the datagram parser to its contract on arbitrary
// input: never panic, and on success return views strictly inside the packet
// with a sender identity that passed validation.
func FuzzParsePacket(f *testing.F) {
	a, _ := testIDs()
	f.Add(appendPacket(nil, 7, a, "kind", []byte("payload")))
	f.Add(appendPacket(nil, 0, types.ProcessID{Role: types.RoleWriter}, wire.BatchKind, nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
	f.Fuzz(func(t *testing.T, pkt []byte) {
		seq, from, kind, payload, err := parsePacket(pkt)
		if err != nil {
			return
		}
		if !from.Valid() {
			t.Fatalf("parser accepted invalid sender %v", from)
		}
		if len(payload) > len(pkt) {
			t.Fatalf("payload view (%d bytes) exceeds packet (%d bytes)", len(payload), len(pkt))
		}
		// Round-trip: re-encoding the parsed fields must reproduce the
		// packet byte for byte (the layout has no redundancy).
		if re := appendPacket(nil, seq, from, kind, payload); !bytes.Equal(re, pkt) {
			t.Fatalf("re-encode mismatch:\n in: %x\nout: %x", pkt, re)
		}
	})
}
