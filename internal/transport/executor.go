package transport

import (
	"runtime"
	"sync"

	"fastread/internal/shard"
)

// Executor drains a node's inbox and executes a handler over N key-sharded
// workers, so one server process scales across cores instead of serialising
// every register's traffic through a single handler goroutine.
//
// Each delivered message is dispatched by the hash of its register key to a
// fixed worker: the SAME key always lands on the SAME worker. That preserves,
// at worker granularity, the two properties the protocol servers rely on:
//
//   - Per-key FIFO delivery. The dispatcher reads the inbox in delivery
//     order and each worker's mailbox is FIFO, so two messages carrying the
//     same key are handled in the order the transport delivered them.
//     Messages for DIFFERENT keys may be handled in any order, which the
//     asynchronous model already permits (they could have been delayed).
//
//   - Sole mutator. All messages naming a key are handled by one goroutine,
//     so that key's server state has a single mutating goroutine and the
//     hot-path aliasing discipline of internal/wire/pool.go carries over
//     unchanged: an ack may alias the key's stored state because no other
//     worker ever mutates it.
//
// Messages whose key cannot be extracted (keyOf reports ok=false, e.g. an
// undecodable payload) are routed to worker 0 rather than dropped, so the
// handler still observes them and can trace the drop itself — exactly what
// the single-goroutine Serve loop did.
//
// Workers pull RUNS of messages per synchronisation: each worker drains its
// whole mailbox in one batched pop (mailbox.popAll, an O(1) slice swap under
// the lock), then handles the batch lock-free. Under load this amortises the
// mutex/condvar traffic of the old one-pop-per-message loop across the whole
// run.
type Executor struct {
	node    Node
	keyOf   KeyFunc
	workers []*mailbox
	wg      sync.WaitGroup
}

// NewExecutor builds an executor over the node with the given number of
// key-shard workers (GOMAXPROCS if workers <= 0). It does not start any
// goroutine; call Run.
func NewExecutor(node Node, keyOf KeyFunc, workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{node: node, keyOf: keyOf}
	for i := 0; i < workers; i++ {
		e.workers = append(e.workers, newMailbox())
	}
	return e
}

// Workers returns the number of key-shard workers.
func (e *Executor) Workers() int { return len(e.workers) }

// Run dispatches the node's inbox across the workers and blocks until the
// node is closed AND every worker has drained its mailbox, so a caller that
// closes the node and then waits for Run to return observes every delivered
// message handled. Run must be called at most once.
//
// With a single worker the dispatch hop would buy nothing, so Run degenerates
// to the plain Serve loop: handler runs inline on the dispatcher goroutine,
// with identical semantics and no added queueing.
func (e *Executor) Run(handler func(Message)) {
	if len(e.workers) == 1 {
		Serve(e.node, handler)
		return
	}
	e.wg.Add(len(e.workers))
	for _, box := range e.workers {
		go e.work(box, handler)
	}
	n := uint64(len(e.workers))
	for msg := range e.node.Inbox() {
		w := uint64(0)
		if key, ok := e.keyOf(msg); ok {
			// shard.Hash is the same FNV-1a the servers' state maps stripe
			// with, so worker sharding and state striping cannot diverge.
			w = shard.Hash(key) % n
		}
		e.workers[w].push(msg)
	}
	for _, box := range e.workers {
		box.close()
	}
	e.wg.Wait()
}

// work is one key-shard worker: drain the mailbox in batched runs, handling
// each message in order (see mailbox.drain for the buffer recycling rules).
func (e *Executor) work(box *mailbox, handler func(Message)) {
	defer e.wg.Done()
	box.drain(handler)
}
