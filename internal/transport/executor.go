package transport

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fastread/internal/shard"
)

// Executor drains a node's inbox and executes a handler over N key-sharded
// workers, so one server process scales across cores instead of serialising
// every register's traffic through a single handler goroutine.
//
// Each delivered message is dispatched by the hash of its register key to a
// fixed worker: the SAME key always lands on the SAME worker. That preserves,
// at worker granularity, the two properties the protocol servers rely on:
//
//   - Per-key FIFO delivery. The dispatcher reads the inbox in delivery
//     order and each worker's mailbox is FIFO, so two messages carrying the
//     same key are handled in the order the transport delivered them.
//     Messages for DIFFERENT keys may be handled in any order, which the
//     asynchronous model already permits (they could have been delayed).
//
//   - Sole mutator. All messages naming a key are handled by one goroutine,
//     so that key's server state has a single mutating goroutine and the
//     hot-path aliasing discipline of internal/wire/pool.go carries over
//     unchanged: an ack may alias the key's stored state because no other
//     worker ever mutates it.
//
// Batch envelopes (wire.Batch, produced by the transports' flush coalescing
// and by clients pipelining over batched links) are expanded BEFORE dispatch,
// so each carried message is routed by its own key — one envelope may fan out
// across workers — and handlers only ever see single protocol messages.
// Per-key FIFO survives expansion: a batch's messages are pushed in envelope
// order, and envelope order is the sender's send order.
//
// Messages whose key cannot be extracted (keyOf reports ok=false, e.g. an
// undecodable payload) are routed to worker 0 rather than dropped, so the
// handler still observes them and can trace the drop itself — exactly what
// the single-goroutine Serve loop did.
//
// The dispatcher→worker handoff is a lock-free SPSC ring (see ring.go): the
// dispatcher is each worker queue's single producer and the worker its single
// consumer, so steady-state dispatch is wait-free on both sides, with the
// unbounded mailbox kept as the burst spill path (order-preserving, never
// dropping — the PR 3/PR 5 starvation guarantees are unchanged). Workers
// still handle RUNS of messages between blocking waits, and RunCoalescing
// exposes the same run boundary to the handler's OUTPUT: a
// run-scoped Coalescer batches the run's acknowledgements into one send per
// destination, flushed when the run ends.
type Executor struct {
	node    Node
	keyOf   KeyFunc
	workers []*handoff
	wg      sync.WaitGroup
	// sheds counts messages dropped by bounded worker queues (see
	// SetQueueBound); always 0 in the default unbounded configuration.
	sheds atomic.Int64
}

// NewExecutor builds an executor over the node with the given number of
// key-shard workers (GOMAXPROCS if workers <= 0). It does not start any
// goroutine; call Run or RunCoalescing.
func NewExecutor(node Node, keyOf KeyFunc, workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Executor{node: node, keyOf: keyOf}
	for i := 0; i < workers; i++ {
		e.workers = append(e.workers, newHandoff())
	}
	return e
}

// Workers returns the number of key-shard workers.
func (e *Executor) Workers() int { return len(e.workers) }

// SetQueueBound caps each worker's overflow queue at n messages (on top of
// the fixed per-worker ring): a dispatch that finds the target worker's ring
// full AND its overflow at the cap is shed and counted (Sheds) instead of
// queued, so a server's memory and queueing delay stay bounded under
// overload. Shedding a REQUEST is safe — the client's quorum logic already
// tolerates lost messages (retry or context expiry) — which is why the bound
// lives here on the server ingress and not on client-side acks. n <= 0 (the
// default) keeps the never-drop spill of PR 3/PR 5.
//
// Must be called before Run/RunCoalescing. Note the single-worker
// degenerate path (workers == 1) bypasses the worker queues entirely —
// bound the node's own mailbox instead there (inmem WithMailboxBound).
func (e *Executor) SetQueueBound(n int) {
	if n <= 0 {
		return
	}
	for _, h := range e.workers {
		h.spill.bound = n
		h.spill.shed = &e.sheds
	}
}

// Sheds returns the number of messages shed by bounded worker queues.
func (e *Executor) Sheds() int64 { return e.sheds.Load() }

// Run dispatches the node's inbox across the workers and blocks until the
// node is closed AND every worker has drained its mailbox, so a caller that
// closes the node and then waits for Run to return observes every delivered
// message handled. At most one of Run / RunCoalescing may be called, once.
//
// With a single worker the dispatch hop would buy nothing, so Run degenerates
// to the plain Serve loop: handler runs inline on the dispatcher goroutine,
// with identical semantics and no added queueing.
//
// Handlers that reply through the node should prefer RunCoalescing, which
// batches a run's replies into one send per destination.
func (e *Executor) Run(handler func(Message)) {
	if len(e.workers) == 1 {
		Serve(e.node, handler)
		return
	}
	e.dispatch(func(box *handoff) {
		box.drain(func(m Message) {
			handler(m)
			m.ReleaseArena()
		})
	})
}

// RunCoalescing is Run with run-scoped output batching: the handler receives
// a Sender alongside each message, and everything sent through it during one
// RUN of messages (one batched mailbox pop — or, with a single worker, one
// burst of the inbox channel) is flushed as one send per destination when the
// run ends. An idle server handling a lone message flushes immediately after
// it, so coalescing never delays a reply; under pipelined load a run of k
// requests from one client costs ONE acknowledgement send instead of k.
func (e *Executor) RunCoalescing(handler func(Message, Sender)) {
	if len(e.workers) == 1 {
		e.serveCoalescingInline(handler)
		return
	}
	e.dispatch(func(box *handoff) {
		co := NewCoalescer(e.node)
		box.drainRuns(func(m Message) {
			handler(m, co)
			m.ReleaseArena()
		}, co.Flush)
	})
}

// dispatch owns the multi-worker topology shared by Run and RunCoalescing:
// expand each delivered message, route by key hash into per-worker mailboxes,
// and on inbox close drain every worker before returning.
//
// Arena accounting: each queued sub-message takes its own reference (several
// workers may hold views of one frame concurrently), the worker releases it
// after handling, and the dispatcher releases the delivered envelope's
// reference once expansion is done.
func (e *Executor) dispatch(work func(*handoff)) {
	e.wg.Add(len(e.workers))
	for _, box := range e.workers {
		go func(b *handoff) {
			defer e.wg.Done()
			work(b)
		}(box)
	}
	n := uint64(len(e.workers))
	route := func(m Message) {
		w := uint64(0)
		if key, ok := e.keyOf(m); ok {
			// shard.HashBytes is the same FNV-1a the servers' state maps
			// stripe with, so worker sharding and state striping cannot
			// diverge.
			w = shard.HashBytes(key) % n
		}
		m.RetainArena()
		if !e.workers[w].push(m) {
			m.ReleaseArena()
		}
	}
	for msg := range e.node.Inbox() {
		Expand(msg, route)
		msg.ReleaseArena()
	}
	for _, box := range e.workers {
		box.close()
	}
	e.wg.Wait()
}

// serveCoalescingInline is the single-worker RunCoalescing loop: handle
// inline on the dispatcher goroutine (no dispatch hop, like Serve), with run
// boundaries recovered opportunistically from the inbox channel — after a
// blocking receive, drain whatever else is immediately available before
// flushing. An uncontended inbox therefore flushes after every message
// (reply latency identical to the direct path) while a burst flushes once.
func (e *Executor) serveCoalescingInline(handler func(Message, Sender)) {
	co := NewCoalescer(e.node)
	handleOne := func(m Message) { handler(m, co) }
	inbox := e.node.Inbox()
	for msg := range inbox {
		Expand(msg, handleOne)
		msg.ReleaseArena()
	burst:
		for {
			select {
			case more, ok := <-inbox:
				if !ok {
					co.Flush()
					return
				}
				Expand(more, handleOne)
				more.ReleaseArena()
			default:
				break burst
			}
		}
		co.Flush()
	}
}
