package transport

import (
	"fastread/internal/types"
	"fastread/internal/wire"
)

// Batch-aware delivery
// ====================
//
// A delivered transport.Message may carry either a single encoded protocol
// message or a wire.Batch envelope packing several of them (produced by the
// tcpnet per-peer flusher, the in-memory node pump's coalescer, or a server's
// per-run acknowledgement Coalescer). Every consumer that interprets payloads
// — the executor's dispatcher, the demux pump, the client-side ack collectors
// — expands batches through Expand, so the code handling one message never
// sees the envelope.
//
// The per-message views of a batch ALIAS the batch buffer (wire's rule 2);
// since the buffer is owned by the receiving side and immutable, the views
// stay valid for as long as any consumer retains them.

// Expand invokes fn once per protocol message carried by the delivered
// message: once with msg itself when the payload is a single message, once
// per aliasing sub-message when it is a batch envelope. Malformed envelopes
// are dropped silently (exactly like any other undecodable payload: the
// asynchronous model lets them be "in transit forever"). Sub-messages carry
// the envelope's arena (their payloads alias the same frame buffer); the
// caller keeps owning the envelope's single reference — fn takes its own
// Ref (RetainArena) for any sub-message it forwards to another consumer.
func Expand(msg Message, fn func(Message)) {
	if !wire.IsBatch(msg.Payload) {
		fn(msg)
		return
	}
	_ = wire.ForEachInBatch(msg.Payload, func(payload []byte) error {
		// Sub-messages inherit the envelope's virtual-clock handle too: a
		// consumer that retains a sub-message past the envelope's release
		// (executor dispatch, demux routing) must keep holding an activity
		// token, or the simulation clock would advance with work queued.
		fn(Message{From: msg.From, To: msg.To, Kind: msg.Kind, Payload: payload, Arena: msg.Arena, vt: msg.vt})
		return nil
	})
}

// Sender is the outbound half of a Node: what a message handler needs to
// answer its clients. Handlers running under an executor receive a run-scoped
// Coalescer instead of the raw node, so acknowledgements produced while
// draining one run of messages batch into one send per destination.
type Sender interface {
	Send(to types.ProcessID, kind string, payload []byte) error
}

// coalesced is one destination's pending traffic within a run: the first
// payload is remembered as-is (the overwhelmingly common one-ack-per-run case
// must stay identical to a direct send — no envelope, no copy), and a batch
// is materialised only when a second payload shows up.
type coalesced struct {
	kind  string
	first []byte
	batch *wire.Batch
}

// Coalescer buffers outbound messages during one executor run and flushes
// them as ONE send per destination: a bare payload when the run produced a
// single message for that destination, a wire.Batch envelope otherwise. It is
// owned by a single worker goroutine and is not safe for concurrent use.
//
// Ownership: payloads handed to Send pass to the Coalescer exactly as they
// would to a Node (rule 1 — senders must not reuse them); batch buffers are
// freshly allocated per flush and abandoned to the transport, so receivers
// may alias them indefinitely.
type Coalescer struct {
	node Node

	byDest map[types.ProcessID]*coalesced
	order  []types.ProcessID
	// free recycles coalesced structs across runs (one per destination per
	// run otherwise — a steady allocation on the server ack path).
	free []*coalesced

	// clock/holding make buffered-but-unflushed output count as activity
	// under a virtual clock: a worker releases the inbound message's token
	// before the run's Flush fires, and without this hold the clock could
	// advance in that gap with acknowledgements still sitting here.
	clock   *VirtualClock
	holding bool
}

var _ Sender = (*Coalescer)(nil)

// virtualClocked is implemented by nodes attached to a virtual-clock
// network; the Coalescer probes for it so buffered output participates in
// quiescence detection.
type virtualClocked interface {
	virtualClock() *VirtualClock
}

// NewCoalescer returns an empty coalescer sending through the node.
func NewCoalescer(node Node) *Coalescer {
	c := &Coalescer{node: node, byDest: make(map[types.ProcessID]*coalesced)}
	if vc, ok := node.(virtualClocked); ok {
		c.clock = vc.virtualClock()
	}
	return c
}

// hold takes the coalescer's activity token on the run's first buffered
// message; released releases it after Flush.
func (c *Coalescer) hold() {
	if c.clock != nil && !c.holding {
		c.holding = true
		c.clock.begin()
	}
}

// Send buffers one message for the destination and always reports success:
// the only error the eventual flush can produce is "local node closed",
// which handlers ignore on direct sends too (the executor is about to shut
// down anyway), so the Coalescer swallows it at Flush rather than surfacing
// it on an unrelated later call.
// get pops a recycled coalesced struct, or allocates the run's first ones.
func (c *Coalescer) get() *coalesced {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return e
	}
	return new(coalesced)
}

func (c *Coalescer) Send(to types.ProcessID, kind string, payload []byte) error {
	c.hold()
	e, ok := c.byDest[to]
	if !ok {
		e = c.get()
		e.kind, e.first = kind, payload
		c.byDest[to] = e
		c.order = append(c.order, to)
		return nil
	}
	if e.batch == nil {
		e.batch = wire.NewBatch(0)
		c.appendPayload(e.batch, e.first)
		e.first = nil
		e.kind = wire.BatchKind
	}
	c.appendPayload(e.batch, payload)
	return nil
}

// appendPayload adds one payload to a batch, flattening payloads that are
// themselves envelopes (a handler may legitimately forward a batch).
func (c *Coalescer) appendPayload(b *wire.Batch, payload []byte) {
	if wire.IsBatch(payload) {
		_ = b.Splice(payload)
		return
	}
	b.Append(payload)
}

// SendMessage buffers one not-yet-encoded message for the destination. The
// first message of a run is encoded standalone (a lone message must leave
// exactly as a direct send would); every further message APPEND-ENCODES
// straight into the destination's batch, skipping the intermediate payload
// allocation — the server hot path under pipelined load. The message is
// consumed before SendMessage returns (its fields may alias caller state,
// per the codec's aliasing discipline).
func (c *Coalescer) SendMessage(to types.ProcessID, m *wire.Message) error {
	c.hold()
	e, ok := c.byDest[to]
	if !ok {
		e = c.get()
		e.kind, e.first = m.Kind(), wire.MustEncode(m)
		c.byDest[to] = e
		c.order = append(c.order, to)
		return nil
	}
	if e.batch == nil {
		e.batch = wire.NewBatch(0)
		c.appendPayload(e.batch, e.first)
		e.first = nil
		e.kind = wire.BatchKind
	}
	return e.batch.AppendMessage(m)
}

// SendEncoded routes an acknowledgement through the coalescer's direct
// append-encoding when the sender supports it, and through a plain
// encode-then-Send otherwise. Handlers call it so they run unchanged under
// RunCoalescing (batched) and Run / direct nodes (unbatched).
func SendEncoded(out Sender, to types.ProcessID, m *wire.Message) error {
	if c, ok := out.(*Coalescer); ok {
		return c.SendMessage(to, m)
	}
	return out.Send(to, m.Kind(), wire.MustEncode(m))
}

// Flush sends every destination's pending traffic — one Send per destination,
// in first-touch order — and resets the coalescer for the next run.
func (c *Coalescer) Flush() {
	for _, to := range c.order {
		e := c.byDest[to]
		if e.batch == nil {
			_ = c.node.Send(to, e.kind, e.first)
		} else {
			_ = c.node.Send(to, wire.BatchKind, e.batch.Bytes())
			// The buffer now belongs to the transport; never reuse it.
			e.batch.Detach()
		}
		delete(c.byDest, to)
		*e = coalesced{}
		c.free = append(c.free, e)
	}
	c.order = c.order[:0]
	if c.holding {
		c.holding = false
		c.clock.end()
	}
}

// Pending reports the number of destinations with unflushed traffic.
func (c *Coalescer) Pending() int { return len(c.order) }
