package tcpnet

import (
	"bytes"
	"testing"

	"fastread/internal/types"
)

// FuzzReadFrame asserts that the frame decoder never panics on arbitrary
// stream bytes, that buffer-reusing reads agree with fresh-buffer reads, and
// that frames produced by the reference encoder round-trip exactly.
func FuzzReadFrame(f *testing.F) {
	// Seed with well-formed frames of every shape the transport produces...
	for _, seed := range []struct {
		from    types.ProcessID
		kind    string
		payload []byte
	}{
		{types.Writer(), "write", []byte("payload")},
		{types.Reader(3), "readack", nil},
		{types.Server(12), "gossip", bytes.Repeat([]byte{0xAB}, 300)},
		{types.Reader(1), "", []byte{}},
	} {
		frame, err := encodeFrame(seed.from, seed.kind, seed.payload)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		// ...and with two frames back to back, so the fuzzer explores
		// stream-resynchronisation bugs.
		f.Add(append(append([]byte(nil), frame...), frame...))
	}
	// Hostile prefixes: oversized length claim, truncated header.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0, 0, 0, 3, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		from, kind, payload, err := readFrame(bytes.NewReader(data))

		// A reused scratch buffer must decode identically.
		var scratch []byte
		from2, kind2, payload2, err2 := readFrameReusing(bytes.NewReader(data), &scratch)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("readFrame err=%v but reusing err=%v", err, err2)
		}
		if err != nil {
			return
		}
		if from != from2 || kind != kind2 || !bytes.Equal(payload, payload2) {
			t.Fatal("buffer-reusing read disagrees with fresh read")
		}

		// Whatever decoded must re-encode to the exact bytes consumed.
		reencoded, encErr := encodeFrame(from, kind, payload)
		if encErr != nil {
			t.Fatalf("decoded frame failed to re-encode: %v", encErr)
		}
		if !bytes.Equal(reencoded, data[:len(reencoded)]) {
			t.Fatal("re-encoded frame differs from consumed bytes")
		}
	})
}
