// Package tcpnet implements the transport.Node interface over TCP, so that
// the register protocols — which only ever talk to a Node — run unchanged
// over real sockets. It is used by cmd/regserver, cmd/regclient and the
// tcpcluster example.
//
// Each process owns one listening socket and dials its peers lazily; frames
// are length-prefixed and carry the sender identity, the message kind and
// the opaque protocol payload. Delivery guarantees match the in-memory
// network as long as the underlying connections stay healthy: no duplication
// and no reordering per link; a broken connection is re-dialled on the next
// send and messages lost in between are simply "still in transit" from the
// protocol's point of view (the algorithms only ever wait for S−t of S
// replies, so this maps onto the paper's asynchronous model).
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"fastread/internal/transport"
	"fastread/internal/types"
)

// AddressBook maps process identities to their "host:port" addresses.
type AddressBook map[types.ProcessID]string

// Clone returns a copy of the address book.
func (b AddressBook) Clone() AddressBook {
	out := make(AddressBook, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Config configures one TCP-attached process.
type Config struct {
	// Self is the identity of this process.
	Self types.ProcessID
	// ListenAddr is the address to listen on; when empty, the address book
	// entry for Self is used.
	ListenAddr string
	// Book maps every peer (and usually Self) to its address.
	Book AddressBook
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds a single frame write (default 2s).
	WriteTimeout time.Duration
}

// Errors returned by the TCP transport.
var (
	// ErrNoAddress indicates a destination without an address book entry.
	ErrNoAddress = errors.New("tcpnet: no address for destination")
	// ErrClosed indicates the node has been closed.
	ErrClosed = errors.New("tcpnet: node closed")
)

// maxFrameSize bounds incoming frames to protect against corrupt peers.
const maxFrameSize = 4 << 20

// Node is one process attached to the TCP network.
type Node struct {
	cfg      Config
	listener net.Listener
	box      chan transport.Message

	mu      sync.Mutex
	conns   map[types.ProcessID]net.Conn
	inbound map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

var _ transport.Node = (*Node)(nil)

// Listen starts a TCP node for the given process.
func Listen(cfg Config) (*Node, error) {
	if !cfg.Self.Valid() {
		return nil, fmt.Errorf("tcpnet: invalid self identity %v", cfg.Self)
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = cfg.Book[cfg.Self]
	}
	if addr == "" {
		return nil, fmt.Errorf("%w: %v (set ListenAddr or add a book entry)", ErrNoAddress, cfg.Self)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	n := &Node{
		cfg:      cfg,
		listener: listener,
		box:      make(chan transport.Message, 1024),
		conns:    make(map[types.ProcessID]net.Conn),
		inbound:  make(map[net.Conn]struct{}),
	}
	n.cfg.Book = cfg.Book.Clone()
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the address the node is listening on (useful with ":0").
func (n *Node) Addr() string { return n.listener.Addr().String() }

// ID implements transport.Node.
func (n *Node) ID() types.ProcessID { return n.cfg.Self }

// Inbox implements transport.Node.
func (n *Node) Inbox() <-chan transport.Message { return n.box }

// Send implements transport.Node. Messages to unknown or unreachable peers
// are dropped, matching the asynchronous model where they are simply never
// delivered.
func (n *Node) Send(to types.ProcessID, kind string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.mu.Unlock()

	frame, err := encodeFrame(n.cfg.Self, kind, payload)
	if err != nil {
		return err
	}
	conn, err := n.connTo(to)
	if err != nil {
		// Unreachable peer: the message is lost in transit. Not an error for
		// the sender in the asynchronous model.
		return nil
	}
	_ = conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
	if _, err := conn.Write(frame); err != nil {
		n.dropConn(to, conn)
		return nil
	}
	return nil
}

// Close implements transport.Node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]net.Conn, 0, len(n.conns)+len(n.inbound))
	for _, c := range n.conns {
		conns = append(conns, c)
	}
	for c := range n.inbound {
		conns = append(conns, c)
	}
	n.conns = map[types.ProcessID]net.Conn{}
	n.inbound = map[net.Conn]struct{}{}
	n.mu.Unlock()

	_ = n.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	n.wg.Wait()
	close(n.box)
	return nil
}

// connTo returns a cached or freshly dialled connection to the peer.
func (n *Node) connTo(to types.ProcessID) (net.Conn, error) {
	n.mu.Lock()
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.cfg.Book[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoAddress, to)
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.conns[to]; ok {
		_ = conn.Close()
		return existing, nil
	}
	n.conns[to] = conn
	return conn, nil
}

// dropConn forgets a broken connection.
func (n *Node) dropConn(to types.ProcessID, conn net.Conn) {
	_ = conn.Close()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.conns[to] == conn {
		delete(n.conns, to)
	}
}

// acceptLoop accepts inbound connections and spawns a reader per connection.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection into the mailbox.
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	for {
		from, kind, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		msg := transport.Message{From: from, To: n.cfg.Self, Kind: kind, Payload: payload}
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return
		}
		select {
		case n.box <- msg:
		default:
			// The mailbox is full; drop the message. The protocols tolerate
			// message loss of this kind because they never wait for more
			// than S−t replies, and clients retransmit by retrying the
			// operation.
		}
	}
}

// encodeFrame builds one wire frame:
//
//	uint32  total length of the remainder
//	byte    sender role
//	uint32  sender index
//	uint16  kind length, kind bytes
//	uint32  payload length, payload bytes
func encodeFrame(from types.ProcessID, kind string, payload []byte) ([]byte, error) {
	if len(payload) > maxFrameSize {
		return nil, fmt.Errorf("tcpnet: payload too large (%d bytes)", len(payload))
	}
	body := make([]byte, 0, 1+4+2+len(kind)+4+len(payload))
	body = append(body, byte(from.Role))
	body = binary.BigEndian.AppendUint32(body, uint32(from.Index))
	body = binary.BigEndian.AppendUint16(body, uint16(len(kind)))
	body = append(body, kind...)
	body = binary.BigEndian.AppendUint32(body, uint32(len(payload)))
	body = append(body, payload...)

	frame := make([]byte, 0, 4+len(body))
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(body)))
	return append(frame, body...), nil
}

// readFrame reads and decodes one frame.
func readFrame(r io.Reader) (types.ProcessID, string, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return types.ProcessID{}, "", nil, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total > maxFrameSize {
		return types.ProcessID{}, "", nil, fmt.Errorf("tcpnet: frame too large (%d bytes)", total)
	}
	body := make([]byte, total)
	if _, err := io.ReadFull(r, body); err != nil {
		return types.ProcessID{}, "", nil, err
	}
	if len(body) < 1+4+2 {
		return types.ProcessID{}, "", nil, errors.New("tcpnet: truncated frame")
	}
	from := types.ProcessID{Role: types.Role(body[0]), Index: int(binary.BigEndian.Uint32(body[1:5]))}
	if !from.Valid() {
		return types.ProcessID{}, "", nil, fmt.Errorf("tcpnet: invalid sender %v", from)
	}
	off := 5
	kindLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if off+kindLen+4 > len(body) {
		return types.ProcessID{}, "", nil, errors.New("tcpnet: truncated kind")
	}
	kind := string(body[off : off+kindLen])
	off += kindLen
	payloadLen := int(binary.BigEndian.Uint32(body[off : off+4]))
	off += 4
	if off+payloadLen != len(body) {
		return types.ProcessID{}, "", nil, errors.New("tcpnet: inconsistent payload length")
	}
	payload := body[off:]
	return from, kind, payload, nil
}

// LocalCluster starts one TCP node per identity, all listening on loopback
// with ephemeral ports, and returns them along with the shared address book.
// It is a convenience for tests and for the tcpcluster example.
func LocalCluster(ids []types.ProcessID) (map[types.ProcessID]*Node, AddressBook, error) {
	// First pass: create listeners so every process learns its port.
	listeners := make(map[types.ProcessID]net.Listener, len(ids))
	book := make(AddressBook, len(ids))
	for _, id := range ids {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, prev := range listeners {
				_ = prev.Close()
			}
			return nil, nil, err
		}
		listeners[id] = l
		book[id] = l.Addr().String()
	}
	// Second pass: wrap each listener in a Node sharing the completed book.
	nodes := make(map[types.ProcessID]*Node, len(ids))
	for _, id := range ids {
		l := listeners[id]
		n := &Node{
			cfg: Config{
				Self:         id,
				Book:         book.Clone(),
				DialTimeout:  2 * time.Second,
				WriteTimeout: 2 * time.Second,
			},
			listener: l,
			box:      make(chan transport.Message, 1024),
			conns:    make(map[types.ProcessID]net.Conn),
			inbound:  make(map[net.Conn]struct{}),
		}
		n.wg.Add(1)
		go n.acceptLoop()
		nodes[id] = n
	}
	return nodes, book, nil
}
