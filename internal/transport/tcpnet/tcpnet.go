// Package tcpnet implements the transport.Node interface over TCP, so that
// the register protocols — which only ever talk to a Node — run unchanged
// over real sockets. It is used by cmd/regserver, cmd/regclient and the
// tcpcluster example.
//
// Each process owns one listening socket and dials its peers lazily; frames
// are length-prefixed and carry the sender identity, the message kind and
// the opaque protocol payload. Delivery guarantees match the in-memory
// network as long as the underlying connections stay healthy: no duplication
// and no reordering per link; a broken connection is re-dialled on the next
// send and messages lost in between are simply "still in transit" from the
// protocol's point of view (the algorithms only ever wait for S−t of S
// replies, so this maps onto the paper's asynchronous model).
//
// Writes to one peer go through a dedicated per-peer writer: senders append
// messages into a pending wire.Batch under the peer's lock (which also makes
// concurrent Sends to the same peer safe — partial writes can never
// interleave on the stream) and a flusher goroutine swaps the batch out and
// writes it to the socket as ONE frame with the lock released. Under
// concurrent load many messages coalesce into one frame and one syscall; an
// idle connection is flushed immediately, so batching never adds latency; a
// slow socket never stalls senders (a stalled peer's queue is bounded,
// overflow is dropped and counted). The receiving side expands batch frames
// back into individual messages before they reach the inbox, so consumers
// are oblivious; NodeStats counts both frames and messages, which is what
// makes the frames-per-operation amortisation measurable.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fastread/internal/transport"
	"fastread/internal/types"
	"fastread/internal/wire"
)

// AddressBook maps process identities to their "host:port" addresses.
type AddressBook map[types.ProcessID]string

// Clone returns a copy of the address book.
func (b AddressBook) Clone() AddressBook {
	out := make(AddressBook, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Config configures one TCP-attached process.
type Config struct {
	// Self is the identity of this process.
	Self types.ProcessID
	// ListenAddr is the address to listen on; when empty, the address book
	// entry for Self is used.
	ListenAddr string
	// Book maps every peer (and usually Self) to its address.
	Book AddressBook
	// Resolve, when non-nil, is consulted for destinations the Book does not
	// cover. It lets a deployment whose processes listen on ephemeral ports
	// (":0") share a live address table that fills in as processes come up:
	// the public fastread TCP transport uses it to run whole deployments on
	// loopback without pre-assigning ports. Resolve must be safe for
	// concurrent use.
	Resolve func(types.ProcessID) (string, bool)
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// WriteTimeout bounds a single buffered-frame flush (default 2s).
	WriteTimeout time.Duration
}

// Errors returned by the TCP transport.
var (
	// ErrNoAddress indicates a destination without an address book entry.
	ErrNoAddress = errors.New("tcpnet: no address for destination")
	// ErrClosed indicates the node has been closed.
	ErrClosed = errors.New("tcpnet: node closed")
)

// maxFrameSize bounds incoming frames to protect against corrupt peers.
const maxFrameSize = 4 << 20

// maxPayloadSize bounds a single outbound payload so that even a payload
// framed alone (solo batch entry + envelope + frame header) stays inside the
// receiver's maxFrameSize guard.
const maxPayloadSize = maxFrameSize - 64

// writeBufferSize is the per-peer coalescing buffer. Protocol messages are
// small (tens to hundreds of bytes), so 64 KiB batches hundreds of frames
// per syscall under load.
const writeBufferSize = 64 << 10

// NodeStats counts what happened on one TCP node so far, mirroring
// transport.LinkStats for the socket transport. Drops that were invisible to
// operators — a full inbox silently discarding a decoded frame, a send to an
// unreachable or broken peer — are first-class counters here; cmd/regserver
// logs them on shutdown.
type NodeStats struct {
	// Delivered counts protocol messages decoded and handed to the inbox. A
	// batch frame contributes one count per message it carries.
	Delivered int64
	// Frames counts wire frames read off sockets. Under pipelined load the
	// per-peer flusher packs many messages into one frame, so Frames ≪
	// Delivered; frames-per-operation (Frames summed over a deployment's
	// nodes, divided by completed operations) is the batching efficiency
	// metric BENCH_5 reports.
	Frames int64
	// DroppedInbound counts messages discarded because the inbox was full.
	DroppedInbound int64
	// DroppedSend counts outbound messages discarded because the peer was
	// unreachable, the connection broke mid-write, or the frame was
	// oversized.
	DroppedSend int64
}

// Node is one process attached to the TCP network.
type Node struct {
	cfg      Config
	listener net.Listener
	box      chan transport.Message

	mu      sync.Mutex
	peers   map[types.ProcessID]*peer
	inbound map[net.Conn]struct{}
	// inboundFrom counts the live inbound connections attributed to each
	// sender, and deadInbound remembers senders whose last inbound
	// connection has closed; together they distinguish a peer's FIRST
	// connection (normal: do not touch the cached outbound side) from a
	// reconnect or restart (evict the now-stale cached connection).
	// pendingRefresh holds the specific outbound peer whose eviction was
	// declined (busy, restart not yet proven) so the old connection's EOF
	// can finish the job. See noteInboundSender / noteInboundGone.
	inboundFrom    map[types.ProcessID]int
	deadInbound    map[types.ProcessID]bool
	pendingRefresh map[types.ProcessID]*peer
	closed         bool

	delivered      atomic.Int64
	frames         atomic.Int64
	droppedInbound atomic.Int64
	droppedSend    atomic.Int64

	wg sync.WaitGroup
}

var _ transport.Node = (*Node)(nil)

// Listen starts a TCP node for the given process.
func Listen(cfg Config) (*Node, error) {
	if !cfg.Self.Valid() {
		return nil, fmt.Errorf("tcpnet: invalid self identity %v", cfg.Self)
	}
	addr := cfg.ListenAddr
	if addr == "" {
		addr = cfg.Book[cfg.Self]
	}
	if addr == "" {
		return nil, fmt.Errorf("%w: %v (set ListenAddr or add a book entry)", ErrNoAddress, cfg.Self)
	}
	listener, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	return newNode(cfg, listener), nil
}

// newNode wraps a listener in a running Node.
func newNode(cfg Config, listener net.Listener) *Node {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 2 * time.Second
	}
	cfg.Book = cfg.Book.Clone()
	n := &Node{
		cfg:            cfg,
		listener:       listener,
		box:            make(chan transport.Message, 1024),
		peers:          make(map[types.ProcessID]*peer),
		inbound:        make(map[net.Conn]struct{}),
		inboundFrom:    make(map[types.ProcessID]int),
		deadInbound:    make(map[types.ProcessID]bool),
		pendingRefresh: make(map[types.ProcessID]*peer),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n
}

// Addr returns the address the node is listening on (useful with ":0").
func (n *Node) Addr() string { return n.listener.Addr().String() }

// ID implements transport.Node.
func (n *Node) ID() types.ProcessID { return n.cfg.Self }

// Inbox implements transport.Node.
func (n *Node) Inbox() <-chan transport.Message { return n.box }

// Stats returns a snapshot of the node's delivery and drop counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Delivered:      n.delivered.Load(),
		Frames:         n.frames.Load(),
		DroppedInbound: n.droppedInbound.Load(),
		DroppedSend:    n.droppedSend.Load(),
	}
}

// Send implements transport.Node. Messages to unknown or unreachable peers
// are dropped (and counted), matching the asynchronous model where they are
// simply never delivered. Send is safe for concurrent use: frames to the
// same peer are serialised whole, so concurrent senders can never interleave
// partial frames on the stream.
//
// The payload is fully copied into the peer's write buffer before Send
// returns; ownership is NOT retained (callers may reuse the slice), though
// the uniform transport.Node contract still passes ownership for the benefit
// of the in-memory transport.
func (n *Node) Send(to types.ProcessID, kind string, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.mu.Unlock()

	if len(payload) > maxPayloadSize {
		n.droppedSend.Add(1)
		return fmt.Errorf("tcpnet: payload too large (%d bytes)", len(payload))
	}
	p, err := n.peerTo(to)
	if err != nil {
		// Unreachable peer: the message is lost in transit. Not an error for
		// the sender in the asynchronous model.
		n.droppedSend.Add(1)
		return nil
	}
	if err := p.writeFrame(n.cfg.Self, kind, payload); err != nil {
		n.droppedSend.Add(1)
		if !errors.Is(err, errPendingFull) {
			// The connection is broken; forget it so the next send re-dials.
			// A full write queue only drops this frame — the peer is healthy.
			n.dropPeer(to, p)
		}
	}
	return nil
}

// Close implements transport.Node.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	peers := make([]*peer, 0, len(n.peers))
	for _, p := range n.peers {
		peers = append(peers, p)
	}
	conns := make([]net.Conn, 0, len(n.inbound))
	for c := range n.inbound {
		conns = append(conns, c)
	}
	n.peers = map[types.ProcessID]*peer{}
	n.inbound = map[net.Conn]struct{}{}
	n.mu.Unlock()

	_ = n.listener.Close()
	for _, p := range peers {
		p.failPending(ErrClosed, 0)
		p.close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	n.wg.Wait()
	close(n.box)
	return nil
}

// peerTo returns a cached or freshly dialled peer connection.
func (n *Node) peerTo(to types.ProcessID) (*peer, error) {
	n.mu.Lock()
	if p, ok := n.peers[to]; ok {
		n.mu.Unlock()
		return p, nil
	}
	addr, ok := n.cfg.Book[to]
	n.mu.Unlock()
	if !ok && n.cfg.Resolve != nil {
		addr, ok = n.cfg.Resolve(to)
	}
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrNoAddress, to)
	}
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing, ok := n.peers[to]; ok {
		n.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	p := &peer{
		node: n,
		to:   to,
		conn: conn,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	n.peers[to] = p
	n.wg.Add(1)
	go p.flushLoop()
	n.mu.Unlock()
	return p, nil
}

// errPeerRefreshed is the sticky error set on an evicted idle peer so a Send
// racing the eviction fails fast (and is counted as a drop) instead of
// appending frames nobody will ever flush.
var errPeerRefreshed = errors.New("tcpnet: peer connection refreshed")

// noteInboundSender records that a NEW inbound connection's first frame came
// from the given sender, and decides whether the cached outbound connection
// to that sender is stale. A peer's first-ever inbound connection is normal
// operation (its reply dial) and must not touch the outbound side — evicting
// there would tear both directions down on every round-trip. But a SECOND
// connection while one is live (the peer re-dialled: its old outbound
// connection broke) or a connection arriving after the previous one died
// (the peer process restarted on its address book entry — writes to the
// stale socket can vanish into the kernel buffer without an error) means the
// cached connection points at a previous incarnation: evict it so replies
// ride a fresh dial. After a proven restart even a busy cached connection is
// evicted (its frames address a dead incarnation and surface as drops); on a
// concurrent re-dial the outbound side may still be healthy, so a busy
// connection is left in place but REMEMBERED — if the older inbound
// connection's EOF then proves the restart, noteInboundGone finishes the
// eviction. Every ordering of the restart race (old connection's EOF
// processed before or after the new connection's first frame, cached
// connection idle or busy) therefore converges on a fresh dial.
func (n *Node) noteInboundSender(from types.ProcessID) {
	n.mu.Lock()
	restarted := n.deadInbound[from]
	redialled := n.inboundFrom[from] > 0
	n.inboundFrom[from]++
	delete(n.deadInbound, from)
	n.mu.Unlock()
	if !restarted && !redialled {
		return
	}
	declined := n.refreshPeer(from, restarted, nil)
	if declined == nil {
		return
	}
	// Remember the declined eviction only while the older connection is
	// still counted live; if its EOF raced past between the count snapshot
	// above and here, nobody is left to finish the deferred eviction — but
	// that EOF also proves the restart, so evict right now instead.
	n.mu.Lock()
	olderStillLive := n.inboundFrom[from] > 1
	if olderStillLive {
		n.pendingRefresh[from] = declined
	}
	n.mu.Unlock()
	if !olderStillLive {
		n.refreshPeer(from, true, declined)
	}
}

// noteInboundGone records that an inbound connection attributed to the given
// sender has closed. If a newer connection from the sender is still live and
// an eviction was declined while this one lived, the close proves the
// declined connection addressed a dead incarnation: evict it now, by
// identity, so a replacement dialled in the meantime is left untouched.
func (n *Node) noteInboundGone(from types.ProcessID) {
	n.mu.Lock()
	if n.inboundFrom[from] > 0 {
		n.inboundFrom[from]--
	}
	var deferred *peer
	if n.inboundFrom[from] == 0 {
		delete(n.inboundFrom, from)
		// No live connection remains: the next one takes the restart path
		// directly, no deferred eviction needed.
		delete(n.pendingRefresh, from)
		if !n.closed {
			n.deadInbound[from] = true
		}
	} else {
		deferred = n.pendingRefresh[from]
		delete(n.pendingRefresh, from)
	}
	n.mu.Unlock()
	if deferred != nil {
		n.refreshPeer(from, true, deferred)
	}
}

// refreshPeer discards the cached outbound connection to a peer. Unless
// force is set, only a completely idle connection is evicted: an idle
// connection can be dropped without losing frames (the next send re-dials),
// while a busy one may still be healthy — if it is genuinely broken its
// flush will fail and dropPeer will clear it. With force (the peer provably
// restarted) a busy connection is evicted too, its queued frames counted as
// send drops — they were addressed to a dead incarnation and can never
// arrive. When only is non-nil the eviction applies to that specific peer
// value alone, so a deferred eviction cannot hit a replacement connection
// dialled in the meantime. The check atomically marks the peer dead under
// its own mutex, so a Send racing the eviction fails fast on the sticky
// error (and counts a drop) rather than enqueueing a frame the departing
// flusher would silently abandon.
//
// It returns the still-live peer whose eviction was declined (nil
// otherwise), for the caller to remember for a deferred retry.
func (n *Node) refreshPeer(from types.ProcessID, force bool, only *peer) *peer {
	n.mu.Lock()
	p, ok := n.peers[from]
	n.mu.Unlock()
	if !ok || (only != nil && p != only) {
		return nil
	}
	p.mu.Lock()
	evict := p.err == nil && (force || (p.pendingMsgs == 0 && p.inFlightBytes == 0))
	if evict {
		p.err = errPeerRefreshed
	}
	declined := !evict && p.err == nil
	p.mu.Unlock()
	if !evict {
		if declined {
			return p
		}
		return nil
	}
	n.mu.Lock()
	if n.peers[from] == p {
		delete(n.peers, from)
	}
	n.mu.Unlock()
	// Surface any frames still queued to the dead incarnation as drops
	// (a no-op in the idle case).
	p.failPending(errPeerRefreshed, 0)
	p.close()
	return nil
}

// dropPeer forgets a broken peer connection, counting any frames still
// queued on it as send drops.
func (n *Node) dropPeer(to types.ProcessID, p *peer) {
	n.mu.Lock()
	if n.peers[to] == p {
		delete(n.peers, to)
	}
	n.mu.Unlock()
	p.failPending(ErrClosed, 0)
	p.close()
}

// maxPendingBytes bounds a peer's unflushed write queue. Senders never block
// on the socket, so a stalled peer would otherwise buffer without bound; once
// the cap is hit, new messages are dropped whole (and counted) — "still in
// transit" from the protocols' point of view, exactly like a lossy link.
const maxPendingBytes = 8 << 20

// errPendingFull reports a message dropped because the peer's write queue is
// at its cap. The peer itself is healthy; only this message is lost.
var errPendingFull = errors.New("tcpnet: peer write queue full")

// batchFrameHeaderSize is the byte length of a batch frame's header: uint32
// total + byte role + uint32 index + uint16 kindLen + len("batch") + uint32
// payloadLen. Each pending wire.Batch reserves exactly this prefix so a
// flush writes header+envelope as one contiguous slice with no copy.
const batchFrameHeaderSize = 4 + 1 + 4 + 2 + len(wire.BatchKind) + 4

// maxBatchPayload caps one batch frame's envelope: a burst larger than this
// leaves as several frames, so a coalesced frame always stays comfortably
// inside the receiver's maxFrameSize guard no matter how much queued while
// the socket was busy.
const maxBatchPayload = 1 << 20

// peer is one outbound connection with its coalescing writer.
type peer struct {
	node *Node
	to   types.ProcessID
	conn net.Conn

	mu            sync.Mutex
	queue         []*wire.Batch // frames-to-be awaiting the flusher, in order
	pendingBytes  int           // total encoded bytes across queue
	pendingMsgs   int           // total messages across queue (drop accounting)
	inFlightBytes int           // size of the buffer the flusher is writing
	spare         *wire.Batch   // flusher's recycled batch (double-buffering)
	err           error         // sticky write error; once set the peer is dead

	kick      chan struct{} // capacity 1: "bytes are buffered, please flush"
	done      chan struct{}
	closeOnce sync.Once
}

// failPending marks the peer dead (if err is non-nil) and counts every
// message still queued — and, via extraMsgs, any messages lost inside a
// failed socket write — as send drops, so messages accepted into the queue
// but never delivered stay visible to operators.
func (p *peer) failPending(err error, extraMsgs int) {
	p.mu.Lock()
	if err != nil && p.err == nil {
		p.err = err
	}
	dropped := p.pendingMsgs + extraMsgs
	p.pendingMsgs = 0
	p.pendingBytes = 0
	p.queue = nil
	p.mu.Unlock()
	if dropped > 0 {
		p.node.droppedSend.Add(int64(dropped))
	}
}

// writeFrame appends one message to the peer's tail batch and wakes the
// flusher. All messages batched together leave as ONE frame whose payload is
// a wire.Batch envelope (the receiver expands it); a payload that is already
// an envelope — a server's coalesced acknowledgement run — is spliced flat
// rather than nested, and a batch that would outgrow maxBatchPayload is
// sealed so the burst continues in the next frame. Appending under p.mu is
// what guarantees messages from concurrent senders never interleave; the
// lock is never held across a syscall (see flushLoop), so a slow socket
// never stalls senders.
func (p *peer) writeFrame(from types.ProcessID, kind string, payload []byte) error {
	p.mu.Lock()
	if p.err != nil {
		err := p.err
		p.mu.Unlock()
		return err
	}
	// The cap covers queued and in-flight bytes plus this message (with its
	// 4-byte entry prefix), so a stalled peer holds at most maxPendingBytes —
	// not double.
	if p.pendingBytes+p.inFlightBytes+4+len(payload) > maxPendingBytes {
		p.mu.Unlock()
		return errPendingFull
	}
	// Validate envelope payloads BEFORE touching the queue: a failed Splice
	// after appending a fresh tail would leave an empty batch for the
	// flusher.
	spliceable := wire.IsBatch(payload)
	if spliceable {
		if _, err := wire.BatchCount(payload); err != nil {
			p.mu.Unlock()
			return err
		}
	}
	var tail *wire.Batch
	if n := len(p.queue); n > 0 && p.queue[n-1].Size()+4+len(payload) <= maxBatchPayload {
		tail = p.queue[n-1]
	} else {
		if p.spare != nil {
			tail, p.spare = p.spare, nil
		} else {
			tail = wire.NewBatch(batchFrameHeaderSize)
		}
		p.queue = append(p.queue, tail)
	}
	sizeBefore, countBefore := tail.Size(), tail.Count()
	if spliceable {
		if err := tail.Splice(payload); err != nil {
			p.mu.Unlock()
			return err
		}
	} else {
		tail.Append(payload)
	}
	p.pendingBytes += tail.Size() - sizeBefore
	p.pendingMsgs += tail.Count() - countBefore
	p.mu.Unlock()
	// Wake the flusher; if a kick is already pending it will cover these
	// bytes too.
	select {
	case p.kick <- struct{}{}:
	default:
	}
	return nil
}

// frameBytes patches the frame header into the batch's reserved prefix and
// returns the complete frame (header + envelope) ready for one Write call.
func frameBytes(b *wire.Batch, from types.ProcessID) []byte {
	buf := b.PrefixedBytes()
	envLen := len(buf) - batchFrameHeaderSize
	total := 1 + 4 + 2 + len(wire.BatchKind) + 4 + envLen
	binary.BigEndian.PutUint32(buf[0:4], uint32(total))
	buf[4] = byte(from.Role)
	binary.BigEndian.PutUint32(buf[5:9], uint32(from.Index))
	binary.BigEndian.PutUint16(buf[9:11], uint16(len(wire.BatchKind)))
	copy(buf[11:], wire.BatchKind)
	binary.BigEndian.PutUint32(buf[11+len(wire.BatchKind):], uint32(envLen))
	return buf
}

// flushLoop pushes buffered messages to the socket. Each wakeup swaps the
// pending batch out under the lock and writes it as ONE frame with the lock
// RELEASED — that is the batching: while the write syscall is in flight,
// concurrent senders keep appending messages to the fresh batch, and the
// next wakeup writes them all in the next frame. An idle connection flushes
// immediately after its lone message, so coalescing never delays delivery.
func (p *peer) flushLoop() {
	defer p.node.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case <-p.kick:
			for {
				p.mu.Lock()
				if p.err != nil || len(p.queue) == 0 {
					broken := p.err != nil
					p.mu.Unlock()
					if broken {
						p.node.dropPeer(p.to, p)
						return
					}
					break
				}
				batch := p.queue[0]
				p.queue = p.queue[1:]
				if len(p.queue) == 0 {
					p.queue = nil
				}
				if batch.Count() == 0 {
					// Defensive: an empty batch has no frame to write (and
					// PrefixedBytes is nil); nothing can enqueue one today,
					// but a panic in the flusher kills the peer.
					continue
				}
				msgs := batch.Count()
				buf := frameBytes(batch, p.node.cfg.Self)
				p.pendingBytes -= batch.Size()
				p.pendingMsgs -= msgs
				p.inFlightBytes = len(buf)
				p.mu.Unlock()

				_ = p.conn.SetWriteDeadline(time.Now().Add(p.node.cfg.WriteTimeout))
				_, werr := p.conn.Write(buf)

				p.mu.Lock()
				p.inFlightBytes = 0
				// Keep the batch for reuse — the socket consumed its bytes, so
				// unlike payloads handed to a receiver it is safely recyclable —
				// but let a burst-sized high-water buffer go instead of pinning
				// it for the peer's lifetime.
				if p.spare == nil && cap(buf) <= writeBufferSize {
					batch.Reset()
					p.spare = batch
				}
				if werr != nil {
					p.err = werr
				}
				broken := p.err != nil
				p.mu.Unlock()
				if broken {
					// The failed write's messages (delivery unknown, assume
					// lost) plus everything still queued are gone; count
					// them before tearing the peer down.
					p.failPending(werr, msgs)
					p.node.dropPeer(p.to, p)
					return
				}
			}
		}
	}
}

// close tears the peer down: the flusher exits, the socket closes. Safe to
// call multiple times and concurrently with writeFrame (which fails fast on
// the closed socket's sticky error).
func (p *peer) close() {
	p.closeOnce.Do(func() {
		close(p.done)
		_ = p.conn.Close()
	})
}

// acceptLoop accepts inbound connections and spawns a reader per connection.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.inbound[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound connection into the mailbox. The
// connection is wrapped in a bufio.Reader and each frame body is read into a
// pooled refcounted arena (wire.GetArena): delivered payloads ALIAS the arena
// buffer instead of being freshly allocated per frame, and the arena is
// recycled once every consumer has released its reference (the codec's
// ownership rule 4).
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		_ = conn.Close()
		n.mu.Lock()
		delete(n.inbound, conn)
		n.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, writeBufferSize)
	var sender types.ProcessID
	announced := false
	defer func() {
		if announced {
			n.noteInboundGone(sender)
		}
	}()
	for {
		from, kind, payload, arena, err := readFrameArena(br)
		if err != nil {
			return
		}
		n.frames.Add(1)
		if !announced {
			// The first frame names the connection's sender; record it so a
			// reconnect or restart of that peer can evict our stale cached
			// outbound connection to its previous incarnation.
			announced = true
			sender = from
			n.noteInboundSender(from)
		}
		n.mu.Lock()
		closed := n.closed
		n.mu.Unlock()
		if closed {
			arena.Release()
			return
		}
		// A batch frame (the flusher's coalesced output) is expanded here, so
		// inbox consumers see exactly the per-message stream they always did;
		// the sub-payloads alias the frame's arena buffer, with one arena
		// reference handed to each delivered message (the reader's own
		// reference drops once expansion is done). Frames written by older
		// tools or tests with a non-batch kind pass through unchanged.
		if kind == wire.BatchKind && wire.IsBatch(payload) {
			_ = wire.ForEachInBatch(payload, func(sub []byte) error {
				arena.Ref()
				n.deliverInbound(transport.Message{From: from, To: n.cfg.Self, Kind: kind, Payload: sub, Arena: arena})
				return nil
			})
			arena.Release()
			continue
		}
		// A single-message frame transfers the reader's reference to the
		// delivered message.
		n.deliverInbound(transport.Message{From: from, To: n.cfg.Self, Kind: kind, Payload: payload, Arena: arena})
	}
}

// deliverInbound hands one decoded message to the inbox, counting it either
// way. The message's arena reference travels with it; a dropped message gives
// the reference back immediately.
func (n *Node) deliverInbound(msg transport.Message) {
	select {
	case n.box <- msg:
		n.delivered.Add(1)
	default:
		// The mailbox is full; drop the message. The protocols tolerate
		// message loss of this kind because they never wait for more than
		// S−t replies, and clients retransmit by retrying the operation.
		// The drop is counted so operators can see it.
		msg.ReleaseArena()
		n.droppedInbound.Add(1)
	}
}

// encodeFrame builds one wire frame as a standalone byte slice. The send
// path streams frames straight into the peer's buffer via writeFrame and
// never materialises them; this reference encoding is kept for tests and
// fuzzing, and documents the layout readFrame expects.
func encodeFrame(from types.ProcessID, kind string, payload []byte) ([]byte, error) {
	if len(payload) > maxFrameSize {
		return nil, fmt.Errorf("tcpnet: payload too large (%d bytes)", len(payload))
	}
	total := 1 + 4 + 2 + len(kind) + 4 + len(payload)
	frame := make([]byte, 0, 4+total)
	frame = binary.BigEndian.AppendUint32(frame, uint32(total))
	frame = append(frame, byte(from.Role))
	frame = binary.BigEndian.AppendUint32(frame, uint32(from.Index))
	frame = binary.BigEndian.AppendUint16(frame, uint16(len(kind)))
	frame = append(frame, kind...)
	frame = binary.BigEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	return frame, nil
}

// readFrame reads and decodes one frame from the reader. The returned
// payload owns its bytes.
func readFrame(r io.Reader) (types.ProcessID, string, []byte, error) {
	var scratch []byte
	return readFrameReusing(r, &scratch)
}

// readFrameReusing reads one frame using *scratch as the reusable frame
// buffer (grown as needed and written back). Only the returned payload is
// freshly allocated.
func readFrameReusing(r io.Reader, scratch *[]byte) (types.ProcessID, string, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return types.ProcessID{}, "", nil, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total > maxFrameSize {
		return types.ProcessID{}, "", nil, fmt.Errorf("tcpnet: frame too large (%d bytes)", total)
	}
	if cap(*scratch) < int(total) {
		*scratch = make([]byte, total)
	}
	body := (*scratch)[:total]
	from, kind, view, err := parseFrameBody(r, body)
	if err != nil {
		return types.ProcessID{}, "", nil, err
	}
	// The frame buffer is reused for the next frame; the payload handed out
	// must own its bytes.
	payload := append([]byte(nil), view...)
	return from, kind, payload, nil
}

// readFrameArena reads one frame with its body in a pooled refcounted arena.
// The returned payload ALIASES the arena buffer; the caller owns the arena's
// initial reference (released internally on every error path). This is the
// hot-path variant of readFrameReusing: same layout, same validation, but the
// per-frame payload copy is replaced by arena recycling.
func readFrameArena(r io.Reader) (types.ProcessID, string, []byte, *wire.Arena, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return types.ProcessID{}, "", nil, nil, err
	}
	total := binary.BigEndian.Uint32(lenBuf[:])
	if total > maxFrameSize {
		return types.ProcessID{}, "", nil, nil, fmt.Errorf("tcpnet: frame too large (%d bytes)", total)
	}
	arena := wire.GetArena(int(total))
	body := arena.Bytes()
	from, kind, payload, err := parseFrameBody(r, body)
	if err != nil {
		arena.Release()
		return types.ProcessID{}, "", nil, nil, err
	}
	return from, kind, payload, arena, nil
}

// parseFrameBody fills body from the reader and decodes the frame fields; the
// returned kind and payload alias body.
func parseFrameBody(r io.Reader, body []byte) (types.ProcessID, string, []byte, error) {
	if _, err := io.ReadFull(r, body); err != nil {
		return types.ProcessID{}, "", nil, err
	}
	if len(body) < 1+4+2 {
		return types.ProcessID{}, "", nil, errors.New("tcpnet: truncated frame")
	}
	from := types.ProcessID{Role: types.Role(body[0]), Index: int(binary.BigEndian.Uint32(body[1:5]))}
	if !from.Valid() {
		return types.ProcessID{}, "", nil, fmt.Errorf("tcpnet: invalid sender %v", from)
	}
	off := 5
	kindLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if off+kindLen+4 > len(body) {
		return types.ProcessID{}, "", nil, errors.New("tcpnet: truncated kind")
	}
	// Nearly every frame is the flusher's coalesced batch; comparing against
	// the constant first avoids materialising a kind string per frame (the
	// comparison itself does not allocate).
	var kind string
	if kindBytes := body[off : off+kindLen]; string(kindBytes) == wire.BatchKind {
		kind = wire.BatchKind
	} else {
		kind = string(kindBytes)
	}
	off += kindLen
	payloadLen := int(binary.BigEndian.Uint32(body[off : off+4]))
	off += 4
	if off+payloadLen != len(body) {
		return types.ProcessID{}, "", nil, errors.New("tcpnet: inconsistent payload length")
	}
	return from, kind, body[off:], nil
}

// LocalCluster starts one TCP node per identity, all listening on loopback
// with ephemeral ports, and returns them along with the shared address book.
// It is a convenience for tests and for the tcpcluster example.
func LocalCluster(ids []types.ProcessID) (map[types.ProcessID]*Node, AddressBook, error) {
	// First pass: create listeners so every process learns its port.
	listeners := make(map[types.ProcessID]net.Listener, len(ids))
	book := make(AddressBook, len(ids))
	for _, id := range ids {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, prev := range listeners {
				_ = prev.Close()
			}
			return nil, nil, err
		}
		listeners[id] = l
		book[id] = l.Addr().String()
	}
	// Second pass: wrap each listener in a Node sharing the completed book.
	nodes := make(map[types.ProcessID]*Node, len(ids))
	for _, id := range ids {
		nodes[id] = newNode(Config{Self: id, Book: book}, listeners[id])
	}
	return nodes, book, nil
}
