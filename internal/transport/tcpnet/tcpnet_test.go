package tcpnet

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"fastread/internal/core"
	"fastread/internal/quorum"
	"fastread/internal/types"
	"fastread/internal/wire"
)

func TestSendReceiveOverTCP(t *testing.T) {
	nodes, _, err := LocalCluster([]types.ProcessID{types.Reader(1), types.Server(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	client := nodes[types.Reader(1)]
	server := nodes[types.Server(1)]

	if err := client.Send(types.Server(1), "ping", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-server.Inbox():
		if msg.From != types.Reader(1) || string(msg.Payload) != "hello" {
			t.Errorf("unexpected message %v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered over TCP")
	}

	// Replies work the other way too.
	if err := server.Send(types.Reader(1), "pong", []byte("world")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-client.Inbox():
		if string(msg.Payload) != "world" {
			t.Errorf("unexpected reply %v", msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reply not delivered over TCP")
	}
}

func TestSendToUnknownPeerIsDropped(t *testing.T) {
	nodes, _, err := LocalCluster([]types.ProcessID{types.Reader(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer nodes[types.Reader(1)].Close()
	if err := nodes[types.Reader(1)].Send(types.Server(9), "x", nil); err != nil {
		t.Errorf("send to unknown peer should not error, got %v", err)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	nodes, _, err := LocalCluster([]types.ProcessID{types.Reader(1), types.Server(1)})
	if err != nil {
		t.Fatal(err)
	}
	client := nodes[types.Reader(1)]
	_ = nodes[types.Server(1)].Close()
	_ = client.Close()
	if err := client.Send(types.Server(1), "x", nil); err == nil {
		t.Error("send after close should fail")
	}
	// Close is idempotent.
	if err := client.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frame, err := encodeFrame(types.Reader(7), "readack", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	from, kind, payload, err := readFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if from != types.Reader(7) || kind != "readack" || !bytes.Equal(payload, []byte{1, 2, 3}) {
		t.Errorf("round trip mismatch: %v %q %v", from, kind, payload)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// Truncated length prefix.
	if _, _, _, err := readFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Error("truncated prefix accepted")
	}
	// Body shorter than advertised.
	frame, _ := encodeFrame(types.Writer(), "k", []byte("data"))
	if _, _, _, err := readFrame(bytes.NewReader(frame[:len(frame)-2])); err == nil {
		t.Error("truncated body accepted")
	}
	// Invalid sender role.
	bad := append([]byte(nil), frame...)
	bad[4] = 99
	if _, _, _, err := readFrame(bytes.NewReader(bad)); err == nil {
		t.Error("invalid sender accepted")
	}
	// Oversized frame length.
	huge := make([]byte, 8)
	huge[0], huge[1], huge[2], huge[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, _, err := readFrame(bytes.NewReader(huge)); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen(Config{Self: types.ProcessID{}}); err == nil {
		t.Error("invalid identity accepted")
	}
	if _, err := Listen(Config{Self: types.Server(1)}); err == nil {
		t.Error("missing address accepted")
	}
}

// TestFastRegisterOverTCP runs the paper's fast register end to end over
// loopback TCP: the protocols only see transport.Node, so the crash-model
// algorithm must behave exactly as it does in memory.
func TestFastRegisterOverTCP(t *testing.T) {
	cfg := quorum.Config{Servers: 4, Faulty: 1, Readers: 1}
	ids := []types.ProcessID{types.Writer(), types.Reader(1)}
	for i := 1; i <= cfg.Servers; i++ {
		ids = append(ids, types.Server(i))
	}
	nodes, _, err := LocalCluster(ids)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()

	for i := 1; i <= cfg.Servers; i++ {
		srv, err := core.NewServer(core.ServerConfig{ID: types.Server(i), Readers: cfg.Readers}, nodes[types.Server(i)])
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		defer srv.Stop()
	}
	writer, err := core.NewWriter(core.WriterConfig{Quorum: cfg}, nodes[types.Writer()])
	if err != nil {
		t.Fatal(err)
	}
	reader, err := core.NewReader(core.ReaderConfig{Quorum: cfg}, nodes[types.Reader(1)])
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 1; i <= 5; i++ {
		value := types.Value([]byte{byte('a' + i)})
		if err := writer.Write(ctx, value); err != nil {
			t.Fatalf("write %d over TCP: %v", i, err)
		}
		res, err := reader.Read(ctx)
		if err != nil {
			t.Fatalf("read %d over TCP: %v", i, err)
		}
		if !res.Value.Equal(value) {
			t.Fatalf("read %d returned %s, want %s", i, res.Value, value)
		}
		if res.RoundTrips != 1 {
			t.Fatalf("read %d used %d round trips", i, res.RoundTrips)
		}
	}
}

// TestConcurrentSendersDoNotInterleaveFrames is the regression test for the
// frame-interleaving hazard: before the per-peer writer, two goroutines
// calling Send to the same peer could interleave partial conn.Writes and
// corrupt the stream. Large payloads force the old code's single conn.Write
// into multiple TCP segments, making corruption near-certain; with the
// per-peer serialised writer every frame must arrive intact and decodable.
func TestConcurrentSendersDoNotInterleaveFrames(t *testing.T) {
	nodes, _, err := LocalCluster([]types.ProcessID{types.Reader(1), types.Server(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	sender := nodes[types.Reader(1)]
	receiver := nodes[types.Server(1)]

	// 32 KiB payloads span many TCP segments (so the old unserialised code
	// path would interleave partial writes) while the whole burst stays
	// under the peer's bounded write queue — no frame may be dropped.
	const (
		senders     = 8
		perSender   = 16
		payloadSize = 32 << 10
	)

	// Each sender stamps its payload with (sender, seq) and fills the rest
	// with a sender-specific byte so any interleaving is detectable.
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte('A' + g)}, payloadSize)
			for i := 0; i < perSender; i++ {
				payload[0], payload[1] = byte(g), byte(i)
				if err := sender.Send(types.Server(1), "blob", payload); err != nil {
					t.Errorf("sender %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	got := make(map[[2]byte]bool)
	deadline := time.After(20 * time.Second)
	for len(got) < senders*perSender {
		select {
		case msg := <-receiver.Inbox():
			if len(msg.Payload) != payloadSize {
				t.Fatalf("corrupted frame: kind=%q len=%d", msg.Kind, len(msg.Payload))
			}
			g, i := msg.Payload[0], msg.Payload[1]
			fill := byte('A' + g)
			for j := 2; j < payloadSize; j++ {
				if msg.Payload[j] != fill {
					t.Fatalf("payload of sender %d message %d corrupted at offset %d: %x != %x",
						g, i, j, msg.Payload[j], fill)
				}
			}
			got[[2]byte{g, i}] = true
		case <-deadline:
			t.Fatalf("received only %d of %d messages", len(got), senders*perSender)
		}
	}
	if s := sender.Stats(); s.DroppedSend != 0 {
		t.Errorf("sender dropped %d frames; burst should fit the write queue", s.DroppedSend)
	}
}

// TestBatchedWritesCoalesceAndDeliverInOrder checks that the coalescing
// writer preserves per-link FIFO order for back-to-back small frames.
func TestBatchedWritesCoalesceAndDeliverInOrder(t *testing.T) {
	nodes, _, err := LocalCluster([]types.ProcessID{types.Writer(), types.Server(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	const msgs = 500
	for i := 0; i < msgs; i++ {
		if err := nodes[types.Writer()].Send(types.Server(1), "seq", []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		select {
		case msg := <-nodes[types.Server(1)].Inbox():
			if got := int(msg.Payload[0]) | int(msg.Payload[1])<<8; got != i {
				t.Fatalf("message %d arrived out of order (got seq %d)", i, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d never delivered", i)
		}
	}
	if s := nodes[types.Server(1)].Stats(); s.Delivered != msgs {
		t.Errorf("receiver Delivered = %d, want %d", s.Delivered, msgs)
	}
}

// TestDropCountersVisible checks that silently dropped traffic shows up in
// NodeStats: sends to unreachable peers and inbound frames discarded because
// the mailbox is full.
func TestDropCountersVisible(t *testing.T) {
	nodes, _, err := LocalCluster([]types.ProcessID{types.Reader(1), types.Server(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	client := nodes[types.Reader(1)]
	receiver := nodes[types.Server(1)]

	// Unreachable peer → DroppedSend.
	if err := client.Send(types.Server(9), "x", []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if s := client.Stats(); s.DroppedSend != 1 {
		t.Errorf("DroppedSend = %d, want 1", s.DroppedSend)
	}

	// Overflow the receiver's mailbox (capacity 1024, nobody draining) →
	// DroppedInbound on the receiver.
	const flood = 2000
	for i := 0; i < flood; i++ {
		if err := client.Send(types.Server(1), "flood", []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	ok := false
	for wait := 0; wait < 200; wait++ {
		s := receiver.Stats()
		if s.Delivered+s.DroppedInbound == flood && s.DroppedInbound > 0 {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		s := receiver.Stats()
		t.Errorf("flood not accounted for: delivered=%d droppedInbound=%d (want sum %d with drops > 0)",
			s.Delivered, s.DroppedInbound, flood)
	}
}

// TestRestartedPeerReachableOnFirstOperation is the regression test for the
// stale-connection refresh: when a process dies and a new incarnation comes
// up on the same address book entry, the first request it sends must get a
// reply — the receiving node evicts the idle cached connection to the old
// incarnation when the new one's first frame arrives, instead of writing the
// reply into a dead socket and leaving the client to time out.
func TestRestartedPeerReachableOnFirstOperation(t *testing.T) {
	nodes, book, err := LocalCluster([]types.ProcessID{types.Server(1), types.Writer()})
	if err != nil {
		t.Fatal(err)
	}
	server := nodes[types.Server(1)]
	defer server.Close()

	// The server echoes every request back to its sender, like a protocol
	// server acking.
	go func() {
		for msg := range server.Inbox() {
			_ = server.Send(msg.From, "ack", msg.Payload)
		}
	}()

	roundTrip := func(client *Node, payload string) error {
		if err := client.Send(types.Server(1), "req", []byte(payload)); err != nil {
			return err
		}
		select {
		case msg := <-client.Inbox():
			if string(msg.Payload) != payload {
				return fmt.Errorf("unexpected reply %v", msg)
			}
			return nil
		case <-time.After(3 * time.Second):
			return fmt.Errorf("no ack for %q", payload)
		}
	}

	client := nodes[types.Writer()]
	if err := roundTrip(client, "first-incarnation"); err != nil {
		t.Fatal(err)
	}
	// The first incarnation dies; the server now holds a cached outbound
	// connection to a dead process.
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}

	// A new incarnation binds the SAME address book entry.
	client2, err := Listen(Config{Self: types.Writer(), ListenAddr: book[types.Writer()], Book: book})
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	if err := roundTrip(client2, "second-incarnation"); err != nil {
		t.Fatalf("restarted peer not reachable on first operation: %v", err)
	}
}

// TestSerialRoundTripsReuseConnections guards the eviction heuristic from
// the other side: a peer's FIRST inbound connection is normal reply traffic
// and must NOT evict the cached outbound connection, otherwise every serial
// round-trip tears down and re-dials both directions forever (connection
// churn + TIME_WAIT buildup).
func TestSerialRoundTripsReuseConnections(t *testing.T) {
	nodes, _, err := LocalCluster([]types.ProcessID{types.Server(1), types.Writer()})
	if err != nil {
		t.Fatal(err)
	}
	server := nodes[types.Server(1)]
	client := nodes[types.Writer()]
	defer server.Close()
	defer client.Close()

	go func() {
		for msg := range server.Inbox() {
			_ = server.Send(msg.From, "ack", msg.Payload)
		}
	}()

	roundTrip := func(i int) {
		t.Helper()
		if err := client.Send(types.Server(1), "req", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		select {
		case <-client.Inbox():
		case <-time.After(3 * time.Second):
			t.Fatalf("no ack for round-trip %d", i)
		}
	}

	roundTrip(0)
	client.mu.Lock()
	firstOutbound := client.peers[types.Server(1)]
	client.mu.Unlock()
	if firstOutbound == nil {
		t.Fatal("no cached outbound peer after first round-trip")
	}
	server.mu.Lock()
	firstReply := server.peers[types.Writer()]
	server.mu.Unlock()
	if firstReply == nil {
		t.Fatal("no cached reply peer after first round-trip")
	}

	for i := 1; i <= 10; i++ {
		roundTrip(i)
	}

	client.mu.Lock()
	lastOutbound := client.peers[types.Server(1)]
	client.mu.Unlock()
	server.mu.Lock()
	lastReply := server.peers[types.Writer()]
	server.mu.Unlock()
	if lastOutbound != firstOutbound {
		t.Error("client re-dialled the server during serial round-trips (connection churn)")
	}
	if lastReply != firstReply {
		t.Error("server re-dialled the client during serial round-trips (connection churn)")
	}
}

// TestRestartedPeerEvictsBusyConnection covers the force path of the
// eviction: when the previous incarnation's inbound connection has died, the
// cached outbound connection is evicted even if frames are still queued on
// it — they are addressed to a dead process and must surface as send drops,
// and the restarted peer's first operation must still get its reply.
func TestRestartedPeerEvictsBusyConnection(t *testing.T) {
	nodes, book, err := LocalCluster([]types.ProcessID{types.Server(1), types.Writer()})
	if err != nil {
		t.Fatal(err)
	}
	server := nodes[types.Server(1)]
	defer server.Close()
	go func() {
		for msg := range server.Inbox() {
			_ = server.Send(msg.From, "ack", msg.Payload)
		}
	}()

	client := nodes[types.Writer()]
	if err := client.Send(types.Server(1), "req", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-client.Inbox():
	case <-time.After(3 * time.Second):
		t.Fatal("no ack in warm-up round-trip")
	}
	_ = client.Close()

	// Wait until the server has processed the old incarnation's EOF, so the
	// new connection deterministically takes the restart (force) path.
	deadline := time.Now().Add(5 * time.Second)
	for {
		server.mu.Lock()
		dead := server.deadInbound[types.Writer()]
		server.mu.Unlock()
		if dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never noticed the old incarnation's EOF")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Make the cached (now dead) connection BUSY: queue frames on it without
	// kicking the flusher, as a mid-burst failure would.
	server.mu.Lock()
	stale := server.peers[types.Writer()]
	server.mu.Unlock()
	if stale == nil {
		t.Fatal("no cached outbound peer to the old incarnation")
	}
	stale.mu.Lock()
	busy := wire.NewBatch(batchFrameHeaderSize)
	for i := 0; i < 3; i++ {
		busy.Append(make([]byte, 64))
	}
	stale.queue = append(stale.queue, busy)
	stale.pendingBytes += busy.Size()
	stale.pendingMsgs += busy.Count()
	stale.mu.Unlock()
	dropsBefore := server.Stats().DroppedSend

	client2, err := Listen(Config{Self: types.Writer(), ListenAddr: book[types.Writer()], Book: book})
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()
	if err := client2.Send(types.Server(1), "req", []byte("y")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-client2.Inbox():
		if string(msg.Payload) != "y" {
			t.Fatalf("unexpected reply %v", msg)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("restarted peer with busy stale connection got no reply on first operation")
	}
	if drops := server.Stats().DroppedSend; drops < dropsBefore+3 {
		t.Errorf("queued frames to the dead incarnation not surfaced as drops: %d -> %d", dropsBefore, drops)
	}
}

// TestDeferredEvictionAfterLateEOF drives the remaining ordering of the
// restart race directly through the attribution state machine: the restarted
// peer's new connection arrives BEFORE the old connection's EOF is processed
// and the cached outbound connection is busy, so the eviction is declined
// and remembered; the old EOF must then finish it (and surface the queued
// frames as drops), rather than losing the restart signal.
func TestDeferredEvictionAfterLateEOF(t *testing.T) {
	nodes, _, err := LocalCluster([]types.ProcessID{types.Server(1), types.Writer()})
	if err != nil {
		t.Fatal(err)
	}
	server := nodes[types.Server(1)]
	client := nodes[types.Writer()]
	defer server.Close()
	defer client.Close()

	// Establish the server's cached outbound connection to the writer.
	go func() {
		for msg := range server.Inbox() {
			_ = server.Send(msg.From, "ack", msg.Payload)
		}
	}()
	if err := client.Send(types.Server(1), "req", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-client.Inbox():
	case <-time.After(3 * time.Second):
		t.Fatal("no ack in warm-up round-trip")
	}

	server.mu.Lock()
	stale := server.peers[types.Writer()]
	server.mu.Unlock()
	if stale == nil {
		t.Fatal("no cached outbound peer")
	}
	// Busy: frames queued, flusher not kicked (as mid-burst).
	stale.mu.Lock()
	busy := wire.NewBatch(batchFrameHeaderSize)
	for i := 0; i < 3; i++ {
		busy.Append(make([]byte, 64))
	}
	stale.queue = append(stale.queue, busy)
	stale.pendingBytes += busy.Size()
	stale.pendingMsgs += busy.Count()
	stale.mu.Unlock()
	dropsBefore := server.Stats().DroppedSend

	// The real warm-up already counted one live inbound connection from the
	// writer. Simulate the restarted incarnation's connection announcing
	// itself FIRST (EOF of the old one not yet seen): busy + redialled →
	// eviction declined but remembered.
	server.noteInboundSender(types.Writer())
	server.mu.Lock()
	stillCached := server.peers[types.Writer()] == stale
	remembered := server.pendingRefresh[types.Writer()] == stale
	server.mu.Unlock()
	if !stillCached || !remembered {
		t.Fatalf("declined eviction not remembered: cached=%v remembered=%v", stillCached, remembered)
	}

	// The old connection's EOF arrives late and must finish the eviction.
	server.noteInboundGone(types.Writer())
	server.mu.Lock()
	evicted := server.peers[types.Writer()] == nil
	server.mu.Unlock()
	if !evicted {
		t.Fatal("late EOF did not evict the remembered stale connection")
	}
	if drops := server.Stats().DroppedSend; drops < dropsBefore+3 {
		t.Errorf("queued frames not surfaced as drops: %d -> %d", dropsBefore, drops)
	}
}
