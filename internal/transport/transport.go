// Package transport provides the asynchronous message-passing substrate used
// by every register protocol in this repository.
//
// The model (Section 2 of the paper) assumes reliable bi-directional
// channels between every pair of processes: messages are never lost,
// duplicated or corrupted, but may be delayed arbitrarily. The in-memory
// implementation (see inmem.go) reproduces exactly that, and additionally
// exposes the adversarial controls the lower-bound constructions need:
// per-link blocking (a blocked message is "left in transit forever"), per-link
// delivery delay, and process crashes.
//
// A second implementation over TCP lives in the tcpnet subpackage and
// satisfies the same Network/Node interfaces.
package transport

import (
	"errors"
	"fmt"

	"fastread/internal/types"
	"fastread/internal/wire"
)

// Message is a single protocol message travelling between two processes. The
// payload is an opaque byte slice; protocol packages encode and decode it with
// internal/wire.
type Message struct {
	From    types.ProcessID
	To      types.ProcessID
	Kind    string
	Payload []byte
	// Arena, when non-nil, is the refcounted frame buffer Payload aliases
	// (socket transports decode each inbound frame into one pooled arena; the
	// in-memory network leaves it nil). The message carries ONE reference:
	// whoever consumes the message calls ReleaseArena when done with the
	// payload and everything decoded from it, and anything retaining an
	// aliasing view longer takes its own Arena.Ref first. See wire's
	// buffer-ownership rule 4.
	Arena *wire.Arena

	// vt, when non-nil, is the virtual clock whose activity token this
	// message carries (simulation mode only). The token is attached when the
	// network hands the message to a mailbox and travels with the arena
	// reference: RetainArena takes an extra token alongside the extra arena
	// ref, ReleaseArena returns one alongside the release. The pairing is
	// deliberate — the arena discipline already marks exactly the points
	// where a message changes hands, which is exactly what quiescence
	// detection needs to know.
	vt *VirtualClock
}

// RetainArena takes one additional reference on the message's arena, if any:
// call it before handing a COPY of the message to an additional independent
// consumer (the executor's dispatcher queueing to a worker, the demux pump
// queueing to a route).
func (m Message) RetainArena() {
	if m.Arena != nil {
		m.Arena.Ref()
	}
	if m.vt != nil {
		m.vt.begin()
	}
}

// ReleaseArena drops the message's arena reference, if any. Consumers call it
// exactly once per delivered message, after the payload (and every transient
// view decoded from it) is no longer referenced.
func (m Message) ReleaseArena() {
	if m.Arena != nil {
		m.Arena.Release()
	}
	if m.vt != nil {
		m.vt.end()
	}
}

// String renders the message for traces and test failures.
func (m Message) String() string {
	return fmt.Sprintf("%s→%s %s (%dB)", m.From, m.To, m.Kind, len(m.Payload))
}

// Node is one process's attachment to the network. Send never blocks on the
// destination: the model is asynchronous, so delivery happens in the
// background and the sender continues immediately.
type Node interface {
	// ID returns the process identity this node is bound to.
	ID() types.ProcessID
	// Send transmits a message to another process. It returns an error only
	// if the local node is closed; messages to crashed or unknown
	// destinations are silently dropped, as in the asynchronous model where
	// such messages simply never arrive.
	Send(to types.ProcessID, kind string, payload []byte) error
	// Inbox returns the stream of messages delivered to this node. The
	// channel is closed when the node is closed.
	Inbox() <-chan Message
	// Close detaches the node from the network and releases its resources.
	// Close is idempotent.
	Close() error
}

// Network is a collection of interconnected nodes.
type Network interface {
	// Join attaches a process to the network and returns its node. Joining
	// the same process twice is an error.
	Join(id types.ProcessID) (Node, error)
	// Close shuts down the network and all attached nodes.
	Close() error
}

// Errors returned by transport implementations.
var (
	// ErrClosed indicates the node or network has been closed.
	ErrClosed = errors.New("transport: closed")
	// ErrAlreadyJoined indicates a process attempted to join twice.
	ErrAlreadyJoined = errors.New("transport: process already joined")
	// ErrUnknownProcess indicates an operation referenced a process that
	// never joined the network.
	ErrUnknownProcess = errors.New("transport: unknown process")
)

// Serve invokes handler for every protocol message delivered to node, in
// delivery order on a single goroutine, until the node is closed. Batch
// envelopes are expanded (see Expand), so the handler only ever sees single
// messages. It returns after the inbox is drained. It is the degenerate
// (one-worker) case of Executor and remains the right tool for client-side
// helpers and tests; the protocol servers run on a key-sharded Executor
// instead.
//
// Serve owns each delivered message's arena reference and releases it after
// the handler returns: handlers retain decoded views past their own return
// only by cloning or taking an Arena.Ref of their own (wire's ownership
// rules 3 and 4).
func Serve(node Node, handler func(Message)) {
	for msg := range node.Inbox() {
		Expand(msg, handler)
		msg.ReleaseArena()
	}
}
