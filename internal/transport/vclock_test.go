package transport

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"fastread/internal/types"
)

// TestVirtualClockOrder checks that events fire in (due time, schedule
// sequence) order and that Now advances to each event's due instant.
func TestVirtualClockOrder(t *testing.T) {
	c := NewVirtualClock()
	var got []string
	c.Schedule(30*time.Millisecond, func() { got = append(got, "c") })
	c.Schedule(10*time.Millisecond, func() { got = append(got, "a") })
	c.Schedule(10*time.Millisecond, func() { got = append(got, "b") })
	c.Schedule(0, func() {
		got = append(got, "now")
		// An event scheduled mid-run lands relative to the current instant.
		c.Schedule(5*time.Millisecond, func() { got = append(got, "mid") })
	})
	for c.RunNext() {
	}
	want := "now,mid,a,b,c"
	if s := strings.Join(got, ","); s != want {
		t.Fatalf("event order = %s, want %s", s, want)
	}
	if want := VirtualEpoch.Add(30 * time.Millisecond); !c.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
}

// TestVirtualClockStall checks that Step reports an outstanding activity
// token as an error instead of hanging.
func TestVirtualClockStall(t *testing.T) {
	c := NewVirtualClock()
	c.Schedule(time.Millisecond, func() {})
	c.begin()
	if _, err := c.Step(20 * time.Millisecond); err == nil {
		t.Fatal("Step with an outstanding token should report a stall")
	}
	c.end()
	if ran, err := c.Step(time.Second); err != nil || !ran {
		t.Fatalf("Step after token release = (%v, %v), want (true, nil)", ran, err)
	}
}

// virtualEchoRun wires two nodes onto a virtual-clock network with jitter,
// fires n requests, and returns the order in which the responder's replies
// arrived back (identified by payload).
func virtualEchoRun(t *testing.T, seed int64, n int) []string {
	t.Helper()
	clock := NewVirtualClock()
	net := NewInMemNetwork(
		WithClock(clock),
		WithSeed(seed),
		WithDefaultDelay(200*time.Microsecond),
		WithJitter(300*time.Microsecond),
	)
	defer net.Close()
	w := types.Writer()
	s := types.Server(1)
	nw, err := net.Join(w)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := net.Join(s)
	if err != nil {
		t.Fatal(err)
	}
	go Serve(ns, func(m Message) {
		_ = ns.Send(m.From, "echo", append([]byte(nil), m.Payload...))
	})
	var mu sync.Mutex
	var got []string
	go Serve(nw, func(m Message) {
		mu.Lock()
		got = append(got, string(m.Payload))
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("m%d", i))
		clock.Schedule(0, func() { _ = nw.Send(s, "req", payload) })
	}
	for {
		ran, err := clock.Step(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !ran {
			break
		}
	}
	mu.Lock()
	defer mu.Unlock()
	return got
}

// TestVirtualNetworkDeterministic checks the tentpole property at the
// transport layer: same seed → identical delivery order (even with jitter),
// and the jittered order differs from plain send order (so the test cannot
// pass vacuously).
func TestVirtualNetworkDeterministic(t *testing.T) {
	const n = 64
	a := virtualEchoRun(t, 7, n)
	b := virtualEchoRun(t, 7, n)
	if len(a) != n {
		t.Fatalf("run delivered %d/%d replies", len(a), n)
	}
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed produced different orders:\n%v\n%v", a, b)
	}
	inOrder := true
	for i, v := range a {
		if v != fmt.Sprintf("m%d", i) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("jittered run delivered in send order; jitter seems inert under the virtual clock")
	}
	c := virtualEchoRun(t, 8, n)
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Log("note: different seeds produced identical orders (possible but unlikely)")
	}
}
