package history

import (
	"sync"
	"testing"
	"time"

	"fastread/internal/types"
)

func TestRecorderBasicFlow(t *testing.T) {
	r := NewRecorder()
	wID := r.Invoke(types.Writer(), OpWrite, types.Value("v1"))
	r.Return(wID, nil, 1)
	rID := r.Invoke(types.Reader(1), OpRead, nil)
	r.Return(rID, types.Value("v1"), 1)
	fID := r.Invoke(types.Reader(2), OpRead, nil)
	r.Fail(fID)
	iID := r.Invoke(types.Reader(3), OpRead, nil)
	_ = iID // never returns

	h := r.History()
	if len(h) != 4 {
		t.Fatalf("history has %d ops, want 4", len(h))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d", r.Len())
	}
	if h[0].Kind != OpWrite || !h[0].Completed {
		t.Errorf("first op = %v", h[0])
	}
	if h[1].Kind != OpRead || !h[1].Result.Equal(types.Value("v1")) || h[1].ResultTS != 1 {
		t.Errorf("read op = %v", h[1])
	}
	if !h[2].Failed || h[2].Completed {
		t.Errorf("failed op = %v", h[2])
	}
	if h[3].Completed || h[3].Failed {
		t.Errorf("incomplete op = %v", h[3])
	}
}

func TestPrecedesAndConcurrent(t *testing.T) {
	now := time.Now()
	a := Operation{Completed: true, Invoked: now, Returned: now.Add(10 * time.Millisecond)}
	b := Operation{Completed: true, Invoked: now.Add(20 * time.Millisecond), Returned: now.Add(30 * time.Millisecond)}
	c := Operation{Completed: true, Invoked: now.Add(5 * time.Millisecond), Returned: now.Add(25 * time.Millisecond)}

	if !a.Precedes(b) {
		t.Error("a should precede b")
	}
	if b.Precedes(a) {
		t.Error("b should not precede a")
	}
	if !a.ConcurrentWith(c) || !c.ConcurrentWith(a) {
		t.Error("a and c should be concurrent")
	}
	incomplete := Operation{Completed: false, Invoked: now, Returned: now.Add(time.Millisecond)}
	if incomplete.Precedes(b) {
		t.Error("incomplete op should not precede anything")
	}
	failed := Operation{Completed: true, Failed: true, Invoked: now, Returned: now.Add(time.Millisecond)}
	if failed.Precedes(b) {
		t.Error("failed op should not precede anything")
	}
}

func TestHistoryOrderedByInvocation(t *testing.T) {
	r := NewRecorder()
	ids := make([]int64, 5)
	for i := range ids {
		ids[i] = r.Invoke(types.Reader(i+1), OpRead, nil)
		time.Sleep(time.Millisecond)
	}
	for _, id := range ids {
		r.Return(id, nil, 0)
	}
	h := r.History()
	for i := 1; i < len(h); i++ {
		if h[i].Invoked.Before(h[i-1].Invoked) {
			t.Fatalf("history not sorted at %d", i)
		}
	}
}

func TestHistoryFilters(t *testing.T) {
	r := NewRecorder()
	w1 := r.Invoke(types.Writer(), OpWrite, types.Value("a"))
	r.Return(w1, nil, 1)
	w2 := r.Invoke(types.Writer(), OpWrite, types.Value("b")) // incomplete
	_ = w2
	rd := r.Invoke(types.Reader(1), OpRead, nil)
	r.Return(rd, types.Value("a"), 1)
	bad := r.Invoke(types.Reader(2), OpRead, nil)
	r.Fail(bad)

	h := r.History()
	if got := len(h.Writes()); got != 2 {
		t.Errorf("Writes = %d, want 2", got)
	}
	if got := len(h.CompletedWrites()); got != 1 {
		t.Errorf("CompletedWrites = %d, want 1", got)
	}
	if got := len(h.Reads()); got != 1 {
		t.Errorf("Reads = %d, want 1 (failed read excluded)", got)
	}
	if h.String() == "" {
		t.Error("String should render something")
	}
}

func TestRecorderConcurrentUse(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := r.Invoke(types.Reader(idx+1), OpRead, nil)
				r.Return(id, types.Value("x"), 1)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 400 {
		t.Errorf("Len = %d, want 400", r.Len())
	}
	ids := map[int64]bool{}
	for _, op := range r.History() {
		if ids[op.ID] {
			t.Fatalf("duplicate id %d", op.ID)
		}
		ids[op.ID] = true
	}
}

func TestReturnUnknownIDIsNoop(t *testing.T) {
	r := NewRecorder()
	r.Return(42, types.Value("x"), 1)
	r.Fail(43)
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

func TestRecorderClonesValues(t *testing.T) {
	r := NewRecorder()
	arg := types.Value("mutable")
	id := r.Invoke(types.Writer(), OpWrite, arg)
	arg[0] = 'X'
	r.Return(id, nil, 1)
	h := r.History()
	if string(h[0].Argument) != "mutable" {
		t.Errorf("argument aliased caller slice: %s", h[0].Argument)
	}
}

func TestOpKindString(t *testing.T) {
	if OpWrite.String() != "write" || OpRead.String() != "read" || OpKind(9).String() != "unknown" {
		t.Error("unexpected OpKind names")
	}
}
